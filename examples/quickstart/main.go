// Quickstart: disseminate a 64-block file from one server to 127 clients
// with the paper's optimal Binomial Pipeline, then peek at how the same
// job fares under the other algorithms.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"barterdist"
)

func main() {
	const (
		nodes  = 128 // server + 127 clients
		blocks = 64
	)

	// The headline algorithm: optimal cooperative dissemination on a
	// hypercube overlay (Section 2.3 of the paper).
	res, err := barterdist.Run(barterdist.Config{
		Nodes:     nodes,
		Blocks:    blocks,
		Algorithm: barterdist.AlgoBinomialPipeline,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Binomial Pipeline: %d clients received %d blocks in %d ticks\n",
		nodes-1, blocks, res.CompletionTime)
	fmt.Printf("Theorem 1 lower bound: %d ticks — optimal: %v\n\n",
		res.OptimalTime, res.CompletionTime == res.OptimalTime)

	// The same job under every algorithm in the paper.
	fmt.Printf("%-22s %12s %12s\n", "algorithm", "ticks", "vs optimal")
	for _, algo := range []barterdist.Algorithm{
		barterdist.AlgoPipeline,
		barterdist.AlgoMulticastTree,
		barterdist.AlgoBinomialTree,
		barterdist.AlgoBinomialPipeline,
		barterdist.AlgoRiffle,
		barterdist.AlgoRandomized,
	} {
		r, err := barterdist.Run(barterdist.Config{
			Nodes: nodes, Blocks: blocks, Algorithm: algo, TreeArity: 2, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %12d %11.2fx\n",
			string(algo), r.CompletionTime,
			float64(r.CompletionTime)/float64(r.OptimalTime))
	}
	fmt.Println("\n(riffle pays the strict-barter price: ~N extra ticks; the")
	fmt.Println(" randomized algorithm lands within a few percent of optimal)")
}
