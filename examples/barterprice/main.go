// The price of barter, measured: how much completion time does each
// incentive mechanism cost over free cooperation?
//
// For a sweep of swarm sizes the example runs (and audits!) the three
// regimes the paper analyzes:
//
//   - cooperative optimum — the Binomial Pipeline (Section 2.3);
//
//   - strict barter — the Riffle Pipeline (Section 3.1), every
//     client-client transfer verified to be a simultaneous exchange;
//
//   - credit-limited barter — the same Binomial Pipeline trace audited
//     against a per-pair credit limit (Section 3.2): for power-of-two
//     n and k it passes with s = 1, i.e. barter with one block of slack
//     is FREE.
//
//     go run ./examples/barterprice
package main

import (
	"fmt"
	"log"

	"barterdist"
)

func main() {
	fmt.Println("The price of barter: ticks to deliver k blocks to N clients")
	fmt.Println()
	fmt.Printf("%6s %6s | %10s | %16s | %22s\n",
		"N", "k", "coop opt", "strict (riffle)", "credit s=1 (hypercube)")
	fmt.Println("---------------+------------+------------------+-----------------------")

	for _, sz := range []struct{ n, k int }{
		{16, 16}, {32, 32}, {64, 64}, {128, 128}, {256, 256}, {512, 512},
	} {
		coop, err := barterdist.Run(barterdist.Config{
			Nodes: sz.n, Blocks: sz.k, Algorithm: barterdist.AlgoBinomialPipeline,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Strict barter: run AND verify the mechanism on the trace.
		strict, err := barterdist.Run(barterdist.Config{
			Nodes: sz.n, Blocks: sz.k, Algorithm: barterdist.AlgoRiffle,
			Verify: barterdist.MechanismStrict,
		})
		if err != nil {
			log.Fatalf("strict barter audit failed: %v", err)
		}

		// Credit-limited: the SAME optimal schedule, audited at s = 1.
		credit, err := barterdist.Run(barterdist.Config{
			Nodes: sz.n, Blocks: sz.k, Algorithm: barterdist.AlgoBinomialPipeline,
			Verify: barterdist.MechanismCredit, CreditLimit: 1,
		})
		if err != nil {
			log.Fatalf("credit audit failed: %v", err)
		}

		fmt.Printf("%6d %6d | %10d | %9d (+%3d) | %15d (+0)\n",
			sz.n-1, sz.k,
			coop.CompletionTime,
			strict.CompletionTime, strict.CompletionTime-coop.CompletionTime,
			credit.CompletionTime)
	}

	fmt.Println()
	fmt.Println("strict barter costs ~N extra ticks (Theorem 2's Theta(N) startup),")
	fmt.Println("while credit-limited barter with s=1 achieves the cooperative")
	fmt.Println("optimum outright — the mechanism, not the incentive, sets the price.")
}
