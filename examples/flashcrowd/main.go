// Flash-crowd video drop with selfish subscribers: an ESPN-Motion-style
// service (the paper's motivating example) pushes a highlight reel to
// subscribers who only upload when the mechanism makes it worth their
// while — the credit-limited barter model of Section 3.2.
//
// The example shows the paper's two central findings about practical
// barter: the overlay degree has a cliff below which distribution
// effectively stalls (Figure 6), and Rarest-First block selection moves
// that cliff roughly 4x lower (Figure 7).
//
//	go run ./examples/flashcrowd
package main

import (
	"errors"
	"fmt"
	"log"

	"barterdist"
)

func main() {
	const (
		subscribers = 256
		blocks      = 256
		creditLimit = 1 // one free block per neighbor pair, then barter
		budget      = 4000
	)
	nodes := subscribers + 1

	fmt.Printf("video drop: %d blocks to %d subscribers under credit-limited barter (s=%d)\n\n",
		blocks, subscribers, creditLimit)

	run := func(degree int, policy barterdist.Policy) (int, bool) {
		res, err := barterdist.Run(barterdist.Config{
			Nodes: nodes, Blocks: blocks,
			Algorithm:   barterdist.AlgoRandomized,
			Overlay:     barterdist.OverlayRandomRegular,
			Degree:      degree,
			Policy:      policy,
			CreditLimit: creditLimit,
			Seed:        11,
			MaxTicks:    budget,
		})
		if err != nil {
			if errors.Is(err, barterdist.ErrStalled) {
				return budget, true
			}
			log.Fatalf("degree %d: %v", degree, err)
		}
		return res.CompletionTime, false
	}

	fmt.Printf("%-8s | %-22s | %-22s\n", "degree", "Random policy", "Rarest-First policy")
	fmt.Println("---------+------------------------+-----------------------")
	for _, d := range []int{8, 16, 24, 32, 48, 64, 96} {
		tr, stalledR := run(d, barterdist.PolicyRandom)
		tf, stalledF := run(d, barterdist.PolicyRarestFirst)
		fmt.Printf("%-8d | %-22s | %-22s\n", d, cell(tr, stalledR), cell(tf, stalledF))
	}

	opt, err := barterdist.Run(barterdist.Config{Nodes: nodes, Blocks: blocks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncooperative optimum for comparison: %d ticks\n", opt.CompletionTime)
	fmt.Println("takeaway: under barter the overlay degree is make-or-break, and")
	fmt.Println("Rarest-First lets a ~4x sparser overlay reach near-optimal time —")
	fmt.Println("the paper's Figures 6 and 7 in miniature.")
}

func cell(t int, stalled bool) string {
	if stalled {
		return fmt.Sprintf(">%d  (stalled)", t)
	}
	return fmt.Sprintf("%d ticks", t)
}
