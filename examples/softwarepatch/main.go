// Software-patch rollout: the paper's opening scenario — a vendor must
// push an urgent patch to every installed host in the shortest possible
// time, and the hosts are willing to help each other (the cooperative
// model of Section 2).
//
// The example sizes the patch in real units, maps it onto the paper's
// block/tick model, and compares a naive unicast rollout, a CDN-style
// multicast tree, and the cooperative algorithms. It also shows the
// paper's robustness argument for the randomized algorithm: it needs no
// rigid structure, only a low-degree random overlay.
//
//	go run ./examples/softwarepatch
package main

import (
	"fmt"
	"log"

	"barterdist"
)

func main() {
	const (
		hosts        = 1024      // machines needing the patch
		patchBytes   = 256 << 20 // 256 MiB patch
		blockBytes   = 1 << 20   // 1 MiB blocks
		uploadBytesS = 4 << 20   // every host uploads 4 MiB/s
	)
	blocks := patchBytes / blockBytes
	nodes := hosts + 1
	tickSeconds := float64(blockBytes) / float64(uploadBytesS)

	fmt.Printf("patch: %d MiB in %d blocks; %d hosts; 1 tick = %.2fs\n\n",
		patchBytes>>20, blocks, hosts, tickSeconds)

	type rollout struct {
		name string
		cfg  barterdist.Config
	}
	plans := []rollout{
		{"unicast chain (pipeline)", barterdist.Config{Algorithm: barterdist.AlgoPipeline}},
		{"CDN tree (binary multicast)", barterdist.Config{Algorithm: barterdist.AlgoMulticastTree, TreeArity: 2}},
		{"blockwise binomial tree", barterdist.Config{Algorithm: barterdist.AlgoBinomialTree}},
		{"binomial pipeline (optimal)", barterdist.Config{Algorithm: barterdist.AlgoBinomialPipeline}},
		{"binomial pipeline + 4x server", barterdist.Config{Algorithm: barterdist.AlgoMultiServer, VirtualServers: 4}},
		{"randomized, complete overlay", barterdist.Config{Algorithm: barterdist.AlgoRandomized, Seed: 7}},
		{"randomized, degree-20 overlay", barterdist.Config{
			Algorithm: barterdist.AlgoRandomized,
			Overlay:   barterdist.OverlayRandomRegular, Degree: 20, Seed: 7,
		}},
		{"randomized, hypercube overlay", barterdist.Config{
			Algorithm: barterdist.AlgoRandomized,
			Overlay:   barterdist.OverlayHypercube, Seed: 7,
		}},
	}

	fmt.Printf("%-32s %8s %10s %12s\n", "rollout plan", "ticks", "minutes", "vs optimal")
	var optimal int
	for _, p := range plans {
		p.cfg.Nodes = nodes
		p.cfg.Blocks = blocks
		res, err := barterdist.Run(p.cfg)
		if err != nil {
			log.Fatalf("%s: %v", p.name, err)
		}
		if optimal == 0 {
			optimal = res.OptimalTime
		}
		fmt.Printf("%-32s %8d %10.1f %11.2fx\n",
			p.name, res.CompletionTime,
			float64(res.CompletionTime)*tickSeconds/60,
			float64(res.CompletionTime)/float64(optimal))
	}
	fmt.Printf("\ncooperative lower bound (Theorem 1): %d ticks = %.1f minutes\n",
		optimal, float64(optimal)*tickSeconds/60)
	fmt.Println("takeaway: cooperation turns an hours-long unicast rollout into")
	fmt.Println("minutes, and a random degree-20 overlay is already near-optimal —")
	fmt.Println("no rigid hypercube coordination needed (paper, Section 2.4).")
}
