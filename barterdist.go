// Package barterdist is a Go reproduction of "On Cooperative Content
// Distribution and the Price of Barter" (Ganesan & Seshadri, ICDCS
// 2005): a discrete-time simulator plus every algorithm the paper
// analyzes — the optimal cooperative Binomial Pipeline and its hypercube
// embedding, the baseline pipeline/tree schedules, the strict-barter
// Riffle Pipeline, and the BitTorrent-style randomized algorithms under
// cooperative, credit-limited, and triangular barter mechanisms.
//
// Quick start:
//
//	res, err := barterdist.Run(barterdist.Config{
//		Nodes:     1024,          // server + 1023 clients
//		Blocks:    1000,          // file size in blocks
//		Algorithm: barterdist.AlgoBinomialPipeline,
//	})
//	// res.CompletionTime == res.OptimalTime == 1009 ticks
//
// See the examples/ directory for richer scenarios and cmd/paperfigs for
// the harness that regenerates every figure and table in the paper's
// evaluation.
package barterdist

import (
	"barterdist/internal/arrival"
	"barterdist/internal/checkpoint"
	"barterdist/internal/core"
	"barterdist/internal/randomized"
)

// Config describes one dissemination run; see core.Config for field
// documentation.
type Config = core.Config

// Result reports a completed run; see core.Result.
type Result = core.Result

// Algorithm selects a content-distribution algorithm.
type Algorithm = core.Algorithm

// Overlay selects an overlay topology for the randomized algorithm.
type Overlay = core.Overlay

// Mechanism selects a barter mechanism for trace verification.
type Mechanism = core.Mechanism

// Policy selects the randomized algorithm's block-selection policy.
type Policy = randomized.Policy

// The algorithms of the paper (Sections 2.2, 2.3, 3.1, 2.4/3.2).
const (
	AlgoPipeline         = core.AlgoPipeline
	AlgoMulticastTree    = core.AlgoMulticastTree
	AlgoBinomialTree     = core.AlgoBinomialTree
	AlgoBinomialPipeline = core.AlgoBinomialPipeline
	AlgoMultiServer      = core.AlgoMultiServer
	AlgoRiffle           = core.AlgoRiffle
	AlgoRandomized       = core.AlgoRandomized
	AlgoTriangular       = core.AlgoTriangular
)

// Overlay topologies for AlgoRandomized.
const (
	OverlayComplete      = core.OverlayComplete
	OverlayRandomRegular = core.OverlayRandomRegular
	OverlayHypercube     = core.OverlayHypercube
	OverlayChain         = core.OverlayChain
)

// Barter mechanisms for Config.Verify.
const (
	MechanismNone       = core.MechanismNone
	MechanismStrict     = core.MechanismStrict
	MechanismCredit     = core.MechanismCredit
	MechanismTriangular = core.MechanismTriangular
)

// Block-selection policies.
const (
	PolicyRandom      = randomized.Random
	PolicyRarestFirst = randomized.RarestFirst
	PolicyLocalRare   = randomized.LocalRare
)

// ArrivalOptions configures an open-system swarm for Config.Arrivals:
// a seeded Poisson arrival process, departure policies (completion,
// selfish early exit, lingering seeds), and the stability watchdog's
// thresholds; see arrival.Options.
type ArrivalOptions = arrival.Options

// OpenResult carries an open-system run's verdict and robustness
// instrumentation (Result.Open); see arrival.OpenResult.
type OpenResult = arrival.OpenResult

// Verdict grades an open-system run.
type Verdict = arrival.Verdict

// SeedPolicy selects what completed peers do in an open-system swarm.
type SeedPolicy = arrival.SeedPolicy

// Open-system verdicts and unstable-run reasons.
const (
	VerdictDrained  = arrival.VerdictDrained
	VerdictUnstable = arrival.VerdictUnstable

	ReasonDivergence = arrival.ReasonDivergence
	ReasonStarvation = arrival.ReasonStarvation
	ReasonBudget     = arrival.ReasonBudget
)

// Seed-persistence policies for ArrivalOptions.SeedPolicy.
const (
	SeedDepart = arrival.SeedDepart
	SeedStay   = arrival.SeedStay
)

// DownloadUnlimited as Config.DownloadCap removes the download bound.
const DownloadUnlimited = core.DownloadUnlimited

// ErrStalled reports a run that did not complete within its tick budget.
var ErrStalled = core.ErrStalled

// CheckpointPolicy configures periodic crash-safe snapshots for
// Config.Checkpoint: every Every ticks the engine state is written
// atomically to Path.
type CheckpointPolicy = checkpoint.Policy

// Snapshot is a decoded checkpoint file; see ReadCheckpoint.
type Snapshot = checkpoint.Snapshot

// ErrCorruptCheckpoint reports a checkpoint file that failed structural
// or checksum validation — a torn write or bit rot is detected, never
// decoded into a wrong run.
var ErrCorruptCheckpoint = checkpoint.ErrCorrupt

// ReadCheckpoint loads and validates a snapshot written by a
// checkpointed Run; pass it to Resume to continue the interrupted run.
func ReadCheckpoint(path string) (*Snapshot, error) { return checkpoint.ReadFile(path) }

// Run executes one configured dissemination and returns its metrics.
// It is a pure forwarder: core.Run validates the configuration.
//
//lint:novalidate audited forwarder — core.Run calls cfg.Validate
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// Resume continues a checkpointed run from its snapshot. cfg must be
// the exact configuration of the interrupted Run call; the combined
// result is byte-identical to an uninterrupted run's.
//
//lint:novalidate audited forwarder — core.Resume calls cfg.Validate
func Resume(cfg Config, snap *Snapshot) (*Result, error) { return core.Resume(cfg, snap) }
