// Package shard defines the fixed logical decomposition of a peer
// population used by the intra-run sharded tick core.
//
// The central design decision is that the number of logical shards is a
// package constant, NOT the worker count: peers are assigned to one of
// Slots lanes by id alone, each lane owns an independent xrand
// sub-stream derived from the run seed via parallel.SeedStride, and the
// runtime worker count merely decides how many lanes are resolved
// concurrently between two barriers. Every per-peer random draw
// therefore comes from a stream whose identity and position depend only
// on (seed, peer id, tick history) — never on how many OS workers the
// host happens to run — which is what makes the sharded schedulers'
// fingerprints byte-identical for any worker count, the same contract
// internal/parallel proves for replicate-level parallelism.
package shard

import (
	"fmt"

	"barterdist/internal/parallel"
	"barterdist/internal/xrand"
)

// Slots is the fixed number of logical shards (lanes). It is part of
// the determinism contract: changing it changes every sharded
// scheduler's draw sequences and hence every recorded fingerprint, so
// it is a compile-time constant rather than a knob. Eight lanes keep
// the per-lane receiver-indexed scratch affordable at n = 10^6 while
// saturating the worker counts the test matrix pins (P ∈ {1,2,3,8}).
const Slots = 8

// Of returns the logical shard that owns peer v. Assignment is a pure
// function of the peer id so it is independent of the runtime layout.
func Of(v int) int { return v % Slots }

// StreamSeed derives lane sg's xrand seed from the run's base seed
// using the canonical golden-ratio stride, offset by one so lane 0 does
// not alias the scheduler's base stream (which keeps rewiring and other
// lane-independent draws on their own sequence).
func StreamSeed(base uint64, sg int) uint64 {
	return base + uint64(sg+1)*parallel.SeedStride
}

// Streams returns Slots freshly seeded lane streams for the given base
// seed.
func Streams(base uint64) [Slots]*xrand.Rand {
	var st [Slots]*xrand.Rand
	for sg := range st {
		st[sg] = xrand.New(StreamSeed(base, sg))
	}
	return st
}

// Members returns the ascending peer ids of lane sg in a population of
// n nodes: sg, sg+Slots, sg+2·Slots, … The caller owns the slice.
func Members(n, sg int) []int32 {
	if sg < 0 || sg >= Slots {
		panic(fmt.Sprintf("shard: lane %d out of range [0,%d)", sg, Slots))
	}
	ms := make([]int32, 0, (n-sg+Slots-1)/Slots)
	for v := sg; v < n; v += Slots {
		ms = append(ms, int32(v))
	}
	return ms
}

// Workers clamps a configured worker count to the useful range: 0 (the
// zero value) and 1 both mean inline sequential resolution, and more
// than Slots workers cannot help because there are only Slots lanes.
func Workers(w int) int {
	if w <= 1 {
		return 1
	}
	if w > Slots {
		return Slots
	}
	return w
}

// Run resolves the Slots lanes on w workers and waits for all of them —
// the per-round barrier of the sharded tick. w == 1 runs inline on the
// caller's goroutine with no allocation (the property the steady-state
// alloc regression tests pin). A panic in any lane is wrapped in
// *parallel.PanicError and returned after the barrier, never swallowed.
func Run(w int, task func(sg int) error) error {
	return parallel.ForEach(Workers(w), Slots, task)
}

// Shuffle32 permutes p in place by Fisher–Yates using draws from rng —
// the []int32 counterpart of xrand.Shuffle, consuming the identical
// draw sequence for the identical length.
func Shuffle32(rng *xrand.Rand, p []int32) {
	for i := len(p) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
