package shard

import (
	"errors"
	"sync/atomic"
	"testing"

	"barterdist/internal/parallel"
	"barterdist/internal/xrand"
)

func TestMembersPartition(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100, 1013} {
		seen := make([]int, n)
		total := 0
		for sg := 0; sg < Slots; sg++ {
			prev := -1
			for _, v := range Members(n, sg) {
				if Of(int(v)) != sg {
					t.Fatalf("n=%d: member %d listed in lane %d but Of=%d", n, v, sg, Of(int(v)))
				}
				if int(v) <= prev {
					t.Fatalf("n=%d lane %d: members not ascending at %d", n, sg, v)
				}
				prev = int(v)
				seen[v]++
				total++
			}
		}
		if total != n {
			t.Fatalf("n=%d: lanes cover %d nodes", n, total)
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: node %d covered %d times", n, v, c)
			}
		}
	}
}

func TestStreamSeedsDistinct(t *testing.T) {
	base := uint64(12345)
	seen := map[uint64]bool{base: true}
	for sg := 0; sg < Slots; sg++ {
		s := StreamSeed(base, sg)
		if seen[s] {
			t.Fatalf("lane %d seed %#x collides", sg, s)
		}
		seen[s] = true
	}
}

func TestWorkersClamp(t *testing.T) {
	for in, want := range map[int]int{-3: 1, 0: 1, 1: 1, 2: 2, 8: 8, 9: 8, 64: 8} {
		if got := Workers(in); got != want {
			t.Fatalf("Workers(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRunVisitsEveryLaneOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		var hits [Slots]atomic.Int32
		if err := Run(w, func(sg int) error {
			hits[sg].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for sg := range hits {
			if hits[sg].Load() != 1 {
				t.Fatalf("w=%d: lane %d resolved %d times", w, sg, hits[sg].Load())
			}
		}
	}
}

func TestRunWrapsPanics(t *testing.T) {
	err := Run(2, func(sg int) error {
		if sg == 5 {
			panic("lane blew up")
		}
		return nil
	})
	var pe *parallel.PanicError
	if err == nil {
		t.Fatal("panic was swallowed")
	}
	if !errors.As(err, &pe) {
		t.Fatalf("got %T (%v), want *parallel.PanicError", err, err)
	}
}

// TestShuffle32MatchesIntShuffle pins Shuffle32 to the identical draw
// sequence as xrand.Shuffle on the same length, which is what lets the
// sharded schedulers document their per-lane orders as "the canonical
// Fisher–Yates of the member list".
func TestShuffle32MatchesIntShuffle(t *testing.T) {
	const n = 257
	a := xrand.New(99)
	b := xrand.New(99)
	want := make([]int, n)
	got := make([]int32, n)
	for i := range want {
		want[i] = i * 3
		got[i] = int32(i * 3)
	}
	a.Shuffle(want)
	Shuffle32(b, got)
	for i := range want {
		if int(got[i]) != want[i] {
			t.Fatalf("permutation diverges at %d: %d vs %d", i, got[i], want[i])
		}
	}
}
