package asim

import (
	"testing"

	"barterdist/internal/adversary"
	"barterdist/internal/fault"
)

// TestAsyncShardWorkerInvariance is the async half of the shard
// fingerprint matrix: the event loop is sequential, so ShardWorkers is
// documented as a validated no-op — but the protocol's draws still come
// from per-shard streams, and this pins that neither the knob nor the
// stream decomposition can show through a trace. Scenario classes
// mirror the synchronous matrix: clean, faulty, and adversarial.
func TestAsyncShardWorkerInvariance(t *testing.T) {
	faultOpts := fault.Options{
		Seed:              17,
		CrashRate:         0.05,
		MaxCrashes:        4,
		RejoinDelay:       6,
		RejoinLosesBlocks: true,
		LossRate:          0.05,
	}
	advOpts := adversary.Options{
		Seed:                99,
		FreeRiderFrac:       0.15,
		FalseAdvertiserFrac: 0.1,
		CorrupterFrac:       0.1,
	}
	scenarios := []struct {
		name     string
		rarest   bool
		seed     uint64
		hasFault bool
		hasAdv   bool
	}{
		{"random+clean", false, 42, false, false},
		{"rarest+fault", true, 13, true, false},
		{"rarest+fault+adversary", true, 13, true, true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			run := func(workers int) string {
				cfg := Config{Nodes: 24, Blocks: 16, DownloadPorts: 1,
					RecordTrace: true, ShardWorkers: workers}
				if sc.hasFault {
					cfg.Fault = mustPlan(t, faultOpts)
				}
				if sc.hasAdv {
					cfg.Adversary = mustAdvPlan(t, cfg.Nodes, advOpts)
				}
				res, err := Run(cfg, NewAsyncRandomized(nil, sc.rarest, 1, sc.seed))
				if err != nil {
					t.Fatalf("ShardWorkers=%d: Run: %v", workers, err)
				}
				return asimFingerprint(res)
			}
			want := run(1)
			for _, p := range []int{2, 3, 8} {
				if got := run(p); got != want {
					t.Fatalf("ShardWorkers=%d diverged from the single-worker reference:\n--- P=1 ---\n%.2000s\n--- P=%d ---\n%.2000s",
						p, want, p, got)
				}
			}
		})
	}
}
