package asim

import (
	"fmt"

	"barterdist/internal/adversary"
	"barterdist/internal/checkpoint"
	"barterdist/internal/graph"
	"barterdist/internal/shard"
	"barterdist/internal/xrand"
)

// AsyncRandomized is the asynchronous counterpart of the paper's
// randomized algorithm: whenever a node's upload port frees, it sends a
// random useful block to a random interested neighbor with a free
// download port — "each node simply using its links at its own pace",
// the asynchrony variant sketched in Section 2.3.4.
type AsyncRandomized struct {
	// Graph is the overlay; nil means the complete graph.
	Graph *graph.Graph
	// RarestFirst selects the globally rarest useful block instead of a
	// uniform one.
	RarestFirst bool
	// DownloadPorts mirrors Config.DownloadPorts for target filtering.
	DownloadPorts int

	// srng holds one independent draw stream per logical shard; every
	// draw made on behalf of uploader u comes from srng[shard.Of(u)],
	// the same stream-per-lane discipline the synchronous schedulers
	// follow. The event loop is sequential, so this buys no concurrency
	// here — it keeps the two engines' RNG derivation identical, which
	// is what lets one DESIGN.md section describe both.
	srng    [shard.Slots]*xrand.Rand
	freq    []int
	scratch []int32
	// guard is the per-receiver quarantine table, created lazily when
	// the simulation reports an adversary plan (nil and zero-overhead
	// otherwise). Receivers that caught a peer stalling or garbling
	// transfers refuse further uploads from it for an exponentially
	// growing cool-down, mirroring the sync schedulers' defense.
	guard *adversary.Guard
}

var (
	_ Protocol               = (*AsyncRandomized)(nil)
	_ FaultAware             = (*AsyncRandomized)(nil)
	_ AdversaryAware         = (*AsyncRandomized)(nil)
	_ CheckpointableProtocol = (*AsyncRandomized)(nil)
)

// NewAsyncRandomized returns the protocol with the given seed.
func NewAsyncRandomized(g *graph.Graph, rarest bool, ports int, seed uint64) *AsyncRandomized {
	return &AsyncRandomized{
		Graph:         g,
		RarestFirst:   rarest,
		DownloadPorts: ports,
		srng:          shard.Streams(seed),
	}
}

// Wakeups implements Protocol (no timers).
func (a *AsyncRandomized) Wakeups() []float64 { return nil }

// OnTimer implements Protocol.
func (a *AsyncRandomized) OnTimer(int, *State) {}

// Neighbors implements Protocol.
func (a *AsyncRandomized) Neighbors(v int) []int32 {
	if a.Graph == nil {
		return nil
	}
	return a.Graph.Neighbors(v)
}

// OnDeliver implements Protocol: maintain block replication counts for
// Rarest-First.
func (a *AsyncRandomized) OnDeliver(_, _, block int, s *State) {
	a.ensure(s)
	a.freq[block]++
}

func (a *AsyncRandomized) ensure(s *State) {
	if a.freq == nil {
		a.freq = make([]int, s.K())
		for b := range a.freq {
			a.freq[b] = 1
		}
	}
	if a.guard == nil && s.Adversarial() {
		if g, err := adversary.NewGuard(adversary.GuardOptions{}); err == nil {
			a.guard = g
		}
	}
}

// recomputeFreq rebuilds the replication counts from the alive nodes'
// holdings; crashes, wiped rejoins, and losses all invalidate the
// incremental statistics at once, and the rebuild is cheap relative to
// how rarely faults fire.
func (a *AsyncRandomized) recomputeFreq(s *State) {
	a.ensure(s)
	for b := range a.freq {
		a.freq[b] = 0
	}
	for v := 0; v < s.N(); v++ {
		if s.Alive(v) {
			s.Blocks(v).AccumulateCounts(a.freq, 1)
		}
	}
}

// OnCrash implements FaultAware: the victim's blocks no longer serve
// the swarm, so rarity statistics are rebuilt over the survivors.
func (a *AsyncRandomized) OnCrash(_ int, s *State) { a.recomputeFreq(s) }

// OnRejoin implements FaultAware.
func (a *AsyncRandomized) OnRejoin(_ int, _ bool, s *State) { a.recomputeFreq(s) }

// OnLoss implements FaultAware: the block never arrived, so the count
// OnDeliver would have added is simply never added — nothing to undo.
// A corrupt loss is evidence against the sender, so the receiver's
// quarantine table is struck even when the corruption came from the
// fault layer rather than a deliberate adversary — the receiver cannot
// tell the difference, and treating them alike keeps the defense
// strategy-free.
func (a *AsyncRandomized) OnLoss(from, to, _ int, corrupt bool, s *State) {
	if corrupt && a.guard != nil {
		a.guard.Strike(to, from, s.Now())
	}
}

// OnAdversaryDrop implements AdversaryAware: the sender's strategy
// stalled or garbled the transfer, so the receiver quarantines it.
// Rarity statistics need no undo — OnDeliver never counted the block.
func (a *AsyncRandomized) OnAdversaryDrop(from, to, _ int, _ bool, s *State) {
	a.ensure(s)
	if a.guard != nil {
		a.guard.Strike(to, from, s.Now())
	}
}

// NextUpload implements Protocol. All draws for uploader u come from
// u's shard stream.
func (a *AsyncRandomized) NextUpload(u int, s *State) (Upload, bool) {
	a.ensure(s)
	rng := a.srng[shard.Of(u)]
	v := a.pickTarget(rng, u, s)
	if v < 0 {
		return Upload{}, false
	}
	b := a.pickBlock(rng, u, v, s)
	if b < 0 {
		return Upload{}, false
	}
	return Upload{To: v, Block: b}, true
}

func (a *AsyncRandomized) pickTarget(rng *xrand.Rand, u int, s *State) int {
	if a.Graph != nil {
		a.scratch = append(a.scratch[:0], a.Graph.Neighbors(u)...)
	} else {
		a.scratch = a.scratch[:0]
		for v := 0; v < s.N(); v++ {
			if v != u {
				a.scratch = append(a.scratch, int32(v))
			}
		}
	}
	for i := range a.scratch {
		j := i + rng.Intn(len(a.scratch)-i)
		a.scratch[i], a.scratch[j] = a.scratch[j], a.scratch[i]
		v := int(a.scratch[i])
		if v == 0 || !s.Alive(v) {
			continue
		}
		if a.DownloadPorts != Unlimited && s.InFlightCount(v) >= a.DownloadPorts {
			continue
		}
		if a.guard != nil && a.guard.Blocked(v, u, s.Now()) {
			continue
		}
		if a.usefulFor(u, v, s) {
			return v
		}
	}
	return -1
}

// usefulFor reports whether u holds a block v needs that is not already
// in flight to v.
func (a *AsyncRandomized) usefulFor(u, v int, s *State) bool {
	if s.InFlightCount(v) == 0 {
		// Nothing in flight: v is interested iff u holds any block v
		// lacks, which the word-level witness search answers without a
		// callback per block.
		return s.Blocks(v).FirstMissingIn(s.Blocks(u)) >= 0
	}
	need := false
	s.Blocks(u).IterDiff(s.Blocks(v), func(b int) bool {
		if s.InFlightTo(v, b) {
			return true
		}
		need = true
		return false
	})
	return need
}

func (a *AsyncRandomized) pickBlock(rng *xrand.Rand, u, v int, s *State) int {
	bu, bv := s.Blocks(u), s.Blocks(v)
	// offered enumerates the blocks u can give v, ascending; a complete
	// sender offers exactly v's complement (see Scheduler.pickBlock).
	offered := func(fn func(b int) bool) {
		if bu.Full() {
			bv.IterateMissing(fn)
		} else {
			bu.IterDiff(bv, fn)
		}
	}
	if a.RarestFirst {
		best, bestFreq, ties := -1, int(^uint(0)>>1), 0
		offered(func(b int) bool {
			if s.InFlightTo(v, b) {
				return true
			}
			switch {
			case a.freq[b] < bestFreq:
				best, bestFreq, ties = b, a.freq[b], 1
			case a.freq[b] == bestFreq:
				ties++
				if rng.Intn(ties) == 0 {
					best = b
				}
			}
			return true
		})
		return best
	}
	count := 0
	offered(func(b int) bool {
		if !s.InFlightTo(v, b) {
			count++
		}
		return true
	})
	if count == 0 {
		return -1
	}
	target := rng.Intn(count)
	chosen := -1
	offered(func(b int) bool {
		if s.InFlightTo(v, b) {
			return true
		}
		if target == 0 {
			chosen = b
			return false
		}
		target--
		return true
	})
	return chosen
}

// SnapshotState implements CheckpointableProtocol: the shard streams,
// the rarity counts, and the quarantine table are the protocol's entire
// mutable state (scratch is dead between NextUpload calls). A
// lane-count sentinel precedes the streams as a format version, so a
// checkpoint from a build with a different logical decomposition fails
// loudly.
func (a *AsyncRandomized) SnapshotState(enc *checkpoint.Encoder) error {
	enc.Int(shard.Slots)
	for _, rng := range a.srng {
		rng.Snapshot(enc)
	}
	enc.Bool(a.freq != nil)
	if a.freq != nil {
		enc.Ints(a.freq)
	}
	enc.Bool(a.guard != nil)
	if a.guard != nil {
		a.guard.Snapshot(enc)
	}
	return nil
}

// RestoreState implements CheckpointableProtocol.
func (a *AsyncRandomized) RestoreState(dec *checkpoint.Decoder, s *State) error {
	a.ensure(s)
	slots := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if slots != shard.Slots {
		return checkpoint.Corruptf("asim: snapshot has %d shard lanes, this build has %d", slots, shard.Slots)
	}
	for _, rng := range a.srng {
		if err := rng.RestoreState(dec); err != nil {
			return err
		}
	}
	if !dec.Bool() {
		if err := dec.Err(); err != nil {
			return err
		}
		// ensure ran before the first event of the original run too, so a
		// mid-run snapshot always carries the counts.
		return checkpoint.Corruptf("asim: snapshot lacks rarity counts")
	}
	freq := dec.Ints()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(freq) != s.K() {
		return checkpoint.Corruptf("asim: rarity counts sized %d for %d blocks", len(freq), s.K())
	}
	for b, f := range freq {
		if f < 0 {
			return checkpoint.Corruptf("asim: rarity count %d of block %d negative", f, b)
		}
	}
	copy(a.freq, freq)
	if dec.Bool() != (a.guard != nil) {
		if dec.Err() == nil {
			return checkpoint.Corruptf("asim: guard presence mismatch (different adversary config?)")
		}
	}
	if a.guard != nil {
		return a.guard.RestoreState(dec)
	}
	return dec.Err()
}

// String describes the protocol for experiment output.
func (a *AsyncRandomized) String() string {
	policy := "random"
	if a.RarestFirst {
		policy = "rarest-first"
	}
	overlay := "complete"
	if a.Graph != nil {
		overlay = a.Graph.Name()
	}
	return fmt.Sprintf("async-randomized(%s,%s)", policy, overlay)
}
