package asim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"barterdist/internal/checkpoint"
	"barterdist/internal/fault"
)

// CheckpointableProtocol is implemented by protocols whose internal
// state (RNG streams, rarity tables, quarantine tables) can be
// persisted and restored. The engine refuses to checkpoint a run whose
// protocol does not implement it.
type CheckpointableProtocol interface {
	Protocol
	// SnapshotState appends the protocol's full mutable state to enc.
	SnapshotState(enc *checkpoint.Encoder) error
	// RestoreState overwrites the protocol's state from dec, given the
	// already-restored simulation state (protocols may rebuild derived
	// caches from it). It is called exactly once, before the first
	// resumed event.
	RestoreState(dec *checkpoint.Decoder, s *State) error
}

// Section names of an asynchronous-engine snapshot.
const (
	asecMeta      = "asim/meta"
	asecState     = "asim/state"
	asecResult    = "asim/result"
	asecEngine    = "asim/engine"
	asecFault     = "asim/fault"
	asecAdversary = "asim/adversary"
	asecArrival   = "asim/arrival"
	asecProtocol  = "asim/protocol"
)

// snapshot captures the engine's full state between two handled events.
// The pending queue is encoded in canonical (at, seq) order — heap
// layout must not leak into the bytes — and cancelled events are
// omitted: their references were already torn down, so a resumed run
// simply never sees them.
func (e *engine) snapshot() (*checkpoint.Snapshot, error) {
	cp, ok := e.proto.(CheckpointableProtocol)
	if !ok {
		return nil, fmt.Errorf("asim: protocol %T does not support checkpointing", e.proto)
	}
	snap := &checkpoint.Snapshot{}
	c := e.cfg

	me := checkpoint.NewEncoder(64 + 16*c.Nodes)
	me.Int(c.Nodes)
	me.Int(c.Blocks)
	me.F64s(c.UploadRate)
	me.F64s(c.DownloadRate)
	me.Int(c.DownloadPorts)
	me.F64(c.MaxTime)
	me.Bool(c.RecordTrace)
	me.Bool(c.Fault != nil)
	me.Bool(e.adv != nil)
	me.Bool(e.oa != nil)
	snap.Add(asecMeta, me.Bytes())

	st := e.st
	se := checkpoint.NewEncoder(64 + c.Nodes*(c.Blocks/8+16))
	se.F64(st.now)
	se.Int(st.complete)
	for _, h := range st.have {
		se.Uint64s(h.Words())
	}
	se.Bool(st.alive != nil)
	if st.alive != nil {
		se.Bools(st.alive)
		se.Int(st.aliveClients)
		se.Int(st.pendingRejoin)
	}
	se.Bool(st.honest != nil)
	if st.honest != nil {
		se.Int(st.completeHonest)
		se.Int(st.aliveHonest)
		se.Int(st.pendingRejoinHonest)
	}
	snap.Add(asecState, se.Bytes())

	res := e.res
	re := checkpoint.NewEncoder(256 + 32*len(res.Trace))
	re.F64s(res.ClientCompletion)
	re.Int(res.Transfers)
	re.Int(res.Lost)
	re.Int(res.Corrupt)
	re.Int(len(res.FaultLog))
	for _, ev := range res.FaultLog {
		encodeFaultEvent(re, ev)
	}
	re.Int(res.AdvStalled)
	re.Int(res.AdvCorrupt)
	re.Int(res.HonestUseful)
	re.Int(res.HonestWasted)
	if c.RecordTrace {
		re.Int(len(res.Trace))
		for _, tr := range res.Trace {
			re.F64(tr.Start)
			re.F64(tr.End)
			re.U32(uint32(tr.From))
			re.U32(uint32(tr.To))
			re.U32(uint32(tr.Block))
			re.Bool(tr.Lost)
			re.Bool(tr.Corrupt)
			re.Bool(tr.Adversary)
		}
	}
	snap.Add(asecResult, re.Bytes())

	pend := make([]*event, 0, len(e.queue))
	for _, ev := range e.queue {
		if !ev.cancelled {
			pend = append(pend, ev)
		}
	}
	sort.Slice(pend, func(i, j int) bool {
		if pend[i].at != pend[j].at {
			return pend[i].at < pend[j].at
		}
		return pend[i].seq < pend[j].seq
	})
	ee := checkpoint.NewEncoder(64 + 40*len(pend))
	ee.Int(e.seq)
	ee.Int(e.handled)
	ee.Bools(e.parked)
	ee.Int(len(pend))
	for _, ev := range pend {
		ee.F64(ev.at)
		ee.Int(ev.seq)
		ee.U8(uint8(ev.kind))
		switch ev.kind {
		case evComplete:
			ee.U32(uint32(ev.from))
			ee.U32(uint32(ev.to))
			ee.U32(uint32(ev.block))
			ee.F64(ev.start)
		case evTimer:
			ee.Int(ev.timer)
		case evCrash, evArrive:
			// The event time says it all; cross-checked against the
			// restored fault/arrival plan position on resume.
		case evRejoin, evAdvWake, evDepart:
			ee.U32(uint32(ev.node))
		}
	}
	snap.Add(asecEngine, ee.Bytes())

	if c.Fault != nil {
		fe := checkpoint.NewEncoder(128)
		c.Fault.Snapshot(fe)
		snap.Add(asecFault, fe.Bytes())
	}
	if e.adv != nil {
		ae := checkpoint.NewEncoder(64 + 16*c.Nodes)
		e.adv.Snapshot(ae)
		snap.Add(asecAdversary, ae.Bytes())
	}
	if e.oa != nil {
		oe := checkpoint.NewEncoder(256 + 16*c.Nodes)
		e.oa.snapshot(oe)
		snap.Add(asecArrival, oe.Bytes())
	}

	pe := checkpoint.NewEncoder(1024)
	if err := cp.SnapshotState(pe); err != nil {
		return nil, fmt.Errorf("asim: protocol snapshot: %w", err)
	}
	snap.Add(asecProtocol, pe.Bytes())
	return snap, nil
}

// restore overwrites a freshly constructed engine (newEngine output,
// nothing kicked) with the snapshot's state. The derived structures the
// snapshot omits — inFlight maps, upload ports, advWakePending — are
// rebuilt from the decoded event queue, and every rebuilt invariant is
// cross-checked so a corrupted snapshot is rejected rather than resumed
// into a diverging run.
func (e *engine) restore(snap *checkpoint.Snapshot) error {
	cp, ok := e.proto.(CheckpointableProtocol)
	if !ok {
		return fmt.Errorf("asim: protocol %T does not support checkpointing", e.proto)
	}
	c := e.cfg

	mp, err := snap.Section(asecMeta)
	if err != nil {
		return err
	}
	md := checkpoint.NewDecoder(mp)
	nodes, blocks := md.Int(), md.Int()
	upRate := md.F64s()
	downRate := md.F64s()
	ports := md.Int()
	maxTime := md.F64()
	recTrace, hasFault, hasAdv := md.Bool(), md.Bool(), md.Bool()
	hasOpen := md.Bool()
	if err := md.Finish(); err != nil {
		return err
	}
	if nodes != c.Nodes || blocks != c.Blocks || ports != c.DownloadPorts ||
		maxTime != c.MaxTime || recTrace != c.RecordTrace ||
		hasFault != (c.Fault != nil) || hasAdv != (e.adv != nil) ||
		hasOpen != (e.oa != nil) ||
		!equalF64s(upRate, c.UploadRate) || !equalF64s(downRate, c.DownloadRate) {
		return fmt.Errorf("asim: snapshot taken under a different config (snapshot n=%d k=%d ports=%d maxTime=%v trace=%v fault=%v adv=%v open=%v)",
			nodes, blocks, ports, maxTime, recTrace, hasFault, hasAdv, hasOpen)
	}

	sp, err := snap.Section(asecState)
	if err != nil {
		return err
	}
	sd := checkpoint.NewDecoder(sp)
	st := e.st
	now := sd.F64()
	complete := sd.Int()
	if sd.Err() == nil && (math.IsNaN(now) || math.IsInf(now, 0) || now < 0 ||
		complete < 0 || complete > c.Nodes-1) {
		return checkpoint.Corruptf("asim: time %v / complete %d out of range", now, complete)
	}
	for v := range st.have {
		words := sd.Uint64s()
		if err := sd.Err(); err != nil {
			return err
		}
		if err := st.have[v].SetWords(words); err != nil {
			return checkpoint.Corruptf("asim: node %d blocks: %v", v, err)
		}
	}
	if !st.have[0].Full() {
		return checkpoint.Corruptf("asim: server no longer holds the full file")
	}
	if sd.Bool() != (st.alive != nil) {
		if sd.Err() == nil {
			return checkpoint.Corruptf("asim: fault-state presence mismatch")
		}
	}
	if st.alive != nil {
		alive := sd.Bools()
		aliveClients := sd.Int()
		pendingRejoin := sd.Int()
		if err := sd.Err(); err != nil {
			return err
		}
		if len(alive) != c.Nodes || !alive[0] {
			return checkpoint.Corruptf("asim: invalid alive mask")
		}
		n := 0
		for _, a := range alive[1:] {
			if a {
				n++
			}
		}
		if aliveClients != n || pendingRejoin < 0 || pendingRejoin > c.Nodes-1 {
			return checkpoint.Corruptf("asim: alive/rejoin counters inconsistent with mask")
		}
		copy(st.alive, alive)
		st.aliveClients = aliveClients
		st.pendingRejoin = pendingRejoin
	}
	if sd.Bool() != (st.honest != nil) {
		if sd.Err() == nil {
			return checkpoint.Corruptf("asim: adversary-state presence mismatch")
		}
	}
	if st.honest != nil {
		st.completeHonest = sd.Int()
		st.aliveHonest = sd.Int()
		st.pendingRejoinHonest = sd.Int()
	}
	if err := sd.Finish(); err != nil {
		return err
	}
	st.now = now
	st.complete = complete
	if err := e.checkProgressCounters(); err != nil {
		return err
	}

	rp, err := snap.Section(asecResult)
	if err != nil {
		return err
	}
	rd := checkpoint.NewDecoder(rp)
	res := e.res
	cc := rd.F64s()
	transfers := rd.Int()
	lost := rd.Int()
	corrupt := rd.Int()
	nEvents := rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	if len(cc) != c.Nodes {
		return checkpoint.Corruptf("asim: completion slice sized %d for %d nodes", len(cc), c.Nodes)
	}
	for v, t := range cc {
		if math.IsNaN(t) || t < 0 || t > now {
			return checkpoint.Corruptf("asim: node %d completion time %v out of range", v, t)
		}
	}
	if transfers < 0 || lost < 0 || corrupt < 0 || nEvents < 0 || nEvents > rd.Remaining() {
		return checkpoint.Corruptf("asim: negative result counters")
	}
	copy(res.ClientCompletion, cc)
	res.Transfers, res.Lost, res.Corrupt = transfers, lost, corrupt
	res.FaultLog = nil
	prevT := 0.0
	for i := 0; i < nEvents; i++ {
		ev, err := decodeFaultEvent(rd, st.n)
		if err != nil {
			return err
		}
		if ev.Time < prevT || ev.Time > now {
			return checkpoint.Corruptf("asim: fault log entry %d out of order", i)
		}
		prevT = ev.Time
		res.FaultLog = append(res.FaultLog, ev)
	}
	res.AdvStalled = rd.Int()
	res.AdvCorrupt = rd.Int()
	res.HonestUseful = rd.Int()
	res.HonestWasted = rd.Int()
	if rd.Err() == nil && (res.AdvStalled < 0 || res.AdvCorrupt < 0 ||
		res.HonestUseful < 0 || res.HonestWasted < 0) {
		return checkpoint.Corruptf("asim: negative adversary counters")
	}
	if c.RecordTrace {
		nTrace := rd.Int()
		if err := rd.Err(); err != nil {
			return err
		}
		if nTrace < 0 || nTrace > rd.Remaining() {
			return checkpoint.Corruptf("asim: trace length %d invalid", nTrace)
		}
		res.Trace = res.Trace[:0]
		prevEnd := 0.0
		for i := 0; i < nTrace; i++ {
			var tr TransferRecord
			tr.Start, tr.End = rd.F64(), rd.F64()
			tr.From, tr.To, tr.Block = int32(rd.U32()), int32(rd.U32()), int32(rd.U32())
			tr.Lost, tr.Corrupt, tr.Adversary = rd.Bool(), rd.Bool(), rd.Bool()
			if err := rd.Err(); err != nil {
				return err
			}
			if tr.From < 0 || int(tr.From) >= st.n || tr.To < 0 || int(tr.To) >= st.n ||
				tr.From == tr.To || tr.Block < 0 || int(tr.Block) >= st.k {
				return checkpoint.Corruptf("asim: trace record %d out of range", i)
			}
			if math.IsNaN(tr.Start) || tr.Start < 0 || tr.End < tr.Start ||
				tr.End > now || tr.End < prevEnd {
				return checkpoint.Corruptf("asim: trace record %d has invalid times", i)
			}
			if (tr.Corrupt || tr.Adversary) && !tr.Lost {
				return checkpoint.Corruptf("asim: trace record %d corrupt/adversary but not lost", i)
			}
			prevEnd = tr.End
			res.Trace = append(res.Trace, tr)
		}
	}
	if err := rd.Finish(); err != nil {
		return err
	}

	if c.Fault != nil {
		fp, err := snap.Section(asecFault)
		if err != nil {
			return err
		}
		fd := checkpoint.NewDecoder(fp)
		if err := c.Fault.RestoreState(fd); err != nil {
			return err
		}
		if err := fd.Finish(); err != nil {
			return err
		}
	}
	if e.adv != nil {
		ap, err := snap.Section(asecAdversary)
		if err != nil {
			return err
		}
		ad := checkpoint.NewDecoder(ap)
		if err := e.adv.RestoreState(ad); err != nil {
			return err
		}
		if err := ad.Finish(); err != nil {
			return err
		}
	}

	if e.oa != nil {
		op, err := snap.Section(asecArrival)
		if err != nil {
			return err
		}
		od := checkpoint.NewDecoder(op)
		if err := e.oa.restore(od, st); err != nil {
			return err
		}
		if err := od.Finish(); err != nil {
			return err
		}
	}

	if err := e.restoreQueue(snap); err != nil {
		return err
	}

	pp, err := snap.Section(asecProtocol)
	if err != nil {
		return err
	}
	pd := checkpoint.NewDecoder(pp)
	if err := cp.RestoreState(pd, st); err != nil {
		return fmt.Errorf("asim: protocol restore: %w", err)
	}
	return pd.Finish()
}

// restoreQueue decodes the pending events and rebuilds every structure
// derived from them: inFlight maps, upload ports, curUpload references,
// and advWakePending flags. It must run after the state and plan
// sections are restored — event validation reads both.
func (e *engine) restoreQueue(snap *checkpoint.Snapshot) error {
	c, st := e.cfg, e.st
	ep, err := snap.Section(asecEngine)
	if err != nil {
		return err
	}
	ed := checkpoint.NewDecoder(ep)
	seq := ed.Int()
	handled := ed.Int()
	parked := ed.Bools()
	nPend := ed.Int()
	if err := ed.Err(); err != nil {
		return err
	}
	if seq < 0 || handled < 0 || len(parked) != c.Nodes {
		return checkpoint.Corruptf("asim: engine counters/park mask invalid")
	}
	if nPend < 0 || nPend > ed.Remaining() {
		return checkpoint.Corruptf("asim: pending event count %d invalid", nPend)
	}

	// Drop whatever newEngine scheduled (initial timers, first crash):
	// the snapshot's queue replaces it wholesale.
	e.queue = e.queue[:0]
	nTimers := len(e.proto.Wakeups())
	timerSeen := make([]bool, nTimers)
	rejoinSeen := make([]bool, c.Nodes)
	rejoins, rejoinsHonest := 0, 0
	crashSeen := false
	crashAt := 0.0
	arriveSeen := false
	arriveAt := 0.0
	departSeen := make([]bool, c.Nodes)
	departs := 0
	prevAt, prevSeq := math.Inf(-1), 0
	for i := 0; i < nPend; i++ {
		at := ed.F64()
		sq := ed.Int()
		kind := eventKind(ed.U8())
		if err := ed.Err(); err != nil {
			return err
		}
		if math.IsNaN(at) || math.IsInf(at, 0) || at < st.now {
			return checkpoint.Corruptf("asim: event %d at t=%v predates t=%v", i, at, st.now)
		}
		if sq < 1 || sq > seq {
			return checkpoint.Corruptf("asim: event %d seq %d outside [1, %d]", i, sq, seq)
		}
		if at < prevAt || (at == prevAt && sq <= prevSeq) {
			return checkpoint.Corruptf("asim: event %d not in canonical order", i)
		}
		prevAt, prevSeq = at, sq
		ev := e.newEvent()
		ev.at, ev.seq, ev.kind = at, sq, kind
		switch kind {
		case evComplete:
			from, to, block := int(ed.U32()), int(ed.U32()), int(ed.U32())
			start := ed.F64()
			if err := ed.Err(); err != nil {
				return err
			}
			if from < 0 || from >= st.n || to < 0 || to >= st.n || from == to ||
				block < 0 || block >= st.k {
				return checkpoint.Corruptf("asim: transfer event %d out of range", i)
			}
			if !st.Alive(from) || !st.Alive(to) {
				return checkpoint.Corruptf("asim: transfer event %d touches a dead node", i)
			}
			if !st.have[from].Has(block) || st.have[to].Has(block) {
				return checkpoint.Corruptf("asim: transfer event %d inconsistent with ownership", i)
			}
			if e.curUpload[from] != nil {
				return checkpoint.Corruptf("asim: node %d has two uploads in flight", from)
			}
			if _, dup := st.inFlight[to][int32(block)]; dup {
				return checkpoint.Corruptf("asim: block %d twice in flight to node %d", block, to)
			}
			if c.DownloadPorts != Unlimited && len(st.inFlight[to]) >= c.DownloadPorts {
				return checkpoint.Corruptf("asim: node %d exceeds its download ports", to)
			}
			rate := c.UploadRate[from]
			if down := c.DownloadRate[to] / math.Max(1, float64(c.DownloadPorts)); down < rate {
				rate = down
			}
			if math.IsNaN(start) || start < 0 || start > st.now || at != start+1/rate {
				return checkpoint.Corruptf("asim: transfer event %d duration inconsistent with rates", i)
			}
			ev.from, ev.to, ev.block, ev.start = from, to, block, start
			st.inFlight[to][int32(block)] = ev
			e.curUpload[from] = ev
			e.uploading[from] = true
		case evTimer:
			tm := ed.Int()
			if err := ed.Err(); err != nil {
				return err
			}
			if tm < 0 || tm >= nTimers || timerSeen[tm] {
				return checkpoint.Corruptf("asim: timer event %d invalid or duplicated", tm)
			}
			timerSeen[tm] = true
			ev.timer = tm
		case evCrash:
			if c.Fault == nil || crashSeen {
				return checkpoint.Corruptf("asim: unexpected crash event")
			}
			crashSeen, crashAt = true, at
		case evRejoin:
			node := int(ed.U32())
			if err := ed.Err(); err != nil {
				return err
			}
			if c.Fault == nil || node < 1 || node >= st.n || st.alive[node] || rejoinSeen[node] {
				return checkpoint.Corruptf("asim: rejoin event for node %d invalid", node)
			}
			rejoinSeen[node] = true
			rejoins++
			if st.honest != nil && st.honest[node] {
				rejoinsHonest++
			}
			ev.node = node
		case evAdvWake:
			node := int(ed.U32())
			if err := ed.Err(); err != nil {
				return err
			}
			if e.adv == nil || node < 0 || node >= st.n || e.advWakePending[node] {
				return checkpoint.Corruptf("asim: throttle wake for node %d invalid", node)
			}
			e.advWakePending[node] = true
			ev.node = node
		case evArrive:
			if e.oa == nil || arriveSeen {
				return checkpoint.Corruptf("asim: unexpected arrival event")
			}
			arriveSeen, arriveAt = true, at
		case evDepart:
			node := int(ed.U32())
			if err := ed.Err(); err != nil {
				return err
			}
			if e.oa == nil || node < 1 || node >= st.n || !st.alive[node] ||
				!e.oa.departScheduled[node] || departSeen[node] {
				return checkpoint.Corruptf("asim: departure event for node %d invalid", node)
			}
			departSeen[node] = true
			departs++
			ev.node = node
		default:
			return checkpoint.Corruptf("asim: unknown event kind %d", kind)
		}
		e.queue = append(e.queue, ev)
	}
	if err := ed.Finish(); err != nil {
		return err
	}
	heap.Init(&e.queue)

	for _, tm := range timerSeen {
		if !tm {
			return checkpoint.Corruptf("asim: a protocol timer has no pending event")
		}
	}
	if c.Fault != nil {
		if st.pendingRejoin != rejoins || st.pendingRejoinHonest != rejoinsHonest {
			return checkpoint.Corruptf("asim: %d queued rejoins for %d pending", rejoins, st.pendingRejoin)
		}
		at, ok := c.Fault.NextCrash()
		expect := ok && at <= c.MaxTime
		if expect != crashSeen || (expect && crashAt != at) {
			return checkpoint.Corruptf("asim: crash event inconsistent with fault plan position")
		}
	}
	if e.oa != nil {
		// Exactly one arrival event is pending unless the pool is
		// exhausted or the stream was cut by MaxTime, and its time is
		// the restored plan's next draw.
		expect := int(e.oa.nextID) < c.Nodes && !e.oa.truncated
		if expect != arriveSeen || (expect && arriveAt != c.Arrivals.NextArrival()) {
			return checkpoint.Corruptf("asim: arrival event inconsistent with arrival plan position")
		}
		// Every scheduled-but-alive departure has exactly one event.
		want := 0
		for v := 1; v < st.n; v++ {
			if e.oa.departScheduled[v] && st.alive[v] {
				want++
			}
		}
		if departs != want {
			return checkpoint.Corruptf("asim: %d queued departures for %d scheduled", departs, want)
		}
	}
	for v, p := range parked {
		if p && (e.uploading[v] || !st.Alive(v)) {
			return checkpoint.Corruptf("asim: node %d parked while uploading or dead", v)
		}
	}
	copy(e.parked, parked)
	e.seq = seq
	e.handled = handled
	return nil
}

// checkProgressCounters recounts completion from the restored ownership
// and liveness masks and rejects snapshots whose running counters
// disagree — the cheap end-to-end check that the sections belong
// together.
func (e *engine) checkProgressCounters() error {
	st := e.st
	complete, completeHonest, aliveHonest := 0, 0, 0
	for v := 1; v < st.n; v++ {
		if st.alive != nil && !st.alive[v] {
			continue
		}
		honest := st.honest == nil || st.honest[v]
		if honest {
			aliveHonest++
		}
		if st.have[v].Full() {
			complete++
			if honest {
				completeHonest++
			}
		}
	}
	if st.complete != complete {
		return checkpoint.Corruptf("asim: %d complete clients recorded, mask says %d", st.complete, complete)
	}
	if st.honest != nil {
		wantAlive := aliveHonest
		if st.alive == nil {
			wantAlive = st.honestClients
		}
		if st.completeHonest != completeHonest || st.aliveHonest != wantAlive {
			return checkpoint.Corruptf("asim: honest progress counters inconsistent with masks")
		}
	}
	return nil
}

func encodeFaultEvent(e *checkpoint.Encoder, ev fault.Event) {
	e.F64(ev.Time)
	e.U32(uint32(ev.Node))
	e.U8(uint8(ev.Kind))
	e.Bool(ev.Wiped)
}

func decodeFaultEvent(d *checkpoint.Decoder, n int) (fault.Event, error) {
	ev := fault.Event{
		Time: d.F64(),
		Node: int32(d.U32()),
		Kind: fault.Kind(d.U8()),
	}
	ev.Wiped = d.Bool()
	if err := d.Err(); err != nil {
		return fault.Event{}, err
	}
	if ev.Node < 1 || int(ev.Node) >= n {
		return fault.Event{}, checkpoint.Corruptf("asim: fault event node %d out of range", ev.Node)
	}
	switch ev.Kind {
	case fault.Crash, fault.Rejoin, fault.Arrive, fault.Depart:
	default:
		return fault.Event{}, checkpoint.Corruptf("asim: fault event kind %d invalid", ev.Kind)
	}
	return ev, nil
}

// snapshot appends the open-system bookkeeping: the arrival plan and
// watchdog positions plus every per-peer array the verdict and sojourn
// statistics are computed from.
func (oa *asimArrivals) snapshot(e *checkpoint.Encoder) {
	oa.plan.Snapshot(e)
	oa.wd.Snapshot(e)
	e.U32(uint32(oa.nextID))
	e.F64s(oa.arrivedAt)
	e.Int32s(oa.exitAfter)
	e.Bools(oa.departScheduled)
	e.Int(oa.departed)
	e.Int(oa.earlyExits)
	e.Int(oa.peak)
	e.U32(uint32(oa.oldest))
	e.Bool(oa.truncated)
}

// restore rewinds the open-system bookkeeping. Must run before
// restoreQueue: the queued arrival and departure events are validated
// against the restored plan position and departScheduled mask.
func (oa *asimArrivals) restore(d *checkpoint.Decoder, st *State) error {
	if err := oa.plan.RestoreState(d); err != nil {
		return err
	}
	if err := oa.wd.RestoreState(d); err != nil {
		return err
	}
	nextID := int32(d.U32())
	arrivedAt := d.F64s()
	exitAfter := d.Int32s()
	departScheduled := d.Bools()
	departed, earlyExits, peak := d.Int(), d.Int(), d.Int()
	oldest := int32(d.U32())
	truncated := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if nextID < 1 || nextID > int32(st.n) {
		return checkpoint.Corruptf("asim: arrival nextID %d out of range", nextID)
	}
	if len(arrivedAt) != st.n || len(exitAfter) != st.n || len(departScheduled) != st.n {
		return checkpoint.Corruptf("asim: arrival arrays sized %d/%d/%d for %d nodes",
			len(arrivedAt), len(exitAfter), len(departScheduled), st.n)
	}
	for v := 1; v < int(nextID); v++ {
		if math.IsNaN(arrivedAt[v]) || arrivedAt[v] < 0 || arrivedAt[v] > st.now {
			return checkpoint.Corruptf("asim: node %d arrival time %v out of range", v, arrivedAt[v])
		}
		if exitAfter[v] < 0 || int(exitAfter[v]) >= st.k {
			return checkpoint.Corruptf("asim: node %d exit threshold %d out of range", v, exitAfter[v])
		}
	}
	if departed < 0 || earlyExits < 0 || earlyExits > departed || peak < 0 {
		return checkpoint.Corruptf("asim: arrival counters %d/%d/%d invalid", departed, earlyExits, peak)
	}
	if oldest < 1 || oldest > nextID {
		return checkpoint.Corruptf("asim: oldest pointer %d outside [1, %d]", oldest, nextID)
	}
	oa.nextID = nextID
	copy(oa.arrivedAt, arrivedAt)
	copy(oa.exitAfter, exitAfter)
	copy(oa.departScheduled, departScheduled)
	oa.departed, oa.earlyExits, oa.peak = departed, earlyExits, peak
	oa.oldest = oldest
	oa.truncated = truncated
	return nil
}

func equalF64s(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// maybeCheckpoint writes a snapshot if the policy asks for one at the
// current handled-event boundary. A write failure aborts the run: the
// user asked for durability, so failing to provide it must not pass
// silently.
func (e *engine) maybeCheckpoint() error {
	ck := e.cfg.Checkpoint
	if !ck.Enabled() || e.handled%ck.Every != 0 {
		return nil
	}
	snap, err := e.snapshot()
	if err != nil {
		return err
	}
	return snap.WriteFile(ck.Path)
}

// Resume reconstructs a run from a snapshot and continues it to
// completion. cfg and p must be built exactly as for the original Run
// call (fresh single-use fault/adversary plans with the same options,
// same protocol construction); the snapshot then rewinds all mutable
// state to the captured event boundary. By the determinism contract the
// resumed run's result — including the full trace — is byte-identical
// to the uninterrupted run's.
func Resume(cfg Config, p Protocol, snap *checkpoint.Snapshot) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes == 1 {
		return nil, fmt.Errorf("asim: nothing to resume for a single-node run")
	}
	c := cfg.withDefaults()
	eng, err := newEngine(c, p)
	if err != nil {
		return nil, err
	}
	if err := eng.restore(snap); err != nil {
		return nil, err
	}
	return eng.loop()
}
