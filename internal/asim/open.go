package asim

import (
	"barterdist/internal/arrival"
	"barterdist/internal/fault"
)

// asimArrivals carries the event engine's open-system bookkeeping: the
// next unassigned node id, per-peer arrival times and selfish exit
// thresholds, the stability watchdog, and the aggregates that become
// Result.Open.
//
// The open-system model matches the synchronous engine's (see
// simulate/open.go): Config.Nodes is the capacity, node 0 the
// persistent server, and clients enter with fresh ids in arrival
// order. Arrivals and departures ride the engine's existing event
// machinery — an arrival is delivered to FaultAware protocols as a
// wiped rejoin of a never-before-seen node, a departure as a permanent
// crash — so churn-aware protocols work unmodified.
type asimArrivals struct {
	plan *arrival.Plan
	wd   *arrival.Watchdog

	nextID          int32
	arrivedAt       []float64
	exitAfter       []int32
	departScheduled []bool

	departed   int
	earlyExits int
	peak       int
	oldest     int32 // smallest present incomplete id; advances monotonically
	// truncated records that the arrival stream was cut by MaxTime (an
	// arrival would have landed past the budget): the pool can then
	// never exhaust, so a quiet queue is a budget truncation, not a
	// drain.
	truncated bool
}

func newAsimArrivals(plan *arrival.Plan, c Config) *asimArrivals {
	opts := plan.Options().WithWatchdogDefaults(c.Blocks)
	return &asimArrivals{
		plan:            plan,
		wd:              arrival.NewWatchdog(opts),
		nextID:          1,
		oldest:          1,
		arrivedAt:       make([]float64, c.Nodes),
		exitAfter:       make([]int32, c.Nodes),
		departScheduled: make([]bool, c.Nodes),
	}
}

// scheduleNextArrival turns the plan's pending arrival into an engine
// event, mirroring scheduleNextCrash. The plan's position is consumed
// when the event is handled, so a checkpoint can cross-check the
// queued event against the plan. Arrivals beyond MaxTime mark the run
// as budget-truncated instead of being scheduled.
func (e *engine) scheduleNextArrival() {
	if int(e.oa.nextID) >= e.cfg.Nodes {
		return
	}
	at := e.cfg.Arrivals.NextArrival()
	if at > e.cfg.MaxTime {
		e.oa.truncated = true
		return
	}
	ev := e.newEvent()
	ev.at, ev.kind = at, evArrive
	e.schedule(ev)
}

// applyArrive admits the next peer: fresh id, empty cache, exit
// behavior drawn from the plan. FaultAware protocols see it as a wiped
// rejoin (an empty cache appearing in the swarm — exactly what their
// rarity accounting must absorb).
func (e *engine) applyArrive() error {
	st, oa := e.st, e.oa
	v := int(oa.nextID)
	oa.nextID++
	st.alive[v] = true
	st.aliveClients++
	oa.arrivedAt[v] = st.now
	oa.exitAfter[v] = int32(oa.plan.ExitThreshold(st.k))
	e.res.FaultLog = append(e.res.FaultLog, fault.Event{
		Time: st.now, Node: int32(v), Kind: fault.Arrive,
	})
	if e.faultAware != nil {
		e.faultAware.OnRejoin(v, true, st)
	}
	if err := e.tryStartUpload(v); err != nil {
		return err
	}
	// Peers parked for lack of targets may now serve the newcomer.
	return e.wakeInNeighbors(v)
}

// applyDepart removes peer v for good, reusing the crash teardown
// (aborted transfers, restored ports, re-woken peers). FaultAware
// protocols see it as a crash that never rejoins.
func (e *engine) applyDepart(v int) error {
	st, oa := e.st, e.oa
	if !st.have[v].Full() {
		oa.earlyExits++
	}
	oa.departed++
	wakeSenders, freedReceiver := e.teardown(v)
	e.res.FaultLog = append(e.res.FaultLog, fault.Event{
		Time: st.now, Node: int32(v), Kind: fault.Depart,
	})
	if e.faultAware != nil {
		e.faultAware.OnCrash(v, st)
	}
	for _, u := range wakeSenders {
		if err := e.tryStartUpload(u); err != nil {
			return err
		}
	}
	if freedReceiver >= 0 && st.alive[freedReceiver] {
		return e.wakeInNeighbors(freedReceiver)
	}
	return nil
}

// scheduleDepart queues peer v's permanent departure at time at
// (idempotent — a selfish peer that also completes departs once).
func (e *engine) scheduleDepart(v int, at float64) {
	if e.oa.departScheduled[v] {
		return
	}
	e.oa.departScheduled[v] = true
	ev := e.newEvent()
	ev.at, ev.kind, ev.node = at, evDepart, v
	e.schedule(ev)
}

// noteOpenDelivery applies the departure policies after a useful
// delivery to v: completion triggers the seed policy, and a selfish
// peer that reached its exit threshold leaves immediately.
func (e *engine) noteOpenDelivery(v int) {
	st, oa := e.st, e.oa
	if st.have[v].Full() {
		opts := oa.plan.Options()
		if opts.SeedPolicy == arrival.SeedDepart {
			e.scheduleDepart(v, st.now+opts.Linger)
		}
		return
	}
	if oa.exitAfter[v] > 0 && int32(st.have[v].Count()) >= oa.exitAfter[v] {
		e.scheduleDepart(v, st.now)
	}
}

// observe samples the watchdog after a handled event.
func (oa *asimArrivals) observe(st *State) arrival.Reason {
	occ := st.aliveClients - st.complete
	if occ > oa.peak {
		oa.peak = occ
	}
	// Ids are assigned in arrival order and open-mode block sets never
	// shrink, so the oldest present incomplete peer has the smallest id
	// and the pointer only advances.
	for oa.oldest < oa.nextID && (!st.alive[oa.oldest] || st.have[oa.oldest].Full()) {
		oa.oldest++
	}
	age := 0.0
	if oa.oldest < oa.nextID {
		age = st.now - oa.arrivedAt[oa.oldest]
	}
	return oa.wd.Observe(st.now, occ, age)
}

// drained reports the ergodic end state: pool exhausted, stream not
// truncated, and nobody present still downloading.
func (oa *asimArrivals) drained(st *State) bool {
	return int(oa.nextID) == st.n && !oa.truncated && st.complete == st.aliveClients
}

// finishOpen stamps the verdict and the open-run instrumentation.
func (e *engine) finishOpen(v arrival.Verdict, reason arrival.Reason) *Result {
	res := e.finish()
	st, oa := e.st, e.oa
	o := &arrival.OpenResult{
		Verdict:        v,
		Reason:         reason,
		Arrived:        int(oa.nextID) - 1,
		Departed:       oa.departed,
		EarlyExits:     oa.earlyExits,
		PeakOccupancy:  oa.peak,
		FinalOccupancy: st.aliveClients - st.complete,
	}
	var sum float64
	for vv := 1; vv < int(oa.nextID); vv++ {
		ct := res.ClientCompletion[vv]
		if ct == 0 {
			continue
		}
		o.Completed++
		s := ct - oa.arrivedAt[vv]
		sum += s
		if s > o.SojournMax {
			o.SojournMax = s
		}
	}
	if o.Completed > 0 {
		o.SojournMean = sum / float64(o.Completed)
	}
	if e.cfg.RecordTrace {
		o.ArrivalTime = make([]float64, st.n)
		copy(o.ArrivalTime, oa.arrivedAt)
	}
	res.Open = o
	return res
}
