package asim

import "testing"

// TestEventAllocationsDoNotScaleWithRunLength pins the event free-list:
// in the asynchronous engine every completed or cancelled event returns
// to the pool, so a run's allocation count is dominated by setup
// (states, protocol scratch, the trace's pre-sized append) — NOT by the
// number of events processed. Quadrupling the block count roughly
// quadruples the event count; if allocations grow with it, the pool has
// regressed into per-event churn.
//
// The trace stays ON (the expensive configuration): its slice is
// pre-sized to (n-1)·k records, so recording adds O(1) allocations,
// not O(events).
func TestEventAllocationsDoNotScaleWithRunLength(t *testing.T) {
	const n = 96
	allocsFor := func(k int) float64 {
		return testing.AllocsPerRun(3, func() {
			cfg := Config{Nodes: n, Blocks: k, DownloadPorts: 1, RecordTrace: true}
			res, err := Run(cfg, NewAsyncRandomized(nil, false, 1, 7))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Trace) < (n-1)*k {
				t.Fatalf("k=%d: trace has %d records, want >= %d", k, len(res.Trace), (n-1)*k)
			}
		})
	}
	small := allocsFor(16) // ~1.5k deliveries
	large := allocsFor(64) // ~6k deliveries, 4x the events
	if small == 0 {
		t.Fatalf("implausible zero-allocation run; measurement is broken")
	}
	// Setup is O(n + k); going 16 -> 64 blocks adds O(k) setup but must
	// not add O(events). Allow 2x headroom over the small run for the
	// larger per-node block sets and trace columns.
	if large > 2*small {
		t.Fatalf("allocations scale with events: k=16 -> %.0f allocs, k=64 -> %.0f (want < 2x)", small, large)
	}
}
