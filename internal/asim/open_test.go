package asim

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"barterdist/internal/arrival"
	"barterdist/internal/checkpoint"
)

func openPlan(t *testing.T, opts arrival.Options) *arrival.Plan {
	t.Helper()
	plan, err := arrival.NewPlan(opts)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// TestOpenDrains: a modest Poisson stream into the async rarest-first
// swarm exhausts the pool and drains.
func TestOpenDrains(t *testing.T) {
	res, err := Run(Config{
		Nodes: 129, Blocks: 8, DownloadPorts: 1,
		Arrivals: openPlan(t, arrival.Options{Seed: 7, Rate: 0.5}),
	}, NewAsyncRandomized(nil, true, 1, 42))
	if err != nil {
		t.Fatal(err)
	}
	o := res.Open
	if o == nil {
		t.Fatal("open run returned nil Open result")
	}
	if o.Verdict != arrival.VerdictDrained {
		t.Fatalf("verdict = %v (reason %v), want Drained", o.Verdict, o.Reason)
	}
	if o.Arrived != 128 || o.Completed != 128 {
		t.Errorf("arrived=%d completed=%d, want 128/128", o.Arrived, o.Completed)
	}
	if o.FinalOccupancy != 0 {
		t.Errorf("FinalOccupancy = %d, want 0", o.FinalOccupancy)
	}
	if o.SojournMean <= 0 || o.SojournMax < o.SojournMean {
		t.Errorf("sojourn stats inconsistent: mean=%g max=%g", o.SojournMean, o.SojournMax)
	}
}

// TestOpenEarlyExitAccounting: selfish peers leave before completing
// and the books still balance.
func TestOpenEarlyExit(t *testing.T) {
	res, err := Run(Config{
		Nodes: 65, Blocks: 8, DownloadPorts: 1,
		Arrivals: openPlan(t, arrival.Options{
			Seed: 3, Rate: 0.4, EarlyExit: 0.25, Linger: 2,
		}),
	}, NewAsyncRandomized(nil, true, 1, 11))
	if err != nil {
		t.Fatal(err)
	}
	o := res.Open
	if o == nil || o.Verdict != arrival.VerdictDrained {
		t.Fatalf("open = %+v, want Drained verdict", o)
	}
	if o.EarlyExits == 0 {
		t.Error("EarlyExits = 0, want some selfish departures at EarlyExit=0.25")
	}
	if o.Completed+o.EarlyExits != o.Arrived {
		t.Errorf("Completed(%d) + EarlyExits(%d) != Arrived(%d)",
			o.Completed, o.EarlyExits, o.Arrived)
	}
}

// TestOpenAudit replays recorded open-system runs — drained, selfish,
// and watchdog-truncated — through the full post-hoc audit, including
// the starvation identity over every peer that ever arrived.
func TestOpenAudit(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		opts arrival.Options
	}{
		{"drained", Config{Nodes: 65, Blocks: 8, DownloadPorts: 1, RecordTrace: true},
			arrival.Options{Seed: 7, Rate: 0.5}},
		{"selfish", Config{Nodes: 65, Blocks: 8, DownloadPorts: 1, RecordTrace: true},
			arrival.Options{Seed: 3, Rate: 0.4, EarlyExit: 0.3, Linger: 2}},
		{"unstable", Config{Nodes: 513, Blocks: 2, DownloadPorts: 1, RecordTrace: true, MaxTime: 100_000},
			arrival.Options{Seed: 13, Rate: 1.5,
				Window: 32, GrowthWindows: 3, GrowthFactor: 0.05,
				MinOccupancy: 32, AgeLimit: 400}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Arrivals = openPlan(t, tc.opts)
			res, err := Run(cfg, NewAsyncRandomized(nil, true, 1, 42))
			if err != nil {
				t.Fatal(err)
			}
			if res.Open == nil {
				t.Fatal("open run returned nil Open result")
			}
			if tc.name == "unstable" && res.Open.Verdict != arrival.VerdictUnstable {
				t.Fatalf("verdict = %v/%v, want Unstable", res.Open.Verdict, res.Open.Reason)
			}
			if err := RunAudit(cfg, res); err != nil {
				t.Fatalf("audit of %s open run: %v", tc.name, err)
			}
		})
	}
}

// asimOpenFingerprint extends asimFingerprint with the open-system
// result so resume comparisons also cover the verdict and sojourns.
func asimOpenFingerprint(res *Result) string {
	var b strings.Builder
	b.WriteString(asimFingerprint(res))
	o := res.Open
	if o == nil {
		b.WriteString("open=nil\n")
		return b.String()
	}
	fmt.Fprintf(&b, "open verdict=%v reason=%v arrived=%d departed=%d completed=%d early=%d peak=%d final=%d\n",
		o.Verdict, o.Reason, o.Arrived, o.Departed, o.Completed,
		o.EarlyExits, o.PeakOccupancy, o.FinalOccupancy)
	fmt.Fprintf(&b, "sojourn mean=%.17g max=%.17g\narrivals=%v\n",
		o.SojournMean, o.SojournMax, o.ArrivalTime)
	return b.String()
}

// TestOpenResumeMatchesUninterruptedRun: checkpointing an open async
// run must not perturb it, and resuming mid-flash-crowd (fresh
// protocol and arrival plan, state entirely from the file) must
// reproduce the uninterrupted fingerprint.
func TestOpenResumeMatchesUninterruptedRun(t *testing.T) {
	mk := func() (Config, *AsyncRandomized) {
		return Config{
			Nodes: 97, Blocks: 8, DownloadPorts: 1, RecordTrace: true,
			Arrivals: openPlan(t, arrival.Options{
				Seed: 7, Rate: 0.8, EarlyExit: 0.2, Linger: 1.5,
			}),
		}, NewAsyncRandomized(nil, true, 1, 42)
	}
	cfg, p := mk()
	res, err := Run(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	want := asimOpenFingerprint(res)
	if res.Open == nil || res.Open.Verdict != arrival.VerdictDrained {
		t.Fatalf("open = %+v, want Drained verdict", res.Open)
	}
	for _, every := range []int{1, 64} {
		path := filepath.Join(t.TempDir(), "run.ckpt")
		cfg, p := mk()
		cfg.Checkpoint = &checkpoint.Policy{Path: path, Every: every}
		ckRes, err := Run(cfg, p)
		if err != nil {
			t.Fatalf("every=%d: checkpointed Run: %v", every, err)
		}
		if got := asimOpenFingerprint(ckRes); got != want {
			t.Fatalf("every=%d: checkpointing perturbed the open run", every)
		}
		snap, err := checkpoint.ReadFile(path)
		if err != nil {
			t.Fatalf("every=%d: ReadFile: %v", every, err)
		}
		cfg, p = mk()
		cfg.Checkpoint = nil
		resumed, err := Resume(cfg, p, snap)
		if err != nil {
			t.Fatalf("every=%d: Resume: %v", every, err)
		}
		if got := asimOpenFingerprint(resumed); got != want {
			t.Errorf("every=%d: resumed open run diverged", every)
		}
	}
}

// TestOpenTwoChunkInstability is the async twin of the synchronous
// engine's Norros–Reittu regression: two chunks, departure at
// completion, arrivals above the server's service rate — the one-club
// forms and the watchdog grades the run Unstable under both selection
// policies; seed persistence restores ergodicity.
func TestOpenTwoChunkInstability(t *testing.T) {
	const n = 513
	run := func(rarest bool, opts arrival.Options) *arrival.OpenResult {
		t.Helper()
		res, err := Run(Config{
			Nodes: n, Blocks: 2, DownloadPorts: 1,
			MaxTime:  100_000,
			Arrivals: openPlan(t, opts),
		}, NewAsyncRandomized(nil, rarest, 1, 5))
		if err != nil {
			t.Fatal(err)
		}
		return res.Open
	}

	// A tighter watchdog than the defaults keeps the unstable cases
	// short: the divergence signature is unambiguous within a few
	// 32-unit windows.
	fast := arrival.Options{
		Seed: 13, Rate: 1.5,
		Window: 32, GrowthWindows: 3, GrowthFactor: 0.05,
		MinOccupancy: 32, AgeLimit: 400,
	}
	for _, rarest := range []bool{false, true} {
		if o := run(rarest, fast); o.Verdict != arrival.VerdictUnstable {
			t.Errorf("rarest=%v, depart-at-completion: verdict = %v/%v (peak %d), want Unstable",
				rarest, o.Verdict, o.Reason, o.PeakOccupancy)
		}
	}

	stay := fast
	stay.SeedPolicy = arrival.SeedStay
	if o := run(false, stay); o.Verdict != arrival.VerdictDrained {
		t.Errorf("SeedStay: verdict = %v/%v, want Drained", o.Verdict, o.Reason)
	}

	slow := arrival.Options{Seed: 13, Rate: 0.25}
	if o := run(false, slow); o.Verdict != arrival.VerdictDrained {
		t.Errorf("slow arrivals: verdict = %v/%v, want Drained", o.Verdict, o.Reason)
	}
}
