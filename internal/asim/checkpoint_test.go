package asim

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"barterdist/internal/adversary"
	"barterdist/internal/checkpoint"
	"barterdist/internal/fault"
)

// asimFingerprint serializes everything observable about an async run —
// completion data, the ordered transfer trace, the fault log, and the
// adversary counters — so two runs compare byte for byte.
func asimFingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "completion=%.17g transfers=%d lost=%d corrupt=%d\n",
		res.CompletionTime, res.Transfers, res.Lost, res.Corrupt)
	fmt.Fprintf(&b, "clients=%v\n", res.ClientCompletion)
	for _, tr := range res.Trace {
		fmt.Fprintf(&b, "%.17g..%.17g %d->%d#%d lost=%v corrupt=%v adv=%v\n",
			tr.Start, tr.End, tr.From, tr.To, tr.Block, tr.Lost, tr.Corrupt, tr.Adversary)
	}
	for _, ev := range res.FaultLog {
		fmt.Fprintf(&b, "fault t=%.17g node=%d kind=%d\n", ev.Time, ev.Node, ev.Kind)
	}
	if res.Strategies != nil {
		fmt.Fprintf(&b, "strategies=%v advstalled=%d advcorrupt=%d huseful=%d hwasted=%d\n",
			res.Strategies, res.AdvStalled, res.AdvCorrupt, res.HonestUseful, res.HonestWasted)
	}
	return b.String()
}

func mustAdvPlan(t *testing.T, n int, o adversary.Options) *adversary.Plan {
	t.Helper()
	p, err := adversary.NewPlan(n, o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAsimResumeMatchesUninterruptedRun is the event-driven engine's
// resume-determinism matrix: checkpointing at event-count boundaries
// must not perturb a run, and resuming from the last snapshot (with a
// fresh protocol instance, whose state comes entirely from the file)
// must reproduce the uninterrupted fingerprint exactly.
func TestAsimResumeMatchesUninterruptedRun(t *testing.T) {
	faultOpts := fault.Options{
		Seed:              17,
		CrashRate:         0.05,
		MaxCrashes:        4,
		RejoinDelay:       6,
		RejoinLosesBlocks: true,
		LossRate:          0.05,
	}
	advOpts := adversary.Options{
		Seed:                99,
		FreeRiderFrac:       0.15,
		FalseAdvertiserFrac: 0.1,
		CorrupterFrac:       0.1,
	}
	scenarios := []struct {
		name     string
		rarest   bool
		seed     uint64
		hasFault bool
		hasAdv   bool
	}{
		{"random", false, 42, false, false},
		{"rarest-first", true, 13, false, false},
		{"rarest+fault", true, 13, true, false},
		{"rarest+fault+adversary", true, 13, true, true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			// Plans are single-use position state (RNG streams plus a
			// consumed-arrival cursor), so every Run/Resume call gets a
			// fresh configuration with fresh plans.
			makeCfg := func() Config {
				cfg := Config{Nodes: 24, Blocks: 16, DownloadPorts: 1, RecordTrace: true}
				if sc.hasFault {
					cfg.Fault = mustPlan(t, faultOpts)
				}
				if sc.hasAdv {
					cfg.Adversary = mustAdvPlan(t, cfg.Nodes, advOpts)
				}
				return cfg
			}
			proto := func() *AsyncRandomized { return NewAsyncRandomized(nil, sc.rarest, 1, sc.seed) }
			res, err := Run(makeCfg(), proto())
			if err != nil {
				t.Fatalf("uninterrupted Run: %v", err)
			}
			want := asimFingerprint(res)
			for _, every := range []int{1, 50} {
				path := filepath.Join(t.TempDir(), "run.ckpt")
				ck := makeCfg()
				ck.Checkpoint = &checkpoint.Policy{Path: path, Every: every}
				ckRes, err := Run(ck, proto())
				if err != nil {
					t.Fatalf("every=%d: checkpointed Run: %v", every, err)
				}
				if got := asimFingerprint(ckRes); got != want {
					t.Fatalf("every=%d: checkpointing perturbed the run", every)
				}
				snap, err := checkpoint.ReadFile(path)
				if err != nil {
					t.Fatalf("every=%d: ReadFile: %v", every, err)
				}
				resumed, err := Resume(makeCfg(), proto(), snap)
				if err != nil {
					t.Fatalf("every=%d: Resume: %v", every, err)
				}
				if got := asimFingerprint(resumed); got != want {
					t.Errorf("every=%d: resumed run diverged:\n--- uninterrupted ---\n%.2000s\n--- resumed ---\n%.2000s",
						every, want, got)
				}
			}
		})
	}
}
