package asim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"barterdist/internal/adversary"
	"barterdist/internal/arrival"
	"barterdist/internal/bitset"
	"barterdist/internal/fault"
)

// ErrAudit wraps every RunAudit failure so callers can distinguish a
// broken recorded run from configuration errors.
var ErrAudit = errors.New("asim: audit failed")

func auditErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrAudit, fmt.Sprintf(format, args...))
}

// durEps is the relative tolerance for transfer-duration checks; the
// engine computes End = Start + 1/rate in floating point, so replayed
// durations can differ from 1/rate by rounding.
const durEps = 1e-9

// RunAudit replays a recorded asynchronous run and verifies every
// engine invariant post hoc, given only the artifacts the run leaves
// behind (Config, Trace, FaultLog, FinalHave):
//
//   - the serial upload port: no sender has two overlapping transfers;
//   - download ports: no receiver exceeds DownloadPorts concurrent
//     receives, and no block is twice in flight to the same receiver;
//   - bandwidth: every transfer's duration is 1/min(up(u), down(v)/P);
//   - store-and-forward: the sender held the block when the transfer
//     started (wiped rejoins are replayed, so a block lost to a wipe
//     must be re-acquired before it can be forwarded again);
//   - liveness: both endpoints were alive for the whole flight — a
//     crash mid-transfer must have aborted it, so an aborted transfer
//     appearing in the trace is an error;
//   - accounting: delivery, loss, and corruption counts, per-client
//     completion times, the completion time, and the final block and
//     liveness state all match the recorded Result.
//
// A Result produced by Run with RecordTrace always passes; a doctored
// trace fails with a pinpointed ErrAudit. cfg.Fault and cfg.Adversary
// are ignored — the replay takes its adversity from res.FaultLog and
// res.Strategies, so auditing never consumes a (single-use) plan. For
// adversarial runs the drop causes are re-counted per kind and the
// honest-only completion criterion and honest stall accounting are
// re-derived from the trace.
func RunAudit(cfg Config, res *Result) error {
	cfg.Fault = nil
	cfg.Adversary = nil
	cfg.Arrivals = nil // open replays take arrivals from res.FaultLog
	if err := cfg.Validate(); err != nil {
		return err
	}
	c := cfg.withDefaults()
	if res == nil {
		return auditErr("nil result")
	}
	if c.Nodes == 1 {
		return nil // vacuous run
	}
	if res.FinalHave == nil {
		return auditErr("result has no FinalHave snapshot; run with RecordTrace")
	}
	if len(res.FinalHave) != c.Nodes {
		return auditErr("FinalHave has %d entries for %d nodes", len(res.FinalHave), c.Nodes)
	}
	adversarial := res.Strategies != nil
	var honest []bool
	if adversarial {
		if len(res.Strategies) != c.Nodes {
			return auditErr("Strategies has %d entries for %d nodes", len(res.Strategies), c.Nodes)
		}
		if res.Strategies[0] != adversary.Honest {
			return auditErr("node 0 (the server) is recorded as %v; it must stay honest", res.Strategies[0])
		}
		honest = make([]bool, c.Nodes)
		for v, sg := range res.Strategies {
			honest[v] = sg == adversary.Honest
		}
	}

	// Fault-log sanity: time-ordered, clients only, alternating states.
	// Open-system logs instead hold Arrive/Depart events: the swarm
	// starts empty (server only), ids are handed out in arrival order,
	// and departures are permanent.
	open := res.Open != nil
	alive := make([]bool, c.Nodes)
	alive[0] = true
	if !open {
		for i := range alive {
			alive[i] = true
		}
	}
	nextArrive := 1
	departed, earlyExits := 0, 0
	for i, ev := range res.FaultLog {
		v := int(ev.Node)
		if v <= 0 || v >= c.Nodes {
			return auditErr("fault log: event %d targets invalid node %d", i, v)
		}
		if i > 0 && ev.Time < res.FaultLog[i-1].Time {
			return auditErr("fault log: event %d goes back in time (%v after %v)",
				i, ev.Time, res.FaultLog[i-1].Time)
		}
		switch ev.Kind {
		case fault.Crash:
			if open {
				return auditErr("t=%v: crash event in an open-system run", ev.Time)
			}
			if !alive[v] {
				return auditErr("t=%v: node %d crashes while already dead", ev.Time, v)
			}
			alive[v] = false
		case fault.Rejoin:
			if open {
				return auditErr("t=%v: rejoin event in an open-system run", ev.Time)
			}
			if alive[v] {
				return auditErr("t=%v: node %d rejoins while alive", ev.Time, v)
			}
			alive[v] = true
		case fault.Arrive:
			if !open {
				return auditErr("t=%v: arrival event in a closed-system run", ev.Time)
			}
			if v != nextArrive {
				return auditErr("t=%v: node %d arrives out of order (expected %d)", ev.Time, v, nextArrive)
			}
			nextArrive++
			alive[v] = true
		case fault.Depart:
			if !open {
				return auditErr("t=%v: departure event in a closed-system run", ev.Time)
			}
			if !alive[v] {
				return auditErr("t=%v: node %d departs while absent", ev.Time, v)
			}
			alive[v] = false
			departed++
		default:
			return auditErr("fault log: unknown event kind %d", uint8(ev.Kind))
		}
	}

	// aliveAt reports node v's liveness at time t (events at exactly t
	// included — crash arrivals are continuous, so exact collisions with
	// transfer boundaries do not occur in engine-produced runs). In open
	// mode clients are absent until their Arrive event.
	aliveAt := func(v int, t float64) bool {
		up := v == 0 || !open
		for _, ev := range res.FaultLog {
			if ev.Time > t {
				break
			}
			if int(ev.Node) == v {
				up = ev.Kind == fault.Rejoin || ev.Kind == fault.Arrive
			}
		}
		return up
	}
	// eventDuring reports a fault event touching v strictly inside
	// (start, end) — any such event must have aborted the transfer.
	eventDuring := func(v int, start, end float64) bool {
		for _, ev := range res.FaultLog {
			if ev.Time >= end {
				break
			}
			if ev.Time > start && int(ev.Node) == v {
				return true
			}
		}
		return false
	}

	// Replay state. arrivedAt[v][b] is when v last acquired b (+Inf =
	// not held); have mirrors it as a bitset for the final comparison.
	have := make([]*bitset.Set, c.Nodes)
	arrivedAt := make([][]float64, c.Nodes)
	for v := range have {
		have[v] = bitset.New(c.Blocks)
		arrivedAt[v] = make([]float64, c.Blocks)
		for b := range arrivedAt[v] {
			arrivedAt[v][b] = math.Inf(1)
		}
	}
	for b := 0; b < c.Blocks; b++ {
		have[0].Add(b)
		arrivedAt[0][b] = 0
	}
	completion := make([]float64, c.Nodes)
	delivered, lost, corrupt := 0, 0, 0
	advStalled, advGarbage := 0, 0
	honestUseful, honestWasted := 0, 0
	maxTime := 0.0

	logCursor := 0
	applyEvents := func(until float64) {
		for logCursor < len(res.FaultLog) && res.FaultLog[logCursor].Time < until {
			ev := res.FaultLog[logCursor]
			logCursor++
			if ev.Kind == fault.Rejoin && ev.Wiped {
				v := int(ev.Node)
				have[v].Clear()
				for b := range arrivedAt[v] {
					arrivedAt[v][b] = math.Inf(1)
				}
				completion[v] = 0
			}
			// Starvation accounting: a peer that departs before holding
			// the full file left early (same-time deliveries precede the
			// departure, matching the engine's event order).
			if ev.Kind == fault.Depart && !have[ev.Node].Full() {
				earlyExits++
			}
			if ev.Time > maxTime {
				maxTime = ev.Time
			}
		}
	}

	type interval struct {
		start, end float64
		block      int32
	}
	bySender := make([][]interval, c.Nodes)
	byRecv := make([][]interval, c.Nodes)

	prevEnd := math.Inf(-1)
	for i, tr := range res.Trace {
		if tr.End < prevEnd {
			return auditErr("trace record %d ends at %v, before its predecessor (%v)", i, tr.End, prevEnd)
		}
		prevEnd = tr.End
		from, to, b := int(tr.From), int(tr.To), int(tr.Block)
		switch {
		case from < 0 || from >= c.Nodes || to < 0 || to >= c.Nodes:
			return auditErr("trace record %d: nodes %d -> %d out of range", i, from, to)
		case from == to:
			return auditErr("trace record %d: node %d transfers to itself", i, from)
		case b < 0 || b >= c.Blocks:
			return auditErr("trace record %d: block %d out of range", i, b)
		case to == 0:
			return auditErr("trace record %d: upload to the server", i)
		case tr.Start < 0 || tr.End <= tr.Start:
			return auditErr("trace record %d: degenerate interval [%v, %v]", i, tr.Start, tr.End)
		case tr.Corrupt && !tr.Lost:
			return auditErr("trace record %d: corrupt but not marked lost", i)
		case tr.Adversary && !tr.Lost:
			return auditErr("trace record %d: adversary-faulted but not marked lost", i)
		case tr.Adversary && !adversarial:
			return auditErr("trace record %d: adversary-faulted transfer in a run without strategies", i)
		case tr.Adversary && honest[tr.From]:
			return auditErr("trace record %d: honest node %d recorded as misbehaving", i, tr.From)
		}
		// Bandwidth model: duration is exactly one block at the reserved
		// port rate.
		rate := c.UploadRate[from]
		down := c.DownloadRate[to]
		if c.DownloadPorts > 0 {
			down /= float64(c.DownloadPorts)
		}
		if down < rate {
			rate = down
		}
		want := 1 / rate
		if d := tr.End - tr.Start; math.Abs(d-want) > durEps*math.Max(1, want) {
			return auditErr("trace record %d: %d->%d duration %v, bandwidth model requires %v",
				i, from, to, d, want)
		}
		// Liveness across the whole flight.
		if !aliveAt(from, tr.Start) {
			return auditErr("t=%v: dead node %d starts an upload", tr.Start, from)
		}
		if !aliveAt(to, tr.Start) {
			return auditErr("t=%v: node %d uploads to dead node %d", tr.Start, from, to)
		}
		if eventDuring(from, tr.Start, tr.End) || eventDuring(to, tr.Start, tr.End) {
			return auditErr("trace record %d: %d->%d survives a fault event mid-flight; the engine aborts those",
				i, from, to)
		}
		// Store-and-forward at start time: the sender must have acquired
		// the block (and not lost it to a wipe) by tr.Start.
		applyEvents(tr.End)
		if arrivedAt[from][b] > tr.Start {
			return auditErr("t=%v: node %d sends block %d it did not hold at upload start", tr.Start, from, b)
		}
		bySender[from] = append(bySender[from], interval{tr.Start, tr.End, tr.Block})
		byRecv[to] = append(byRecv[to], interval{tr.Start, tr.End, tr.Block})
		if tr.End > maxTime {
			maxTime = tr.End
		}
		if tr.Lost {
			if tr.Adversary {
				if tr.Corrupt {
					advGarbage++
				} else {
					advStalled++
				}
				if honest[to] {
					honestWasted++
				}
			} else if tr.Corrupt {
				corrupt++
			} else {
				lost++
			}
			continue
		}
		if !have[to].Add(b) {
			return auditErr("t=%v: node %d delivered block %d it already holds", tr.End, to, b)
		}
		arrivedAt[to][b] = tr.End
		delivered++
		if adversarial && honest[to] {
			honestUseful++
		}
		if have[to].Full() {
			completion[to] = tr.End
		}
	}
	applyEvents(math.Inf(1))

	// Serial upload port: each sender's transfers must not overlap.
	for u, ivs := range bySender {
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].start < ivs[b].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				return auditErr("node %d uploads concurrently at t=%v (serial upload port)", u, ivs[i].start)
			}
		}
	}
	// Download ports: bounded concurrency, and a block at most once in
	// flight to the same receiver at a time.
	for v, ivs := range byRecv {
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].start < ivs[b].start })
		var active []interval
		for _, iv := range ivs {
			keep := active[:0]
			for _, a := range active {
				if a.end > iv.start {
					keep = append(keep, a)
				}
			}
			active = keep
			for _, a := range active {
				if a.block == iv.block {
					return auditErr("node %d has block %d twice in flight at t=%v", v, iv.block, iv.start)
				}
			}
			active = append(active, iv)
			if c.DownloadPorts != Unlimited && len(active) > c.DownloadPorts {
				return auditErr("node %d exceeds %d download ports at t=%v", v, c.DownloadPorts, iv.start)
			}
		}
	}

	// The run must have finished under the engine's criterion: every
	// alive client — every alive *honest* client under an adversary
	// plan — holds the whole file. An open run instead ends on its
	// verdict: Drained requires an exhausted pool and no peer
	// mid-download; Unstable is a bounded truncation with no completion
	// requirement, but the starvation audit below still must account
	// for every peer that entered.
	if open {
		o := res.Open
		arrived := nextArrive - 1
		occupancy := 0
		comp := 0
		for v := 1; v < c.Nodes; v++ {
			if alive[v] && !have[v].Full() {
				occupancy++
			}
			if completion[v] != 0 {
				comp++
			}
		}
		switch o.Verdict {
		case arrival.VerdictDrained:
			if arrived != c.Nodes-1 {
				return auditErr("drained verdict with %d/%d arrivals replayed", arrived, c.Nodes-1)
			}
			if occupancy != 0 {
				return auditErr("drained verdict but %d present clients incomplete", occupancy)
			}
		case arrival.VerdictUnstable:
			// Bounded truncation: nothing further to require.
		default:
			return auditErr("open result carries verdict %v", o.Verdict)
		}
		if o.Arrived != arrived || o.Departed != departed || o.EarlyExits != earlyExits {
			return auditErr("replay counts %d arrived / %d departed / %d early exits, result reports %d / %d / %d",
				arrived, departed, earlyExits, o.Arrived, o.Departed, o.EarlyExits)
		}
		if o.Completed != comp {
			return auditErr("replay counts %d completions, open result reports %d", comp, o.Completed)
		}
		if o.FinalOccupancy != occupancy {
			return auditErr("replay leaves %d peers mid-download, open result reports %d", occupancy, o.FinalOccupancy)
		}
		if o.Arrived != o.Completed+o.EarlyExits+o.FinalOccupancy {
			return auditErr("open run starves silently: %d arrived != %d completed + %d early exits + %d still present",
				o.Arrived, o.Completed, o.EarlyExits, o.FinalOccupancy)
		}
	} else {
		for v := 1; v < c.Nodes; v++ {
			if adversarial && !honest[v] {
				continue
			}
			if alive[v] && !have[v].Full() {
				return auditErr("replayed trace leaves alive client %d incomplete (%d/%d blocks)",
					v, have[v].Count(), c.Blocks)
			}
		}
	}
	if delivered != res.Transfers {
		return auditErr("replay counts %d deliveries, result reports %d", delivered, res.Transfers)
	}
	if lost != res.Lost || corrupt != res.Corrupt {
		return auditErr("replay counts %d lost + %d corrupt, result reports %d + %d",
			lost, corrupt, res.Lost, res.Corrupt)
	}
	if advStalled != res.AdvStalled || advGarbage != res.AdvCorrupt {
		return auditErr("replay counts %d stalled + %d garbage adversary drops, result reports %d + %d",
			advStalled, advGarbage, res.AdvStalled, res.AdvCorrupt)
	}
	if adversarial && (honestUseful != res.HonestUseful || honestWasted != res.HonestWasted) {
		return auditErr("replay counts %d honest-useful / %d honest-wasted, result reports %d / %d",
			honestUseful, honestWasted, res.HonestUseful, res.HonestWasted)
	}
	if len(res.Trace) > 0 || len(res.FaultLog) > 0 {
		// An open run's clock can outlive its last logged event: the
		// final handled event may be an unlogged protocol timer, and
		// finish() stamps CompletionTime with the engine clock.
		if open && res.CompletionTime < maxTime {
			return auditErr("CompletionTime %v precedes the last recorded event (%v)",
				res.CompletionTime, maxTime)
		}
		if !open && res.CompletionTime != maxTime {
			return auditErr("CompletionTime %v does not match the last recorded event (%v)",
				res.CompletionTime, maxTime)
		}
	}
	for v := 0; v < c.Nodes; v++ {
		if !have[v].Equal(res.FinalHave[v]) {
			return auditErr("node %d final block set differs from recorded snapshot", v)
		}
		if v > 0 && completion[v] != res.ClientCompletion[v] {
			return auditErr("node %d completion time: replay %v, result %v",
				v, completion[v], res.ClientCompletion[v])
		}
	}
	if res.FinalAlive != nil {
		for v, a := range res.FinalAlive {
			if alive[v] != a {
				return auditErr("node %d final liveness: replay %v, result %v", v, alive[v], a)
			}
		}
	}
	return nil
}
