package asim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"barterdist/internal/adversary"
	"barterdist/internal/arrival"
	"barterdist/internal/bitset"
	"barterdist/internal/fault"
	"barterdist/internal/parallel"
)

// ErrAudit wraps every RunAudit failure so callers can distinguish a
// broken recorded run from configuration errors.
var ErrAudit = errors.New("asim: audit failed")

func auditErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrAudit, fmt.Sprintf(format, args...))
}

// durEps is the relative tolerance for transfer-duration checks; the
// engine computes End = Start + 1/rate in floating point, so replayed
// durations can differ from 1/rate by rounding.
const durEps = 1e-9

// aRecTasks is the fixed partition width of the parallel audit: the
// trace is split into aRecTasks contiguous record chunks for the
// stateless per-record checks, and the port checks into aRecTasks node
// lanes. Fixed, so the partition — and therefore the verdict — is
// independent of the worker count.
const aRecTasks = 8

// aPoint is one audit finding, keyed for the deterministic merge:
// phase 0 = fault-log sanity, 1 = per-record checks (pos = record
// index, prio = the check's position in the sequential auditor's
// order), 2 = port checks (pos = stage*Nodes + node), 3 = aggregate
// checks. The lexicographically smallest point across all tasks is
// exactly the error the sequential auditor would have hit first.
type aPoint struct {
	phase uint8
	pos   int
	prio  int
	err   error
}

// aBetter returns the lexicographically smaller of two points (nil =
// no finding).
func aBetter(a, b *aPoint) *aPoint {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.phase != b.phase:
		if a.phase < b.phase {
			return a
		}
		return b
	case a.pos != b.pos:
		if a.pos < b.pos {
			return a
		}
		return b
	case a.prio <= b.prio:
		return a
	}
	return b
}

// eventIndex answers the auditor's two liveness queries — aliveAt and
// eventDuring — in O(log e) per call from per-node sorted event lists,
// replacing the sequential auditor's O(e) scan of the whole fault log
// per trace record. When the log is out of order or carries NaN times
// (only a doctored log can), the index falls back to the sequential
// auditor's exact global linear scan so the verdict stays identical.
type eventIndex struct {
	times  [][]float64 // per-node event times, log order
	up     [][]bool    // per-node resulting liveness after each event
	log    []fault.Event
	open   bool
	linear bool
}

func buildEventIndex(log []fault.Event, open bool, nodes int) *eventIndex {
	ix := &eventIndex{
		times: make([][]float64, nodes),
		up:    make([][]bool, nodes),
		log:   log,
		open:  open,
	}
	prev := math.Inf(-1)
	for _, ev := range log {
		if math.IsNaN(ev.Time) || ev.Time < prev {
			ix.linear = true
		}
		prev = ev.Time
		v := int(ev.Node)
		if v < 0 || v >= nodes {
			continue // sanity (phase 0) reports this; keep the index safe
		}
		ix.times[v] = append(ix.times[v], ev.Time)
		ix.up[v] = append(ix.up[v], ev.Kind == fault.Rejoin || ev.Kind == fault.Arrive)
	}
	return ix
}

// aliveAt reports node v's liveness at time t (events at exactly t
// included — crash arrivals are continuous, so exact collisions with
// transfer boundaries do not occur in engine-produced runs). In open
// mode clients are absent until their Arrive event.
func (ix *eventIndex) aliveAt(v int, t float64) bool {
	up := v == 0 || !ix.open
	if ix.linear {
		for _, ev := range ix.log {
			if ev.Time > t {
				break
			}
			if int(ev.Node) == v {
				up = ev.Kind == fault.Rejoin || ev.Kind == fault.Arrive
			}
		}
		return up
	}
	times := ix.times[v]
	i := sort.Search(len(times), func(i int) bool { return times[i] > t })
	if i == 0 {
		return up
	}
	return ix.up[v][i-1]
}

// eventDuring reports a fault event touching v strictly inside
// (start, end) — any such event must have aborted the transfer.
func (ix *eventIndex) eventDuring(v int, start, end float64) bool {
	if ix.linear {
		for _, ev := range ix.log {
			if ev.Time >= end {
				break
			}
			if ev.Time > start && int(ev.Node) == v {
				return true
			}
		}
		return false
	}
	times := ix.times[v]
	i := sort.Search(len(times), func(i int) bool { return times[i] > start })
	return i < len(times) && times[i] < end
}

// recordSkip reports whether a trace record is structurally invalid —
// the stateless chunk pass (auditRecords) reports it with a smaller key
// than anything downstream, so the stateful replay and the port lanes
// just skip it to stay panic-free; their state past that record can
// only feed points with larger keys, which the merge discards.
func recordSkip(c Config, tr TransferRecord, adversarial bool, honest []bool) bool {
	from, to, b := int(tr.From), int(tr.To), int(tr.Block)
	return from < 0 || from >= c.Nodes || to < 0 || to >= c.Nodes ||
		from == to || b < 0 || b >= c.Blocks || to == 0 ||
		tr.Start < 0 || tr.End <= tr.Start ||
		(tr.Corrupt && !tr.Lost) || (tr.Adversary && !tr.Lost) ||
		(tr.Adversary && !adversarial) || (tr.Adversary && honest[tr.From])
}

// auditRecords runs the stateless per-record checks (the sequential
// auditor's prios 0-13: end monotonicity, the structural switch, the
// bandwidth model, and the three liveness checks) over record chunk ci
// and returns the chunk's earliest finding. Records are scanned in
// order and prios ascend within a record, so the first hit is minimal.
func auditRecords(c Config, res *Result, ix *eventIndex, honest []bool, adversarial bool, ci int) *aPoint {
	lo := len(res.Trace) * ci / aRecTasks
	hi := len(res.Trace) * (ci + 1) / aRecTasks
	prevEnd := math.Inf(-1)
	if lo > 0 {
		prevEnd = res.Trace[lo-1].End
	}
	pt := func(i, prio int, err error) *aPoint {
		return &aPoint{phase: 1, pos: i, prio: prio, err: err}
	}
	for i := lo; i < hi; i++ {
		tr := res.Trace[i]
		if tr.End < prevEnd {
			return pt(i, 0, auditErr("trace record %d ends at %v, before its predecessor (%v)", i, tr.End, prevEnd))
		}
		prevEnd = tr.End
		from, to, b := int(tr.From), int(tr.To), int(tr.Block)
		switch {
		case from < 0 || from >= c.Nodes || to < 0 || to >= c.Nodes:
			return pt(i, 1, auditErr("trace record %d: nodes %d -> %d out of range", i, from, to))
		case from == to:
			return pt(i, 2, auditErr("trace record %d: node %d transfers to itself", i, from))
		case b < 0 || b >= c.Blocks:
			return pt(i, 3, auditErr("trace record %d: block %d out of range", i, b))
		case to == 0:
			return pt(i, 4, auditErr("trace record %d: upload to the server", i))
		case tr.Start < 0 || tr.End <= tr.Start:
			return pt(i, 5, auditErr("trace record %d: degenerate interval [%v, %v]", i, tr.Start, tr.End))
		case tr.Corrupt && !tr.Lost:
			return pt(i, 6, auditErr("trace record %d: corrupt but not marked lost", i))
		case tr.Adversary && !tr.Lost:
			return pt(i, 7, auditErr("trace record %d: adversary-faulted but not marked lost", i))
		case tr.Adversary && !adversarial:
			return pt(i, 8, auditErr("trace record %d: adversary-faulted transfer in a run without strategies", i))
		case tr.Adversary && honest[tr.From]:
			return pt(i, 9, auditErr("trace record %d: honest node %d recorded as misbehaving", i, tr.From))
		}
		// Bandwidth model: duration is exactly one block at the reserved
		// port rate.
		rate := c.UploadRate[from]
		down := c.DownloadRate[to]
		if c.DownloadPorts > 0 {
			down /= float64(c.DownloadPorts)
		}
		if down < rate {
			rate = down
		}
		want := 1 / rate
		if d := tr.End - tr.Start; math.Abs(d-want) > durEps*math.Max(1, want) {
			return pt(i, 10, auditErr("trace record %d: %d->%d duration %v, bandwidth model requires %v",
				i, from, to, d, want))
		}
		// Liveness across the whole flight.
		if !ix.aliveAt(from, tr.Start) {
			return pt(i, 11, auditErr("t=%v: dead node %d starts an upload", tr.Start, from))
		}
		if !ix.aliveAt(to, tr.Start) {
			return pt(i, 12, auditErr("t=%v: node %d uploads to dead node %d", tr.Start, from, to))
		}
		if ix.eventDuring(from, tr.Start, tr.End) || ix.eventDuring(to, tr.Start, tr.End) {
			return pt(i, 13, auditErr("trace record %d: %d->%d survives a fault event mid-flight; the engine aborts those",
				i, from, to))
		}
	}
	return nil
}

// aInterval is one transfer's flight, for the port-discipline checks.
type aInterval struct {
	start, end float64
	block      int32
}

// auditPorts checks the serial-upload and download-port disciplines for
// the nodes of one lane (node % aRecTasks == lane). Senders order
// before receivers and nodes ascend within a stage, matching the
// sequential auditor's check order exactly.
func auditPorts(c Config, res *Result, adversarial bool, honest []bool, lane int) *aPoint {
	bySender := make(map[int][]aInterval)
	byRecv := make(map[int][]aInterval)
	for _, tr := range res.Trace {
		if recordSkip(c, tr, adversarial, honest) {
			continue
		}
		from, to := int(tr.From), int(tr.To)
		if from%aRecTasks == lane {
			bySender[from] = append(bySender[from], aInterval{tr.Start, tr.End, tr.Block})
		}
		if to%aRecTasks == lane {
			byRecv[to] = append(byRecv[to], aInterval{tr.Start, tr.End, tr.Block})
		}
	}
	// Serial upload port: each sender's transfers must not overlap.
	for u := lane; u < c.Nodes; u += aRecTasks {
		ivs := bySender[u]
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].start < ivs[b].start })
		for i := 1; i < len(ivs); i++ {
			if ivs[i].start < ivs[i-1].end {
				return &aPoint{phase: 2, pos: u, err: auditErr("node %d uploads concurrently at t=%v (serial upload port)", u, ivs[i].start)}
			}
		}
	}
	// Download ports: bounded concurrency, and a block at most once in
	// flight to the same receiver at a time.
	for v := lane; v < c.Nodes; v += aRecTasks {
		ivs := byRecv[v]
		sort.Slice(ivs, func(a, b int) bool { return ivs[a].start < ivs[b].start })
		var active []aInterval
		for _, iv := range ivs {
			keep := active[:0]
			for _, a := range active {
				if a.end > iv.start {
					keep = append(keep, a)
				}
			}
			active = keep
			for _, a := range active {
				if a.block == iv.block {
					return &aPoint{phase: 2, pos: c.Nodes + v, err: auditErr("node %d has block %d twice in flight at t=%v", v, iv.block, iv.start)}
				}
			}
			active = append(active, iv)
			if c.DownloadPorts != Unlimited && len(active) > c.DownloadPorts {
				return &aPoint{phase: 2, pos: c.Nodes + v, err: auditErr("node %d exceeds %d download ports at t=%v", v, c.DownloadPorts, iv.start)}
			}
		}
	}
	return nil
}

// auditReplay is the audit's one stateful task: fault-log sanity
// (phase 0), the sequential store-and-forward and double-delivery
// checks (phase 1, prios 14-15 — every stateless check of the same
// record keys below them), and the aggregate comparisons against the
// recorded Result (phase 3), in exactly the sequential auditor's order.
func auditReplay(c Config, res *Result, honest []bool, adversarial, open bool) *aPoint {
	sanity := func(i int, err error) *aPoint { return &aPoint{phase: 0, pos: i, err: err} }
	// Fault-log sanity: time-ordered, clients only, alternating states.
	// Open-system logs instead hold Arrive/Depart events: the swarm
	// starts empty (server only), ids are handed out in arrival order,
	// and departures are permanent.
	alive := make([]bool, c.Nodes)
	alive[0] = true
	if !open {
		for i := range alive {
			alive[i] = true
		}
	}
	nextArrive := 1
	departed, earlyExits := 0, 0
	for i, ev := range res.FaultLog {
		v := int(ev.Node)
		if v <= 0 || v >= c.Nodes {
			return sanity(i, auditErr("fault log: event %d targets invalid node %d", i, v))
		}
		if i > 0 && ev.Time < res.FaultLog[i-1].Time {
			return sanity(i, auditErr("fault log: event %d goes back in time (%v after %v)",
				i, ev.Time, res.FaultLog[i-1].Time))
		}
		switch ev.Kind {
		case fault.Crash:
			if open {
				return sanity(i, auditErr("t=%v: crash event in an open-system run", ev.Time))
			}
			if !alive[v] {
				return sanity(i, auditErr("t=%v: node %d crashes while already dead", ev.Time, v))
			}
			alive[v] = false
		case fault.Rejoin:
			if open {
				return sanity(i, auditErr("t=%v: rejoin event in an open-system run", ev.Time))
			}
			if alive[v] {
				return sanity(i, auditErr("t=%v: node %d rejoins while alive", ev.Time, v))
			}
			alive[v] = true
		case fault.Arrive:
			if !open {
				return sanity(i, auditErr("t=%v: arrival event in a closed-system run", ev.Time))
			}
			if v != nextArrive {
				return sanity(i, auditErr("t=%v: node %d arrives out of order (expected %d)", ev.Time, v, nextArrive))
			}
			nextArrive++
			alive[v] = true
		case fault.Depart:
			if !open {
				return sanity(i, auditErr("t=%v: departure event in a closed-system run", ev.Time))
			}
			if !alive[v] {
				return sanity(i, auditErr("t=%v: node %d departs while absent", ev.Time, v))
			}
			alive[v] = false
			departed++
		default:
			return sanity(i, auditErr("fault log: unknown event kind %d", uint8(ev.Kind)))
		}
	}

	// Replay state. arrivedAt[v][b] is when v last acquired b (+Inf =
	// not held); have mirrors it as a bitset for the final comparison.
	have := make([]*bitset.Set, c.Nodes)
	arrivedAt := make([][]float64, c.Nodes)
	for v := range have {
		have[v] = bitset.New(c.Blocks)
		arrivedAt[v] = make([]float64, c.Blocks)
		for b := range arrivedAt[v] {
			arrivedAt[v][b] = math.Inf(1)
		}
	}
	for b := 0; b < c.Blocks; b++ {
		have[0].Add(b)
		arrivedAt[0][b] = 0
	}
	completion := make([]float64, c.Nodes)
	delivered, lost, corrupt := 0, 0, 0
	advStalled, advGarbage := 0, 0
	honestUseful, honestWasted := 0, 0
	maxTime := 0.0

	logCursor := 0
	applyEvents := func(until float64) {
		for logCursor < len(res.FaultLog) && res.FaultLog[logCursor].Time < until {
			ev := res.FaultLog[logCursor]
			logCursor++
			if ev.Kind == fault.Rejoin && ev.Wiped {
				v := int(ev.Node)
				have[v].Clear()
				for b := range arrivedAt[v] {
					arrivedAt[v][b] = math.Inf(1)
				}
				completion[v] = 0
			}
			// Starvation accounting: a peer that departs before holding
			// the full file left early (same-time deliveries precede the
			// departure, matching the engine's event order).
			if ev.Kind == fault.Depart && !have[ev.Node].Full() {
				earlyExits++
			}
			if ev.Time > maxTime {
				maxTime = ev.Time
			}
		}
	}

	for i, tr := range res.Trace {
		if recordSkip(c, tr, adversarial, honest) {
			continue // a chunk task reports this record with a smaller key
		}
		from, to, b := int(tr.From), int(tr.To), int(tr.Block)
		// Store-and-forward at start time: the sender must have acquired
		// the block (and not lost it to a wipe) by tr.Start.
		applyEvents(tr.End)
		if arrivedAt[from][b] > tr.Start {
			return &aPoint{phase: 1, pos: i, prio: 14,
				err: auditErr("t=%v: node %d sends block %d it did not hold at upload start", tr.Start, from, b)}
		}
		if tr.End > maxTime {
			maxTime = tr.End
		}
		if tr.Lost {
			if tr.Adversary {
				if tr.Corrupt {
					advGarbage++
				} else {
					advStalled++
				}
				if honest[to] {
					honestWasted++
				}
			} else if tr.Corrupt {
				corrupt++
			} else {
				lost++
			}
			continue
		}
		if !have[to].Add(b) {
			return &aPoint{phase: 1, pos: i, prio: 15,
				err: auditErr("t=%v: node %d delivered block %d it already holds", tr.End, to, b)}
		}
		arrivedAt[to][b] = tr.End
		delivered++
		if adversarial && honest[to] {
			honestUseful++
		}
		if have[to].Full() {
			completion[to] = tr.End
		}
	}
	applyEvents(math.Inf(1))

	agg := func(err error) *aPoint { return &aPoint{phase: 3, err: err} }
	// The run must have finished under the engine's criterion: every
	// alive client — every alive *honest* client under an adversary
	// plan — holds the whole file. An open run instead ends on its
	// verdict: Drained requires an exhausted pool and no peer
	// mid-download; Unstable is a bounded truncation with no completion
	// requirement, but the starvation audit below still must account
	// for every peer that entered.
	if open {
		o := res.Open
		arrived := nextArrive - 1
		occupancy := 0
		comp := 0
		for v := 1; v < c.Nodes; v++ {
			if alive[v] && !have[v].Full() {
				occupancy++
			}
			if completion[v] != 0 {
				comp++
			}
		}
		switch o.Verdict {
		case arrival.VerdictDrained:
			if arrived != c.Nodes-1 {
				return agg(auditErr("drained verdict with %d/%d arrivals replayed", arrived, c.Nodes-1))
			}
			if occupancy != 0 {
				return agg(auditErr("drained verdict but %d present clients incomplete", occupancy))
			}
		case arrival.VerdictUnstable:
			// Bounded truncation: nothing further to require.
		default:
			return agg(auditErr("open result carries verdict %v", o.Verdict))
		}
		if o.Arrived != arrived || o.Departed != departed || o.EarlyExits != earlyExits {
			return agg(auditErr("replay counts %d arrived / %d departed / %d early exits, result reports %d / %d / %d",
				arrived, departed, earlyExits, o.Arrived, o.Departed, o.EarlyExits))
		}
		if o.Completed != comp {
			return agg(auditErr("replay counts %d completions, open result reports %d", comp, o.Completed))
		}
		if o.FinalOccupancy != occupancy {
			return agg(auditErr("replay leaves %d peers mid-download, open result reports %d", occupancy, o.FinalOccupancy))
		}
		if o.Arrived != o.Completed+o.EarlyExits+o.FinalOccupancy {
			return agg(auditErr("open run starves silently: %d arrived != %d completed + %d early exits + %d still present",
				o.Arrived, o.Completed, o.EarlyExits, o.FinalOccupancy))
		}
	} else {
		for v := 1; v < c.Nodes; v++ {
			if adversarial && !honest[v] {
				continue
			}
			if alive[v] && !have[v].Full() {
				return agg(auditErr("replayed trace leaves alive client %d incomplete (%d/%d blocks)",
					v, have[v].Count(), c.Blocks))
			}
		}
	}
	if delivered != res.Transfers {
		return agg(auditErr("replay counts %d deliveries, result reports %d", delivered, res.Transfers))
	}
	if lost != res.Lost || corrupt != res.Corrupt {
		return agg(auditErr("replay counts %d lost + %d corrupt, result reports %d + %d",
			lost, corrupt, res.Lost, res.Corrupt))
	}
	if advStalled != res.AdvStalled || advGarbage != res.AdvCorrupt {
		return agg(auditErr("replay counts %d stalled + %d garbage adversary drops, result reports %d + %d",
			advStalled, advGarbage, res.AdvStalled, res.AdvCorrupt))
	}
	if adversarial && (honestUseful != res.HonestUseful || honestWasted != res.HonestWasted) {
		return agg(auditErr("replay counts %d honest-useful / %d honest-wasted, result reports %d / %d",
			honestUseful, honestWasted, res.HonestUseful, res.HonestWasted))
	}
	if len(res.Trace) > 0 || len(res.FaultLog) > 0 {
		// An open run's clock can outlive its last logged event: the
		// final handled event may be an unlogged protocol timer, and
		// finish() stamps CompletionTime with the engine clock.
		if open && res.CompletionTime < maxTime {
			return agg(auditErr("CompletionTime %v precedes the last recorded event (%v)",
				res.CompletionTime, maxTime))
		}
		if !open && res.CompletionTime != maxTime {
			return agg(auditErr("CompletionTime %v does not match the last recorded event (%v)",
				res.CompletionTime, maxTime))
		}
	}
	for v := 0; v < c.Nodes; v++ {
		if !have[v].Equal(res.FinalHave[v]) {
			return agg(auditErr("node %d final block set differs from recorded snapshot", v))
		}
		if v > 0 && completion[v] != res.ClientCompletion[v] {
			return agg(auditErr("node %d completion time: replay %v, result %v",
				v, completion[v], res.ClientCompletion[v]))
		}
	}
	if res.FinalAlive != nil {
		for v, a := range res.FinalAlive {
			if alive[v] != a {
				return agg(auditErr("node %d final liveness: replay %v, result %v", v, alive[v], a))
			}
		}
	}
	return nil
}

// RunAudit replays a recorded asynchronous run and verifies every
// engine invariant post hoc, given only the artifacts the run leaves
// behind (Config, Trace, FaultLog, FinalHave):
//
//   - the serial upload port: no sender has two overlapping transfers;
//   - download ports: no receiver exceeds DownloadPorts concurrent
//     receives, and no block is twice in flight to the same receiver;
//   - bandwidth: every transfer's duration is 1/min(up(u), down(v)/P);
//   - store-and-forward: the sender held the block when the transfer
//     started (wiped rejoins are replayed, so a block lost to a wipe
//     must be re-acquired before it can be forwarded again);
//   - liveness: both endpoints were alive for the whole flight — a
//     crash mid-transfer must have aborted it, so an aborted transfer
//     appearing in the trace is an error;
//   - accounting: delivery, loss, and corruption counts, per-client
//     completion times, the completion time, and the final block and
//     liveness state all match the recorded Result.
//
// A Result produced by Run with RecordTrace always passes; a doctored
// trace fails with a pinpointed ErrAudit. cfg.Fault and cfg.Adversary
// are ignored — the replay takes its adversity from res.FaultLog and
// res.Strategies, so auditing never consumes a (single-use) plan. For
// adversarial runs the drop causes are re-counted per kind and the
// honest-only completion criterion and honest stall accounting are
// re-derived from the trace.
//
// The audit runs as a fixed task partition — one stateful replay, the
// stateless per-record checks over aRecTasks contiguous record chunks,
// and the port disciplines over aRecTasks node lanes — executed on
// cfg.AuditWorkers OS workers and merged by smallest (phase, pos,
// prio) key. The partition does not depend on the worker count, so the
// verdict and the error text are byte-identical for every value,
// including the inline sequential AuditWorkers <= 1 path.
func RunAudit(cfg Config, res *Result) error {
	cfg.Fault = nil
	cfg.Adversary = nil
	cfg.Arrivals = nil // open replays take arrivals from res.FaultLog
	if err := cfg.Validate(); err != nil {
		return err
	}
	c := cfg.withDefaults()
	if res == nil {
		return auditErr("nil result")
	}
	if c.Nodes == 1 {
		return nil // vacuous run
	}
	if res.FinalHave == nil {
		return auditErr("result has no FinalHave snapshot; run with RecordTrace")
	}
	if len(res.FinalHave) != c.Nodes {
		return auditErr("FinalHave has %d entries for %d nodes", len(res.FinalHave), c.Nodes)
	}
	if len(res.ClientCompletion) != c.Nodes {
		return auditErr("ClientCompletion has %d entries for %d nodes", len(res.ClientCompletion), c.Nodes)
	}
	if res.FinalAlive != nil && len(res.FinalAlive) != c.Nodes {
		return auditErr("FinalAlive has %d entries for %d nodes", len(res.FinalAlive), c.Nodes)
	}
	adversarial := res.Strategies != nil
	var honest []bool
	if adversarial {
		if len(res.Strategies) != c.Nodes {
			return auditErr("Strategies has %d entries for %d nodes", len(res.Strategies), c.Nodes)
		}
		if res.Strategies[0] != adversary.Honest {
			return auditErr("node 0 (the server) is recorded as %v; it must stay honest", res.Strategies[0])
		}
		honest = make([]bool, c.Nodes)
		for v, sg := range res.Strategies {
			honest[v] = sg == adversary.Honest
		}
	}
	open := res.Open != nil
	ix := buildEventIndex(res.FaultLog, open, c.Nodes)

	workers := c.AuditWorkers
	if workers <= 0 {
		workers = 1
	}
	pts, perr := parallel.Map(workers, 1+2*aRecTasks, func(i int) (*aPoint, error) {
		switch {
		case i == 0:
			return auditReplay(c, res, honest, adversarial, open), nil
		case i <= aRecTasks:
			return auditRecords(c, res, ix, honest, adversarial, i-1), nil
		default:
			return auditPorts(c, res, adversarial, honest, i-1-aRecTasks), nil
		}
	})
	if perr != nil {
		return perr
	}
	var pt *aPoint
	for _, p := range pts {
		pt = aBetter(pt, p)
	}
	if pt != nil {
		return pt.err
	}
	return nil
}
