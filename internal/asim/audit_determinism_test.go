package asim

import (
	"testing"

	"barterdist/internal/fault"
)

// TestAsimAuditWorkerInvariance replays a churny asynchronous run —
// and doctored variants of it — at AuditWorkers 1, 2, and 8 and
// requires byte-identical verdicts and error text: the fixed
// chunk/lane partition and the (phase, pos, prio) merge must reproduce
// the sequential auditor's first error at every width.
func TestAsimAuditWorkerInvariance(t *testing.T) {
	run := func() (Config, *Result) {
		plan, err := fault.NewPlan(fault.Options{
			Seed: 77, CrashRate: 0.05, MaxCrashes: 5,
			RejoinDelay: 5, RejoinLosesBlocks: true, LossRate: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Nodes: 24, Blocks: 16, DownloadPorts: 1, RecordTrace: true, Fault: plan}
		res, err := Run(cfg, NewAsyncRandomized(nil, false, 1, 9))
		if err != nil {
			t.Fatal(err)
		}
		return cfg, res
	}

	errString := func(err error) string {
		if err == nil {
			return "<nil>"
		}
		return err.Error()
	}
	matrix := func(t *testing.T, cfg Config, res *Result, wantPass bool) {
		cfg.Fault = nil
		cfg.AuditWorkers = 1
		base := errString(RunAudit(cfg, res))
		if wantPass && base != "<nil>" {
			t.Fatalf("pristine run failed audit: %s", base)
		}
		if !wantPass && base == "<nil>" {
			t.Fatalf("doctored run passed the audit")
		}
		for _, w := range []int{2, 8} {
			cfg.AuditWorkers = w
			if got := errString(RunAudit(cfg, res)); got != base {
				t.Errorf("AuditWorkers=%d verdict %q, sequential %q", w, got, base)
			}
		}
	}

	t.Run("pristine", func(t *testing.T) {
		cfg, res := run()
		matrix(t, cfg, res, true)
	})

	tamper := map[string]func(r *Result){
		"inflated delivery count": func(r *Result) { r.Transfers++ },
		"forged block id": func(r *Result) {
			r.Trace[len(r.Trace)/2].Block = int32(15)
			r.Trace[len(r.Trace)/2+1].Block = int32(15)
		},
		"out-of-range receiver":     func(r *Result) { r.Trace[len(r.Trace)/3].To = 99 },
		"stretched duration":        func(r *Result) { r.Trace[len(r.Trace)/4].End += 0.5 },
		"shifted client completion": func(r *Result) { r.ClientCompletion[3]++ },
		"forged fault log":          func(r *Result) { r.FaultLog[0].Node = 0 },
	}
	for name, mut := range tamper {
		t.Run(name, func(t *testing.T) {
			cfg, res := run()
			mut(res)
			matrix(t, cfg, res, false)
		})
	}
}
