package asim

import (
	"errors"
	"math"
	"testing"

	"barterdist/internal/analysis"
	"barterdist/internal/graph"
	"barterdist/internal/xrand"
)

func TestConfigValidation(t *testing.T) {
	p := NewAsyncRandomized(nil, false, 1, 1)
	bad := []Config{
		{Nodes: 0, Blocks: 1},
		{Nodes: 2, Blocks: 0},
		{Nodes: 2, Blocks: 1, UploadRate: []float64{1}},
		{Nodes: 2, Blocks: 1, UploadRate: []float64{1, 0}},
		{Nodes: 2, Blocks: 1, UploadRate: []float64{1, math.Inf(1)}},
		{Nodes: 2, Blocks: 1, DownloadRate: []float64{1, 1, 1}},
		{Nodes: 2, Blocks: 1, DownloadPorts: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSingleServerIsComplete(t *testing.T) {
	res, err := Run(Config{Nodes: 1, Blocks: 5}, NewAsyncRandomized(nil, false, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime != 0 {
		t.Fatalf("T = %v, want 0", res.CompletionTime)
	}
}

func TestUnitRatesMatchSynchronousScale(t *testing.T) {
	// With all rates 1 and one download port, durations are 1 time unit
	// per block — the async randomized algorithm should land in the same
	// ballpark as its synchronous sibling: near k - 1 + log2 n.
	const n, k = 64, 64
	res, err := Run(Config{Nodes: n, Blocks: k, DownloadPorts: 1},
		NewAsyncRandomized(nil, false, 1, 7))
	if err != nil {
		t.Fatal(err)
	}
	opt := float64(analysis.CooperativeLowerBound(n, k))
	if res.CompletionTime < opt {
		t.Fatalf("T = %v below the lower bound %v", res.CompletionTime, opt)
	}
	if res.CompletionTime > 1.6*opt {
		t.Fatalf("T = %v more than 60%% above optimal %v", res.CompletionTime, opt)
	}
	if res.Transfers != (n-1)*k {
		t.Fatalf("transfers = %d, want %d", res.Transfers, (n-1)*k)
	}
}

func TestHeterogeneousRatesStillComplete(t *testing.T) {
	// Half the clients upload at half speed — the asynchrony scenario of
	// Section 2.3.4. The run must complete, slower than homogeneous.
	const n, k = 32, 32
	rates := make([]float64, n)
	for i := range rates {
		rates[i] = 1
		if i%2 == 1 {
			rates[i] = 0.5
		}
	}
	slow, err := Run(Config{Nodes: n, Blocks: k, UploadRate: rates, DownloadPorts: 1},
		NewAsyncRandomized(nil, false, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(Config{Nodes: n, Blocks: k, DownloadPorts: 1},
		NewAsyncRandomized(nil, false, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if slow.CompletionTime <= fast.CompletionTime {
		t.Errorf("heterogeneous run (T=%v) not slower than homogeneous (T=%v)",
			slow.CompletionTime, fast.CompletionTime)
	}
}

func TestRunsOnOverlayGraph(t *testing.T) {
	rng := xrand.New(5)
	g, err := graph.RandomRegular(32, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Nodes: 32, Blocks: 16, DownloadPorts: 1},
		NewAsyncRandomized(g, true, 1, 9))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime <= 0 {
		t.Fatal("no progress recorded")
	}
	for v := 1; v < 32; v++ {
		if res.ClientCompletion[v] <= 0 || res.ClientCompletion[v] > res.CompletionTime {
			t.Fatalf("client %d completion %v out of range", v, res.ClientCompletion[v])
		}
	}
}

func TestRarestFirstCompletes(t *testing.T) {
	res, err := Run(Config{Nodes: 32, Blocks: 32, DownloadPorts: 1},
		NewAsyncRandomized(nil, true, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime < float64(analysis.CooperativeLowerBound(32, 32)) {
		t.Fatal("impossible completion time")
	}
}

func TestDownloadPortsShareRate(t *testing.T) {
	// With 2 ports each carrying half the download rate, a seed-fed pair
	// of transfers takes 2 time units instead of 1; completion can only
	// get slower per transfer but parallelism can still help overall.
	res1, err := Run(Config{Nodes: 16, Blocks: 16, DownloadPorts: 1},
		NewAsyncRandomized(nil, false, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(Config{Nodes: 16, Blocks: 16, DownloadPorts: 2},
		NewAsyncRandomized(nil, false, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res1.CompletionTime <= 0 || res2.CompletionTime <= 0 {
		t.Fatal("no progress")
	}
}

// deadProtocol never uploads; the run must abort with ErrMaxTime.
type deadProtocol struct{}

func (deadProtocol) NextUpload(int, *State) (Upload, bool) { return Upload{}, false }
func (deadProtocol) Wakeups() []float64                    { return []float64{5} }
func (deadProtocol) OnTimer(int, *State)                   {}
func (deadProtocol) Neighbors(int) []int32                 { return nil }
func (deadProtocol) OnDeliver(int, int, int, *State)       {}

func TestDeadProtocolTimesOut(t *testing.T) {
	_, err := Run(Config{Nodes: 4, Blocks: 2, MaxTime: 50}, deadProtocol{})
	if !errors.Is(err, ErrMaxTime) {
		t.Fatalf("err = %v, want ErrMaxTime", err)
	}
}

// silentProtocol has no timers and never uploads: the queue drains.
type silentProtocol struct{ deadProtocol }

func (silentProtocol) Wakeups() []float64 { return nil }

func TestDrainedQueueReportsErrMaxTime(t *testing.T) {
	_, err := Run(Config{Nodes: 4, Blocks: 2}, silentProtocol{})
	if !errors.Is(err, ErrMaxTime) {
		t.Fatalf("err = %v, want ErrMaxTime", err)
	}
}

// cheatingProtocol tries to send a block the target already has.
type cheatingProtocol struct{ silentProtocol }

func (cheatingProtocol) NextUpload(u int, s *State) (Upload, bool) {
	if u != 0 {
		return Upload{}, false
	}
	return Upload{To: 1, Block: 0}, true // valid only the first time
}

func TestEngineValidatesUploads(t *testing.T) {
	// Block 0 lands at node 1; the protocol immediately re-offers it,
	// which the engine must reject as a redundant transfer.
	_, err := Run(Config{Nodes: 3, Blocks: 2}, cheatingProtocol{})
	if err == nil || errors.Is(err, ErrMaxTime) {
		t.Fatalf("err = %v, want validation error", err)
	}
}

func TestBadTimerPeriodRejected(t *testing.T) {
	_, err := Run(Config{Nodes: 2, Blocks: 1}, badTimerProtocol{})
	if err == nil {
		t.Fatal("non-positive timer period accepted")
	}
}

type badTimerProtocol struct{ silentProtocol }

func (badTimerProtocol) Wakeups() []float64 { return []float64{0} }

func TestAsyncDeterministicBySeed(t *testing.T) {
	cfg := Config{Nodes: 32, Blocks: 16, DownloadPorts: 1}
	a, err := Run(cfg, NewAsyncRandomized(nil, false, 1, 42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, NewAsyncRandomized(nil, false, 1, 42))
	if err != nil {
		t.Fatal(err)
	}
	if a.CompletionTime != b.CompletionTime || a.Transfers != b.Transfers {
		t.Fatal("same seed produced different async runs")
	}
}
