// Package asim is the event-driven, continuous-time companion to the
// synchronous simulator: the substrate for the paper's asynchrony
// discussion (Section 2.3.4, "Dealing with asynchrony") and for the
// BitTorrent study it reports as ongoing work in Section 4, which used
// "asynchronous simulations".
//
// Model: time is continuous. Each node has an upload rate and a download
// rate in blocks per unit time; a node uploads one block at a time
// (serial upload port) and may receive up to DownloadPorts blocks
// concurrently. Following the paper's tail-link bandwidth model, a
// transfer from u to v proceeds at min(upRate(u), downRate(v)/active(v)),
// approximated here by reserving one download port at the receiver and
// using min(upRate(u), downRate(v)/DownloadPorts) — each port carries an
// equal share. With all rates 1 and one port, durations are 1 and the
// model coincides with the synchronous simulator's tick.
//
// A Protocol is sender-driven: whenever a node's upload port is free the
// engine asks it for the next (receiver, block) pair. The engine tracks
// why a node went idle — nothing to offer vs. all targets busy — and
// wakes it on exactly the events that can change that answer, so runs
// stay near O(events·degree).
//
// # Fault injection
//
// Config.Fault attaches a fault.Plan: crash arrivals become engine
// events, a crash aborts every transfer in flight to or from the victim
// (the sender's upload port and the receiver's download port are both
// restored, and the affected peers are re-woken), and each completing
// transfer may be lost or corrupted at delivery time. Protocols observe
// liveness through State.Alive and, if they implement FaultAware,
// receive OnCrash/OnRejoin/OnLoss callbacks. With a nil Plan the engine
// is byte-identical to the fault-free implementation.
//
// # Adversarial behavior
//
// Config.Adversary attaches an adversary.Plan. Refusals happen at
// upload start: a node whose strategy refuses (free-rider, completed
// defector, throttler in a closed window) is parked without polling
// the protocol — a node knows its own strategy — and a throttler is
// re-woken when its window reopens. In-flight misbehavior happens at
// delivery: a false-advertiser's transfer stalls and a corrupter's
// fails block verification, in both cases wasting the receiver's
// download port for the transfer's duration. Protocols observe the
// drops through AdversaryAware; completion switches to the honest-only
// criterion. With a nil Plan the engine is byte-identical to the
// compliant implementation.
package asim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"sort"

	"barterdist/internal/adversary"
	"barterdist/internal/arrival"
	"barterdist/internal/bitset"
	"barterdist/internal/checkpoint"
	"barterdist/internal/fault"
)

// Unlimited download ports.
const Unlimited = 0

// Config describes an asynchronous simulation instance.
type Config struct {
	// Nodes is the total node count (node 0 = server, holds all blocks).
	Nodes int
	// Blocks is the file size in blocks.
	Blocks int
	// UploadRate[v] is node v's upload bandwidth in blocks per unit
	// time. nil means rate 1 everywhere.
	UploadRate []float64
	// DownloadRate[v] is node v's download bandwidth. nil means rate
	// equal to the upload rate ("tail links", D = U).
	DownloadRate []float64
	// DownloadPorts bounds concurrent receives per node (Unlimited = no
	// bound; each concurrent receive still shares DownloadRate).
	DownloadPorts int
	// ShardWorkers is accepted for configuration symmetry with the
	// synchronous engine (core.Config.ShardWorkers) and validated, but
	// does not affect the asynchronous engine: its event loop is
	// inherently sequential — one upload decision per event — so there
	// is no intra-run phase to parallelize. Protocols still draw from
	// per-shard streams (see AsyncRandomized), keeping the RNG
	// derivation identical across both engines.
	ShardWorkers int
	// AuditWorkers is the worker pool width RunAudit replays the
	// recorded trace at. 0 and 1 both mean inline sequential replay; the
	// audit verdict and error text are byte-identical for every value.
	AuditWorkers int
	// MaxTime aborts runaway protocols. 0 selects a generous default.
	MaxTime float64
	// RecordTrace keeps every transfer (delivered, lost, or corrupted)
	// in the result so RunAudit can replay the run. Costs memory.
	RecordTrace bool
	// Fault attaches a fault-injection plan (crashes, rejoins, transfer
	// loss). nil runs the reliable engine unchanged. A Plan is
	// single-use: build one per run.
	Fault *fault.Plan
	// Adversary attaches a behavior-injection plan (free-riders,
	// throttlers, false-advertisers, corrupters, defectors). nil runs
	// the compliant engine unchanged. Like Fault, a Plan is single-use
	// and composes with it: the adversary rules on each delivery first.
	Adversary *adversary.Plan
	// Arrivals attaches an open-system plan (Poisson peer arrivals,
	// departures at completion or selfish early exit, seed policy).
	// Nodes then becomes the capacity — an upper bound on cumulative
	// arrivals — and the run ends with a stability verdict in
	// Result.Open instead of a closed-batch completion. nil runs the
	// closed engine unchanged. Single-use, and mutually exclusive with
	// Fault and Adversary for now.
	Arrivals *arrival.Plan
	// Checkpoint enables periodic crash-safe snapshots: every
	// Checkpoint.Every handled events the full engine state is written
	// atomically to Checkpoint.Path. Resume continues such a run with a
	// byte-identical remainder. nil disables checkpointing. Requires the
	// protocol to implement CheckpointableProtocol.
	Checkpoint *checkpoint.Policy
}

// Validate checks the raw configuration without mutating it. nil rate
// slices are valid — withDefaults fills them with all-ones (which
// trivially pass the per-entry checks).
func (c *Config) Validate() error {
	if c.Nodes < 1 {
		return fmt.Errorf("asim: Nodes = %d, need >= 1", c.Nodes)
	}
	if c.Blocks < 1 {
		return fmt.Errorf("asim: Blocks = %d, need >= 1", c.Blocks)
	}
	if c.UploadRate != nil {
		if len(c.UploadRate) != c.Nodes {
			return fmt.Errorf("asim: UploadRate has %d entries for %d nodes", len(c.UploadRate), c.Nodes)
		}
		for v, r := range c.UploadRate {
			if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("asim: UploadRate[%d] = %v must be positive and finite", v, r)
			}
		}
	}
	if c.DownloadRate != nil {
		if len(c.DownloadRate) != c.Nodes {
			return fmt.Errorf("asim: DownloadRate has %d entries for %d nodes", len(c.DownloadRate), c.Nodes)
		}
		for v, r := range c.DownloadRate {
			if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
				return fmt.Errorf("asim: DownloadRate[%d] = %v must be positive and finite", v, r)
			}
		}
	}
	if c.DownloadPorts < 0 {
		return fmt.Errorf("asim: DownloadPorts = %d, need >= 0", c.DownloadPorts)
	}
	if c.ShardWorkers < 0 {
		return fmt.Errorf("asim: ShardWorkers = %d, need >= 0", c.ShardWorkers)
	}
	if c.AuditWorkers < 0 {
		return fmt.Errorf("asim: AuditWorkers = %d, need >= 0", c.AuditWorkers)
	}
	if c.MaxTime < 0 || math.IsNaN(c.MaxTime) || math.IsInf(c.MaxTime, 0) {
		return fmt.Errorf("asim: MaxTime = %v must be finite and >= 0", c.MaxTime)
	}
	if c.Arrivals != nil {
		if c.Nodes < 2 {
			return fmt.Errorf("asim: open-system mode needs Nodes >= 2 (capacity for at least one arrival)")
		}
		if c.Fault != nil {
			return fmt.Errorf("asim: Arrivals cannot combine with Fault (open-system churn owns the liveness mask)")
		}
		if c.Adversary != nil {
			return fmt.Errorf("asim: Arrivals cannot combine with Adversary (open-system completion semantics differ)")
		}
	}
	return nil
}

// withDefaults returns a copy with zero fields replaced by the
// documented defaults. The configuration must already be valid.
func (c Config) withDefaults() Config {
	if c.UploadRate == nil {
		c.UploadRate = make([]float64, c.Nodes)
		for i := range c.UploadRate {
			c.UploadRate[i] = 1
		}
	}
	if c.DownloadRate == nil {
		c.DownloadRate = append([]float64(nil), c.UploadRate...)
	}
	if c.MaxTime == 0 {
		c.MaxTime = 100 * float64(c.Blocks+c.Nodes)
	}
	return c
}

// State exposes read-only ownership and progress to protocols.
type State struct {
	n, k     int
	have     []*bitset.Set
	inFlight []map[int32]*event // blocks currently being received, per node
	complete int
	now      float64

	// Fault-layer view; nil/zero without a fault plan.
	alive         []bool
	aliveClients  int
	pendingRejoin int

	// Adversary-layer view; nil/zero without an adversary plan.
	honest              []bool
	honestClients       int
	completeHonest      int
	aliveHonest         int
	pendingRejoinHonest int
}

// N returns the node count.
func (s *State) N() int { return s.n }

// K returns the block count.
func (s *State) K() int { return s.k }

// Now returns the current simulation time.
func (s *State) Now() float64 { return s.now }

// Has reports whether v holds block b.
func (s *State) Has(v, b int) bool { return s.have[v].Has(b) }

// Blocks returns v's block set (read-only).
func (s *State) Blocks(v int) *bitset.Set { return s.have[v] }

// InFlightTo reports whether block b is currently being received by v.
func (s *State) InFlightTo(v, b int) bool {
	_, ok := s.inFlight[v][int32(b)]
	return ok
}

// InFlightCount returns the number of blocks currently arriving at v.
func (s *State) InFlightCount(v int) int { return len(s.inFlight[v]) }

// Alive reports whether node v is currently up. Without a fault plan
// every node is always alive.
func (s *State) Alive(v int) bool { return s.alive == nil || s.alive[v] }

// AliveClients returns the number of clients currently up (n-1 without
// a fault plan).
func (s *State) AliveClients() int {
	if s.alive == nil {
		return s.n - 1
	}
	return s.aliveClients
}

// Adversarial reports whether an adversary plan is active — the cue
// for defensive protocols to build their quarantine tables.
func (s *State) Adversarial() bool { return s.honest != nil }

// Honest reports whether node v plays by the protocol. Without an
// adversary plan every node is honest.
func (s *State) Honest(v int) bool { return s.honest == nil || s.honest[v] }

// AllClientsComplete reports completion: every client still part of the
// system holds the whole file (permanently departed nodes are excluded;
// nodes scheduled to rejoin count as pending). Under an adversary plan
// only *honest* clients count — a free-rider that starves under barter
// must not hold the swarm hostage.
func (s *State) AllClientsComplete() bool {
	if s.honest != nil {
		if s.alive == nil {
			return s.completeHonest == s.honestClients
		}
		return s.completeHonest == s.aliveHonest && s.pendingRejoinHonest == 0
	}
	if s.alive == nil {
		return s.complete == s.n-1
	}
	return s.complete == s.aliveClients && s.pendingRejoin == 0
}

// Upload is a protocol's answer to "what should this node send next".
type Upload struct {
	To    int
	Block int
}

// Protocol drives the simulation.
type Protocol interface {
	// NextUpload is invoked when node u's upload port is free. Returning
	// ok = false parks u until an event that may change the answer (u
	// gains a block, a download port near u frees, or a timer fires).
	// The returned target must need the block, have a free port, and be
	// alive; the engine validates and errors out otherwise.
	NextUpload(u int, s *State) (Upload, bool)
	// Wakeups returns protocol timer periods; the engine calls OnTimer
	// every period until completion. Nil means no timers.
	Wakeups() []float64
	// OnTimer is called when a timer fires (e.g. a BitTorrent choke
	// recomputation). idx is the index into Wakeups().
	OnTimer(idx int, s *State)
	// Neighbors returns the nodes that might upload to v (v's in-edge
	// peers), or nil for "anyone" (complete overlays). The engine uses
	// it to wake exactly the parked nodes whose answer can have changed
	// when a block lands at v.
	Neighbors(v int) []int32
	// OnDeliver is called after block b lands at node to — the hook
	// BitTorrent-style protocols use for download-rate accounting and
	// rarity statistics.
	OnDeliver(from, to, block int, s *State)
}

// FaultAware is optionally implemented by protocols that want fault
// notifications beyond what the State view exposes — typically to keep
// rarity statistics honest or to drop dead peers from choke lists.
type FaultAware interface {
	// OnCrash is called after node v's state is fully torn down (alive
	// cleared, in-flight transfers aborted, ports restored).
	OnCrash(v int, s *State)
	// OnRejoin is called after node v rejoined; wiped reports whether
	// it came back with an empty cache.
	OnRejoin(v int, wiped bool, s *State)
	// OnLoss is called when a transfer is dropped at delivery time
	// (lost in flight, or corrupt = delivered but discarded).
	OnLoss(from, to, block int, corrupt bool, s *State)
}

// AdversaryAware is optionally implemented by protocols that want to
// observe adversary-faulted deliveries — typically to score and
// quarantine the offending sender.
type AdversaryAware interface {
	// OnAdversaryDrop is called when sender from's strategy denied the
	// delivery of block to node to: corrupt reports garbage that failed
	// verification (a corrupter), false a transfer that stalled (a
	// false-advertiser). The receiver's download port was held for the
	// whole transfer either way.
	OnAdversaryDrop(from, to, block int, corrupt bool, s *State)
}

// TransferRecord is one transfer as recorded by Config.RecordTrace.
type TransferRecord struct {
	Start, End      float64
	From, To, Block int32
	// Lost marks a transfer dropped at delivery time; Corrupt
	// additionally marks it as delivered-but-discarded. Adversary marks
	// the sender's strategy — not the network — as the cause (Corrupt
	// then distinguishes a corrupter's garbage from a
	// false-advertiser's stall).
	Lost      bool
	Corrupt   bool
	Adversary bool
}

// Result reports a finished asynchronous run.
type Result struct {
	// CompletionTime is when the last client finished (time units).
	CompletionTime float64
	// ClientCompletion[v] is when client v finished (most recent
	// completion under churn).
	ClientCompletion []float64
	// Transfers is the number of block deliveries.
	Transfers int

	// Fault-layer outcomes; zero without a fault plan.

	// Lost counts transfers dropped in flight; Corrupt counts transfers
	// delivered but discarded.
	Lost, Corrupt int
	// FaultLog lists applied crash/rejoin events (continuous Time).
	FaultLog []fault.Event
	// Trace holds every finished transfer when RecordTrace is set,
	// ordered by End time (aborted transfers are not recorded: their
	// bandwidth was reclaimed by the crash teardown).
	Trace []TransferRecord
	// FinalHave snapshots every node's final block set (RecordTrace).
	FinalHave []*bitset.Set
	// FinalAlive is the final liveness mask (RecordTrace + fault or
	// arrival plan).
	FinalAlive []bool

	// Open holds the open-system verdict and robustness instrumentation;
	// nil for closed-batch runs. In open mode FaultLog carries the
	// Arrive/Depart events.
	Open *arrival.OpenResult

	// Adversary-layer outcomes; zero without an adversary plan.

	// Strategies records each node's assigned strategy (index = node
	// id); nil for compliant runs.
	Strategies []adversary.Strategy
	// AdvStalled counts transfers a false-advertiser claimed but never
	// delivered; AdvCorrupt counts a corrupter's transfers that failed
	// block verification and were discarded. (Refusals happen at upload
	// start in this engine and consume no bandwidth, so they have no
	// counter here.)
	AdvStalled, AdvCorrupt int
	// HonestUseful counts deliveries to honest clients; HonestWasted
	// counts honest clients' download-port time slots wasted by
	// adversary-faulted transfers.
	HonestUseful, HonestWasted int
}

// HonestStallRate returns the fraction of honest clients' spent
// download slots that an adversary wasted (0 for compliant runs).
func (r *Result) HonestStallRate() float64 {
	if r.HonestUseful+r.HonestWasted == 0 {
		return 0
	}
	return float64(r.HonestWasted) / float64(r.HonestUseful+r.HonestWasted)
}

// ErrMaxTime is returned when the protocol fails to complete in time.
var ErrMaxTime = errors.New("asim: exceeded MaxTime before completion")

type eventKind int

const (
	evComplete eventKind = iota + 1 // a transfer finished
	evTimer
	evCrash   // a fault-plan crash arrival
	evRejoin  // a crashed node returns
	evAdvWake // a throttler's upload window reopens
	evArrive  // an open-system peer arrival (internal/arrival)
	evDepart  // an open-system peer departs for good
)

type event struct {
	at   float64
	seq  int // tie-break for determinism
	kind eventKind

	// evComplete fields.
	from, to, block int
	start           float64
	cancelled       bool // aborted by a crash; skip on pop

	// evTimer field.
	timer int

	// evRejoin / evAdvWake field.
	node int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Run executes the protocol to completion.
func Run(cfg Config, p Protocol) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Nodes == 1 {
		return &Result{ClientCompletion: make([]float64, 1)}, nil
	}
	c := cfg.withDefaults()
	eng, err := newEngine(c, p)
	if err != nil {
		return nil, err
	}
	// Kick every node once; most will park immediately.
	for v := 0; v < c.Nodes; v++ {
		if err := eng.tryStartUpload(v); err != nil {
			return nil, err
		}
	}
	return eng.loop()
}

// newEngine builds the engine for an already-validated, defaulted
// config: state, result, plans acquired, timers and the first crash
// arrival scheduled. The caller kicks the nodes (fresh run) or restores
// a snapshot (resume).
func newEngine(c Config, p Protocol) (*engine, error) {
	st := &State{
		n:        c.Nodes,
		k:        c.Blocks,
		have:     make([]*bitset.Set, c.Nodes),
		inFlight: make([]map[int32]*event, c.Nodes),
	}
	for v := range st.have {
		st.have[v] = bitset.New(c.Blocks)
		st.inFlight[v] = make(map[int32]*event)
	}
	for b := 0; b < c.Blocks; b++ {
		st.have[0].Add(b)
	}
	res := &Result{ClientCompletion: make([]float64, c.Nodes)}
	if c.RecordTrace {
		// A full run delivers exactly (n-1)*k useful blocks; reserving
		// that floor up front keeps steady-state recording out of the
		// append-growth path.
		res.Trace = make([]TransferRecord, 0, (c.Nodes-1)*c.Blocks)
	}

	eng := &engine{
		cfg:       c,
		st:        st,
		proto:     p,
		res:       res,
		uploading: make([]bool, c.Nodes),
		parked:    make([]bool, c.Nodes),
		curUpload: make([]*event, c.Nodes),
	}
	if c.Fault != nil {
		if err := c.Fault.Acquire(); err != nil {
			return nil, err
		}
		eng.faultAware, _ = p.(FaultAware)
		st.alive = make([]bool, c.Nodes)
		for i := range st.alive {
			st.alive[i] = true
		}
		st.aliveClients = c.Nodes - 1
	}
	if c.Arrivals != nil {
		if err := c.Arrivals.Acquire(); err != nil {
			return nil, err
		}
		eng.faultAware, _ = p.(FaultAware)
		eng.oa = newAsimArrivals(c.Arrivals, c)
		// Only the persistent server is present at time 0; clients
		// appear through the arrival stream with fresh ids.
		st.alive = make([]bool, c.Nodes)
		st.alive[0] = true
	}
	if c.Adversary != nil {
		if c.Adversary.N() != c.Nodes {
			return nil, fmt.Errorf("asim: adversary plan built for %d nodes, config has %d", c.Adversary.N(), c.Nodes)
		}
		if err := c.Adversary.Acquire(); err != nil {
			return nil, err
		}
		eng.adv = c.Adversary
		eng.advAware, _ = p.(AdversaryAware)
		eng.advWakePending = make([]bool, c.Nodes)
		st.honest = make([]bool, c.Nodes)
		for v := range st.honest {
			st.honest[v] = c.Adversary.Honest(v)
		}
		st.honestClients = c.Nodes - 1 - c.Adversary.Count()
		st.aliveHonest = st.honestClients
		res.Strategies = c.Adversary.Strategies()
	}
	heap.Init(&eng.queue)
	for i, period := range p.Wakeups() {
		if period <= 0 {
			return nil, fmt.Errorf("asim: timer %d period %v must be positive", i, period)
		}
		tev := eng.newEvent()
		tev.at, tev.kind, tev.timer = period, evTimer, i
		eng.schedule(tev)
	}
	if c.Fault != nil {
		eng.scheduleNextCrash()
	}
	if c.Arrivals != nil {
		eng.scheduleNextArrival()
	}
	return eng, nil
}

// finish stamps the completion time and, under RecordTrace, the final
// ownership and liveness snapshots.
func (e *engine) finish() *Result {
	c, st, res := e.cfg, e.st, e.res
	res.CompletionTime = st.now
	if c.RecordTrace {
		res.FinalHave = make([]*bitset.Set, c.Nodes)
		for v := range res.FinalHave {
			res.FinalHave[v] = st.have[v].Clone()
		}
		if st.alive != nil {
			res.FinalAlive = append([]bool(nil), st.alive...)
		}
	}
	return res
}

// loop drains the event queue to completion, checkpointing at handled-
// event boundaries when configured.
func (e *engine) loop() (*Result, error) {
	eng, c, st, p := e, e.cfg, e.st, e.proto
	for eng.queue.Len() > 0 {
		ev := heap.Pop(&eng.queue).(*event)
		if ev.cancelled {
			// Aborted by a crash; its inFlight/curUpload references were
			// cleared at cancellation time.
			eng.release(ev)
			continue
		}
		if ev.at > c.MaxTime {
			if eng.oa != nil {
				// Bounded-run truncation: an open run that outlives its
				// budget is reported as Unstable, never as an error.
				return eng.finishOpen(arrival.VerdictUnstable, arrival.ReasonBudget), nil
			}
			if st.honest != nil {
				return nil, fmt.Errorf("%w (t=%.2f, honest clients complete: %d/%d)",
					ErrMaxTime, ev.at, st.completeHonest, st.honestClients)
			}
			return nil, fmt.Errorf("%w (t=%.2f, clients complete: %d/%d)",
				ErrMaxTime, ev.at, st.complete, c.Nodes-1)
		}
		st.now = ev.at
		switch ev.kind {
		case evComplete:
			if err := eng.finishTransfer(ev); err != nil {
				return nil, err
			}
			if eng.oa == nil && st.AllClientsComplete() {
				return eng.finish(), nil
			}
		case evTimer:
			p.OnTimer(ev.timer, st)
			// A choke rotation can create work anywhere: wake everyone
			// parked. Timers are sparse, so this stays cheap.
			for v := 0; v < c.Nodes; v++ {
				if eng.parked[v] {
					if err := eng.tryStartUpload(v); err != nil {
						return nil, err
					}
				}
			}
			period := p.Wakeups()[ev.timer]
			tev := eng.newEvent()
			tev.at, tev.kind, tev.timer = st.now+period, evTimer, ev.timer
			eng.schedule(tev)
		case evCrash:
			c.Fault.TakeCrash()
			if err := eng.applyCrash(); err != nil {
				return nil, err
			}
			// Removing the last incomplete client can finish the run.
			if st.AllClientsComplete() {
				return eng.finish(), nil
			}
			eng.scheduleNextCrash()
		case evRejoin:
			if err := eng.applyRejoin(ev.node); err != nil {
				return nil, err
			}
			if st.AllClientsComplete() {
				return eng.finish(), nil
			}
		case evAdvWake:
			eng.advWakePending[ev.node] = false
			if err := eng.tryStartUpload(ev.node); err != nil {
				return nil, err
			}
		case evArrive:
			c.Arrivals.TakeArrival()
			if err := eng.applyArrive(); err != nil {
				return nil, err
			}
			eng.scheduleNextArrival()
		case evDepart:
			if err := eng.applyDepart(ev.node); err != nil {
				return nil, err
			}
		}
		if eng.oa != nil {
			// Open runs end in a verdict: the watchdog truncates a
			// diverging or starving swarm, and the drain check requires
			// the arrival pool to be exhausted first.
			if reason := eng.oa.observe(st); reason != arrival.ReasonNone {
				return eng.finishOpen(arrival.VerdictUnstable, reason), nil
			}
			if eng.oa.drained(st) {
				return eng.finishOpen(arrival.VerdictDrained, arrival.ReasonNone), nil
			}
		}
		// Fully handled; nothing retains the event past this point.
		eng.release(ev)
		eng.handled++
		if err := eng.maybeCheckpoint(); err != nil {
			return nil, err
		}
	}
	if eng.oa != nil {
		// The queue can drain through cancelled events (a departure
		// aborting the last in-flight transfers), so re-check the drain
		// criterion before ruling the run stuck.
		switch {
		case eng.oa.drained(st):
			return eng.finishOpen(arrival.VerdictDrained, arrival.ReasonNone), nil
		case eng.oa.truncated:
			return eng.finishOpen(arrival.VerdictUnstable, arrival.ReasonBudget), nil
		default:
			// Peers are present and incomplete but no event will ever
			// fire again: permanent protocol starvation.
			return eng.finishOpen(arrival.VerdictUnstable, arrival.ReasonStarvation), nil
		}
	}
	if st.honest != nil {
		return nil, fmt.Errorf("%w (event queue drained, honest clients complete: %d/%d)",
			ErrMaxTime, st.completeHonest, st.honestClients)
	}
	return nil, fmt.Errorf("%w (event queue drained, clients complete: %d/%d)",
		ErrMaxTime, st.complete, c.Nodes-1)
}

type engine struct {
	cfg   Config
	st    *State
	proto Protocol
	res   *Result
	queue eventQueue
	seq   int
	// handled counts fully processed (non-cancelled) events; checkpoints
	// fire at multiples of Config.Checkpoint.Every.
	handled int

	uploading  []bool   // upload port busy
	parked     []bool   // NextUpload returned false; awaiting a wake event
	curUpload  []*event // pending completion event of each node's upload
	faultAware FaultAware
	oa         *asimArrivals // open-system bookkeeping; nil in closed runs

	adv            *adversary.Plan
	advAware       AdversaryAware
	advWakePending []bool // an evAdvWake is already queued for this node

	// free recycles popped events: the loop pops, handles, and releases
	// each event, so the steady state churns a fixed working set instead
	// of allocating one event per transfer.
	free []*event
}

// newEvent returns a zeroed event, reusing a released one when
// available.
func (e *engine) newEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		*ev = event{}
		return ev
	}
	return &event{}
}

// release returns a popped, fully handled event to the free list. The
// caller must ensure no queue, inFlight, or curUpload reference
// remains.
func (e *engine) release(ev *event) { e.free = append(e.free, ev) }

func (e *engine) schedule(ev *event) {
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.queue, ev)
}

// scheduleNextCrash turns the plan's next Poisson arrival into an
// engine event. Arrivals beyond MaxTime are discarded — they could
// never take effect and must not trip the timeout check.
func (e *engine) scheduleNextCrash() {
	at, ok := e.cfg.Fault.NextCrash()
	if !ok || at > e.cfg.MaxTime {
		return
	}
	ev := e.newEvent()
	ev.at, ev.kind = at, evCrash
	e.schedule(ev)
}

// applyCrash picks a victim and tears it down: the node goes dark, its
// outgoing upload and every transfer in flight toward it are aborted,
// and the ports and bandwidth those transfers held are restored. Peers
// whose options changed (freed senders, freed download ports) are
// re-woken.
func (e *engine) applyCrash() error {
	st := e.st
	v := e.cfg.Fault.PickVictim(st.n,
		func(v int) bool { return st.alive[v] },
		func(v int) int { return st.have[v].Count() })
	if v < 0 {
		return nil // nobody left to kill
	}
	wakeSenders, freedReceiver := e.teardown(v)

	ev := fault.Event{Time: st.now, Node: int32(v), Kind: fault.Crash}
	e.res.FaultLog = append(e.res.FaultLog, ev)
	if delay, ok := e.cfg.Fault.Rejoins(); ok {
		st.pendingRejoin++
		if st.honest != nil && st.honest[v] {
			st.pendingRejoinHonest++
		}
		rev := e.newEvent()
		rev.at, rev.kind, rev.node = st.now+delay, evRejoin, v
		e.schedule(rev)
	}
	if e.faultAware != nil {
		e.faultAware.OnCrash(v, st)
	}

	// Re-wake with the state fully consistent. Freed senders first (in
	// ascending order for determinism), then the in-neighbors of the
	// receiver whose download port was released.
	for _, u := range wakeSenders {
		if err := e.tryStartUpload(u); err != nil {
			return err
		}
	}
	if freedReceiver >= 0 && st.alive[freedReceiver] {
		if err := e.wakeInNeighbors(freedReceiver); err != nil {
			return err
		}
	}
	return nil
}

// teardown takes node v out of the swarm — shared by crashes and
// open-system departures. The node goes dark, its outgoing upload and
// every transfer in flight toward it are aborted, and the ports those
// transfers held are restored. It returns the senders whose upload
// ports freed (sorted ascending) and the receiver whose download port
// freed (-1 if none); the caller re-wakes them once its own
// bookkeeping is consistent.
func (e *engine) teardown(v int) (wakeSenders []int, freedReceiver int) {
	st := e.st
	st.alive[v] = false
	st.aliveClients--
	if st.have[v].Full() {
		st.complete--
	}
	if st.honest != nil && st.honest[v] {
		st.aliveHonest--
		if st.have[v].Full() {
			st.completeHonest--
		}
	}
	e.parked[v] = false

	freedReceiver = -1
	// Abort v's outgoing transfer: the receiver's download port frees.
	if out := e.curUpload[v]; out != nil {
		out.cancelled = true
		e.curUpload[v] = nil
		e.uploading[v] = false
		delete(st.inFlight[out.to], int32(out.block))
		freedReceiver = out.to
	}
	// Abort transfers in flight toward v: each sender's port frees. The
	// per-sender mutations are independent (a sender has at most one
	// upload in flight), and wakeSenders is sorted below before any
	// order-sensitive use, so map order cannot leak into the trace.
	for _, in := range st.inFlight[v] { //lint:ordered wakeSenders sorted before use
		in.cancelled = true
		e.uploading[in.from] = false
		e.curUpload[in.from] = nil
		wakeSenders = append(wakeSenders, in.from)
	}
	sort.Ints(wakeSenders)
	clear(st.inFlight[v])
	return wakeSenders, freedReceiver
}

// applyRejoin brings a crashed node back, optionally with an empty
// cache, and re-wakes it plus the peers that may now serve it.
func (e *engine) applyRejoin(v int) error {
	st := e.st
	st.alive[v] = true
	st.aliveClients++
	st.pendingRejoin--
	if st.honest != nil && st.honest[v] {
		st.aliveHonest++
		st.pendingRejoinHonest--
	}
	wiped := e.cfg.Fault.RejoinWipes()
	if wiped {
		st.have[v].Clear()
		e.res.ClientCompletion[v] = 0
	} else if st.have[v].Full() {
		st.complete++
		if st.honest != nil && st.honest[v] {
			st.completeHonest++
		}
	}
	e.res.FaultLog = append(e.res.FaultLog, fault.Event{
		Time: st.now, Node: int32(v), Kind: fault.Rejoin, Wiped: wiped,
	})
	if e.faultAware != nil {
		e.faultAware.OnRejoin(v, wiped, st)
	}
	if err := e.tryStartUpload(v); err != nil {
		return err
	}
	// Every download port at v is free again: peers parked for lack of
	// targets may now have one.
	return e.wakeInNeighbors(v)
}

// wakeInNeighbors re-polls the parked in-edge peers of v (or every
// parked node on complete overlays).
func (e *engine) wakeInNeighbors(v int) error {
	if nbrs := e.proto.Neighbors(v); nbrs != nil {
		for _, u := range nbrs {
			if e.parked[u] {
				if err := e.tryStartUpload(int(u)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for u := 0; u < e.st.n; u++ {
		if e.parked[u] {
			if err := e.tryStartUpload(u); err != nil {
				return err
			}
		}
	}
	return nil
}

// tryStartUpload polls the protocol for node u if its port is free.
func (e *engine) tryStartUpload(u int) error {
	if e.uploading[u] {
		return nil
	}
	if e.st.alive != nil && !e.st.alive[u] {
		return nil // dead nodes neither poll nor park
	}
	if e.st.have[u].Count() == 0 {
		e.parked[u] = true
		return nil
	}
	if e.adv != nil && e.adv.Refuses(u, e.st.now) {
		// The node's own strategy declines to upload; the protocol is
		// not even polled. A throttler is re-woken when its window
		// reopens; free-riders and completed defectors park for good.
		e.parked[u] = true
		if at := e.adv.RetryAt(u); !math.IsInf(at, 1) && !e.advWakePending[u] {
			e.advWakePending[u] = true
			wev := e.newEvent()
			wev.at, wev.kind, wev.node = at, evAdvWake, u
			e.schedule(wev)
		}
		return nil
	}
	up, ok := e.proto.NextUpload(u, e.st)
	if !ok {
		e.parked[u] = true
		return nil
	}
	if err := e.validate(u, up); err != nil {
		return err
	}
	if e.adv != nil {
		e.adv.NoteUpload(u, e.st.now)
	}
	e.parked[u] = false
	e.uploading[u] = true
	rate := e.cfg.UploadRate[u]
	down := e.cfg.DownloadRate[up.To]
	if e.cfg.DownloadPorts > 0 {
		down /= float64(e.cfg.DownloadPorts)
	}
	if down < rate {
		rate = down
	}
	ev := e.newEvent()
	ev.at, ev.kind = e.st.now+1/rate, evComplete
	ev.from, ev.to, ev.block = u, up.To, up.Block
	ev.start = e.st.now
	e.st.inFlight[up.To][int32(up.Block)] = ev
	e.curUpload[u] = ev
	e.schedule(ev)
	return nil
}

func (e *engine) validate(u int, up Upload) error {
	switch {
	case up.To < 0 || up.To >= e.st.n:
		return fmt.Errorf("asim: node %d uploads to out-of-range node %d", u, up.To)
	case up.To == u:
		return fmt.Errorf("asim: node %d uploads to itself", u)
	case up.Block < 0 || up.Block >= e.st.k:
		return fmt.Errorf("asim: node %d uploads out-of-range block %d", u, up.Block)
	case !e.st.have[u].Has(up.Block):
		return fmt.Errorf("asim: node %d does not hold block %d", u, up.Block)
	case e.st.have[up.To].Has(up.Block):
		return fmt.Errorf("asim: node %d already holds block %d", up.To, up.Block)
	case e.st.InFlightTo(up.To, up.Block):
		return fmt.Errorf("asim: block %d already in flight to node %d", up.Block, up.To)
	}
	if e.st.alive != nil && !e.st.alive[up.To] {
		return fmt.Errorf("asim: node %d uploads to dead node %d", u, up.To)
	}
	if e.cfg.DownloadPorts != Unlimited && len(e.st.inFlight[up.To]) >= e.cfg.DownloadPorts {
		return fmt.Errorf("asim: node %d has no free download port", up.To)
	}
	return nil
}

// finishTransfer lands a block and wakes exactly the nodes whose
// NextUpload answer may have changed: the sender (its port is free), the
// receiver (new inventory to offer), and the receiver's parked
// in-neighbors (a download port at the receiver just freed). A node
// parked for lack of interested neighbors needs no other wake-up:
// neighbors' needs only shrink, so its answer can change only when it
// gains a block itself — and then it is the receiver. Under a fault
// plan, the delivery may instead be sampled as lost or corrupt: the
// ports are restored, no block lands, and the same wake-ups apply.
func (e *engine) finishTransfer(ev *event) error {
	st := e.st
	delete(st.inFlight[ev.to], int32(ev.block))
	e.uploading[ev.from] = false
	e.curUpload[ev.from] = nil

	if e.adv != nil {
		// The sender's strategy rules first: a block that stalled or
		// failed verification was never delivered, so the fault layer
		// has nothing left to drop.
		if fate := e.adv.DeliveryFate(ev.from); fate != adversary.Deliver {
			corrupt := fate == adversary.Garbage
			if corrupt {
				e.res.AdvCorrupt++
			} else {
				e.res.AdvStalled++
			}
			if st.honest[ev.to] {
				e.res.HonestWasted++
			}
			if e.cfg.RecordTrace {
				e.res.Trace = append(e.res.Trace, TransferRecord{
					Start: ev.start, End: ev.at,
					From: int32(ev.from), To: int32(ev.to), Block: int32(ev.block),
					Lost: true, Corrupt: corrupt, Adversary: true,
				})
			}
			if e.advAware != nil {
				e.advAware.OnAdversaryDrop(ev.from, ev.to, ev.block, corrupt, st)
			}
			if err := e.tryStartUpload(ev.from); err != nil {
				return err
			}
			// The receiver's port freed and the block is no longer in
			// flight: parked in-neighbors may now retry it.
			return e.wakeInNeighbors(ev.to)
		}
	}

	if e.cfg.Fault != nil && e.cfg.Fault.Lossy() {
		lost, corrupt := e.cfg.Fault.Drop()
		if lost || corrupt {
			if corrupt {
				e.res.Corrupt++
			} else {
				e.res.Lost++
			}
			if e.cfg.RecordTrace {
				e.res.Trace = append(e.res.Trace, TransferRecord{
					Start: ev.start, End: ev.at,
					From: int32(ev.from), To: int32(ev.to), Block: int32(ev.block),
					Lost: true, Corrupt: corrupt,
				})
			}
			if e.faultAware != nil {
				e.faultAware.OnLoss(ev.from, ev.to, ev.block, corrupt, st)
			}
			if err := e.tryStartUpload(ev.from); err != nil {
				return err
			}
			// The receiver's port freed and the block is no longer in
			// flight: parked in-neighbors may now retry it.
			return e.wakeInNeighbors(ev.to)
		}
	}

	if st.have[ev.to].Add(ev.block) {
		e.res.Transfers++
		if e.adv != nil && st.honest[ev.to] {
			e.res.HonestUseful++
		}
		if ev.to != 0 && st.have[ev.to].Full() {
			st.complete++
			e.res.ClientCompletion[ev.to] = st.now
			if st.honest != nil && st.honest[ev.to] {
				st.completeHonest++
			}
			if e.adv != nil {
				e.adv.NoteComplete(ev.to)
			}
		}
		if e.oa != nil && ev.to != 0 {
			e.noteOpenDelivery(ev.to)
		}
	}
	if e.cfg.RecordTrace {
		e.res.Trace = append(e.res.Trace, TransferRecord{
			Start: ev.start, End: ev.at,
			From: int32(ev.from), To: int32(ev.to), Block: int32(ev.block),
		})
	}
	e.proto.OnDeliver(ev.from, ev.to, ev.block, st)

	if err := e.tryStartUpload(ev.from); err != nil {
		return err
	}
	if err := e.tryStartUpload(ev.to); err != nil {
		return err
	}
	return e.wakeInNeighbors(ev.to)
}
