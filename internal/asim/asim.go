// Package asim is the event-driven, continuous-time companion to the
// synchronous simulator: the substrate for the paper's asynchrony
// discussion (Section 2.3.4, "Dealing with asynchrony") and for the
// BitTorrent study it reports as ongoing work in Section 4, which used
// "asynchronous simulations".
//
// Model: time is continuous. Each node has an upload rate and a download
// rate in blocks per unit time; a node uploads one block at a time
// (serial upload port) and may receive up to DownloadPorts blocks
// concurrently. Following the paper's tail-link bandwidth model, a
// transfer from u to v proceeds at min(upRate(u), downRate(v)/active(v)),
// approximated here by reserving one download port at the receiver and
// using min(upRate(u), downRate(v)/DownloadPorts) — each port carries an
// equal share. With all rates 1 and one port, durations are 1 and the
// model coincides with the synchronous simulator's tick.
//
// A Protocol is sender-driven: whenever a node's upload port is free the
// engine asks it for the next (receiver, block) pair. The engine tracks
// why a node went idle — nothing to offer vs. all targets busy — and
// wakes it on exactly the events that can change that answer, so runs
// stay near O(events·degree).
package asim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"barterdist/internal/bitset"
)

// Unlimited download ports.
const Unlimited = 0

// Config describes an asynchronous simulation instance.
type Config struct {
	// Nodes is the total node count (node 0 = server, holds all blocks).
	Nodes int
	// Blocks is the file size in blocks.
	Blocks int
	// UploadRate[v] is node v's upload bandwidth in blocks per unit
	// time. nil means rate 1 everywhere.
	UploadRate []float64
	// DownloadRate[v] is node v's download bandwidth. nil means rate
	// equal to the upload rate ("tail links", D = U).
	DownloadRate []float64
	// DownloadPorts bounds concurrent receives per node (Unlimited = no
	// bound; each concurrent receive still shares DownloadRate).
	DownloadPorts int
	// MaxTime aborts runaway protocols. 0 selects a generous default.
	MaxTime float64
}

func (c *Config) normalize() (Config, error) {
	cc := *c
	if cc.Nodes < 1 {
		return cc, fmt.Errorf("asim: Nodes = %d, need >= 1", cc.Nodes)
	}
	if cc.Blocks < 1 {
		return cc, fmt.Errorf("asim: Blocks = %d, need >= 1", cc.Blocks)
	}
	if cc.UploadRate == nil {
		cc.UploadRate = make([]float64, cc.Nodes)
		for i := range cc.UploadRate {
			cc.UploadRate[i] = 1
		}
	}
	if len(cc.UploadRate) != cc.Nodes {
		return cc, fmt.Errorf("asim: UploadRate has %d entries for %d nodes", len(cc.UploadRate), cc.Nodes)
	}
	for v, r := range cc.UploadRate {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return cc, fmt.Errorf("asim: UploadRate[%d] = %v must be positive and finite", v, r)
		}
	}
	if cc.DownloadRate == nil {
		cc.DownloadRate = append([]float64(nil), cc.UploadRate...)
	}
	if len(cc.DownloadRate) != cc.Nodes {
		return cc, fmt.Errorf("asim: DownloadRate has %d entries for %d nodes", len(cc.DownloadRate), cc.Nodes)
	}
	for v, r := range cc.DownloadRate {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return cc, fmt.Errorf("asim: DownloadRate[%d] = %v must be positive and finite", v, r)
		}
	}
	if cc.DownloadPorts < 0 {
		return cc, fmt.Errorf("asim: DownloadPorts = %d, need >= 0", cc.DownloadPorts)
	}
	if cc.MaxTime == 0 {
		cc.MaxTime = 100 * float64(cc.Blocks+cc.Nodes)
	}
	return cc, nil
}

// State exposes read-only ownership and progress to protocols.
type State struct {
	n, k     int
	have     []*bitset.Set
	inFlight []map[int32]struct{} // blocks currently being received, per node
	complete int
	now      float64
}

// N returns the node count.
func (s *State) N() int { return s.n }

// K returns the block count.
func (s *State) K() int { return s.k }

// Now returns the current simulation time.
func (s *State) Now() float64 { return s.now }

// Has reports whether v holds block b.
func (s *State) Has(v, b int) bool { return s.have[v].Has(b) }

// Blocks returns v's block set (read-only).
func (s *State) Blocks(v int) *bitset.Set { return s.have[v] }

// InFlightTo reports whether block b is currently being received by v.
func (s *State) InFlightTo(v, b int) bool {
	_, ok := s.inFlight[v][int32(b)]
	return ok
}

// InFlightCount returns the number of blocks currently arriving at v.
func (s *State) InFlightCount(v int) int { return len(s.inFlight[v]) }

// AllClientsComplete reports completion.
func (s *State) AllClientsComplete() bool { return s.complete == s.n-1 }

// Upload is a protocol's answer to "what should this node send next".
type Upload struct {
	To    int
	Block int
}

// Protocol drives the simulation.
type Protocol interface {
	// NextUpload is invoked when node u's upload port is free. Returning
	// ok = false parks u until an event that may change the answer (u
	// gains a block, a download port near u frees, or a timer fires).
	// The returned target must need the block and have a free port; the
	// engine validates and errors out otherwise.
	NextUpload(u int, s *State) (Upload, bool)
	// Wakeups returns protocol timer periods; the engine calls OnTimer
	// every period until completion. Nil means no timers.
	Wakeups() []float64
	// OnTimer is called when a timer fires (e.g. a BitTorrent choke
	// recomputation). idx is the index into Wakeups().
	OnTimer(idx int, s *State)
	// Neighbors returns the nodes that might upload to v (v's in-edge
	// peers), or nil for "anyone" (complete overlays). The engine uses
	// it to wake exactly the parked nodes whose answer can have changed
	// when a block lands at v.
	Neighbors(v int) []int32
	// OnDeliver is called after block b lands at node to — the hook
	// BitTorrent-style protocols use for download-rate accounting and
	// rarity statistics.
	OnDeliver(from, to, block int, s *State)
}

// Result reports a finished asynchronous run.
type Result struct {
	// CompletionTime is when the last client finished (time units).
	CompletionTime float64
	// ClientCompletion[v] is when client v finished.
	ClientCompletion []float64
	// Transfers is the number of block deliveries.
	Transfers int
}

// ErrMaxTime is returned when the protocol fails to complete in time.
var ErrMaxTime = errors.New("asim: exceeded MaxTime before completion")

type eventKind int

const (
	evComplete eventKind = iota + 1 // a transfer finished
	evTimer
)

type event struct {
	at   float64
	seq  int // tie-break for determinism
	kind eventKind

	// evComplete fields.
	from, to, block int

	// evTimer field.
	timer int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Run executes the protocol to completion.
func Run(cfg Config, p Protocol) (*Result, error) {
	c, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	st := &State{
		n:        c.Nodes,
		k:        c.Blocks,
		have:     make([]*bitset.Set, c.Nodes),
		inFlight: make([]map[int32]struct{}, c.Nodes),
	}
	for v := range st.have {
		st.have[v] = bitset.New(c.Blocks)
		st.inFlight[v] = make(map[int32]struct{})
	}
	for b := 0; b < c.Blocks; b++ {
		st.have[0].Add(b)
	}
	res := &Result{ClientCompletion: make([]float64, c.Nodes)}
	if c.Nodes == 1 {
		return res, nil
	}

	eng := &engine{
		cfg:       c,
		st:        st,
		proto:     p,
		uploading: make([]bool, c.Nodes),
		parked:    make([]bool, c.Nodes),
	}
	heap.Init(&eng.queue)
	for i, period := range p.Wakeups() {
		if period <= 0 {
			return nil, fmt.Errorf("asim: timer %d period %v must be positive", i, period)
		}
		eng.schedule(&event{at: period, kind: evTimer, timer: i})
	}
	// Kick every node once; most will park immediately.
	for v := 0; v < c.Nodes; v++ {
		if err := eng.tryStartUpload(v); err != nil {
			return nil, err
		}
	}

	for eng.queue.Len() > 0 {
		ev := heap.Pop(&eng.queue).(*event)
		if ev.at > c.MaxTime {
			return nil, fmt.Errorf("%w (t=%.2f, clients complete: %d/%d)",
				ErrMaxTime, ev.at, st.complete, c.Nodes-1)
		}
		st.now = ev.at
		switch ev.kind {
		case evComplete:
			if err := eng.finishTransfer(ev, res); err != nil {
				return nil, err
			}
			if st.AllClientsComplete() {
				res.CompletionTime = st.now
				return res, nil
			}
		case evTimer:
			p.OnTimer(ev.timer, st)
			// A choke rotation can create work anywhere: wake everyone
			// parked. Timers are sparse, so this stays cheap.
			for v := 0; v < c.Nodes; v++ {
				if eng.parked[v] {
					if err := eng.tryStartUpload(v); err != nil {
						return nil, err
					}
				}
			}
			period := p.Wakeups()[ev.timer]
			eng.schedule(&event{at: st.now + period, kind: evTimer, timer: ev.timer})
		}
	}
	return nil, fmt.Errorf("%w (event queue drained, clients complete: %d/%d)",
		ErrMaxTime, st.complete, c.Nodes-1)
}

type engine struct {
	cfg   Config
	st    *State
	proto Protocol
	queue eventQueue
	seq   int

	uploading []bool // upload port busy
	parked    []bool // NextUpload returned false; awaiting a wake event
}

func (e *engine) schedule(ev *event) {
	e.seq++
	ev.seq = e.seq
	heap.Push(&e.queue, ev)
}

// tryStartUpload polls the protocol for node u if its port is free.
func (e *engine) tryStartUpload(u int) error {
	if e.uploading[u] {
		return nil
	}
	if e.st.have[u].Count() == 0 {
		e.parked[u] = true
		return nil
	}
	up, ok := e.proto.NextUpload(u, e.st)
	if !ok {
		e.parked[u] = true
		return nil
	}
	if err := e.validate(u, up); err != nil {
		return err
	}
	e.parked[u] = false
	e.uploading[u] = true
	e.st.inFlight[up.To][int32(up.Block)] = struct{}{}
	rate := e.cfg.UploadRate[u]
	down := e.cfg.DownloadRate[up.To]
	if e.cfg.DownloadPorts > 0 {
		down /= float64(e.cfg.DownloadPorts)
	}
	if down < rate {
		rate = down
	}
	e.schedule(&event{
		at: e.st.now + 1/rate, kind: evComplete,
		from: u, to: up.To, block: up.Block,
	})
	return nil
}

func (e *engine) validate(u int, up Upload) error {
	switch {
	case up.To < 0 || up.To >= e.st.n:
		return fmt.Errorf("asim: node %d uploads to out-of-range node %d", u, up.To)
	case up.To == u:
		return fmt.Errorf("asim: node %d uploads to itself", u)
	case up.Block < 0 || up.Block >= e.st.k:
		return fmt.Errorf("asim: node %d uploads out-of-range block %d", u, up.Block)
	case !e.st.have[u].Has(up.Block):
		return fmt.Errorf("asim: node %d does not hold block %d", u, up.Block)
	case e.st.have[up.To].Has(up.Block):
		return fmt.Errorf("asim: node %d already holds block %d", up.To, up.Block)
	case e.st.InFlightTo(up.To, up.Block):
		return fmt.Errorf("asim: block %d already in flight to node %d", up.Block, up.To)
	}
	if e.cfg.DownloadPorts != Unlimited && len(e.st.inFlight[up.To]) >= e.cfg.DownloadPorts {
		return fmt.Errorf("asim: node %d has no free download port", up.To)
	}
	return nil
}

// finishTransfer lands a block and wakes exactly the nodes whose
// NextUpload answer may have changed: the sender (its port is free), the
// receiver (new inventory to offer), and the receiver's parked
// in-neighbors (a download port at the receiver just freed). A node
// parked for lack of interested neighbors needs no other wake-up:
// neighbors' needs only shrink, so its answer can change only when it
// gains a block itself — and then it is the receiver.
func (e *engine) finishTransfer(ev *event, res *Result) error {
	st := e.st
	if st.have[ev.to].Add(ev.block) {
		res.Transfers++
		if ev.to != 0 && st.have[ev.to].Full() {
			st.complete++
			res.ClientCompletion[ev.to] = st.now
		}
	}
	delete(st.inFlight[ev.to], int32(ev.block))
	e.uploading[ev.from] = false
	e.proto.OnDeliver(ev.from, ev.to, ev.block, st)

	if err := e.tryStartUpload(ev.from); err != nil {
		return err
	}
	if err := e.tryStartUpload(ev.to); err != nil {
		return err
	}
	if nbrs := e.proto.Neighbors(ev.to); nbrs != nil {
		for _, v := range nbrs {
			if e.parked[v] {
				if err := e.tryStartUpload(int(v)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for v := 0; v < st.n; v++ {
		if e.parked[v] {
			if err := e.tryStartUpload(v); err != nil {
				return err
			}
		}
	}
	return nil
}
