package asim

import (
	"errors"
	"testing"

	"barterdist/internal/bitset"
	"barterdist/internal/fault"
)

func mustPlan(t *testing.T, o fault.Options) *fault.Plan {
	t.Helper()
	p, err := fault.NewPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestZeroRatePlanMatchesNilPlan pins the pay-for-what-you-use
// contract: attaching an all-zero fault plan must reproduce the
// reliable engine byte for byte.
func TestZeroRatePlanMatchesNilPlan(t *testing.T) {
	run := func(withPlan bool) *Result {
		cfg := Config{Nodes: 20, Blocks: 12, DownloadPorts: 1, RecordTrace: true}
		if withPlan {
			cfg.Fault = mustPlan(t, fault.Options{Seed: 5})
		}
		res, err := Run(cfg, NewAsyncRandomized(nil, false, 1, 11))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, planned := run(false), run(true)
	if base.CompletionTime != planned.CompletionTime {
		t.Fatalf("completion %v with nil plan vs %v with zero-rate plan",
			base.CompletionTime, planned.CompletionTime)
	}
	if len(base.Trace) != len(planned.Trace) {
		t.Fatalf("trace length %d vs %d", len(base.Trace), len(planned.Trace))
	}
	for i := range base.Trace {
		if base.Trace[i] != planned.Trace[i] {
			t.Fatalf("trace record %d differs: %+v vs %+v", i, base.Trace[i], planned.Trace[i])
		}
	}
	if planned.Lost != 0 || planned.Corrupt != 0 || len(planned.FaultLog) != 0 {
		t.Fatalf("zero-rate plan produced fault activity: %d lost, %d corrupt, %d events",
			planned.Lost, planned.Corrupt, len(planned.FaultLog))
	}
}

// TestChurnRunCompletesAndAudits drives the async engine through
// crashes, wiped rejoins, and transfer loss; the run must complete for
// the surviving clients and replay cleanly through RunAudit. The audit
// re-derives port accounting, so a crash teardown that failed to
// restore a serial upload port or download port would surface here.
func TestChurnRunCompletesAndAudits(t *testing.T) {
	cfg := Config{Nodes: 24, Blocks: 16, DownloadPorts: 1, RecordTrace: true,
		Fault: mustPlan(t, fault.Options{
			Seed:              17,
			CrashRate:         0.05,
			MaxCrashes:        4,
			RejoinDelay:       6,
			RejoinLosesBlocks: true,
			LossRate:          0.05,
		})}
	res, err := Run(cfg, NewAsyncRandomized(nil, false, 1, 13))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultLog) == 0 {
		t.Fatal("seed produced no fault events; pick a livelier seed")
	}
	if res.Lost == 0 {
		t.Fatal("seed produced no lost transfers; pick a livelier seed")
	}
	for v := 1; v < cfg.Nodes; v++ {
		if res.FinalAlive[v] && res.FinalHave[v].Count() != cfg.Blocks {
			t.Fatalf("alive client %d finished with %d/%d blocks",
				v, res.FinalHave[v].Count(), cfg.Blocks)
		}
	}
	cfg.Fault = nil
	if err := RunAudit(cfg, res); err != nil {
		t.Fatalf("audit of churn run: %v", err)
	}
}

// TestTraceReplaysToFinalState replays a fault-free recorded trace by
// hand and checks it reconstructs exactly the engine's final state —
// the recorded artifacts are a complete account of the run.
func TestTraceReplaysToFinalState(t *testing.T) {
	const n, k = 16, 10
	res, err := Run(Config{Nodes: n, Blocks: k, DownloadPorts: 1, RecordTrace: true},
		NewAsyncRandomized(nil, false, 1, 3))
	if err != nil {
		t.Fatal(err)
	}
	have := make([]*bitset.Set, n)
	for v := range have {
		have[v] = bitset.New(k)
	}
	for b := 0; b < k; b++ {
		have[0].Add(b)
	}
	last := 0.0
	for i, tr := range res.Trace {
		if tr.End < last {
			t.Fatalf("trace record %d out of End order", i)
		}
		last = tr.End
		if tr.Lost {
			continue
		}
		if !have[tr.From].Has(int(tr.Block)) {
			t.Fatalf("record %d: sender %d forwarded block %d it never held", i, tr.From, tr.Block)
		}
		have[tr.To].Add(int(tr.Block))
	}
	for v := 0; v < n; v++ {
		if !have[v].Equal(res.FinalHave[v]) {
			t.Fatalf("replayed state of node %d does not match FinalHave", v)
		}
	}
	if err := RunAudit(Config{Nodes: n, Blocks: k, DownloadPorts: 1, RecordTrace: true}, res); err != nil {
		t.Fatalf("audit of fault-free run: %v", err)
	}
}

// TestAuditCatchesDoctoredTrace tampers with genuine artifacts in ways
// an honest engine can never produce; every tamper must be caught.
func TestAuditCatchesDoctoredTrace(t *testing.T) {
	cfg := Config{Nodes: 12, Blocks: 8, DownloadPorts: 1, RecordTrace: true}
	fresh := func() *Result {
		res, err := Run(cfg, NewAsyncRandomized(nil, false, 1, 9))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cases := []struct {
		name   string
		tamper func(*Result)
	}{
		{"inflated transfer count", func(r *Result) { r.Transfers++ }},
		{"truncated trace", func(r *Result) { r.Trace = r.Trace[:len(r.Trace)-1] }},
		{"forged sender", func(r *Result) {
			// Claim the last delivery came from a node that cannot have
			// held the block at that time: the receiver itself.
			tr := &r.Trace[len(r.Trace)-1]
			tr.From = tr.To
		}},
		{"overlapping upload", func(r *Result) {
			// Stretch one transfer so its sender's serial port overlaps.
			for i := range r.Trace {
				for j := i + 1; j < len(r.Trace); j++ {
					if r.Trace[j].From == r.Trace[i].From {
						r.Trace[i].End = r.Trace[j].Start + (r.Trace[j].End-r.Trace[j].Start)/2
						r.Trace[i].Start = r.Trace[i].End - 1
						return
					}
				}
			}
			t.Fatal("no sender with two transfers in trace")
		}},
		{"forged final state", func(r *Result) { r.FinalHave[3].Remove(2) }},
		{"shifted client completion", func(r *Result) { r.ClientCompletion[5] += 0.25 }},
		{"understated completion time", func(r *Result) { r.CompletionTime /= 2 }},
	}
	for _, tc := range cases {
		res := fresh()
		tc.tamper(res)
		err := RunAudit(cfg, res)
		if err == nil {
			t.Errorf("%s: audit accepted the doctored result", tc.name)
		} else if !errors.Is(err, ErrAudit) {
			t.Errorf("%s: error %v is not an ErrAudit", tc.name, err)
		}
	}
}
