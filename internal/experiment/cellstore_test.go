package experiment

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"barterdist/internal/core"
)

func cellTestSpecs() []runSpec {
	return []runSpec{
		{
			tag:  "cell: n=16",
			cfg:  core.Config{Nodes: 16, Blocks: 12, Algorithm: core.AlgoRandomized, DownloadCap: 1},
			reps: 3,
			seed: 101,
		},
		{
			tag:  "cell: n=32",
			cfg:  core.Config{Nodes: 32, Blocks: 12, Algorithm: core.AlgoRandomized, DownloadCap: 1},
			reps: 2,
			seed: 202,
		},
	}
}

func readStoreLines(t *testing.T, path string) []string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read store: %v", err)
	}
	var lines []string
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	return lines
}

// TestCheckpointedRunMatchesUncheckpointed pins the cell store's basic
// contract: running with Options.Checkpoint produces the exact Points an
// uncheckpointed run does, and the store ends up with one line per
// (spec, replicate) cell.
func TestCheckpointedRunMatchesUncheckpointed(t *testing.T) {
	want, err := runPoints(Options{Workers: 1}, cellTestSpecs())
	if err != nil {
		t.Fatalf("uncheckpointed: %v", err)
	}
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	got, err := runPoints(Options{Workers: 2, Checkpoint: path}, cellTestSpecs())
	if err != nil {
		t.Fatalf("checkpointed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("checkpointed points differ:\ngot  %+v\nwant %+v", got, want)
	}
	if lines := readStoreLines(t, path); len(lines) != 5 {
		t.Errorf("store has %d lines, want 5:\n%s", len(lines), strings.Join(lines, "\n"))
	}
}

// TestResumeRunsOnlyMissingCells interrupts a checkpointed sweep
// (keeping a partial store with a torn trailing line), rewrites the
// surviving cells' ticks to sentinel values, and resumes. The sentinel
// values flowing through to the aggregated Points prove the cached
// cells were served from the store, not recomputed; the missing cells
// are recomputed and appended.
func TestResumeRunsOnlyMissingCells(t *testing.T) {
	specs := cellTestSpecs()
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	if _, err := runPoints(Options{Workers: 1, Checkpoint: path}, specs); err != nil {
		t.Fatalf("full run: %v", err)
	}
	lines := readStoreLines(t, path)
	if len(lines) != 5 {
		t.Fatalf("store has %d lines, want 5", len(lines))
	}

	// Keep the first three cells, poke a sentinel completion time into
	// each, and simulate a crash mid-append of the fourth.
	const sentinel = 424242
	var kept []string
	for _, line := range lines[:3] {
		var rec cellRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("store line %q: %v", line, err)
		}
		var o repOutcome
		if err := json.Unmarshal(rec.Out, &o); err != nil {
			t.Fatalf("store cell payload %q: %v", rec.Out, err)
		}
		o.Ticks = sentinel
		payload, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		rec.Out = payload
		out, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		kept = append(kept, string(out))
	}
	torn := strings.Join(kept, "\n") + "\n" + lines[3][:len(lines[3])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := runPoints(Options{Workers: 2, Checkpoint: path}, specs)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	// Spec 0's three replicates were all cached at the sentinel value.
	if resumed[0].Mean != sentinel {
		t.Errorf("spec 0 mean = %v, want sentinel %v (cached cells were recomputed)", resumed[0].Mean, sentinel)
	}
	// Spec 1's cells (including the torn one) were recomputed for real.
	if resumed[1].Mean == sentinel || resumed[1].Mean <= 0 {
		t.Errorf("spec 1 mean = %v, want a genuine completion time", resumed[1].Mean)
	}
	if lines := readStoreLines(t, path); len(lines) != 5 {
		t.Errorf("resumed store has %d lines, want 5:\n%s", len(lines), strings.Join(lines, "\n"))
	}
}

// TestTableScaleHonorsCheckpoint pins that the bespoke generators (the
// ones that fan out with their own parallel.Map loop instead of
// runPoints) run through the cell store too. TableScale is the one that
// matters most — its full-scale n=100k cell runs for the better part of
// an hour — so it is the one pinned: a checkpointed run matches an
// uncheckpointed one, and on rerun every cell is served from the store
// (proved by poking sentinel outcomes into the cached payloads and
// watching them flow into the rendered table).
func TestTableScaleHonorsCheckpoint(t *testing.T) {
	want, err := TableScale(ScaleCI, Options{Workers: 1})
	if err != nil {
		t.Fatalf("uncheckpointed: %v", err)
	}
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	got, err := TableScale(ScaleCI, Options{Workers: 2, Checkpoint: path})
	if err != nil {
		t.Fatalf("checkpointed: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("checkpointed table differs:\ngot  %+v\nwant %+v", got, want)
	}
	// ScaleCI: ns={128,512} x 2 reps, minus n=512 rep 0 (owned by the
	// shard sweep), plus the three shard-sweep cells at P=1/4/8.
	lines := readStoreLines(t, path)
	if len(lines) != 6 {
		t.Fatalf("store has %d lines, want 6:\n%s", len(lines), strings.Join(lines, "\n"))
	}

	// Poke a sentinel completion time into every cached cell and rerun.
	const sentinel = 424242
	var poked []string
	for _, line := range lines {
		var rec cellRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("store line %q: %v", line, err)
		}
		var o map[string]any
		if err := json.Unmarshal(rec.Out, &o); err != nil {
			t.Fatalf("cell payload %q: %v", rec.Out, err)
		}
		o["ticks"] = sentinel
		payload, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		rec.Out = payload
		out, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		poked = append(poked, string(out))
	}
	if err := os.WriteFile(path, []byte(strings.Join(poked, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resumed, err := TableScale(ScaleCI, Options{Workers: 1, Checkpoint: path})
	if err != nil {
		t.Fatalf("resumed: %v", err)
	}
	for _, row := range resumed.Rows {
		if !strings.Contains(row[1], "424242") {
			t.Errorf("row %v does not carry the sentinel mean; cached cells were recomputed", row)
		}
	}
}

// TestCellStoreRejectsMidFileGarbage distinguishes a torn tail (small,
// recoverable) from wholesale corruption: a large unparseable region is
// an error, not something to silently truncate away.
func TestCellStoreRejectsMidFileGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	garbage := strings.Repeat("x", 1<<17)
	if err := os.WriteFile(path, []byte(garbage), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openCellStore(path); err == nil {
		t.Fatal("openCellStore accepted 128 KiB of garbage")
	}
}

// TestCellStoreErrorsNotCached pins that failing cells are retried on
// resume: only successful (or stalled) outcomes are appended, so a
// transient failure never poisons the store.
func TestCellStoreErrorsNotCached(t *testing.T) {
	specs := []runSpec{{
		tag:  "cell: bad",
		cfg:  core.Config{Nodes: -1, Blocks: 4, Algorithm: core.AlgoRandomized},
		reps: 1,
		seed: 7,
	}}
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	if _, err := runPoints(Options{Workers: 1, Checkpoint: path}, specs); err == nil {
		t.Fatal("runPoints accepted an invalid config")
	}
	if lines := readStoreLines(t, path); len(lines) != 0 {
		t.Errorf("store cached a failed cell: %v", lines)
	}
}

// TestCellStoreCachesStalls pins the complementary decision: a stall is
// data (a point pinned at the tick budget), so it is cached and a
// resumed run does not redo the full budget-exhausting simulation.
func TestCellStoreCachesStalls(t *testing.T) {
	specs := []runSpec{{
		tag: "cell: stall",
		cfg: core.Config{
			Nodes: 16, Blocks: 12, Algorithm: core.AlgoRandomized,
			DownloadCap: 1, MaxTicks: 3, // far below completion: guaranteed stall
		},
		reps: 1,
		seed: 9,
	}}
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	pts, err := runPoints(Options{Workers: 1, Checkpoint: path}, specs)
	if err != nil {
		t.Fatalf("stall run: %v", err)
	}
	if pts[0].Stalled != 1 {
		t.Fatalf("expected a stalled point, got %+v", pts[0])
	}
	lines := readStoreLines(t, path)
	if len(lines) != 1 {
		t.Fatalf("store has %d lines, want 1", len(lines))
	}
	var rec cellRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatal(err)
	}
	var o repOutcome
	if err := json.Unmarshal(rec.Out, &o); err != nil {
		t.Fatal(err)
	}
	if !o.Stalled || o.Ticks != 3 {
		t.Errorf("cached stall record = %+v, want stalled at ticks=3", o)
	}
	// And the cache round-trips: resuming reproduces the stalled point.
	pts2, err := runPoints(Options{Workers: 1, Checkpoint: path}, specs)
	if err != nil {
		t.Fatalf("resumed stall run: %v", err)
	}
	if !reflect.DeepEqual(pts2, pts) {
		t.Errorf("resumed stall points differ: got %+v want %+v", pts2, pts)
	}
}
