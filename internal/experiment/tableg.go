package experiment

import (
	"fmt"

	"barterdist/internal/arrival"
	"barterdist/internal/asim"
	"barterdist/internal/core"
	"barterdist/internal/parallel"
	"barterdist/internal/randomized"
	"barterdist/internal/simulate"
)

func tableGParams(sc Scale) (capacity, k int, rates []float64, reps int) {
	switch sc {
	case ScaleFull:
		// The 10^5 flash crowd of the open-system acceptance bar.
		return 100_001, 32, []float64{8, 16, 32, 64}, 1
	case ScaleMedium:
		return 2049, 16, []float64{0.5, 2, 8}, 2
	default:
		return 513, 8, []float64{0.5, 2}, 2
	}
}

// TableG is the open-system stability experiment: peer sojourn time
// and swarm occupancy versus the Poisson arrival rate λ, across barter
// mechanisms, with departure at completion (the Norros–Reittu open
// model — no altruistic seeding). Each cell admits a flash crowd of
// capacity-1 peers and runs to a stability verdict:
//
//   - cooperative (sync): the randomized algorithm with no barter —
//     the baseline an open swarm's throughput scales with;
//   - credit s=1 (sync): credit-limited barter — the price of barter
//     in an open system is paid by newcomers, who arrive with nothing
//     to trade;
//   - triangular (sync): triangular barter, same question with cycle
//     liquidity;
//   - cooperative (async): the asynchronous randomized protocol, whose
//     time axis is continuous and whose arrival stream interleaves
//     with transfers rather than ticks.
//
// A drained cell reports "mean sojourn / peak occupancy"; a cell whose
// watchdog trips reports the verdict and reason instead — divergence
// and starvation are results here, not failures. Every drained or
// truncated run is replayed through its engine's RunAudit, whose
// starvation identity (arrived = completed + early exits + still
// present) covers every peer that ever entered. The (λ, column,
// replicate) grid fans out over the worker pool with pre-derived
// seeds and aggregates sequentially, so the table is byte-identical
// for any Workers value.
func TableG(sc Scale, opt Options) (*Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	capacity, k, rates, reps := tableGParams(sc)
	cols := []string{"cooperative (sync)", "credit s=1 (sync)", "triangular (sync)", "cooperative (async)"}
	tbl := &Table{
		ID:    "tableG",
		Title: fmt.Sprintf("Open-system stability: sojourn & occupancy vs arrival rate λ (flash crowd of %d peers, k=%d, depart at completion)", capacity-1, k),
		Header: append([]string{"λ (peers/tick)"}, func() []string {
			labels := make([]string, len(cols))
			copy(labels, cols)
			return labels
		}()...),
		Notes: []string{
			fmt.Sprintf("cells are mean sojourn (ticks) / peak occupancy over %d seed(s), or the watchdog verdict when a run does not drain", reps),
			"peers arrive as a Poisson stream, download all k blocks, and leave at completion (no lingering seeds)",
			"block selection is rarest-first in all four columns, so the columns differ only in the barter mechanism",
			"every run replays through RunAudit's open-system starvation identity: arrived = completed + early exits + still present",
			"expected: the cooperative columns drain with sojourn near k for any λ the swarm's aggregate upload capacity covers;",
			"barter makes newcomers (who arrive with nothing to trade) lean on the server, raising sojourn before it risks starvation",
		},
	}
	prog := opt.Progress.Serialized()
	store, serr := opt.openStore()
	if serr != nil {
		return nil, serr
	}
	defer store.close()
	type outcome struct {
		Verdict string  `json:"verdict"`
		Reason  string  `json:"reason,omitempty"`
		Sojourn float64 `json:"sojourn"`
		Peak    int     `json:"peak"`
	}
	budget := func(rate float64) int {
		// Admitting the whole pool takes ~capacity/λ ticks; the drain
		// tail and the starvation age limit bound the rest. The watchdog
		// grades runs that exceed this Unstable/budget — a verdict, not
		// an error.
		return int(float64(capacity-1)/rate) + 60*k + 2000
	}
	arrOpts := func(ci int, rate float64, rep int) arrival.Options {
		return arrival.Options{Seed: uint64(23000 + 100*ci + rep), Rate: rate}
	}
	runSync := func(ci int, rate float64, rep int) (outcome, error) {
		ao := arrOpts(ci, rate, rep)
		cfg := core.Config{
			Nodes: capacity, Blocks: k,
			Algorithm:   core.AlgoRandomized,
			Policy:      randomized.RarestFirst,
			Seed:        uint64(21000 + 100*ci + rep),
			RecordTrace: true,
			MaxTicks:    budget(rate),
			Arrivals:    &ao,
		}
		switch ci {
		case 1:
			cfg.CreditLimit = 1
		case 2:
			cfg.Algorithm = core.AlgoTriangular
			cfg.CreditLimit = 1
		}
		res, err := core.Run(cfg)
		if err != nil {
			return outcome{}, fmt.Errorf("tableG %s λ=%g: %w", cols[ci], rate, err)
		}
		if aerr := simulate.RunAudit(res.SimConfig, res.Sim); aerr != nil {
			return outcome{}, fmt.Errorf("tableG %s λ=%g: %w", cols[ci], rate, aerr)
		}
		o := res.Open
		return outcome{Verdict: o.Verdict.String(), Reason: o.Reason.String(),
			Sojourn: o.SojournMean, Peak: o.PeakOccupancy}, nil
	}
	runAsync := func(rate float64, rep int) (outcome, error) {
		const ci = 3
		ao := arrOpts(ci, rate, rep)
		plan, err := arrival.NewPlan(ao)
		if err != nil {
			return outcome{}, fmt.Errorf("tableG %s λ=%g: %w", cols[ci], rate, err)
		}
		cfg := asim.Config{
			Nodes: capacity, Blocks: k,
			DownloadPorts: 1,
			RecordTrace:   true,
			MaxTime:       float64(budget(rate)),
			Arrivals:      plan,
		}
		res, err := asim.Run(cfg, asim.NewAsyncRandomized(nil, true, 1, uint64(21000+100*ci+rep)))
		if err != nil {
			return outcome{}, fmt.Errorf("tableG %s λ=%g: %w", cols[ci], rate, err)
		}
		auditCfg := cfg
		auditCfg.Arrivals = nil // consumed plans must not leak
		if aerr := asim.RunAudit(auditCfg, res); aerr != nil {
			return outcome{}, fmt.Errorf("tableG %s λ=%g: %w", cols[ci], rate, aerr)
		}
		o := res.Open
		return outcome{Verdict: o.Verdict.String(), Reason: o.Reason.String(),
			Sojourn: o.SojournMean, Peak: o.PeakOccupancy}, nil
	}
	perRate := len(cols) * reps
	outs, err := parallel.Map(opt.workers(), len(rates)*perRate, func(j int) (outcome, error) {
		rate := rates[j/perRate]
		ci := (j % perRate) / reps
		rep := j % reps
		if ci == 0 && rep == 0 {
			prog.log("tableG: arrival rate λ=%g", rate)
		}
		tag := fmt.Sprintf("tableG: %s λ=%g", cols[ci], rate)
		return cellCached(store, tag, uint64(21000+100*ci+rep), rep, func() (outcome, error) {
			if ci == 3 {
				return runAsync(rate, rep)
			}
			return runSync(ci, rate, rep)
		})
	})
	if err != nil {
		return nil, err
	}
	for ri, rate := range rates {
		row := []string{fmt.Sprintf("%g", rate)}
		for ci := range cols {
			sojSum, peakSum, drained, unstable := 0.0, 0, 0, ""
			for rep := 0; rep < reps; rep++ {
				o := outs[ri*perRate+ci*reps+rep]
				if o.Verdict != "drained" {
					unstable = fmt.Sprintf("%s(%s) peak=%d", o.Verdict, o.Reason, o.Peak)
					continue
				}
				sojSum += o.Sojourn
				peakSum += o.Peak
				drained++
			}
			switch {
			case drained == 0:
				row = append(row, unstable)
			case unstable != "":
				row = append(row, fmt.Sprintf("%.1f / %d (+%d unstable)",
					sojSum/float64(drained), peakSum/drained, reps-drained))
			default:
				row = append(row, fmt.Sprintf("%.1f / %d", sojSum/float64(drained), peakSum/drained))
			}
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}
