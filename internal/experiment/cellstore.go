package experiment

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync" //lint:concurrency-containment the cell store serializes checkpoint appends from internal/parallel workers; cell outcomes are seed-keyed so replay order cannot affect results
)

// cellRecord is one completed (spec, replicate) cell of a sweep, as
// persisted in the checkpoint store: one JSON object per line,
// append-only, so an interrupted figure or table run resumes by
// re-running only the cells with no line. The outcome payload is an
// opaque JSON value — each generator caches its own outcome type
// through cellCached, so one store file can hold a whole paperfigs
// sweep (figures and tables mixed) keyed by tag.
type cellRecord struct {
	Tag  string          `json:"tag"`
	Seed uint64          `json:"seed"`
	Rep  int             `json:"rep"`
	Out  json.RawMessage `json:"out"`
}

// cellStore is the append-only JSONL store behind Options.Checkpoint.
// Cells are keyed by (tag, seed, replicate) — the spec's stable
// identity — so reordering specs between runs cannot mis-assign a
// cached outcome. Writes are serialized by a mutex (the worker pool
// calls put concurrently) and synced per cell: each cell is a whole
// simulation, so the fsync is noise next to the work it makes durable.
type cellStore struct {
	mu   sync.Mutex //lint:concurrency-containment see the sync import note: guards append-only checkpoint writes
	f    *os.File
	done map[string]json.RawMessage
}

func cellKey(tag string, seed uint64, rep int) string {
	return fmt.Sprintf("%s\x00%d\x00%d", tag, seed, rep)
}

// openStore opens the cell store named by Options.Checkpoint, or
// returns nil (checkpointing disabled) when the option is empty. The
// nil store is safe to use: get misses, put and close are no-ops.
func (o Options) openStore() (*cellStore, error) {
	if o.Checkpoint == "" {
		return nil, nil
	}
	return openCellStore(o.Checkpoint)
}

// openCellStore opens (creating if needed) the store at path and loads
// every completed cell. A torn final line — the signature of a crash
// mid-append — is truncated away and the run continues; a corrupt line
// in the middle of the file is an error, not a guess.
func openCellStore(path string) (*cellStore, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: checkpoint store: %w", err)
	}
	s := &cellStore{f: f, done: make(map[string]json.RawMessage)}
	good := int64(0) // offset just past the last fully parsed line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		var rec cellRecord
		if err := json.Unmarshal(line, &rec); err != nil || rec.Out == nil {
			break
		}
		good += int64(len(line)) + 1
		s.done[cellKey(rec.Tag, rec.Seed, rec.Rep)] = rec.Out
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: checkpoint store %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: checkpoint store: %w", err)
	}
	if tail := st.Size() - good; tail > 0 {
		// More than one line of garbage means the file is not just a
		// torn append; refuse to silently drop completed cells.
		if tail > 1<<16 {
			f.Close()
			return nil, fmt.Errorf("experiment: checkpoint store %s: %d bytes of unparseable data at offset %d", path, tail, good)
		}
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("experiment: checkpoint store: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: checkpoint store: %w", err)
	}
	return s, nil
}

// get returns the cached outcome payload of a cell, if present. A nil
// store always misses.
func (s *cellStore) get(tag string, seed uint64, rep int) (json.RawMessage, bool) {
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	raw, ok := s.done[cellKey(tag, seed, rep)]
	return raw, ok
}

// put records a completed cell durably before it is considered done.
func (s *cellStore) put(tag string, seed uint64, rep int, v any) error {
	if s == nil {
		return nil
	}
	out, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("experiment: checkpoint store: %w", err)
	}
	line, err := json.Marshal(cellRecord{Tag: tag, Seed: seed, Rep: rep, Out: out})
	if err != nil {
		return fmt.Errorf("experiment: checkpoint store: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("experiment: checkpoint store: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("experiment: checkpoint store: %w", err)
	}
	s.done[cellKey(tag, seed, rep)] = out
	return nil
}

func (s *cellStore) close() error {
	if s == nil {
		return nil
	}
	return s.f.Close()
}

// cellCached runs compute for the cell (tag, seed, rep) unless the
// store already holds its outcome, in which case the cached value is
// returned and compute is skipped entirely. Outcomes are recorded
// durably before they are returned, so a crash can lose at most the
// in-flight cells. Errors are never cached — a resumed run retries
// them. The outcome type must round-trip through encoding/json (i.e.
// carry exported fields only), because the cache IS its JSON form.
func cellCached[T any](s *cellStore, tag string, seed uint64, rep int, compute func() (T, error)) (T, error) {
	if raw, ok := s.get(tag, seed, rep); ok {
		var out T
		if err := json.Unmarshal(raw, &out); err != nil {
			var zero T
			return zero, fmt.Errorf("experiment: checkpoint store: cell %q seed=%d rep=%d: %w", tag, seed, rep, err)
		}
		return out, nil
	}
	out, err := compute()
	if err != nil {
		return out, err
	}
	if err := s.put(tag, seed, rep, out); err != nil {
		var zero T
		return zero, fmt.Errorf("%s: %w", tag, err)
	}
	return out, nil
}
