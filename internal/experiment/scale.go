package experiment

import (
	"errors"
	"fmt"
	"time"

	"barterdist/internal/analysis"
	"barterdist/internal/core"
	"barterdist/internal/mechanism"
	"barterdist/internal/parallel"
	"barterdist/internal/simulate"
)

// This file holds the large-n scale-out capstone: completion time T
// versus swarm size n for the randomized algorithm under credit-limited
// barter (s = 1) on the complete graph, with tracing ON — the regime
// where the paper's asymptotic claims (T = k + O(log n), price of
// barter) meet the engine's memory model. The full scale runs a single
// in-process n = 100k, k = 64 simulation whose recorded columnar trace
// is the acceptance artifact for the streaming-trace work; the table
// reports each point's trace footprint so EXPERIMENTS.md can pair the
// deterministic output with externally measured peak-RSS and ns/tick.

// tableScaleParams selects the sweep. k is fixed (the paper's T ≈
// k + c·log2 n form makes n the interesting axis) and replication
// shrinks as n grows: the CI at n = 10^5 is dominated by the bound
// ratio, not run-to-run spread.
func tableScaleParams(sc Scale) (ns []int, k int, repsFor func(n int) int) {
	switch sc {
	case ScaleFull:
		return []int{1000, 10000, 100000, 1000000}, 64, func(n int) int {
			switch {
			case n <= 1000:
				return 3
			case n <= 10000:
				return 2
			default:
				return 1
			}
		}
	case ScaleMedium:
		return []int{1000, 10000}, 64, func(n int) int {
			if n <= 1000 {
				return 3
			}
			return 1
		}
	default: // ScaleCI
		return []int{128, 512}, 16, func(int) int { return 2 }
	}
}

// scaleOutcome is one replicate's observables. Everything here is a
// deterministic function of the replicate seed — including the trace
// footprint, whose column capacities are fixed by the Reserve hints and
// the (seeded) append sequence — so the table stays byte-identical for
// any worker count, and caching a cell in the checkpoint store (the
// fields are exported for exactly that JSON round-trip) returns the
// same bytes a recompute would.
type scaleOutcome struct {
	Ticks      float64 `json:"ticks"`
	Stalled    bool    `json:"stalled,omitempty"`
	Optimal    int     `json:"optimal"`
	Transfers  int     `json:"transfers"`
	TraceBytes int     `json:"traceBytes"`
}

// shardOutcome is one shard-sweep run: the deterministic observables
// plus the one measured quantity in the whole table, wall-clock
// seconds. Wall time is cached alongside the run so an interrupted
// full-scale sweep resumes with its measurement intact, and it is
// rendered only outside CI scale, where the table must stay
// byte-identical across reruns.
type shardOutcome struct {
	scaleOutcome
	WallSeconds float64 `json:"wallSeconds"`
	// Audit wall-clock, measured on the P = 1 capstone pass only: the
	// full RunAudit + credit-mechanism replay of the recorded trace at
	// AuditWorkers 1 and 8. The verdict is byte-identical at both
	// widths (the parallel auditor's contract); only the wall moves.
	AuditWall1 float64 `json:"auditWall1,omitempty"`
	AuditWall8 float64 `json:"auditWall8,omitempty"`
}

// shardSweepWorkers is the shard-scaling column: the largest row of the
// selected scale is re-run at these ShardWorkers widths, sequentially
// (a wall-clock measurement must not share the machine with the rest of
// the sweep), and the completion times must agree byte for byte — the
// tentpole's determinism contract, asserted on the capstone row itself.
var shardSweepWorkers = [3]int{1, 4, 8}

// runShardSweep runs the (n, rep 0) cell at each sweep width. The P = 1
// run doubles as the row's replicate-0 outcome, and — being the
// capstone artifact — is audited: the full recorded trace must replay
// clean through RunAudit and satisfy the credit s = 1 mechanism.
func runShardSweep(store *cellStore, prog Progress, n, k int) ([len(shardSweepWorkers)]shardOutcome, error) {
	var sweep [len(shardSweepWorkers)]shardOutcome
	for i, p := range shardSweepWorkers {
		p := p
		prog.log("tableScale: shard sweep n=%d k=%d credit=1 P=%d", n, k, p)
		tag := fmt.Sprintf("tableScale/shard: n=%d k=%d credit=1 P=%d", n, k, p)
		out, err := cellCached(store, tag, uint64(26000+n), 0, func() (shardOutcome, error) {
			cfg := core.Config{
				Nodes: n, Blocks: k,
				Algorithm:    core.AlgoRandomized,
				CreditLimit:  1,
				DownloadCap:  1,
				RecordTrace:  true,
				ShardWorkers: p,
				Seed:         uint64(26000 + n),
			}
			start := time.Now()
			res, err := core.Run(cfg)
			wall := time.Since(start).Seconds()
			if err != nil {
				return shardOutcome{}, fmt.Errorf("tableScale: shard sweep n=%d P=%d: %w", n, p, err)
			}
			out := shardOutcome{
				scaleOutcome: scaleOutcome{
					Ticks:      float64(res.CompletionTime),
					Optimal:    res.OptimalTime,
					Transfers:  res.Sim.TotalTransfers,
					TraceBytes: res.Sim.Trace.MemSize(),
				},
				WallSeconds: wall,
			}
			if p == 1 {
				// The capstone audit, timed at both ends of the worker
				// matrix: sequential replay and the 8-way parallel
				// pipeline over the same recorded trace.
				sc := res.SimConfig
				for _, w := range [2]int{1, 8} {
					sc.AuditWorkers = w
					start := time.Now()
					if err := simulate.RunAudit(sc, res.Sim); err != nil {
						return shardOutcome{}, fmt.Errorf("tableScale: n=%d RunAudit(AuditWorkers=%d): %w", n, w, err)
					}
					if err := mechanism.VerifyCreditLimitedLog(res.Sim.Trace, false, cfg.CreditLimit, w); err != nil {
						return shardOutcome{}, fmt.Errorf("tableScale: n=%d VerifyCreditLimited(workers=%d): %w", n, w, err)
					}
					if w == 1 {
						out.AuditWall1 = time.Since(start).Seconds()
					} else {
						out.AuditWall8 = time.Since(start).Seconds()
					}
				}
			}
			return out, nil
		})
		if err != nil {
			return sweep, err
		}
		sweep[i] = out
		if out.Ticks != sweep[0].Ticks || out.Transfers != sweep[0].Transfers {
			return sweep, fmt.Errorf("tableScale: shard sweep n=%d: P=%d diverged from P=%d (T %g vs %g, transfers %d vs %d)",
				n, p, shardSweepWorkers[0], out.Ticks, sweep[0].Ticks, out.Transfers, sweep[0].Transfers)
		}
	}
	return sweep, nil
}

// TableScale reproduces the scale-out table: T vs n for the randomized
// algorithm with credit limit s = 1 on the complete graph, k fixed,
// RecordTrace on. Columns report the cooperative bound k−1+⌈log2 n⌉
// (Theorem 1), the ratio T/bound, and the first replicate's transfer
// count and columnar-trace heap footprint.
func TableScale(sc Scale, opt Options) (*Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	ns, k, repsFor := tableScaleParams(sc)
	prog := opt.Progress.Serialized()
	// The scale capstone is the single most expensive cell in the whole
	// harness (n = 100k with tracing on runs for the better part of an
	// hour), so it is exactly where per-point checkpointing pays: an
	// interrupted full-scale sweep resumes with every finished n cached.
	store, err := opt.openStore()
	if err != nil {
		return nil, err
	}
	defer store.close()

	// The largest n carries the shard-scaling column: its replicate 0 is
	// run by the sequential sweep below (the P = 1 pass doubles as the
	// row outcome), so it is excluded from the parallel job list.
	shardN := ns[len(ns)-1]
	specOf := make([]int32, 0, 8) // flat job index -> index into ns
	repOf := make([]int32, 0, 8)  // flat job index -> replicate
	for si, n := range ns {
		for r := 0; r < repsFor(n); r++ {
			if n == shardN && r == 0 {
				continue
			}
			specOf = append(specOf, int32(si))
			repOf = append(repOf, int32(r))
		}
	}
	outcomes, err := parallel.Map(opt.workers(), len(specOf), func(j int) (scaleOutcome, error) {
		n := ns[specOf[j]]
		rep := int(repOf[j])
		if rep == 0 {
			prog.log("tableScale: n=%d k=%d credit=1", n, k)
		}
		cfg := core.Config{
			Nodes: n, Blocks: k,
			Algorithm:   core.AlgoRandomized,
			CreditLimit: 1,
			DownloadCap: 1,
			RecordTrace: true,
			Seed:        uint64(26000+n) + uint64(rep)*parallel.SeedStride,
		}
		tag := fmt.Sprintf("tableScale: n=%d k=%d credit=1", n, k)
		return cellCached(store, tag, uint64(26000+n), rep, func() (scaleOutcome, error) {
			res, err := core.Run(cfg)
			switch {
			case err == nil:
				return scaleOutcome{
					Ticks:      float64(res.CompletionTime),
					Optimal:    res.OptimalTime,
					Transfers:  res.Sim.TotalTransfers,
					TraceBytes: res.Sim.Trace.MemSize(),
				}, nil
			case errors.Is(err, core.ErrStalled):
				return scaleOutcome{Ticks: float64(cfg.MaxTicks), Stalled: true}, nil
			default:
				return scaleOutcome{}, fmt.Errorf("tableScale: n=%d rep=%d: %w", n, rep, err)
			}
		})
	})
	if err != nil {
		return nil, err
	}
	sweep, err := runShardSweep(store, prog, shardN, k)
	if err != nil {
		return nil, err
	}

	tbl := &Table{
		ID:    "tableScale",
		Title: fmt.Sprintf("Scale-out: randomized + credit s=1, complete graph, k=%d, tracing on", k),
		Header: []string{"n", "mean T", "ci95", "reps", "bound k-1+ceil(log2 n)",
			"T/bound", "transfers", "trace MiB", "T P=1/4/8", "wall s P=1/4/8",
			"audit s w=1/8"},
	}
	j := 0
	for _, n := range ns {
		reps := repsFor(n)
		times := make([]float64, 0, reps)
		stalled := 0
		var first scaleOutcome // replicate 0: footprint/bound exemplar
		for r := 0; r < reps; r++ {
			var o scaleOutcome
			if n == shardN && r == 0 {
				o = sweep[0].scaleOutcome
			} else {
				o = outcomes[j]
				j++
			}
			if r == 0 {
				first = o
			}
			times = append(times, o.Ticks)
			if o.Stalled {
				stalled++
			}
		}
		sum, err := analysis.Summarize(times)
		if err != nil {
			return nil, fmt.Errorf("tableScale: n=%d: %w", n, err)
		}
		ratio := "-"
		if first.Optimal > 0 {
			ratio = fmt.Sprintf("%.3f", sum.Mean/float64(first.Optimal))
		}
		shardT, shardWall, auditWall := "-", "-", "-"
		if n == shardN {
			shardT = fmt.Sprintf("%.0f/%.0f/%.0f", sweep[0].Ticks, sweep[1].Ticks, sweep[2].Ticks)
			if sc != ScaleCI {
				// The measured (non-deterministic) values in the table;
				// CI scale keeps them out so generator output stays
				// byte-reproducible.
				shardWall = fmt.Sprintf("%.0f/%.0f/%.0f",
					sweep[0].WallSeconds, sweep[1].WallSeconds, sweep[2].WallSeconds)
				auditWall = fmt.Sprintf("%.1f/%.1f", sweep[0].AuditWall1, sweep[0].AuditWall8)
			}
		}
		row := []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.2f", sum.Mean),
			fmt.Sprintf("%.2f", sum.CI95),
			fmt.Sprint(reps),
			fmt.Sprint(first.Optimal),
			ratio,
			fmt.Sprint(first.Transfers),
			fmt.Sprintf("%.1f", float64(first.TraceBytes)/(1<<20)),
			shardT,
			shardWall,
			auditWall,
		}
		if stalled > 0 {
			row[1] = fmt.Sprintf(">=%.0f (stalled %d/%d)", sum.Mean, stalled, reps)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	tbl.Notes = []string{
		"T vs n at fixed k: the coop bound is k-1+ceil(log2 n), so T/bound -> 1 is the",
		"paper's asymptotic claim; credit s=1 pays a constant-factor barter premium.",
		"transfers and trace MiB come from replicate 0; peak-RSS and ns/tick are",
		"measured outside the generator (see EXPERIMENTS.md scale section).",
		"The largest row is re-run at ShardWorkers P=1/4/8 sequentially: T must be",
		"identical (asserted), wall-clock is measured and machine-dependent; the P=1",
		"pass replays clean through RunAudit + VerifyCreditLimitedLog at AuditWorkers",
		"1 and 8 (byte-identical verdicts, both walls reported) before reporting.",
	}
	return tbl, nil
}
