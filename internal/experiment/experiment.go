// Package experiment regenerates every figure and table in the paper's
// evaluation (the per-experiment index lives in DESIGN.md):
//
//	Table A — Section 2.2's baseline completion times vs the Theorem 1
//	          lower bound (analytic and simulated).
//	Figure 3 — randomized cooperative algorithm: T vs n (complete graph).
//	Figure 4 — randomized cooperative algorithm: T vs k (complete graph).
//	Table B — the least-squares fit T ≈ a·k + b·log2 n + c (Section 2.4.4).
//	Figure 5 — T vs overlay degree on random regular graphs (+ hypercube).
//	Figure 6 — credit-limited barter, Random policy: T vs degree for s=1
//	          and s·d=100 (Section 3.2.4).
//	Figure 7 — the same with Rarest-First block selection.
//	Table C — the price of barter: cooperative optimum vs Riffle Pipeline
//	          vs lower bounds, plus mechanism audits.
//
// Each generator takes a Scale so the same code serves the full-size
// paper reproduction (cmd/paperfigs), the benchmark suite, and fast CI
// runs. Results render to CSV (machine-readable) and ASCII plots/tables
// (EXPERIMENTS.md).
package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Scale selects the experiment size.
type Scale int

// The preset scales.
const (
	// ScaleCI is small enough for unit tests and testing.B benchmarks.
	ScaleCI Scale = iota + 1
	// ScaleMedium reproduces every qualitative effect in a few minutes.
	ScaleMedium
	// ScaleFull is the paper's own parameterization (n up to 10000,
	// k up to 2000). Budget tens of minutes on one core.
	ScaleFull
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case ScaleCI:
		return "ci"
	case ScaleMedium:
		return "medium"
	case ScaleFull:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// ParseScale converts a CLI flag value.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "ci", "small":
		return ScaleCI, nil
	case "medium", "med":
		return ScaleMedium, nil
	case "full", "paper":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf("experiment: unknown scale %q (want ci|medium|full)", s)
	}
}

// Point is one x-position of a series: aggregated completion times over
// repetitions.
type Point struct {
	X       float64
	Mean    float64
	CI95    float64
	Reps    int
	Stalled int // runs that hit the tick budget (plotted as the budget)
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Figure is a reproduced plot.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	XLog   bool
	Series []Series
	Notes  []string
}

// Table is a reproduced table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// CSV renders the figure's data points as CSV.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,mean_T,ci95,reps,stalled\n", csvSafe(f.XLabel))
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%g,%.2f,%.2f,%d,%d\n", csvSafe(s.Name), p.X, p.Mean, p.CI95, p.Reps, p.Stalled)
		}
	}
	return b.String()
}

// CSV renders the table as CSV.
func (t *Table) CSV() string {
	var b strings.Builder
	for i, h := range t.Header {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvSafe(h))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvSafe(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvSafe(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Render draws the figure as an ASCII scatter plot, one rune per series.
func (f *Figure) Render(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	var xs, ys []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs = append(xs, f.xpos(p.X))
			ys = append(ys, p.Mean)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	if len(xs) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	xmin, xmax := minMax(xs)
	ymin, ymax := minMax(ys)
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	marks := []rune("*o+x#@")
	for si, s := range f.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			col := int(math.Round((f.xpos(p.X) - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((p.Mean-ymin)/(ymax-ymin)*float64(height-1)))
			grid[row][col] = mark
		}
	}
	fmt.Fprintf(&b, "%10.0f +%s\n", ymax, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "%10s |%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%10.0f +%s\n", ymin, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s  %-*g%*g\n", "", width/2, xvalLabel(f, xmin), width-width/2, xvalLabel(f, xmax))
	fmt.Fprintf(&b, "%10s  x: %s%s   y: %s\n", "", f.XLabel, logSuffix(f.XLog), f.YLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "  %c = %s\n", marks[si%len(marks)], s.Name)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func (f *Figure) xpos(x float64) float64 {
	if f.XLog && x > 0 {
		return math.Log2(x)
	}
	return x
}

func xvalLabel(f *Figure, pos float64) float64 {
	if f.XLog {
		return math.Round(math.Exp2(pos))
	}
	return pos
}

func logSuffix(log bool) string {
	if log {
		return " (log scale)"
	}
	return ""
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

func minMax(xs []float64) (float64, float64) {
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// sortSeriesPoints orders every series by x for stable output.
func sortSeriesPoints(f *Figure) {
	for i := range f.Series {
		pts := f.Series[i].Points
		sort.Slice(pts, func(a, b int) bool { return pts[a].X < pts[b].X })
	}
}
