package experiment

import (
	"errors"
	"fmt"

	"barterdist/internal/analysis"
	"barterdist/internal/core"
	"barterdist/internal/parallel"
)

// Options configures how a generator executes. The zero value runs with
// no progress logging and one worker per CPU.
//
// Determinism contract: every generator produces byte-identical CSV and
// renderings for any Workers value >= 1. Replicate seeds are pre-derived
// from the per-point base seed (seed + rep*parallel.SeedStride), every
// simulation owns its RNG stream, and all aggregation happens
// sequentially in submission order — worker scheduling can reorder only
// the Progress lines, never the data.
type Options struct {
	// Progress receives human-readable status lines; nil disables
	// logging. Generators serialize calls through Progress.Serialized,
	// so the callback itself does not need to be safe for concurrent
	// use. Line order may vary with worker scheduling.
	Progress Progress
	// Workers caps the simulation worker pool. Zero selects
	// runtime.GOMAXPROCS(0); negative values are rejected by Validate.
	Workers int
	// Checkpoint names a JSONL cell store recording every completed
	// (spec, replicate) simulation as it finishes. Rerunning an
	// interrupted generator against the same store recomputes only the
	// missing cells and reproduces the exact uncheckpointed output:
	// cached cells carry the same outcome the simulation would, because
	// each cell's seed is pre-derived from its identity. Every
	// replicated generator honors it — the figures and Table C through
	// runPoints, Tables D/E/F and the scale capstone directly. TableA
	// and TableB are single deterministic runs per cell (milliseconds
	// at any scale), so they recompute rather than cache. Empty
	// disables checkpointing.
	Checkpoint string
}

// Validate checks the options without mutating them. Workers must be
// non-negative: zero means "one worker per CPU", and an explicit count
// must be at least one — a negative count is almost always a sign error
// in the caller, not a request for auto-sizing.
func (o Options) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("experiment: Workers = %d; must be >= 0 (0 selects GOMAXPROCS)", o.Workers)
	}
	return nil
}

func (o Options) workers() int { return parallel.Workers(o.Workers) }

// runSpec is one x-point of a sweep: a config template replicated reps
// times, with replicate r seeded seed + r*parallel.SeedStride.
type runSpec struct {
	tag  string // progress/error label, logged when the point starts
	cfg  core.Config
	reps int
	seed uint64
}

// repOutcome is one replicate's result. Stalls (core.ErrStalled) count
// as runs pinned at the tick budget, exactly as the paper plots "off
// the charts" points. Fields are exported because the checkpoint cell
// store caches outcomes as JSON (see cellCached).
type repOutcome struct {
	Ticks   float64 `json:"ticks"`
	Stalled bool    `json:"stalled,omitempty"`
}

// runPoints fans every (spec, replicate) pair out over the worker pool
// and aggregates each spec's completion times into a Point, in spec
// order. See Options for the determinism contract; the X coordinate is
// left zero for the caller to fill in.
func runPoints(opt Options, specs []runSpec) ([]Point, error) {
	prog := opt.Progress.Serialized()
	store, err := opt.openStore()
	if err != nil {
		return nil, err
	}
	defer store.close()
	total := 0
	for _, sp := range specs {
		total += sp.reps
	}
	specOf := make([]int32, 0, total) // flat job index -> spec index
	repOf := make([]int32, 0, total)  // flat job index -> replicate
	for si, sp := range specs {
		for r := 0; r < sp.reps; r++ {
			specOf = append(specOf, int32(si))
			repOf = append(repOf, int32(r))
		}
	}
	outcomes, err := parallel.Map(opt.workers(), total, func(j int) (repOutcome, error) {
		sp := &specs[specOf[j]]
		rep := int(repOf[j])
		if rep == 0 {
			prog.log("%s", sp.tag)
		}
		cfg := sp.cfg
		cfg.Seed = sp.seed + uint64(rep)*parallel.SeedStride
		return cellCached(store, sp.tag, sp.seed, rep, func() (repOutcome, error) {
			res, err := core.Run(cfg)
			switch {
			case err == nil:
				return repOutcome{Ticks: float64(res.CompletionTime)}, nil
			case errors.Is(err, core.ErrStalled):
				// Stalls are data (points pinned at the tick budget), so they
				// are cached; real errors are not — a resumed run retries them.
				return repOutcome{Ticks: float64(cfg.MaxTicks), Stalled: true}, nil
			default:
				return repOutcome{}, fmt.Errorf("%s: %w", sp.tag, err)
			}
		})
	})
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(specs))
	j := 0
	for si := range specs {
		sp := &specs[si]
		times := make([]float64, 0, sp.reps)
		stalled := 0
		for r := 0; r < sp.reps; r++ {
			o := outcomes[j]
			j++
			times = append(times, o.Ticks)
			if o.Stalled {
				stalled++
			}
		}
		sum, err := analysis.Summarize(times)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.tag, err)
		}
		points[si] = Point{Mean: sum.Mean, CI95: sum.CI95, Reps: sp.reps, Stalled: stalled}
	}
	return points, nil
}
