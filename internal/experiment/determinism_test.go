package experiment

import (
	"fmt"
	"testing"
)

// generatorsCI lists every figure and table generator, each rendered to
// the exact bytes paperfigs would write to disk (CSV + ASCII render).
func generatorsCI() []struct {
	name string
	emit func(Options) (string, error)
} {
	figure := func(gen func(Scale, Options) (*Figure, error)) func(Options) (string, error) {
		return func(opt Options) (string, error) {
			fig, err := gen(ScaleCI, opt)
			if err != nil {
				return "", err
			}
			return fig.CSV() + fig.Render(72, 16), nil
		}
	}
	table := func(gen func(Scale, Options) (*Table, error)) func(Options) (string, error) {
		return func(opt Options) (string, error) {
			tbl, err := gen(ScaleCI, opt)
			if err != nil {
				return "", err
			}
			return tbl.CSV() + tbl.Render(), nil
		}
	}
	return []struct {
		name string
		emit func(Options) (string, error)
	}{
		{"tableA", table(TableA)},
		{"fig3", figure(Fig3)},
		{"fig4", figure(Fig4)},
		{"tableB", table(TableB)},
		{"fig5", figure(Fig5)},
		{"fig6", figure(Fig6)},
		{"fig7", figure(Fig7)},
		{"tableC", table(TableC)},
		{"tableD", table(TableD)},
		{"tableE", table(TableE)},
		{"tableF", table(TableF)},
		{"tableG", table(TableG)},
		{"tableScale", table(TableScale)},
	}
}

// TestGeneratorsByteEqualAcrossWorkerCounts pins the experiment
// package's central concurrency guarantee: every figure and table
// generator emits byte-identical output for any worker-pool width.
// Seeds are pre-derived per replicate and aggregation is sequential in
// submission order, so only scheduling — never data — may vary.
func TestGeneratorsByteEqualAcrossWorkerCounts(t *testing.T) {
	for _, g := range generatorsCI() {
		g := g
		t.Run(g.name, func(t *testing.T) {
			want, err := g.emit(Options{Workers: 1})
			if err != nil {
				t.Fatalf("workers=1: %v", err)
			}
			for _, w := range []int{2, 8} {
				got, err := g.emit(Options{Workers: w})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				if got != want {
					t.Errorf("workers=%d output differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						w, want, w, got)
				}
			}
		})
	}
}

// TestProgressSerializedUnderConcurrency hammers a deliberately
// unsynchronized Progress callback from an 8-worker run. The generators
// route all calls through Progress.Serialized, so under -race this test
// proves the documented contract: the callback itself never needs a
// lock.
func TestProgressSerializedUnderConcurrency(t *testing.T) {
	var lines []string // intentionally unsynchronized: Serialized must exclude
	prog := Progress(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	if _, err := TableE(ScaleCI, Options{Progress: prog, Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("progress callback never invoked")
	}
}

// TestProgressSerializedNil pins nil-safety: a nil Progress stays nil
// through Serialized and logging through it is a no-op.
func TestProgressSerializedNil(t *testing.T) {
	var p Progress
	s := p.Serialized()
	if s != nil {
		t.Error("Serialized(nil) should stay nil")
	}
	s.log("must not panic %d", 1)
}
