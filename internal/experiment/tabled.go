package experiment

import (
	"fmt"

	"barterdist/internal/analysis"
	"barterdist/internal/asim"
	"barterdist/internal/bt"
	"barterdist/internal/graph"
	"barterdist/internal/parallel"
	"barterdist/internal/xrand"
)

func tableDParams(sc Scale) (sizes []struct{ n, k, d int }, reps int) {
	switch sc {
	case ScaleFull:
		return []struct{ n, k, d int }{
			{128, 256, 20}, {256, 512, 30}, {512, 512, 40},
		}, 3
	case ScaleMedium:
		return []struct{ n, k, d int }{{64, 128, 12}, {128, 256, 20}}, 3
	default:
		return []struct{ n, k, d int }{{32, 64, 10}}, 2
	}
}

// TableD reproduces the paper's Section 4 BitTorrent remark on the
// asynchronous simulator: "even with perfect tuning of protocol
// parameters, the completion time with BitTorrent is more than 30% worse
// than the optimal time". Each row compares the optimal bound, the
// unconstrained asynchronous randomized algorithm, and the
// BitTorrent-style protocol (tit-for-tat choking + optimistic unchoke +
// Rarest-First) on the same peer graph. The (row, replicate) grid fans
// out over the worker pool; the two protocols of one replicate share a
// seed and a peer graph and therefore stay on one worker.
func TableD(sc Scale, opt Options) (*Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	sizes, reps := tableDParams(sc)
	tbl := &Table{
		ID:    "tableD",
		Title: "BitTorrent vs optimal on the asynchronous simulator (Section 4)",
		Header: []string{
			"n", "k", "degree", "optimal", "randomized (async)", "bittorrent", "bt overhead",
		},
		Notes: []string{
			"paper: BitTorrent is >30% worse than optimal even with tuned parameters",
			"both protocols run on the same peer graph with unit rates and one download port",
		},
	}
	prog := opt.Progress.Serialized()
	store, err := opt.openStore()
	if err != nil {
		return nil, err
	}
	defer store.close()
	type outcome struct {
		BT   float64 `json:"bt"`
		Free float64 `json:"free"`
	}
	outs, err := parallel.Map(opt.workers(), len(sizes)*reps, func(j int) (outcome, error) {
		sz, rep := sizes[j/reps], j%reps
		if rep == 0 {
			prog.log("tableD: n=%d k=%d d=%d", sz.n, sz.k, sz.d)
		}
		seed := uint64(9000 + sz.n*31 + rep)
		tag := fmt.Sprintf("tableD: n=%d k=%d d=%d", sz.n, sz.k, sz.d)
		return cellCached(store, tag, seed, rep, func() (outcome, error) {
			g, err := graph.RandomRegular(sz.n, sz.d, xrand.New(seed))
			if err != nil {
				return outcome{}, fmt.Errorf("tableD: %w", err)
			}
			proto, err := bt.New(bt.Options{Graph: g, DownloadPorts: 1, Seed: seed})
			if err != nil {
				return outcome{}, fmt.Errorf("tableD: %w", err)
			}
			btRes, err := asim.Run(asim.Config{Nodes: sz.n, Blocks: sz.k, DownloadPorts: 1}, proto)
			if err != nil {
				return outcome{}, fmt.Errorf("tableD bittorrent n=%d k=%d: %w", sz.n, sz.k, err)
			}
			free := asim.NewAsyncRandomized(g, true, 1, seed)
			freeRes, err := asim.Run(asim.Config{Nodes: sz.n, Blocks: sz.k, DownloadPorts: 1}, free)
			if err != nil {
				return outcome{}, fmt.Errorf("tableD randomized n=%d k=%d: %w", sz.n, sz.k, err)
			}
			return outcome{BT: btRes.CompletionTime, Free: freeRes.CompletionTime}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for si, sz := range sizes {
		var btSum, freeSum float64
		for rep := 0; rep < reps; rep++ {
			btSum += outs[si*reps+rep].BT
			freeSum += outs[si*reps+rep].Free
		}
		btMean := btSum / float64(reps)
		freeMean := freeSum / float64(reps)
		lb := float64(analysis.CooperativeLowerBound(sz.n, sz.k))
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprint(sz.n), fmt.Sprint(sz.k), fmt.Sprint(sz.d),
			fmt.Sprintf("%.0f", lb),
			fmt.Sprintf("%.1f (+%.0f%%)", freeMean, 100*(freeMean-lb)/lb),
			fmt.Sprintf("%.1f (+%.0f%%)", btMean, 100*(btMean-lb)/lb),
			fmt.Sprintf("%.0f%%", 100*(btMean-lb)/lb),
		})
	}
	return tbl, nil
}
