package experiment

import (
	"errors"
	"fmt"

	"barterdist/internal/adversary"
	"barterdist/internal/analysis"
	"barterdist/internal/asim"
	"barterdist/internal/core"
	"barterdist/internal/mechanism"
	"barterdist/internal/parallel"
	"barterdist/internal/simulate"
)

func tableFParams(sc Scale) (n, k int, fracs []float64, reps int) {
	switch sc {
	case ScaleFull:
		return 128, 128, []float64{0, 0.1, 0.2, 0.3, 0.5}, 4
	case ScaleMedium:
		return 64, 64, []float64{0, 0.125, 0.25, 0.5}, 3
	default:
		return 32, 32, []float64{0, 0.25, 0.5}, 2
	}
}

// tableFMix turns an adversary fraction into the standard Table F
// strategy mix: 40% free-riders, 20% false-advertisers, 20% corrupters,
// 10% throttlers, 10% defectors of the adversarial population.
func tableFMix(frac float64, seed uint64) *adversary.Options {
	if frac == 0 {
		return nil
	}
	return &adversary.Options{
		Seed:                seed,
		FreeRiderFrac:       0.4 * frac,
		FalseAdvertiserFrac: 0.2 * frac,
		CorrupterFrac:       0.2 * frac,
		ThrottlerFrac:       0.1 * frac,
		DefectorFrac:        0.1 * frac,
	}
}

// TableF is the "protection of barter" experiment: honest-client
// completion time and honest stall rate versus the fraction of
// adversarial clients (the Table F mix of free-riders, liars, and
// corrupters), with the barter mechanism off and on, on both engines:
//
//   - barter off (sync): the cooperative randomized algorithm — honest
//     clients fund the adversaries, so completion should degrade
//     roughly linearly with the adversarial fraction;
//   - credit s=1 (sync): credit-limited barter — a free-rider can
//     extract at most one block per client peer, so honest completion
//     should stay near-flat;
//   - triangular (sync): triangular barter, same protection with the
//     extra cycle liquidity;
//   - barter off (async): the asynchronous randomized protocol, whose
//     only defense is the receiver-side quarantine table.
//
// Every cell is "mean completion T / mean honest stall rate". Every
// completed run is replayed through its engine's RunAudit; adversarial
// sync runs additionally pass mechanism.AuditAdversary (strategies
// behaved as declared), and barter-on runs must satisfy
// mechanism.VerifyStarvation — the paper's protection claim as an
// executable assertion. The (frac, column, replicate) grid fans out
// over the worker pool with pre-derived seeds and aggregates
// sequentially, so the table is byte-identical for any Workers value.
func TableF(sc Scale, opt Options) (*Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n, k, fracs, reps := tableFParams(sc)
	maxTicks := 16*(n+k) + 400
	cols := []string{"barter off (sync)", "credit s=1 (sync)", "triangular (sync)", "barter off (async)"}
	tbl := &Table{
		ID:    "tableF",
		Title: fmt.Sprintf("Protection of barter: honest completion vs adversary fraction (n=%d, k=%d, optimal %d)", n, k, analysis.CooperativeLowerBound(n, k)),
		Header: append([]string{"adversary frac"}, func() []string {
			labels := make([]string, len(cols))
			copy(labels, cols)
			return labels
		}()...),
		Notes: []string{
			"mix: 40% free-riders, 20% false-advertisers, 20% corrupters, 10% throttlers, 10% defectors",
			fmt.Sprintf("cells are mean honest completion / mean honest stall rate over %d seeds; 'stall' = exceeded the tick budget", reps),
			"every run is replayed through RunAudit; adversarial sync runs also pass AuditAdversary",
			"barter-on cells must satisfy mechanism.VerifyStarvation (free-riders extract <= s per peer)",
			"expected: barter off degrades ~linearly with the adversary fraction; barter on stays near-flat",
		},
	}
	prog := opt.Progress.Serialized()
	store, serr := opt.openStore()
	if serr != nil {
		return nil, serr
	}
	defer store.close()
	type outcome struct {
		Stalled bool    `json:"stalled,omitempty"`
		Ticks   float64 `json:"ticks"`
		Stall   float64 `json:"stall"` // honest stall rate
	}
	runSync := func(ci int, frac float64, rep int) (outcome, error) {
		cfg := core.Config{
			Nodes: n, Blocks: k,
			Algorithm:   core.AlgoRandomized,
			Seed:        uint64(11000 + 100*ci + rep),
			RecordTrace: true,
			MaxTicks:    maxTicks,
			Adversary:   tableFMix(frac, uint64(13000+100*ci+rep)),
		}
		switch ci {
		case 1:
			cfg.CreditLimit = 1
		case 2:
			cfg.Algorithm = core.AlgoTriangular
		}
		res, err := core.Run(cfg)
		if errors.Is(err, core.ErrStalled) {
			return outcome{Stalled: true}, nil
		}
		if err != nil {
			return outcome{}, fmt.Errorf("tableF %s frac=%g: %w", cols[ci], frac, err)
		}
		if aerr := simulate.RunAudit(res.SimConfig, res.Sim); aerr != nil {
			return outcome{}, fmt.Errorf("tableF %s frac=%g: %w", cols[ci], frac, aerr)
		}
		if frac > 0 {
			if aerr := mechanism.AuditAdversary(res.Sim, 0); aerr != nil {
				return outcome{}, fmt.Errorf("tableF %s frac=%g: %w", cols[ci], frac, aerr)
			}
			if ci == 1 || ci == 2 {
				if serr := mechanism.VerifyStarvation(res.Sim, 1); serr != nil {
					return outcome{}, fmt.Errorf("tableF %s frac=%g: barter protection failed: %w", cols[ci], frac, serr)
				}
			}
		}
		return outcome{Ticks: float64(res.CompletionTime), Stall: res.Sim.HonestStallRate()}, nil
	}
	runAsync := func(frac float64, rep int) (outcome, error) {
		const ci = 3
		seed := uint64(11000 + 100*ci + rep)
		cfg := asim.Config{
			Nodes: n, Blocks: k,
			DownloadPorts: 1,
			RecordTrace:   true,
			MaxTime:       float64(maxTicks),
		}
		if mix := tableFMix(frac, uint64(13000+100*ci+rep)); mix != nil {
			plan, err := adversary.NewPlan(n, *mix)
			if err != nil {
				return outcome{}, fmt.Errorf("tableF %s frac=%g: %w", cols[ci], frac, err)
			}
			cfg.Adversary = plan
		}
		proto := asim.NewAsyncRandomized(nil, false, 1, seed)
		res, err := asim.Run(cfg, proto)
		if errors.Is(err, asim.ErrMaxTime) {
			return outcome{Stalled: true}, nil
		}
		if err != nil {
			return outcome{}, fmt.Errorf("tableF %s frac=%g: %w", cols[ci], frac, err)
		}
		auditCfg := cfg
		auditCfg.Fault, auditCfg.Adversary = nil, nil // consumed plans must not leak
		if aerr := asim.RunAudit(auditCfg, res); aerr != nil {
			return outcome{}, fmt.Errorf("tableF %s frac=%g: %w", cols[ci], frac, aerr)
		}
		return outcome{Ticks: res.CompletionTime, Stall: res.HonestStallRate()}, nil
	}
	// Flat job index: ((frac, col), rep), matching the sequential
	// aggregation below.
	perFrac := len(cols) * reps
	outs, err := parallel.Map(opt.workers(), len(fracs)*perFrac, func(j int) (outcome, error) {
		frac := fracs[j/perFrac]
		ci := (j % perFrac) / reps
		rep := j % reps
		if ci == 0 && rep == 0 {
			prog.log("tableF: adversary fraction %g", frac)
		}
		// Cached cells skip RunAudit/AuditAdversary/VerifyStarvation along
		// with the run: the audits passed when the cell was first computed,
		// and a recompute would replay the identical seeded trace.
		tag := fmt.Sprintf("tableF: %s frac=%g", cols[ci], frac)
		return cellCached(store, tag, uint64(11000+100*ci+rep), rep, func() (outcome, error) {
			if ci == 3 {
				return runAsync(frac, rep)
			}
			return runSync(ci, frac, rep)
		})
	})
	if err != nil {
		return nil, err
	}
	for fi, frac := range fracs {
		row := []string{fmt.Sprintf("%g", frac)}
		for ci := range cols {
			tickSum, stallRateSum, done, stalls := 0.0, 0.0, 0, 0
			for rep := 0; rep < reps; rep++ {
				o := outs[fi*perFrac+ci*reps+rep]
				if o.Stalled {
					stalls++
					continue
				}
				tickSum += o.Ticks
				stallRateSum += o.Stall
				done++
			}
			switch {
			case done == 0:
				row = append(row, "stall")
			case stalls > 0:
				row = append(row, fmt.Sprintf("%.1f / %.1f%% (%d stall)",
					tickSum/float64(done), 100*stallRateSum/float64(done), stalls))
			default:
				row = append(row, fmt.Sprintf("%.1f / %.1f%%",
					tickSum/float64(done), 100*stallRateSum/float64(done)))
			}
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}
