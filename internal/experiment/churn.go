package experiment

import (
	"errors"
	"fmt"

	"barterdist/internal/analysis"
	"barterdist/internal/core"
	"barterdist/internal/fault"
	"barterdist/internal/parallel"
	"barterdist/internal/randomized"
	"barterdist/internal/simulate"
)

func tableEParams(sc Scale) (n, k int, rates []float64, reps int) {
	switch sc {
	case ScaleFull:
		return 128, 128, []float64{0, 0.002, 0.01, 0.03, 0.1}, 4
	case ScaleMedium:
		return 64, 64, []float64{0, 0.005, 0.02, 0.05}, 3
	default:
		return 24, 24, []float64{0, 0.01, 0.05}, 2
	}
}

// churnLoss is the fixed per-transfer loss probability applied to every
// nonzero-churn row, so each cell exercises both adversity channels.
const churnLoss = 0.02

// TableE measures completion time versus churn rate — the robustness
// question the paper's static analysis (Section 2.3.4) leaves open.
// Rows sweep the Poisson crash rate (crashed clients rejoin wiped after
// 10 ticks; every nonzero row also drops 2% of transfers); columns
// compare the scheduler families:
//
//   - the randomized cooperative algorithm (Random and Rarest-First),
//     which re-samples around dead peers and should degrade gracefully
//     (cf. Sanghavi–Hajek–Massoulié on gossip under perturbation);
//   - the randomized algorithm under credit-limited barter (s = 1),
//     where a wiped peer also loses its ability to reciprocate — the
//     strictest mechanism and the expected worst degrader;
//   - triangular barter (Section 3.3), whose settlement cycles restore
//     some of the lost liquidity;
//   - the deterministic Binomial and Riffle Pipelines wrapped in
//     schedule.SelfHeal (survivor re-embedding with chain fallback).
//
// Every completed run is recorded and replayed through
// simulate.RunAudit; an invariant violation fails the experiment. The
// (rate, column, replicate) grid — including the audit replays — fans
// out over the worker pool; cells aggregate sequentially, so the table
// is identical for any Workers value.
func TableE(sc Scale, opt Options) (*Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n, k, rates, reps := tableEParams(sc)
	maxTicks := 8*(n+k) + 200
	type column struct {
		label string
		cfg   core.Config
	}
	cols := []column{
		{"randomized", core.Config{Algorithm: core.AlgoRandomized}},
		{"rarest-first", core.Config{Algorithm: core.AlgoRandomized, Policy: randomized.RarestFirst}},
		{"credit s=1", core.Config{Algorithm: core.AlgoRandomized, CreditLimit: 1}},
		{"triangular", core.Config{Algorithm: core.AlgoTriangular}},
		{"binomial+heal", core.Config{Algorithm: core.AlgoBinomialPipeline}},
		{"riffle+heal", core.Config{Algorithm: core.AlgoRiffle}},
	}
	tbl := &Table{
		ID:    "tableE",
		Title: fmt.Sprintf("Completion time vs churn rate (n=%d, k=%d, optimal %d)", n, k, analysis.CooperativeLowerBound(n, k)),
		Header: append([]string{"crash rate"}, func() []string {
			labels := make([]string, len(cols))
			for i, c := range cols {
				labels[i] = c.label
			}
			return labels
		}()...),
		Notes: []string{
			"crashed clients rejoin wiped after 10 ticks; nonzero rows also lose 2% of transfers",
			fmt.Sprintf("cells are mean completion ticks over %d seeds; 'stall' = exceeded %d ticks", reps, maxTicks),
			"every completed run is replayed through simulate.RunAudit",
			"expected: unconstrained randomized degrades gracefully; barter-constrained runs stall hardest",
		},
	}
	prog := opt.Progress.Serialized()
	store, err := opt.openStore()
	if err != nil {
		return nil, err
	}
	defer store.close()
	type outcome struct {
		Stalled bool    `json:"stalled,omitempty"`
		Ticks   float64 `json:"ticks"`
	}
	// Flat job index: ((rate, col), rep), matching the sequential
	// aggregation below.
	perRate := len(cols) * reps
	outs, err := parallel.Map(opt.workers(), len(rates)*perRate, func(j int) (outcome, error) {
		rate := rates[j/perRate]
		ci := (j % perRate) / reps
		rep := j % reps
		if ci == 0 && rep == 0 {
			prog.log("tableE: crash rate %g", rate)
		}
		cfg := cols[ci].cfg
		cfg.Nodes, cfg.Blocks = n, k
		cfg.Seed = uint64(4000 + 100*ci + rep)
		cfg.RecordTrace = true
		cfg.MaxTicks = maxTicks
		if rate > 0 {
			cfg.Fault = &fault.Options{
				Seed:              uint64(7000 + 100*ci + rep),
				CrashRate:         rate,
				MaxCrashes:        n / 4,
				RejoinDelay:       10,
				RejoinLosesBlocks: true,
				LossRate:          churnLoss,
			}
		}
		// A cached cell skips RunAudit along with the simulation — the
		// audit already passed when the cell was first computed and
		// recorded, so replaying it would re-verify an identical trace.
		tag := fmt.Sprintf("tableE: %s rate=%g", cols[ci].label, rate)
		return cellCached(store, tag, cfg.Seed, rep, func() (outcome, error) {
			res, err := core.Run(cfg)
			if errors.Is(err, core.ErrStalled) {
				return outcome{Stalled: true}, nil
			}
			if err != nil {
				return outcome{}, fmt.Errorf("tableE %s rate=%g: %w", cols[ci].label, rate, err)
			}
			if aerr := simulate.RunAudit(res.SimConfig, res.Sim); aerr != nil {
				return outcome{}, fmt.Errorf("tableE %s rate=%g: %w", cols[ci].label, rate, aerr)
			}
			return outcome{Ticks: float64(res.CompletionTime)}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	for ri, rate := range rates {
		row := []string{fmt.Sprintf("%g", rate)}
		for ci := range cols {
			sum, done, stalls := 0.0, 0, 0
			for rep := 0; rep < reps; rep++ {
				o := outs[ri*perRate+ci*reps+rep]
				if o.Stalled {
					stalls++
					continue
				}
				sum += o.Ticks
				done++
			}
			switch {
			case done == 0:
				row = append(row, "stall")
			case stalls > 0:
				row = append(row, fmt.Sprintf("%.1f (%d stall)", sum/float64(done), stalls))
			default:
				row = append(row, fmt.Sprintf("%.1f", sum/float64(done)))
			}
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}
