package experiment

import (
	"strconv"
	"strings"
	"testing"
)

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{
		"ci": ScaleCI, "small": ScaleCI, "medium": ScaleMedium,
		"med": ScaleMedium, "full": ScaleFull, "paper": ScaleFull, "FULL": ScaleFull,
	} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale should error")
	}
	if ScaleCI.String() != "ci" || ScaleFull.String() != "full" || Scale(9).String() != "scale(9)" {
		t.Error("Scale.String mismatch")
	}
}

func TestFig3CI(t *testing.T) {
	fig, err := Fig3(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(fig.Series))
	}
	meas, opt := fig.Series[0], fig.Series[1]
	if len(meas.Points) != 4 {
		t.Fatalf("points = %d, want 4", len(meas.Points))
	}
	// Shape checks: T grows with n and stays above the bound.
	for i, p := range meas.Points {
		if p.Mean < opt.Points[i].Mean {
			t.Errorf("n=%g: measured %v below optimal %v", p.X, p.Mean, opt.Points[i].Mean)
		}
		if p.Stalled != 0 {
			t.Errorf("n=%g: unexpected stall", p.X)
		}
	}
	first, last := meas.Points[0], meas.Points[len(meas.Points)-1]
	if last.Mean <= first.Mean {
		t.Errorf("T should grow with n: first %v, last %v", first.Mean, last.Mean)
	}
	// CSV and render sanity.
	csv := fig.CSV()
	if !strings.Contains(csv, "randomized") || !strings.Contains(csv, "series,n") {
		t.Errorf("CSV malformed:\n%s", csv)
	}
	plot := fig.Render(60, 12)
	if !strings.Contains(plot, "fig3") || !strings.Contains(plot, "log scale") {
		t.Errorf("render malformed:\n%s", plot)
	}
}

func TestFig4CIShapeLinearInK(t *testing.T) {
	fig, err := Fig4(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	meas := fig.Series[0].Points
	// Doubling k should roughly double T (within 40% tolerance at this
	// tiny scale).
	for i := 1; i < len(meas); i++ {
		ratioK := meas[i].X / meas[i-1].X
		ratioT := meas[i].Mean / meas[i-1].Mean
		if ratioT < ratioK*0.5 || ratioT > ratioK*1.6 {
			t.Errorf("k %g->%g: T ratio %.2f far from k ratio %.2f",
				meas[i-1].X, meas[i].X, ratioT, ratioK)
		}
	}
}

func TestFig5CIDegreeEffect(t *testing.T) {
	fig, err := Fig5(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// First series is the degree sweep: lowest degree must not beat the
	// highest degree.
	pts := fig.Series[0].Points
	lo, hi := pts[0], pts[len(pts)-1]
	if lo.Mean < hi.Mean {
		t.Errorf("degree %g (T=%v) outperformed degree %g (T=%v)", lo.X, lo.Mean, hi.X, hi.Mean)
	}
}

func TestFig6CICreditCliff(t *testing.T) {
	fig, err := Fig6(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := fig.Series[0].Points
	lo, hi := s1[0], s1[len(s1)-1]
	if lo.Mean <= hi.Mean {
		t.Errorf("credit-limited low degree %g (T=%v) should be slower than degree %g (T=%v)",
			lo.X, lo.Mean, hi.X, hi.Mean)
	}
}

func TestFig7CIRarestBeatsRandomAtLowDegree(t *testing.T) {
	f6, err := Fig6(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f7, err := Fig7(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare the lowest-degree s=1 points: Rarest-First must do no
	// worse than Random (the paper's fourfold-threshold improvement).
	r6, r7 := f6.Series[0].Points[0], f7.Series[0].Points[0]
	if r7.Mean > r6.Mean*1.1 {
		t.Errorf("rarest-first at degree %g (T=%v) worse than random (T=%v)", r7.X, r7.Mean, r6.Mean)
	}
}

func TestTableACI(t *testing.T) {
	tbl, err := TableA(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	// Binomial pipeline column (last) must equal the bound column (2)
	// when n is a power of two.
	for _, row := range tbl.Rows {
		if row[0] == "8" || row[0] == "16" || row[0] == "32" {
			if row[2] != row[6] {
				t.Errorf("n=%s k=%s: pipeline %s != bound %s", row[0], row[1], row[6], row[2])
			}
		}
	}
	out := tbl.Render()
	if !strings.Contains(out, "tableA") || !strings.Contains(out, "lower bound") {
		t.Errorf("render malformed:\n%s", out)
	}
	if !strings.Contains(tbl.CSV(), "binomial pipeline") {
		t.Error("CSV missing header")
	}
}

func TestTableBCI(t *testing.T) {
	tbl, err := TableB(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// The k coefficient must land near 1 even at CI scale.
	var aRow []string
	for _, r := range tbl.Rows {
		if r[0] == "a (k)" {
			aRow = r
		}
	}
	if aRow == nil {
		t.Fatal("missing a (k) row")
	}
	a, err := strconv.ParseFloat(aRow[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if a < 0.9 || a > 1.5 {
		t.Errorf("k coefficient %v far from 1", a)
	}
}

func TestTableCCI(t *testing.T) {
	tbl, err := TableC(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[7] != "pass" {
			t.Errorf("n=%s k=%s: strict-barter audit failed: %s", row[0], row[1], row[7])
		}
	}
}

func TestProgressCallback(t *testing.T) {
	var lines []string
	prog := Progress(func(format string, args ...any) {
		lines = append(lines, strings.TrimSpace(format))
	})
	if _, err := TableA(ScaleCI, Options{Progress: prog}); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Error("progress callback never invoked")
	}
}

func TestOptionsValidateRejectsNegativeWorkers(t *testing.T) {
	if err := (Options{Workers: -1}).Validate(); err == nil {
		t.Fatal("Options{Workers: -1}.Validate() = nil, want error")
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero Options must validate: %v", err)
	}
	if _, err := Fig3(ScaleCI, Options{Workers: -3}); err == nil {
		t.Fatal("Fig3 must reject negative Workers")
	}
}

func TestFigureRenderEmpty(t *testing.T) {
	f := &Figure{ID: "x", Title: "t"}
	if out := f.Render(40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty render: %q", out)
	}
}

func TestTableDCI(t *testing.T) {
	tbl, err := TableD(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("empty table")
	}
	out := tbl.Render()
	if !strings.Contains(out, "bittorrent") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func TestTableECI(t *testing.T) {
	tbl, err := TableE(ScaleCI, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rates := tableECIRateCount(t)
	if len(tbl.Rows) != rates {
		t.Fatalf("tableE has %d rows for %d churn rates", len(tbl.Rows), rates)
	}
	if len(tbl.Header) != 7 { // crash rate + six scheduler columns
		t.Fatalf("tableE header has %d columns: %v", len(tbl.Header), tbl.Header)
	}
	// The zero-churn row is fault-free: no scheduler may stall there.
	for i, cell := range tbl.Rows[0][1:] {
		if strings.Contains(cell, "stall") {
			t.Errorf("column %q stalls with zero churn", tbl.Header[i+1])
		}
	}
	out := tbl.Render()
	if !strings.Contains(out, "randomized") || !strings.Contains(out, "triangular") {
		t.Errorf("render malformed:\n%s", out)
	}
}

func tableECIRateCount(t *testing.T) int {
	t.Helper()
	_, _, rates, _ := tableEParams(ScaleCI)
	return len(rates)
}
