package experiment

import (
	"errors"
	"fmt"

	"barterdist/internal/analysis"
	"barterdist/internal/core"
	"barterdist/internal/parallel"
)

func tableAParams(sc Scale) []struct{ n, k int } {
	switch sc {
	case ScaleFull:
		return []struct{ n, k int }{
			{16, 16}, {64, 64}, {256, 256}, {1024, 512}, {1024, 1024},
		}
	case ScaleMedium:
		return []struct{ n, k int }{{16, 16}, {64, 64}, {256, 256}}
	default:
		return []struct{ n, k int }{{8, 8}, {16, 16}, {32, 16}}
	}
}

// TableA reproduces Section 2.2's comparison of the simple algorithms
// against the Theorem 1 lower bound: every row's simulated completion
// time comes from an actual engine run, next to the closed form. The
// (row, algorithm) grid fans out over the worker pool; rows are
// assembled sequentially, so the table is identical for any Workers.
func TableA(sc Scale, opt Options) (*Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:    "tableA",
		Title: "Baseline completion times vs the cooperative lower bound (simulated)",
		Header: []string{
			"n", "k", "lower bound", "pipeline", "3-ary tree", "binomial tree", "binomial pipeline",
		},
		Notes: []string{
			"pipeline = k+n-2; 3-ary tree = 3(k-1)+3*depth; binomial tree = k*ceil(log2 n); binomial pipeline meets the bound for n=2^r",
		},
	}
	algos := []core.Algorithm{
		core.AlgoPipeline, core.AlgoMulticastTree, core.AlgoBinomialTree, core.AlgoBinomialPipeline,
	}
	params := tableAParams(sc)
	prog := opt.Progress.Serialized()
	cells, err := parallel.Map(opt.workers(), len(params)*len(algos), func(j int) (int, error) {
		p, algo := params[j/len(algos)], algos[j%len(algos)]
		if j%len(algos) == 0 {
			prog.log("tableA: n=%d k=%d", p.n, p.k)
		}
		res, err := core.Run(core.Config{
			Nodes: p.n, Blocks: p.k, Algorithm: algo, TreeArity: 3,
		})
		if err != nil {
			return 0, fmt.Errorf("tableA %s n=%d k=%d: %w", algo, p.n, p.k, err)
		}
		return res.CompletionTime, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range params {
		row := []string{
			fmt.Sprint(p.n), fmt.Sprint(p.k),
			fmt.Sprint(analysis.CooperativeLowerBound(p.n, p.k)),
		}
		for ai := range algos {
			row = append(row, fmt.Sprint(cells[pi*len(algos)+ai]))
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

func tableBParams(sc Scale) (ns, ks []int, reps int) {
	switch sc {
	case ScaleFull:
		return []int{64, 256, 1024, 4096}, []int{250, 500, 1000, 2000}, 3
	case ScaleMedium:
		return []int{64, 256, 1024}, []int{100, 200, 400}, 2
	default:
		return []int{16, 64, 256}, []int{30, 60, 120}, 1
	}
}

// TableB reproduces the least-squares analysis of Section 2.4.4: fit
// T ≈ a·k + b·log2(n) + c over a matrix of randomized-algorithm runs and
// compare against the paper's quoted coefficients (1.01, 2.5, -2.2).
func TableB(sc Scale, opt Options) (*Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	ns, ks, reps := tableBParams(sc)
	var specs []runSpec
	for _, n := range ns {
		for _, k := range ks {
			specs = append(specs, runSpec{
				tag: fmt.Sprintf("tableB: n=%d k=%d", n, k),
				cfg: core.Config{
					Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized, DownloadCap: 1,
				},
				reps: reps,
				seed: uint64(8000 + n*7 + k),
			})
		}
	}
	pts, err := runPoints(opt, specs)
	if err != nil {
		return nil, fmt.Errorf("tableB: %w", err)
	}
	var obs []analysis.FitObservation
	i := 0
	for _, n := range ns {
		for _, k := range ks {
			obs = append(obs, analysis.FitObservation{N: n, K: k, T: pts[i].Mean})
			i++
		}
	}
	fit, err := analysis.FitLinear2(obs)
	if err != nil {
		return nil, fmt.Errorf("tableB: %w", err)
	}
	r2 := analysis.RSquared(fit, obs)
	paper := analysis.PaperRandomizedFit
	tbl := &Table{
		ID:     "tableB",
		Title:  "Least-squares fit T = a*k + b*log2(n) + c (randomized, complete graph)",
		Header: []string{"coefficient", "measured", "paper"},
		Rows: [][]string{
			{"a (k)", fmt.Sprintf("%.4f", fit.KCoeff), fmt.Sprintf("%.2f", paper.KCoeff)},
			{"b (log2 n)", fmt.Sprintf("%.4f", fit.LogNCoeff), fmt.Sprintf("%.2f", paper.LogNCoeff)},
			{"c (const)", fmt.Sprintf("%.4f", fit.Const), fmt.Sprintf("%.2f", paper.Const)},
			{"R^2", fmt.Sprintf("%.5f", r2), "-"},
			{"observations", fmt.Sprint(len(obs)), "matrix over (n,k)"},
		},
		Notes: []string{
			"paper estimates T <= 1.01k + 2.5 log2 n - 2.2 over its (n,k) matrix",
		},
	}
	return tbl, nil
}

func tableCParams(sc Scale) []struct{ n, k int } {
	switch sc {
	case ScaleFull:
		return []struct{ n, k int }{
			{16, 16}, {64, 64}, {256, 256}, {1024, 1024}, {101, 1000}, {1001, 1000},
		}
	case ScaleMedium:
		return []struct{ n, k int }{{16, 16}, {64, 64}, {256, 256}, {33, 128}}
	default:
		return []struct{ n, k int }{{8, 8}, {16, 16}, {9, 32}}
	}
}

// TableC quantifies the price of barter (Section 3): the cooperative
// optimum (Binomial Pipeline, simulated), the strict-barter Riffle
// Pipeline (simulated and audited against the strict-barter verifier),
// and the two lower bounds. The "price" column is the extra time strict
// barter costs over the cooperative optimum. Rows run concurrently;
// each row's pair of simulations stays on one worker.
func TableC(sc Scale, opt Options) (*Table, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:    "tableC",
		Title: "The price of barter: cooperative vs strict-barter completion times",
		Header: []string{
			"n", "k", "coop bound", "binomial pipeline", "strict bound", "riffle pipeline", "price (ticks)", "strict barter audit",
		},
		Notes: []string{
			"price = riffle - binomial pipeline ~= N extra ticks, the Theta(N) startup cost of Theorem 2",
			"credit-limited barter closes the gap: the hypercube run obeys s=1 for n,k powers of two (see mechanism tests)",
		},
	}
	params := tableCParams(sc)
	prog := opt.Progress.Serialized()
	rows, err := parallel.Map(opt.workers(), len(params), func(i int) ([]string, error) {
		p := params[i]
		prog.log("tableC: n=%d k=%d", p.n, p.k)
		coop, err := core.Run(core.Config{Nodes: p.n, Blocks: p.k, Algorithm: core.AlgoBinomialPipeline})
		if err != nil {
			return nil, fmt.Errorf("tableC coop n=%d k=%d: %w", p.n, p.k, err)
		}
		audit := "pass"
		riffle, err := core.Run(core.Config{
			Nodes: p.n, Blocks: p.k, Algorithm: core.AlgoRiffle, Verify: core.MechanismStrict,
		})
		if err != nil {
			if riffle == nil || errors.Is(err, core.ErrStalled) {
				return nil, fmt.Errorf("tableC riffle n=%d k=%d: %w", p.n, p.k, err)
			}
			audit = err.Error() // verification failure: report it in the table
		}
		return []string{
			fmt.Sprint(p.n), fmt.Sprint(p.k),
			fmt.Sprint(analysis.CooperativeLowerBound(p.n, p.k)),
			fmt.Sprint(coop.CompletionTime),
			fmt.Sprint(analysis.StrictBarterLowerBound(p.n, p.k)),
			fmt.Sprint(riffle.CompletionTime),
			fmt.Sprint(riffle.CompletionTime - coop.CompletionTime),
			audit,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	tbl.Rows = rows
	return tbl, nil
}
