package experiment

import (
	"fmt"
	"sync" //lint:concurrency-containment Progress.Serialized guards user-facing progress output from internal/parallel workers; never touches simulation state

	"barterdist/internal/analysis"
	"barterdist/internal/core"
	"barterdist/internal/randomized"
)

// Progress receives human-readable status lines during long experiments.
// A nil Progress is silently ignored.
type Progress func(format string, args ...any)

func (p Progress) log(format string, args ...any) {
	if p != nil {
		p(format, args...)
	}
}

// Serialized wraps p so that calls from concurrent workers are
// mutually excluded; the underlying callback therefore never runs
// twice at once and needs no locking of its own. A nil receiver stays
// nil (logging remains a no-op), so Serialized is always safe to call.
func (p Progress) Serialized() Progress {
	if p == nil {
		return nil
	}
	var mu sync.Mutex //lint:concurrency-containment see the sync import note: serializes progress callbacks, not results
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		p(format, args...)
	}
}

// fig3Params returns (k, node counts, reps-for-n) for the scale.
func fig3Params(sc Scale) (int, []int, func(n int) int) {
	switch sc {
	case ScaleFull:
		return 1000, []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 10000},
			func(n int) int {
				if n >= 4096 {
					return 2
				}
				return 3
			}
	case ScaleMedium:
		return 300, []int{16, 64, 256, 1024}, func(int) int { return 3 }
	default:
		return 40, []int{8, 16, 32, 64}, func(int) int { return 2 }
	}
}

// Fig3 reproduces Figure 3: mean completion time of the randomized
// cooperative algorithm on the complete graph as a function of n, with k
// fixed. The paper reports T growing roughly linearly in log n, staying
// within a few percent of k - 1 + log2 n.
func Fig3(sc Scale, opt Options) (*Figure, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	k, ns, reps := fig3Params(sc)
	fig := &Figure{
		ID:     "fig3",
		Title:  fmt.Sprintf("Randomized cooperative: T vs n (k=%d, complete graph, Random policy)", k),
		XLabel: "n",
		YLabel: "mean completion time (ticks)",
		XLog:   true,
	}
	specs := make([]runSpec, len(ns))
	for i, n := range ns {
		specs[i] = runSpec{
			tag: fmt.Sprintf("fig3: n=%d k=%d", n, k),
			cfg: core.Config{
				Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized, DownloadCap: 1,
			},
			reps: reps(n),
			seed: uint64(3000 + n),
		}
	}
	pts, err := runPoints(opt, specs)
	if err != nil {
		return nil, fmt.Errorf("fig3: %w", err)
	}
	measured := Series{Name: "randomized"}
	optimal := Series{Name: "optimal k-1+ceil(log2 n)"}
	for i, n := range ns {
		pts[i].X = float64(n)
		measured.Points = append(measured.Points, pts[i])
		optimal.Points = append(optimal.Points, Point{
			X: float64(n), Mean: float64(analysis.CooperativeLowerBound(n, k)), Reps: 1,
		})
	}
	fig.Series = []Series{measured, optimal}
	fig.Notes = append(fig.Notes, "paper: T in [1040,1100] for k=1000 over n in [10,10000]")
	sortSeriesPoints(fig)
	return fig, nil
}

func fig4Params(sc Scale) (int, []int, int) {
	switch sc {
	case ScaleFull:
		return 1000, []int{10, 30, 100, 300, 1000, 3000, 10000}, 3
	case ScaleMedium:
		return 256, []int{10, 30, 100, 300, 1000}, 3
	default:
		return 32, []int{8, 16, 32, 64}, 2
	}
}

// Fig4 reproduces Figure 4: T vs k with n fixed (log-log in the paper);
// T must grow linearly in k.
func Fig4(sc Scale, opt Options) (*Figure, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n, ks, reps := fig4Params(sc)
	fig := &Figure{
		ID:     "fig4",
		Title:  fmt.Sprintf("Randomized cooperative: T vs k (n=%d, complete graph, Random policy)", n),
		XLabel: "k",
		YLabel: "mean completion time (ticks)",
		XLog:   true,
	}
	specs := make([]runSpec, len(ks))
	for i, k := range ks {
		specs[i] = runSpec{
			tag: fmt.Sprintf("fig4: n=%d k=%d", n, k),
			cfg: core.Config{
				Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized, DownloadCap: 1,
			},
			reps: reps,
			seed: uint64(4000 + k),
		}
	}
	pts, err := runPoints(opt, specs)
	if err != nil {
		return nil, fmt.Errorf("fig4: %w", err)
	}
	measured := Series{Name: "randomized"}
	optimal := Series{Name: "optimal k-1+ceil(log2 n)"}
	for i, k := range ks {
		pts[i].X = float64(k)
		measured.Points = append(measured.Points, pts[i])
		optimal.Points = append(optimal.Points, Point{
			X: float64(k), Mean: float64(analysis.CooperativeLowerBound(n, k)), Reps: 1,
		})
	}
	fig.Series = []Series{measured, optimal}
	fig.Notes = append(fig.Notes, "paper: T linear in k at fixed n")
	sortSeriesPoints(fig)
	return fig, nil
}

func fig5Params(sc Scale) (n int, ks []int, degrees []int, reps int) {
	switch sc {
	case ScaleFull:
		return 1000, []int{1000, 2000}, []int{4, 6, 8, 10, 15, 20, 25, 30, 40, 60, 80, 100}, 3
	case ScaleMedium:
		return 256, []int{256, 512}, []int{4, 6, 8, 12, 16, 24, 40, 64}, 3
	default:
		return 64, []int{64}, []int{4, 8, 16, 32}, 2
	}
}

// Fig5 reproduces Figure 5: completion time vs overlay degree on random
// regular graphs (cooperative randomized algorithm). The paper observes
// a steep drop converging by degree ~25 for n = 1000, independent of k,
// and that a hypercube overlay (degree ~log2 n) matches the complete
// graph.
func Fig5(sc Scale, opt Options) (*Figure, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	n, ks, degrees, reps := fig5Params(sc)
	fig := &Figure{
		ID:     "fig5",
		Title:  fmt.Sprintf("Randomized cooperative: T vs overlay degree (n=%d, random regular)", n),
		XLabel: "overlay graph degree",
		YLabel: "mean completion time (ticks)",
	}
	// Specs per k: the degree sweep followed by the hypercube point.
	var specs []runSpec
	for _, k := range ks {
		for _, d := range degrees {
			specs = append(specs, runSpec{
				tag: fmt.Sprintf("fig5: k=%d degree=%d", k, d),
				cfg: core.Config{
					Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized,
					Overlay: core.OverlayRandomRegular, Degree: d, DownloadCap: 1,
					MaxTicks: stallBudget(n, k),
				},
				reps: reps,
				seed: uint64(5000 + k*131 + d),
			})
		}
		specs = append(specs, runSpec{
			tag: fmt.Sprintf("fig5: k=%d hypercube overlay", k),
			cfg: core.Config{
				Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized,
				Overlay: core.OverlayHypercube, DownloadCap: 1,
				MaxTicks: stallBudget(n, k),
			},
			reps: reps,
			seed: uint64(5500 + k),
		})
	}
	pts, err := runPoints(opt, specs)
	if err != nil {
		return nil, fmt.Errorf("fig5: %w", err)
	}
	i := 0
	for _, k := range ks {
		series := Series{Name: fmt.Sprintf("k=%d random-regular", k)}
		for _, d := range degrees {
			pts[i].X = float64(d)
			series.Points = append(series.Points, pts[i])
			i++
		}
		fig.Series = append(fig.Series, series)
		pts[i].X = float64(analysis.CeilLog2(n))
		fig.Series = append(fig.Series, Series{
			Name:   fmt.Sprintf("k=%d hypercube overlay", k),
			Points: []Point{pts[i]},
		})
		i++
	}
	fig.Notes = append(fig.Notes,
		"paper: T converges to near-optimal once degree ~ 25 (n=1000); hypercube overlay matches the complete graph")
	sortSeriesPoints(fig)
	return fig, nil
}

// stallBudget is the tick cap used where runs may stall; stalled runs
// are plotted at the budget ("off the charts" in the paper).
func stallBudget(n, k int) int {
	b := 5 * (k + n)
	if b < 2000 {
		b = 2000
	}
	return b
}

func creditFigParams(sc Scale, policy randomized.Policy) (n, k int, s1Degrees []int, sdDegrees []int, sdProduct, reps int) {
	switch sc {
	case ScaleFull:
		s1 := []int{40, 50, 60, 70, 75, 80, 85, 90, 100, 120, 140}
		if policy == randomized.RarestFirst {
			// The Rarest-First threshold sits ~4x lower (paper: ~20), so
			// sweep the low-degree region instead.
			s1 = []int{8, 12, 16, 20, 25, 30, 40, 60, 80}
		}
		return 1000, 1000, s1, []int{10, 20, 25, 50, 100}, 100, 3
	case ScaleMedium:
		s1 := []int{16, 24, 32, 40, 48, 64, 80, 96}
		if policy == randomized.RarestFirst {
			s1 = []int{6, 8, 12, 16, 24, 32, 48}
		}
		return 256, 256, s1, []int{8, 16, 32, 64}, 64, 3
	default:
		return 64, 64, []int{8, 16, 24, 32, 48}, []int{8, 16, 32}, 32, 2
	}
}

// creditFigure is the shared implementation of Figures 6 and 7: the
// credit-limited randomized algorithm on random regular overlays, with
// an s=1 curve and a constant s·d curve.
func creditFigure(id string, policy randomized.Policy, sc Scale, opt Options) (*Figure, error) {
	n, k, s1Degrees, sdDegrees, sdProduct, reps := creditFigParams(sc, policy)
	fig := &Figure{
		ID: id,
		Title: fmt.Sprintf("Credit-limited barter: T vs degree (n=%d, k=%d, %s policy)",
			n, k, policy),
		XLabel: "overlay graph degree",
		YLabel: "mean completion time (ticks)",
	}
	budget := stallBudget(n, k)
	spec := func(tag string, d, credit int, seed uint64) runSpec {
		return runSpec{
			tag: tag,
			cfg: core.Config{
				Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized,
				Overlay: core.OverlayRandomRegular, Degree: d,
				Policy: policy, CreditLimit: credit,
				DownloadCap: 1, MaxTicks: budget,
			},
			reps: reps,
			seed: seed,
		}
	}
	var specs []runSpec
	for _, d := range s1Degrees {
		specs = append(specs, spec(fmt.Sprintf("%s: s=1 degree=%d", id, d), d, 1, uint64(6000+d)))
	}
	for _, d := range sdDegrees {
		credit := sdProduct / d
		if credit < 1 {
			credit = 1
		}
		specs = append(specs, spec(fmt.Sprintf("%s: s=%d degree=%d", id, credit, d), d, credit, uint64(6600+d)))
	}
	pts, err := runPoints(opt, specs)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	s1 := Series{Name: "s=1"}
	for i, d := range s1Degrees {
		pts[i].X = float64(d)
		s1.Points = append(s1.Points, pts[i])
	}
	sd := Series{Name: fmt.Sprintf("s*d=%d", sdProduct)}
	for i, d := range sdDegrees {
		p := pts[len(s1Degrees)+i]
		p.X = float64(d)
		sd.Points = append(sd.Points, p)
	}
	fig.Series = []Series{s1, sd}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("stalled runs are plotted at the tick budget %d (the paper's \"off the charts\")", budget))
	sortSeriesPoints(fig)
	return fig, nil
}

// Fig6 reproduces Figure 6: credit-limited barter with Random block
// selection. The paper reports a sharp performance cliff below degree
// ~80 for n = 1000, s = 1, and shows that raising the per-pair
// credit on a sparse graph (constant s·d) does not substitute for
// degree.
func Fig6(sc Scale, opt Options) (*Figure, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	fig, err := creditFigure("fig6", randomized.Random, sc, opt)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "paper: sharp transition near degree 80 (Random policy)")
	return fig, nil
}

// Fig7 reproduces Figure 7: the same experiment under Rarest-First block
// selection; the paper reports the degree threshold dropping roughly
// fourfold, to about 20.
func Fig7(sc Scale, opt Options) (*Figure, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	fig, err := creditFigure("fig7", randomized.RarestFirst, sc, opt)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "paper: threshold drops ~4x vs Random, to around degree 20")
	return fig, nil
}
