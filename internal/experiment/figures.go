package experiment

import (
	"errors"
	"fmt"

	"barterdist/internal/analysis"
	"barterdist/internal/core"
	"barterdist/internal/randomized"
)

// Progress receives human-readable status lines during long experiments.
// A nil Progress is silently ignored.
type Progress func(format string, args ...any)

func (p Progress) log(format string, args ...any) {
	if p != nil {
		p(format, args...)
	}
}

// replicate runs reps copies of the config (varying the seed), treating
// stalls (core.ErrStalled) as runs pinned at the tick budget, exactly as
// the paper plots "off the charts" points.
func replicate(cfg core.Config, reps int, baseSeed uint64) (Point, error) {
	var times []float64
	stalled := 0
	for rep := 0; rep < reps; rep++ {
		cfg.Seed = baseSeed + uint64(rep)*0x9e3779b97f4a7c15
		res, err := core.Run(cfg)
		switch {
		case err == nil:
			times = append(times, float64(res.CompletionTime))
		case errors.Is(err, core.ErrStalled):
			stalled++
			times = append(times, float64(cfg.MaxTicks))
		default:
			return Point{}, err
		}
	}
	sum, err := analysis.Summarize(times)
	if err != nil {
		return Point{}, err
	}
	return Point{Mean: sum.Mean, CI95: sum.CI95, Reps: reps, Stalled: stalled}, nil
}

// fig3Params returns (k, node counts, reps-for-n) for the scale.
func fig3Params(sc Scale) (int, []int, func(n int) int) {
	switch sc {
	case ScaleFull:
		return 1000, []int{16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 10000},
			func(n int) int {
				if n >= 4096 {
					return 2
				}
				return 3
			}
	case ScaleMedium:
		return 300, []int{16, 64, 256, 1024}, func(int) int { return 3 }
	default:
		return 40, []int{8, 16, 32, 64}, func(int) int { return 2 }
	}
}

// Fig3 reproduces Figure 3: mean completion time of the randomized
// cooperative algorithm on the complete graph as a function of n, with k
// fixed. The paper reports T growing roughly linearly in log n, staying
// within a few percent of k - 1 + log2 n.
func Fig3(sc Scale, prog Progress) (*Figure, error) {
	k, ns, reps := fig3Params(sc)
	fig := &Figure{
		ID:     "fig3",
		Title:  fmt.Sprintf("Randomized cooperative: T vs n (k=%d, complete graph, Random policy)", k),
		XLabel: "n",
		YLabel: "mean completion time (ticks)",
		XLog:   true,
	}
	measured := Series{Name: "randomized"}
	optimal := Series{Name: "optimal k-1+ceil(log2 n)"}
	for _, n := range ns {
		prog.log("fig3: n=%d k=%d", n, k)
		pt, err := replicate(core.Config{
			Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized, DownloadCap: 1,
		}, reps(n), uint64(3000+n))
		if err != nil {
			return nil, fmt.Errorf("fig3 n=%d: %w", n, err)
		}
		pt.X = float64(n)
		measured.Points = append(measured.Points, pt)
		optimal.Points = append(optimal.Points, Point{
			X: float64(n), Mean: float64(analysis.CooperativeLowerBound(n, k)), Reps: 1,
		})
	}
	fig.Series = []Series{measured, optimal}
	fig.Notes = append(fig.Notes, "paper: T in [1040,1100] for k=1000 over n in [10,10000]")
	sortSeriesPoints(fig)
	return fig, nil
}

func fig4Params(sc Scale) (int, []int, int) {
	switch sc {
	case ScaleFull:
		return 1000, []int{10, 30, 100, 300, 1000, 3000, 10000}, 3
	case ScaleMedium:
		return 256, []int{10, 30, 100, 300, 1000}, 3
	default:
		return 32, []int{8, 16, 32, 64}, 2
	}
}

// Fig4 reproduces Figure 4: T vs k with n fixed (log-log in the paper);
// T must grow linearly in k.
func Fig4(sc Scale, prog Progress) (*Figure, error) {
	n, ks, reps := fig4Params(sc)
	fig := &Figure{
		ID:     "fig4",
		Title:  fmt.Sprintf("Randomized cooperative: T vs k (n=%d, complete graph, Random policy)", n),
		XLabel: "k",
		YLabel: "mean completion time (ticks)",
		XLog:   true,
	}
	measured := Series{Name: "randomized"}
	optimal := Series{Name: "optimal k-1+ceil(log2 n)"}
	for _, k := range ks {
		prog.log("fig4: n=%d k=%d", n, k)
		pt, err := replicate(core.Config{
			Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized, DownloadCap: 1,
		}, reps, uint64(4000+k))
		if err != nil {
			return nil, fmt.Errorf("fig4 k=%d: %w", k, err)
		}
		pt.X = float64(k)
		measured.Points = append(measured.Points, pt)
		optimal.Points = append(optimal.Points, Point{
			X: float64(k), Mean: float64(analysis.CooperativeLowerBound(n, k)), Reps: 1,
		})
	}
	fig.Series = []Series{measured, optimal}
	fig.Notes = append(fig.Notes, "paper: T linear in k at fixed n")
	sortSeriesPoints(fig)
	return fig, nil
}

func fig5Params(sc Scale) (n int, ks []int, degrees []int, reps int) {
	switch sc {
	case ScaleFull:
		return 1000, []int{1000, 2000}, []int{4, 6, 8, 10, 15, 20, 25, 30, 40, 60, 80, 100}, 3
	case ScaleMedium:
		return 256, []int{256, 512}, []int{4, 6, 8, 12, 16, 24, 40, 64}, 3
	default:
		return 64, []int{64}, []int{4, 8, 16, 32}, 2
	}
}

// Fig5 reproduces Figure 5: completion time vs overlay degree on random
// regular graphs (cooperative randomized algorithm). The paper observes
// a steep drop converging by degree ~25 for n = 1000, independent of k,
// and that a hypercube overlay (degree ~log2 n) matches the complete
// graph.
func Fig5(sc Scale, prog Progress) (*Figure, error) {
	n, ks, degrees, reps := fig5Params(sc)
	fig := &Figure{
		ID:     "fig5",
		Title:  fmt.Sprintf("Randomized cooperative: T vs overlay degree (n=%d, random regular)", n),
		XLabel: "overlay graph degree",
		YLabel: "mean completion time (ticks)",
	}
	for _, k := range ks {
		series := Series{Name: fmt.Sprintf("k=%d random-regular", k)}
		for _, d := range degrees {
			prog.log("fig5: k=%d degree=%d", k, d)
			pt, err := replicate(core.Config{
				Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized,
				Overlay: core.OverlayRandomRegular, Degree: d, DownloadCap: 1,
				MaxTicks: stallBudget(n, k),
			}, reps, uint64(5000+k*131+d))
			if err != nil {
				return nil, fmt.Errorf("fig5 k=%d d=%d: %w", k, d, err)
			}
			pt.X = float64(d)
			series.Points = append(series.Points, pt)
		}
		fig.Series = append(fig.Series, series)

		// Hypercube comparison point at degree ≈ log2 n.
		prog.log("fig5: k=%d hypercube overlay", k)
		pt, err := replicate(core.Config{
			Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized,
			Overlay: core.OverlayHypercube, DownloadCap: 1,
			MaxTicks: stallBudget(n, k),
		}, reps, uint64(5500+k))
		if err != nil {
			return nil, fmt.Errorf("fig5 hypercube k=%d: %w", k, err)
		}
		pt.X = float64(analysis.CeilLog2(n))
		fig.Series = append(fig.Series, Series{
			Name:   fmt.Sprintf("k=%d hypercube overlay", k),
			Points: []Point{pt},
		})
	}
	fig.Notes = append(fig.Notes,
		"paper: T converges to near-optimal once degree ~ 25 (n=1000); hypercube overlay matches the complete graph")
	sortSeriesPoints(fig)
	return fig, nil
}

// stallBudget is the tick cap used where runs may stall; stalled runs
// are plotted at the budget ("off the charts" in the paper).
func stallBudget(n, k int) int {
	b := 5 * (k + n)
	if b < 2000 {
		b = 2000
	}
	return b
}

func creditFigParams(sc Scale, policy randomized.Policy) (n, k int, s1Degrees []int, sdDegrees []int, sdProduct, reps int) {
	switch sc {
	case ScaleFull:
		s1 := []int{40, 50, 60, 70, 75, 80, 85, 90, 100, 120, 140}
		if policy == randomized.RarestFirst {
			// The Rarest-First threshold sits ~4x lower (paper: ~20), so
			// sweep the low-degree region instead.
			s1 = []int{8, 12, 16, 20, 25, 30, 40, 60, 80}
		}
		return 1000, 1000, s1, []int{10, 20, 25, 50, 100}, 100, 3
	case ScaleMedium:
		s1 := []int{16, 24, 32, 40, 48, 64, 80, 96}
		if policy == randomized.RarestFirst {
			s1 = []int{6, 8, 12, 16, 24, 32, 48}
		}
		return 256, 256, s1, []int{8, 16, 32, 64}, 64, 3
	default:
		return 64, 64, []int{8, 16, 24, 32, 48}, []int{8, 16, 32}, 32, 2
	}
}

// creditFigure is the shared implementation of Figures 6 and 7: the
// credit-limited randomized algorithm on random regular overlays, with
// an s=1 curve and a constant s·d curve.
func creditFigure(id string, policy randomized.Policy, sc Scale, prog Progress) (*Figure, error) {
	n, k, s1Degrees, sdDegrees, sdProduct, reps := creditFigParams(sc, policy)
	fig := &Figure{
		ID: id,
		Title: fmt.Sprintf("Credit-limited barter: T vs degree (n=%d, k=%d, %s policy)",
			n, k, policy),
		XLabel: "overlay graph degree",
		YLabel: "mean completion time (ticks)",
	}
	budget := stallBudget(n, k)
	run := func(d, credit int, seed uint64) (Point, error) {
		pt, err := replicate(core.Config{
			Nodes: n, Blocks: k, Algorithm: core.AlgoRandomized,
			Overlay: core.OverlayRandomRegular, Degree: d,
			Policy: policy, CreditLimit: credit,
			DownloadCap: 1, MaxTicks: budget,
		}, reps, seed)
		pt.X = float64(d)
		return pt, err
	}

	s1 := Series{Name: "s=1"}
	for _, d := range s1Degrees {
		prog.log("%s: s=1 degree=%d", id, d)
		pt, err := run(d, 1, uint64(6000+d))
		if err != nil {
			return nil, fmt.Errorf("%s s=1 d=%d: %w", id, d, err)
		}
		s1.Points = append(s1.Points, pt)
	}
	sd := Series{Name: fmt.Sprintf("s*d=%d", sdProduct)}
	for _, d := range sdDegrees {
		credit := sdProduct / d
		if credit < 1 {
			credit = 1
		}
		prog.log("%s: s=%d degree=%d", id, credit, d)
		pt, err := run(d, credit, uint64(6600+d))
		if err != nil {
			return nil, fmt.Errorf("%s s*d d=%d: %w", id, d, err)
		}
		sd.Points = append(sd.Points, pt)
	}
	fig.Series = []Series{s1, sd}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("stalled runs are plotted at the tick budget %d (the paper's \"off the charts\")", budget))
	sortSeriesPoints(fig)
	return fig, nil
}

// Fig6 reproduces Figure 6: credit-limited barter with Random block
// selection. The paper reports a sharp performance cliff below degree
// ~80 for n = k = 1000, s = 1, and shows that raising the per-pair
// credit on a sparse graph (constant s·d) does not substitute for
// degree.
func Fig6(sc Scale, prog Progress) (*Figure, error) {
	fig, err := creditFigure("fig6", randomized.Random, sc, prog)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "paper: sharp transition near degree 80 (Random policy)")
	return fig, nil
}

// Fig7 reproduces Figure 7: the same experiment under Rarest-First block
// selection; the paper reports the degree threshold dropping roughly
// fourfold, to about 20.
func Fig7(sc Scale, prog Progress) (*Figure, error) {
	fig, err := creditFigure("fig7", randomized.RarestFirst, sc, prog)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, "paper: threshold drops ~4x vs Random, to around degree 20")
	return fig, nil
}
