package experiment

import (
	"strings"
	"testing"
)

// TestTableFByteEqualAcrossWorkerCounts is the acceptance criterion
// for the adversary experiment, stated directly: the Table F CSV is
// byte-identical for worker counts 1, 2, and 8. generatorsCI covers
// tableF too, but this focused test names the contract and is what
// the CI adversary smoke job (-run TableF) exercises under -race.
func TestTableFByteEqualAcrossWorkerCounts(t *testing.T) {
	emit := func(workers int) string {
		tbl, err := TableF(ScaleCI, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return tbl.CSV()
	}
	want := emit(1)
	for _, w := range []int{2, 8} {
		if got := emit(w); got != want {
			t.Errorf("workers=%d CSV differs from workers=1:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
				w, want, w, got)
		}
	}
}

// TestTableFShape pins the experiment's structure at CI scale: the
// sweep starts at the adversary-free baseline and every row carries
// all four engine/mechanism cells, none empty. (The qualitative
// content — audits, starvation, quarantine — is enforced inside the
// generator itself, which fails on any violation.)
func TestTableFShape(t *testing.T) {
	tbl, err := TableF(ScaleCI, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Header) != 5 {
		t.Fatalf("columns = %d, want 5 (frac + 4 cells): %v", len(tbl.Header), tbl.Header)
	}
	if len(tbl.Rows) == 0 || tbl.Rows[0][0] != "0" {
		t.Fatalf("first row must be the adversary-free baseline: %v", tbl.Rows)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Errorf("row %d has %d cells, want %d", i, len(row), len(tbl.Header))
		}
		for j, cell := range row[1:] {
			if strings.TrimSpace(cell) == "" {
				t.Errorf("row %d col %d is empty", i, j+1)
			}
		}
	}
}
