package fault

import (
	"math"

	"barterdist/internal/checkpoint"
)

// Snapshot appends the plan's mutable position to enc: the three
// sub-stream RNG states, the pending crash arrival, and the remaining
// crash budget. The Options are NOT serialized — a resumed run rebuilds
// the plan from its own config (NewPlan + Acquire) and then overwrites
// the position, so a snapshot can never smuggle in a different fault
// model.
func (p *Plan) Snapshot(enc *checkpoint.Encoder) {
	p.arrivalRng.Snapshot(enc)
	p.victimRng.Snapshot(enc)
	p.lossRng.Snapshot(enc)
	enc.F64(p.nextCrash)
	enc.Int(p.crashesLeft)
}

// RestoreState overwrites the plan's mutable position from dec. The
// plan must already be acquired by the resuming engine; the fresh
// NewPlan's initial draws are discarded and replaced wholesale.
func (p *Plan) RestoreState(dec *checkpoint.Decoder) error {
	if err := p.arrivalRng.RestoreState(dec); err != nil {
		return err
	}
	if err := p.victimRng.RestoreState(dec); err != nil {
		return err
	}
	if err := p.lossRng.RestoreState(dec); err != nil {
		return err
	}
	nextCrash := dec.F64()
	crashesLeft := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if math.IsNaN(nextCrash) || nextCrash < 0 && !math.IsInf(nextCrash, 1) {
		return checkpoint.Corruptf("fault: invalid next crash arrival %v", nextCrash)
	}
	if crashesLeft < -1 {
		return checkpoint.Corruptf("fault: invalid crash budget %d", crashesLeft)
	}
	p.nextCrash = nextCrash
	p.crashesLeft = crashesLeft
	return nil
}
