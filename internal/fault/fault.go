// Package fault is the deterministic adversity layer shared by both
// simulators: it schedules node crashes, departures and rejoins, and
// per-transfer loss/corruption, all driven by the repository's seeded
// RNG so that every faulty run is exactly reproducible.
//
// The paper's analysis (Section 2.3.4) assumes a static, reliable
// swarm; this package supplies the missing half of the robustness
// story. A Plan is a stream of fault decisions:
//
//   - crash arrivals follow a Poisson process with rate
//     Options.CrashRate (events per tick in the synchronous engine,
//     per unit time in the asynchronous one — the two time axes are
//     deliberately identical, 1 tick = 1 unit);
//   - each arrival picks a victim among the currently alive clients,
//     either uniformly or adversarially ("kill the most useful peer",
//     the worst case for pipeline-structured schedules);
//   - crashed nodes optionally rejoin after Options.RejoinDelay,
//     with or without their block cache;
//   - every individual transfer is lost with probability
//     Options.LossRate or corrupted (delivered bytes fail
//     verification and are discarded) with probability
//     Options.CorruptRate.
//
// The server (node 0) is immune: a dead server makes every completion
// question vacuous, and the paper's model has no server redundancy.
//
// A Plan is single-use and stateful; engines call Acquire before
// consuming it so that accidentally sharing one Plan across two runs
// fails loudly instead of silently decorrelating the streams. Crash
// arrivals, victim selection, and transfer fates draw from three
// independent sub-streams of the seed, so enabling loss does not
// perturb the crash schedule of the same seed.
package fault

import (
	"fmt"
	"math"

	"barterdist/internal/xrand"
)

// Kind labels a fault event.
type Kind uint8

// The event kinds.
const (
	// Crash marks a node leaving the system (cleanly or not: in-flight
	// transfers to and from it are aborted by the engine).
	Crash Kind = iota + 1
	// Rejoin marks a previously crashed node coming back.
	Rejoin
	// Arrive marks a fresh peer entering an open-system swarm
	// (internal/arrival). The node id has never been present before and
	// its block cache is empty; schedulers may treat it exactly like a
	// wiped Rejoin.
	Arrive
	// Depart marks a peer leaving an open-system swarm for good — at
	// completion, after a seeding linger, or as a selfish early exit.
	// Engines tear it down exactly like a Crash, but it never returns.
	Depart
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Rejoin:
		return "rejoin"
	case Arrive:
		return "arrive"
	case Depart:
		return "depart"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one applied fault, as recorded by an engine's fault log.
// Time is the tick (synchronous engine, integral values) or the
// continuous timestamp (asynchronous engine) at which the event took
// effect.
type Event struct {
	Time float64
	Node int32
	Kind Kind
	// Wiped is set on Rejoin events when the node came back empty
	// (Options.RejoinLosesBlocks); audit replay needs it to reproduce
	// the post-rejoin state without access to the original Options.
	Wiped bool
}

// Victim selects the crash-victim policy.
type Victim uint8

// The victim policies.
const (
	// VictimUniform crashes a uniformly random alive client.
	VictimUniform Victim = iota
	// VictimMostUseful crashes the alive client with the highest
	// usefulness score (ties broken toward the lowest node id) — the
	// adversarial "kill the most-useful peer" policy. For both engines
	// the score is the victim's current block count, which for
	// pipeline-structured schedules is exactly the node the schedule
	// can least afford to lose.
	VictimMostUseful
)

// String implements fmt.Stringer.
func (v Victim) String() string {
	switch v {
	case VictimUniform:
		return "uniform"
	case VictimMostUseful:
		return "most-useful"
	default:
		return fmt.Sprintf("victim(%d)", uint8(v))
	}
}

// Options configures a Plan. The zero value describes a fault-free
// plan (no crashes, no loss); engines treat a nil *Plan and a
// zero-rate Plan identically.
type Options struct {
	// Seed drives every fault decision.
	Seed uint64
	// CrashRate is the Poisson rate of crash arrivals per tick (or per
	// unit time). 0 disables crashes.
	CrashRate float64
	// MaxCrashes caps the total number of crash events (0 = unbounded).
	// Useful to keep survivor overlays connected in experiments.
	MaxCrashes int
	// RejoinDelay is how long a crashed node stays away before
	// rejoining. 0 means crashed nodes never return (permanent
	// departure); the engines then exclude them from the completion
	// criterion.
	RejoinDelay float64
	// RejoinLosesBlocks makes a rejoining node come back with an empty
	// cache (it must re-download everything), modeling a fresh peer
	// reusing the slot. When false the node keeps the blocks it held.
	RejoinLosesBlocks bool
	// LossRate is the iid probability that a scheduled transfer
	// vanishes (the block never arrives). 0 disables loss.
	LossRate float64
	// CorruptRate is the iid probability that a transfer arrives but
	// fails verification and is discarded by the receiver. Effectively
	// another loss channel, but reported separately.
	CorruptRate float64
	// Victim selects the crash-victim policy.
	Victim Victim
}

// Validate checks the options without mutating them; every rate must
// be finite and the probabilities must lie in [0, 1).
func (o *Options) Validate() error {
	check := func(name string, v float64, maxExclusive bool) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("fault: %s = %v must be finite and >= 0", name, v)
		}
		if maxExclusive && v >= 1 {
			return fmt.Errorf("fault: %s = %v must be < 1", name, v)
		}
		return nil
	}
	if err := check("CrashRate", o.CrashRate, false); err != nil {
		return err
	}
	if err := check("RejoinDelay", o.RejoinDelay, false); err != nil {
		return err
	}
	if err := check("LossRate", o.LossRate, true); err != nil {
		return err
	}
	if err := check("CorruptRate", o.CorruptRate, true); err != nil {
		return err
	}
	if o.MaxCrashes < 0 {
		return fmt.Errorf("fault: MaxCrashes = %d must be >= 0", o.MaxCrashes)
	}
	switch o.Victim {
	case VictimUniform, VictimMostUseful:
	default:
		return fmt.Errorf("fault: unknown victim policy %d", uint8(o.Victim))
	}
	return nil
}

// Plan is a seeded, single-use stream of fault decisions. Engines
// query it in a fixed order, so a given seed always yields the same
// adversity regardless of what the scheduler under test does with it.
type Plan struct {
	opts Options

	arrivalRng *xrand.Rand // crash inter-arrival times
	victimRng  *xrand.Rand // victim selection
	lossRng    *xrand.Rand // per-transfer fates

	nextCrash   float64
	crashesLeft int // decremented per arrival; <0 means unbounded
	acquired    bool
}

// NewPlan validates opts and returns a fresh Plan.
func NewPlan(opts Options) (*Plan, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(opts.Seed)
	p := &Plan{
		opts:        opts,
		arrivalRng:  root.Split(),
		victimRng:   root.Split(),
		lossRng:     root.Split(),
		crashesLeft: opts.MaxCrashes,
	}
	if opts.MaxCrashes == 0 {
		p.crashesLeft = -1
	}
	p.nextCrash = p.drawArrival(0)
	return p, nil
}

// Options returns the plan's configuration.
func (p *Plan) Options() Options { return p.opts }

// Acquire marks the plan as consumed by an engine run. Reusing a plan
// across runs is a bug (the decision streams would be continuations,
// not reproductions), so the second Acquire fails.
func (p *Plan) Acquire() error {
	if p.acquired {
		return fmt.Errorf("fault: Plan already consumed by a previous run; build one Plan per run")
	}
	p.acquired = true
	return nil
}

// drawArrival returns the next Poisson arrival strictly after from, or
// +Inf when crashes are disabled or exhausted.
func (p *Plan) drawArrival(from float64) float64 {
	if p.opts.CrashRate <= 0 || p.crashesLeft == 0 {
		return math.Inf(1)
	}
	// Exponential inter-arrival; 1-U keeps the argument in (0, 1].
	u := p.arrivalRng.Float64()
	return from + -math.Log(1-u)/p.opts.CrashRate
}

// NextCrash returns the next pending crash arrival time. ok is false
// when no further crashes will occur.
func (p *Plan) NextCrash() (at float64, ok bool) {
	if math.IsInf(p.nextCrash, 1) {
		return 0, false
	}
	return p.nextCrash, true
}

// TakeCrash consumes the pending arrival and draws the next one.
func (p *Plan) TakeCrash() {
	if p.crashesLeft > 0 {
		p.crashesLeft--
	}
	p.nextCrash = p.drawArrival(p.nextCrash)
}

// PickVictim selects the node to crash among clients 1..n-1 for which
// eligible reports true. score is only consulted under
// VictimMostUseful and may be nil otherwise. It returns -1 when no
// client is eligible. The RNG is advanced only by the uniform policy,
// and only when at least one client is eligible.
func (p *Plan) PickVictim(n int, eligible func(v int) bool, score func(v int) int) int {
	switch p.opts.Victim {
	case VictimMostUseful:
		best, bestScore := -1, -1
		for v := 1; v < n; v++ {
			if !eligible(v) {
				continue
			}
			if s := score(v); s > bestScore {
				best, bestScore = v, s
			}
		}
		return best
	default: // VictimUniform
		count := 0
		for v := 1; v < n; v++ {
			if eligible(v) {
				count++
			}
		}
		if count == 0 {
			return -1
		}
		target := p.victimRng.Intn(count)
		for v := 1; v < n; v++ {
			if !eligible(v) {
				continue
			}
			if target == 0 {
				return v
			}
			target--
		}
		return -1 // unreachable
	}
}

// Lossy reports whether the plan can drop or corrupt transfers at all;
// engines use it to skip per-transfer sampling (and keep the zero-rate
// RNG stream empty) on loss-free plans.
func (p *Plan) Lossy() bool { return p.opts.LossRate > 0 || p.opts.CorruptRate > 0 }

// Drop samples one transfer's fate: lost (vanished in the network) or
// corrupt (arrived but discarded). At most one of the two is set.
// Engines must call it exactly once per scheduled transfer, in
// schedule order, so the stream is reproducible.
func (p *Plan) Drop() (lost, corrupt bool) {
	if p.opts.LossRate > 0 {
		lost = p.lossRng.Float64() < p.opts.LossRate
	}
	if !lost && p.opts.CorruptRate > 0 {
		corrupt = p.lossRng.Float64() < p.opts.CorruptRate
	}
	return lost, corrupt
}

// Rejoins reports whether crashed nodes come back, and after how long.
func (p *Plan) Rejoins() (delay float64, ok bool) {
	return p.opts.RejoinDelay, p.opts.RejoinDelay > 0
}

// RejoinWipes reports whether rejoining nodes lose their block cache.
func (p *Plan) RejoinWipes() bool { return p.opts.RejoinLosesBlocks }
