package fault_test

// Regression tests for the loss-vs-crash double-count hazard: a
// transfer that is in flight when its receiver (or sender) crashes is
// ABORTED by the crash — it must not additionally roll the fault
// layer's loss dice, appear in the trace as lost, or inflate the
// loss counters. "Counted exactly once" concretely means:
//
//   - LostTransfers + CorruptTransfers equals the number of
//     loss-marked trace entries (every drop appears exactly once);
//   - no recorded transfer spans a crash of one of its endpoints
//     (the crash abort wins; the loss sample never fires for it);
//   - RunAudit's independent replay re-derives the same counters.
//
// Both engines are pinned. The external test package avoids an import
// cycle: fault is imported by both engines.

import (
	"testing"

	"barterdist/internal/asim"
	"barterdist/internal/core"
	"barterdist/internal/fault"
	"barterdist/internal/simulate"
)

func TestSyncLossAndCrashCountedOnce(t *testing.T) {
	res, err := core.Run(core.Config{
		Nodes: 24, Blocks: 16,
		Algorithm:   core.AlgoRandomized,
		Seed:        9,
		RecordTrace: true,
		MaxTicks:    4000,
		Fault: &fault.Options{
			Seed:              77,
			CrashRate:         0.05,
			MaxCrashes:        5,
			RejoinDelay:       5,
			RejoinLosesBlocks: true,
			LossRate:          0.2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := res.Sim
	crashes := 0
	for _, ev := range sim.FaultLog {
		if ev.Kind == fault.Crash {
			crashes++
		}
	}
	if crashes == 0 || sim.LostTransfers == 0 {
		t.Fatalf("scenario must exercise both channels: crashes=%d lost=%d", crashes, sim.LostTransfers)
	}
	marked := sim.Trace.Drops()
	if marked != sim.LostTransfers+sim.CorruptTransfers {
		t.Errorf("loss-marked trace entries = %d, counters say %d+%d — a drop was counted twice or not at all",
			marked, sim.LostTransfers, sim.CorruptTransfers)
	}
	if aerr := simulate.RunAudit(res.SimConfig, sim); aerr != nil {
		t.Errorf("audit replay: %v", aerr)
	}
}

func TestAsyncLossAndCrashCountedOnce(t *testing.T) {
	plan, err := fault.NewPlan(fault.Options{
		Seed:              77,
		CrashRate:         0.05,
		MaxCrashes:        5,
		RejoinDelay:       5,
		RejoinLosesBlocks: true,
		LossRate:          0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := asim.Config{
		Nodes: 24, Blocks: 16,
		DownloadPorts: 1,
		RecordTrace:   true,
		Fault:         plan,
	}
	res, err := asim.Run(cfg, asim.NewAsyncRandomized(nil, false, 1, 9))
	if err != nil {
		t.Fatal(err)
	}

	type crash struct {
		at   float64
		node int32
	}
	var crashes []crash
	for _, ev := range res.FaultLog {
		if ev.Kind == fault.Crash {
			crashes = append(crashes, crash{ev.Time, ev.Node})
		}
	}
	if len(crashes) == 0 || res.Lost == 0 {
		t.Fatalf("scenario must exercise both channels: crashes=%d lost=%d", len(crashes), res.Lost)
	}

	// Every drop appears exactly once in the trace.
	marked := 0
	for _, tr := range res.Trace {
		if tr.Lost {
			marked++
		}
	}
	if marked != res.Lost+res.Corrupt {
		t.Errorf("loss-marked trace records = %d, counters say %d+%d — a drop was counted twice or not at all",
			marked, res.Lost, res.Corrupt)
	}

	// No recorded transfer (delivered OR lost) may span a crash of one
	// of its endpoints: the crash aborts the transfer before the loss
	// sample could ever fire, so such a record would be a double count.
	for _, tr := range res.Trace {
		for _, c := range crashes {
			if (c.node == tr.To || c.node == tr.From) && tr.Start < c.at && c.at < tr.End {
				t.Errorf("transfer %d->%d:B%d [%g,%g] spans crash of node %d at %g — it should have been aborted, not sampled for loss",
					tr.From, tr.To, tr.Block, tr.Start, tr.End, c.node, c.at)
			}
		}
	}

	// The independent replay re-derives the same execution.
	auditCfg := cfg
	auditCfg.Fault = nil // the consumed plan must not leak; replay uses FaultLog
	if aerr := asim.RunAudit(auditCfg, res); aerr != nil {
		t.Errorf("audit replay: %v", aerr)
	}
}
