package fault

import (
	"math"
	"testing"
)

func TestZeroOptionsIsFaultFree(t *testing.T) {
	p, err := NewPlan(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.NextCrash(); ok {
		t.Fatal("zero-rate plan schedules a crash")
	}
	if p.Lossy() {
		t.Fatal("zero-rate plan reports itself lossy")
	}
	if _, ok := p.Rejoins(); ok {
		t.Fatal("zero-rate plan schedules rejoins")
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{CrashRate: -1},
		{CrashRate: math.NaN()},
		{CrashRate: math.Inf(1)},
		{LossRate: 1},
		{LossRate: -0.5},
		{CorruptRate: 1.5},
		{RejoinDelay: -2},
		{MaxCrashes: -1},
		{Victim: Victim(99)},
	}
	for i, o := range bad {
		if _, err := NewPlan(o); err == nil {
			t.Errorf("case %d: NewPlan(%+v) accepted invalid options", i, o)
		}
	}
}

func TestPlanIsSingleUse(t *testing.T) {
	p, err := NewPlan(Options{Seed: 3, CrashRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if err := p.Acquire(); err == nil {
		t.Fatal("second Acquire succeeded; plans must be single-use")
	}
}

func TestCrashArrivalsDeterministicAndPoisson(t *testing.T) {
	draw := func() []float64 {
		p, err := NewPlan(Options{Seed: 42, CrashRate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		var out []float64
		for i := 0; i < 50; i++ {
			at, ok := p.NextCrash()
			if !ok {
				t.Fatal("unbounded plan ran out of crashes")
			}
			out = append(out, at)
			p.TakeCrash()
		}
		return out
	}
	a, b := draw(), draw()
	prev := 0.0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identical seeds: %v vs %v", i, a[i], b[i])
		}
		if a[i] <= prev {
			t.Fatalf("arrival %d = %v not strictly increasing (prev %v)", i, a[i], prev)
		}
		prev = a[i]
	}
	// Mean inter-arrival should be near 1/rate = 2 over 50 draws.
	mean := a[len(a)-1] / float64(len(a))
	if mean < 1 || mean > 4 {
		t.Fatalf("mean inter-arrival %v wildly off 1/rate = 2", mean)
	}
}

func TestMaxCrashesCapsArrivals(t *testing.T) {
	p, err := NewPlan(Options{Seed: 5, CrashRate: 1, MaxCrashes: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, ok := p.NextCrash(); !ok {
			break
		}
		p.TakeCrash()
		n++
		if n > 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("MaxCrashes=3 plan yielded %d arrivals", n)
	}
}

func TestPickVictimMostUseful(t *testing.T) {
	p, err := NewPlan(Options{Seed: 1, CrashRate: 1, Victim: VictimMostUseful})
	if err != nil {
		t.Fatal(err)
	}
	score := []int{99, 4, 7, 7, 2}
	v := p.PickVictim(5,
		func(v int) bool { return v != 3 }, // the first max-score node is ineligible
		func(v int) int { return score[v] })
	if v != 2 {
		t.Fatalf("most-useful victim = %d, want 2 (highest eligible score, lowest id)", v)
	}
	if v := p.PickVictim(5, func(int) bool { return false }, func(v int) int { return 0 }); v != -1 {
		t.Fatalf("no eligible clients but victim = %d", v)
	}
}

func TestPickVictimUniformRespectsEligibility(t *testing.T) {
	p, err := NewPlan(Options{Seed: 7, CrashRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for i := 0; i < 200; i++ {
		v := p.PickVictim(6, func(v int) bool { return v%2 == 1 }, nil)
		if v%2 != 1 || v <= 0 || v >= 6 {
			t.Fatalf("uniform victim %d outside the eligible set", v)
		}
		seen[v]++
	}
	for _, v := range []int{1, 3, 5} {
		if seen[v] == 0 {
			t.Fatalf("eligible victim %d never selected in 200 draws", v)
		}
	}
}

func TestDropRatesAndExclusivity(t *testing.T) {
	p, err := NewPlan(Options{Seed: 11, LossRate: 0.3, CorruptRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	lost, corrupt := 0, 0
	const n = 20000
	for i := 0; i < n; i++ {
		l, c := p.Drop()
		if l && c {
			t.Fatal("a transfer cannot be both lost and corrupt")
		}
		if l {
			lost++
		}
		if c {
			corrupt++
		}
	}
	if f := float64(lost) / n; f < 0.27 || f > 0.33 {
		t.Fatalf("loss frequency %v far from 0.3", f)
	}
	// Corruption is sampled only on non-lost transfers: expect 0.7*0.2.
	if f := float64(corrupt) / n; f < 0.11 || f > 0.17 {
		t.Fatalf("corrupt frequency %v far from 0.14", f)
	}
}

func TestIndependentStreams(t *testing.T) {
	// Enabling loss must not perturb the crash schedule of the same seed.
	a, err := NewPlan(Options{Seed: 99, CrashRate: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(Options{Seed: 99, CrashRate: 0.25, LossRate: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		at1, _ := a.NextCrash()
		at2, _ := b.NextCrash()
		if at1 != at2 {
			t.Fatalf("arrival %d: %v with loss disabled vs %v enabled", i, at1, at2)
		}
		b.Drop() // interleave loss draws; must not touch the arrival stream
		a.TakeCrash()
		b.TakeCrash()
	}
}

func TestKindAndVictimStrings(t *testing.T) {
	if Crash.String() != "crash" || Rejoin.String() != "rejoin" {
		t.Fatal("Kind strings changed")
	}
	if VictimUniform.String() != "uniform" || VictimMostUseful.String() != "most-useful" {
		t.Fatal("Victim strings changed")
	}
}
