package bt

import (
	"testing"

	"barterdist/internal/analysis"
	"barterdist/internal/asim"
	"barterdist/internal/graph"
	"barterdist/internal/xrand"
)

func peerGraph(t *testing.T, n, d int, seed uint64) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, d, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("peer graph disconnected")
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("missing graph should error")
	}
	g := graph.Complete(4)
	if _, err := New(Options{Graph: g, UnchokeSlots: -1}); err == nil {
		t.Error("negative slots should error")
	}
	if _, err := New(Options{Graph: g, ChokeInterval: -1}); err == nil {
		t.Error("negative interval should error")
	}
	p, err := New(Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if p.opts.UnchokeSlots != 3 || p.opts.ChokeInterval != 10 || p.opts.OptimisticInterval != 30 {
		t.Errorf("defaults = %+v", p.opts)
	}
}

func TestBitTorrentCompletes(t *testing.T) {
	const n, k = 64, 64
	g := peerGraph(t, n, 12, 3)
	p, err := New(Options{Graph: g, DownloadPorts: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := asim.Run(asim.Config{Nodes: n, Blocks: k, DownloadPorts: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	opt := float64(analysis.CooperativeLowerBound(n, k))
	if res.CompletionTime < opt {
		t.Fatalf("T = %v below lower bound %v", res.CompletionTime, opt)
	}
	if res.Transfers != (n-1)*k {
		t.Fatalf("transfers = %d, want %d", res.Transfers, (n-1)*k)
	}
	t.Logf("BitTorrent: T=%.1f vs optimal %.0f (%.0f%% overhead)",
		res.CompletionTime, opt, 100*(res.CompletionTime-opt)/opt)
}

func TestBitTorrentSlowerThanUnchokedRandomized(t *testing.T) {
	// The paper's Section 4 finding: choking wastes capacity relative to
	// the free randomized algorithm; BitTorrent lands >30% above optimal
	// while the unconstrained randomized protocol stays close to it.
	const n, k = 64, 128
	g := peerGraph(t, n, 12, 7)

	p, err := New(Options{Graph: g, DownloadPorts: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	btRes, err := asim.Run(asim.Config{Nodes: n, Blocks: k, DownloadPorts: 1}, p)
	if err != nil {
		t.Fatal(err)
	}

	free := asim.NewAsyncRandomized(g, true, 1, 9)
	freeRes, err := asim.Run(asim.Config{Nodes: n, Blocks: k, DownloadPorts: 1}, free)
	if err != nil {
		t.Fatal(err)
	}

	if btRes.CompletionTime < freeRes.CompletionTime {
		t.Errorf("BitTorrent (T=%v) beat the unconstrained randomized protocol (T=%v)",
			btRes.CompletionTime, freeRes.CompletionTime)
	}
	opt := float64(analysis.CooperativeLowerBound(n, k))
	t.Logf("optimal %.0f | randomized %.1f (+%.0f%%) | bittorrent %.1f (+%.0f%%)",
		opt, freeRes.CompletionTime, 100*(freeRes.CompletionTime-opt)/opt,
		btRes.CompletionTime, 100*(btRes.CompletionTime-opt)/opt)
}

func TestSeedNeverReceives(t *testing.T) {
	const n, k = 32, 16
	g := peerGraph(t, n, 8, 11)
	p, err := New(Options{Graph: g, DownloadPorts: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := asim.Run(asim.Config{Nodes: n, Blocks: k, DownloadPorts: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	// (n-1)*k useful deliveries and none to the seed.
	if res.Transfers != (n-1)*k {
		t.Fatalf("transfers = %d, want %d", res.Transfers, (n-1)*k)
	}
	if res.ClientCompletion[0] != 0 {
		t.Fatal("seed should have no completion time")
	}
}

func TestUnchokeSlotsRespected(t *testing.T) {
	const n = 16
	g := graph.Complete(n)
	p, err := New(Options{Graph: g, UnchokeSlots: 2, DownloadPorts: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := asim.Run(asim.Config{Nodes: n, Blocks: 8, DownloadPorts: 1}, p); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < n; v++ {
		if len(p.unchoked[v]) > 2 {
			t.Fatalf("node %d has %d unchoked peers, cap 2", v, len(p.unchoked[v]))
		}
	}
}

func TestBitTorrentDeterministicBySeed(t *testing.T) {
	const n, k = 32, 32
	g := peerGraph(t, n, 8, 6)
	run := func() float64 {
		p, err := New(Options{Graph: g, DownloadPorts: 1, Seed: 13})
		if err != nil {
			t.Fatal(err)
		}
		res, err := asim.Run(asim.Config{Nodes: n, Blocks: k, DownloadPorts: 1}, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.CompletionTime
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different T: %v vs %v", a, b)
	}
}
