// Package bt implements a BitTorrent-style protocol on the asynchronous
// simulator — the comparison the paper reports as ongoing work in
// Section 4, where it finds BitTorrent "more than 30% worse than the
// optimal time" even with tuned parameters.
//
// The protocol follows the deployed BitTorrent mechanics the paper
// describes:
//
//   - a fixed peer set (the overlay graph);
//   - choking: each node uploads only to a bounded number of unchoked
//     peers — the reciprocating peers that delivered the most data in
//     the last choke window (tit-for-tat), recomputed periodically;
//   - one rotating optimistic unchoke that gives a random interested
//     choked peer a chance to bootstrap reciprocation;
//   - Rarest-First piece selection;
//   - the seed (node 0) has no download rates to reciprocate, so it
//     unchokes peers round-robin, spreading its upload capacity.
//
// The paper's critique — "a typical BitTorrent client almost always
// uploads to a certain minimum number of neighbors irrespective of the
// reciprocal download rate" — is exactly the optimistic unchoke this
// implementation models.
package bt

import (
	"fmt"
	"sort"

	"barterdist/internal/asim"
	"barterdist/internal/graph"
	"barterdist/internal/xrand"
)

// Options configures the protocol.
type Options struct {
	// Graph is the fixed peer set (required).
	Graph *graph.Graph
	// UnchokeSlots is the number of reciprocal unchoke slots per node,
	// excluding the optimistic slot. Default 3 (classic BitTorrent).
	UnchokeSlots int
	// ChokeInterval is the tit-for-tat recomputation period in time
	// units. Default 10 (classic: 10 seconds with 1-second blocks).
	ChokeInterval float64
	// OptimisticInterval is the optimistic-unchoke rotation period.
	// Default 30.
	OptimisticInterval float64
	// DownloadPorts mirrors asim.Config.DownloadPorts.
	DownloadPorts int
	// Seed drives all random choices.
	Seed uint64
}

// Protocol is the BitTorrent-style asim.Protocol.
type Protocol struct {
	opts Options
	rng  *xrand.Rand

	freq []int // block replication counts (rarest-first)
	// recv[v][i] = blocks v received from its i-th neighbor during the
	// current choke window.
	recv [][]float64
	// unchoked[v] = neighbor indices currently unchoked by v.
	unchoked [][]int
	// optimistic[v] = neighbor index of v's optimistic unchoke, -1 none.
	optimistic []int
	// rr[v] = round-robin cursor over v's unchoke set.
	rr []int
	// nbrIndex[v] maps neighbor node id -> index in v's neighbor list.
	nbrIndex []map[int32]int
	ready    bool
}

var (
	_ asim.Protocol   = (*Protocol)(nil)
	_ asim.FaultAware = (*Protocol)(nil)
)

// Validate checks the options without mutating them. Zero values with
// documented defaults (UnchokeSlots, ChokeInterval, OptimisticInterval)
// are accepted.
func (o *Options) Validate() error {
	if o.Graph == nil {
		return fmt.Errorf("bt: a peer graph is required")
	}
	if o.UnchokeSlots < 0 {
		return fmt.Errorf("bt: UnchokeSlots = %d, need >= 1", o.UnchokeSlots)
	}
	if o.ChokeInterval < 0 || o.OptimisticInterval < 0 {
		return fmt.Errorf("bt: intervals must be positive")
	}
	return nil
}

// New validates the options and returns the protocol.
func New(opts Options) (*Protocol, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.UnchokeSlots == 0 {
		opts.UnchokeSlots = 3
	}
	if opts.ChokeInterval == 0 {
		opts.ChokeInterval = 10
	}
	if opts.OptimisticInterval == 0 {
		opts.OptimisticInterval = 30
	}
	return &Protocol{opts: opts, rng: xrand.New(opts.Seed)}, nil
}

// Wakeups implements asim.Protocol: timer 0 is the choke recomputation,
// timer 1 the optimistic rotation.
func (p *Protocol) Wakeups() []float64 {
	return []float64{p.opts.ChokeInterval, p.opts.OptimisticInterval}
}

// Neighbors implements asim.Protocol.
func (p *Protocol) Neighbors(v int) []int32 { return p.opts.Graph.Neighbors(v) }

func (p *Protocol) ensure(s *asim.State) {
	if p.ready {
		return
	}
	n := s.N()
	p.freq = make([]int, s.K())
	for b := range p.freq {
		p.freq[b] = 1
	}
	p.recv = make([][]float64, n)
	p.unchoked = make([][]int, n)
	p.optimistic = make([]int, n)
	p.rr = make([]int, n)
	p.nbrIndex = make([]map[int32]int, n)
	for v := 0; v < n; v++ {
		nbrs := p.opts.Graph.Neighbors(v)
		p.recv[v] = make([]float64, len(nbrs))
		p.optimistic[v] = -1
		p.nbrIndex[v] = make(map[int32]int, len(nbrs))
		for i, w := range nbrs {
			p.nbrIndex[v][w] = i
		}
	}
	// Initial state: everything choked except a bootstrap optimistic
	// unchoke per node, so the first choke window has data to rank.
	for v := 0; v < n; v++ {
		p.rotateOptimistic(v, s)
	}
	p.ready = true
}

// OnDeliver implements asim.Protocol: credit the sender for tit-for-tat
// and update rarity statistics.
func (p *Protocol) OnDeliver(from, to, block int, s *asim.State) {
	p.ensure(s)
	p.freq[block]++
	if i, ok := p.nbrIndex[to][int32(from)]; ok {
		p.recv[to][i]++
	}
}

// OnTimer implements asim.Protocol.
func (p *Protocol) OnTimer(idx int, s *asim.State) {
	p.ensure(s)
	switch idx {
	case 0:
		for v := 0; v < s.N(); v++ {
			if !s.Alive(v) {
				continue // crashed peers rebuild their sets on rejoin
			}
			p.recomputeChokes(v, s)
		}
	case 1:
		for v := 0; v < s.N(); v++ {
			if !s.Alive(v) {
				continue
			}
			p.rotateOptimistic(v, s)
		}
	}
}

// recomputeChokes re-ranks v's neighbors by data received in the last
// window and unchokes the top interested ones. The seed has nothing to
// reciprocate, so it rotates its unchoke set round-robin over interested
// peers instead.
func (p *Protocol) recomputeChokes(v int, s *asim.State) {
	nbrs := p.opts.Graph.Neighbors(v)
	if len(nbrs) == 0 {
		return
	}
	interested := func(w int32) bool {
		return s.Alive(int(w)) && s.Blocks(v).AnyMissingFrom(s.Blocks(int(w)))
	}
	p.unchoked[v] = p.unchoked[v][:0]
	if v == 0 {
		// Seed policy: rotate uniformly over interested peers.
		perm := p.rng.Perm(len(nbrs))
		for _, i := range perm {
			if len(p.unchoked[v]) == p.opts.UnchokeSlots {
				break
			}
			if interested(nbrs[i]) {
				p.unchoked[v] = append(p.unchoked[v], i)
			}
		}
	} else {
		idx := make([]int, len(nbrs))
		for i := range idx {
			idx[i] = i
		}
		// Shuffle before the stable sort so ties break randomly.
		p.rng.Shuffle(idx)
		sort.SliceStable(idx, func(a, b int) bool {
			return p.recv[v][idx[a]] > p.recv[v][idx[b]]
		})
		for _, i := range idx {
			if len(p.unchoked[v]) == p.opts.UnchokeSlots {
				break
			}
			if interested(nbrs[i]) {
				p.unchoked[v] = append(p.unchoked[v], i)
			}
		}
	}
	for i := range p.recv[v] {
		p.recv[v][i] = 0
	}
}

// rotateOptimistic picks a random interested neighbor outside the
// unchoke set.
func (p *Protocol) rotateOptimistic(v int, s *asim.State) {
	nbrs := p.opts.Graph.Neighbors(v)
	if len(nbrs) == 0 {
		return
	}
	inSet := func(i int) bool {
		for _, j := range p.unchoked[v] {
			if i == j {
				return true
			}
		}
		return false
	}
	perm := p.rng.Perm(len(nbrs))
	p.optimistic[v] = -1
	for _, i := range perm {
		if inSet(i) {
			continue
		}
		w := int(nbrs[i])
		if w == 0 || !s.Alive(w) {
			continue // never upload to the seed or a dead peer
		}
		if s.Blocks(v).AnyMissingFrom(s.Blocks(w)) || s.Blocks(v).Count() == 0 {
			p.optimistic[v] = i
			break
		}
	}
}

// NextUpload implements asim.Protocol: serve the next unchoked,
// interested peer in round-robin order with its rarest needed block.
func (p *Protocol) NextUpload(u int, s *asim.State) (asim.Upload, bool) {
	p.ensure(s)
	nbrs := p.opts.Graph.Neighbors(u)
	candidates := p.unchoked[u]
	total := len(candidates)
	if p.optimistic[u] >= 0 {
		total++
	}
	if total == 0 {
		return asim.Upload{}, false
	}
	for step := 0; step < total; step++ {
		slot := (p.rr[u] + step) % total
		var i int
		if slot < len(candidates) {
			i = candidates[slot]
		} else {
			i = p.optimistic[u]
		}
		v := int(nbrs[i])
		if v == 0 || !s.Alive(v) {
			continue
		}
		if p.opts.DownloadPorts != asim.Unlimited && s.InFlightCount(v) >= p.opts.DownloadPorts {
			continue
		}
		if b := p.rarestNeeded(u, v, s); b >= 0 {
			p.rr[u] = (slot + 1) % total
			return asim.Upload{To: v, Block: b}, true
		}
	}
	return asim.Upload{}, false
}

// recomputeFreq rebuilds rarity statistics over the alive population.
func (p *Protocol) recomputeFreq(s *asim.State) {
	p.ensure(s)
	for b := range p.freq {
		p.freq[b] = 0
	}
	for v := 0; v < s.N(); v++ {
		if s.Alive(v) {
			s.Blocks(v).AccumulateCounts(p.freq, 1)
		}
	}
}

// OnCrash implements asim.FaultAware: drop the victim's holdings from
// the rarity statistics. Its choke state is left in place — NextUpload
// and the choke timers already route around dead peers — and the recv
// credit it earned simply ages out at the next choke window.
func (p *Protocol) OnCrash(_ int, s *asim.State) { p.recomputeFreq(s) }

// OnRejoin implements asim.FaultAware.
func (p *Protocol) OnRejoin(v int, _ bool, s *asim.State) {
	p.recomputeFreq(s)
	// The returning peer starts from a clean slate: everything choked
	// except a fresh optimistic unchoke, exactly like a cold start.
	p.unchoked[v] = p.unchoked[v][:0]
	for i := range p.recv[v] {
		p.recv[v][i] = 0
	}
	p.rotateOptimistic(v, s)
}

// OnLoss implements asim.FaultAware: the sender earns no tit-for-tat
// credit for a block that never verified, which OnDeliver not being
// called already guarantees.
func (p *Protocol) OnLoss(_, _, _ int, _ bool, _ *asim.State) {}

// rarestNeeded returns the globally rarest block u can give v, or -1.
func (p *Protocol) rarestNeeded(u, v int, s *asim.State) int {
	bu, bv := s.Blocks(u), s.Blocks(v)
	// A seeder offers exactly v's complement; IterateMissing scans it
	// word-at-a-time without touching the seeder's words.
	offered := func(fn func(b int) bool) {
		if bu.Full() {
			bv.IterateMissing(fn)
		} else {
			bu.IterDiff(bv, fn)
		}
	}
	best, bestFreq, ties := -1, int(^uint(0)>>1), 0
	offered(func(b int) bool {
		if s.InFlightTo(v, b) {
			return true
		}
		switch {
		case p.freq[b] < bestFreq:
			best, bestFreq, ties = b, p.freq[b], 1
		case p.freq[b] == bestFreq:
			ties++
			if p.rng.Intn(ties) == 0 {
				best = b
			}
		}
		return true
	})
	return best
}
