// Package analysis provides the paper's closed-form completion times and
// lower bounds (Sections 2.2 and 3.1), plus the statistical tooling used
// by the experiment harness: mean/confidence-interval estimation and the
// least-squares fit of Section 2.4.4.
//
// Notation: n is the total node count (server + N clients, so N = n - 1)
// and k is the number of file blocks. All times are in ticks with the
// paper's unit upload bandwidth.
//
// The package also hosts the cross-package dataflow layer behind
// cmd/cdvet — the static certification of the determinism contract
// (DESIGN.md §13): concurrency-containment (concurrency.go), the
// shard-purity write-set analysis whose report is the prerequisite map
// for sharding the tick core (purity.go), and the escape-gate that
// holds declared hot-path functions to their baselined allocation
// behavior (escape.go, baseline.go). Both halves serve the same claim:
// the math says what the numbers should be, the analyses certify that
// the machinery measuring them stays deterministic and allocation-free.
package analysis

import "fmt"

// CeilLog2 returns ⌈log2 x⌉ for x >= 1, and 0 for x < 1.
func CeilLog2(x int) int {
	r := 0
	for 1<<uint(r) < x {
		r++
	}
	return r
}

// CooperativeLowerBound is Theorem 1: disseminating k blocks among n
// nodes (one of which starts with the file) takes at least
// k - 1 + ⌈log2 n⌉ ticks.
//
// Derivation (re-derived from the proof in the text, whose displayed
// formula is OCR-garbled): after the first k - 1 ticks the server has
// uploaded at most k - 1 blocks, so some block is still held only by the
// server; the number of holders of that block can at most double per
// tick, which takes ⌈log2 n⌉ further ticks to reach all n nodes.
func CooperativeLowerBound(n, k int) int {
	if n <= 1 {
		return 0
	}
	return k - 1 + CeilLog2(n)
}

// PipelineTime is the completion time of the chain pipeline of Section
// 2.2.1: k ticks to drain the server plus n - 2 hops for the last block.
func PipelineTime(n, k int) int {
	if n <= 1 {
		return 0
	}
	return k + n - 2
}

// BinomialTreeTime is the blockwise binomial broadcast of Section 2.2.3:
// each of the k blocks takes a full ⌈log2 n⌉-tick doubling phase.
func BinomialTreeTime(n, k int) int {
	if n <= 1 {
		return 0
	}
	return k * CeilLog2(n)
}

// BinomialPipelineTime is the optimal completion time achieved by the
// Binomial Pipeline when n is a power of two: k - 1 + log2 n, matching
// CooperativeLowerBound exactly.
func BinomialPipelineTime(n, k int) (int, error) {
	if n < 2 {
		return 0, fmt.Errorf("analysis: need n >= 2, got %d", n)
	}
	if n&(n-1) != 0 {
		return 0, fmt.Errorf("analysis: closed form requires n to be a power of two, got %d", n)
	}
	return k - 1 + CeilLog2(n), nil
}

// StrictBarterLowerBoundEqualBW is the D = U case of Theorem 2
// (re-derived): every client's first block comes from the server, at most
// one per tick, so the last client starts at tick >= N = n - 1; with
// download capacity 1 it then needs k - 1 further ticks:
// T >= N + k - 1.
func StrictBarterLowerBoundEqualBW(n, k int) int {
	if n <= 1 {
		return 0
	}
	return (n - 1) + k - 1
}

// StrictBarterLowerBound is the general-D case of Theorem 2
// (re-derived via the counting argument in the proof): at tick t at most
// min(t-1, N) clients hold any data, and barter moves blocks in pairs,
// so the system-wide upload count at tick t is at most
// 1 + 2*⌊min(t-1, N)/2⌋. The counting bound is the smallest T with
// Σ_{t=1..T} u(t) >= N*k; since strict barter is a restriction of the
// cooperative model, the result is combined with Theorem 1's bound
// (which dominates when k >> N).
func StrictBarterLowerBound(n, k int) int {
	if n <= 1 {
		return 0
	}
	coop := CooperativeLowerBound(n, k)
	needed := (n - 1) * k
	total := 0
	for t := 1; ; t++ {
		withData := t - 1
		if withData > n-1 {
			withData = n - 1
		}
		total += 1 + 2*(withData/2)
		if total >= needed {
			if t < coop {
				return coop
			}
			return t
		}
	}
}

// CreditLimitedLowerBound equals the cooperative bound (Section 3.2.2):
// the credit mechanism does not slow the information-theoretic doubling
// argument because first blocks are free.
func CreditLimitedLowerBound(n, k int) int {
	return CooperativeLowerBound(n, k)
}

// RandomizedFit are the paper's reported least-squares coefficients for
// the randomized cooperative algorithm on a complete graph
// (Section 2.4.4): T ≈ 1.01·k + 2.5·log2(n) − 2.2.
type RandomizedFit struct {
	KCoeff    float64
	LogNCoeff float64
	Const     float64
}

// PaperRandomizedFit is the fit reported in the paper's text.
var PaperRandomizedFit = RandomizedFit{KCoeff: 1.01, LogNCoeff: 2.5, Const: -2.2}

// Predict evaluates the fit at (n, k).
func (f RandomizedFit) Predict(n, k int) float64 {
	return f.KCoeff*float64(k) + f.LogNCoeff*log2(float64(n)) + f.Const
}
