package analysis

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"barterdist/internal/lint"
)

// moduleRoot is the repository root relative to this package.
const moduleRoot = "../.."

// loadFixturePkg type-checks one testdata package under a fake import
// path, mirroring internal/lint's fixture harness.
func loadFixturePkg(t *testing.T, fixture, asPath string) (*lint.Loader, *lint.Package) {
	t.Helper()
	loader, err := lint.NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", fixture), asPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", fixture, err)
	}
	return loader, pkg
}

// wantComment is one "// want \"substring\"" expectation.
type wantComment struct {
	line int
	want string
}

func parseWants(fset *token.FileSet, files []*ast.File) []wantComment {
	var wants []wantComment
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, `want "`)
				if i < 0 {
					continue
				}
				rest := text[i+len(`want "`):]
				j := strings.Index(rest, `"`)
				if j < 0 {
					continue
				}
				wants = append(wants, wantComment{
					line: fset.Position(c.Pos()).Line,
					want: rest[:j],
				})
			}
		}
	}
	return wants
}

// matchWants asserts findings fire exactly where the want comments
// say, and nowhere else.
func matchWants(t *testing.T, fset *token.FileSet, files []*ast.File, findings []lint.Finding, label string) {
	t.Helper()
	wants := parseWants(fset, files)
	matched := make([]bool, len(findings))
	for _, w := range wants {
		ok := false
		for i, f := range findings {
			if !matched[i] && f.Line == w.line && strings.Contains(f.Msg, w.want) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: expected finding at line %d containing %q; findings: %v", label, w.line, w.want, findings)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("%s: unexpected finding %s", label, f)
		}
	}
}

func TestConcurrencyContainmentFixture(t *testing.T) {
	loader, pkg := loadFixturePkg(t, "concviol", "fixture/internal/experiment/concviol")
	findings := lint.RunAnalyzers(loader.Fset, []*lint.Package{pkg}, []*lint.Analyzer{ConcurrencyContainmentAnalyzer()})
	matchWants(t, loader.Fset, pkg.Files, findings, "concviol")
}

func TestConcurrencyContainmentCoversArrival(t *testing.T) {
	// internal/arrival feeds both engines' deterministic event order;
	// it must stay OUT of the allowlist — a goroutine or channel in the
	// arrival plan would race the Poisson stream against the tick loop.
	// Every violation in the fixture must fire under the arrival path.
	loader, pkg := loadFixturePkg(t, "concviol", "fixture/internal/arrival/concviol")
	findings := lint.RunAnalyzers(loader.Fset, []*lint.Package{pkg}, []*lint.Analyzer{ConcurrencyContainmentAnalyzer()})
	matchWants(t, loader.Fset, pkg.Files, findings, "arrival/concviol")
}

func TestConcurrencyContainmentAllowsParallel(t *testing.T) {
	// The same violating code inside internal/parallel is the
	// deterministic worker pool's own implementation — silent.
	loader, pkg := loadFixturePkg(t, "concviol", "fixture/internal/parallel/concviol")
	findings := lint.RunAnalyzers(loader.Fset, []*lint.Package{pkg}, []*lint.Analyzer{ConcurrencyContainmentAnalyzer()})
	if len(findings) != 0 {
		t.Fatalf("allowlisted package should be silent, got %v", findings)
	}
}
