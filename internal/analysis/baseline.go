package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// BaselineSchema identifies the committed ANALYSIS.json format.
const BaselineSchema = "barterdist-analysis/v1"

// Baseline is the committed cdvet golden file (ANALYSIS.json at the
// module root): the purity map the sharding PR consumes plus the
// escape-gate statuses. `cdvet` with no flags recomputes both and
// fails on any drift; `cdvet -update` rewrites the file. GoVersion is
// recorded because escape-analysis and inlining verdicts move between
// toolchains — a version bump legitimately re-baselines.
type Baseline struct {
	Schema    string        `json:"schema"`
	GoVersion string        `json:"go_version"`
	Purity    *PurityReport `json:"purity"`
	Escape    *EscapeReport `json:"escape"`
}

// NewBaseline assembles a baseline from freshly-computed reports.
func NewBaseline(purity *PurityReport, escape *EscapeReport) *Baseline {
	return &Baseline{
		Schema:    BaselineSchema,
		GoVersion: runtime.Version(),
		Purity:    purity,
		Escape:    escape,
	}
}

// ReadBaseline loads a committed ANALYSIS.json.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", path, err)
	}
	if b.Schema != BaselineSchema {
		return nil, fmt.Errorf("analysis: %s has schema %q, want %q (regenerate with cdvet -update)",
			path, b.Schema, BaselineSchema)
	}
	if b.Purity == nil || b.Escape == nil {
		return nil, fmt.Errorf("analysis: %s is missing a report section (regenerate with cdvet -update)", path)
	}
	return &b, nil
}

// Write renders the baseline deterministically (sections already hold
// sorted slices) and writes it with a trailing newline so the file
// diffs cleanly.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("analysis: encoding baseline: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("analysis: writing baseline: %w", err)
	}
	return nil
}

// Compare diffs a committed baseline against freshly-computed reports,
// returning one line per drift. Purity drift and escape drift both
// fail the gate: the committed prerequisite map must describe the tree
// as it is.
func (b *Baseline) Compare(purity *PurityReport, escape *EscapeReport) []string {
	var diffs []string
	if v := runtime.Version(); b.GoVersion != v {
		diffs = append(diffs, fmt.Sprintf("baseline computed with %s, running %s (run cdvet -update)", b.GoVersion, v))
	}
	diffs = append(diffs, comparePurity(b.Purity, purity)...)
	diffs = append(diffs, CompareEscape(b.Escape, escape)...)
	sort.Strings(diffs)
	return diffs
}

// comparePurity diffs two purity reports entry-by-entry.
func comparePurity(baseline, current *PurityReport) []string {
	var diffs []string
	if fmt.Sprint(baseline.Roots) != fmt.Sprint(current.Roots) ||
		fmt.Sprint(baseline.PairingRoots) != fmt.Sprint(current.PairingRoots) {
		diffs = append(diffs, "purity: root sets changed (run cdvet -update)")
	}
	old := make(map[string]PurityFunc, len(baseline.Functions))
	for _, f := range baseline.Functions {
		old[f.Func] = f
	}
	cur := make(map[string]PurityFunc, len(current.Functions))
	for _, f := range current.Functions {
		cur[f.Func] = f
	}
	for _, f := range current.Functions {
		o, ok := old[f.Func]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("purity: %s newly reachable as %s (run cdvet -update)", f.Func, f.Class))
			continue
		}
		if o.Class != f.Class || o.Pairing != f.Pairing || o.Suppressed != f.Suppressed ||
			fmt.Sprint(o.Writes) != fmt.Sprint(f.Writes) {
			diffs = append(diffs, fmt.Sprintf("purity: %s changed %s%v -> %s%v (run cdvet -update)",
				f.Func, o.Class, o.Writes, f.Class, f.Writes))
		}
	}
	for _, f := range baseline.Functions {
		if _, ok := cur[f.Func]; !ok {
			diffs = append(diffs, fmt.Sprintf("purity: %s no longer reachable (run cdvet -update)", f.Func))
		}
	}
	return diffs
}
