// Package concviol is the concurrency-containment fixture: every
// primitive the rule flags, plus the patterns it must stay silent on
// (method calls on an already-declared mutex, suppressed audited
// exceptions). Loaded under a non-allowlisted path every want line
// fires; loaded under fixture/internal/parallel/... all are silent.
package concviol

import (
	"sync"        // want "import of sync"
	"sync/atomic" // want "import of sync/atomic"
)

var mu sync.Mutex // want "use of sync.Mutex"

var counter int64

// Fanout is the pattern the rule exists to keep out of engines: ad-hoc
// goroutine fan-out with channel collection.
func Fanout(work []int) int {
	results := make(chan int, len(work)) // want "channel type"
	for range work {
		go func() { // want "go statement"
			atomic.AddInt64(&counter, 1) // want "use of sync/atomic.AddInt64"
			results <- 1                 // want "channel send"
		}()
	}
	total := 0
	for range work {
		total += <-results // want "channel receive"
	}
	close(results) // want "close of channel"
	return total
}

// Wait takes a channel parameter and selects on it.
func Wait(stop chan struct{}) { // want "channel type"
	select { // want "select statement"
	case <-stop: // want "channel receive"
	default:
	}
	mu.Lock() // silent: the declaration of mu carries the finding
	defer mu.Unlock()
}

//lint:concurrency-containment fixture: audited exception, the declaration is the single finding site
var suppressedMu sync.Mutex

// Guarded uses the suppressed mutex; method calls are never flagged,
// so the suppression on the declaration covers all uses.
func Guarded() {
	suppressedMu.Lock()
	defer suppressedMu.Unlock()
}
