// Package puritycases is the shard-purity fixture: one function per
// classification (pure, receiver-local, param-writing,
// shared-writing, unknown) plus a suppressed origin proving that an
// audited //lint:shard-purity annotation accepts its whole call chain.
// The test drives the analysis with PairPeer/PairQuiet/PairDynamic as
// pairing roots.
package puritycases

// sharedCount is the shard-locality hazard this fixture models: a
// package-level counter bumped from a pairing path.
var sharedCount int

// auditLog backs the suppressed case.
var auditLog []string

// Peer is per-peer state — writes through it are shard-local.
type Peer struct {
	have  []bool
	score int
}

// BlocksOf is pure: it reads and computes only.
func BlocksOf(p *Peer) int {
	n := 0
	for _, h := range p.have {
		if h {
			n++
		}
	}
	return n
}

// Mark is receiver-local: it writes only through its receiver.
func (p *Peer) Mark(b int) {
	p.have[b] = true
	p.score++
}

// FillWindow is param-writing: locality is the caller's problem.
func FillWindow(dst []bool, from int) {
	if from < len(dst) {
		dst[from] = true
	}
}

// tally is the shared-writing origin the gate must catch.
func tally() {
	sharedCount++ // want "write to shared fixture/puritycases.sharedCount"
}

// PairPeer is a pairing root: it inherits shared-writing from tally,
// but the finding lands at tally's write, not here.
func PairPeer(p *Peer, dst []bool) int {
	p.Mark(0)
	FillWindow(dst, 1)
	tally()
	return BlocksOf(p)
}

//lint:shard-purity fixture: audited exception — the chain through noteAudit stays certified
func noteAudit(s string) {
	auditLog = append(auditLog, s)
}

// PairQuiet goes through the suppressed origin: no finding, and its
// own class stays param-writing (Mark's receiver re-rooted at p).
func PairQuiet(p *Peer) int {
	noteAudit("paired")
	p.Mark(1)
	return BlocksOf(p)
}

// scorer has no implementation in this fixture, so calling it is a
// dynamic call the analysis cannot resolve.
type scorer interface {
	score(p *Peer) int
}

// PairDynamic is a pairing root with an unresolvable dynamic call.
func PairDynamic(s scorer, p *Peer) int {
	return s.score(p) // want "unresolvable dynamic call"
}
