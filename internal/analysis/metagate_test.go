package analysis

import (
	"path/filepath"
	"testing"

	"barterdist/internal/lint"
)

// TestCdvetModuleClean is the meta-gate: the repository's own tree
// must pass all three cdvet analyses with zero findings AND match the
// committed ANALYSIS.json exactly. A shared write sneaking onto a
// pairing path, a stray goroutine outside internal/parallel, or a new
// heap escape in a gated hot-path function makes this test — and
// `make check` — fail. Legitimate changes re-baseline with
// `go run ./cmd/cdvet -update`.
func TestCdvetModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis + instrumented build is slow")
	}
	loader, err := lint.NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	for _, w := range loader.Warnings {
		t.Logf("loader warning: %s", w)
	}
	mod := loader.ModulePath()

	for _, f := range lint.RunAnalyzers(loader.Fset, pkgs, []*lint.Analyzer{ConcurrencyContainmentAnalyzer()}) {
		t.Errorf("finding: %s", f)
	}

	purity, findings, err := Purity(mod, loader.Fset, pkgs, DefaultPairingRoots(mod), DefaultPurityRoots(mod))
	if err != nil {
		t.Fatalf("Purity: %v", err)
	}
	for _, f := range findings {
		t.Errorf("finding: %s", f)
	}

	root, err := filepath.Abs(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := BuildEscapeDiagnostics(root)
	if err != nil {
		t.Fatalf("BuildEscapeDiagnostics: %v", err)
	}
	escape, err := Escape(root, loader.Fset, pkgs, DefaultEscapeGates(mod), diags)
	if err != nil {
		t.Fatalf("Escape: %v", err)
	}

	base, err := ReadBaseline(filepath.Join(root, "ANALYSIS.json"))
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	for _, d := range base.Compare(purity, escape) {
		t.Errorf("drift: %s", d)
	}

	// The committed purity report must name every function reachable
	// from both engines' pairing paths — spot-pin the pickers of each
	// engine so a silently-shrunk reachable set cannot pass.
	mustName := []string{
		"(*" + mod + "/internal/randomized.Scheduler).pickBlock",
		"(*" + mod + "/internal/randomized.TriangularScheduler).pickBlockFor",
		"(*" + mod + "/internal/bt.Protocol).rarestNeeded",
		"(*" + mod + "/internal/asim.AsyncRandomized).pickBlock",
		"(*" + mod + "/internal/mechanism.Ledger).CanSend",
		"(*" + mod + "/internal/adversary.Guard).Blocked",
		"(*" + mod + "/internal/xrand.Rand).Uint64",
	}
	have := make(map[string]bool, len(base.Purity.Functions))
	for _, f := range base.Purity.Functions {
		have[f.Func] = true
	}
	for _, name := range mustName {
		if !have[name] {
			t.Errorf("committed purity report does not name %s", name)
		}
	}
}
