package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"barterdist/internal/lint"
)

// concurrencyAllow lists the import-path suffixes of packages allowed
// to use concurrency primitives. The determinism contract wants every
// goroutine, channel, mutex, and atomic behind internal/parallel's
// deterministic worker pool; anything else is a place where scheduler
// interleaving could leak into results. Suppress audited exceptions
// with //lint:concurrency-containment and a justification.
var concurrencyAllow = []string{
	"internal/parallel",
	// internal/shard is the sharded tick's fan-out façade: it owns the
	// lane decomposition and delegates every goroutine to
	// internal/parallel today, but it sits on the same containment
	// boundary, so primitives appearing there are audited with it.
	"internal/shard",
}

// concurrencyPkgs are the packages whose very mention outside the
// allowlist is a finding.
var concurrencyPkgs = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
}

// ConcurrencyContainmentAnalyzer flags go statements, channel
// operations (send, receive, select, close, chan types), and any use
// of sync or sync/atomic outside internal/parallel. It is a
// per-package lint.Analyzer so cdvet runs it through the same
// fixture/suppression machinery as the PR 2 rules.
func ConcurrencyContainmentAnalyzer() *lint.Analyzer {
	return &lint.Analyzer{
		Name: "concurrency-containment",
		Doc:  "concurrency primitives (go, chan, sync, atomic) must stay inside internal/parallel",
		Run:  runConcurrencyContainment,
	}
}

func inScopeSuffix(path string, scope []string) bool {
	for _, s := range scope {
		if strings.HasSuffix(path, s) || strings.Contains(path, s+"/") {
			return true
		}
	}
	return false
}

func runConcurrencyContainment(p *lint.Pass) {
	if inScopeSuffix(p.Path, concurrencyAllow) {
		return
	}
	const directive = "concurrency-containment"
	report := func(pos token.Pos, what string) {
		p.Reportf(pos, directive,
			"%s outside internal/parallel: deterministic runs keep all concurrency behind the worker pool", what)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				path := strings.Trim(n.Path.Value, `"`)
				if concurrencyPkgs[path] {
					report(n.Pos(), "import of "+path)
				}
			case *ast.GoStmt:
				report(n.Pos(), "go statement")
			case *ast.SelectStmt:
				report(n.Pos(), "select statement")
			case *ast.SendStmt:
				report(n.Pos(), "channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					report(n.Pos(), "channel receive")
				}
			case *ast.ChanType:
				report(n.Pos(), "channel type")
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok {
					if b, ok := p.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
						report(n.Pos(), "close of channel")
					}
				}
			case *ast.SelectorExpr:
				// sync.Mutex / atomic.AddUint64 etc: a selector whose
				// base names one of the concurrency packages. Method
				// calls on an already-declared mutex (mu.Lock) are not
				// re-flagged — the declaration site carries the finding.
				id, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				if pn, ok := p.Info.Uses[id].(*types.PkgName); ok && concurrencyPkgs[pn.Imported().Path()] {
					report(n.Pos(), "use of "+pn.Imported().Path()+"."+n.Sel.Name)
				}
			}
			return true
		})
	}
}
