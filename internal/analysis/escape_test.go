package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"barterdist/internal/lint"
)

func TestParseDiag(t *testing.T) {
	cases := []struct {
		line string
		file string
		lnum int
		msg  string
		ok   bool
	}{
		{"internal/simulate/simulate.go:700:15: make([]Transfer, n) escapes to heap",
			"internal/simulate/simulate.go", 700, "make([]Transfer, n) escapes to heap", true},
		{"./bounds.go:14:6: can inline CeilLog2", "./bounds.go", 14, "can inline CeilLog2", true},
		{"# barterdist/internal/simulate", "", 0, "", false},
		{"", "", 0, "", false},
		{"not a diagnostic", "", 0, "", false},
	}
	for _, c := range cases {
		file, lnum, msg, ok := parseDiag(c.line)
		if ok != c.ok || file != c.file || lnum != c.lnum || msg != c.msg {
			t.Errorf("parseDiag(%q) = (%q, %d, %q, %v), want (%q, %d, %q, %v)",
				c.line, file, lnum, msg, ok, c.file, c.lnum, c.msg, c.ok)
		}
	}
}

func TestIsEscapeDiag(t *testing.T) {
	yes := []string{
		"make([]int, n) escapes to heap",
		"&node{...} escapes to heap",
		"moved to heap: n",
	}
	no := []string{
		"p does not escape",
		"leaking param: p",
		"can inline Leak",
		"inlining call to Stay",
	}
	for _, m := range yes {
		if !isEscapeDiag(m) {
			t.Errorf("isEscapeDiag(%q) = false, want true", m)
		}
	}
	for _, m := range no {
		if isEscapeDiag(m) {
			t.Errorf("isEscapeDiag(%q) = true, want false", m)
		}
	}
}

// escFixture writes a throwaway module with one deliberately-escaping
// function and one clean inlinable one, and computes its gate report.
func escFixture(t *testing.T) *EscapeReport {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module escfix\n\ngo 1.24\n",
		"escfix.go": `// Package escfix is a throwaway escape-gate fixture.
package escfix

// node is big enough that the compiler will not shrug the escape off.
type node struct{ v [4]int }

// Leak returns a pointer to a local: the textbook heap escape.
func Leak(v int) *node {
	n := node{}
	n.v[0] = v
	return &n
}

// Stay is tiny, pure, and inlinable.
func Stay(v int) int { return v + 1 }
`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatalf("writing fixture: %v", err)
		}
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	diags, err := BuildEscapeDiagnostics(dir)
	if err != nil {
		t.Fatalf("BuildEscapeDiagnostics: %v", err)
	}
	report, err := Escape(dir, loader.Fset, pkgs, []string{"escfix.Leak", "escfix.Stay"}, diags)
	if err != nil {
		t.Fatalf("Escape: %v", err)
	}
	return report
}

// TestEscapeGateCatchesNewEscape is the acceptance-criterion fixture:
// a gated function that newly escapes to the heap must fail the gate
// against a baseline that recorded it clean.
func TestEscapeGateCatchesNewEscape(t *testing.T) {
	report := escFixture(t)
	byName := make(map[string]GateStatus)
	for _, g := range report.Gates {
		byName[g.Func] = g
	}
	leak, ok := byName["escfix.Leak"]
	if !ok || len(leak.Escapes) == 0 {
		t.Fatalf("Leak's escape not detected: %+v", report.Gates)
	}
	stay := byName["escfix.Stay"]
	if len(stay.Escapes) != 0 || !stay.CanInline {
		t.Fatalf("Stay should be clean and inlinable: %+v", stay)
	}

	// The committed baseline says Leak was clean and inlinable — the
	// current tree's new escape must surface as drift.
	clean := &EscapeReport{Gates: []GateStatus{
		{Func: "escfix.Leak", CanInline: leak.CanInline},
		{Func: "escfix.Stay", CanInline: true},
	}}
	drift := CompareEscape(clean, report)
	found := false
	for _, d := range drift {
		if strings.Contains(d, "escfix.Leak") && strings.Contains(d, "NEW heap escape") {
			found = true
		}
	}
	if !found {
		t.Fatalf("new escape did not fail the gate; drift = %v", drift)
	}

	// Lost inlining is drift too.
	inlined := &EscapeReport{Gates: []GateStatus{
		{Func: "escfix.Leak", CanInline: leak.CanInline, Escapes: leak.Escapes},
		{Func: "escfix.Stay", CanInline: true, Escapes: []string{"make([]int, n) escapes to heap"}},
	}}
	drift = CompareEscape(inlined, report)
	found = false
	for _, d := range drift {
		if strings.Contains(d, "escfix.Stay") && strings.Contains(d, "escape fixed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("baseline-only escape did not surface as drift; drift = %v", drift)
	}

	// Self-comparison is clean: the gate only fires on change.
	if drift := CompareEscape(report, report); len(drift) != 0 {
		t.Fatalf("self-comparison drifted: %v", drift)
	}
}

func TestEscapeMissingGateIsError(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module escfix\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "escfix.go"), []byte("package escfix\n\nfunc Stay(v int) int { return v + 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	_, err = Escape(dir, loader.Fset, pkgs, []string{"escfix.Gone"}, nil)
	if err == nil || !strings.Contains(err.Error(), "escfix.Gone") {
		t.Fatalf("expected missing-gate error, got %v", err)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	report := escFixture(t)
	purity := &PurityReport{
		Roots:        []string{"r"},
		PairingRoots: []string{"r"},
		Functions:    []PurityFunc{{Func: "escfix.Stay", Class: ClassPure, Pairing: true}},
	}
	b := NewBaseline(purity, report)
	path := filepath.Join(t.TempDir(), "ANALYSIS.json")
	if err := b.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	if diffs := got.Compare(purity, report); len(diffs) != 0 {
		t.Fatalf("round-tripped baseline drifted: %v", diffs)
	}
	// Purity drift is drift too.
	changed := &PurityReport{
		Roots:        []string{"r"},
		PairingRoots: []string{"r"},
		Functions:    []PurityFunc{{Func: "escfix.Stay", Class: ClassSharedWriting, Pairing: true, Writes: []string{"global:escfix.x"}}},
	}
	diffs := got.Compare(changed, report)
	if len(diffs) == 0 || !strings.Contains(strings.Join(diffs, "\n"), "escfix.Stay") {
		t.Fatalf("purity drift not detected: %v", diffs)
	}
}
