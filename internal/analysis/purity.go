package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"barterdist/internal/lint"
)

// Shard-purity: an interprocedural write-set analysis over the tick
// core. ROADMAP item 1 wants to shard the synchronous tick across
// workers *inside* a run; that is only deterministic if everything a
// per-peer pairing decision executes writes nothing but (a) its own
// receiver state and (b) state handed to it by the caller. This
// analysis computes, for every function reachable from the engines'
// tick and pairing entry points, an abstract write set rooted at
// {receiver, parameter i, package-level variable}, propagates callee
// effects to callers to a fixed point, and classifies each function:
//
//	pure            writes nothing, calls nothing impure
//	receiver-local  writes only through its receiver
//	param-writing   writes through parameters (caller decides locality)
//	shared-writing  writes a package-level variable
//	unknown         contains a dynamic call the analysis cannot resolve
//
// The gate: any function reachable from a per-peer pairing root that
// is shared-writing or unknown is a finding, reported at the origin
// (the function with the direct global write or unresolved call), and
// suppressible there with //lint:shard-purity — suppression drops the
// origin's direct effects from propagation, so an audited exception
// does not condemn its whole call chain. The machine-readable report
// (ANALYSIS.json "purity") is the prerequisite map the sharding PR
// consumes: receiver-local and param-writing functions are shardable
// once their receiver/argument roots are per-peer; shared-writing ones
// must be restructured first.
//
// Model limits, chosen for this codebase and documented here: calling
// a plain func-typed value contributes no effects (the module's hot
// paths pass compare/visit closures that only write enclosing locals);
// dynamic interface calls are devirtualized against every module type
// implementing the interface, and count as unknown only when no
// implementation is found; a call result is a fresh value unless the
// call is a method call, whose result is conservatively rooted at the
// receiver (getter idiom: s.Ledger().Record(...) writes s).

// rootKind says where an abstract write lands.
type rootKind int

const (
	rootLocal  rootKind = iota // function-local: ignored
	rootRecv                   // the receiver
	rootParam                  // parameter index
	rootGlobal                 // package-level variable
)

// writeRoot is one abstract storage location.
type writeRoot struct {
	kind   rootKind
	param  int
	global *types.Var
}

// callSite is one statically-resolved call: effects of each callee are
// replayed into the caller with the callee's receiver/params re-rooted
// at recvRoot/argRoots.
type callSite struct {
	callees  []*types.Func
	pos      token.Pos
	recvRoot writeRoot
	argRoots []writeRoot
	dynamic  bool // devirtualized interface call
}

// funcSummary accumulates one function's effects across the fixed
// point. recvWrite/paramWrite/globals/unknown include propagated
// callee effects; the direct* fields keep the function's own
// contribution so findings land at origins only.
type funcSummary struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *lint.Package

	recvWrite  bool
	paramWrite map[int]bool
	globals    map[*types.Var]bool
	unknown    bool

	directGlobals  map[*types.Var]token.Pos
	directUnknowns []unknownCall
	calls          []callSite
	suppressed     bool
}

type unknownCall struct {
	pos  token.Pos
	what string
}

// PurityClass is the report classification, ordered weakest to
// strongest contract violation.
type PurityClass string

const (
	ClassPure          PurityClass = "pure"
	ClassReceiverLocal PurityClass = "receiver-local"
	ClassParamWriting  PurityClass = "param-writing"
	ClassUnknown       PurityClass = "unknown"
	ClassSharedWriting PurityClass = "shared-writing"
)

// PurityFunc is one function's entry in the report.
type PurityFunc struct {
	Func       string      `json:"func"`
	Class      PurityClass `json:"class"`
	Pairing    bool        `json:"pairing"`
	Writes     []string    `json:"writes,omitempty"`
	Suppressed bool        `json:"suppressed,omitempty"`
}

// PurityReport is the committed purity section of ANALYSIS.json.
type PurityReport struct {
	// Roots are the tick-core entry points the reachability sweep
	// starts from; PairingRoots is the subset whose reachable set is
	// gated against shared writes.
	Roots        []string     `json:"roots"`
	PairingRoots []string     `json:"pairing_roots"`
	Functions    []PurityFunc `json:"functions"`
}

// defaultPurityRootTemplates name the tick entry points (report roots)
// with the module path abstracted as MOD. Both engines' tick loops and
// scheduler callbacks are covered so the report maps the whole tick
// core, not just the gated slice of it.
var defaultPurityRootTemplates = []string{
	"(*MOD/internal/simulate.runner).step",
	"(*MOD/internal/asim.engine).loop",
	"(*MOD/internal/randomized.Scheduler).Tick",
	"(*MOD/internal/randomized.TriangularScheduler).Tick",
	"(*MOD/internal/bt.Protocol).OnDeliver",
	"(*MOD/internal/bt.Protocol).OnTimer",
	"(*MOD/internal/asim.AsyncRandomized).OnDeliver",
	// Sharded tick barrier entry points: the per-lane proposal pass and
	// the sequential merge are rooted explicitly so the report keeps
	// mapping them even if an indirect call ever hides them from the
	// Tick-rooted sweep.
	"(*MOD/internal/randomized.Scheduler).runLane",
	"(*MOD/internal/randomized.Scheduler).merge",
	"(*MOD/internal/randomized.Scheduler).beginTick",
	"(*MOD/internal/randomized.TriangularScheduler).runIntentLane",
	"MOD/internal/shard.Run",
}

// defaultPairingRootTemplates are the per-peer pairing decisions — the
// functions a sharded tick would run concurrently across peers, and
// therefore the roots whose reachable set must stay free of shared
// writes.
var defaultPairingRootTemplates = []string{
	"(*MOD/internal/randomized.Scheduler).pickReceiver",
	"(*MOD/internal/randomized.Scheduler).pickReceiverComplete",
	"(*MOD/internal/randomized.Scheduler).pickBlock",
	"(*MOD/internal/randomized.TriangularScheduler).pickIntent",
	"(*MOD/internal/randomized.TriangularScheduler).pickBlockFor",
	"(*MOD/internal/bt.Protocol).NextUpload",
	"(*MOD/internal/asim.AsyncRandomized).NextUpload",
	// The sharded tick's concurrent roots: one lane job per logical
	// shard runs these simultaneously, so everything they reach must
	// stay free of shared writes (lane-owned and parameter state only).
	"(*MOD/internal/randomized.Scheduler).runLane",
	"(*MOD/internal/randomized.TriangularScheduler).runIntentLane",
}

func expandRoots(templates []string, modulePath string) []string {
	out := make([]string, len(templates))
	for i, t := range templates {
		out[i] = strings.ReplaceAll(t, "MOD", modulePath)
	}
	return out
}

// DefaultPurityRoots returns the report roots for the given module.
func DefaultPurityRoots(modulePath string) []string {
	return expandRoots(defaultPurityRootTemplates, modulePath)
}

// DefaultPairingRoots returns the gated per-peer pairing roots.
func DefaultPairingRoots(modulePath string) []string {
	return expandRoots(defaultPairingRootTemplates, modulePath)
}

// stdWriteArg maps fully-qualified standard-library callables to the
// argument index they mutate; every other std call is effect-neutral
// (it cannot reach module globals).
var stdWriteArg = map[string]int{
	"sort.Slice":          0,
	"sort.SliceStable":    0,
	"sort.Sort":           0,
	"sort.Stable":         0,
	"sort.Ints":           0,
	"sort.Float64s":       0,
	"sort.Strings":        0,
	"container/heap.Push": 0,
	"container/heap.Pop":  0,
	"container/heap.Init": 0,
	"container/heap.Fix":  0,
}

// Purity runs the shard-purity analysis over the loaded packages.
// modulePath scopes "module-internal"; pairingRoots and reportRoots
// are FullName-formatted function names (see DefaultPairingRoots).
// It returns the report, the gate findings (shared-writing/unknown
// functions reachable from pairing roots, reported at origins), and an
// error if a named root does not exist — a renamed picker must update
// the root list, not silently shrink the certified surface.
func Purity(modulePath string, fset *token.FileSet, pkgs []*lint.Package, pairingRoots, reportRoots []string) (*PurityReport, []lint.Finding, error) {
	a := &purityAnalysis{
		modulePath: modulePath,
		fset:       fset,
		summaries:  make(map[*types.Func]*funcSummary),
		reporter:   lint.NewReporter(fset, "shard-purity", pkgs),
	}
	a.buildTypeIndex(pkgs)
	for _, pkg := range pkgs {
		a.collect(pkg)
	}
	a.resolveCalls()
	a.fixedPoint()

	roots, missing := a.lookupRoots(append(append([]string{}, reportRoots...), pairingRoots...))
	if len(missing) > 0 {
		return nil, nil, fmt.Errorf("analysis: purity roots not found (renamed? update the root list): %s",
			strings.Join(missing, ", "))
	}
	pairing, _ := a.lookupRoots(pairingRoots)

	reachable := a.reach(roots)
	pairReach := a.reach(pairing)

	report := &PurityReport{
		Roots:        sortedNames(reportRoots),
		PairingRoots: sortedNames(pairingRoots),
	}
	var names []*types.Func
	for fn := range reachable {
		names = append(names, fn)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].FullName() < names[j].FullName() })
	for _, fn := range names {
		s := a.summaries[fn]
		report.Functions = append(report.Functions, PurityFunc{
			Func:       fn.FullName(),
			Class:      a.classOf(s),
			Pairing:    pairReach[fn],
			Writes:     a.writesOf(s),
			Suppressed: s.suppressed,
		})
		if !pairReach[fn] || s.suppressed {
			continue
		}
		// Gate findings at origins only: the chain above an impure
		// callee inherits its class in the report, but the finding
		// points at the code that must change.
		for g, pos := range s.directGlobals {
			a.reporter.Reportf(pos,
				"write to shared %s reachable from a per-peer pairing path: sharding the tick (ROADMAP 1) requires shard-local writes only",
				globalName(g))
		}
		for _, u := range s.directUnknowns {
			a.reporter.Reportf(u.pos,
				"unresolvable %s reachable from a per-peer pairing path: the shard-purity contract cannot be certified through it",
				u.what)
		}
	}
	return report, a.reporter.Findings(), nil
}

func sortedNames(in []string) []string {
	out := append([]string(nil), in...)
	sort.Strings(out)
	return out
}

func globalName(g *types.Var) string {
	if g.Pkg() != nil {
		return g.Pkg().Path() + "." + g.Name()
	}
	return g.Name()
}

type purityAnalysis struct {
	modulePath string
	fset       *token.FileSet
	summaries  map[*types.Func]*funcSummary
	reporter   *lint.Reporter
	// namedTypes indexes every module-defined named type for interface
	// devirtualization.
	namedTypes []*types.Named
	// unresolved call sites discovered during collect, resolved against
	// summaries afterwards (a callee's summary may not exist yet while
	// its caller's body is walked).
}

func (a *purityAnalysis) buildTypeIndex(pkgs []*lint.Package) {
	seen := make(map[*types.TypeName]bool)
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || seen[tn] {
				continue
			}
			seen[tn] = true
			// Uninstantiated generic types have no complete method set
			// to devirtualize against; skip them.
			if named, ok := tn.Type().(*types.Named); ok && named.TypeParams().Len() == 0 {
				a.namedTypes = append(a.namedTypes, named)
			}
		}
	}
	sort.Slice(a.namedTypes, func(i, j int) bool {
		return a.namedTypes[i].String() < a.namedTypes[j].String()
	})
}

func (a *purityAnalysis) isInternal(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == a.modulePath || strings.HasPrefix(p, a.modulePath+"/") ||
		// Fixture packages loaded under fake paths are module-internal
		// for the tests that drive them.
		strings.HasPrefix(p, "fixture/")
}

// collect builds the direct-effect summary of every function declared
// in pkg. Function literals are walked as part of their enclosing
// declaration, so a closure's writes to enclosing parameters or
// receiver fields are attributed to the encloser.
func (a *purityAnalysis) collect(pkg *lint.Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			s := &funcSummary{
				fn:            fn,
				decl:          fd,
				pkg:           pkg,
				paramWrite:    make(map[int]bool),
				globals:       make(map[*types.Var]bool),
				directGlobals: make(map[*types.Var]token.Pos),
				suppressed:    a.reporter.Suppressed(fd.Pos()),
			}
			a.summaries[fn] = s
			w := &bodyWalker{a: a, s: s, info: pkg.Info}
			w.resolveFrame()
			ast.Inspect(fd.Body, w.visit)
		}
	}
}

// bodyWalker walks one function body recording direct effects.
type bodyWalker struct {
	a    *purityAnalysis
	s    *funcSummary
	info *types.Info

	recvObj   *types.Var
	paramObjs []*types.Var
}

// resolveFrame binds the declaration's receiver and parameter objects
// so identifier roots can be resolved against them.
func (w *bodyWalker) resolveFrame() {
	sig, ok := w.s.fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if r := sig.Recv(); r != nil {
		w.recvObj = r
	}
	for i := 0; i < sig.Params().Len(); i++ {
		w.paramObjs = append(w.paramObjs, sig.Params().At(i))
	}
}

// rootOf resolves an lvalue (or argument) expression to its abstract
// storage root in this function's frame.
func (w *bodyWalker) rootOf(e ast.Expr) writeRoot {
	switch e := e.(type) {
	case *ast.Ident:
		obj := w.info.Uses[e]
		if obj == nil {
			obj = w.info.Defs[e]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return writeRoot{kind: rootLocal}
		}
		if v == w.recvObj {
			return writeRoot{kind: rootRecv}
		}
		for i, p := range w.paramObjs {
			if v == p {
				return writeRoot{kind: rootParam, param: i}
			}
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return writeRoot{kind: rootGlobal, global: v}
		}
		return writeRoot{kind: rootLocal}
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := w.info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := w.info.Uses[e.Sel].(*types.Var); ok {
					return writeRoot{kind: rootGlobal, global: v}
				}
				return writeRoot{kind: rootLocal}
			}
		}
		return w.rootOf(e.X)
	case *ast.StarExpr:
		return w.rootOf(e.X)
	case *ast.ParenExpr:
		return w.rootOf(e.X)
	case *ast.IndexExpr:
		return w.rootOf(e.X)
	case *ast.IndexListExpr:
		return w.rootOf(e.X)
	case *ast.SliceExpr:
		return w.rootOf(e.X)
	case *ast.TypeAssertExpr:
		return w.rootOf(e.X)
	case *ast.UnaryExpr:
		return w.rootOf(e.X)
	case *ast.CallExpr:
		// A method call's result stays rooted at its receiver (getter
		// idiom); a plain call's result is a fresh value.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if s, isMethod := w.info.Selections[sel]; isMethod && s.Kind() == types.MethodVal {
				return w.rootOf(sel.X)
			}
		}
		return writeRoot{kind: rootLocal}
	default:
		return writeRoot{kind: rootLocal}
	}
}

// write records a direct write to the resolved root.
func (w *bodyWalker) write(root writeRoot, pos token.Pos) {
	switch root.kind {
	case rootRecv:
		w.s.recvWrite = true
	case rootParam:
		w.s.paramWrite[root.param] = true
	case rootGlobal:
		w.s.globals[root.global] = true
		if _, ok := w.s.directGlobals[root.global]; !ok {
			w.s.directGlobals[root.global] = pos
		}
	}
}

func (w *bodyWalker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			if n.Tok == token.DEFINE {
				// x := ... defines a new local unless x was already
				// bound; redefinitions in a multi-assign still resolve
				// through Uses and land below.
				if id, ok := lhs.(*ast.Ident); ok {
					if w.info.Defs[id] != nil {
						continue
					}
				}
			}
			w.write(w.rootOf(lhs), lhs.Pos())
		}
	case *ast.IncDecStmt:
		w.write(w.rootOf(n.X), n.X.Pos())
	case *ast.RangeStmt:
		if n.Tok == token.ASSIGN {
			if n.Key != nil {
				w.write(w.rootOf(n.Key), n.Key.Pos())
			}
			if n.Value != nil {
				w.write(w.rootOf(n.Value), n.Value.Pos())
			}
		}
	case *ast.SendStmt:
		w.write(w.rootOf(n.Chan), n.Chan.Pos())
	case *ast.CallExpr:
		w.call(n)
	}
	return true
}

// call records one call expression: builtin effects, std effects, or a
// call site to be resolved against module summaries.
func (w *bodyWalker) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: F[T](...) — unwrap to the operand; Uses
	// resolves the ident to the generic origin function.
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}

	argRoot := func(i int) writeRoot {
		if i < len(call.Args) {
			return w.rootOf(call.Args[i])
		}
		return writeRoot{kind: rootLocal}
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := w.info.Uses[fun].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "copy", "delete", "clear":
				w.write(argRoot(0), call.Pos())
			}
			return
		case *types.TypeName:
			return // conversion
		case *types.Func:
			w.recordCall(obj, writeRoot{kind: rootLocal}, call)
			return
		case *types.Var:
			// Calling a func-typed value: no effects by model (see the
			// package comment).
			return
		}
		// Conversion to an unnamed type, or unresolved: no effects.
		return
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			callee, _ := sel.Obj().(*types.Func)
			if callee == nil {
				return
			}
			recvType := sel.Recv()
			if types.IsInterface(recvType) {
				w.dynamicCall(callee, fun.X, call)
				return
			}
			w.recordCall(callee, w.rootOf(fun.X), call)
			return
		}
		// Package-qualified call or struct field of func type.
		switch obj := w.info.Uses[fun.Sel].(type) {
		case *types.Func:
			w.recordCall(obj, writeRoot{kind: rootLocal}, call)
		case *types.TypeName:
			// conversion
		case *types.Var:
			// func-typed field value: no effects by model
		}
		return
	}
	// Calling the result of a call, an index expression, etc: a
	// func-typed value — no effects by model.
}

// recordCall stores a statically-resolved call site. Standard-library
// callees resolve immediately through the effects table; module
// callees defer to the fixed point.
func (w *bodyWalker) recordCall(callee *types.Func, recvRoot writeRoot, call *ast.CallExpr) {
	if !w.a.isInternal(callee.Pkg()) {
		if i, ok := stdWriteArg[callee.FullName()]; ok && i < len(call.Args) {
			w.write(w.rootOf(call.Args[i]), call.Pos())
		}
		return
	}
	// Generic origin: summaries are keyed by the origin function.
	callee = callee.Origin()
	args := make([]writeRoot, len(call.Args))
	for i := range call.Args {
		args[i] = w.rootOf(call.Args[i])
	}
	w.s.calls = append(w.s.calls, callSite{
		callees:  []*types.Func{callee},
		pos:      call.Pos(),
		recvRoot: recvRoot,
		argRoots: args,
	})
}

// dynamicCall devirtualizes an interface method call against every
// module type implementing the interface. External interfaces (error,
// sort.Interface via std helpers) are neutral; a module interface with
// no module implementation is an unknown.
func (w *bodyWalker) dynamicCall(iface *types.Func, recvExpr ast.Expr, call *ast.CallExpr) {
	if !w.a.isInternal(iface.Pkg()) {
		return
	}
	sig, _ := iface.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return
	}
	ifaceType, _ := sig.Recv().Type().Underlying().(*types.Interface)
	if ifaceType == nil {
		return
	}
	var impls []*types.Func
	for _, named := range w.a.namedTypes {
		if types.IsInterface(named) {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, ifaceType) && !types.Implements(named, ifaceType) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, iface.Pkg(), iface.Name())
		if m, ok := obj.(*types.Func); ok {
			impls = append(impls, m.Origin())
		}
	}
	if len(impls) == 0 {
		w.s.unknown = true
		w.s.directUnknowns = append(w.s.directUnknowns, unknownCall{
			pos:  call.Pos(),
			what: fmt.Sprintf("dynamic call %s.%s (no module implementation found)", sig.Recv().Type(), iface.Name()),
		})
		return
	}
	args := make([]writeRoot, len(call.Args))
	for i := range call.Args {
		args[i] = w.rootOf(call.Args[i])
	}
	w.s.calls = append(w.s.calls, callSite{
		callees:  impls,
		pos:      call.Pos(),
		recvRoot: w.rootOf(recvExpr),
		argRoots: args,
		dynamic:  true,
	})
}

// resolveCalls prunes call sites whose callees have no summary
// (methods declared without bodies, or in packages outside the load);
// such callees become unknowns at the caller.
func (a *purityAnalysis) resolveCalls() {
	for _, s := range a.summaries {
		for i := range s.calls {
			cs := &s.calls[i]
			kept := cs.callees[:0]
			for _, c := range cs.callees {
				if _, ok := a.summaries[c]; ok {
					kept = append(kept, c)
				} else if !cs.dynamic {
					s.unknown = true
					s.directUnknowns = append(s.directUnknowns, unknownCall{
						pos:  cs.pos,
						what: fmt.Sprintf("call to %s (no analyzable body)", c.FullName()),
					})
				}
			}
			cs.callees = kept
		}
	}
}

// fixedPoint replays callee effects into callers, re-rooting the
// callee's receiver and parameter writes at the call site, until no
// summary changes. Suppressed origins keep their direct effects out of
// propagation: the annotation accepts the chain.
func (a *purityAnalysis) fixedPoint() {
	// Deterministic iteration order keeps any diagnostics stable.
	fns := make([]*types.Func, 0, len(a.summaries))
	for fn := range a.summaries {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })

	reRoot := func(s *funcSummary, site callSite, calleeRoot writeRoot) bool {
		var target writeRoot
		switch calleeRoot.kind {
		case rootRecv:
			target = site.recvRoot
		case rootParam:
			if calleeRoot.param < len(site.argRoots) {
				target = site.argRoots[calleeRoot.param]
			} else {
				target = writeRoot{kind: rootLocal} // variadic tail
			}
		case rootGlobal:
			target = calleeRoot
		default:
			return false
		}
		switch target.kind {
		case rootRecv:
			if !s.recvWrite {
				s.recvWrite = true
				return true
			}
		case rootParam:
			if !s.paramWrite[target.param] {
				s.paramWrite[target.param] = true
				return true
			}
		case rootGlobal:
			if !s.globals[target.global] {
				s.globals[target.global] = true
				return true
			}
		}
		return false
	}

	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			s := a.summaries[fn]
			for _, site := range s.calls {
				for _, callee := range site.callees {
					c := a.summaries[callee]
					if c.suppressed {
						continue
					}
					if c.recvWrite && reRoot(s, site, writeRoot{kind: rootRecv}) {
						changed = true
					}
					for p := range c.paramWrite {
						if reRoot(s, site, writeRoot{kind: rootParam, param: p}) {
							changed = true
						}
					}
					for g := range c.globals {
						if reRoot(s, site, writeRoot{kind: rootGlobal, global: g}) {
							changed = true
						}
					}
					if c.unknown && !s.unknown {
						s.unknown = true
						changed = true
					}
				}
			}
		}
	}
}

// lookupRoots maps FullName strings to summarized functions.
func (a *purityAnalysis) lookupRoots(names []string) (map[*types.Func]bool, []string) {
	byName := make(map[string]*types.Func, len(a.summaries))
	for fn := range a.summaries {
		byName[fn.FullName()] = fn
	}
	roots := make(map[*types.Func]bool)
	var missing []string
	for _, name := range names {
		fn, ok := byName[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		roots[fn] = true
	}
	sort.Strings(missing)
	return roots, missing
}

// reach returns every summarized function reachable from roots over
// static (and devirtualized) call edges.
func (a *purityAnalysis) reach(roots map[*types.Func]bool) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var stack []*types.Func
	for fn := range roots {
		if !seen[fn] {
			seen[fn] = true
			stack = append(stack, fn)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, site := range a.summaries[fn].calls {
			for _, callee := range site.callees {
				if !seen[callee] {
					seen[callee] = true
					stack = append(stack, callee)
				}
			}
		}
	}
	return seen
}

// classOf derives the report class from a converged summary. When an
// origin is suppressed its direct effects still show in its own class
// (the report stays honest) even though they were not propagated.
func (a *purityAnalysis) classOf(s *funcSummary) PurityClass {
	globals := len(s.globals) > 0 || len(s.directGlobals) > 0
	switch {
	case globals:
		return ClassSharedWriting
	case s.unknown:
		return ClassUnknown
	case len(s.paramWrite) > 0:
		return ClassParamWriting
	case s.recvWrite:
		return ClassReceiverLocal
	default:
		return ClassPure
	}
}

// writesOf renders the converged write set, sorted.
func (a *purityAnalysis) writesOf(s *funcSummary) []string {
	var out []string
	if s.recvWrite {
		out = append(out, "recv")
	}
	for p := range s.paramWrite {
		out = append(out, fmt.Sprintf("param:%d", p))
	}
	seen := make(map[*types.Var]bool)
	for g := range s.globals {
		seen[g] = true
	}
	for g := range s.directGlobals {
		seen[g] = true
	}
	for g := range seen {
		out = append(out, "global:"+globalName(g))
	}
	if s.unknown {
		out = append(out, "unknown-call")
	}
	sort.Strings(out)
	return out
}
