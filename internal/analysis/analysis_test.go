package analysis

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"barterdist/internal/xrand"
)

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 7: 3, 8: 3, 9: 4, 1 << 20: 20}
	for x, want := range cases {
		if got := CeilLog2(x); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestCooperativeLowerBound(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{1, 5, 0}, // no clients
		{2, 1, 1}, // one client, one block
		{2, 5, 5}, // one client: server drains k blocks
		{8, 1, 3}, // binomial tree case
		{8, 4, 6}, // k-1+log2(8)
		{1000, 1000, 1009},
		{10000, 1000, 1013},
	}
	for _, c := range cases {
		if got := CooperativeLowerBound(c.n, c.k); got != c.want {
			t.Errorf("CooperativeLowerBound(%d, %d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestPipelineAndBinomialTreeTimes(t *testing.T) {
	if got := PipelineTime(10, 5); got != 13 {
		t.Errorf("PipelineTime = %d, want 13", got)
	}
	if got := PipelineTime(1, 5); got != 0 {
		t.Errorf("PipelineTime(n=1) = %d, want 0", got)
	}
	if got := BinomialTreeTime(8, 4); got != 12 {
		t.Errorf("BinomialTreeTime = %d, want 12", got)
	}
	if got := BinomialTreeTime(1, 4); got != 0 {
		t.Errorf("BinomialTreeTime(n=1) = %d, want 0", got)
	}
}

func TestBinomialPipelineTime(t *testing.T) {
	got, err := BinomialPipelineTime(16, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 13 {
		t.Errorf("BinomialPipelineTime = %d, want 13", got)
	}
	if _, err := BinomialPipelineTime(12, 10); err == nil {
		t.Error("non-power-of-two should error")
	}
	if _, err := BinomialPipelineTime(1, 10); err == nil {
		t.Error("n=1 should error")
	}
}

func TestBinomialPipelineMeetsLowerBound(t *testing.T) {
	for r := 1; r <= 12; r++ {
		n := 1 << uint(r)
		for _, k := range []int{1, 7, 100} {
			opt, err := BinomialPipelineTime(n, k)
			if err != nil {
				t.Fatal(err)
			}
			if opt != CooperativeLowerBound(n, k) {
				t.Errorf("n=%d k=%d: pipeline %d != bound %d", n, k, opt, CooperativeLowerBound(n, k))
			}
		}
	}
}

func TestStrictBarterLowerBounds(t *testing.T) {
	// D = U: T >= N + k - 1.
	if got := StrictBarterLowerBoundEqualBW(5, 8); got != 4+8-1 {
		t.Errorf("equal-BW bound = %d, want 11", got)
	}
	if got := StrictBarterLowerBoundEqualBW(1, 8); got != 0 {
		t.Errorf("n=1 bound = %d, want 0", got)
	}
	// General: the counting bound must be at least ~k + N/2 and at most
	// the equal-bandwidth bound.
	for _, tc := range []struct{ n, k int }{{5, 4}, {9, 16}, {101, 100}, {1001, 1000}} {
		got := StrictBarterLowerBound(tc.n, tc.k)
		N := tc.n - 1
		if got < tc.k {
			t.Errorf("n=%d k=%d: bound %d below k", tc.n, tc.k, got)
		}
		if got > N+tc.k-1 {
			t.Errorf("n=%d k=%d: bound %d above equal-BW bound %d", tc.n, tc.k, got, N+tc.k-1)
		}
		// The asymptotic shape: at least k + N/2 - O(1) once k >= N.
		if tc.k >= N && got < tc.k+N/2-2 {
			t.Errorf("n=%d k=%d: bound %d below k + N/2 - 2 = %d", tc.n, tc.k, got, tc.k+N/2-2)
		}
	}
}

func TestStrictBarterBoundDominatesCooperative(t *testing.T) {
	// The price of barter: the strict-barter bound must exceed the
	// cooperative bound for any non-trivial instance.
	for _, tc := range []struct{ n, k int }{{8, 8}, {64, 64}, {1000, 500}} {
		coop := CooperativeLowerBound(tc.n, tc.k)
		strict := StrictBarterLowerBound(tc.n, tc.k)
		if strict <= coop {
			t.Errorf("n=%d k=%d: strict %d <= coop %d", tc.n, tc.k, strict, coop)
		}
	}
	if CreditLimitedLowerBound(64, 64) != CooperativeLowerBound(64, 64) {
		t.Error("credit-limited bound should equal cooperative bound")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.N != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("StdDev = %v", s.StdDev)
	}
	want := 1.96 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(s.CI95-want) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", s.CI95, want)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty sample should error")
	}
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 7 || s.StdDev != 0 || s.CI95 != 0 || s.Median != 7 {
		t.Errorf("single sample Summary = %+v", s)
	}
	even, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if even.Median != 2.5 {
		t.Errorf("even median = %v, want 2.5", even.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(xs, []float64{3, 1, 2}) {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestFitLinear2RecoversExactCoefficients(t *testing.T) {
	truth := RandomizedFit{KCoeff: 1.01, LogNCoeff: 2.5, Const: -2.2}
	var obs []FitObservation
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		for _, k := range []int{10, 100, 1000} {
			obs = append(obs, FitObservation{N: n, K: k, T: truth.Predict(n, k)})
		}
	}
	fit, err := FitLinear2(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.KCoeff-truth.KCoeff) > 1e-9 ||
		math.Abs(fit.LogNCoeff-truth.LogNCoeff) > 1e-9 ||
		math.Abs(fit.Const-truth.Const) > 1e-9 {
		t.Errorf("fit = %+v, want %+v", fit, truth)
	}
	if r2 := RSquared(fit, obs); math.Abs(r2-1) > 1e-9 {
		t.Errorf("R^2 = %v, want 1", r2)
	}
}

func TestFitLinear2NoisyRecovery(t *testing.T) {
	rng := xrand.New(7)
	truth := RandomizedFit{KCoeff: 1.05, LogNCoeff: 3.0, Const: 1.0}
	var obs []FitObservation
	for _, n := range []int{32, 128, 512, 2048} {
		for _, k := range []int{50, 200, 800, 3200} {
			noise := (rng.Float64() - 0.5) * 4
			obs = append(obs, FitObservation{N: n, K: k, T: truth.Predict(n, k) + noise})
		}
	}
	fit, err := FitLinear2(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.KCoeff-truth.KCoeff) > 0.01 {
		t.Errorf("KCoeff = %v, want ~%v", fit.KCoeff, truth.KCoeff)
	}
	if math.Abs(fit.LogNCoeff-truth.LogNCoeff) > 1.0 {
		t.Errorf("LogNCoeff = %v, want ~%v", fit.LogNCoeff, truth.LogNCoeff)
	}
	if r2 := RSquared(fit, obs); r2 < 0.999 {
		t.Errorf("R^2 = %v too low", r2)
	}
}

func TestFitLinear2Errors(t *testing.T) {
	if _, err := FitLinear2(nil); err == nil {
		t.Error("empty observations should error")
	}
	// Singular: all observations identical.
	same := []FitObservation{{N: 10, K: 10, T: 1}, {N: 10, K: 10, T: 1}, {N: 10, K: 10, T: 1}}
	if _, err := FitLinear2(same); err == nil {
		t.Error("singular system should error")
	}
}

func TestRSquaredDegenerate(t *testing.T) {
	fit := RandomizedFit{KCoeff: 1}
	if RSquared(fit, nil) != 0 {
		t.Error("empty observations should give 0")
	}
	constObs := []FitObservation{{N: 2, K: 5, T: 5}, {N: 4, K: 5, T: 5}}
	if got := RSquared(RandomizedFit{KCoeff: 1}, constObs); got != 1 {
		t.Errorf("perfect fit of constant data = %v, want 1", got)
	}
	if got := RSquared(RandomizedFit{KCoeff: 2}, constObs); got != 0 {
		t.Errorf("bad fit of constant data = %v, want 0", got)
	}
}

func TestPaperFitPrediction(t *testing.T) {
	// The paper's quoted fit at (n=1024, k=1000): 1.01*1000 + 2.5*10 - 2.2.
	got := PaperRandomizedFit.Predict(1024, 1000)
	want := 1010 + 25 - 2.2
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

// Property: the general strict-barter bound is monotone in k (more
// blocks can never finish sooner) and always at least k. It is NOT
// monotone in n — adding a client adds barter capacity whose parity can
// shave a tick — so that direction is deliberately not asserted.
func TestQuickStrictBoundMonotone(t *testing.T) {
	rng := xrand.New(3)
	f := func(n, k uint8) bool {
		nn, kk := int(n)+2, int(k)+1
		b := StrictBarterLowerBound(nn, kk)
		return StrictBarterLowerBound(nn, kk+1) >= b && b >= kk
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, _ *rand.Rand) {
			args[0] = reflect.ValueOf(uint8(rng.Intn(256)))
			args[1] = reflect.ValueOf(uint8(rng.Intn(256)))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
