package analysis

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

func log2(x float64) float64 { return math.Log2(x) }

// Summary holds basic statistics for a sample of completion times.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
	// CI95 is the half-width of the 95% confidence interval on the mean
	// using the normal approximation (the paper plots 95% error bars the
	// same way over repeated runs).
	CI95 float64
}

// Summarize computes summary statistics. It returns an error for an
// empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, errors.New("analysis: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(xs)-1))
		s.CI95 = 1.96 * s.StdDev / math.Sqrt(float64(len(xs)))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s, nil
}

// FitObservation is one (n, k, T) data point for the regression of
// Section 2.4.4.
type FitObservation struct {
	N int
	K int
	T float64
}

// FitLinear2 performs the paper's least-squares fit
// T ≈ a·k + b·log2(n) + c over the observations, solving the 3x3 normal
// equations directly. It returns an error when the system is singular
// (fewer than three affinely independent observations).
func FitLinear2(obs []FitObservation) (RandomizedFit, error) {
	if len(obs) < 3 {
		return RandomizedFit{}, fmt.Errorf("analysis: need >= 3 observations, got %d", len(obs))
	}
	// Design matrix columns: x1 = k, x2 = log2 n, x3 = 1.
	var m [3][3]float64 // X^T X
	var v [3]float64    // X^T y
	for _, o := range obs {
		x := [3]float64{float64(o.K), log2(float64(o.N)), 1}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += x[i] * x[j]
			}
			v[i] += x[i] * o.T
		}
	}
	sol, err := solve3(m, v)
	if err != nil {
		return RandomizedFit{}, err
	}
	return RandomizedFit{KCoeff: sol[0], LogNCoeff: sol[1], Const: sol[2]}, nil
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(m [3][3]float64, v [3]float64) ([3]float64, error) {
	var a [3][4]float64
	for i := 0; i < 3; i++ {
		copy(a[i][:3], m[i][:])
		a[i][3] = v[i]
	}
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return [3]float64{}, errors.New("analysis: singular normal equations (observations not independent)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = a[i][3] / a[i][i]
	}
	return out, nil
}

// RSquared returns the coefficient of determination of fit over obs.
func RSquared(fit RandomizedFit, obs []FitObservation) float64 {
	if len(obs) == 0 {
		return 0
	}
	meanT := 0.0
	for _, o := range obs {
		meanT += o.T
	}
	meanT /= float64(len(obs))
	ssRes, ssTot := 0.0, 0.0
	for _, o := range obs {
		d := o.T - fit.Predict(o.N, o.K)
		ssRes += d * d
		dt := o.T - meanT
		ssTot += dt * dt
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
