package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"barterdist/internal/lint"
)

// Escape-gate: PR 5 drove the steady-state tick to ~0 allocations and
// the figure suites down 22–31× in B/op; nothing but benchmarks
// guards that today, and benchmarks only catch regressions big enough
// to poke through noise. The gate instead asks the compiler: run
// `go build -gcflags=-m` over the module, collect the escape-analysis
// and inlining diagnostics for a declared list of hot-path functions,
// and fail `make check` on ANY drift from the committed baseline
// (ANALYSIS.json "escape") — a new value escaping to the heap, a
// parameter newly leaking into an allocation, or a previously
// inlinable helper becoming too complex to inline. Legitimate changes
// re-baseline with `cdvet -update`, which makes the cost visible in
// review instead of silent.
//
// Diagnostics are recorded per function as position-stripped sorted
// message multisets, so unrelated edits that only shift line numbers
// do not churn the baseline.

// GateStatus is one gated function's compiler verdict.
type GateStatus struct {
	Func      string   `json:"func"`
	CanInline bool     `json:"can_inline"`
	Escapes   []string `json:"escapes,omitempty"`
}

// EscapeReport is the committed escape section of ANALYSIS.json.
type EscapeReport struct {
	Gates []GateStatus `json:"gates"`
}

// defaultEscapeGateTemplates declare the hot-path functions held to
// their baselined allocation behavior, with the module path as MOD:
// the tick cores, the per-peer pickers, the bitset word scans, the
// trace and checkpoint append paths, the ledger/guard lookups on the
// pairing path, and the graph pairing arena.
var defaultEscapeGateTemplates = []string{
	// synchronous engine tick core
	"(*MOD/internal/simulate.runner).step",
	"MOD/internal/simulate.validate",
	"(*MOD/internal/simulate.capScratch).reset",
	"(*MOD/internal/simulate.capScratch).addUp",
	"(*MOD/internal/simulate.capScratch).addDown",
	// randomized scheduler + pickers
	"(*MOD/internal/randomized.Scheduler).Tick",
	"(*MOD/internal/randomized.Scheduler).beginTick",
	"(*MOD/internal/randomized.Scheduler).pickReceiver",
	"(*MOD/internal/randomized.Scheduler).pickReceiverComplete",
	"(*MOD/internal/randomized.Scheduler).pickBlock",
	"(*MOD/internal/randomized.Scheduler).qualify",
	"(*MOD/internal/randomized.Scheduler).qualifiedIndexed",
	"(*MOD/internal/randomized.Scheduler).needsSomething",
	"(*MOD/internal/randomized.Scheduler).blockFreq",
	"(*MOD/internal/randomized.Scheduler).removeAvail",
	// sharded tick: per-lane proposal pass + barrier merge
	"(*MOD/internal/randomized.Scheduler).runLane",
	"(*MOD/internal/randomized.Scheduler).attempt",
	"(*MOD/internal/randomized.Scheduler).merge",
	"(*MOD/internal/randomized.Scheduler).interestSize",
	"(*MOD/internal/randomized.Scheduler).laneRes",
	"(*MOD/internal/randomized.Scheduler).blockInFlight",
	"(*MOD/internal/randomized.Scheduler).blockInFlightGlobal",
	"MOD/internal/randomized.mix64",
	"MOD/internal/randomized.prioBase",
	// incremental eligibility index (the O(n) scan replacement)
	"(*MOD/internal/randomized.eligIndex).add",
	"(*MOD/internal/randomized.eligIndex).remove",
	"(*MOD/internal/randomized.eligIndex).has",
	// shard decomposition helpers on the lane path
	"MOD/internal/shard.Of",
	"MOD/internal/shard.Shuffle32",
	// triangular scheduler
	"(*MOD/internal/randomized.TriangularScheduler).Tick",
	"(*MOD/internal/randomized.TriangularScheduler).pickIntent",
	"(*MOD/internal/randomized.TriangularScheduler).needs",
	"(*MOD/internal/randomized.TriangularScheduler).pickBlockFor",
	"(*MOD/internal/randomized.TriangularScheduler).findCycle",
	"(*MOD/internal/randomized.TriangularScheduler).settleLedger",
	"(*MOD/internal/randomized.TriangularScheduler).runIntentLane",
	"(*MOD/internal/randomized.TriangularScheduler).proposeIntent",
	// bt protocol
	"(*MOD/internal/bt.Protocol).NextUpload",
	"(*MOD/internal/bt.Protocol).recomputeChokes",
	"(*MOD/internal/bt.Protocol).rarestNeeded",
	// asynchronous engine + its randomized protocol
	"(*MOD/internal/asim.engine).loop",
	"(*MOD/internal/asim.engine).tryStartUpload",
	"(*MOD/internal/asim.engine).finishTransfer",
	"(*MOD/internal/asim.engine).newEvent",
	"(*MOD/internal/asim.AsyncRandomized).NextUpload",
	"(*MOD/internal/asim.AsyncRandomized).pickTarget",
	"(*MOD/internal/asim.AsyncRandomized).usefulFor",
	"(*MOD/internal/asim.AsyncRandomized).pickBlock",
	// bitset word scans
	"(*MOD/internal/bitset.Set).Has",
	"(*MOD/internal/bitset.Set).Add",
	"(*MOD/internal/bitset.Set).IterDiff",
	"(*MOD/internal/bitset.Set).IterateMissing",
	"(*MOD/internal/bitset.Set).FirstMissingIn",
	"(*MOD/internal/bitset.Set).AnyMissingFrom",
	"(*MOD/internal/bitset.Set).AccumulateCounts",
	"(*MOD/internal/bitset.Set).Iter",
	// columnar trace append + cursor
	"(*MOD/internal/trace.Log).Reserve",
	"(*MOD/internal/trace.Log).AppendTick",
	"(*MOD/internal/trace.Log).appendKind",
	"(*MOD/internal/trace.Cursor).Next",
	"(*MOD/internal/trace.Cursor).NextTick",
	// barter mechanisms on the pairing path
	"(*MOD/internal/mechanism.Ledger).CanSend",
	"(*MOD/internal/mechanism.Ledger).Record",
	"(*MOD/internal/mechanism.Ledger).Unrecord",
	"MOD/internal/mechanism.pairKey",
	// quarantine guard on the pairing path
	"(*MOD/internal/adversary.Guard).Strike",
	"(*MOD/internal/adversary.Guard).Blocked",
	"MOD/internal/adversary.guardKey",
	"(*MOD/internal/adversary.Plan).Refuses",
	// checkpoint encoder inner loops
	"(*MOD/internal/checkpoint.Encoder).U64",
	"(*MOD/internal/checkpoint.Encoder).Uint64s",
	"(*MOD/internal/checkpoint.Encoder).Int32s",
	"MOD/internal/checkpoint.appendU64",
	// graph pairing arena
	"MOD/internal/graph.tryPairing",
	// rng hot path
	"(*MOD/internal/xrand.Rand).Uint64",
	"(*MOD/internal/xrand.Rand).Intn",
	"(*MOD/internal/xrand.Rand).Shuffle",
}

// DefaultEscapeGates returns the gated hot-path function list for the
// given module.
func DefaultEscapeGates(modulePath string) []string {
	return expandRoots(defaultEscapeGateTemplates, modulePath)
}

// BuildEscapeDiagnostics runs `go build -gcflags=-m ./...` in
// moduleRoot and returns the raw diagnostic lines. The Go build cache
// replays -m diagnostics on cache hits (verified on go1.24), so a
// clean tree re-gates in roughly `go build` no-op time.
func BuildEscapeDiagnostics(moduleRoot string) ([]string, error) {
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = moduleRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("analysis: go build -gcflags=-m: %v\n%s", err, out)
	}
	return strings.Split(string(out), "\n"), nil
}

// funcExtent is one declared function's file span.
type funcExtent struct {
	start, end int // lines, inclusive
	name       string
}

// Escape computes the gate statuses for the declared hot-path
// functions. pkgs must be the module's packages (the loader's view is
// used to map diagnostic positions to enclosing declarations); diags
// come from BuildEscapeDiagnostics. A gate naming a function that no
// longer exists is an error: renames must update the gate list.
func Escape(moduleRoot string, fset *token.FileSet, pkgs []*lint.Package, gates []string, diags []string) (*EscapeReport, error) {
	// Index every gated declaration's extent by file.
	gateSet := make(map[string]bool, len(gates))
	for _, g := range gates {
		gateSet[g] = true
	}
	extents := make(map[string][]funcExtent) // abs file path -> extents
	found := make(map[string]bool, len(gates))
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				name := fn.FullName()
				if !gateSet[name] {
					continue
				}
				found[name] = true
				start := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				extents[start.Filename] = append(extents[start.Filename], funcExtent{
					start: start.Line, end: end.Line, name: name,
				})
			}
		}
	}
	var missing []string
	for _, g := range gates {
		if !found[g] {
			missing = append(missing, g)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return nil, fmt.Errorf("analysis: escape gates name functions that do not exist (renamed? update the gate list): %s",
			strings.Join(missing, ", "))
	}

	status := make(map[string]*GateStatus, len(gates))
	for _, g := range gates {
		status[g] = &GateStatus{Func: g}
	}
	for _, line := range diags {
		file, lineNo, msg, ok := parseDiag(line)
		if !ok {
			continue
		}
		abs := file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(moduleRoot, file)
		}
		exts := extents[abs]
		if exts == nil {
			continue
		}
		for _, ext := range exts {
			if lineNo < ext.start || lineNo > ext.end {
				continue
			}
			st := status[ext.name]
			switch {
			case strings.HasPrefix(msg, "can inline ") && lineNo == ext.start:
				st.CanInline = true
			case isEscapeDiag(msg):
				st.Escapes = append(st.Escapes, msg)
			}
			break
		}
	}
	report := &EscapeReport{}
	for _, g := range gates {
		st := status[g]
		sort.Strings(st.Escapes)
		report.Gates = append(report.Gates, *st)
	}
	sort.Slice(report.Gates, func(i, j int) bool { return report.Gates[i].Func < report.Gates[j].Func })
	return report, nil
}

// parseDiag splits a "path/file.go:line:col: message" diagnostic.
func parseDiag(line string) (file string, lineNo int, msg string, ok bool) {
	if strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "" {
		return "", 0, "", false
	}
	i := strings.Index(line, ".go:")
	if i < 0 {
		return "", 0, "", false
	}
	file = line[:i+3]
	rest := line[i+4:]
	j := strings.IndexByte(rest, ':')
	if j < 0 {
		return "", 0, "", false
	}
	if _, err := fmt.Sscanf(rest[:j], "%d", &lineNo); err != nil {
		return "", 0, "", false
	}
	rest = rest[j+1:]
	// column, then ": message"
	k := strings.Index(rest, ": ")
	if k < 0 {
		return "", 0, "", false
	}
	return file, lineNo, rest[k+2:], true
}

// isEscapeDiag reports whether a -m message describes a heap
// allocation the gate cares about. "does not escape" and "leaking
// param" lines are informational, not allocations.
func isEscapeDiag(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.HasSuffix(msg, "escapes to heap") ||
		strings.HasPrefix(msg, "moved to heap:")
}

// CompareEscape diffs a freshly-computed report against the committed
// baseline, returning one human-readable line per drift.
func CompareEscape(baseline, current *EscapeReport) []string {
	old := make(map[string]GateStatus, len(baseline.Gates))
	for _, g := range baseline.Gates {
		old[g.Func] = g
	}
	cur := make(map[string]GateStatus, len(current.Gates))
	for _, g := range current.Gates {
		cur[g.Func] = g
	}
	var diffs []string
	for _, g := range current.Gates {
		o, ok := old[g.Func]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%s: gated but absent from baseline (run cdvet -update)", g.Func))
			continue
		}
		if o.CanInline && !g.CanInline {
			diffs = append(diffs, fmt.Sprintf("%s: lost inlining (baseline: inlinable)", g.Func))
		}
		if !o.CanInline && g.CanInline {
			diffs = append(diffs, fmt.Sprintf("%s: newly inlinable (improvement — run cdvet -update to lock it in)", g.Func))
		}
		added, removed := diffStrings(o.Escapes, g.Escapes)
		for _, m := range added {
			diffs = append(diffs, fmt.Sprintf("%s: NEW heap escape: %s", g.Func, m))
		}
		for _, m := range removed {
			diffs = append(diffs, fmt.Sprintf("%s: escape fixed (improvement — run cdvet -update to lock it in): %s", g.Func, m))
		}
	}
	for _, g := range baseline.Gates {
		if _, ok := cur[g.Func]; !ok {
			diffs = append(diffs, fmt.Sprintf("%s: in baseline but no longer gated (run cdvet -update)", g.Func))
		}
	}
	sort.Strings(diffs)
	return diffs
}

// diffStrings compares two sorted multisets.
func diffStrings(old, new []string) (added, removed []string) {
	counts := make(map[string]int)
	for _, s := range old {
		counts[s]--
	}
	for _, s := range new {
		counts[s]++
	}
	for s, c := range counts {
		for ; c > 0; c-- {
			added = append(added, s)
		}
		for ; c < 0; c++ {
			removed = append(removed, s)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}
