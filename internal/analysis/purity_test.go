package analysis

import (
	"strings"
	"testing"

	"barterdist/internal/lint"
)

// purityFixture runs the shard-purity analysis over the puritycases
// fixture with its three Pair* functions as pairing roots.
func purityFixture(t *testing.T) (*PurityReport, []lint.Finding, *lint.Loader, *lint.Package) {
	t.Helper()
	loader, pkg := loadFixturePkg(t, "puritycases", "fixture/puritycases")
	roots := []string{
		"fixture/puritycases.PairPeer",
		"fixture/puritycases.PairQuiet",
		"fixture/puritycases.PairDynamic",
	}
	report, findings, err := Purity("fixture/puritycases", loader.Fset, []*lint.Package{pkg}, roots, roots)
	if err != nil {
		t.Fatalf("Purity: %v", err)
	}
	return report, findings, loader, pkg
}

func TestPurityClassification(t *testing.T) {
	report, _, _, _ := purityFixture(t)
	want := map[string]PurityClass{
		"fixture/puritycases.BlocksOf":     ClassPure,
		"(*fixture/puritycases.Peer).Mark": ClassReceiverLocal,
		"fixture/puritycases.FillWindow":   ClassParamWriting,
		"fixture/puritycases.tally":        ClassSharedWriting,
		"fixture/puritycases.PairPeer":     ClassSharedWriting, // inherits tally
		"fixture/puritycases.noteAudit":    ClassSharedWriting, // true class survives suppression
		"fixture/puritycases.PairQuiet":    ClassParamWriting,  // suppressed origin not propagated
		"fixture/puritycases.PairDynamic":  ClassUnknown,
	}
	got := make(map[string]PurityFunc, len(report.Functions))
	for _, f := range report.Functions {
		got[f.Func] = f
	}
	for name, class := range want {
		f, ok := got[name]
		if !ok {
			t.Errorf("%s missing from report", name)
			continue
		}
		if f.Class != class {
			t.Errorf("%s classified %s, want %s (writes %v)", name, f.Class, class, f.Writes)
		}
		if !f.Pairing {
			t.Errorf("%s not marked pairing-reachable", name)
		}
	}
	if f := got["fixture/puritycases.noteAudit"]; !f.Suppressed {
		t.Error("noteAudit not marked suppressed in the report")
	}
	if f := got["fixture/puritycases.PairPeer"]; !hasWrite(f.Writes, "global:fixture/puritycases.sharedCount") {
		t.Errorf("PairPeer writes = %v, want propagated shared write", f.Writes)
	}
	if f := got["fixture/puritycases.PairQuiet"]; hasWrite(f.Writes, "global:fixture/puritycases.auditLog") {
		t.Errorf("PairQuiet inherited a suppressed origin's write: %v", f.Writes)
	}
}

func hasWrite(writes []string, w string) bool {
	for _, x := range writes {
		if x == w {
			return true
		}
	}
	return false
}

func TestPurityFindingsAtOrigins(t *testing.T) {
	_, findings, loader, pkg := purityFixture(t)
	// Findings land exactly where the fixture's want comments say: at
	// tally's shared write and PairDynamic's dynamic call — never at
	// the callers that inherit the class, never at the suppressed
	// noteAudit.
	matchWants(t, loader.Fset, pkg.Files, findings, "puritycases")
	for _, f := range findings {
		if strings.Contains(f.Msg, "auditLog") {
			t.Errorf("suppressed origin reported: %s", f)
		}
	}
}

func TestPurityMissingRootIsError(t *testing.T) {
	loader, pkg := loadFixturePkg(t, "puritycases", "fixture/puritycases")
	_, _, err := Purity("fixture/puritycases", loader.Fset, []*lint.Package{pkg},
		[]string{"fixture/puritycases.Renamed"}, nil)
	if err == nil || !strings.Contains(err.Error(), "Renamed") {
		t.Fatalf("expected missing-root error, got %v", err)
	}
}

func TestDefaultRootsResolveOnRealModule(t *testing.T) {
	// The declared tick/pairing roots must exist in the real module —
	// a renamed picker has to update the root list, not silently
	// shrink the certified surface. (The full meta-gate lives in
	// metagate_test.go; this pins just the root resolution.)
	loader, err := lint.NewLoader(moduleRoot)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	mod := loader.ModulePath()
	report, _, err := Purity(mod, loader.Fset, pkgs, DefaultPairingRoots(mod), DefaultPurityRoots(mod))
	if err != nil {
		t.Fatalf("Purity: %v", err)
	}
	if len(report.Functions) < 100 {
		t.Fatalf("only %d functions reachable from the tick core; call-graph construction is broken", len(report.Functions))
	}
	pairing := 0
	for _, f := range report.Functions {
		if f.Pairing {
			pairing++
		}
	}
	if pairing < 20 {
		t.Fatalf("only %d functions pairing-reachable; pairing reachability is broken", pairing)
	}
}
