// Package trace stores simulation transfer traces in columnar,
// append-only, frame-compressed form.
//
// The synchronous engine used to record its trace as [][]Transfer — a
// slice header plus a backing array per tick, with two more ragged
// slices ([][]int, [][]uint8) on the side for drops. At n = 10^5 peers
// a single run schedules ~n·k ≈ 6.4M transfers, and the per-tick slice
// churn made tracing OOM-class. A Log stores the same information as
// flat columns:
//
//	from, to, block            one entry per scheduled transfer,
//	                           frame-compressed (see below)
//	tickEnd         []uint32   prefix offsets: tick t (0-based) spans
//	                           [tickEnd[t-1], tickEnd[t])
//	dropPos         []uint32   global transfer indices of drops,
//	                           strictly ascending
//	dropKind        []uint8    packed two-per-byte drop kinds (kinded
//	                           logs only)
//	dropTickEnd     []uint32   prefix offsets over dropPos per tick
//
// The three per-transfer columns are the bulk of the footprint — a
// flat 12 B/transfer, ≈768 MiB of columns alone at n=10⁶ — so they
// are stored as fixed-size frames of 64Ki entries. Appends land in a
// raw open tail; when the tail reaches the frame size it is sealed
// off the tick path into an immutable byte block whose three columns
// each pick the cheapest of const/bitpack/delta/low-bit-RLE
// encodings (frame.go), which measures under 5 B/transfer on the
// Table Scale runs. The tick and drop offset columns stay raw: they
// are per-tick, not per-transfer, and the auditors index them
// directly.
//
// Appending a tick touches only the open tail, so steady-state
// recording is allocation-free once the columns are Reserved; sealing
// costs one exact-size allocation per 64Ki transfers. Consumers —
// fingerprints, the post-hoc auditors, the mechanism verifiers,
// cdverify — read the Log through a streaming Cursor or a Window and
// never materialize the nested form. A sealed Log is immutable shared
// state: any number of goroutines may read it concurrently as long as
// each owns its Cursor or Win (the parallel audit pipeline leans on
// this).
//
// # Adding a column
//
// New per-transfer attributes get their own column appended in
// AppendTick and exposed through a Cursor accessor; per-tick
// attributes get a raw []T column indexed by tick. Keep columns
// parallel (same length invariants as from/to/block) and extend
// Reserve with the new column; a per-transfer column that matters at
// scale gets its own frame encoding in frame.go.
package trace

import "fmt"

// Transfer is one block moving from one node to another within a tick.
// It is the unit every column triple (from, to, block) encodes; the
// synchronous simulator aliases this type.
type Transfer struct {
	From  int32
	To    int32
	Block int32
}

// Drop kinds, recorded per dropped transfer in kinded logs. The order
// is load-bearing: kinds below KindRefused are network faults, kinds
// at or above it are the sender's own strategy (and are filtered from
// the released view the mechanism verifiers audit).
const (
	// KindFault: vanished in the network (fault layer).
	KindFault uint8 = iota
	// KindFaultCorrupt: corrupted in the network, discarded at
	// verification.
	KindFaultCorrupt
	// KindRefused: the sender silently refused (free-rider, completed
	// defector, throttler outside its window).
	KindRefused
	// KindStalled: a false-advertiser's claimed block never
	// materialized.
	KindStalled
	// KindGarbage: a corrupter's bytes failed verification.
	KindGarbage

	// NumKinds is the number of distinct drop kinds.
	NumKinds = int(KindGarbage) + 1
)

// Log is a columnar, append-only transfer trace. The zero value is not
// ready; use New.
type Log struct {
	frames                      []frame  // sealed 64Ki-entry blocks
	openFrom, openTo, openBlock []uint32 // raw tail, < frameLen entries
	tickEnd                     []uint32
	dropPos                     []uint32
	dropKind                    []uint8 // two kinds per byte, low nibble first
	kindLen                     int     // kinds stored in dropKind
	dropTickEnd                 []uint32
	kinded                      bool

	enc *encScratch // seal workspace, lazily allocated
	win *Win        // At/Set decode window; not for concurrent readers
}

// New returns an empty log. kinded selects whether per-drop kinds are
// recorded (adversarial runs); unkinded logs treat every drop as a
// network fault.
func New(kinded bool) *Log { return &Log{kinded: kinded} }

// Reserve grows the columns to hold at least the given number of
// *further* transfers, ticks, and drops without allocation on the
// append path. Closed runs derive the transfer hint from the
// completion bound — a full run delivers exactly (n-1)·k useful
// blocks, so that is the floor on the scheduled-transfer count.
//
// Reservation is frame-granular: the open tail never needs more than
// one frame's worth of capacity, so a reservation beyond frameLen
// transfers sizes the tail to a full frame and pre-grows the sealed
// frame index instead. Seals themselves still allocate (one
// exact-size block per 64Ki transfers) — that is off the tick path
// and amortizes to well under one allocation per tick.
//
// The counts are hints, never caps. Open-system runs have no fixed
// (n-1)·k bound — the cumulative arrival stream is unbounded and a
// truncated (Unstable) run can deliver far less or idle far longer
// than any estimate — so appends past the reservation simply fall back
// to Go's append doubling; nothing is dropped and nothing over-runs.
// Reserve is also additive from the current length, so a caller that
// discovers mid-run that its estimate was short may Reserve again to
// restore the zero-alloc steady state.
func (l *Log) Reserve(transfers, ticks, drops int) {
	grow32 := func(s []uint32, n int) []uint32 {
		if cap(s)-len(s) >= n {
			return s
		}
		out := make([]uint32, len(s), len(s)+n)
		copy(out, s)
		return out
	}
	if transfers > 0 {
		// The open tail seals at frameLen entries, so it never needs
		// more capacity than one frame regardless of the hint.
		t := transfers
		if len(l.openFrom)+t > frameLen {
			t = frameLen - len(l.openFrom)
		}
		if t > 0 {
			l.openFrom = grow32(l.openFrom, t)
			l.openTo = grow32(l.openTo, t)
			l.openBlock = grow32(l.openBlock, t)
		}
		if extra := transfers >> frameShift; extra > 0 && cap(l.frames)-len(l.frames) < extra {
			out := make([]frame, len(l.frames), len(l.frames)+extra)
			copy(out, l.frames)
			l.frames = out
		}
		if transfers >= frameLen && l.enc == nil {
			l.enc = newEncScratch()
		}
	}
	if ticks > 0 {
		l.tickEnd = grow32(l.tickEnd, ticks)
		l.dropTickEnd = grow32(l.dropTickEnd, ticks)
	}
	if drops > 0 {
		l.dropPos = grow32(l.dropPos, drops)
		if l.kinded && cap(l.dropKind)-len(l.dropKind) < (drops+1)/2 {
			out := make([]uint8, len(l.dropKind), len(l.dropKind)+(drops+1)/2)
			copy(out, l.dropKind)
			l.dropKind = out
		}
	}
}

// AppendTick records one tick: ts is the tick's scheduled transfer
// list, dropIdx the strictly ascending local indices (into ts) of the
// transfers that never delivered, and dropKinds their causes (required
// for kinded logs, ignored otherwise). The slices are copied; callers
// reuse them across ticks.
func (l *Log) AppendTick(ts []Transfer, dropIdx []int32, dropKinds []uint8) {
	base := uint32(l.Len())
	for _, tr := range ts {
		l.openFrom = append(l.openFrom, uint32(tr.From))
		l.openTo = append(l.openTo, uint32(tr.To))
		l.openBlock = append(l.openBlock, uint32(tr.Block))
		if len(l.openFrom) == frameLen {
			l.sealOpen()
		}
	}
	l.tickEnd = append(l.tickEnd, uint32(l.Len()))
	prev := int32(-1)
	for _, idx := range dropIdx {
		if idx <= prev || int(idx) >= len(ts) {
			panic(fmt.Sprintf("trace: drop index %d out of order or out of range (tick of %d transfers)", idx, len(ts)))
		}
		prev = idx
		l.dropPos = append(l.dropPos, base+uint32(idx))
	}
	if l.kinded {
		if len(dropKinds) != len(dropIdx) {
			panic(fmt.Sprintf("trace: %d drop kinds for %d drops in a kinded log", len(dropKinds), len(dropIdx)))
		}
		for _, k := range dropKinds {
			l.appendKind(k)
		}
	}
	l.dropTickEnd = append(l.dropTickEnd, uint32(len(l.dropPos)))
}

// appendKind packs one more drop kind. The kind for drop j lives in
// dropKind[j/2], low nibble for even j; kinds are appended in the same
// order as dropPos entries.
func (l *Log) appendKind(k uint8) {
	j := l.kindLen
	if j%2 == 0 {
		l.dropKind = append(l.dropKind, k&0x0f)
	} else {
		l.dropKind[j/2] |= (k & 0x0f) << 4
	}
	l.kindLen++
}

// kindAt returns the kind of drop j (an index into dropPos).
func (l *Log) kindAt(j int) uint8 {
	b := l.dropKind[j/2]
	if j%2 == 1 {
		b >>= 4
	}
	return b & 0x0f
}

// Ticks returns the number of recorded ticks.
func (l *Log) Ticks() int { return len(l.tickEnd) }

// Len returns the total number of scheduled transfers.
func (l *Log) Len() int { return l.sealedLen() + len(l.openFrom) }

// Drops returns the total number of recorded drops.
func (l *Log) Drops() int { return len(l.dropPos) }

// Kinded reports whether per-drop kinds are recorded.
func (l *Log) Kinded() bool { return l.kinded }

// At returns transfer i (a global index in [0, Len())). Sealed frames
// are decoded through the Log's shared window, so At is for
// single-goroutine use; concurrent readers take a Cursor or Window.
func (l *Log) At(i int) Transfer {
	if s := l.sealedLen(); i >= s {
		j := i - s
		return Transfer{From: int32(l.openFrom[j]), To: int32(l.openTo[j]), Block: int32(l.openBlock[j])}
	}
	if l.win == nil {
		l.win = &Win{}
	}
	f := i >> frameShift
	if l.win.from == nil || l.win.idx != f {
		l.decodeFrame(f, l.win)
	}
	j := i & frameMask
	return Transfer{From: int32(l.win.from[j]), To: int32(l.win.to[j]), Block: int32(l.win.block[j])}
}

// Set overwrites transfer i. It exists for the audit tests, which
// doctor recorded traces to prove the auditors catch tampering; a Set
// inside a sealed frame re-encodes that frame.
func (l *Log) Set(i int, tr Transfer) {
	if s := l.sealedLen(); i >= s {
		j := i - s
		l.openFrom[j] = uint32(tr.From)
		l.openTo[j] = uint32(tr.To)
		l.openBlock[j] = uint32(tr.Block)
		return
	}
	if l.win == nil {
		l.win = &Win{}
	}
	f := i >> frameShift
	if l.win.from == nil || l.win.idx != f {
		l.decodeFrame(f, l.win)
	}
	j := i & frameMask
	l.win.from[j] = uint32(tr.From)
	l.win.to[j] = uint32(tr.To)
	l.win.block[j] = uint32(tr.Block)
	l.reencodeFrame(f, l.win)
}

// TruncateTicks discards every tick at or after t (0-based), keeping
// the first t ticks. Like Set, it exists for the audit tests, which
// doctor recorded traces to prove the auditors catch tampering. A cut
// inside a sealed frame reopens that frame: its surviving prefix
// becomes the raw open tail again.
func (l *Log) TruncateTicks(t int) {
	if t >= l.Ticks() {
		return
	}
	var end, dend uint32
	if t > 0 {
		end, dend = l.tickEnd[t-1], l.dropTickEnd[t-1]
	}
	n := int(end)
	if s := l.sealedLen(); n >= s {
		keep := n - s
		l.openFrom = l.openFrom[:keep]
		l.openTo = l.openTo[:keep]
		l.openBlock = l.openBlock[:keep]
	} else {
		f := n >> frameShift
		var w Win
		l.decodeFrame(f, &w)
		keep := n & frameMask
		l.frames = l.frames[:f]
		l.openFrom = append(l.openFrom[:0], w.from[:keep]...)
		l.openTo = append(l.openTo[:0], w.to[:keep]...)
		l.openBlock = append(l.openBlock[:0], w.block[:keep]...)
		if l.win != nil {
			l.win.invalidate()
		}
	}
	l.tickEnd = l.tickEnd[:t]
	l.dropPos = l.dropPos[:dend]
	l.dropTickEnd = l.dropTickEnd[:t]
	if l.kinded {
		l.kindLen = int(dend)
		l.dropKind = l.dropKind[:(dend+1)/2]
		if dend%2 == 1 {
			l.dropKind[dend/2] &= 0x0f // clear the stale high nibble
		}
	}
}

// TickSpan returns the global index range [start, end) of tick t
// (0-based).
func (l *Log) TickSpan(t int) (start, end int) {
	if t > 0 {
		start = int(l.tickEnd[t-1])
	}
	return start, int(l.tickEnd[t])
}

// TickLen returns the number of transfers scheduled in tick t (0-based).
func (l *Log) TickLen(t int) int {
	start, end := l.TickSpan(t)
	return end - start
}

// dropSpan returns the range of dropPos indices belonging to tick t.
func (l *Log) dropSpan(t int) (start, end int) {
	if t > 0 {
		start = int(l.dropTickEnd[t-1])
	}
	return start, int(l.dropTickEnd[t])
}

// AppendTickTransfers appends tick t's transfers to dst and returns it.
func (l *Log) AppendTickTransfers(t int, dst []Transfer) []Transfer {
	start, end := l.TickSpan(t)
	for i := start; i < end; i++ {
		dst = append(dst, l.At(i))
	}
	return dst
}

// AppendTickDrops appends tick t's drop indices (local to the tick) and
// kinds to idx and kinds and returns both. For unkinded logs kinds is
// returned unchanged.
func (l *Log) AppendTickDrops(t int, idx []int32, kinds []uint8) ([]int32, []uint8) {
	tickStart, _ := l.TickSpan(t)
	ds, de := l.dropSpan(t)
	for j := ds; j < de; j++ {
		idx = append(idx, int32(int(l.dropPos[j])-tickStart))
		if l.kinded {
			kinds = append(kinds, l.kindAt(j))
		}
	}
	return idx, kinds
}

// MemSize returns the approximate heap footprint of the columns in
// bytes, for capacity reporting in scale experiments: the compressed
// sealed frames, the raw open tail, and the tick/drop offset columns.
// Decode windows and the seal scratch are transient per-reader
// workspace (one frame's worth each) and are not counted.
func (l *Log) MemSize() int {
	sz := 0
	for i := range l.frames {
		sz += len(l.frames[i].data)
	}
	return sz +
		4*(cap(l.openFrom)+cap(l.openTo)+cap(l.openBlock)) +
		4*(cap(l.tickEnd)+cap(l.dropPos)+cap(l.dropTickEnd)) +
		cap(l.dropKind)
}

// Compact trims the open tail's spare capacity (reserved at frame
// granularity for the append path) and drops the seal and decode
// workspaces. The engines call it once recording ends, so MemSize and
// resident memory reflect the compressed columns alone; appending
// after Compact is correct but re-allocates.
func (l *Log) Compact() {
	trim := func(s []uint32) []uint32 {
		if cap(s) == len(s) {
			return s
		}
		out := make([]uint32, len(s))
		copy(out, s)
		return out
	}
	l.openFrom = trim(l.openFrom)
	l.openTo = trim(l.openTo)
	l.openBlock = trim(l.openBlock)
	l.enc = nil
	l.win = nil
}

// Cursor returns a streaming cursor over every scheduled transfer.
func (l *Log) Cursor() *Cursor { return &Cursor{l: l, t: -1} }

// ReleasedCursor returns a cursor over the released view: transfers a
// sender's own strategy refused, stalled, or garbled (kind >=
// KindRefused) are skipped — they were never released, so the
// mechanism verifiers must not charge them. Network-fault drops stay
// in: a block lost in flight still consumed the sender's credit. For
// unkinded logs the released view is the full trace.
func (l *Log) ReleasedCursor() *Cursor { return &Cursor{l: l, t: -1, released: true} }

// Cursor streams a Log tick by tick, transfer by transfer. Usage:
//
//	c := log.Cursor()
//	for c.NextTick() {
//		for c.Next() {
//			tr := c.Transfer()
//			if c.Dropped() { ... c.Kind() ... }
//		}
//	}
//
// A cursor is single-use and must not outlive mutation of the Log.
// Each cursor owns its decode window, so any number of cursors may
// stream the same (no longer appended-to) Log concurrently.
type Cursor struct {
	l        *Log
	released bool

	t          int // current tick, 0-based; -1 before NextTick
	start, end int // transfer span of current tick
	di, de     int // dropPos span: next candidate drop, tick end
	i          int // next transfer to visit

	cur     int // current transfer (global index)
	dropped bool
	kind    uint8

	win Win // per-cursor decode window over sealed frames
}

// NextTick advances to the next tick, returning false past the end.
// Any unvisited transfers of the previous tick are skipped.
func (c *Cursor) NextTick() bool {
	c.t++
	if c.t >= c.l.Ticks() {
		return false
	}
	c.start, c.end = c.l.TickSpan(c.t)
	c.di, c.de = c.l.dropSpan(c.t)
	c.i = c.start
	c.cur = -1
	return true
}

// Tick returns the 1-based tick number of the current tick.
func (c *Cursor) Tick() int { return c.t + 1 }

// TickLen returns the number of transfers scheduled in the current
// tick (including ones a released cursor will skip).
func (c *Cursor) TickLen() int { return c.end - c.start }

// Next advances to the next transfer within the current tick.
func (c *Cursor) Next() bool {
	for c.i < c.end {
		i := c.i
		c.i++
		dropped, kind := false, KindFault
		if c.di < c.de && int(c.l.dropPos[c.di]) == i {
			dropped = true
			if c.l.kinded {
				kind = c.l.kindAt(c.di)
			}
			c.di++
		}
		if c.released && dropped && kind >= KindRefused {
			continue // never released by the sender
		}
		c.cur, c.dropped, c.kind = i, dropped, kind
		return true
	}
	return false
}

// Transfer returns the current transfer.
func (c *Cursor) Transfer() Transfer {
	l := c.l
	i := c.cur
	if s := l.sealedLen(); i >= s {
		j := i - s
		return Transfer{From: int32(l.openFrom[j]), To: int32(l.openTo[j]), Block: int32(l.openBlock[j])}
	}
	f := i >> frameShift
	if c.win.from == nil || c.win.idx != f {
		l.decodeFrame(f, &c.win)
	}
	j := i & frameMask
	return Transfer{From: int32(c.win.from[j]), To: int32(c.win.to[j]), Block: int32(c.win.block[j])}
}

// Index returns the current transfer's local index within its tick.
func (c *Cursor) Index() int { return c.cur - c.start }

// Dropped reports whether the current transfer never delivered.
func (c *Cursor) Dropped() bool { return c.dropped }

// Kind returns the current transfer's drop kind; meaningful only when
// Dropped() is true and the log is kinded (KindFault otherwise).
func (c *Cursor) Kind() uint8 { return c.kind }

// FromTicks builds a Log from the nested representation: per-tick
// transfer lists, per-tick drop index lists (local, strictly
// ascending; may be shorter than ticks or nil), and — for kinded
// logs — per-tick drop kinds parallel to drops. It exists for tests
// and for proving the columnar form equivalent to the historical one.
func FromTicks(ticks [][]Transfer, drops [][]int, kinds [][]uint8, kinded bool) *Log {
	l := New(kinded)
	var idx []int32
	var kk []uint8
	for t, ts := range ticks {
		idx = idx[:0]
		kk = kk[:0]
		if t < len(drops) {
			for j, d := range drops[t] {
				idx = append(idx, int32(d))
				if kinded {
					if t < len(kinds) && j < len(kinds[t]) {
						kk = append(kk, kinds[t][j])
					} else {
						kk = append(kk, KindFault)
					}
				}
			}
		}
		l.AppendTick(ts, idx, kk)
	}
	return l
}

// Materialize returns the nested [][]Transfer representation — the
// historical in-memory form, used by tests to prove the columnar log
// round-trips and by small-scale debugging output.
func (l *Log) Materialize() [][]Transfer {
	out := make([][]Transfer, l.Ticks())
	for t := range out {
		out[t] = l.AppendTickTransfers(t, nil)
	}
	return out
}

// MaterializeDrops returns the nested per-tick drop indices and (for
// kinded logs) kinds, mirroring the historical LostTrace/LostKindTrace
// shape: one row per tick, empty rows for tick without drops.
func (l *Log) MaterializeDrops() ([][]int, [][]uint8) {
	drops := make([][]int, l.Ticks())
	var kinds [][]uint8
	if l.kinded {
		kinds = make([][]uint8, l.Ticks())
	}
	var idx []int32
	var kk []uint8
	for t := range drops {
		idx, kk = l.AppendTickDrops(t, idx[:0], kk[:0])
		if len(idx) > 0 {
			row := make([]int, len(idx))
			for j, v := range idx {
				row[j] = int(v)
			}
			drops[t] = row
		}
		if l.kinded && len(kk) > 0 {
			kinds[t] = append([]uint8(nil), kk...)
		}
	}
	return drops, kinds
}
