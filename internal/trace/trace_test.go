package trace

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// randomNested builds a random nested trace: per-tick transfer lists
// with ascending drop subsets and kinds.
func randomNested(rng *rand.Rand, ticks int, kinded bool) ([][]Transfer, [][]int, [][]uint8) {
	trs := make([][]Transfer, ticks)
	drops := make([][]int, ticks)
	var kinds [][]uint8
	if kinded {
		kinds = make([][]uint8, ticks)
	}
	for t := range trs {
		n := rng.Intn(7) // empty ticks included
		for i := 0; i < n; i++ {
			trs[t] = append(trs[t], Transfer{
				From:  int32(rng.Intn(50)),
				To:    int32(rng.Intn(50)),
				Block: int32(rng.Intn(20)),
			})
			if rng.Intn(3) == 0 {
				drops[t] = append(drops[t], i)
				if kinded {
					kinds[t] = append(kinds[t], uint8(rng.Intn(NumKinds)))
				}
			}
		}
	}
	return trs, drops, kinds
}

func TestRoundTrip(t *testing.T) {
	for _, kinded := range []bool{false, true} {
		t.Run(fmt.Sprintf("kinded=%v", kinded), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 50; trial++ {
				trs, drops, kinds := randomNested(rng, 1+rng.Intn(10), kinded)
				l := FromTicks(trs, drops, kinds, kinded)
				if l.Ticks() != len(trs) {
					t.Fatalf("Ticks = %d, want %d", l.Ticks(), len(trs))
				}
				got := l.Materialize()
				for ti := range trs {
					want := trs[ti]
					if len(want) == 0 {
						want = nil
					}
					if !reflect.DeepEqual(got[ti], want) {
						t.Fatalf("tick %d transfers = %v, want %v", ti, got[ti], trs[ti])
					}
				}
				gd, gk := l.MaterializeDrops()
				for ti := range trs {
					want := drops[ti]
					if len(want) == 0 {
						want = nil
					}
					if !reflect.DeepEqual(gd[ti], want) {
						t.Fatalf("tick %d drops = %v, want %v", ti, gd[ti], drops[ti])
					}
					if kinded {
						wk := kinds[ti]
						if len(wk) == 0 {
							wk = nil
						}
						if !reflect.DeepEqual(gk[ti], wk) {
							t.Fatalf("tick %d kinds = %v, want %v", ti, gk[ti], kinds[ti])
						}
					}
				}
			}
		})
	}
}

// TestCursorAgainstNested drives the cursor over random logs and
// checks every yielded (tick, index, transfer, dropped, kind) tuple
// against the nested representation — the oracle for both the full
// and the released view.
func TestCursorAgainstNested(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		kinded := trial%2 == 1
		trs, drops, kinds := randomNested(rng, 1+rng.Intn(8), kinded)
		l := FromTicks(trs, drops, kinds, kinded)

		for _, released := range []bool{false, true} {
			var c *Cursor
			if released {
				c = l.ReleasedCursor()
			} else {
				c = l.Cursor()
			}
			for ti := 0; c.NextTick(); ti++ {
				if c.Tick() != ti+1 {
					t.Fatalf("Tick() = %d, want %d", c.Tick(), ti+1)
				}
				if c.TickLen() != len(trs[ti]) {
					t.Fatalf("tick %d TickLen = %d, want %d", ti, c.TickLen(), len(trs[ti]))
				}
				dropAt := map[int]uint8{}
				for j, d := range drops[ti] {
					k := KindFault
					if kinded {
						k = kinds[ti][j]
					}
					dropAt[d] = k
				}
				visited := 0
				for c.Next() {
					i := c.Index()
					if c.Transfer() != trs[ti][i] {
						t.Fatalf("tick %d idx %d: transfer %v, want %v", ti, i, c.Transfer(), trs[ti][i])
					}
					k, dropped := dropAt[i]
					if released && dropped && k >= KindRefused {
						t.Fatalf("tick %d idx %d: released cursor yielded an adversary drop (kind %d)", ti, i, k)
					}
					if c.Dropped() != dropped {
						t.Fatalf("tick %d idx %d: Dropped = %v, want %v", ti, i, c.Dropped(), dropped)
					}
					if dropped && kinded && c.Kind() != k {
						t.Fatalf("tick %d idx %d: Kind = %d, want %d", ti, i, c.Kind(), k)
					}
					visited++
				}
				want := len(trs[ti])
				if released {
					for _, k := range dropAt {
						if k >= KindRefused {
							want--
						}
					}
				}
				if visited != want {
					t.Fatalf("tick %d: visited %d transfers, want %d (released=%v)", ti, visited, want, released)
				}
			}
		}
	}
}

// TestCursorSkipTick verifies NextTick discards unvisited transfers
// and resynchronizes the drop cursor.
func TestCursorSkipTick(t *testing.T) {
	trs := [][]Transfer{
		{{From: 1, To: 2, Block: 0}, {From: 2, To: 1, Block: 1}},
		{{From: 3, To: 4, Block: 2}},
	}
	drops := [][]int{{1}, {0}}
	l := FromTicks(trs, drops, nil, false)
	c := l.Cursor()
	if !c.NextTick() {
		t.Fatal("no first tick")
	}
	// Skip tick 1 without visiting its transfers.
	if !c.NextTick() {
		t.Fatal("no second tick")
	}
	if !c.Next() {
		t.Fatal("no transfer in tick 2")
	}
	if got := c.Transfer(); got != trs[1][0] {
		t.Fatalf("transfer = %v, want %v", got, trs[1][0])
	}
	if !c.Dropped() {
		t.Fatal("tick 2's only transfer is recorded dropped; cursor says delivered")
	}
}

// TestNegativeFieldsRoundTrip pins the int32<->uint32 bijection: audit
// tests doctor traces with negative node ids, which must survive the
// columnar encoding so the auditors can reject them.
func TestNegativeFieldsRoundTrip(t *testing.T) {
	tr := Transfer{From: -1, To: -7, Block: -3}
	l := FromTicks([][]Transfer{{tr}}, nil, nil, false)
	if got := l.At(0); got != tr {
		t.Fatalf("At(0) = %v, want %v", got, tr)
	}
	l.Set(0, Transfer{From: -100, To: 5, Block: -2})
	if got := l.At(0); got != (Transfer{From: -100, To: 5, Block: -2}) {
		t.Fatalf("after Set: %v", got)
	}
}

// TestReserveZeroAllocAppend proves steady-state appends after Reserve
// allocate nothing — the contract the zero-alloc tick core builds on.
func TestReserveZeroAllocAppend(t *testing.T) {
	l := New(true)
	l.Reserve(4096, 256, 512)
	ts := []Transfer{{1, 2, 3}, {2, 3, 4}, {3, 4, 5}}
	idx := []int32{1}
	kinds := []uint8{KindRefused}
	allocs := testing.AllocsPerRun(100, func() {
		l.AppendTick(ts, idx, kinds)
	})
	if allocs != 0 {
		t.Fatalf("AppendTick allocates %.1f times per call after Reserve; want 0", allocs)
	}
}

// TestReserveGrowPath proves Reserve's counts are hints, not caps: an
// open-system run that undershoots its estimate (the cumulative
// arrival stream has no (n-1)·k bound) keeps appending correctly past
// the reservation, and a second mid-stream Reserve is additive from
// the current length and restores the zero-alloc steady state.
func TestReserveGrowPath(t *testing.T) {
	l := New(false)
	l.Reserve(4, 2, 0)
	var want []Transfer
	tick := func(ts ...Transfer) {
		l.AppendTick(ts, nil, nil)
		want = append(want, ts...)
	}
	// Blow straight past the 4-transfer / 2-tick reservation.
	for i := int32(0); i < 8; i++ {
		tick(Transfer{From: 0, To: i + 1, Block: i},
			Transfer{From: i + 1, To: 0, Block: i})
	}
	if l.Ticks() != 8 || l.Len() != 16 {
		t.Fatalf("past-reservation log holds %d ticks / %d transfers, want 8/16", l.Ticks(), l.Len())
	}
	for i, tr := range want {
		if got := l.At(i); got != tr {
			t.Fatalf("transfer %d = %v after grow, want %v", i, got, tr)
		}
	}
	// Re-reserving mid-stream preserves content and is zero-alloc again.
	l.Reserve(2048, 128, 0)
	if l.Ticks() != 8 || l.Len() != 16 {
		t.Fatalf("mid-stream Reserve changed the log: %d ticks / %d transfers", l.Ticks(), l.Len())
	}
	ts := []Transfer{{9, 10, 11}}
	allocs := testing.AllocsPerRun(100, func() { l.AppendTick(ts, nil, nil) })
	if allocs != 0 {
		t.Fatalf("AppendTick allocates %.1f times per call after mid-stream Reserve; want 0", allocs)
	}
}

func TestAppendTickPanicsOnBadDrops(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	ts := []Transfer{{1, 2, 3}, {2, 3, 4}}
	assertPanics("out of range", func() {
		New(false).AppendTick(ts, []int32{2}, nil)
	})
	assertPanics("descending", func() {
		New(false).AppendTick(ts, []int32{1, 0}, nil)
	})
	assertPanics("kind count mismatch", func() {
		New(true).AppendTick(ts, []int32{0}, nil)
	})
}

func TestMemSize(t *testing.T) {
	l := New(false)
	if l.MemSize() != 0 {
		t.Fatalf("empty log MemSize = %d", l.MemSize())
	}
	l.AppendTick([]Transfer{{1, 2, 3}}, nil, nil)
	if l.MemSize() <= 0 {
		t.Fatalf("non-empty log MemSize = %d", l.MemSize())
	}
}
