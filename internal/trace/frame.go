package trace

import (
	"encoding/binary"
	"math/bits"
)

// Frame geometry. Sealed frames hold exactly frameLen transfers; the
// open tail holds the (< frameLen) most recent appends as raw uint32
// columns so the tick hot path never touches the codec.
const (
	frameShift = 16
	frameLen   = 1 << frameShift
	frameMask  = frameLen - 1
)

// Per-column encoding modes inside a sealed frame. Each column of a
// frame independently picks the cheapest of:
//
//	encConst  every entry equal: one uvarint
//	encRaw    fixed-width bitpack at bits(max)
//	encDelta  first value uvarint + zigzag deltas bitpacked
//	encSplit  low s∈[1,4] bits run-length encoded + high bits bitpacked
//
// encSplit is what makes the ≤5 B/transfer budget at n=10⁵: the
// sharded schedulers commit each lane's pairings as contiguous
// segments, so one endpoint column has long runs of constant low-3
// bits (the lane residue) that RLE collapses while only the high
// bits pay for bitpacking.
const (
	encConst uint8 = iota
	encRaw
	encDelta
	encSplit
)

// frame is one sealed block of frameLen transfers: the three columns
// encoded back to back in data, with off locating each column's start.
type frame struct {
	data []byte
	off  [3]uint32
}

// Win is a reusable decode window over a Log: the three columns of one
// sealed frame, unpacked. The zero value is ready; backing arrays are
// allocated on first use, so consumers of small (never-sealed) logs pay
// nothing. Each concurrent reader owns its Win — a Log is read-only
// shared state during audits, the windows are the per-worker scratch.
type Win struct {
	idx             int // decoded frame index; valid only when from != nil
	from, to, block []uint32
}

func (w *Win) ensure() {
	if w.from == nil {
		w.idx = -1
		w.from = make([]uint32, frameLen)
		w.to = make([]uint32, frameLen)
		w.block = make([]uint32, frameLen)
	}
}

func (w *Win) invalidate() {
	if w.from != nil {
		w.idx = -1
	}
}

// encScratch is the seal-time workspace: the frame assembly buffer and
// the delta column. Allocated once, lazily, at the first seal; sized
// for the worst case up front so steady-state seals cost exactly one
// allocation (the sealed frame's exact-size data copy).
type encScratch struct {
	buf   []byte
	delta []uint32
}

func newEncScratch() *encScratch {
	return &encScratch{
		// 3 columns × (header + 32-bit worst-case bitpack).
		buf:   make([]byte, 0, 3*(16+4*frameLen)),
		delta: make([]uint32, frameLen),
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// appendPacked bitpacks (v >> shift) for every v in vals at width w
// (1..32), LSB-first.
func appendPacked(dst []byte, vals []uint32, shift, w uint) []byte {
	var acc uint64
	var nb uint
	for _, v := range vals {
		acc |= uint64(v>>shift) << nb
		nb += w
		for nb >= 8 {
			dst = append(dst, byte(acc))
			acc >>= 8
			nb -= 8
		}
	}
	if nb > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// unpackInto decodes count w-bit values from src. When or is false it
// stores v<<shift into dst; when or is true it ORs v<<shift into the
// existing entries (the encSplit high-bits pass over RLE'd lows).
func unpackInto(dst []uint32, src []byte, count int, shift, w uint, or bool) {
	mask := uint64(1)<<w - 1
	bitPos := 0
	for i := 0; i < count; i++ {
		byteOff := bitPos >> 3
		sh := uint(bitPos & 7)
		var chunk uint64
		if byteOff+8 <= len(src) {
			chunk = binary.LittleEndian.Uint64(src[byteOff:])
		} else {
			for k := len(src) - 1; k >= byteOff; k-- {
				chunk = chunk<<8 | uint64(src[k])
			}
		}
		v := uint32((chunk >> sh) & mask)
		if or {
			dst[i] |= v << shift
		} else {
			dst[i] = v << shift
		}
		bitPos += int(w)
	}
}

// encodeCol appends the cheapest encoding of vals (exactly frameLen
// entries) to s.buf.
func (s *encScratch) encodeCol(vals []uint32) {
	n := len(vals)
	mn, mx := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mn == mx {
		s.buf = append(s.buf, encConst)
		s.buf = appendUvarint(s.buf, uint64(mx))
		return
	}
	rawW := uint(bits.Len32(mx))
	bestCost := 2 + (n*int(rawW)+7)/8
	bestMode, bestS := encRaw, uint(0)

	// Delta: zigzag the successive differences.
	var maxd uint32
	prev := vals[0]
	for i := 1; i < n; i++ {
		d := int32(vals[i] - prev)
		prev = vals[i]
		z := uint32(d<<1) ^ uint32(d>>31)
		s.delta[i-1] = z
		if z > maxd {
			maxd = z
		}
	}
	if dW := uint(bits.Len32(maxd)); dW > 0 {
		cost := 2 + uvarintLen(uint64(vals[0])) + ((n-1)*int(dW)+7)/8
		if cost < bestCost {
			bestCost, bestMode = cost, encDelta
		}
	}

	// Split: RLE the low s bits, bitpack the rest.
	for lb := uint(1); lb <= 4; lb++ {
		mask := uint32(1)<<lb - 1
		runs, hdr := 0, 0
		rp, rl := vals[0]&mask, 1
		for _, v := range vals[1:] {
			if lv := v & mask; lv == rp {
				rl++
			} else {
				runs++
				hdr += 1 + uvarintLen(uint64(rl))
				rp, rl = lv, 1
			}
		}
		runs++
		hdr += 1 + uvarintLen(uint64(rl))
		hiW := uint(bits.Len32(mx >> lb))
		cost := 3 + uvarintLen(uint64(runs)) + hdr + (n*int(hiW)+7)/8
		if cost < bestCost {
			bestCost, bestMode, bestS = cost, encSplit, lb
		}
	}

	switch bestMode {
	case encRaw:
		s.buf = append(s.buf, encRaw, byte(rawW))
		s.buf = appendPacked(s.buf, vals, 0, rawW)
	case encDelta:
		dW := uint(bits.Len32(maxd))
		s.buf = append(s.buf, encDelta, byte(dW))
		s.buf = appendUvarint(s.buf, uint64(vals[0]))
		s.buf = appendPacked(s.buf, s.delta[:n-1], 0, dW)
	case encSplit:
		lb := bestS
		mask := uint32(1)<<lb - 1
		hiW := uint(bits.Len32(mx >> lb))
		s.buf = append(s.buf, encSplit, byte(lb), byte(hiW))
		runs := 0
		rp, rl := vals[0]&mask, 1
		for _, v := range vals[1:] {
			if lv := v & mask; lv == rp {
				rl++
			} else {
				runs++
				rp, rl = lv, 1
			}
		}
		runs++
		s.buf = appendUvarint(s.buf, uint64(runs))
		rp, rl = vals[0]&mask, 1
		for _, v := range vals[1:] {
			if lv := v & mask; lv == rp {
				rl++
			} else {
				s.buf = append(s.buf, byte(rp))
				s.buf = appendUvarint(s.buf, uint64(rl))
				rp, rl = lv, 1
			}
		}
		s.buf = append(s.buf, byte(rp))
		s.buf = appendUvarint(s.buf, uint64(rl))
		if hiW > 0 {
			s.buf = appendPacked(s.buf, vals, lb, hiW)
		}
	}
}

// decodeCol decodes exactly count values from buf into dst, returning
// the number of bytes consumed. Every structural defect — unknown
// mode, zero or oversized width, truncated varint or bitpack tail, RLE
// runs that do not sum to the frame size — yields a corrupt error, so
// hostile snapshot bytes can never silently misdecode.
func decodeCol(dst []uint32, buf []byte, count int) (int, error) {
	if len(buf) == 0 {
		return 0, corruptf("trace: frame column truncated before mode byte")
	}
	mode := buf[0]
	pos := 1
	switch mode {
	case encConst:
		v, k := binary.Uvarint(buf[pos:])
		if k <= 0 || v > 1<<32-1 {
			return 0, corruptf("trace: bad const column value")
		}
		pos += k
		for i := 0; i < count; i++ {
			dst[i] = uint32(v)
		}
	case encRaw:
		if pos >= len(buf) {
			return 0, corruptf("trace: raw column truncated before width")
		}
		w := uint(buf[pos])
		pos++
		if w == 0 || w > 32 {
			return 0, corruptf("trace: raw column width %d out of range", w)
		}
		need := (count*int(w) + 7) / 8
		if len(buf)-pos < need {
			return 0, corruptf("trace: raw column needs %d bytes, has %d", need, len(buf)-pos)
		}
		unpackInto(dst[:count], buf[pos:pos+need], count, 0, w, false)
		pos += need
	case encDelta:
		if pos >= len(buf) {
			return 0, corruptf("trace: delta column truncated before width")
		}
		w := uint(buf[pos])
		pos++
		if w == 0 || w > 32 {
			return 0, corruptf("trace: delta column width %d out of range", w)
		}
		v0, k := binary.Uvarint(buf[pos:])
		if k <= 0 || v0 > 1<<32-1 {
			return 0, corruptf("trace: bad delta column base value")
		}
		pos += k
		need := ((count-1)*int(w) + 7) / 8
		if len(buf)-pos < need {
			return 0, corruptf("trace: delta column needs %d bytes, has %d", need, len(buf)-pos)
		}
		unpackInto(dst[1:count], buf[pos:pos+need], count-1, 0, w, false)
		pos += need
		cur := uint32(v0)
		dst[0] = cur
		for i := 1; i < count; i++ {
			z := dst[i]
			cur += (z >> 1) ^ -(z & 1)
			dst[i] = cur
		}
	case encSplit:
		if pos+2 > len(buf) {
			return 0, corruptf("trace: split column truncated before widths")
		}
		lb, hiW := uint(buf[pos]), uint(buf[pos+1])
		pos += 2
		if lb < 1 || lb > 4 || hiW > 32-lb {
			return 0, corruptf("trace: split column widths lo=%d hi=%d out of range", lb, hiW)
		}
		runs, k := binary.Uvarint(buf[pos:])
		if k <= 0 || runs < 1 || runs > uint64(count) {
			return 0, corruptf("trace: split column has bad run count")
		}
		pos += k
		at := 0
		for r := uint64(0); r < runs; r++ {
			if pos >= len(buf) {
				return 0, corruptf("trace: split column truncated in run %d", r)
			}
			lo := uint32(buf[pos])
			pos++
			if lo >= 1<<lb {
				return 0, corruptf("trace: split column run value %d exceeds %d bits", lo, lb)
			}
			rl, k := binary.Uvarint(buf[pos:])
			if k <= 0 || rl < 1 || rl > uint64(count-at) {
				return 0, corruptf("trace: split column run %d has bad length", r)
			}
			pos += k
			for j := uint64(0); j < rl; j++ {
				dst[at] = lo
				at++
			}
		}
		if at != count {
			return 0, corruptf("trace: split column runs cover %d of %d entries", at, count)
		}
		if hiW > 0 {
			need := (count*int(hiW) + 7) / 8
			if len(buf)-pos < need {
				return 0, corruptf("trace: split column needs %d high bytes, has %d", need, len(buf)-pos)
			}
			unpackInto(dst[:count], buf[pos:pos+need], count, lb, hiW, true)
			pos += need
		}
	default:
		return 0, corruptf("trace: unknown column encoding %d", mode)
	}
	return pos, nil
}

// sealOpen compresses the (exactly full) open columns into a new
// sealed frame.
func (l *Log) sealOpen() {
	if l.enc == nil {
		l.enc = newEncScratch()
	}
	s := l.enc
	s.buf = s.buf[:0]
	var off [3]uint32
	for c, col := range [3][]uint32{l.openFrom, l.openTo, l.openBlock} {
		off[c] = uint32(len(s.buf))
		s.encodeCol(col)
	}
	data := make([]byte, len(s.buf))
	copy(data, s.buf)
	l.frames = append(l.frames, frame{data: data, off: off})
	l.openFrom = l.openFrom[:0]
	l.openTo = l.openTo[:0]
	l.openBlock = l.openBlock[:0]
}

// decodeFrame unpacks sealed frame f into w. The data was either
// produced by sealOpen or validated by Restore, so decode errors here
// are impossible without unsafe mutation; they panic rather than
// propagate.
func (l *Log) decodeFrame(f int, w *Win) {
	w.ensure()
	fr := &l.frames[f]
	for c, dst := range [3][]uint32{w.from, w.to, w.block} {
		if _, err := decodeCol(dst, fr.data[fr.off[c]:], frameLen); err != nil {
			panic("trace: sealed frame no longer decodes: " + err.Error())
		}
	}
	w.idx = f
}

// reencodeFrame replaces sealed frame f's data with the (modified)
// columns in w. Only the doctoring helpers (Set, TruncateTicks) use it.
func (l *Log) reencodeFrame(f int, w *Win) {
	if l.enc == nil {
		l.enc = newEncScratch()
	}
	s := l.enc
	s.buf = s.buf[:0]
	var off [3]uint32
	for c, col := range [3][]uint32{w.from, w.to, w.block} {
		off[c] = uint32(len(s.buf))
		s.encodeCol(col)
	}
	data := make([]byte, len(s.buf))
	copy(data, s.buf)
	l.frames[f] = frame{data: data, off: off}
}

// sealedLen returns the number of transfers held in sealed frames.
func (l *Log) sealedLen() int { return len(l.frames) << frameShift }

// Window positions w over global transfer index i and returns direct
// decoded column views plus the window's [base, end) global span:
// entry j of the returned slices is transfer base+j. For indices in
// the open tail the views alias the raw tail columns. The views are
// valid until w is repositioned or the Log is mutated. Concurrent
// readers must use distinct Wins; the Log itself is never written.
func (l *Log) Window(w *Win, i int) (from, to, block []uint32, base, end int) {
	if s := l.sealedLen(); i >= s {
		return l.openFrom, l.openTo, l.openBlock, s, s + len(l.openFrom)
	}
	f := i >> frameShift
	w.ensure()
	if w.idx != f {
		l.decodeFrame(f, w)
	}
	return w.from, w.to, w.block, f << frameShift, (f + 1) << frameShift
}
