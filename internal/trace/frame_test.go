package trace

import (
	"errors"
	"math/rand"
	"testing"

	"barterdist/internal/checkpoint"
)

// buildBig appends enough transfers to seal several frames. The value
// streams mix the shapes the encoder targets: lane-structured senders
// (constant low-3-bit runs, as the sharded schedulers emit), dense
// random receivers, a small block alphabet, and occasional negative
// ids (the doctored-trace bijection). Returns the log and the oracle.
func buildBig(t *testing.T, transfers int, kinded bool) (*Log, []Transfer, [][]int32, [][]uint8) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	l := New(kinded)
	l.Reserve(transfers, transfers/1000+2, transfers/100)
	var oracle []Transfer
	var dropIdx [][]int32
	var dropKinds [][]uint8
	var ts []Transfer
	for len(oracle) < transfers {
		ts = ts[:0]
		tickLen := 500 + rng.Intn(1500)
		lane := rng.Intn(8)
		for i := 0; i < tickLen; i++ {
			if rng.Intn(64) == 0 {
				lane = rng.Intn(8) // next lane segment
			}
			from := int32(lane + 8*rng.Intn(12500))
			if rng.Intn(10000) == 0 {
				from = -from // negative ids must survive
			}
			ts = append(ts, Transfer{
				From:  from,
				To:    int32(rng.Intn(100000)),
				Block: int32(rng.Intn(64)),
			})
		}
		var di []int32
		var dk []uint8
		for i := 0; i < tickLen; i++ {
			if rng.Intn(50) == 0 {
				di = append(di, int32(i))
				if kinded {
					dk = append(dk, uint8(rng.Intn(NumKinds)))
				}
			}
		}
		l.AppendTick(ts, di, dk)
		oracle = append(oracle, ts...)
		dropIdx = append(dropIdx, append([]int32(nil), di...))
		dropKinds = append(dropKinds, append([]uint8(nil), dk...))
	}
	return l, oracle, dropIdx, dropKinds
}

// TestFrameSealRoundTrip drives the full stack across several sealed
// frames: At, Cursor, Window, Snapshot/Restore, and append-after-
// restore byte equality.
func TestFrameSealRoundTrip(t *testing.T) {
	const total = 3*frameLen + 12345
	l, oracle, dropIdx, dropKinds := buildBig(t, total, true)
	if l.Len() < total || len(l.frames) < 3 {
		t.Fatalf("log holds %d transfers in %d frames; want ≥%d in ≥3", l.Len(), len(l.frames), total)
	}
	// At against the oracle (random probes + full sweep).
	for i, want := range oracle {
		if got := l.At(i); got != want {
			t.Fatalf("At(%d) = %v, want %v", i, got, want)
		}
	}
	// Cursor stream against the oracle, drops included.
	c := l.Cursor()
	i := 0
	for tick := 0; c.NextTick(); tick++ {
		dropAt := map[int]uint8{}
		for j, d := range dropIdx[tick] {
			dropAt[int(d)] = dropKinds[tick][j]
		}
		for c.Next() {
			if got := c.Transfer(); got != oracle[i] {
				t.Fatalf("cursor at %d = %v, want %v", i, got, oracle[i])
			}
			k, dropped := dropAt[c.Index()]
			if c.Dropped() != dropped || (dropped && c.Kind() != k) {
				t.Fatalf("cursor drop state at %d: dropped=%v kind=%d, want %v/%d",
					i, c.Dropped(), c.Kind(), dropped, k)
			}
			i++
		}
	}
	if i != len(oracle) {
		t.Fatalf("cursor visited %d transfers, want %d", i, len(oracle))
	}
	// Window sweep against the oracle.
	var w Win
	for i := 0; i < l.Len(); {
		from, to, block, base, end := l.Window(&w, i)
		for ; i < end; i++ {
			got := Transfer{From: int32(from[i-base]), To: int32(to[i-base]), Block: int32(block[i-base])}
			if got != oracle[i] {
				t.Fatalf("window at %d = %v, want %v", i, got, oracle[i])
			}
		}
	}
	// Snapshot → Restore → identical stream and identical re-snapshot,
	// then identical appends.
	data := snapshotBytes(l)
	got, err := Restore(checkpoint.NewDecoder(data))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if string(snapshotBytes(got)) != string(data) {
		t.Fatal("snapshot of restored log differs")
	}
	more := []Transfer{{From: 5, To: 6, Block: 7}}
	l.AppendTick(more, []int32{0}, []uint8{KindRefused})
	got.AppendTick(more, []int32{0}, []uint8{KindRefused})
	if string(snapshotBytes(l)) != string(snapshotBytes(got)) {
		t.Fatal("append-after-restore diverged across a sealed log")
	}
}

// TestFrameSetAndTruncate doctors transfers inside sealed frames (the
// audit tests' tooling) and cuts the log inside a sealed frame.
func TestFrameSetAndTruncate(t *testing.T) {
	const total = frameLen + 500
	l, oracle, _, _ := buildBig(t, total, false)
	probe := []int{0, 1, frameLen / 2, frameLen - 1, frameLen, l.Len() - 1}
	for _, i := range probe {
		want := Transfer{From: -9, To: int32(i), Block: 3}
		l.Set(i, want)
		oracle[i] = want
	}
	for i, want := range oracle[:l.Len()] {
		if got := l.At(i); got != want {
			t.Fatalf("At(%d) after Set = %v, want %v", i, got, want)
		}
	}
	// Find a tick whose start lands strictly inside frame 0.
	cut := -1
	for tk := 0; tk < l.Ticks(); tk++ {
		if s, _ := l.TickSpan(tk); s > 0 && s < frameLen {
			cut = tk
		}
	}
	if cut < 0 {
		t.Fatal("no tick boundary inside the first frame")
	}
	start, _ := l.TickSpan(cut)
	l.TruncateTicks(cut)
	if l.Len() != start || l.Ticks() != cut {
		t.Fatalf("after truncate: %d transfers / %d ticks, want %d / %d", l.Len(), l.Ticks(), start, cut)
	}
	if len(l.frames) != 0 {
		t.Fatalf("truncate inside frame 0 left %d sealed frames", len(l.frames))
	}
	for i := 0; i < l.Len(); i++ {
		if got := l.At(i); got != oracle[i] {
			t.Fatalf("At(%d) after truncate = %v, want %v", i, got, oracle[i])
		}
	}
	// The reopened log keeps appending and sealing correctly.
	l.AppendTick([]Transfer{{1, 2, 3}}, nil, nil)
	if got := l.At(l.Len() - 1); got != (Transfer{1, 2, 3}) {
		t.Fatalf("append after truncate = %v", got)
	}
}

// TestFrameCompressionRatio pins the headline: lane-structured traffic
// at n=10⁵-scale ids compresses below 5 B/transfer, sealed frames
// included, against 12 B/transfer for the flat layout.
func TestFrameCompressionRatio(t *testing.T) {
	const total = 4 * frameLen
	rng := rand.New(rand.NewSource(9))
	l := New(false)
	l.Reserve(total, total/2000+2, 0)
	var ts []Transfer
	for l.Len() < total {
		ts = ts[:0]
		lane := 0
		for i := 0; i < 2000; i++ {
			if rng.Intn(300) == 0 {
				lane = rng.Intn(8)
			}
			ts = append(ts, Transfer{
				From:  int32(lane + 8*rng.Intn(12500)),
				To:    int32(rng.Intn(100000)),
				Block: int32(rng.Intn(64)),
			})
		}
		l.AppendTick(ts, nil, nil)
	}
	l.Compact()
	perTransfer := float64(l.MemSize()) / float64(l.Len())
	if perTransfer > 5.0 {
		t.Fatalf("compressed footprint = %.2f B/transfer, want ≤ 5", perTransfer)
	}
	t.Logf("footprint: %.2f B/transfer over %d transfers (%d sealed frames)",
		perTransfer, l.Len(), len(l.frames))
}

// legacyBytes encodes the pre-compression snapshot layout for the
// given nested trace, byte for byte as the old Snapshot wrote it.
func legacyBytes(ticks [][]Transfer, drops [][]int, kinds [][]uint8, kinded bool) []byte {
	var from, to, block, tickEnd, dropPos, dropTickEnd []uint32
	var dropKind []uint8
	kindLen := 0
	for t, ts := range ticks {
		base := uint32(len(from))
		for _, tr := range ts {
			from = append(from, uint32(tr.From))
			to = append(to, uint32(tr.To))
			block = append(block, uint32(tr.Block))
		}
		tickEnd = append(tickEnd, uint32(len(from)))
		if t < len(drops) {
			for j, d := range drops[t] {
				dropPos = append(dropPos, base+uint32(d))
				if kinded {
					k := uint8(KindFault)
					if t < len(kinds) && j < len(kinds[t]) {
						k = kinds[t][j]
					}
					if kindLen%2 == 0 {
						dropKind = append(dropKind, k&0x0f)
					} else {
						dropKind[kindLen/2] |= (k & 0x0f) << 4
					}
					kindLen++
				}
			}
		}
		dropTickEnd = append(dropTickEnd, uint32(len(dropPos)))
	}
	e := checkpoint.NewEncoder(256)
	e.Bool(kinded)
	e.Uint32s(from)
	e.Uint32s(to)
	e.Uint32s(block)
	e.Uint32s(tickEnd)
	e.Uint32s(dropPos)
	e.Bytes8(dropKind)
	e.Int(kindLen)
	e.Uint32s(dropTickEnd)
	return e.Bytes()
}

// TestRestoreLegacyLayout proves checkpoints written before the frame
// compression still restore, including ones large enough to re-seal
// into multiple frames, and stream identically to a natively built log.
func TestRestoreLegacyLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, kinded := range []bool{false, true} {
		trs, drops, kinds := randomNested(rng, 12, kinded)
		want := FromTicks(trs, drops, kinds, kinded)
		got, err := Restore(checkpoint.NewDecoder(legacyBytes(trs, drops, kinds, kinded)))
		if err != nil {
			t.Fatalf("kinded=%v legacy Restore: %v", kinded, err)
		}
		if string(snapshotBytes(got)) != string(snapshotBytes(want)) {
			t.Fatalf("kinded=%v legacy restore does not re-encode to the native v2 form", kinded)
		}
	}
	// A legacy payload spanning multiple frames re-seals on restore.
	big := [][]Transfer{{}}
	for i := 0; i < frameLen+1000; i++ {
		big[0] = append(big[0], Transfer{From: int32(i % 977), To: int32(i % 499), Block: int32(i % 64)})
	}
	got, err := Restore(checkpoint.NewDecoder(legacyBytes(big, nil, nil, false)))
	if err != nil {
		t.Fatalf("big legacy Restore: %v", err)
	}
	if len(got.frames) != 1 || got.Len() != frameLen+1000 {
		t.Fatalf("big legacy restore: %d frames, %d transfers", len(got.frames), got.Len())
	}
	for i, tr := range big[0] {
		if got.At(i) != tr {
			t.Fatalf("big legacy At(%d) = %v, want %v", i, got.At(i), tr)
		}
	}
}

// TestFrameCorruptionRejected hits the decode validators one defect at
// a time: frame header bytes, truncated varint/bitpack tails, RLE runs
// that do not cover the frame, and tick-range metadata inconsistencies
// all must surface as ErrCorrupt, never a panic or a silent misdecode.
func TestFrameCorruptionRejected(t *testing.T) {
	l, _, _, _ := buildBig(t, frameLen+100, true)
	base := snapshotBytes(l)
	restore := func(b []byte) error {
		_, err := Restore(checkpoint.NewDecoder(b))
		return err
	}
	if err := restore(base); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	// Locate the first frame's data inside the snapshot: version byte,
	// kinded bool, i64 frame count, u32+u32 tick range, u64 length.
	hdr := 1 + 1 + 8 + 4 + 4
	frameStart := hdr + 8
	frameData := l.frames[0].data
	mutants := map[string]func(b []byte){
		"unknown column mode": func(b []byte) { b[frameStart] = 0xee },
		"zero bitpack width":  func(b []byte) { b[frameStart+int(l.frames[0].off[1])+1] = 0 },
		"width out of range":  func(b []byte) { b[frameStart+int(l.frames[0].off[1])+1] = 77 },
		"tick range metadata": func(b []byte) { b[hdr-8] ^= 0x01 },
	}
	for name, fn := range mutants {
		b := append([]byte(nil), base...)
		fn(b)
		if err := restore(b); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
	// Truncated frame payload: shorten the frame's byte slice but keep
	// the declared length — the u64 length prefix now overruns, or the
	// column decode runs dry. Cut mid-frame at several depths.
	for _, cut := range []int{1, len(frameData) / 2, len(frameData) - 1} {
		b := append([]byte(nil), base[:frameStart+cut]...)
		if err := restore(b); err == nil {
			t.Errorf("truncation at frame byte %d restored successfully", cut)
		}
	}
	// Single-byte corruptions of the first frame's payload must either
	// restore to a structurally valid log or fail with ErrCorrupt —
	// never panic. (Value changes that keep the structure intact are
	// fine: the auditors, not the codec, judge semantics.) Probe the
	// headers densely and the packed payload at a stride.
	stride := len(frameData)/120 + 1
	for i := 0; i < len(frameData); i++ {
		if i > 64 && i%stride != 0 {
			continue
		}
		b := append([]byte(nil), base...)
		b[frameStart+i] ^= 0x2a
		if err := restore(b); err != nil && !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("frame byte %d corruption: non-corrupt error %v", i, err)
		}
	}
}

// TestDecodeColRejectsCorruptSplit corrupts a known split-encoded
// column at the byte level: run counts, run values, and run lengths
// that no longer cover the frame must all error, never misdecode.
func TestDecodeColRejectsCorruptSplit(t *testing.T) {
	vals := make([]uint32, frameLen)
	for i := range vals {
		vals[i] = uint32(i/997%8) + 8*uint32(i%12500)
	}
	s := newEncScratch()
	s.encodeCol(vals)
	if s.buf[0] != encSplit {
		t.Fatalf("fixture column encoded as mode %d, want split", s.buf[0])
	}
	dst := make([]uint32, frameLen)
	bad := 0
	for i := 0; i < len(s.buf) && i < 4096; i++ {
		b := append([]byte(nil), s.buf...)
		b[i] ^= 0x5b
		n, err := decodeCol(dst, b, frameLen)
		if err != nil {
			bad++
			continue
		}
		// A successful decode must have consumed a self-consistent
		// encoding; re-encoding the decoded values must round-trip.
		_ = n
	}
	if bad == 0 {
		t.Fatal("no byte corruption of a split column was ever rejected")
	}
}

// TestEncodeColModes forces each encoding mode and round-trips it.
func TestEncodeColModes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := map[string]func(i int) uint32{
		"const":          func(int) uint32 { return 42 },
		"raw-random":     func(int) uint32 { return rng.Uint32() >> 12 },
		"raw-full-width": func(int) uint32 { return rng.Uint32() },
		"delta-ascending": func(i int) uint32 {
			return uint32(i)*3 + uint32(rng.Intn(2))
		},
		"delta-wrapping": func(i int) uint32 {
			return uint32(int32(-500 + i)) // crosses the int32 sign bit
		},
		"split-lanes": func(i int) uint32 {
			return uint32(i/997%8) + 8*uint32(rng.Intn(12500))
		},
		"split-tiny-hi": func(i int) uint32 { return uint32(i / 4096 % 16) },
	}
	for name, gen := range cases {
		vals := make([]uint32, frameLen)
		for i := range vals {
			vals[i] = gen(i)
		}
		s := newEncScratch()
		s.encodeCol(vals)
		dst := make([]uint32, frameLen)
		n, err := decodeCol(dst, s.buf, frameLen)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if n != len(s.buf) {
			t.Fatalf("%s: decode consumed %d of %d bytes", name, n, len(s.buf))
		}
		for i := range vals {
			if dst[i] != vals[i] {
				t.Fatalf("%s: value %d = %d, want %d (mode %d)", name, i, dst[i], vals[i], s.buf[0])
			}
		}
		t.Logf("%s: mode %d, %d bytes (%.2f bits/value)", name, s.buf[0], len(s.buf),
			8*float64(len(s.buf))/frameLen)
	}
}
