package trace

import (
	"testing"

	"barterdist/internal/checkpoint"
)

// sealedSeed builds a small-on-disk log that still crosses the sealed
// frame boundary: highly regular columns keep the compressed snapshot
// a few KiB while exercising every frame decode path under fuzzing.
func sealedSeed() *Log {
	l := New(true)
	ts := make([]Transfer, 4096)
	for t := 0; t < frameLen/len(ts)+2; t++ {
		for i := range ts {
			ts[i] = Transfer{
				From:  int32(i / 512 % 8),        // lane runs → split RLE
				To:    int32(t),                  // constant per tick → const
				Block: int32(frameLen - 3*i - t), // descending → delta
			}
		}
		l.AppendTick(ts, []int32{0, 7}, []uint8{KindFault, KindGarbage})
	}
	return l
}

// FuzzTraceCursor feeds arbitrary bytes to the trace Restore path and,
// when a Log decodes, drives both cursors over the whole log. The
// contract: never panic, and every decoded log satisfies the cursor
// invariants (transfer indices in range, drop counts consistent), so a
// corrupted snapshot can never produce a silently-wrong trace walk.
// The seeds cover both snapshot layouts (legacy flat columns and
// frame-compressed v2) plus targeted frame corruptions: mangled
// headers, truncated varint/bitpack tails, inconsistent tick-range
// metadata.
func FuzzTraceCursor(f *testing.F) {
	f.Add([]byte{})
	f.Add(snapshotBytes(New(false)))
	f.Add(snapshotBytes(sampleLog(false)))
	f.Add(snapshotBytes(sampleLog(true)))
	mut := snapshotBytes(sampleLog(true))
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)
	// Legacy flat-column layout.
	f.Add(legacyBytes([][]Transfer{{{1, 2, 3}, {2, 0, 1}}, {{0, 1, 2}}},
		[][]int{{1}, {0}}, [][]uint8{{KindRefused}, {KindFault}}, true))
	// Frame-compressed seeds: pristine, corrupt header, corrupt
	// tick-range metadata, truncated mid-frame.
	sealed := snapshotBytes(sealedSeed())
	f.Add(sealed)
	hdr := append([]byte(nil), sealed...)
	hdr[1+1+8+4+4+8] = 0xee // first frame's first column mode byte
	f.Add(hdr)
	meta := append([]byte(nil), sealed...)
	meta[1+1+8] ^= 0x01 // first frame's firstTick metadata
	f.Add(meta)
	f.Add(sealed[:len(sealed)/3])

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Restore(checkpoint.NewDecoder(data))
		if err != nil {
			return
		}
		seenTransfers, seenDrops := 0, 0
		c := l.Cursor()
		for c.NextTick() {
			tlen := 0
			for c.Next() {
				tr := c.Transfer()
				_ = tr
				if c.Index() < 0 || c.Index() >= c.TickLen() {
					t.Fatalf("index %d outside tick of %d", c.Index(), c.TickLen())
				}
				if c.Dropped() {
					seenDrops++
					if int(c.Kind()) >= NumKinds {
						t.Fatalf("invalid kind %d from cursor", c.Kind())
					}
				}
				tlen++
			}
			if tlen != c.TickLen() {
				t.Fatalf("cursor visited %d transfers in tick of %d", tlen, c.TickLen())
			}
			seenTransfers += tlen
		}
		if seenTransfers != l.Len() {
			t.Fatalf("cursor visited %d transfers, log has %d", seenTransfers, l.Len())
		}
		if seenDrops != l.Drops() {
			t.Fatalf("cursor saw %d drops, log has %d", seenDrops, l.Drops())
		}
		// The released view must visit a subset and never panic.
		rc := l.ReleasedCursor()
		released := 0
		for rc.NextTick() {
			for rc.Next() {
				released++
			}
		}
		if released > seenTransfers {
			t.Fatalf("released view visited more (%d) than full view (%d)", released, seenTransfers)
		}
		// Materialization exercises the remaining accessors.
		l.Materialize()
		l.MaterializeDrops()
	})
}
