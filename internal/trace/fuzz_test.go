package trace

import (
	"testing"

	"barterdist/internal/checkpoint"
)

// FuzzTraceCursor feeds arbitrary bytes to the trace Restore path and,
// when a Log decodes, drives both cursors over the whole log. The
// contract: never panic, and every decoded log satisfies the cursor
// invariants (transfer indices in range, drop counts consistent), so a
// corrupted snapshot can never produce a silently-wrong trace walk.
func FuzzTraceCursor(f *testing.F) {
	f.Add([]byte{})
	f.Add(snapshotBytes(New(false)))
	f.Add(snapshotBytes(sampleLog(false)))
	f.Add(snapshotBytes(sampleLog(true)))
	mut := snapshotBytes(sampleLog(true))
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Restore(checkpoint.NewDecoder(data))
		if err != nil {
			return
		}
		seenTransfers, seenDrops := 0, 0
		c := l.Cursor()
		for c.NextTick() {
			tlen := 0
			for c.Next() {
				tr := c.Transfer()
				_ = tr
				if c.Index() < 0 || c.Index() >= c.TickLen() {
					t.Fatalf("index %d outside tick of %d", c.Index(), c.TickLen())
				}
				if c.Dropped() {
					seenDrops++
					if int(c.Kind()) >= NumKinds {
						t.Fatalf("invalid kind %d from cursor", c.Kind())
					}
				}
				tlen++
			}
			if tlen != c.TickLen() {
				t.Fatalf("cursor visited %d transfers in tick of %d", tlen, c.TickLen())
			}
			seenTransfers += tlen
		}
		if seenTransfers != l.Len() {
			t.Fatalf("cursor visited %d transfers, log has %d", seenTransfers, l.Len())
		}
		if seenDrops != l.Drops() {
			t.Fatalf("cursor saw %d drops, log has %d", seenDrops, l.Drops())
		}
		// The released view must visit a subset and never panic.
		rc := l.ReleasedCursor()
		released := 0
		for rc.NextTick() {
			for rc.Next() {
				released++
			}
		}
		if released > seenTransfers {
			t.Fatalf("released view visited more (%d) than full view (%d)", released, seenTransfers)
		}
		// Materialization exercises the remaining accessors.
		l.Materialize()
		l.MaterializeDrops()
	})
}
