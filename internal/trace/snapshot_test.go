package trace

import (
	"errors"
	"testing"

	"barterdist/internal/checkpoint"
)

func sampleLog(kinded bool) *Log {
	l := New(kinded)
	tick1 := []Transfer{{From: 0, To: 1, Block: 2}, {From: 1, To: 2, Block: 0}, {From: 2, To: 0, Block: 1}}
	tick2 := []Transfer{{From: 3, To: 1, Block: 5}}
	var k1, k2 []uint8
	if kinded {
		k1 = []uint8{KindFault, KindRefused}
		k2 = []uint8{KindGarbage}
	}
	l.AppendTick(tick1, []int32{0, 2}, k1)
	l.AppendTick(tick2, []int32{0}, k2)
	l.AppendTick(nil, nil, nil)
	return l
}

func snapshotBytes(l *Log) []byte {
	e := checkpoint.NewEncoder(256)
	l.Snapshot(e)
	return e.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, kinded := range []bool{false, true} {
		orig := sampleLog(kinded)
		got, err := Restore(checkpoint.NewDecoder(snapshotBytes(orig)))
		if err != nil {
			t.Fatalf("kinded=%v Restore: %v", kinded, err)
		}
		if got.Ticks() != orig.Ticks() || got.Len() != orig.Len() || got.Drops() != orig.Drops() || got.Kinded() != kinded {
			t.Fatalf("kinded=%v shape mismatch", kinded)
		}
		// Walking both cursors must yield identical streams.
		a, b := orig.Cursor(), got.Cursor()
		for a.NextTick() {
			if !b.NextTick() {
				t.Fatal("restored log has fewer ticks")
			}
			for a.Next() {
				if !b.Next() {
					t.Fatal("restored log has fewer transfers")
				}
				if a.Transfer() != b.Transfer() || a.Dropped() != b.Dropped() || a.Kind() != b.Kind() {
					t.Fatalf("kinded=%v stream diverged at tick %d index %d", kinded, a.Tick(), a.Index())
				}
			}
			if b.Next() {
				t.Fatal("restored log has extra transfers")
			}
		}
		if b.NextTick() {
			t.Fatal("restored log has extra ticks")
		}
		// A resumed run appends to the restored log; the appended
		// suffix must encode identically to appending to the original.
		more := []Transfer{{From: 9, To: 8, Block: 7}}
		var mk []uint8
		if kinded {
			mk = []uint8{KindStalled}
		}
		orig.AppendTick(more, []int32{0}, mk)
		got.AppendTick(more, []int32{0}, mk)
		if string(snapshotBytes(orig)) != string(snapshotBytes(got)) {
			t.Fatalf("kinded=%v append-after-restore diverged", kinded)
		}
	}
}

func TestSnapshotEmptyLog(t *testing.T) {
	got, err := Restore(checkpoint.NewDecoder(snapshotBytes(New(true))))
	if err != nil {
		t.Fatalf("Restore empty: %v", err)
	}
	if got.Ticks() != 0 || got.Len() != 0 {
		t.Fatal("empty log round-trip not empty")
	}
}

// Hand-built invalid payloads must be rejected with ErrCorrupt, never
// accepted into a Log that would misbehave under a Cursor.
func TestRestoreRejectsInvalid(t *testing.T) {
	type mutator struct {
		name string
		fn   func(l *Log)
	}
	for _, m := range []mutator{
		{"column length mismatch", func(l *Log) { l.openTo = l.openTo[:len(l.openTo)-1] }},
		{"tickEnd not monotone", func(l *Log) { l.tickEnd[1] = 0 }},
		{"tickEnd overshoots", func(l *Log) { l.tickEnd[len(l.tickEnd)-1] = 99 }},
		{"dropPos out of tick span", func(l *Log) { l.dropPos[0] = 3 }},
		{"dropPos not ascending", func(l *Log) { l.dropPos[1] = l.dropPos[0] }},
		{"dropTickEnd length mismatch", func(l *Log) { l.dropTickEnd = l.dropTickEnd[:1] }},
		{"transfers without ticks", func(l *Log) { l.tickEnd = nil; l.dropTickEnd = nil }},
		{"kind count mismatch", func(l *Log) { l.kindLen = 1 }},
		{"invalid kind nibble", func(l *Log) { l.dropKind[0] = 0x0f }},
		{"stale high nibble", func(l *Log) { l.dropKind[1] |= 0xf0 }},
		{"unkinded with kinds", func(l *Log) { l.kinded = false }},
	} {
		l := sampleLog(true)
		m.fn(l)
		_, err := Restore(checkpoint.NewDecoder(snapshotBytes(l)))
		if !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", m.name, err)
		}
	}
}

func TestRestoreRejectsTruncation(t *testing.T) {
	data := snapshotBytes(sampleLog(true))
	for n := 0; n < len(data); n++ {
		l, err := Restore(checkpoint.NewDecoder(data[:n]))
		if err == nil {
			// A truncated prefix may still parse if a trailing
			// empty slice is cut exactly — but Finish-style
			// accounting in the engines catches that; here the
			// decoded log must at least be structurally valid.
			if verr := l.validate(); verr != nil {
				t.Fatalf("truncation to %d decoded an invalid log", n)
			}
		}
	}
}
