package trace

import (
	"barterdist/internal/checkpoint"
)

// Snapshot appends the log's full column state to enc. The encoding is
// the columns verbatim plus the kinded flag and kind count; Restore
// re-validates every structural invariant, so a corrupted payload can
// never yield a Log whose cursors misbehave.
func (l *Log) Snapshot(enc *checkpoint.Encoder) {
	enc.Bool(l.kinded)
	enc.Uint32s(l.from)
	enc.Uint32s(l.to)
	enc.Uint32s(l.block)
	enc.Uint32s(l.tickEnd)
	enc.Uint32s(l.dropPos)
	enc.Bytes8(l.dropKind)
	enc.Int(l.kindLen)
	enc.Uint32s(l.dropTickEnd)
}

// Restore decodes a Log previously written by Snapshot, validating the
// structural invariants AppendTick maintains:
//
//   - from/to/block have equal lengths
//   - tickEnd is monotone non-decreasing and ends exactly at len(from)
//   - dropPos is strictly ascending and every entry falls inside its
//     tick's transfer span
//   - dropTickEnd parallels tickEnd and ends exactly at len(dropPos)
//   - kinded logs carry exactly one valid kind nibble per drop
//
// Any violation returns an error wrapping checkpoint.ErrCorrupt.
func Restore(dec *checkpoint.Decoder) (*Log, error) {
	l := &Log{
		kinded:      dec.Bool(),
		from:        dec.Uint32s(),
		to:          dec.Uint32s(),
		block:       dec.Uint32s(),
		tickEnd:     dec.Uint32s(),
		dropPos:     dec.Uint32s(),
		dropKind:    dec.Bytes8(),
		kindLen:     dec.Int(),
		dropTickEnd: dec.Uint32s(),
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if err := l.validate(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Log) validate() error {
	fail := func(format string, args ...any) error {
		return corruptf("trace: "+format, args...)
	}
	if len(l.to) != len(l.from) || len(l.block) != len(l.from) {
		return fail("column lengths differ: from=%d to=%d block=%d",
			len(l.from), len(l.to), len(l.block))
	}
	if len(l.dropTickEnd) != len(l.tickEnd) {
		return fail("dropTickEnd has %d ticks, tickEnd has %d",
			len(l.dropTickEnd), len(l.tickEnd))
	}
	var prev uint32
	for t, end := range l.tickEnd {
		if end < prev || int(end) > len(l.from) {
			return fail("tickEnd[%d]=%d not monotone within %d transfers", t, end, len(l.from))
		}
		prev = end
	}
	if len(l.tickEnd) > 0 {
		if last := l.tickEnd[len(l.tickEnd)-1]; int(last) != len(l.from) {
			return fail("last tickEnd %d != transfer count %d", last, len(l.from))
		}
	} else if len(l.from) != 0 {
		return fail("%d transfers but no ticks", len(l.from))
	}
	prev = 0
	for t, end := range l.dropTickEnd {
		if end < prev || int(end) > len(l.dropPos) {
			return fail("dropTickEnd[%d]=%d not monotone within %d drops", t, end, len(l.dropPos))
		}
		prev = end
	}
	if len(l.dropTickEnd) > 0 {
		if last := l.dropTickEnd[len(l.dropTickEnd)-1]; int(last) != len(l.dropPos) {
			return fail("last dropTickEnd %d != drop count %d", last, len(l.dropPos))
		}
	} else if len(l.dropPos) != 0 {
		return fail("%d drops but no ticks", len(l.dropPos))
	}
	// Every drop must fall strictly inside its own tick's span, and
	// drops are strictly ascending overall.
	for t := range l.tickEnd {
		tickStart, tickEnd := l.TickSpan(t)
		ds, de := l.dropSpan(t)
		last := tickStart - 1
		for j := ds; j < de; j++ {
			pos := int(l.dropPos[j])
			if pos <= last || pos >= tickEnd {
				return fail("dropPos[%d]=%d outside tick %d span [%d,%d) or not ascending",
					j, pos, t, tickStart, tickEnd)
			}
			last = pos
		}
	}
	if l.kinded {
		if l.kindLen != len(l.dropPos) {
			return fail("kinded log has %d kinds for %d drops", l.kindLen, len(l.dropPos))
		}
		if len(l.dropKind) != (l.kindLen+1)/2 {
			return fail("dropKind has %d bytes for %d kinds", len(l.dropKind), l.kindLen)
		}
		for j := 0; j < l.kindLen; j++ {
			if int(l.kindAt(j)) >= NumKinds {
				return fail("drop %d has invalid kind %d", j, l.kindAt(j))
			}
		}
		if l.kindLen%2 == 1 && l.dropKind[l.kindLen/2]&0xf0 != 0 {
			return fail("stale high nibble after last kind")
		}
	} else {
		if l.kindLen != 0 || len(l.dropKind) != 0 {
			return fail("unkinded log carries %d kinds", l.kindLen)
		}
	}
	return nil
}

func corruptf(format string, args ...any) error {
	return checkpoint.Corruptf(format, args...)
}
