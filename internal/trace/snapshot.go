package trace

import (
	"sort"

	"barterdist/internal/checkpoint"
)

// Snapshot layout versions. Version 1 (the pre-compression layout)
// never wrote a version byte: its first byte was the kinded Bool (0 or
// 1), so the v2 tag of 2 is unambiguous and old snapshots stay
// restorable forever.
const (
	snapVersionLegacy = 1
	snapVersion       = 2
)

// Snapshot appends the log's full column state to enc: the sealed
// frames verbatim (each with its tick-range metadata), the raw open
// tail, and the tick/drop offset columns. Restore re-validates every
// structural invariant — including a full decode of every frame and a
// cross-check of the frame tick ranges against tickEnd — so a
// corrupted payload can never yield a Log whose cursors misbehave.
func (l *Log) Snapshot(enc *checkpoint.Encoder) {
	enc.U8(snapVersion)
	enc.Bool(l.kinded)
	enc.Int(len(l.frames))
	for f := range l.frames {
		first, last := l.frameTickRange(f)
		enc.U32(uint32(first))
		enc.U32(uint32(last))
		enc.Bytes8(l.frames[f].data)
	}
	enc.Uint32s(l.openFrom)
	enc.Uint32s(l.openTo)
	enc.Uint32s(l.openBlock)
	enc.Uint32s(l.tickEnd)
	enc.Uint32s(l.dropPos)
	enc.Bytes8(l.dropKind)
	enc.Int(l.kindLen)
	enc.Uint32s(l.dropTickEnd)
}

// frameTickRange returns the 0-based tick indices of frame f's first
// and last transfer — the per-frame metadata the snapshot records and
// Restore cross-checks.
func (l *Log) frameTickRange(f int) (first, last int) {
	return l.tickOf(f << frameShift), l.tickOf((f+1)<<frameShift - 1)
}

// tickOf returns the 0-based tick containing global transfer index i.
func (l *Log) tickOf(i int) int {
	return sort.Search(len(l.tickEnd), func(t int) bool { return int(l.tickEnd[t]) > i })
}

// Restore decodes a Log previously written by Snapshot — either the
// current frame-compressed v2 layout or the legacy flat-column one —
// validating the structural invariants AppendTick maintains:
//
//   - the per-transfer columns have equal lengths (for v2: every frame
//     decodes exactly, the open tail is shorter than a frame, and the
//     recorded per-frame tick ranges match tickEnd)
//   - tickEnd is monotone non-decreasing and ends exactly at Len
//   - dropPos is strictly ascending and every entry falls inside its
//     tick's transfer span
//   - dropTickEnd parallels tickEnd and ends exactly at len(dropPos)
//   - kinded logs carry exactly one valid kind nibble per drop
//
// Any violation returns an error wrapping checkpoint.ErrCorrupt.
func Restore(dec *checkpoint.Decoder) (*Log, error) {
	version := dec.U8()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	switch version {
	case 0, snapVersionLegacy:
		// Legacy layout: the byte we consumed was the kinded Bool.
		return restoreLegacy(dec, version == 1)
	case snapVersion:
		return restoreV2(dec)
	default:
		return nil, corruptf("trace: unknown snapshot version %d", version)
	}
}

func restoreV2(dec *checkpoint.Decoder) (*Log, error) {
	l := &Log{kinded: dec.Bool()}
	nFrames := dec.Int()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if nFrames < 0 || nFrames > dec.Remaining() {
		return nil, corruptf("trace: snapshot claims %d frames in %d bytes", nFrames, dec.Remaining())
	}
	ranges := make([][2]uint32, nFrames)
	l.frames = make([]frame, nFrames)
	for f := 0; f < nFrames; f++ {
		ranges[f] = [2]uint32{dec.U32(), dec.U32()}
		l.frames[f] = frame{data: dec.Bytes8()}
	}
	l.openFrom = dec.Uint32s()
	l.openTo = dec.Uint32s()
	l.openBlock = dec.Uint32s()
	l.tickEnd = dec.Uint32s()
	l.dropPos = dec.Uint32s()
	l.dropKind = dec.Bytes8()
	l.kindLen = dec.Int()
	l.dropTickEnd = dec.Uint32s()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if len(l.openFrom) >= frameLen {
		return nil, corruptf("trace: open tail holds %d entries, frame size is %d", len(l.openFrom), frameLen)
	}
	if len(l.openTo) != len(l.openFrom) || len(l.openBlock) != len(l.openFrom) {
		return nil, corruptf("trace: open tail lengths differ: from=%d to=%d block=%d",
			len(l.openFrom), len(l.openTo), len(l.openBlock))
	}
	if err := l.validate(); err != nil {
		return nil, err
	}
	// Decode every frame completely: the column payloads must parse,
	// consume the frame's bytes exactly, and carry tick-range metadata
	// consistent with tickEnd.
	var w Win
	w.ensure()
	for f := range l.frames {
		fr := &l.frames[f]
		pos := 0
		for c, dst := range [3][]uint32{w.from, w.to, w.block} {
			fr.off[c] = uint32(pos)
			n, err := decodeCol(dst, fr.data[pos:], frameLen)
			if err != nil {
				return nil, corruptf("trace: frame %d column %d: %v", f, c, err)
			}
			pos += n
		}
		if pos != len(fr.data) {
			return nil, corruptf("trace: frame %d has %d trailing bytes", f, len(fr.data)-pos)
		}
		first, last := l.frameTickRange(f)
		if ranges[f][0] != uint32(first) || ranges[f][1] != uint32(last) {
			return nil, corruptf("trace: frame %d tick range metadata [%d,%d] disagrees with tick offsets [%d,%d]",
				f, ranges[f][0], ranges[f][1], first, last)
		}
	}
	return l, nil
}

// restoreLegacy decodes the pre-compression flat-column layout, whose
// kinded flag has already been consumed, and re-seals it into frames.
func restoreLegacy(dec *checkpoint.Decoder, kinded bool) (*Log, error) {
	from := dec.Uint32s()
	to := dec.Uint32s()
	block := dec.Uint32s()
	l := &Log{
		kinded:      kinded,
		tickEnd:     dec.Uint32s(),
		dropPos:     dec.Uint32s(),
		dropKind:    dec.Bytes8(),
		kindLen:     dec.Int(),
		dropTickEnd: dec.Uint32s(),
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if len(to) != len(from) || len(block) != len(from) {
		return nil, corruptf("trace: column lengths differ: from=%d to=%d block=%d",
			len(from), len(to), len(block))
	}
	// Re-seal the flat columns into the framed layout before the
	// structural validation, which runs on the framed form.
	for base := 0; base < len(from); base += frameLen {
		end := base + frameLen
		if end > len(from) {
			end = len(from)
		}
		l.openFrom = append(l.openFrom, from[base:end]...)
		l.openTo = append(l.openTo, to[base:end]...)
		l.openBlock = append(l.openBlock, block[base:end]...)
		if len(l.openFrom) == frameLen {
			l.sealOpen()
		}
	}
	l.enc = nil // restore is one-shot; don't hold the seal scratch
	if err := l.validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// validate checks the tick/drop offset invariants shared by both
// snapshot layouts. Frame payload validation is v2-specific and
// happens in restoreV2.
func (l *Log) validate() error {
	fail := func(format string, args ...any) error {
		return corruptf("trace: "+format, args...)
	}
	n := l.Len()
	if len(l.dropTickEnd) != len(l.tickEnd) {
		return fail("dropTickEnd has %d ticks, tickEnd has %d",
			len(l.dropTickEnd), len(l.tickEnd))
	}
	var prev uint32
	for t, end := range l.tickEnd {
		if end < prev || int(end) > n {
			return fail("tickEnd[%d]=%d not monotone within %d transfers", t, end, n)
		}
		prev = end
	}
	if len(l.tickEnd) > 0 {
		if last := l.tickEnd[len(l.tickEnd)-1]; int(last) != n {
			return fail("last tickEnd %d != transfer count %d", last, n)
		}
	} else if n != 0 {
		return fail("%d transfers but no ticks", n)
	}
	prev = 0
	for t, end := range l.dropTickEnd {
		if end < prev || int(end) > len(l.dropPos) {
			return fail("dropTickEnd[%d]=%d not monotone within %d drops", t, end, len(l.dropPos))
		}
		prev = end
	}
	if len(l.dropTickEnd) > 0 {
		if last := l.dropTickEnd[len(l.dropTickEnd)-1]; int(last) != len(l.dropPos) {
			return fail("last dropTickEnd %d != drop count %d", last, len(l.dropPos))
		}
	} else if len(l.dropPos) != 0 {
		return fail("%d drops but no ticks", len(l.dropPos))
	}
	// Every drop must fall strictly inside its own tick's span, and
	// drops are strictly ascending overall.
	for t := range l.tickEnd {
		tickStart, tickEnd := l.TickSpan(t)
		ds, de := l.dropSpan(t)
		last := tickStart - 1
		for j := ds; j < de; j++ {
			pos := int(l.dropPos[j])
			if pos <= last || pos >= tickEnd {
				return fail("dropPos[%d]=%d outside tick %d span [%d,%d) or not ascending",
					j, pos, t, tickStart, tickEnd)
			}
			last = pos
		}
	}
	if l.kinded {
		if l.kindLen != len(l.dropPos) {
			return fail("kinded log has %d kinds for %d drops", l.kindLen, len(l.dropPos))
		}
		if len(l.dropKind) != (l.kindLen+1)/2 {
			return fail("dropKind has %d bytes for %d kinds", len(l.dropKind), l.kindLen)
		}
		for j := 0; j < l.kindLen; j++ {
			if int(l.kindAt(j)) >= NumKinds {
				return fail("drop %d has invalid kind %d", j, l.kindAt(j))
			}
		}
		if l.kindLen%2 == 1 && l.dropKind[l.kindLen/2]&0xf0 != 0 {
			return fail("stale high nibble after last kind")
		}
	} else {
		if l.kindLen != 0 || len(l.dropKind) != 0 {
			return fail("unkinded log carries %d kinds", l.kindLen)
		}
	}
	return nil
}

func corruptf(format string, args ...any) error {
	return checkpoint.Corruptf(format, args...)
}
