package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverge at step %d: %d vs %d", i, got, want)
		}
	}
}

func TestSeedsDecorrelated(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	var x uint64
	for i := 0; i < 100; i++ {
		x |= r.Uint64()
	}
	if x == 0 {
		t.Fatal("seed 0 produced an all-zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets; loose threshold to avoid flakes
	// (the generator is deterministic, so this cannot actually flake).
	r := New(99)
	const buckets, samples = 10, 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 99.9th percentile is ~27.9.
	if chi2 > 27.9 {
		t.Fatalf("chi-squared %.2f exceeds threshold; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const samples = 100000
	for i := 0; i < samples; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / samples; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUnbiasedFirstElement(t *testing.T) {
	r := New(5)
	const n, trials = 5, 50000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	expected := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.1 {
			t.Fatalf("position 0 value %d appeared %d times (expected ~%.0f)", i, c, expected)
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(13)
	f := func(nRaw, cRaw uint16) bool {
		n := int(nRaw%500) + 1
		c := int(cRaw) % (n + 1)
		s := r.Sample(n, c)
		if len(s) != c {
			return false
		}
		seen := make(map[int]struct{}, c)
		for _, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if _, dup := seen[v]; dup {
				return false
			}
			seen[v] = struct{}{}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePanicsWhenCountExceedsPopulation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(2, 3) did not panic")
		}
	}()
	New(1).Sample(2, 3)
}

func TestSplitDecorrelated(t *testing.T) {
	parent := New(21)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams matched %d times", same)
	}
}

func TestShuffleEmptyAndSingle(t *testing.T) {
	r := New(1)
	r.Shuffle(nil)
	one := []int{42}
	r.Shuffle(one)
	if one[0] != 42 {
		t.Fatal("Shuffle mutated a single-element slice")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
