package xrand

import "barterdist/internal/checkpoint"

// Snapshot appends the generator's four state words to enc.
func (r *Rand) Snapshot(enc *checkpoint.Encoder) {
	s := r.State()
	enc.U64(s[0])
	enc.U64(s[1])
	enc.U64(s[2])
	enc.U64(s[3])
}

// RestoreState overwrites the generator's state from dec, rejecting
// truncated input and the invalid all-zero state.
func (r *Rand) RestoreState(dec *checkpoint.Decoder) error {
	var s [4]uint64
	for i := range s {
		s[i] = dec.U64()
	}
	if err := dec.Err(); err != nil {
		return err
	}
	if err := r.SetState(s); err != nil {
		return checkpoint.Corruptf("%v", err)
	}
	return nil
}
