// Package xrand provides a small, fast, deterministic random number
// generator used by every simulation in this repository.
//
// Reproducibility is a core requirement of the experiment harness: the
// paper's figures are regenerated from fixed seeds, and two runs with the
// same seed must produce bit-identical traces. The standard library's
// math/rand/v2 would work, but pinning our own generator guarantees the
// stream is stable across Go releases and lets us document the exact
// algorithm (xoshiro256** seeded via splitmix64, the combination
// recommended by Blackman and Vigna).
package xrand

import (
	"errors"
	"math/bits"
)

// Rand is a deterministic pseudo-random number generator. It is NOT safe
// for concurrent use; create one generator per goroutine (see Split).
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64, so that nearby
// seeds still yield decorrelated streams.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		sm, r.s[i] = splitmix64(sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// ErrZeroState rejects restoring an all-zero generator state, which is
// a fixed point of xoshiro256** (the stream would be all zeros) and is
// unreachable from New, so it can only mean a corrupted snapshot.
var ErrZeroState = errors.New("xrand: all-zero state is invalid")

// State returns the generator's internal state, for checkpointing. A
// generator restored with SetState(r.State()) continues the exact same
// stream: the next Uint64 from both generators is identical, forever.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the generator's internal state, resuming the
// stream captured by State. The all-zero state is rejected because it
// is invalid for xoshiro256** and cannot be produced by New.
func (r *Rand) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return ErrZeroState
	}
	r.s = s
	return nil
}

// splitmix64 advances the splitmix64 state and returns (newState, output).
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next value in the xoshiro256** stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split returns a new generator whose stream is decorrelated from r's.
// It is used to hand independent generators to per-replication runs.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, mirroring
// math/rand, because a non-positive bound is always a programming error.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn bound must be positive")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// nearly-divisionless multiply-shift rejection method.
func (r *Rand) boundedUint64(bound uint64) uint64 {
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= bound || lo >= -bound%bound {
			return hi
		}
	}
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher–Yates).
func (r *Rand) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Sample returns count distinct values drawn uniformly from [0, n) in
// random order. It panics if count > n. It runs in O(count) expected time
// for count << n (rejection from a set) and O(n) otherwise.
func (r *Rand) Sample(n, count int) []int {
	if count > n {
		panic("xrand: Sample count exceeds population")
	}
	if count <= 0 {
		return nil
	}
	// For dense samples, a partial Fisher–Yates is cheaper and exact.
	if count*4 >= n {
		p := make([]int, n)
		for i := range p {
			p[i] = i
		}
		for i := 0; i < count; i++ {
			j := i + r.Intn(n-i)
			p[i], p[j] = p[j], p[i]
		}
		return p[:count:count]
	}
	seen := make(map[int]struct{}, count)
	out := make([]int, 0, count)
	for len(out) < count {
		v := r.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
