package xrand

import "testing"

// Save → restore → the next million draws must be identical. This is
// the primitive the whole checkpoint layer's resume-determinism
// contract rests on.
func TestStateRoundTripMillionDraws(t *testing.T) {
	r := New(0xfeedface)
	// Burn some draws so the captured state is mid-stream, not the
	// freshly-seeded one.
	for i := 0; i < 1000; i++ {
		r.Uint64()
	}
	saved := r.State()

	restored := New(1) // deliberately different seed; SetState must win
	if err := restored.SetState(saved); err != nil {
		t.Fatalf("SetState: %v", err)
	}

	const draws = 1_000_000
	for i := 0; i < draws; i++ {
		a, b := r.Uint64(), restored.Uint64()
		if a != b {
			t.Fatalf("draw %d diverged: %#x vs %#x", i, a, b)
		}
	}
}

// State must be a snapshot, not an alias: mutating the original
// generator after State() must not change the captured value.
func TestStateIsCopy(t *testing.T) {
	r := New(7)
	s := r.State()
	r.Uint64()
	if s == r.State() {
		t.Fatal("state did not advance after a draw")
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	r := New(7)
	before := r.State()
	if err := r.SetState([4]uint64{}); err != ErrZeroState {
		t.Fatalf("SetState(zero) = %v, want ErrZeroState", err)
	}
	if r.State() != before {
		t.Fatal("failed SetState mutated the generator")
	}
}

// The derived-stream helpers (Intn, Float64, Perm, Sample) all draw
// through Uint64, so a restored generator must reproduce them too.
func TestStateRoundTripDerivedDraws(t *testing.T) {
	r := New(42)
	r.Uint64()
	clone := New(0)
	if err := clone.SetState(r.State()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a, b := r.Intn(97), clone.Intn(97); a != b {
			t.Fatalf("Intn diverged at %d: %d vs %d", i, a, b)
		}
		if a, b := r.Float64(), clone.Float64(); a != b {
			t.Fatalf("Float64 diverged at %d: %v vs %v", i, a, b)
		}
	}
	pa, pb := r.Perm(50), clone.Perm(50)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("Perm diverged at %d", i)
		}
	}
	sa, sb := r.Sample(1000, 10), clone.Sample(1000, 10)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("Sample diverged at %d", i)
		}
	}
}
