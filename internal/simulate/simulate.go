// Package simulate implements the paper's synchronous, tick-based
// dissemination simulator.
//
// Model (Section 2.1 of the paper): node 0 is the server and initially
// holds all k blocks; clients 1..n-1 start empty. Time advances in ticks.
// In each tick every node may upload at most U blocks and download at
// most D blocks (U = 1 in the paper; D >= U, possibly unbounded), and a
// node may only upload blocks it held at the *start* of the tick
// (store-and-forward at block granularity). All transfers within a tick
// land simultaneously at the tick boundary.
//
// An algorithm is a Scheduler: given the tick number and a read-only view
// of the global state, it proposes the tick's transfer set. The engine
// validates every proposal against the bandwidth and store-and-forward
// rules — a scheduler bug is surfaced as an error, never silently
// repaired — applies the transfers, and runs until every client holds the
// whole file.
//
// # Fault injection
//
// Config.Fault attaches a fault.Plan: at the start of each tick the
// engine applies that tick's crash and rejoin events, and each scheduled
// transfer may be lost or corrupted in flight. Schedulers observe the
// adversity exclusively through the State view — Alive, FaultEvents,
// LostLastTick — and the engine enforces, on top of the usual rules, that
// no transfer touches a dead node. With a nil Plan the engine is
// byte-identical to the fault-free implementation: no extra allocations,
// no RNG draws, identical results.
package simulate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"barterdist/internal/bitset"
	"barterdist/internal/fault"
)

// Unlimited marks a download capacity with no bound.
const Unlimited = 0

// Transfer is one block moving from one node to another within a tick.
type Transfer struct {
	From  int32
	To    int32
	Block int32
}

// LostTransfer is a scheduled transfer the fault layer dropped: the
// sender's bandwidth was consumed but the block never landed. Corrupt
// distinguishes "arrived but failed verification" from "vanished".
type LostTransfer struct {
	Transfer
	Corrupt bool
}

// Config describes a simulation instance.
type Config struct {
	// Nodes is the total node count n (server + clients). Must be >= 1.
	Nodes int
	// Blocks is the file size k in blocks. Must be >= 1.
	Blocks int
	// UploadCap U: max blocks a node may upload per tick. 0 means the
	// paper's default of 1.
	UploadCap int
	// ServerUploadCap overrides UploadCap for node 0, modeling the
	// paper's "higher server bandwidths" variant (server bandwidth m·U,
	// Section 2.3.4). 0 means same as UploadCap.
	ServerUploadCap int
	// DownloadCap D: max blocks a node may download per tick.
	// Unlimited (0) means no bound. Must be 0 or >= UploadCap.
	DownloadCap int
	// MaxTicks aborts runaway schedulers. 0 selects a generous default
	// proportional to the trivial pipeline bound.
	MaxTicks int
	// RecordTrace keeps every tick's transfer list in the result so that
	// mechanism verifiers and RunAudit can audit the run. Costs memory
	// on big runs.
	RecordTrace bool
	// Fault attaches a fault-injection plan (crashes, rejoins, transfer
	// loss). nil runs the reliable engine unchanged. A Plan is
	// single-use: build one per run.
	Fault *fault.Plan
}

// Validate checks the raw configuration without mutating it. All
// invalid fields are reported in a single error — raw values are checked
// before any defaulting, so a negative UploadCap can never be
// zero-corrected into a silently inconsistent ServerUploadCap pairing.
// Cross-field constraints are checked against the effective
// (post-default) values so that Validate agrees with what Run will use.
func (c *Config) Validate() error {
	var bad []string
	if c.Nodes < 1 {
		bad = append(bad, fmt.Sprintf("Nodes = %d, need >= 1", c.Nodes))
	}
	if c.Blocks < 1 {
		bad = append(bad, fmt.Sprintf("Blocks = %d, need >= 1", c.Blocks))
	}
	if c.UploadCap < 0 {
		bad = append(bad, fmt.Sprintf("UploadCap = %d, need >= 0", c.UploadCap))
	}
	if c.ServerUploadCap < 0 {
		bad = append(bad, fmt.Sprintf("ServerUploadCap = %d, need >= 0", c.ServerUploadCap))
	}
	if c.DownloadCap < 0 {
		bad = append(bad, fmt.Sprintf("DownloadCap = %d, need >= 0", c.DownloadCap))
	}
	if len(bad) > 0 {
		return fmt.Errorf("simulate: invalid config: %s", strings.Join(bad, "; "))
	}
	effUpload := c.UploadCap
	if effUpload == 0 {
		effUpload = 1
	}
	if c.DownloadCap != Unlimited && c.DownloadCap < effUpload {
		return fmt.Errorf("simulate: invalid config: DownloadCap %d < UploadCap %d", c.DownloadCap, effUpload)
	}
	return nil
}

// withDefaults returns a copy with zero fields replaced by the
// documented defaults. The configuration must already be valid.
func (c Config) withDefaults() Config {
	if c.UploadCap == 0 {
		c.UploadCap = 1
	}
	if c.ServerUploadCap == 0 {
		c.ServerUploadCap = c.UploadCap
	}
	if c.MaxTicks == 0 {
		// Pipeline needs k + n - 2; strict-barter worst cases add O(n);
		// leave ample slack for deliberately bad schedulers under test.
		c.MaxTicks = 20*(c.Blocks+c.Nodes) + 1000
	}
	return c
}

// State is the global block-ownership state exposed read-only to
// schedulers.
type State struct {
	n, k     int
	have     []*bitset.Set
	complete int // alive clients (not server) holding all k blocks
	tick     int // last completed tick

	// Fault-layer view; all nil/zero without a fault plan.
	alive         []bool
	aliveClients  int
	pendingRejoin int
	events        []fault.Event  // applied at the start of the current tick
	lost          []LostTransfer // dropped in the previous tick
}

func newState(n, k int) *State {
	s := &State{n: n, k: k, have: make([]*bitset.Set, n)}
	for i := range s.have {
		s.have[i] = bitset.New(k)
	}
	for b := 0; b < k; b++ {
		s.have[0].Add(b)
	}
	if n == 1 {
		s.complete = 0
	}
	return s
}

// N returns the node count (server included).
func (s *State) N() int { return s.n }

// K returns the block count.
func (s *State) K() int { return s.k }

// Tick returns the index of the last completed tick (0 before the first).
func (s *State) Tick() int { return s.tick }

// Has reports whether node v currently holds block b.
func (s *State) Has(v, b int) bool { return s.have[v].Has(b) }

// Blocks returns node v's block set. Callers must treat it as read-only;
// mutating it corrupts the simulation.
func (s *State) Blocks(v int) *bitset.Set { return s.have[v] }

// CountOf returns how many blocks node v holds.
func (s *State) CountOf(v int) int { return s.have[v].Count() }

// Alive reports whether node v is currently up. Without a fault plan
// every node is always alive.
func (s *State) Alive(v int) bool { return s.alive == nil || s.alive[v] }

// AliveClients returns the number of clients currently up (n-1 without
// a fault plan).
func (s *State) AliveClients() int {
	if s.alive == nil {
		return s.n - 1
	}
	return s.aliveClients
}

// FaultEvents returns the crash/rejoin events applied at the start of
// the current tick, in application order. Schedulers use it to
// invalidate caches (rarity statistics, no-peer memos) and to trigger
// repair paths. The slice is reused across ticks; treat it as read-only
// and do not retain it.
func (s *State) FaultEvents() []fault.Event { return s.events }

// LostLastTick returns the transfers scheduled in the previous tick
// that the fault layer dropped or corrupted — the feedback channel a
// scheduler needs to retry and to keep its accounting honest. The slice
// is reused across ticks; treat it as read-only and do not retain it.
func (s *State) LostLastTick() []LostTransfer { return s.lost }

// ClientsComplete returns the number of alive clients holding the
// entire file.
func (s *State) ClientsComplete() int { return s.complete }

// AllClientsComplete reports whether dissemination has finished: every
// client that is still part of the system holds the whole file. Under a
// fault plan, permanently departed nodes are excluded and nodes that
// are scheduled to rejoin still count as pending.
func (s *State) AllClientsComplete() bool {
	if s.alive == nil {
		return s.complete == s.n-1
	}
	return s.complete == s.aliveClients && s.pendingRejoin == 0
}

// Scheduler proposes each tick's transfers.
type Scheduler interface {
	// Tick appends the transfers for tick t (1-based) to dst and returns
	// the extended slice. It must only schedule blocks the sender holds
	// in the provided state, must respect the bandwidth caps the engine
	// was configured with, and under a fault plan must not involve dead
	// nodes; violations abort the run with an error.
	// Returning no transfers is legal (an idle tick).
	Tick(t int, s *State, dst []Transfer) ([]Transfer, error)
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(t int, s *State, dst []Transfer) ([]Transfer, error)

// Tick implements Scheduler.
func (f SchedulerFunc) Tick(t int, s *State, dst []Transfer) ([]Transfer, error) {
	return f(t, s, dst)
}

// Result summarizes a completed run.
type Result struct {
	// CompletionTime is the tick by whose end the last client completed.
	CompletionTime int
	// ClientCompletion[v] is the tick at which node v (client) completed;
	// index 0 (the server) is 0. Under churn it is the most recent
	// completion (a node that rejoined empty completes again later).
	ClientCompletion []int
	// TotalTransfers counts every block movement, including redundant
	// deliveries of blocks the receiver already obtained the same tick
	// and transfers the fault layer dropped (bandwidth was spent).
	TotalTransfers int
	// UsefulTransfers counts transfers that delivered a new block.
	UsefulTransfers int
	// UploadsPerTick[t-1] is the number of transfers scheduled in tick t.
	UploadsPerTick []int
	// Trace holds per-tick transfer lists when Config.RecordTrace is set.
	Trace [][]Transfer

	// Fault-layer outcomes; zero without a fault plan.

	// FaultLog lists the applied crash/rejoin events; Time is the tick
	// at which each took effect (events apply at the start of a tick).
	FaultLog []fault.Event
	// LostTransfers counts transfers dropped in flight.
	LostTransfers int
	// CorruptTransfers counts transfers delivered but discarded.
	CorruptTransfers int
	// LostTrace[t-1] holds the indices into Trace[t-1] of the transfers
	// that were dropped in tick t (only when RecordTrace is set).
	LostTrace [][]int
	// FinalHave is a snapshot of every node's final block set (only when
	// RecordTrace is set) — the ground truth RunAudit replays against.
	FinalHave []*bitset.Set
	// FinalAlive is the final liveness mask (only when RecordTrace is
	// set and a fault plan was active).
	FinalAlive []bool
}

// Efficiency returns useful transfers divided by the upload capacity
// consumed if every node uploaded one block every tick until completion —
// the utilization the paper's middlegame tries to drive to 1.
func (r *Result) Efficiency(n int) float64 {
	if r.CompletionTime == 0 || n == 0 {
		return 0
	}
	return float64(r.UsefulTransfers) / float64(n*r.CompletionTime)
}

// ErrMaxTicks is returned when a scheduler fails to complete within the
// configured budget — typically a livelocked or deadlocked protocol.
var ErrMaxTicks = errors.New("simulate: exceeded MaxTicks before completion")

// simFaults carries the engine-side fault bookkeeping for one run.
type simFaults struct {
	plan    *fault.Plan
	rejoins []fault.Event // pending rejoins, sorted by Time ascending
	// nextLost accumulates this tick's drops; swapped into State.lost at
	// the tick boundary so schedulers see them next tick.
	nextLost []LostTransfer
}

// rejoinTick converts a crash applied at tick t with rejoin delay d
// into the tick at which the node returns: the first tick boundary at
// least d after the crash, and never the crash tick itself.
func rejoinTick(t int, delay float64) int {
	rt := t + int(math.Ceil(delay))
	if rt <= t {
		rt = t + 1
	}
	return rt
}

// beginTick applies every fault event scheduled for the start of tick t
// and exposes them through the State. It returns an error only on
// internal inconsistencies.
func (sf *simFaults) beginTick(t int, st *State, res *Result) {
	st.events = st.events[:0]
	// Rejoins first: a slot freed by an old crash refills before new
	// crashes are drawn, so a same-tick crash can hit the rejoined node.
	for len(sf.rejoins) > 0 && sf.rejoins[0].Time <= float64(t) {
		ev := sf.rejoins[0]
		sf.rejoins = sf.rejoins[1:]
		ev.Time = float64(t)
		sf.applyRejoin(ev, st, res)
	}
	for {
		at, ok := sf.plan.NextCrash()
		if !ok || at > float64(t) {
			break
		}
		sf.plan.TakeCrash()
		v := sf.plan.PickVictim(st.n,
			func(v int) bool { return st.alive[v] },
			func(v int) int { return st.have[v].Count() })
		if v < 0 {
			continue // nobody left to kill
		}
		sf.applyCrash(t, v, st, res)
	}
}

func (sf *simFaults) applyCrash(t, v int, st *State, res *Result) {
	st.alive[v] = false
	st.aliveClients--
	if st.have[v].Full() {
		st.complete--
	}
	ev := fault.Event{Time: float64(t), Node: int32(v), Kind: fault.Crash}
	st.events = append(st.events, ev)
	res.FaultLog = append(res.FaultLog, ev)
	if delay, ok := sf.plan.Rejoins(); ok {
		st.pendingRejoin++
		sf.rejoins = append(sf.rejoins, fault.Event{
			Time:  float64(rejoinTick(t, delay)),
			Node:  int32(v),
			Kind:  fault.Rejoin,
			Wiped: sf.plan.RejoinWipes(),
		})
		sort.SliceStable(sf.rejoins, func(i, j int) bool {
			return sf.rejoins[i].Time < sf.rejoins[j].Time
		})
	}
}

func (sf *simFaults) applyRejoin(ev fault.Event, st *State, res *Result) {
	v := int(ev.Node)
	st.alive[v] = true
	st.aliveClients++
	st.pendingRejoin--
	if ev.Wiped {
		st.have[v].Clear()
		res.ClientCompletion[v] = 0
	} else if st.have[v].Full() {
		st.complete++
	}
	st.events = append(st.events, ev)
	res.FaultLog = append(res.FaultLog, ev)
}

// Run executes the scheduler until every client holds all blocks (or,
// under a fault plan, every client still part of the system does).
func Run(cfg Config, sched Scheduler) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	st := newState(c.Nodes, c.Blocks)
	res := &Result{ClientCompletion: make([]int, c.Nodes)}
	if c.Nodes == 1 {
		return res, nil // no clients: vacuously complete at t=0
	}

	var sf *simFaults
	if c.Fault != nil {
		if err := c.Fault.Acquire(); err != nil {
			return nil, err
		}
		sf = &simFaults{plan: c.Fault}
		st.alive = make([]bool, c.Nodes)
		for i := range st.alive {
			st.alive[i] = true
		}
		st.aliveClients = c.Nodes - 1
	}

	upUsed := make([]int, c.Nodes)
	downUsed := make([]int, c.Nodes)
	var buf []Transfer
	var err error

	finish := func(t int) *Result {
		res.CompletionTime = t
		if c.RecordTrace {
			res.FinalHave = make([]*bitset.Set, c.Nodes)
			for v := range res.FinalHave {
				res.FinalHave[v] = st.have[v].Clone()
			}
			if st.alive != nil {
				res.FinalAlive = append([]bool(nil), st.alive...)
			}
		}
		return res
	}

	for t := 1; t <= c.MaxTicks; t++ {
		if sf != nil {
			sf.beginTick(t, st, res)
			// A crash can finish the run by removing the last incomplete
			// client; the state is then that of the end of tick t-1.
			if st.AllClientsComplete() {
				return finish(t - 1), nil
			}
		}
		buf = buf[:0]
		buf, err = sched.Tick(t, st, buf)
		if err != nil {
			return nil, fmt.Errorf("simulate: scheduler failed at tick %d: %w", t, err)
		}

		for i := range upUsed {
			upUsed[i] = 0
			downUsed[i] = 0
		}
		// Validate against state at the start of the tick.
		for _, tr := range buf {
			if err := validate(tr, st, c, upUsed, downUsed); err != nil {
				return nil, fmt.Errorf("simulate: tick %d: %w", t, err)
			}
		}
		var lostIdx []int
		if sf != nil {
			sf.nextLost = sf.nextLost[:0]
		}
		// Apply simultaneously.
		for i, tr := range buf {
			if sf != nil && sf.plan.Lossy() {
				lost, corrupt := sf.plan.Drop()
				if lost || corrupt {
					sf.nextLost = append(sf.nextLost, LostTransfer{Transfer: tr, Corrupt: corrupt})
					if corrupt {
						res.CorruptTransfers++
					} else {
						res.LostTransfers++
					}
					if c.RecordTrace {
						lostIdx = append(lostIdx, i)
					}
					res.TotalTransfers++ // the upload slot was spent
					continue
				}
			}
			if st.have[tr.To].Add(int(tr.Block)) {
				res.UsefulTransfers++
				if int(tr.To) != 0 && st.have[tr.To].Full() {
					st.complete++
					res.ClientCompletion[tr.To] = t
				}
			}
			res.TotalTransfers++
		}
		res.UploadsPerTick = append(res.UploadsPerTick, len(buf))
		if c.RecordTrace {
			tick := make([]Transfer, len(buf))
			copy(tick, buf)
			res.Trace = append(res.Trace, tick)
			if sf != nil {
				res.LostTrace = append(res.LostTrace, lostIdx)
			}
		}
		if sf != nil {
			// Expose this tick's drops to the scheduler next tick.
			st.lost, sf.nextLost = sf.nextLost, st.lost
		}
		st.tick = t
		if st.AllClientsComplete() {
			return finish(t), nil
		}
	}
	return nil, fmt.Errorf("%w (MaxTicks=%d, clients complete: %d/%d)",
		ErrMaxTicks, c.MaxTicks, st.complete, c.Nodes-1)
}

func validate(tr Transfer, st *State, c Config, upUsed, downUsed []int) error {
	from, to, b := int(tr.From), int(tr.To), int(tr.Block)
	switch {
	case from < 0 || from >= st.n:
		return fmt.Errorf("sender %d out of range", from)
	case to < 0 || to >= st.n:
		return fmt.Errorf("receiver %d out of range", to)
	case from == to:
		return fmt.Errorf("node %d transfers to itself", from)
	case b < 0 || b >= st.k:
		return fmt.Errorf("block %d out of range", b)
	}
	if st.alive != nil {
		if !st.alive[from] {
			return fmt.Errorf("dead node %d cannot upload", from)
		}
		if !st.alive[to] {
			return fmt.Errorf("dead node %d cannot download", to)
		}
	}
	if !st.have[from].Has(b) {
		return fmt.Errorf("store-and-forward violation: node %d does not hold block %d", from, b)
	}
	upUsed[from]++
	upCap := c.UploadCap
	if from == 0 {
		upCap = c.ServerUploadCap
	}
	if upUsed[from] > upCap {
		return fmt.Errorf("node %d exceeds upload cap %d", from, upCap)
	}
	downUsed[to]++
	if c.DownloadCap != Unlimited && downUsed[to] > c.DownloadCap {
		return fmt.Errorf("node %d exceeds download cap %d", to, c.DownloadCap)
	}
	return nil
}

var _ Scheduler = SchedulerFunc(nil)
