// Package simulate implements the paper's synchronous, tick-based
// dissemination simulator.
//
// Model (Section 2.1 of the paper): node 0 is the server and initially
// holds all k blocks; clients 1..n-1 start empty. Time advances in ticks.
// In each tick every node may upload at most U blocks and download at
// most D blocks (U = 1 in the paper; D >= U, possibly unbounded), and a
// node may only upload blocks it held at the *start* of the tick
// (store-and-forward at block granularity). All transfers within a tick
// land simultaneously at the tick boundary.
//
// An algorithm is a Scheduler: given the tick number and a read-only view
// of the global state, it proposes the tick's transfer set. The engine
// validates every proposal against the bandwidth and store-and-forward
// rules — a scheduler bug is surfaced as an error, never silently
// repaired — applies the transfers, and runs until every client holds the
// whole file.
//
// # Fault injection
//
// Config.Fault attaches a fault.Plan: at the start of each tick the
// engine applies that tick's crash and rejoin events, and each scheduled
// transfer may be lost or corrupted in flight. Schedulers observe the
// adversity exclusively through the State view — Alive, FaultEvents,
// LostLastTick — and the engine enforces, on top of the usual rules, that
// no transfer touches a dead node. With a nil Plan the engine is
// byte-identical to the fault-free implementation: no extra allocations,
// no RNG draws, identical results.
//
// # Adversarial behavior
//
// Config.Adversary attaches an adversary.Plan: each scheduled transfer
// is first put to the sender's strategy (free-riders refuse,
// false-advertisers stall, corrupters serve garbage that fails
// verification at the receiver), and only transfers the adversary lets
// through reach the fault layer — a block that was never sent cannot
// also be lost in the network. Adversary-faulted transfers surface to
// schedulers through the same LostLastTick channel as fault losses,
// with LostTransfer.Adversary set, and completion switches to the
// honest-only criterion: the run ends when every *honest* client holds
// the file (a free-rider that starves under barter must not hold the
// swarm hostage). With a nil Plan the engine is byte-identical to the
// adversary-free implementation.
package simulate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"barterdist/internal/adversary"
	"barterdist/internal/arrival"
	"barterdist/internal/bitset"
	"barterdist/internal/checkpoint"
	"barterdist/internal/fault"
	"barterdist/internal/trace"
)

// Unlimited marks a download capacity with no bound.
const Unlimited = 0

// Transfer is one block moving from one node to another within a tick.
// It is an alias for the columnar trace package's element type, so
// schedulers and the trace store share one representation.
type Transfer = trace.Transfer

// LostTransfer is a scheduled transfer that never delivered a block:
// dropped by the fault layer or denied by the sender's adversarial
// strategy. Corrupt distinguishes "arrived but failed verification"
// (a fault-layer corruption or a corrupter's garbage — block
// verification at delivery discards both) from "vanished"; Adversary
// marks the sender's strategy, not the network, as the cause. Either
// way the receiver's download slot was wasted for the tick.
type LostTransfer struct {
	Transfer
	Corrupt   bool
	Adversary bool
}

// Lost-transfer kinds recorded per drop in the kinded columns of
// Result.Trace when an adversary plan is active. They alias the trace
// package's kinds, which own the canonical ordering.
const (
	// LostKindFault: vanished in the network (fault layer).
	LostKindFault = trace.KindFault
	// LostKindFaultCorrupt: corrupted in the network, discarded at
	// verification.
	LostKindFaultCorrupt = trace.KindFaultCorrupt
	// LostKindRefused: the sender silently refused (free-rider,
	// completed defector, throttler outside its window).
	LostKindRefused = trace.KindRefused
	// LostKindStalled: a false-advertiser's claimed block never
	// materialized.
	LostKindStalled = trace.KindStalled
	// LostKindGarbage: a corrupter's bytes failed verification.
	LostKindGarbage = trace.KindGarbage
)

// Config describes a simulation instance.
type Config struct {
	// Nodes is the total node count n (server + clients). Must be >= 1.
	Nodes int
	// Blocks is the file size k in blocks. Must be >= 1.
	Blocks int
	// UploadCap U: max blocks a node may upload per tick. 0 means the
	// paper's default of 1.
	UploadCap int
	// ServerUploadCap overrides UploadCap for node 0, modeling the
	// paper's "higher server bandwidths" variant (server bandwidth m·U,
	// Section 2.3.4). 0 means same as UploadCap.
	ServerUploadCap int
	// DownloadCap D: max blocks a node may download per tick.
	// Unlimited (0) means no bound. Must be 0 or >= UploadCap.
	DownloadCap int
	// MaxTicks aborts runaway schedulers. 0 selects a generous default
	// proportional to the trivial pipeline bound.
	MaxTicks int
	// RecordTrace keeps every tick's transfer list in the result so that
	// mechanism verifiers and RunAudit can audit the run. Costs memory
	// on big runs.
	RecordTrace bool
	// Fault attaches a fault-injection plan (crashes, rejoins, transfer
	// loss). nil runs the reliable engine unchanged. A Plan is
	// single-use: build one per run.
	Fault *fault.Plan
	// Adversary attaches a behavior-injection plan (free-riders,
	// throttlers, false-advertisers, corrupters, defectors). nil runs
	// the compliant engine unchanged. Like Fault, a Plan is single-use
	// and composes with it: the adversary rules on each transfer first.
	Adversary *adversary.Plan
	// Arrivals attaches an open-system plan (Poisson peer arrivals,
	// departures at completion or selfish early exit, seed policy).
	// Nodes then becomes the *capacity* — an upper bound on cumulative
	// arrivals — and the run ends with a stability verdict in
	// Result.Open instead of a closed-batch completion. nil runs the
	// closed engine unchanged. Single-use, and mutually exclusive with
	// Fault and Adversary for now.
	Arrivals *arrival.Plan
	// AuditWorkers is how many OS workers RunAudit spreads its fixed
	// tick-chunk and node-lane partition over. 0 and 1 both mean inline
	// sequential replay. Verdicts — including error text — are
	// byte-identical for every value; the knob only trades wall-clock
	// for cores.
	AuditWorkers int
	// Checkpoint enables periodic crash-safe snapshots of the full
	// engine state: every Checkpoint.Every ticks the engine atomically
	// rewrites Checkpoint.Path with a snapshot a later Resume call can
	// continue from. Requires a CheckpointableScheduler. nil disables
	// checkpointing with zero overhead.
	Checkpoint *checkpoint.Policy
}

// Validate checks the raw configuration without mutating it. All
// invalid fields are reported in a single error — raw values are checked
// before any defaulting, so a negative UploadCap can never be
// zero-corrected into a silently inconsistent ServerUploadCap pairing.
// Cross-field constraints are checked against the effective
// (post-default) values so that Validate agrees with what Run will use.
func (c *Config) Validate() error {
	var bad []string
	if c.Nodes < 1 {
		bad = append(bad, fmt.Sprintf("Nodes = %d, need >= 1", c.Nodes))
	}
	if c.Blocks < 1 {
		bad = append(bad, fmt.Sprintf("Blocks = %d, need >= 1", c.Blocks))
	}
	if c.UploadCap < 0 {
		bad = append(bad, fmt.Sprintf("UploadCap = %d, need >= 0", c.UploadCap))
	}
	if c.ServerUploadCap < 0 {
		bad = append(bad, fmt.Sprintf("ServerUploadCap = %d, need >= 0", c.ServerUploadCap))
	}
	if c.DownloadCap < 0 {
		bad = append(bad, fmt.Sprintf("DownloadCap = %d, need >= 0", c.DownloadCap))
	}
	if c.Arrivals != nil {
		if c.Nodes < 2 {
			bad = append(bad, "open-system mode needs Nodes >= 2 (capacity for at least one arrival)")
		}
		if c.Fault != nil {
			bad = append(bad, "Arrivals cannot combine with Fault (open-system churn owns the liveness mask)")
		}
		if c.Adversary != nil {
			bad = append(bad, "Arrivals cannot combine with Adversary (open-system completion semantics differ)")
		}
	}
	if c.AuditWorkers < 0 {
		bad = append(bad, fmt.Sprintf("AuditWorkers = %d, need >= 0", c.AuditWorkers))
	}
	if len(bad) > 0 {
		return fmt.Errorf("simulate: invalid config: %s", strings.Join(bad, "; "))
	}
	effUpload := c.UploadCap
	if effUpload == 0 {
		effUpload = 1
	}
	if c.DownloadCap != Unlimited && c.DownloadCap < effUpload {
		return fmt.Errorf("simulate: invalid config: DownloadCap %d < UploadCap %d", c.DownloadCap, effUpload)
	}
	return nil
}

// withDefaults returns a copy with zero fields replaced by the
// documented defaults. The configuration must already be valid.
func (c Config) withDefaults() Config {
	if c.UploadCap == 0 {
		c.UploadCap = 1
	}
	if c.ServerUploadCap == 0 {
		c.ServerUploadCap = c.UploadCap
	}
	if c.MaxTicks == 0 {
		// Pipeline needs k + n - 2; strict-barter worst cases add O(n);
		// leave ample slack for deliberately bad schedulers under test.
		c.MaxTicks = 20*(c.Blocks+c.Nodes) + 1000
	}
	return c
}

// State is the global block-ownership state exposed read-only to
// schedulers.
type State struct {
	n, k     int
	have     []*bitset.Set
	complete int // alive clients (not server) holding all k blocks
	tick     int // last completed tick

	// Fault-layer view; all nil/zero without a fault plan.
	alive         []bool
	aliveClients  int
	pendingRejoin int
	events        []fault.Event  // applied at the start of the current tick
	lost          []LostTransfer // dropped in the previous tick

	// Adversary-layer view; all nil/zero without an adversary plan.
	adv                 *adversary.Plan // engine runs only; nil in audit replays
	honest              []bool          // honest[v]: node v plays by the protocol
	honestClients       int             // honest clients (server excluded)
	completeHonest      int             // alive honest clients holding all k blocks
	aliveHonest         int             // honest clients currently up
	pendingRejoinHonest int             // honest clients scheduled to rejoin
}

func newState(n, k int) *State {
	s := &State{n: n, k: k, have: make([]*bitset.Set, n)}
	for i := range s.have {
		s.have[i] = bitset.New(k)
	}
	for b := 0; b < k; b++ {
		s.have[0].Add(b)
	}
	if n == 1 {
		s.complete = 0
	}
	return s
}

// N returns the node count (server included).
func (s *State) N() int { return s.n }

// K returns the block count.
func (s *State) K() int { return s.k }

// Tick returns the index of the last completed tick (0 before the first).
func (s *State) Tick() int { return s.tick }

// Has reports whether node v currently holds block b.
func (s *State) Has(v, b int) bool { return s.have[v].Has(b) }

// Blocks returns node v's block set. Callers must treat it as read-only;
// mutating it corrupts the simulation.
func (s *State) Blocks(v int) *bitset.Set { return s.have[v] }

// CountOf returns how many blocks node v holds.
func (s *State) CountOf(v int) int { return s.have[v].Count() }

// Alive reports whether node v is currently up. Without a fault plan
// every node is always alive.
func (s *State) Alive(v int) bool { return s.alive == nil || s.alive[v] }

// AliveClients returns the number of clients currently up (n-1 without
// a fault plan).
func (s *State) AliveClients() int {
	if s.alive == nil {
		return s.n - 1
	}
	return s.aliveClients
}

// FaultEvents returns the crash/rejoin events applied at the start of
// the current tick, in application order. Schedulers use it to
// invalidate caches (rarity statistics, no-peer memos) and to trigger
// repair paths. The slice is reused across ticks; treat it as read-only
// and do not retain it.
func (s *State) FaultEvents() []fault.Event { return s.events }

// LostLastTick returns the transfers scheduled in the previous tick
// that the fault layer dropped or corrupted — the feedback channel a
// scheduler needs to retry and to keep its accounting honest. The slice
// is reused across ticks; treat it as read-only and do not retain it.
func (s *State) LostLastTick() []LostTransfer { return s.lost }

// ClientsComplete returns the number of alive clients holding the
// entire file.
func (s *State) ClientsComplete() int { return s.complete }

// Adversarial reports whether an adversary plan is active — the cue
// for defensive schedulers to build their quarantine tables.
func (s *State) Adversarial() bool { return s.honest != nil }

// Honest reports whether node v plays by the protocol. Without an
// adversary plan every node is honest.
func (s *State) Honest(v int) bool { return s.honest == nil || s.honest[v] }

// HonestClientsComplete returns the number of alive honest clients
// holding the entire file (equal to ClientsComplete without an
// adversary plan).
func (s *State) HonestClientsComplete() int {
	if s.honest == nil {
		return s.complete
	}
	return s.completeHonest
}

// Refuses reports whether node u's own strategy refuses uploads in the
// current tick. A node knows its *own* strategy — schedulers may use
// this to model a misbehaving node declining to offer, but learn other
// nodes' strategies only through observed stalls and garbage.
func (s *State) Refuses(u int) bool {
	return s.adv != nil && s.adv.Refuses(u, float64(s.tick+1))
}

// AllClientsComplete reports whether dissemination has finished: every
// client that is still part of the system holds the whole file. Under a
// fault plan, permanently departed nodes are excluded and nodes that
// are scheduled to rejoin still count as pending. Under an adversary
// plan only *honest* clients count — a free-rider that starves under
// barter must not hold the swarm hostage.
func (s *State) AllClientsComplete() bool {
	if s.honest != nil {
		if s.alive == nil {
			return s.completeHonest == s.honestClients
		}
		return s.completeHonest == s.aliveHonest && s.pendingRejoinHonest == 0
	}
	if s.alive == nil {
		return s.complete == s.n-1
	}
	return s.complete == s.aliveClients && s.pendingRejoin == 0
}

// Scheduler proposes each tick's transfers.
type Scheduler interface {
	// Tick appends the transfers for tick t (1-based) to dst and returns
	// the extended slice. It must only schedule blocks the sender holds
	// in the provided state, must respect the bandwidth caps the engine
	// was configured with, and under a fault plan must not involve dead
	// nodes; violations abort the run with an error.
	// Returning no transfers is legal (an idle tick).
	Tick(t int, s *State, dst []Transfer) ([]Transfer, error)
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(t int, s *State, dst []Transfer) ([]Transfer, error)

// Tick implements Scheduler.
func (f SchedulerFunc) Tick(t int, s *State, dst []Transfer) ([]Transfer, error) {
	return f(t, s, dst)
}

// Result summarizes a completed run.
type Result struct {
	// CompletionTime is the tick by whose end the last client completed.
	CompletionTime int
	// ClientCompletion[v] is the tick at which node v (client) completed;
	// index 0 (the server) is 0. Under churn it is the most recent
	// completion (a node that rejoined empty completes again later).
	ClientCompletion []int
	// TotalTransfers counts every block movement, including redundant
	// deliveries of blocks the receiver already obtained the same tick
	// and transfers the fault layer dropped (bandwidth was spent).
	TotalTransfers int
	// UsefulTransfers counts transfers that delivered a new block.
	UsefulTransfers int
	// UploadsPerTick[t-1] is the number of transfers scheduled in tick t.
	UploadsPerTick []int
	// Trace is the columnar transfer log, recorded when
	// Config.RecordTrace is set (nil otherwise). It holds every
	// scheduled transfer per tick plus, under fault or adversary plans,
	// the drop positions and — for adversarial runs — per-drop kinds.
	// Consumers stream it through Trace.Cursor().
	Trace *trace.Log

	// Fault-layer outcomes; zero without a fault plan.

	// FaultLog lists the applied crash/rejoin events; Time is the tick
	// at which each took effect (events apply at the start of a tick).
	FaultLog []fault.Event
	// LostTransfers counts transfers dropped in flight.
	LostTransfers int
	// CorruptTransfers counts transfers delivered but discarded.
	CorruptTransfers int
	// FinalHave is a snapshot of every node's final block set (only when
	// RecordTrace is set) — the ground truth RunAudit replays against.
	FinalHave []*bitset.Set
	// FinalAlive is the final liveness mask (only when RecordTrace is
	// set and a fault or arrival plan was active).
	FinalAlive []bool

	// Open holds the open-system verdict and robustness instrumentation
	// (sojourn times, occupancy trajectory); nil for closed-batch runs.
	// In open mode FaultLog carries the Arrive/Depart events and
	// CompletionTime is the tick the run drained (or was truncated).
	Open *arrival.OpenResult

	// Adversary-layer outcomes; zero without an adversary plan.

	// Strategies records each node's assigned strategy (index = node id)
	// whenever an adversary plan was active — the artifact the post-hoc
	// audits (RunAudit, mechanism.AuditAdversary, VerifyStarvation)
	// replay against. nil for compliant runs.
	Strategies []adversary.Strategy
	// AdvRefused counts transfers the sender's strategy silently
	// refused (free-rider, completed defector, closed throttle window).
	AdvRefused int
	// AdvStalled counts transfers a false-advertiser claimed but never
	// sent.
	AdvStalled int
	// AdvCorrupt counts transfers a corrupter served that failed block
	// verification at the receiver and were discarded.
	AdvCorrupt int
	// HonestUseful counts useful deliveries to honest clients.
	HonestUseful int
	// HonestWasted counts honest clients' download slots wasted by
	// adversary-faulted transfers; HonestWasted/(HonestUseful+
	// HonestWasted) is Table F's honest stall rate.
	HonestWasted int
}

// HonestStallRate returns the fraction of honest clients' spent
// download slots that an adversary wasted (0 for compliant runs).
func (r *Result) HonestStallRate() float64 {
	if r.HonestUseful+r.HonestWasted == 0 {
		return 0
	}
	return float64(r.HonestWasted) / float64(r.HonestUseful+r.HonestWasted)
}

// Efficiency returns useful transfers divided by the upload capacity
// consumed if every node uploaded one block every tick until completion —
// the utilization the paper's middlegame tries to drive to 1.
func (r *Result) Efficiency(n int) float64 {
	if r.CompletionTime == 0 || n == 0 {
		return 0
	}
	return float64(r.UsefulTransfers) / float64(n*r.CompletionTime)
}

// ErrMaxTicks is returned when a scheduler fails to complete within the
// configured budget — typically a livelocked or deadlocked protocol.
var ErrMaxTicks = errors.New("simulate: exceeded MaxTicks before completion")

// simFaults carries the engine-side fault bookkeeping for one run.
type simFaults struct {
	plan    *fault.Plan
	rejoins []fault.Event // pending rejoins, sorted by Time ascending
}

// rejoinTick converts a crash applied at tick t with rejoin delay d
// into the tick at which the node returns: the first tick boundary at
// least d after the crash, and never the crash tick itself.
func rejoinTick(t int, delay float64) int {
	rt := t + int(math.Ceil(delay))
	if rt <= t {
		rt = t + 1
	}
	return rt
}

// beginTick applies every fault event scheduled for the start of tick t
// and exposes them through the State. It returns an error only on
// internal inconsistencies.
func (sf *simFaults) beginTick(t int, st *State, res *Result) {
	st.events = st.events[:0]
	// Rejoins first: a slot freed by an old crash refills before new
	// crashes are drawn, so a same-tick crash can hit the rejoined node.
	for len(sf.rejoins) > 0 && sf.rejoins[0].Time <= float64(t) {
		ev := sf.rejoins[0]
		sf.rejoins = sf.rejoins[1:]
		ev.Time = float64(t)
		sf.applyRejoin(ev, st, res)
	}
	for {
		at, ok := sf.plan.NextCrash()
		if !ok || at > float64(t) {
			break
		}
		sf.plan.TakeCrash()
		v := sf.plan.PickVictim(st.n,
			func(v int) bool { return st.alive[v] },
			func(v int) int { return st.have[v].Count() })
		if v < 0 {
			continue // nobody left to kill
		}
		sf.applyCrash(t, v, st, res)
	}
}

func (sf *simFaults) applyCrash(t, v int, st *State, res *Result) {
	st.alive[v] = false
	st.aliveClients--
	if st.have[v].Full() {
		st.complete--
	}
	if st.honest != nil && st.honest[v] {
		st.aliveHonest--
		if st.have[v].Full() {
			st.completeHonest--
		}
	}
	ev := fault.Event{Time: float64(t), Node: int32(v), Kind: fault.Crash}
	st.events = append(st.events, ev)
	res.FaultLog = append(res.FaultLog, ev)
	if delay, ok := sf.plan.Rejoins(); ok {
		st.pendingRejoin++
		if st.honest != nil && st.honest[v] {
			st.pendingRejoinHonest++
		}
		sf.rejoins = append(sf.rejoins, fault.Event{
			Time:  float64(rejoinTick(t, delay)),
			Node:  int32(v),
			Kind:  fault.Rejoin,
			Wiped: sf.plan.RejoinWipes(),
		})
		sort.SliceStable(sf.rejoins, func(i, j int) bool {
			return sf.rejoins[i].Time < sf.rejoins[j].Time
		})
	}
}

func (sf *simFaults) applyRejoin(ev fault.Event, st *State, res *Result) {
	v := int(ev.Node)
	st.alive[v] = true
	st.aliveClients++
	st.pendingRejoin--
	if st.honest != nil && st.honest[v] {
		st.aliveHonest++
		st.pendingRejoinHonest--
	}
	if ev.Wiped {
		st.have[v].Clear()
		res.ClientCompletion[v] = 0
	} else if st.have[v].Full() {
		st.complete++
		if st.honest != nil && st.honest[v] {
			st.completeHonest++
		}
	}
	st.events = append(st.events, ev)
	res.FaultLog = append(res.FaultLog, ev)
}

// runner carries everything one run needs across ticks. All per-tick
// scratch lives here so that a steady-state tick allocates nothing:
// the transfer buffer, the drop-index and drop-kind staging slices,
// the per-node capacity counters (reset by epoch stamp, not by an
// O(n) zeroing loop), and the lost-transfer swap buffer are reused
// verbatim from tick to tick.
type runner struct {
	c     Config
	st    *State
	res   *Result
	sched Scheduler
	sf    *simFaults
	adv   *adversary.Plan
	oa    *simArrivals

	caps         *capScratch
	buf          []Transfer
	dropIdx      []int32        // staging: this tick's drop indices (ascending)
	dropKinds    []uint8        // staging: parallel kinds (adversarial runs)
	nextLost     []LostTransfer // this tick's drops; swapped into st.lost at the boundary
	completedNow []int32        // clients that completed this tick (defector latch)
}

// capScratch holds the per-node upload/download counters used to
// validate a tick's proposal. Instead of zeroing two length-n arrays
// every tick, each counter carries the tick number ("epoch") at which
// it was last touched; a stale stamp reads as zero. Per-tick cost is
// proportional to the transfers scheduled, not to n.
type capScratch struct {
	up, down           []int32
	upStamp, downStamp []int32
	tick               int32
}

func newCapScratch(n int) *capScratch {
	return &capScratch{
		up:        make([]int32, n),
		down:      make([]int32, n),
		upStamp:   make([]int32, n),
		downStamp: make([]int32, n),
	}
}

// reset opens tick t; all counters become implicitly zero.
func (cs *capScratch) reset(t int) { cs.tick = int32(t) }

func (cs *capScratch) addUp(v int) int32 {
	if cs.upStamp[v] != cs.tick {
		cs.upStamp[v] = cs.tick
		cs.up[v] = 0
	}
	cs.up[v]++
	return cs.up[v]
}

func (cs *capScratch) addDown(v int) int32 {
	if cs.downStamp[v] != cs.tick {
		cs.downStamp[v] = cs.tick
		cs.down[v] = 0
	}
	cs.down[v]++
	return cs.down[v]
}

// newRunner validates the config, acquires the fault and adversary
// plans, and sets up state and scratch. The caller drives step.
func newRunner(cfg Config, sched Scheduler) (*runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	st := newState(c.Nodes, c.Blocks)
	res := &Result{ClientCompletion: make([]int, c.Nodes)}
	r := &runner{c: c, st: st, res: res, sched: sched}
	if c.Nodes == 1 {
		return r, nil // no clients: vacuously complete at t=0
	}

	if c.Fault != nil {
		if err := c.Fault.Acquire(); err != nil {
			return nil, err
		}
		r.sf = &simFaults{plan: c.Fault}
		st.alive = make([]bool, c.Nodes)
		for i := range st.alive {
			st.alive[i] = true
		}
		st.aliveClients = c.Nodes - 1
	}
	if c.Arrivals != nil {
		if err := c.Arrivals.Acquire(); err != nil {
			return nil, err
		}
		r.oa = newSimArrivals(c.Arrivals, c)
		// Only the persistent server is present at tick 0; clients
		// appear through the arrival stream with fresh ids.
		st.alive = make([]bool, c.Nodes)
		st.alive[0] = true
	}
	if adv := c.Adversary; adv != nil {
		if adv.N() != c.Nodes {
			return nil, fmt.Errorf("simulate: adversary plan built for %d nodes, config has %d", adv.N(), c.Nodes)
		}
		if err := adv.Acquire(); err != nil {
			return nil, err
		}
		r.adv = adv
		st.adv = adv
		st.honest = make([]bool, c.Nodes)
		for v := range st.honest {
			st.honest[v] = adv.Honest(v)
		}
		st.honestClients = c.Nodes - 1 - adv.Count()
		st.aliveHonest = st.honestClients
		res.Strategies = adv.Strategies()
	}

	r.caps = newCapScratch(c.Nodes)
	if c.RecordTrace {
		res.Trace = trace.New(r.adv != nil)
		// Size hints from the completion bound: a full run delivers
		// exactly (n-1)·k useful blocks, so the transfer columns hold at
		// least that; the cooperative bound k-1+⌈log₂n⌉ plus generous
		// slack covers the tick offsets. Overshoot is reclaimed when the
		// Result is dropped; undershoot falls back to append doubling.
		transfers := (c.Nodes - 1) * c.Blocks
		ticks := c.Blocks + 2*logCeil(c.Nodes) + 64
		if r.oa != nil {
			// Open-system runs have no fixed completion bound: (n-1)·k
			// becomes an upper estimate (early exits and truncation
			// deliver less), and the run lasts at least as long as the
			// arrival stream — capacity/λ ticks to admit everyone plus
			// the closed-batch drain tail. Both columns fall back to
			// trace.Reserve's documented append-doubling grow path when
			// the estimates undershoot (e.g. an Unstable run idling to
			// its budget), so sizing here is a hint, never a cap.
			ticks += int(float64(c.Nodes-1)/c.Arrivals.Options().Rate) + 1
		}
		res.Trace.Reserve(transfers, ticks, 0)
		res.UploadsPerTick = make([]int, 0, ticks)
	}
	return r, nil
}

// logCeil returns ⌈log₂ n⌉ for n >= 1.
func logCeil(n int) int {
	l := 0
	for v := 1; v < n; v <<= 1 {
		l++
	}
	return l
}

// finish stamps the completion tick and snapshots the final state.
func (r *runner) finish(t int) *Result {
	res, st, c := r.res, r.st, r.c
	res.CompletionTime = t
	if c.RecordTrace {
		res.FinalHave = make([]*bitset.Set, c.Nodes)
		for v := range res.FinalHave {
			res.FinalHave[v] = st.have[v].Clone()
		}
		if st.alive != nil {
			res.FinalAlive = append([]bool(nil), st.alive...)
		}
		if res.Trace != nil {
			// Recording is over: trim the trace to its compressed
			// footprint so MemSize and long-lived RSS reflect the
			// sealed frames, not append-path headroom.
			res.Trace.Compact()
		}
	}
	return res
}

// step executes tick t: fault events, one scheduler call, validation,
// simultaneous application, and trace recording. It returns done=true
// when the run completed at the end of this tick (or, under churn, at
// the end of the previous one — a crash can finish the run before any
// transfer is scheduled).
func (r *runner) step(t int) (done bool, err error) {
	st, res, c, sf, adv := r.st, r.res, r.c, r.sf, r.adv
	if sf != nil {
		sf.beginTick(t, st, res)
		// A crash can finish the run by removing the last incomplete
		// client; the state is then that of the end of tick t-1.
		if st.AllClientsComplete() {
			r.finish(t - 1)
			return true, nil
		}
	}
	if r.oa != nil {
		r.oa.beginTick(t, st, res)
		// A departure can drain the swarm before any transfer is
		// scheduled; the state is then that of the end of tick t-1.
		if r.oa.drained(st) {
			r.finish(t - 1)
			r.oa.seal(res, st, arrival.VerdictDrained, arrival.ReasonNone)
			return true, nil
		}
	}
	r.buf = r.buf[:0]
	r.buf, err = r.sched.Tick(t, st, r.buf)
	if err != nil {
		return false, fmt.Errorf("simulate: scheduler failed at tick %d: %w", t, err)
	}
	buf := r.buf

	// Validate against state at the start of the tick.
	r.caps.reset(t)
	for _, tr := range buf {
		if err := validate(tr, st, c, r.caps); err != nil {
			return false, fmt.Errorf("simulate: tick %d: %w", t, err)
		}
	}
	r.dropIdx = r.dropIdx[:0]
	r.dropKinds = r.dropKinds[:0]
	r.nextLost = r.nextLost[:0]
	r.completedNow = r.completedNow[:0]
	// Apply simultaneously. The adversary rules on each transfer
	// first (apply order is the deterministic draw order); only
	// transfers it lets through reach the fault layer.
	for i, tr := range buf {
		if adv != nil {
			if fate := adv.TransferFate(int(tr.From), float64(t)); fate != adversary.Deliver {
				r.nextLost = append(r.nextLost, LostTransfer{
					Transfer:  tr,
					Corrupt:   fate == adversary.Garbage,
					Adversary: true,
				})
				var kind uint8
				switch fate {
				case adversary.Refused:
					res.AdvRefused++
					kind = LostKindRefused
				case adversary.Stalled:
					res.AdvStalled++
					kind = LostKindStalled
				default:
					res.AdvCorrupt++
					kind = LostKindGarbage
				}
				if st.honest[tr.To] {
					res.HonestWasted++
				}
				if c.RecordTrace {
					r.dropIdx = append(r.dropIdx, int32(i))
					r.dropKinds = append(r.dropKinds, kind)
				}
				res.TotalTransfers++ // the receiver's slot was spent
				continue
			}
		}
		if sf != nil && sf.plan.Lossy() {
			lost, corrupt := sf.plan.Drop()
			if lost || corrupt {
				r.nextLost = append(r.nextLost, LostTransfer{Transfer: tr, Corrupt: corrupt})
				if corrupt {
					res.CorruptTransfers++
				} else {
					res.LostTransfers++
				}
				if c.RecordTrace {
					r.dropIdx = append(r.dropIdx, int32(i))
					if adv != nil {
						if corrupt {
							r.dropKinds = append(r.dropKinds, LostKindFaultCorrupt)
						} else {
							r.dropKinds = append(r.dropKinds, LostKindFault)
						}
					}
				}
				res.TotalTransfers++ // the upload slot was spent
				continue
			}
		}
		if st.have[tr.To].Add(int(tr.Block)) {
			res.UsefulTransfers++
			if adv != nil && st.honest[tr.To] {
				res.HonestUseful++
			}
			if int(tr.To) != 0 && st.have[tr.To].Full() {
				st.complete++
				res.ClientCompletion[tr.To] = t
				if st.honest != nil && st.honest[tr.To] {
					st.completeHonest++
				}
				if adv != nil {
					r.completedNow = append(r.completedNow, tr.To)
				}
				if r.oa != nil {
					r.oa.noteComplete(int(tr.To), t)
				}
			} else if r.oa != nil && int(tr.To) != 0 {
				r.oa.noteDelivery(int(tr.To), t, st)
			}
		}
		res.TotalTransfers++
	}
	if adv != nil {
		// Latch defectors only after the whole tick has landed:
		// blocks arrive simultaneously at the boundary, so a
		// defector's own tick-t uploads were sent before it knew it
		// was done.
		for _, v := range r.completedNow {
			adv.NoteComplete(int(v))
		}
	}
	res.UploadsPerTick = append(res.UploadsPerTick, len(buf))
	if c.RecordTrace {
		res.Trace.AppendTick(buf, r.dropIdx, r.dropKinds)
	}
	if sf != nil || adv != nil {
		// Expose this tick's drops to the scheduler next tick.
		st.lost, r.nextLost = r.nextLost, st.lost
	}
	st.tick = t
	if r.oa != nil {
		// Open runs end in a verdict, not a closed-batch completion:
		// the watchdog truncates a diverging or starving swarm, and the
		// drain check requires the arrival pool to be exhausted first.
		if reason := r.oa.endTick(t, st); reason != arrival.ReasonNone {
			r.finish(t)
			r.oa.seal(res, st, arrival.VerdictUnstable, reason)
			return true, nil
		}
		if r.oa.drained(st) {
			r.finish(t)
			r.oa.seal(res, st, arrival.VerdictDrained, arrival.ReasonNone)
			return true, nil
		}
		return false, nil
	}
	if st.AllClientsComplete() {
		r.finish(t)
		return true, nil
	}
	return false, nil
}

// Run executes the scheduler until every client holds all blocks (or,
// under a fault plan, every client still part of the system does).
//
//lint:novalidate audited forwarder — newRunner calls cfg.Validate
func Run(cfg Config, sched Scheduler) (*Result, error) {
	r, err := newRunner(cfg, sched)
	if err != nil {
		return nil, err
	}
	if r.c.Nodes == 1 {
		return r.res, nil
	}
	return r.loop(1)
}

// loop drives the runner from tick start (inclusive) to completion,
// writing periodic checkpoints when configured. It is shared by Run
// (start=1) and Resume (start=snapshot tick+1).
func (r *runner) loop(start int) (*Result, error) {
	for t := start; t <= r.c.MaxTicks; t++ {
		done, err := r.step(t)
		if err != nil {
			return nil, err
		}
		if done {
			return r.res, nil
		}
		if err := r.maybeCheckpoint(t); err != nil {
			return nil, err
		}
	}
	st, c := r.st, r.c
	if r.oa != nil {
		// Bounded-run truncation: an open run that outlives its budget
		// is reported as Unstable, never as an error — the verdict is
		// the result.
		r.finish(c.MaxTicks)
		r.oa.seal(r.res, st, arrival.VerdictUnstable, arrival.ReasonBudget)
		return r.res, nil
	}
	if st.honest != nil {
		return nil, fmt.Errorf("%w (MaxTicks=%d, honest clients complete: %d/%d)",
			ErrMaxTicks, c.MaxTicks, st.completeHonest, st.honestClients)
	}
	return nil, fmt.Errorf("%w (MaxTicks=%d, clients complete: %d/%d)",
		ErrMaxTicks, c.MaxTicks, st.complete, c.Nodes-1)
}

func validate(tr Transfer, st *State, c Config, caps *capScratch) error {
	from, to, b := int(tr.From), int(tr.To), int(tr.Block)
	switch {
	case from < 0 || from >= st.n:
		return fmt.Errorf("sender %d out of range", from)
	case to < 0 || to >= st.n:
		return fmt.Errorf("receiver %d out of range", to)
	case from == to:
		return fmt.Errorf("node %d transfers to itself", from)
	case b < 0 || b >= st.k:
		return fmt.Errorf("block %d out of range", b)
	}
	if st.alive != nil {
		if !st.alive[from] {
			return fmt.Errorf("dead node %d cannot upload", from)
		}
		if !st.alive[to] {
			return fmt.Errorf("dead node %d cannot download", to)
		}
	}
	if !st.have[from].Has(b) {
		return fmt.Errorf("store-and-forward violation: node %d does not hold block %d", from, b)
	}
	upCap := c.UploadCap
	if from == 0 {
		upCap = c.ServerUploadCap
	}
	if int(caps.addUp(from)) > upCap {
		return fmt.Errorf("node %d exceeds upload cap %d", from, upCap)
	}
	if used := caps.addDown(to); c.DownloadCap != Unlimited && int(used) > c.DownloadCap {
		return fmt.Errorf("node %d exceeds download cap %d", to, c.DownloadCap)
	}
	return nil
}

var _ Scheduler = SchedulerFunc(nil)
