// Package simulate implements the paper's synchronous, tick-based
// dissemination simulator.
//
// Model (Section 2.1 of the paper): node 0 is the server and initially
// holds all k blocks; clients 1..n-1 start empty. Time advances in ticks.
// In each tick every node may upload at most U blocks and download at
// most D blocks (U = 1 in the paper; D >= U, possibly unbounded), and a
// node may only upload blocks it held at the *start* of the tick
// (store-and-forward at block granularity). All transfers within a tick
// land simultaneously at the tick boundary.
//
// An algorithm is a Scheduler: given the tick number and a read-only view
// of the global state, it proposes the tick's transfer set. The engine
// validates every proposal against the bandwidth and store-and-forward
// rules — a scheduler bug is surfaced as an error, never silently
// repaired — applies the transfers, and runs until every client holds the
// whole file.
package simulate

import (
	"errors"
	"fmt"

	"barterdist/internal/bitset"
)

// Unlimited marks a download capacity with no bound.
const Unlimited = 0

// Transfer is one block moving from one node to another within a tick.
type Transfer struct {
	From  int32
	To    int32
	Block int32
}

// Config describes a simulation instance.
type Config struct {
	// Nodes is the total node count n (server + clients). Must be >= 1.
	Nodes int
	// Blocks is the file size k in blocks. Must be >= 1.
	Blocks int
	// UploadCap U: max blocks a node may upload per tick. 0 means the
	// paper's default of 1.
	UploadCap int
	// ServerUploadCap overrides UploadCap for node 0, modeling the
	// paper's "higher server bandwidths" variant (server bandwidth m·U,
	// Section 2.3.4). 0 means same as UploadCap.
	ServerUploadCap int
	// DownloadCap D: max blocks a node may download per tick.
	// Unlimited (0) means no bound. Must be 0 or >= UploadCap.
	DownloadCap int
	// MaxTicks aborts runaway schedulers. 0 selects a generous default
	// proportional to the trivial pipeline bound.
	MaxTicks int
	// RecordTrace keeps every tick's transfer list in the result so that
	// mechanism verifiers can audit the run. Costs memory on big runs.
	RecordTrace bool
}

func (c *Config) normalize() (Config, error) {
	cc := *c
	if cc.Nodes < 1 {
		return cc, fmt.Errorf("simulate: Nodes = %d, need >= 1", cc.Nodes)
	}
	if cc.Blocks < 1 {
		return cc, fmt.Errorf("simulate: Blocks = %d, need >= 1", cc.Blocks)
	}
	if cc.UploadCap == 0 {
		cc.UploadCap = 1
	}
	if cc.UploadCap < 0 {
		return cc, fmt.Errorf("simulate: UploadCap = %d, need >= 0", cc.UploadCap)
	}
	if cc.ServerUploadCap == 0 {
		cc.ServerUploadCap = cc.UploadCap
	}
	if cc.ServerUploadCap < 0 {
		return cc, fmt.Errorf("simulate: ServerUploadCap = %d, need >= 0", cc.ServerUploadCap)
	}
	if cc.DownloadCap != Unlimited && cc.DownloadCap < cc.UploadCap {
		return cc, fmt.Errorf("simulate: DownloadCap %d < UploadCap %d", cc.DownloadCap, cc.UploadCap)
	}
	if cc.MaxTicks == 0 {
		// Pipeline needs k + n - 2; strict-barter worst cases add O(n);
		// leave ample slack for deliberately bad schedulers under test.
		cc.MaxTicks = 20*(cc.Blocks+cc.Nodes) + 1000
	}
	return cc, nil
}

// State is the global block-ownership state exposed read-only to
// schedulers.
type State struct {
	n, k     int
	have     []*bitset.Set
	complete int // clients (not server) holding all k blocks
	tick     int // last completed tick
}

func newState(n, k int) *State {
	s := &State{n: n, k: k, have: make([]*bitset.Set, n)}
	for i := range s.have {
		s.have[i] = bitset.New(k)
	}
	for b := 0; b < k; b++ {
		s.have[0].Add(b)
	}
	if n == 1 {
		s.complete = 0
	}
	return s
}

// N returns the node count (server included).
func (s *State) N() int { return s.n }

// K returns the block count.
func (s *State) K() int { return s.k }

// Tick returns the index of the last completed tick (0 before the first).
func (s *State) Tick() int { return s.tick }

// Has reports whether node v currently holds block b.
func (s *State) Has(v, b int) bool { return s.have[v].Has(b) }

// Blocks returns node v's block set. Callers must treat it as read-only;
// mutating it corrupts the simulation.
func (s *State) Blocks(v int) *bitset.Set { return s.have[v] }

// CountOf returns how many blocks node v holds.
func (s *State) CountOf(v int) int { return s.have[v].Count() }

// ClientsComplete returns the number of clients holding the entire file.
func (s *State) ClientsComplete() int { return s.complete }

// AllClientsComplete reports whether dissemination has finished.
func (s *State) AllClientsComplete() bool { return s.complete == s.n-1 }

// Scheduler proposes each tick's transfers.
type Scheduler interface {
	// Tick appends the transfers for tick t (1-based) to dst and returns
	// the extended slice. It must only schedule blocks the sender holds
	// in the provided state, and must respect the bandwidth caps the
	// engine was configured with; violations abort the run with an error.
	// Returning no transfers is legal (an idle tick).
	Tick(t int, s *State, dst []Transfer) ([]Transfer, error)
}

// SchedulerFunc adapts a function to the Scheduler interface.
type SchedulerFunc func(t int, s *State, dst []Transfer) ([]Transfer, error)

// Tick implements Scheduler.
func (f SchedulerFunc) Tick(t int, s *State, dst []Transfer) ([]Transfer, error) {
	return f(t, s, dst)
}

// Result summarizes a completed run.
type Result struct {
	// CompletionTime is the tick by whose end the last client completed.
	CompletionTime int
	// ClientCompletion[v] is the tick at which node v (client) completed;
	// index 0 (the server) is 0.
	ClientCompletion []int
	// TotalTransfers counts every block movement, including redundant
	// deliveries of blocks the receiver already obtained the same tick.
	TotalTransfers int
	// UsefulTransfers counts transfers that delivered a new block.
	UsefulTransfers int
	// UploadsPerTick[t-1] is the number of transfers scheduled in tick t.
	UploadsPerTick []int
	// Trace holds per-tick transfer lists when Config.RecordTrace is set.
	Trace [][]Transfer
}

// Efficiency returns useful transfers divided by the upload capacity
// consumed if every node uploaded one block every tick until completion —
// the utilization the paper's middlegame tries to drive to 1.
func (r *Result) Efficiency(n int) float64 {
	if r.CompletionTime == 0 || n == 0 {
		return 0
	}
	return float64(r.UsefulTransfers) / float64(n*r.CompletionTime)
}

// ErrMaxTicks is returned when a scheduler fails to complete within the
// configured budget — typically a livelocked or deadlocked protocol.
var ErrMaxTicks = errors.New("simulate: exceeded MaxTicks before completion")

// Run executes the scheduler until every client holds all blocks.
func Run(cfg Config, sched Scheduler) (*Result, error) {
	c, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	st := newState(c.Nodes, c.Blocks)
	res := &Result{ClientCompletion: make([]int, c.Nodes)}
	if c.Nodes == 1 {
		return res, nil // no clients: vacuously complete at t=0
	}

	upUsed := make([]int, c.Nodes)
	downUsed := make([]int, c.Nodes)
	var buf []Transfer

	for t := 1; t <= c.MaxTicks; t++ {
		buf = buf[:0]
		buf, err = sched.Tick(t, st, buf)
		if err != nil {
			return nil, fmt.Errorf("simulate: scheduler failed at tick %d: %w", t, err)
		}

		for i := range upUsed {
			upUsed[i] = 0
			downUsed[i] = 0
		}
		// Validate against state at the start of the tick.
		for _, tr := range buf {
			if err := validate(tr, st, c, upUsed, downUsed); err != nil {
				return nil, fmt.Errorf("simulate: tick %d: %w", t, err)
			}
		}
		// Apply simultaneously.
		for _, tr := range buf {
			if st.have[tr.To].Add(int(tr.Block)) {
				res.UsefulTransfers++
				if int(tr.To) != 0 && st.have[tr.To].Full() {
					st.complete++
					res.ClientCompletion[tr.To] = t
				}
			}
			res.TotalTransfers++
		}
		res.UploadsPerTick = append(res.UploadsPerTick, len(buf))
		if c.RecordTrace {
			tick := make([]Transfer, len(buf))
			copy(tick, buf)
			res.Trace = append(res.Trace, tick)
		}
		st.tick = t
		if st.AllClientsComplete() {
			res.CompletionTime = t
			return res, nil
		}
	}
	return nil, fmt.Errorf("%w (MaxTicks=%d, clients complete: %d/%d)",
		ErrMaxTicks, c.MaxTicks, st.complete, c.Nodes-1)
}

func validate(tr Transfer, st *State, c Config, upUsed, downUsed []int) error {
	from, to, b := int(tr.From), int(tr.To), int(tr.Block)
	switch {
	case from < 0 || from >= st.n:
		return fmt.Errorf("sender %d out of range", from)
	case to < 0 || to >= st.n:
		return fmt.Errorf("receiver %d out of range", to)
	case from == to:
		return fmt.Errorf("node %d transfers to itself", from)
	case b < 0 || b >= st.k:
		return fmt.Errorf("block %d out of range", b)
	}
	if !st.have[from].Has(b) {
		return fmt.Errorf("store-and-forward violation: node %d does not hold block %d", from, b)
	}
	upUsed[from]++
	upCap := c.UploadCap
	if from == 0 {
		upCap = c.ServerUploadCap
	}
	if upUsed[from] > upCap {
		return fmt.Errorf("node %d exceeds upload cap %d", from, upCap)
	}
	downUsed[to]++
	if c.DownloadCap != Unlimited && downUsed[to] > c.DownloadCap {
		return fmt.Errorf("node %d exceeds download cap %d", to, c.DownloadCap)
	}
	return nil
}

var _ Scheduler = SchedulerFunc(nil)
