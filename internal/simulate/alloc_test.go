package simulate_test

import (
	"testing"

	"barterdist/internal/randomized"
	"barterdist/internal/simulate"
)

// TestSteadyStateTickAllocations pins the zero-alloc tick core: after
// warm-up, advancing the synchronous engine one tick — scheduler pass,
// capacity validation, delivery, AND columnar trace recording — must
// allocate (almost) nothing. Everything per-tick lives in reused
// scratch: epoch-stamped capacity counters, the swap-reused transfer
// and drop staging buffers, and trace columns pre-sized by the
// (n-1)·k completion bound. A regression here silently reintroduces
// the per-tick make() churn that made large-n runs OOM-class.
func TestSteadyStateTickAllocations(t *testing.T) {
	const n, k = 512, 256
	cfg := simulate.Config{
		Nodes: n, Blocks: k,
		DownloadCap: 1,
		RecordTrace: true,
	}
	sched, err := randomized.New(randomized.Options{Seed: 11, DownloadCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := simulate.NewTestRunner(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	tick := 1
	step := func() {
		done, err := r.Step(tick)
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		if done {
			t.Fatalf("run completed at tick %d; measurement needs steady state (raise k)", tick)
		}
		tick++
	}
	// Warm-up: first touches allocate lazily (per-receiver in-flight
	// rows, scheduler scratch) and the trace's Reserve hints settle.
	for tick <= 32 {
		step()
	}
	const measured = 64
	avg := testing.AllocsPerRun(measured, step)
	// ≈ 0: the occasional allocation (a rare append past a hint, a map
	// rehash) amortizes out; anything ≥ 1 per tick is per-tick churn.
	if avg >= 1 {
		t.Fatalf("steady-state tick allocates %.2f times on average (want ≈ 0)", avg)
	}
}
