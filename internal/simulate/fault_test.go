package simulate

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"barterdist/internal/bitset"
	"barterdist/internal/fault"
	"barterdist/internal/trace"
)

// aliveChain is a fault-aware naive pipeline: the alive nodes, in id
// order, each forward their successor's first missing block. It is the
// in-package stand-in for a self-healing scheduler (the real ones live
// in internal/randomized and internal/schedule).
func aliveChain() Scheduler {
	return SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		prev := 0
		for v := 1; v < s.N(); v++ {
			if !s.Alive(v) {
				continue
			}
			if b := s.Blocks(prev).FirstDiff(s.Blocks(v)); b >= 0 {
				dst = append(dst, Transfer{From: int32(prev), To: int32(v), Block: int32(b)})
			}
			prev = v
		}
		return dst, nil
	})
}

func mustPlan(t *testing.T, o fault.Options) *fault.Plan {
	t.Helper()
	p, err := fault.NewPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNormalizeReportsAllInvalidFields(t *testing.T) {
	_, err := Run(Config{Nodes: -1, Blocks: 0, UploadCap: -2, ServerUploadCap: -4, DownloadCap: -3}, aliveChain())
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	for _, field := range []string{"Nodes", "Blocks", "UploadCap", "ServerUploadCap", "DownloadCap"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("error %q does not name invalid field %s", err, field)
		}
	}
	// A negative UploadCap must not be zero-defaulted into a silently
	// inconsistent pairing with an explicit ServerUploadCap.
	_, err = Run(Config{Nodes: 4, Blocks: 2, UploadCap: -1, ServerUploadCap: 3}, aliveChain())
	if err == nil || !strings.Contains(err.Error(), "UploadCap = -1") {
		t.Fatalf("negative UploadCap with explicit ServerUploadCap: got %v", err)
	}
}

func TestZeroRatePlanMatchesNilPlan(t *testing.T) {
	cfg := Config{Nodes: 9, Blocks: 6, RecordTrace: true}
	base, err := Run(cfg, naivePipeline())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Fault = mustPlan(t, fault.Options{Seed: 123}) // all rates zero
	withPlan, err := Run(cfg, naivePipeline())
	if err != nil {
		t.Fatal(err)
	}
	if base.CompletionTime != withPlan.CompletionTime {
		t.Fatalf("completion differs: %d without plan, %d with zero-rate plan",
			base.CompletionTime, withPlan.CompletionTime)
	}
	if !reflect.DeepEqual(base.Trace, withPlan.Trace) {
		t.Fatal("traces differ under a zero-rate plan; the fault layer must be pay-for-what-you-use")
	}
	if !reflect.DeepEqual(base.ClientCompletion, withPlan.ClientCompletion) {
		t.Fatal("per-client completion differs under a zero-rate plan")
	}
	if withPlan.LostTransfers != 0 || withPlan.CorruptTransfers != 0 || len(withPlan.FaultLog) != 0 {
		t.Fatal("zero-rate plan reported fault activity")
	}
	if err := RunAudit(cfg, withPlan); err != nil {
		t.Fatalf("audit of zero-rate run: %v", err)
	}
}

func TestPermanentDeparturesExcludedFromCompletion(t *testing.T) {
	cfg := Config{Nodes: 10, Blocks: 8, RecordTrace: true,
		Fault: mustPlan(t, fault.Options{Seed: 4, CrashRate: 0.15, MaxCrashes: 3})}
	res, err := Run(cfg, aliveChain())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultLog) == 0 {
		t.Fatal("expected at least one crash at rate 0.15")
	}
	dead := 0
	for v := 1; v < cfg.Nodes; v++ {
		if !res.FinalAlive[v] {
			dead++
			if res.FinalHave[v].Full() {
				t.Errorf("departed node %d somehow finished", v)
			}
		} else if !res.FinalHave[v].Full() {
			t.Errorf("alive node %d incomplete at completion", v)
		}
	}
	if dead == 0 {
		t.Fatal("no node ended up dead despite crashes and no rejoins")
	}
	if err := RunAudit(cfg, res); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestWipedRejoinRedownloadsEverything(t *testing.T) {
	cfg := Config{Nodes: 8, Blocks: 10, RecordTrace: true,
		Fault: mustPlan(t, fault.Options{
			Seed: 9, CrashRate: 0.1, MaxCrashes: 2,
			RejoinDelay: 5, RejoinLosesBlocks: true,
		})}
	res, err := Run(cfg, aliveChain())
	if err != nil {
		t.Fatal(err)
	}
	sawWipe := false
	for _, ev := range res.FaultLog {
		if ev.Kind == fault.Rejoin && ev.Wiped {
			sawWipe = true
			v := int(ev.Node)
			if res.ClientCompletion[v] <= int(ev.Time) {
				t.Errorf("node %d completed at %d, before its wipe at %v",
					v, res.ClientCompletion[v], ev.Time)
			}
		}
	}
	if !sawWipe {
		t.Skip("seed produced no wiped rejoin; adjust seed") // should not happen with seed 9
	}
	for v := 1; v < cfg.Nodes; v++ {
		if res.FinalAlive != nil && !res.FinalAlive[v] {
			continue
		}
		if !res.FinalHave[v].Full() {
			t.Errorf("alive node %d incomplete", v)
		}
	}
	if err := RunAudit(cfg, res); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestLossIsRetriedAndAccounted(t *testing.T) {
	cfg := Config{Nodes: 6, Blocks: 12, RecordTrace: true,
		Fault: mustPlan(t, fault.Options{Seed: 21, LossRate: 0.2, CorruptRate: 0.1})}
	res, err := Run(cfg, aliveChain())
	if err != nil {
		t.Fatal(err)
	}
	if res.LostTransfers == 0 || res.CorruptTransfers == 0 {
		t.Fatalf("expected both loss channels to fire: lost %d corrupt %d",
			res.LostTransfers, res.CorruptTransfers)
	}
	if res.TotalTransfers != res.UsefulTransfers+res.LostTransfers+res.CorruptTransfers {
		t.Fatalf("accounting mismatch: total %d != useful %d + lost %d + corrupt %d",
			res.TotalTransfers, res.UsefulTransfers, res.LostTransfers, res.CorruptTransfers)
	}
	for v := 1; v < cfg.Nodes; v++ {
		if !res.FinalHave[v].Full() {
			t.Errorf("node %d incomplete despite retries", v)
		}
	}
	if err := RunAudit(cfg, res); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestAdversarialVictimKillsMostUseful(t *testing.T) {
	// In the chain, node 1 always holds the most blocks among clients, so
	// the adversarial policy must pick it first.
	cfg := Config{Nodes: 8, Blocks: 20, RecordTrace: true,
		Fault: mustPlan(t, fault.Options{
			Seed: 2, CrashRate: 0.2, MaxCrashes: 1, Victim: fault.VictimMostUseful,
		})}
	res, err := Run(cfg, aliveChain())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultLog) != 1 {
		t.Fatalf("expected exactly one crash, got %d events", len(res.FaultLog))
	}
	if got := res.FaultLog[0].Node; got != 1 {
		t.Fatalf("adversarial victim = node %d, want the fullest client (1)", got)
	}
	if err := RunAudit(cfg, res); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

// TestTraceReplaysToFinalState is the foundation of RunAudit: a recorded
// fault-free trace, applied transfer by transfer to a fresh state, must
// land exactly on the FinalHave snapshot.
func TestTraceReplaysToFinalState(t *testing.T) {
	cfg := Config{Nodes: 11, Blocks: 7, RecordTrace: true}
	res, err := Run(cfg, naivePipeline())
	if err != nil {
		t.Fatal(err)
	}
	have := make([]*bitset.Set, cfg.Nodes)
	for v := range have {
		have[v] = bitset.New(cfg.Blocks)
	}
	for b := 0; b < cfg.Blocks; b++ {
		have[0].Add(b)
	}
	cur := res.Trace.Cursor()
	for cur.NextTick() {
		for cur.Next() {
			have[cur.Transfer().To].Add(int(cur.Transfer().Block))
		}
	}
	for v := range have {
		if !have[v].Equal(res.FinalHave[v]) {
			t.Fatalf("node %d: replayed state differs from FinalHave", v)
		}
	}
	if err := RunAudit(cfg, res); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

// cheatingScheduler teleports blocks: node 2 "sends" blocks it never
// received. The online engine must reject it outright.
func cheatingScheduler() Scheduler {
	return SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		if t == 1 {
			return append(dst, Transfer{From: 2, To: 1, Block: 0}), nil
		}
		return dst, nil
	})
}

func TestEngineRejectsCheatingSchedulerOnline(t *testing.T) {
	_, err := Run(Config{Nodes: 4, Blocks: 2}, cheatingScheduler())
	if err == nil || !strings.Contains(err.Error(), "does not hold") {
		t.Fatalf("engine accepted a store-and-forward violation: %v", err)
	}
}

// TestAuditCatchesCheatingScheduler replays the same cheat through a
// deliberately permissive engine (a hand-rolled loop with no
// validation, standing in for a buggy or malicious fork) and shows the
// post-hoc audit still catches it from the artifacts alone.
func TestAuditCatchesCheatingScheduler(t *testing.T) {
	cfg := Config{Nodes: 4, Blocks: 2, RecordTrace: true}
	sched := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		// Tick 1: legit server upload. Tick 2: node 2 forges block 1 to
		// node 1 and node 3 without ever holding it; tick 3 finishes.
		switch t {
		case 1:
			return append(dst,
				Transfer{From: 0, To: 1, Block: 0},
			), nil
		case 2:
			return append(dst,
				Transfer{From: 2, To: 1, Block: 1},
				Transfer{From: 2, To: 3, Block: 1},
			), nil
		default:
			return append(dst,
				Transfer{From: 0, To: 2, Block: 0},
				Transfer{From: 1, To: 2, Block: 1},
				Transfer{From: 1, To: 3, Block: 0},
			), nil
		}
	})

	// Permissive replay: apply whatever the scheduler emits.
	have := make([]*bitset.Set, cfg.Nodes)
	for v := range have {
		have[v] = bitset.New(cfg.Blocks)
	}
	for b := 0; b < cfg.Blocks; b++ {
		have[0].Add(b)
	}
	res := &Result{ClientCompletion: make([]int, cfg.Nodes), Trace: trace.New(false)}
	st := &State{n: cfg.Nodes, k: cfg.Blocks, have: have}
	complete := func() int {
		c := 0
		for v := 1; v < cfg.Nodes; v++ {
			if have[v].Full() {
				c++
			}
		}
		return c
	}
	for tick := 1; complete() < cfg.Nodes-1; tick++ {
		trs, err := sched.Tick(tick, st, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range trs {
			if have[tr.To].Add(int(tr.Block)) {
				res.UsefulTransfers++
				if tr.To != 0 && have[tr.To].Full() {
					res.ClientCompletion[tr.To] = tick
				}
			}
			res.TotalTransfers++
		}
		res.Trace.AppendTick(trs, nil, nil)
		res.CompletionTime = tick
	}
	res.FinalHave = make([]*bitset.Set, cfg.Nodes)
	for v := range have {
		res.FinalHave[v] = have[v].Clone()
	}

	err := RunAudit(cfg, res)
	if err == nil {
		t.Fatal("audit passed a trace in which node 2 forged blocks it never held")
	}
	if !errors.Is(err, ErrAudit) {
		t.Fatalf("want ErrAudit, got %v", err)
	}
	if !strings.Contains(err.Error(), "does not hold") && !strings.Contains(err.Error(), "hold") {
		t.Fatalf("audit error should pinpoint the store-and-forward violation, got %v", err)
	}
}

func TestAuditCatchesDoctoredResults(t *testing.T) {
	cfg := Config{Nodes: 7, Blocks: 5, RecordTrace: true}
	pristine, err := Run(cfg, naivePipeline())
	if err != nil {
		t.Fatal(err)
	}
	if err := RunAudit(cfg, pristine); err != nil {
		t.Fatalf("pristine result failed audit: %v", err)
	}

	tamper := []struct {
		name string
		mut  func(r *Result)
	}{
		{"inflated useful count", func(r *Result) { r.UsefulTransfers++ }},
		{"understated total count", func(r *Result) { r.TotalTransfers-- }},
		{"claimed earlier completion", func(r *Result) {
			r.Trace.TruncateTicks(r.Trace.Ticks() - 1)
		}},
		{"swapped block id", func(r *Result) {
			start, _ := r.Trace.TickSpan(1)
			tr := r.Trace.At(start)
			tr.Block = int32(cfg.Blocks - 1)
			r.Trace.Set(start, tr)
		}},
		{"forged final snapshot", func(r *Result) {
			r.FinalHave[2] = bitset.New(cfg.Blocks)
		}},
		{"shifted client completion", func(r *Result) { r.ClientCompletion[3]++ }},
	}
	for _, tc := range tamper {
		fresh, err := Run(cfg, naivePipeline())
		if err != nil {
			t.Fatal(err)
		}
		tc.mut(fresh)
		if err := RunAudit(cfg, fresh); !errors.Is(err, ErrAudit) {
			t.Errorf("%s: audit verdict %v, want ErrAudit", tc.name, err)
		}
	}
}
