package simulate

import (
	"fmt"

	"barterdist/internal/checkpoint"
	"barterdist/internal/fault"
	"barterdist/internal/trace"
)

// CheckpointableScheduler is implemented by schedulers whose internal
// state (RNG streams, ledgers, frequency tables) can be persisted and
// restored. Schedulers without internal state may embed
// StatelessSchedulerState; the engine refuses to checkpoint a run whose
// scheduler implements neither.
type CheckpointableScheduler interface {
	Scheduler
	// SnapshotState appends the scheduler's full mutable state to enc.
	SnapshotState(enc *checkpoint.Encoder) error
	// RestoreState overwrites the scheduler's state from dec, given
	// the already-restored engine state (schedulers may rebuild
	// derived caches from it). It is called exactly once, before the
	// first resumed tick.
	RestoreState(dec *checkpoint.Decoder, st *State) error
}

// StatelessSchedulerState makes a scheduler checkpointable by declaring
// it has no mutable state: embed it in schedulers whose Tick is a pure
// function of (t, *State) — precomputed schedules, closed-form
// broadcasts — and snapshot/restore become no-ops. Embedding it in a
// scheduler that does mutate internal state silently breaks the
// resume-determinism contract; when in doubt, implement
// CheckpointableScheduler by hand.
type StatelessSchedulerState struct{}

// SnapshotState implements CheckpointableScheduler (nothing to save).
func (StatelessSchedulerState) SnapshotState(*checkpoint.Encoder) error { return nil }

// RestoreState implements CheckpointableScheduler (nothing to restore).
func (StatelessSchedulerState) RestoreState(*checkpoint.Decoder, *State) error { return nil }

// SnapshotState makes every SchedulerFunc checkpointable: an adapted
// function is expected to be pure in (t, *State). Closures over mutable
// state must implement CheckpointableScheduler as a named type instead.
func (f SchedulerFunc) SnapshotState(*checkpoint.Encoder) error { return nil }

// RestoreState implements CheckpointableScheduler (nothing to restore).
func (f SchedulerFunc) RestoreState(*checkpoint.Decoder, *State) error { return nil }

// Section names of a synchronous-engine snapshot.
const (
	secMeta      = "sim/meta"
	secState     = "sim/state"
	secResult    = "sim/result"
	secTrace     = "sim/trace"
	secFault     = "sim/fault"
	secAdversary = "sim/adversary"
	secArrival   = "sim/arrival"
	secScheduler = "sim/scheduler"
)

// snapshot captures the runner's full state at the current tick
// boundary (immediately after step(t) returned done=false).
func (r *runner) snapshot() (*checkpoint.Snapshot, error) {
	cs, ok := r.sched.(CheckpointableScheduler)
	if !ok {
		return nil, fmt.Errorf("simulate: scheduler %T does not support checkpointing", r.sched)
	}
	snap := &checkpoint.Snapshot{}

	meta := checkpoint.NewEncoder(64)
	c := r.c
	meta.Int(c.Nodes)
	meta.Int(c.Blocks)
	meta.Int(c.UploadCap)
	meta.Int(c.ServerUploadCap)
	meta.Int(c.DownloadCap)
	meta.Bool(c.RecordTrace)
	meta.Bool(r.sf != nil)
	meta.Bool(r.adv != nil)
	meta.Bool(r.oa != nil)
	snap.Add(secMeta, meta.Bytes())

	st := r.st
	se := checkpoint.NewEncoder(64 + c.Nodes*(c.Blocks/8+16))
	se.Int(st.tick)
	se.Int(st.complete)
	for _, h := range st.have {
		se.Uint64s(h.Words())
	}
	se.Bool(st.alive != nil)
	if st.alive != nil {
		se.Bools(st.alive)
		se.Int(st.aliveClients)
		se.Int(st.pendingRejoin)
	}
	se.Bool(st.honest != nil)
	if st.honest != nil {
		se.Int(st.completeHonest)
		se.Int(st.aliveHonest)
		se.Int(st.pendingRejoinHonest)
	}
	encodeLost(se, st.lost)
	snap.Add(secState, se.Bytes())

	res := r.res
	re := checkpoint.NewEncoder(256)
	re.Ints(res.ClientCompletion)
	re.Int(res.TotalTransfers)
	re.Int(res.UsefulTransfers)
	re.Ints(res.UploadsPerTick)
	re.Int(len(res.FaultLog))
	for _, ev := range res.FaultLog {
		encodeEvent(re, ev)
	}
	re.Int(res.LostTransfers)
	re.Int(res.CorruptTransfers)
	re.Int(res.AdvRefused)
	re.Int(res.AdvStalled)
	re.Int(res.AdvCorrupt)
	re.Int(res.HonestUseful)
	re.Int(res.HonestWasted)
	snap.Add(secResult, re.Bytes())

	if c.RecordTrace {
		te := checkpoint.NewEncoder(64 + 16*res.Trace.Len())
		res.Trace.Snapshot(te)
		snap.Add(secTrace, te.Bytes())
	}
	if r.sf != nil {
		fe := checkpoint.NewEncoder(128)
		r.sf.plan.Snapshot(fe)
		fe.Int(len(r.sf.rejoins))
		for _, ev := range r.sf.rejoins {
			encodeEvent(fe, ev)
		}
		snap.Add(secFault, fe.Bytes())
	}
	if r.adv != nil {
		ae := checkpoint.NewEncoder(64 + 16*c.Nodes)
		r.adv.Snapshot(ae)
		snap.Add(secAdversary, ae.Bytes())
	}
	if r.oa != nil {
		oe := checkpoint.NewEncoder(256 + 12*c.Nodes)
		r.oa.snapshot(oe)
		snap.Add(secArrival, oe.Bytes())
	}

	sche := checkpoint.NewEncoder(1024)
	if err := cs.SnapshotState(sche); err != nil {
		return nil, fmt.Errorf("simulate: scheduler snapshot: %w", err)
	}
	snap.Add(secScheduler, sche.Bytes())
	return snap, nil
}

// restore overwrites a freshly constructed runner (newRunner output,
// plans acquired, tick 0) with the snapshot's state. On success the
// runner is positioned exactly as it was when the snapshot was taken:
// the next step is st.tick+1.
func (r *runner) restore(snap *checkpoint.Snapshot) error {
	cs, ok := r.sched.(CheckpointableScheduler)
	if !ok {
		return fmt.Errorf("simulate: scheduler %T does not support checkpointing", r.sched)
	}

	mp, err := snap.Section(secMeta)
	if err != nil {
		return err
	}
	md := checkpoint.NewDecoder(mp)
	c := r.c
	nodes, blocks := md.Int(), md.Int()
	upCap, srvCap, downCap := md.Int(), md.Int(), md.Int()
	recTrace, hasFault, hasAdv := md.Bool(), md.Bool(), md.Bool()
	hasOpen := md.Bool()
	if err := md.Finish(); err != nil {
		return err
	}
	if nodes != c.Nodes || blocks != c.Blocks || upCap != c.UploadCap ||
		srvCap != c.ServerUploadCap || downCap != c.DownloadCap ||
		recTrace != c.RecordTrace || hasFault != (r.sf != nil) || hasAdv != (r.adv != nil) ||
		hasOpen != (r.oa != nil) {
		return fmt.Errorf("simulate: snapshot taken under a different config (snapshot n=%d k=%d U=%d/%d D=%d trace=%v fault=%v adv=%v open=%v)",
			nodes, blocks, upCap, srvCap, downCap, recTrace, hasFault, hasAdv, hasOpen)
	}

	sp, err := snap.Section(secState)
	if err != nil {
		return err
	}
	sd := checkpoint.NewDecoder(sp)
	st := r.st
	tick := sd.Int()
	complete := sd.Int()
	if sd.Err() == nil && (tick < 1 || complete < 0 || complete > c.Nodes-1) {
		return checkpoint.Corruptf("simulate: tick %d / complete %d out of range", tick, complete)
	}
	for v := range st.have {
		words := sd.Uint64s()
		if err := sd.Err(); err != nil {
			return err
		}
		if err := st.have[v].SetWords(words); err != nil {
			return checkpoint.Corruptf("simulate: node %d blocks: %v", v, err)
		}
	}
	if sd.Bool() != (st.alive != nil) {
		if sd.Err() == nil {
			return checkpoint.Corruptf("simulate: fault-state presence mismatch")
		}
	}
	if st.alive != nil {
		alive := sd.Bools()
		st.aliveClients = sd.Int()
		st.pendingRejoin = sd.Int()
		if sd.Err() == nil {
			if len(alive) != c.Nodes {
				return checkpoint.Corruptf("simulate: alive mask sized %d for %d nodes", len(alive), c.Nodes)
			}
			copy(st.alive, alive)
		}
	}
	if sd.Bool() != (st.honest != nil) {
		if sd.Err() == nil {
			return checkpoint.Corruptf("simulate: adversary-state presence mismatch")
		}
	}
	if st.honest != nil {
		st.completeHonest = sd.Int()
		st.aliveHonest = sd.Int()
		st.pendingRejoinHonest = sd.Int()
	}
	lost, err := decodeLost(sd, st.n, st.k)
	if err != nil {
		return err
	}
	st.lost = lost
	if err := sd.Finish(); err != nil {
		return err
	}
	st.tick = tick
	st.complete = complete

	rp, err := snap.Section(secResult)
	if err != nil {
		return err
	}
	rd := checkpoint.NewDecoder(rp)
	res := r.res
	cc := rd.Ints()
	res.TotalTransfers = rd.Int()
	res.UsefulTransfers = rd.Int()
	upt := rd.Ints()
	nEvents := rd.Int()
	if rd.Err() == nil {
		if len(cc) != c.Nodes {
			return checkpoint.Corruptf("simulate: completion slice sized %d for %d nodes", len(cc), c.Nodes)
		}
		if len(upt) != tick {
			return checkpoint.Corruptf("simulate: %d per-tick upload counts after %d ticks", len(upt), tick)
		}
		if nEvents < 0 {
			return checkpoint.Corruptf("simulate: negative fault-log length")
		}
	}
	copy(res.ClientCompletion, cc)
	res.UploadsPerTick = append(res.UploadsPerTick[:0], upt...)
	res.FaultLog = nil
	for i := 0; i < nEvents && rd.Err() == nil; i++ {
		ev, err := decodeEvent(rd, st.n)
		if err != nil {
			return err
		}
		res.FaultLog = append(res.FaultLog, ev)
	}
	res.LostTransfers = rd.Int()
	res.CorruptTransfers = rd.Int()
	res.AdvRefused = rd.Int()
	res.AdvStalled = rd.Int()
	res.AdvCorrupt = rd.Int()
	res.HonestUseful = rd.Int()
	res.HonestWasted = rd.Int()
	if err := rd.Finish(); err != nil {
		return err
	}

	if c.RecordTrace {
		tp, err := snap.Section(secTrace)
		if err != nil {
			return err
		}
		td := checkpoint.NewDecoder(tp)
		log, err := trace.Restore(td)
		if err != nil {
			return err
		}
		if err := td.Finish(); err != nil {
			return err
		}
		if log.Kinded() != res.Trace.Kinded() {
			return checkpoint.Corruptf("simulate: trace kindedness mismatch")
		}
		if log.Ticks() != tick {
			return checkpoint.Corruptf("simulate: trace holds %d ticks, state at tick %d", log.Ticks(), tick)
		}
		res.Trace = log
	}

	if r.sf != nil {
		fp, err := snap.Section(secFault)
		if err != nil {
			return err
		}
		fd := checkpoint.NewDecoder(fp)
		if err := r.sf.plan.RestoreState(fd); err != nil {
			return err
		}
		nRejoins := fd.Int()
		if fd.Err() == nil && nRejoins < 0 {
			return checkpoint.Corruptf("simulate: negative rejoin count")
		}
		r.sf.rejoins = nil
		prev := 0.0
		for i := 0; i < nRejoins && fd.Err() == nil; i++ {
			ev, err := decodeEvent(fd, st.n)
			if err != nil {
				return err
			}
			if ev.Kind != fault.Rejoin || ev.Time < prev {
				return checkpoint.Corruptf("simulate: rejoin queue entry %d invalid", i)
			}
			prev = ev.Time
			r.sf.rejoins = append(r.sf.rejoins, ev)
		}
		if err := fd.Finish(); err != nil {
			return err
		}
	}
	if r.adv != nil {
		ap, err := snap.Section(secAdversary)
		if err != nil {
			return err
		}
		ad := checkpoint.NewDecoder(ap)
		if err := r.adv.RestoreState(ad); err != nil {
			return err
		}
		if err := ad.Finish(); err != nil {
			return err
		}
	}
	if r.oa != nil {
		op, err := snap.Section(secArrival)
		if err != nil {
			return err
		}
		od := checkpoint.NewDecoder(op)
		if err := r.oa.restore(od, st, tick); err != nil {
			return err
		}
		if err := od.Finish(); err != nil {
			return err
		}
	}

	shp, err := snap.Section(secScheduler)
	if err != nil {
		return err
	}
	shd := checkpoint.NewDecoder(shp)
	if err := cs.RestoreState(shd, st); err != nil {
		return fmt.Errorf("simulate: scheduler restore: %w", err)
	}
	if err := shd.Finish(); err != nil {
		return err
	}
	return nil
}

func encodeLost(e *checkpoint.Encoder, lost []LostTransfer) {
	e.Int(len(lost))
	for _, lt := range lost {
		e.U32(uint32(lt.From))
		e.U32(uint32(lt.To))
		e.U32(uint32(lt.Block))
		e.Bool(lt.Corrupt)
		e.Bool(lt.Adversary)
	}
}

func decodeLost(d *checkpoint.Decoder, n, k int) ([]LostTransfer, error) {
	cnt := d.Int()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if cnt < 0 || cnt > d.Remaining() {
		return nil, checkpoint.Corruptf("simulate: lost-transfer count %d invalid", cnt)
	}
	var lost []LostTransfer
	for i := 0; i < cnt; i++ {
		from, to, block := int32(d.U32()), int32(d.U32()), int32(d.U32())
		corrupt, adv := d.Bool(), d.Bool()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if int(from) >= n || int(to) >= n || from < 0 || to < 0 || block < 0 || int(block) >= k {
			return nil, checkpoint.Corruptf("simulate: lost transfer %d out of range", i)
		}
		lost = append(lost, LostTransfer{
			Transfer:  Transfer{From: from, To: to, Block: block},
			Corrupt:   corrupt,
			Adversary: adv,
		})
	}
	return lost, nil
}

func encodeEvent(e *checkpoint.Encoder, ev fault.Event) {
	e.F64(ev.Time)
	e.U32(uint32(ev.Node))
	e.U8(uint8(ev.Kind))
	e.Bool(ev.Wiped)
}

func decodeEvent(d *checkpoint.Decoder, n int) (fault.Event, error) {
	ev := fault.Event{
		Time: d.F64(),
		Node: int32(d.U32()),
		Kind: fault.Kind(d.U8()),
	}
	ev.Wiped = d.Bool()
	if err := d.Err(); err != nil {
		return fault.Event{}, err
	}
	if ev.Node < 1 || int(ev.Node) >= n {
		return fault.Event{}, checkpoint.Corruptf("simulate: fault event node %d out of range", ev.Node)
	}
	switch ev.Kind {
	case fault.Crash, fault.Rejoin, fault.Arrive, fault.Depart:
	default:
		return fault.Event{}, checkpoint.Corruptf("simulate: fault event kind %d invalid", ev.Kind)
	}
	return ev, nil
}

// snapshot appends the open-system bookkeeping: the arrival plan and
// watchdog positions, the departure queue, and every per-peer array the
// verdict and sojourn statistics are computed from.
func (oa *simArrivals) snapshot(e *checkpoint.Encoder) {
	oa.plan.Snapshot(e)
	oa.wd.Snapshot(e)
	e.U32(uint32(oa.nextID))
	e.Int(len(oa.departs))
	for _, ev := range oa.departs {
		encodeEvent(e, ev)
	}
	e.Int32s(oa.arrivedAt)
	e.Int32s(oa.exitAfter)
	e.Bools(oa.departScheduled)
	e.Int(oa.departed)
	e.Int(oa.earlyExits)
	e.Int(oa.peak)
	e.U32(uint32(oa.oldest))
	e.Bool(oa.occupancy != nil)
	if oa.occupancy != nil {
		e.Int32s(oa.occupancy)
	}
}

// restore rewinds the open-system bookkeeping from a snapshot taken at
// the end of tick. The watchdog's windows, the departure queue, and the
// occupancy trajectory must all be internally consistent or the
// snapshot is rejected as corrupt.
func (oa *simArrivals) restore(d *checkpoint.Decoder, st *State, tick int) error {
	if err := oa.plan.RestoreState(d); err != nil {
		return err
	}
	if err := oa.wd.RestoreState(d); err != nil {
		return err
	}
	nextID := int32(d.U32())
	if d.Err() == nil && (nextID < 1 || nextID > int32(st.n)) {
		return checkpoint.Corruptf("simulate: arrival nextID %d out of range", nextID)
	}
	nDeparts := d.Int()
	if d.Err() == nil && (nDeparts < 0 || nDeparts > st.n) {
		return checkpoint.Corruptf("simulate: departure queue length %d invalid", nDeparts)
	}
	oa.departs = nil
	prev := 0.0
	for i := 0; i < nDeparts && d.Err() == nil; i++ {
		ev, err := decodeEvent(d, st.n)
		if err != nil {
			return err
		}
		if ev.Kind != fault.Depart || ev.Time < prev {
			return checkpoint.Corruptf("simulate: departure queue entry %d invalid", i)
		}
		prev = ev.Time
		oa.departs = append(oa.departs, ev)
	}
	arrivedAt := d.Int32s()
	exitAfter := d.Int32s()
	departScheduled := d.Bools()
	departed, earlyExits, peak := d.Int(), d.Int(), d.Int()
	oldest := int32(d.U32())
	hasOcc := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if len(arrivedAt) != st.n || len(exitAfter) != st.n || len(departScheduled) != st.n {
		return checkpoint.Corruptf("simulate: arrival arrays sized %d/%d/%d for %d nodes",
			len(arrivedAt), len(exitAfter), len(departScheduled), st.n)
	}
	if departed < 0 || earlyExits < 0 || earlyExits > departed || peak < 0 {
		return checkpoint.Corruptf("simulate: arrival counters %d/%d/%d invalid", departed, earlyExits, peak)
	}
	if oldest < 1 || oldest > nextID {
		return checkpoint.Corruptf("simulate: oldest pointer %d outside [1, %d]", oldest, nextID)
	}
	if hasOcc != (oa.occupancy != nil) {
		return checkpoint.Corruptf("simulate: occupancy trajectory presence mismatch")
	}
	if hasOcc {
		occ := d.Int32s()
		if err := d.Err(); err != nil {
			return err
		}
		if len(occ) != tick {
			return checkpoint.Corruptf("simulate: occupancy trajectory holds %d ticks, state at tick %d", len(occ), tick)
		}
		oa.occupancy = append(oa.occupancy[:0], occ...)
	}
	oa.nextID = nextID
	copy(oa.arrivedAt, arrivedAt)
	copy(oa.exitAfter, exitAfter)
	copy(oa.departScheduled, departScheduled)
	oa.departed, oa.earlyExits, oa.peak = departed, earlyExits, peak
	oa.oldest = oldest
	return nil
}

// maybeCheckpoint writes a snapshot if the policy asks for one at the
// end of tick t. A write failure aborts the run: the user asked for
// durability, so failing to provide it must not pass silently.
func (r *runner) maybeCheckpoint(t int) error {
	ck := r.c.Checkpoint
	if !ck.Enabled() || t%ck.Every != 0 {
		return nil
	}
	snap, err := r.snapshot()
	if err != nil {
		return err
	}
	return snap.WriteFile(ck.Path)
}

// Resume reconstructs a run from a snapshot and continues it to
// completion. cfg and sched must be built exactly as for the original
// Run call (fresh single-use fault/adversary plans with the same
// options, same scheduler construction); the snapshot then rewinds all
// mutable state to the captured tick boundary. By the determinism
// contract the resumed run's result — including the full trace — is
// byte-identical to the uninterrupted run's.
//
//lint:novalidate audited forwarder — newRunner calls cfg.Validate
func Resume(cfg Config, sched Scheduler, snap *checkpoint.Snapshot) (*Result, error) {
	r, err := newRunner(cfg, sched)
	if err != nil {
		return nil, err
	}
	if r.c.Nodes == 1 {
		return nil, fmt.Errorf("simulate: nothing to resume for a single-node run")
	}
	if err := r.restore(snap); err != nil {
		return nil, err
	}
	return r.loop(r.st.tick + 1)
}
