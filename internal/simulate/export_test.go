package simulate

// Test-only exports: the allocation regression suite (alloc_test.go,
// package simulate_test) needs to drive the engine one tick at a time
// with a real scheduler from internal/randomized, which an in-package
// test cannot import (cycle). The alias keeps runner unexported for
// production callers while letting the external test package step it.

// TestRunner aliases the unexported tick runner for external tests.
type TestRunner = runner

// NewTestRunner builds a runner exactly as Run would.
func NewTestRunner(cfg Config, sched Scheduler) (*TestRunner, error) {
	return newRunner(cfg, sched)
}

// Step advances one tick; tick numbers must be 1, 2, 3, … in order.
func (r *runner) Step(t int) (bool, error) { return r.step(t) }
