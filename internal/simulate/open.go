package simulate

import (
	"sort"

	"barterdist/internal/arrival"
	"barterdist/internal/fault"
)

// simArrivals carries the engine-side open-system bookkeeping for one
// run: the arrival plan position, the next unassigned node id, pending
// departures, the stability watchdog, and the sojourn/occupancy
// instrumentation that becomes Result.Open.
//
// Open-system model: Config.Nodes is the *capacity* — an upper bound
// on cumulative arrivals, not a population present at tick 0. Node 0
// is the persistent server; clients enter with fresh ids 1, 2, … in
// arrival order (ids are never reused), download, and leave according
// to the seed policy or their selfish early-exit draw. The liveness
// mask, FaultEvents channel, and FaultLog are shared with the fault
// layer: an arrival is exposed to schedulers exactly like a wiped
// rejoin of a never-before-seen node, a departure exactly like a
// permanent crash, so every churn-aware scheduler works unmodified.
type simArrivals struct {
	plan *arrival.Plan
	wd   *arrival.Watchdog

	nextID  int32         // next unassigned node id (1-based; n = pool exhausted)
	departs []fault.Event // pending departures, sorted by Time ascending

	arrivedAt       []int32 // tick at which node v entered (0 = never)
	exitAfter       []int32 // selfish exit threshold in blocks (0 = cooperative)
	departScheduled []bool

	departed   int
	earlyExits int
	peak       int
	oldest     int32   // smallest present incomplete id; advances monotonically
	occupancy  []int32 // per-tick trajectory (RecordTrace only)
}

func newSimArrivals(plan *arrival.Plan, c Config) *simArrivals {
	opts := plan.Options().WithWatchdogDefaults(c.Blocks)
	oa := &simArrivals{
		plan:            plan,
		wd:              arrival.NewWatchdog(opts),
		nextID:          1,
		oldest:          1,
		arrivedAt:       make([]int32, c.Nodes),
		exitAfter:       make([]int32, c.Nodes),
		departScheduled: make([]bool, c.Nodes),
	}
	if c.RecordTrace {
		oa.occupancy = make([]int32, 0, 1024)
	}
	return oa
}

// beginTick applies every departure and arrival scheduled for the
// start of tick t and exposes them through the State's event channel.
// Departures drain first so that the event order within a tick is
// deterministic and a freshly admitted peer can never be torn down by
// a stale departure in the same tick.
func (oa *simArrivals) beginTick(t int, st *State, res *Result) {
	st.events = st.events[:0]
	for len(oa.departs) > 0 && oa.departs[0].Time <= float64(t) {
		ev := oa.departs[0]
		oa.departs = oa.departs[1:]
		ev.Time = float64(t)
		oa.applyDepart(ev, st, res)
	}
	for oa.nextID < int32(st.n) && oa.plan.NextArrival() <= float64(t) {
		oa.plan.TakeArrival()
		oa.applyArrive(t, st, res)
	}
}

func (oa *simArrivals) applyArrive(t int, st *State, res *Result) {
	v := oa.nextID
	oa.nextID++
	st.alive[v] = true
	st.aliveClients++
	oa.arrivedAt[v] = int32(t)
	oa.exitAfter[v] = int32(oa.plan.ExitThreshold(st.k))
	ev := fault.Event{Time: float64(t), Node: v, Kind: fault.Arrive}
	st.events = append(st.events, ev)
	res.FaultLog = append(res.FaultLog, ev)
}

func (oa *simArrivals) applyDepart(ev fault.Event, st *State, res *Result) {
	v := int(ev.Node)
	st.alive[v] = false
	st.aliveClients--
	if st.have[v].Full() {
		st.complete--
	} else {
		oa.earlyExits++
	}
	oa.departed++
	st.events = append(st.events, ev)
	res.FaultLog = append(res.FaultLog, ev)
}

// scheduleDepart queues node v's departure for the start of tick at.
// Appends arrive in non-decreasing current-tick order but a completion
// linger can leapfrog an early exit, so the queue is re-sorted like the
// fault layer's rejoin queue.
func (oa *simArrivals) scheduleDepart(v, at int) {
	if oa.departScheduled[v] {
		return
	}
	oa.departScheduled[v] = true
	oa.departs = append(oa.departs, fault.Event{Time: float64(at), Node: int32(v), Kind: fault.Depart})
	sort.SliceStable(oa.departs, func(i, j int) bool {
		return oa.departs[i].Time < oa.departs[j].Time
	})
}

// noteDelivery runs after node v usefully received a block in tick t:
// a selfish peer that just reached its exit threshold departs at the
// start of the next tick.
func (oa *simArrivals) noteDelivery(v, t int, st *State) {
	if oa.exitAfter[v] > 0 && !st.have[v].Full() && int32(st.have[v].Count()) >= oa.exitAfter[v] {
		oa.scheduleDepart(v, t+1)
	}
}

// noteComplete runs when node v finished the file in tick t and applies
// the seed policy. Under SeedDepart the peer seeds for Linger further
// ticks and then leaves; under SeedStay it stays for the whole run.
func (oa *simArrivals) noteComplete(v, t int) {
	opts := oa.plan.Options()
	if opts.SeedPolicy == arrival.SeedDepart {
		oa.scheduleDepart(v, t+1+int(opts.Linger))
	}
}

// endTick samples the robustness instrumentation at the end of tick t
// and returns a non-None reason the moment the watchdog trips.
func (oa *simArrivals) endTick(t int, st *State) arrival.Reason {
	occ := st.aliveClients - st.complete
	if occ > oa.peak {
		oa.peak = occ
	}
	if oa.occupancy != nil {
		oa.occupancy = append(oa.occupancy, int32(occ))
	}
	// The oldest present incomplete peer has the smallest id: ids are
	// assigned in arrival order, departures are permanent, and block
	// sets never shrink in open mode, so the pointer only advances.
	for oa.oldest < oa.nextID && (!st.alive[oa.oldest] || st.have[oa.oldest].Full()) {
		oa.oldest++
	}
	age := 0.0
	if oa.oldest < oa.nextID {
		age = float64(t) - float64(oa.arrivedAt[oa.oldest])
	}
	return oa.wd.Observe(float64(t), occ, age)
}

// drained reports the ergodic end state: the arrival pool is exhausted
// and no present peer is still downloading (lingering seeds may remain).
func (oa *simArrivals) drained(st *State) bool {
	return oa.nextID == int32(st.n) && st.complete == st.aliveClients
}

// seal stamps the verdict and aggregates the open-run instrumentation
// into res.Open.
func (oa *simArrivals) seal(res *Result, st *State, v arrival.Verdict, reason arrival.Reason) {
	o := &arrival.OpenResult{
		Verdict:        v,
		Reason:         reason,
		Arrived:        int(oa.nextID) - 1,
		Departed:       oa.departed,
		EarlyExits:     oa.earlyExits,
		PeakOccupancy:  oa.peak,
		FinalOccupancy: st.aliveClients - st.complete,
		Occupancy:      oa.occupancy,
	}
	var sum float64
	for vv := 1; vv < int(oa.nextID); vv++ {
		ct := res.ClientCompletion[vv]
		if ct == 0 {
			continue
		}
		o.Completed++
		s := float64(ct) - float64(oa.arrivedAt[vv])
		sum += s
		if s > o.SojournMax {
			o.SojournMax = s
		}
	}
	if o.Completed > 0 {
		o.SojournMean = sum / float64(o.Completed)
	}
	if oa.occupancy != nil {
		o.ArrivalTime = make([]float64, st.n)
		for vv := 1; vv < int(oa.nextID); vv++ {
			o.ArrivalTime[vv] = float64(oa.arrivedAt[vv])
		}
	}
	res.Open = o
}
