package simulate

import (
	"errors"
	"fmt"

	"barterdist/internal/adversary"
	"barterdist/internal/fault"
)

// ErrAudit wraps every RunAudit failure so callers can distinguish
// "the recorded run broke an invariant" from configuration errors.
var ErrAudit = errors.New("simulate: audit failed")

func auditErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrAudit, fmt.Sprintf(format, args...))
}

// RunAudit replays a recorded run from scratch and verifies that every
// engine invariant held and that the reported result is exactly what
// the trace produces. It is the post-hoc counterpart of the engine's
// online validation: given only the artifacts a run leaves behind
// (Config, Trace, FaultLog, LostTrace, FinalHave), it re-derives the
// whole execution and checks
//
//   - upload/download capacity: no node exceeds its per-tick caps;
//   - store-and-forward: every sender held the block at the start of
//     the tick it sent it;
//   - liveness: no transfer touches a dead node, no node crashes twice
//     or rejoins while alive, and the server never crashes;
//   - accounting: useful-transfer and loss counts, per-client
//     completion ticks, the completion time, and the final
//     block-ownership state all match the recorded Result.
//
// A Result produced by Run with RecordTrace always passes; a doctored
// trace — or one produced by a cheating scheduler through a permissive
// engine — fails with a pinpointed ErrAudit. cfg.Fault and
// cfg.Adversary are ignored: the replay takes its adversity from
// res.FaultLog and res.Strategies/res.LostKindTrace, so auditing never
// consumes a (single-use) plan. For adversarial runs the drop causes
// are re-counted per kind and the honest-only completion criterion and
// honest stall accounting are re-derived from the trace.
func RunAudit(cfg Config, res *Result) error {
	cfg.Fault = nil
	cfg.Adversary = nil
	if err := cfg.Validate(); err != nil {
		return err
	}
	c := cfg.withDefaults()
	if res == nil {
		return auditErr("nil result")
	}
	if c.Nodes == 1 {
		return nil // vacuous run, nothing recorded
	}
	if res.FinalHave == nil {
		return auditErr("result has no FinalHave snapshot; run with RecordTrace")
	}
	if len(res.FinalHave) != c.Nodes {
		return auditErr("FinalHave has %d entries for %d nodes", len(res.FinalHave), c.Nodes)
	}
	if res.CompletionTime != len(res.Trace) {
		return auditErr("CompletionTime %d does not match trace length %d",
			res.CompletionTime, len(res.Trace))
	}
	if len(res.LostTrace) > len(res.Trace) {
		return auditErr("LostTrace has %d ticks but Trace has %d", len(res.LostTrace), len(res.Trace))
	}

	st := newState(c.Nodes, c.Blocks)
	faulty := len(res.FaultLog) > 0 || res.FinalAlive != nil
	if faulty {
		st.alive = make([]bool, c.Nodes)
		for i := range st.alive {
			st.alive[i] = true
		}
		st.aliveClients = c.Nodes - 1
	}
	adversarial := res.Strategies != nil
	if adversarial {
		if len(res.Strategies) != c.Nodes {
			return auditErr("Strategies has %d entries for %d nodes", len(res.Strategies), c.Nodes)
		}
		if res.Strategies[0] != adversary.Honest {
			return auditErr("node 0 (the server) is recorded as %v; it must stay honest", res.Strategies[0])
		}
		st.honest = make([]bool, c.Nodes)
		for v, sg := range res.Strategies {
			st.honest[v] = sg == adversary.Honest
			if v > 0 && st.honest[v] {
				st.honestClients++
			}
		}
		st.aliveHonest = st.honestClients
		if len(res.LostKindTrace) != len(res.LostTrace) {
			return auditErr("LostKindTrace has %d ticks but LostTrace has %d",
				len(res.LostKindTrace), len(res.LostTrace))
		}
	}

	completion := make([]int, c.Nodes)
	useful, total, lost, corrupt := 0, 0, 0, 0
	honestUseful, honestWasted := 0, 0
	kindCount := make([]int, 5) // indexed by LostKind*
	upUsed := make([]int, c.Nodes)
	downUsed := make([]int, c.Nodes)
	logCursor := 0

	applyEvents := func(t int) error {
		for logCursor < len(res.FaultLog) && res.FaultLog[logCursor].Time <= float64(t) {
			ev := res.FaultLog[logCursor]
			logCursor++
			v := int(ev.Node)
			if v <= 0 || v >= c.Nodes {
				return auditErr("fault log: event %v targets invalid node %d", ev.Kind, v)
			}
			if st.alive == nil {
				return auditErr("fault log present but result reports a fault-free run")
			}
			switch ev.Kind {
			case fault.Crash:
				if !st.alive[v] {
					return auditErr("tick %v: node %d crashes while already dead", ev.Time, v)
				}
				st.alive[v] = false
				st.aliveClients--
				if st.have[v].Full() {
					st.complete--
				}
				if st.honest != nil && st.honest[v] {
					st.aliveHonest--
					if st.have[v].Full() {
						st.completeHonest--
					}
				}
			case fault.Rejoin:
				if st.alive[v] {
					return auditErr("tick %v: node %d rejoins while alive", ev.Time, v)
				}
				st.alive[v] = true
				st.aliveClients++
				if st.honest != nil && st.honest[v] {
					st.aliveHonest++
				}
				if ev.Wiped {
					st.have[v].Clear()
					completion[v] = 0
				} else if st.have[v].Full() {
					st.complete++
					if st.honest != nil && st.honest[v] {
						st.completeHonest++
					}
				}
			default:
				return auditErr("fault log: unknown event kind %d", uint8(ev.Kind))
			}
		}
		return nil
	}

	for t := 1; t <= len(res.Trace); t++ {
		if err := applyEvents(t); err != nil {
			return err
		}
		tick := res.Trace[t-1]
		for i := range upUsed {
			upUsed[i] = 0
			downUsed[i] = 0
		}
		for _, tr := range tick {
			if err := validate(tr, st, c, upUsed, downUsed); err != nil {
				return auditErr("tick %d: %v", t, err)
			}
		}
		var drops []int
		var kinds []uint8
		if t-1 < len(res.LostTrace) {
			drops = res.LostTrace[t-1]
			if adversarial {
				kinds = res.LostKindTrace[t-1]
				if len(kinds) != len(drops) {
					return auditErr("tick %d: %d drop kinds for %d drops", t, len(kinds), len(drops))
				}
			}
		}
		di := 0
		for i, tr := range tick {
			if di < len(drops) && drops[di] == i {
				// Drop indices are recorded strictly ascending, so a
				// simple cursor consumes them; any malformed index fails
				// the exhaustion check after the loop.
				if adversarial {
					k := kinds[di]
					if int(k) >= len(kindCount) {
						return auditErr("tick %d: unknown drop kind %d", t, k)
					}
					kindCount[k]++
					if k != LostKindFault && k != LostKindFaultCorrupt && st.honest[tr.To] {
						honestWasted++
					}
				}
				di++
				lost++ // corrupt/lost split is re-checked in aggregate below
				total++
				continue
			}
			if st.have[tr.To].Add(int(tr.Block)) {
				useful++
				if adversarial && st.honest[tr.To] {
					honestUseful++
				}
				if int(tr.To) != 0 && st.have[tr.To].Full() {
					st.complete++
					completion[tr.To] = t
					if st.honest != nil && st.honest[tr.To] {
						st.completeHonest++
					}
				}
			}
			total++
		}
		if di < len(drops) {
			return auditErr("tick %d: LostTrace index %d out of range", t, drops[di])
		}
		st.tick = t
	}
	// Events that fired after the last scheduled tick (a crash that
	// finished the run by removing the last incomplete client).
	if err := applyEvents(len(res.Trace) + 1); err != nil {
		return err
	}
	if logCursor != len(res.FaultLog) {
		return auditErr("fault log has %d events beyond the recorded run", len(res.FaultLog)-logCursor)
	}

	// The run must actually have finished under the engine's criterion.
	if !st.AllClientsComplete() {
		if adversarial {
			return auditErr("replayed trace does not reach honest completion (%d/%d honest clients complete)",
				st.completeHonest, st.honestClients)
		}
		return auditErr("replayed trace does not reach completion (%d/%d alive clients complete, %d rejoins pending)",
			st.complete, st.AliveClients(), st.pendingRejoin)
	}
	if useful != res.UsefulTransfers {
		return auditErr("replay counts %d useful transfers, result reports %d", useful, res.UsefulTransfers)
	}
	if total != res.TotalTransfers {
		return auditErr("replay counts %d total transfers, result reports %d", total, res.TotalTransfers)
	}
	corrupt = res.CorruptTransfers
	if adversarial {
		if kindCount[LostKindFault] != res.LostTransfers || kindCount[LostKindFaultCorrupt] != corrupt {
			return auditErr("replay counts %d lost + %d corrupt fault drops, result reports %d + %d",
				kindCount[LostKindFault], kindCount[LostKindFaultCorrupt], res.LostTransfers, corrupt)
		}
		if kindCount[LostKindRefused] != res.AdvRefused ||
			kindCount[LostKindStalled] != res.AdvStalled ||
			kindCount[LostKindGarbage] != res.AdvCorrupt {
			return auditErr("replay counts %d refused / %d stalled / %d garbage adversary drops, result reports %d / %d / %d",
				kindCount[LostKindRefused], kindCount[LostKindStalled], kindCount[LostKindGarbage],
				res.AdvRefused, res.AdvStalled, res.AdvCorrupt)
		}
		if honestUseful != res.HonestUseful || honestWasted != res.HonestWasted {
			return auditErr("replay counts %d honest-useful / %d honest-wasted, result reports %d / %d",
				honestUseful, honestWasted, res.HonestUseful, res.HonestWasted)
		}
	} else if lost != res.LostTransfers+corrupt {
		return auditErr("replay counts %d dropped transfers, result reports %d lost + %d corrupt",
			lost, res.LostTransfers, res.CorruptTransfers)
	}
	for v := 0; v < c.Nodes; v++ {
		if !st.have[v].Equal(res.FinalHave[v]) {
			return auditErr("node %d final block set differs from recorded snapshot", v)
		}
		if completion[v] != res.ClientCompletion[v] {
			return auditErr("node %d completion tick: replay %d, result %d",
				v, completion[v], res.ClientCompletion[v])
		}
	}
	if res.FinalAlive != nil {
		if st.alive == nil {
			return auditErr("result records a liveness mask but no fault log")
		}
		for v, a := range res.FinalAlive {
			if st.alive[v] != a {
				return auditErr("node %d final liveness: replay %v, result %v", v, st.alive[v], a)
			}
		}
	}
	return nil
}
