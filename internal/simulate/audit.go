package simulate

import (
	"errors"
	"fmt"
	"math"

	"barterdist/internal/adversary"
	"barterdist/internal/arrival"
	"barterdist/internal/bitset"
	"barterdist/internal/fault"
	"barterdist/internal/parallel"
	"barterdist/internal/trace"
)

// ErrAudit wraps every RunAudit failure so callers can distinguish
// "the recorded run broke an invariant" from configuration errors.
var ErrAudit = errors.New("simulate: audit failed")

func auditErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrAudit, fmt.Sprintf(format, args...))
}

// auditTasks is the fixed partition width of the parallel audit: the
// tick axis is cut into auditTasks contiguous chunks (capacity and
// validity checks) and the node axis into auditTasks residue lanes
// (liveness, store-and-forward, delivery, completion, events). The
// partition never depends on AuditWorkers — workers only pick up
// pre-cut tasks — which is what makes verdicts worker-count-invariant.
const auditTasks = 8

// auditPoint pinpoints one invariant violation found during replay.
// Points are ordered by (tick, phase, pos, prio); the minimum over all
// tasks is exactly the error a single sequential replay would have hit
// first, because each task scans its own slice of the work in that
// order and every check site has a fixed priority matching the
// sequential check order.
type auditPoint struct {
	tick  int   // 1-based tick (for fault events: effective application tick)
	phase uint8 // 0 fault-log events, 1 validation, 2 delivery
	pos   int   // global transfer index, or fault-log event index
	prio  uint8 // check order within (tick, phase, pos)
	err   error
}

// better returns the smaller of two points (nil = no error found).
func better(a, b *auditPoint) *auditPoint {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.tick != b.tick:
		if a.tick < b.tick {
			return a
		}
		return b
	case a.phase != b.phase:
		if a.phase < b.phase {
			return a
		}
		return b
	case a.pos != b.pos:
		if a.pos < b.pos {
			return a
		}
		return b
	case a.prio <= b.prio:
		return a
	}
	return b
}

// auditSums is one lane's contribution to the whole-run aggregates the
// sequential auditor accumulated in a single pass. Sums are only
// consulted when no replay point fired, so lanes that bail early on an
// error may leave them partial.
type auditSums struct {
	useful, total, lost         int
	kind                        [trace.NumKinds]int
	honestUseful, honestWasted  int
	complete, aliveClients      int
	completeHonest, aliveHonest int
	earlyExits                  int
	comp                        int // clients whose completion tick is set
}

func (s *auditSums) add(o *auditSums) {
	s.useful += o.useful
	s.total += o.total
	s.lost += o.lost
	for k := range s.kind {
		s.kind[k] += o.kind[k]
	}
	s.honestUseful += o.honestUseful
	s.honestWasted += o.honestWasted
	s.complete += o.complete
	s.aliveClients += o.aliveClients
	s.completeHonest += o.completeHonest
	s.aliveHonest += o.aliveHonest
	s.earlyExits += o.earlyExits
	s.comp += o.comp
}

// auditOut is one task's result: the earliest replay point it found,
// its earliest final-state mismatches (checked only after a clean
// replay), and its aggregate sums.
type auditOut struct {
	pt   *auditPoint // phases 0-2 (events / validation / delivery)
	fin3 *auditPoint // final per-node have/completion mismatch (pos = node)
	fin4 *auditPoint // final per-node liveness mismatch (pos = node)
	sums auditSums
}

// auditPre is the sequential O(events) pre-pass over the fault log: it
// assigns every event the tick at which the sequential replay applies
// it (the log cursor only moves forward, so a time regression inherits
// its predecessor's tick), performs the order- and mode-checks that
// need no per-node state, and counts the global arrival/departure
// tallies.
type auditPre struct {
	eff      []int // effective application tick; leftover events keep ticks+2
	pt       *auditPoint
	leftover int
	departed int
	arrived  int
}

func auditPrepass(c Config, res *Result, open, tracked bool) auditPre {
	ticks := res.Trace.Ticks()
	pre := auditPre{eff: make([]int, len(res.FaultLog))}
	record := func(i int, prio uint8, err error) {
		pre.pt = better(pre.pt, &auditPoint{tick: pre.eff[i], phase: 0, pos: i, prio: prio, err: err})
	}
	nextArrive := 1
	prev := 1
	for i, ev := range res.FaultLog {
		// The sequential cursor stops for good at the first event with
		// Time beyond the last replayed tick (NaN compares false, so it
		// also stops there): everything from that index on is leftover.
		if !(ev.Time <= float64(ticks+1)) {
			pre.leftover = len(res.FaultLog) - i
			for j := i; j < len(res.FaultLog); j++ {
				pre.eff[j] = ticks + 2
			}
			break
		}
		e := int(math.Ceil(ev.Time))
		if e < 1 {
			e = 1
		}
		if e < prev {
			e = prev
		}
		pre.eff[i] = e
		prev = e

		v := int(ev.Node)
		if v <= 0 || v >= c.Nodes {
			record(i, 0, auditErr("fault log: event %v targets invalid node %d", ev.Kind, v))
			continue
		}
		if !tracked {
			record(i, 1, auditErr("fault log present but result reports a fault-free run"))
			continue
		}
		switch ev.Kind {
		case fault.Arrive:
			if !open {
				record(i, 2, auditErr("tick %v: arrival event in a closed-system run", ev.Time))
				continue
			}
			if v != nextArrive {
				record(i, 3, auditErr("tick %v: node %d arrives out of order (expected %d)", ev.Time, v, nextArrive))
				continue
			}
			nextArrive++
		case fault.Depart:
			if !open {
				record(i, 2, auditErr("tick %v: departure event in a closed-system run", ev.Time))
				continue
			}
			pre.departed++
		case fault.Crash:
			if open {
				record(i, 2, auditErr("tick %v: crash event in an open-system run", ev.Time))
			}
		case fault.Rejoin:
			if open {
				record(i, 2, auditErr("tick %v: rejoin event in an open-system run", ev.Time))
			}
		default:
			record(i, 2, auditErr("fault log: unknown event kind %d", uint8(ev.Kind)))
		}
	}
	pre.arrived = nextArrive - 1
	return pre
}

// auditChunk replays one contiguous tick range and checks the
// state-free validation invariants: index ranges, self-transfers, and
// the per-tick upload/download capacity counters. These checks carry
// validation priorities 0-3 and 7-8; the state-dependent priorities
// 4-6 (liveness, store-and-forward) belong to the node lanes, and the
// point merge restores the sequential per-transfer check order.
//
// Capacity counting here is a superset of the sequential auditor's
// (which stops counting at a transfer's first failed check): the extra
// counts can only produce a spurious cap point *after* a genuine
// lane/structural point in the same tick, which the minimum-point
// reduction discards.
func auditChunk(c Config, res *Result, ci int) *auditPoint {
	l := res.Trace
	T := l.Ticks()
	lo, hi := 1+ci*T/auditTasks, (ci+1)*T/auditTasks
	if lo > hi {
		return nil
	}
	caps := newCapScratch(c.Nodes)
	var w trace.Win
	n, k := c.Nodes, c.Blocks
	for t := lo; t <= hi; t++ {
		start, end := l.TickSpan(t - 1)
		caps.reset(t)
		for i := start; i < end; {
			from, to, block, base, wend := l.Window(&w, i)
			stop := end
			if wend < stop {
				stop = wend
			}
			for ; i < stop; i++ {
				j := i - base
				f := int(int32(from[j]))
				v := int(int32(to[j]))
				b := int(int32(block[j]))
				var inner error
				var prio uint8
				switch {
				case f < 0 || f >= n:
					inner, prio = fmt.Errorf("sender %d out of range", f), 0
				case v < 0 || v >= n:
					inner, prio = fmt.Errorf("receiver %d out of range", v), 1
				case f == v:
					inner, prio = fmt.Errorf("node %d transfers to itself", f), 2
				case b < 0 || b >= k:
					inner, prio = fmt.Errorf("block %d out of range", b), 3
				default:
					upCap := c.UploadCap
					if f == 0 {
						upCap = c.ServerUploadCap
					}
					if int(caps.addUp(f)) > upCap {
						inner, prio = fmt.Errorf("node %d exceeds upload cap %d", f, upCap), 7
					} else if used := caps.addDown(v); c.DownloadCap != Unlimited && int(used) > c.DownloadCap {
						inner, prio = fmt.Errorf("node %d exceeds download cap %d", v, c.DownloadCap), 8
					}
				}
				if inner != nil {
					return &auditPoint{tick: t, phase: 1, pos: i, prio: prio, err: auditErr("tick %d: %v", t, inner)}
				}
			}
		}
	}
	return nil
}

// auditLane replays the whole trace for the nodes of one residue lane
// (node v belongs to lane v % auditTasks). A lane is self-contained:
// every check and every piece of state it touches — liveness, block
// sets, completion ticks, per-receiver delivery accounting, the
// per-node fault-event preconditions — depends only on events and
// deliveries targeting its own nodes, so lanes never communicate. The
// lane scans ticks, and positions within a tick, in ascending order
// with fixed per-site priorities, so its first hit is its minimal
// point and it can stop early.
func auditLane(c Config, res *Result, pre *auditPre, honest []bool, open, tracked bool, lane int) auditOut {
	l := res.Trace
	T := l.Ticks()
	n, k := c.Nodes, c.Blocks
	adversarial := honest != nil

	slots := 0
	if lane < n {
		slots = (n - lane + auditTasks - 1) / auditTasks
	}
	have := make([]*bitset.Set, slots)
	completion := make([]int, slots)
	var alive []bool
	if tracked {
		alive = make([]bool, slots)
	}
	var out auditOut
	sums := &out.sums
	for v := lane; v < n; v += auditTasks {
		s := v >> 3
		have[s] = bitset.New(k)
		if v == 0 {
			for b := 0; b < k; b++ {
				have[s].Add(b)
			}
		}
		if tracked {
			if open {
				alive[s] = v == 0
			} else {
				alive[s] = true
				if v > 0 {
					sums.aliveClients++
				}
			}
		}
	}
	if adversarial {
		// The sequential auditor starts aliveHonest at the full honest
		// client count (adversary plans do not compose with arrivals).
		for v := lane; v < n; v += auditTasks {
			if v > 0 && honest[v] {
				sums.aliveHonest++
			}
		}
	}

	ei := 0
	applyEvents := func(t int) *auditPoint {
		for ei < len(pre.eff) && pre.eff[ei] <= t {
			i := ei
			ev := res.FaultLog[i]
			ei++
			v := int(ev.Node)
			if v <= 0 || v >= n || v%auditTasks != lane || !tracked {
				continue // out of range / foreign lane: prepass owns those checks
			}
			s := v >> 3
			switch ev.Kind {
			case fault.Arrive:
				if !open {
					continue // mode mismatch: prepass point, lower prio
				}
				if alive[s] {
					return &auditPoint{tick: pre.eff[i], phase: 0, pos: i, prio: 4,
						err: auditErr("tick %v: node %d arrives while present", ev.Time, v)}
				}
				if have[s].Count() != 0 {
					return &auditPoint{tick: pre.eff[i], phase: 0, pos: i, prio: 5,
						err: auditErr("tick %v: node %d arrives holding blocks", ev.Time, v)}
				}
				alive[s] = true
				sums.aliveClients++
			case fault.Depart:
				if !open {
					continue
				}
				if !alive[s] {
					return &auditPoint{tick: pre.eff[i], phase: 0, pos: i, prio: 4,
						err: auditErr("tick %v: node %d departs while absent", ev.Time, v)}
				}
				alive[s] = false
				sums.aliveClients--
				if have[s].Full() {
					sums.complete--
				} else {
					sums.earlyExits++
				}
			case fault.Crash:
				if open {
					continue
				}
				if !alive[s] {
					return &auditPoint{tick: pre.eff[i], phase: 0, pos: i, prio: 4,
						err: auditErr("tick %v: node %d crashes while already dead", ev.Time, v)}
				}
				alive[s] = false
				sums.aliveClients--
				if have[s].Full() {
					sums.complete--
				}
				if adversarial && honest[v] {
					sums.aliveHonest--
					if have[s].Full() {
						sums.completeHonest--
					}
				}
			case fault.Rejoin:
				if open {
					continue
				}
				if alive[s] {
					return &auditPoint{tick: pre.eff[i], phase: 0, pos: i, prio: 4,
						err: auditErr("tick %v: node %d rejoins while alive", ev.Time, v)}
				}
				alive[s] = true
				sums.aliveClients++
				if adversarial && honest[v] {
					sums.aliveHonest++
				}
				if ev.Wiped {
					have[s].Clear()
					completion[s] = 0
				} else if have[s].Full() {
					sums.complete++
					if adversarial && honest[v] {
						sums.completeHonest++
					}
				}
			}
		}
		return nil
	}

	var w trace.Win
	var dropIdx []int32
	var dropKinds []uint8
	for t := 1; t <= T; t++ {
		if out.pt = applyEvents(t); out.pt != nil {
			return out
		}
		start, end := l.TickSpan(t - 1)
		// Validation half-tick: liveness and store-and-forward against
		// the start-of-tick state, before any delivery lands.
		for i := start; i < end; {
			from, to, block, base, wend := l.Window(&w, i)
			stop := end
			if wend < stop {
				stop = wend
			}
			for ; i < stop; i++ {
				j := i - base
				f := int(int32(from[j]))
				v := int(int32(to[j]))
				fOwn := f >= 0 && f < n && f%auditTasks == lane
				vOwn := v >= 0 && v < n && v%auditTasks == lane
				if !fOwn && !vOwn {
					continue
				}
				if fOwn && tracked && !alive[f>>3] {
					out.pt = &auditPoint{tick: t, phase: 1, pos: i, prio: 4,
						err: auditErr("tick %d: %v", t, fmt.Errorf("dead node %d cannot upload", f))}
					return out
				}
				if vOwn && tracked && !alive[v>>3] {
					out.pt = &auditPoint{tick: t, phase: 1, pos: i, prio: 5,
						err: auditErr("tick %d: %v", t, fmt.Errorf("dead node %d cannot download", v))}
					return out
				}
				if fOwn {
					if b := int(int32(block[j])); b >= 0 && b < k && !have[f>>3].Has(b) {
						out.pt = &auditPoint{tick: t, phase: 1, pos: i, prio: 6,
							err: auditErr("tick %d: %v", t, fmt.Errorf("store-and-forward violation: node %d does not hold block %d", f, b))}
						return out
					}
				}
			}
		}
		// Delivery half-tick: drop-aware accounting for owned receivers.
		dropIdx, dropKinds = l.AppendTickDrops(t-1, dropIdx[:0], dropKinds[:0])
		dp := 0
		for i := start; i < end; {
			_, to, block, base, wend := l.Window(&w, i)
			stop := end
			if wend < stop {
				stop = wend
			}
			for ; i < stop; i++ {
				j := i - base
				dropped := false
				kind := LostKindFault
				if dp < len(dropIdx) && int(dropIdx[dp]) == i-start {
					dropped = true
					if dp < len(dropKinds) {
						kind = dropKinds[dp]
					}
					dp++
				}
				v := int(int32(to[j]))
				if v < 0 || v >= n || v%auditTasks != lane {
					continue
				}
				if dropped {
					if adversarial {
						if int(kind) >= len(sums.kind) {
							out.pt = &auditPoint{tick: t, phase: 2, pos: i, prio: 0,
								err: auditErr("tick %d: unknown drop kind %d", t, kind)}
							return out
						}
						sums.kind[kind]++
						if kind != LostKindFault && kind != LostKindFaultCorrupt && honest[v] {
							sums.honestWasted++
						}
					}
					sums.lost++
					sums.total++
					continue
				}
				b := int(int32(block[j]))
				if b < 0 || b >= k {
					continue // structurally invalid: the tick chunk owns the point
				}
				if have[v>>3].Add(b) {
					sums.useful++
					if adversarial && honest[v] {
						sums.honestUseful++
					}
					if v != 0 && have[v>>3].Full() {
						sums.complete++
						completion[v>>3] = t
						if adversarial && honest[v] {
							sums.completeHonest++
						}
					}
				}
				sums.total++
			}
		}
	}
	if out.pt = applyEvents(T + 1); out.pt != nil {
		return out
	}

	// Final-state comparison, in ascending node order within the lane;
	// the cross-lane merge restores the global ascending order.
	for v := lane; v < n; v += auditTasks {
		s := v >> 3
		if !have[s].Equal(res.FinalHave[v]) {
			out.fin3 = &auditPoint{tick: 0, phase: 3, pos: v, prio: 0,
				err: auditErr("node %d final block set differs from recorded snapshot", v)}
			break
		}
		if completion[s] != res.ClientCompletion[v] {
			out.fin3 = &auditPoint{tick: 0, phase: 3, pos: v, prio: 1,
				err: auditErr("node %d completion tick: replay %d, result %d", v, completion[s], res.ClientCompletion[v])}
			break
		}
	}
	if res.FinalAlive != nil && tracked {
		for v := lane; v < n && v < len(res.FinalAlive); v += auditTasks {
			if alive[v>>3] != res.FinalAlive[v] {
				out.fin4 = &auditPoint{tick: 0, phase: 4, pos: v, prio: 0,
					err: auditErr("node %d final liveness: replay %v, result %v", v, alive[v>>3], res.FinalAlive[v])}
				break
			}
		}
	}
	for v := lane; v < n; v += auditTasks {
		if v > 0 && completion[v>>3] != 0 {
			sums.comp++
		}
	}
	return out
}

// RunAudit replays a recorded run from scratch and verifies that every
// engine invariant held and that the reported result is exactly what
// the trace produces. It is the post-hoc counterpart of the engine's
// online validation: given only the artifacts a run leaves behind
// (Config, Trace, FaultLog, FinalHave), it re-derives the
// whole execution and checks
//
//   - upload/download capacity: no node exceeds its per-tick caps;
//   - store-and-forward: every sender held the block at the start of
//     the tick it sent it;
//   - liveness: no transfer touches a dead node, no node crashes twice
//     or rejoins while alive, and the server never crashes;
//   - accounting: useful-transfer and loss counts, per-client
//     completion ticks, the completion time, and the final
//     block-ownership state all match the recorded Result.
//
// A Result produced by Run with RecordTrace always passes; a doctored
// trace — or one produced by a cheating scheduler through a permissive
// engine — fails with a pinpointed ErrAudit. cfg.Fault and
// cfg.Adversary are ignored: the replay takes its adversity from
// res.FaultLog, res.Strategies, and the trace's drop columns, so
// auditing never consumes a (single-use) plan. For adversarial runs
// the drop causes are re-counted per kind and the honest-only
// completion criterion and honest stall accounting are re-derived from
// the trace.
//
// The replay is partitioned into fixed tick chunks (capacity and
// validity) and fixed node-residue lanes (liveness, store-and-forward,
// delivery, completion, fault events) executed on cfg.AuditWorkers
// workers. The partition is independent of the worker count and every
// check site carries a priority mirroring the sequential check order,
// so the verdict — and the error text — is byte-identical for any
// AuditWorkers value.
func RunAudit(cfg Config, res *Result) error {
	cfg.Fault = nil
	cfg.Adversary = nil
	cfg.Arrivals = nil // open replays take arrivals from res.FaultLog
	if err := cfg.Validate(); err != nil {
		return err
	}
	c := cfg.withDefaults()
	if res == nil {
		return auditErr("nil result")
	}
	if c.Nodes == 1 {
		return nil // vacuous run, nothing recorded
	}
	if res.FinalHave == nil {
		return auditErr("result has no FinalHave snapshot; run with RecordTrace")
	}
	if len(res.FinalHave) != c.Nodes {
		return auditErr("FinalHave has %d entries for %d nodes", len(res.FinalHave), c.Nodes)
	}
	if res.Trace == nil {
		return auditErr("result has no trace; run with RecordTrace")
	}
	if res.CompletionTime != res.Trace.Ticks() {
		return auditErr("CompletionTime %d does not match trace length %d",
			res.CompletionTime, res.Trace.Ticks())
	}
	if len(res.ClientCompletion) != c.Nodes {
		return auditErr("ClientCompletion has %d entries for %d nodes", len(res.ClientCompletion), c.Nodes)
	}
	if res.FinalAlive != nil && len(res.FinalAlive) != c.Nodes {
		return auditErr("FinalAlive has %d entries for %d nodes", len(res.FinalAlive), c.Nodes)
	}

	open := res.Open != nil
	faulty := len(res.FaultLog) > 0 || res.FinalAlive != nil
	tracked := open || faulty
	adversarial := res.Strategies != nil
	var honest []bool
	honestClients := 0
	if adversarial {
		if len(res.Strategies) != c.Nodes {
			return auditErr("Strategies has %d entries for %d nodes", len(res.Strategies), c.Nodes)
		}
		if res.Strategies[0] != adversary.Honest {
			return auditErr("node 0 (the server) is recorded as %v; it must stay honest", res.Strategies[0])
		}
		honest = make([]bool, c.Nodes)
		for v, sg := range res.Strategies {
			honest[v] = sg == adversary.Honest
			if v > 0 && honest[v] {
				honestClients++
			}
		}
		if !res.Trace.Kinded() {
			return auditErr("adversarial result's trace records no drop kinds")
		}
	}

	pre := auditPrepass(c, res, open, tracked)

	workers := c.AuditWorkers
	if workers <= 0 {
		workers = 1
	}
	outs, perr := parallel.Map(workers, 2*auditTasks, func(i int) (auditOut, error) {
		if i < auditTasks {
			return auditOut{pt: auditChunk(c, res, i)}, nil
		}
		return auditLane(c, res, &pre, honest, open, tracked, i-auditTasks), nil
	})
	if perr != nil {
		return perr // a panicking task, surfaced at the lowest index
	}

	pt := pre.pt
	var fin3, fin4 *auditPoint
	var sums auditSums
	for i := range outs {
		pt = better(pt, outs[i].pt)
		fin3 = better(fin3, outs[i].fin3)
		fin4 = better(fin4, outs[i].fin4)
		sums.add(&outs[i].sums)
	}
	if pt != nil {
		return pt.err
	}
	if pre.leftover > 0 {
		return auditErr("fault log has %d events beyond the recorded run", pre.leftover)
	}

	// The run must actually have finished under the engine's criterion.
	if open {
		// Open-system verdict and starvation audit: every peer that
		// entered must be accounted for — completed, left early, or
		// still present — including the peers that departed before
		// completing.
		o := res.Open
		arrived := pre.arrived
		switch o.Verdict {
		case arrival.VerdictDrained:
			if arrived != c.Nodes-1 {
				return auditErr("drained verdict with %d/%d arrivals replayed", arrived, c.Nodes-1)
			}
			if sums.complete != sums.aliveClients {
				return auditErr("drained verdict but %d/%d present clients complete", sums.complete, sums.aliveClients)
			}
		case arrival.VerdictUnstable:
			// Bounded truncation: no completion requirement.
		default:
			return auditErr("open result carries verdict %v", o.Verdict)
		}
		if o.Arrived != arrived || o.Departed != pre.departed || o.EarlyExits != sums.earlyExits {
			return auditErr("replay counts %d arrived / %d departed / %d early exits, result reports %d / %d / %d",
				arrived, pre.departed, sums.earlyExits, o.Arrived, o.Departed, o.EarlyExits)
		}
		if o.Completed != sums.comp {
			return auditErr("replay counts %d completions, open result reports %d", sums.comp, o.Completed)
		}
		if occ := sums.aliveClients - sums.complete; o.FinalOccupancy != occ {
			return auditErr("replay leaves %d peers mid-download, open result reports %d", occ, o.FinalOccupancy)
		}
		if o.Arrived != o.Completed+o.EarlyExits+o.FinalOccupancy {
			return auditErr("open run starves silently: %d arrived != %d completed + %d early exits + %d still present",
				o.Arrived, o.Completed, o.EarlyExits, o.FinalOccupancy)
		}
	} else {
		// st.AllClientsComplete() over the merged lane counters (the
		// replay never schedules rejoins, so none are pending).
		done := false
		if adversarial {
			if !tracked {
				done = sums.completeHonest == honestClients
			} else {
				done = sums.completeHonest == sums.aliveHonest
			}
		} else if !tracked {
			done = sums.complete == c.Nodes-1
		} else {
			done = sums.complete == sums.aliveClients
		}
		if !done {
			if adversarial {
				return auditErr("replayed trace does not reach honest completion (%d/%d honest clients complete)",
					sums.completeHonest, honestClients)
			}
			aliveClients := c.Nodes - 1
			if tracked {
				aliveClients = sums.aliveClients
			}
			return auditErr("replayed trace does not reach completion (%d/%d alive clients complete, %d rejoins pending)",
				sums.complete, aliveClients, 0)
		}
	}
	if sums.useful != res.UsefulTransfers {
		return auditErr("replay counts %d useful transfers, result reports %d", sums.useful, res.UsefulTransfers)
	}
	if sums.total != res.TotalTransfers {
		return auditErr("replay counts %d total transfers, result reports %d", sums.total, res.TotalTransfers)
	}
	corrupt := res.CorruptTransfers
	if adversarial {
		if sums.kind[LostKindFault] != res.LostTransfers || sums.kind[LostKindFaultCorrupt] != corrupt {
			return auditErr("replay counts %d lost + %d corrupt fault drops, result reports %d + %d",
				sums.kind[LostKindFault], sums.kind[LostKindFaultCorrupt], res.LostTransfers, corrupt)
		}
		if sums.kind[LostKindRefused] != res.AdvRefused ||
			sums.kind[LostKindStalled] != res.AdvStalled ||
			sums.kind[LostKindGarbage] != res.AdvCorrupt {
			return auditErr("replay counts %d refused / %d stalled / %d garbage adversary drops, result reports %d / %d / %d",
				sums.kind[LostKindRefused], sums.kind[LostKindStalled], sums.kind[LostKindGarbage],
				res.AdvRefused, res.AdvStalled, res.AdvCorrupt)
		}
		if sums.honestUseful != res.HonestUseful || sums.honestWasted != res.HonestWasted {
			return auditErr("replay counts %d honest-useful / %d honest-wasted, result reports %d / %d",
				sums.honestUseful, sums.honestWasted, res.HonestUseful, res.HonestWasted)
		}
	} else if sums.lost != res.LostTransfers+corrupt {
		return auditErr("replay counts %d dropped transfers, result reports %d lost + %d corrupt",
			sums.lost, res.LostTransfers, res.CorruptTransfers)
	}
	if fin3 != nil {
		return fin3.err
	}
	if res.FinalAlive != nil {
		if !tracked {
			return auditErr("result records a liveness mask but no fault log")
		}
		if fin4 != nil {
			return fin4.err
		}
	}
	return nil
}
