package simulate

import (
	"errors"
	"fmt"

	"barterdist/internal/adversary"
	"barterdist/internal/arrival"
	"barterdist/internal/fault"
	"barterdist/internal/trace"
)

// ErrAudit wraps every RunAudit failure so callers can distinguish
// "the recorded run broke an invariant" from configuration errors.
var ErrAudit = errors.New("simulate: audit failed")

func auditErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrAudit, fmt.Sprintf(format, args...))
}

// RunAudit replays a recorded run from scratch and verifies that every
// engine invariant held and that the reported result is exactly what
// the trace produces. It is the post-hoc counterpart of the engine's
// online validation: given only the artifacts a run leaves behind
// (Config, Trace, FaultLog, FinalHave), it re-derives the
// whole execution and checks
//
//   - upload/download capacity: no node exceeds its per-tick caps;
//   - store-and-forward: every sender held the block at the start of
//     the tick it sent it;
//   - liveness: no transfer touches a dead node, no node crashes twice
//     or rejoins while alive, and the server never crashes;
//   - accounting: useful-transfer and loss counts, per-client
//     completion ticks, the completion time, and the final
//     block-ownership state all match the recorded Result.
//
// A Result produced by Run with RecordTrace always passes; a doctored
// trace — or one produced by a cheating scheduler through a permissive
// engine — fails with a pinpointed ErrAudit. cfg.Fault and
// cfg.Adversary are ignored: the replay takes its adversity from
// res.FaultLog, res.Strategies, and the trace's drop columns, so
// auditing never
// consumes a (single-use) plan. For adversarial runs the drop causes
// are re-counted per kind and the honest-only completion criterion and
// honest stall accounting are re-derived from the trace.
func RunAudit(cfg Config, res *Result) error {
	cfg.Fault = nil
	cfg.Adversary = nil
	cfg.Arrivals = nil // open replays take arrivals from res.FaultLog
	if err := cfg.Validate(); err != nil {
		return err
	}
	c := cfg.withDefaults()
	if res == nil {
		return auditErr("nil result")
	}
	if c.Nodes == 1 {
		return nil // vacuous run, nothing recorded
	}
	if res.FinalHave == nil {
		return auditErr("result has no FinalHave snapshot; run with RecordTrace")
	}
	if len(res.FinalHave) != c.Nodes {
		return auditErr("FinalHave has %d entries for %d nodes", len(res.FinalHave), c.Nodes)
	}
	if res.Trace == nil {
		return auditErr("result has no trace; run with RecordTrace")
	}
	if res.CompletionTime != res.Trace.Ticks() {
		return auditErr("CompletionTime %d does not match trace length %d",
			res.CompletionTime, res.Trace.Ticks())
	}

	st := newState(c.Nodes, c.Blocks)
	open := res.Open != nil
	faulty := len(res.FaultLog) > 0 || res.FinalAlive != nil
	if open {
		// Open-system replay: the swarm starts empty — only the server
		// is present — and the population is rebuilt from the logged
		// Arrive/Depart events.
		st.alive = make([]bool, c.Nodes)
		st.alive[0] = true
	} else if faulty {
		st.alive = make([]bool, c.Nodes)
		for i := range st.alive {
			st.alive[i] = true
		}
		st.aliveClients = c.Nodes - 1
	}
	adversarial := res.Strategies != nil
	if adversarial {
		if len(res.Strategies) != c.Nodes {
			return auditErr("Strategies has %d entries for %d nodes", len(res.Strategies), c.Nodes)
		}
		if res.Strategies[0] != adversary.Honest {
			return auditErr("node 0 (the server) is recorded as %v; it must stay honest", res.Strategies[0])
		}
		st.honest = make([]bool, c.Nodes)
		for v, sg := range res.Strategies {
			st.honest[v] = sg == adversary.Honest
			if v > 0 && st.honest[v] {
				st.honestClients++
			}
		}
		st.aliveHonest = st.honestClients
		if !res.Trace.Kinded() {
			return auditErr("adversarial result's trace records no drop kinds")
		}
	}

	completion := make([]int, c.Nodes)
	useful, total, lost, corrupt := 0, 0, 0, 0
	honestUseful, honestWasted := 0, 0
	kindCount := make([]int, trace.NumKinds)
	caps := newCapScratch(c.Nodes)
	logCursor := 0
	nextArrive := 1 // open mode: ids must be handed out in order
	departed, earlyExits := 0, 0

	applyEvents := func(t int) error {
		for logCursor < len(res.FaultLog) && res.FaultLog[logCursor].Time <= float64(t) {
			ev := res.FaultLog[logCursor]
			logCursor++
			v := int(ev.Node)
			if v <= 0 || v >= c.Nodes {
				return auditErr("fault log: event %v targets invalid node %d", ev.Kind, v)
			}
			if st.alive == nil {
				return auditErr("fault log present but result reports a fault-free run")
			}
			switch ev.Kind {
			case fault.Arrive:
				if !open {
					return auditErr("tick %v: arrival event in a closed-system run", ev.Time)
				}
				if v != nextArrive {
					return auditErr("tick %v: node %d arrives out of order (expected %d)", ev.Time, v, nextArrive)
				}
				if st.alive[v] {
					return auditErr("tick %v: node %d arrives while present", ev.Time, v)
				}
				if st.have[v].Count() != 0 {
					return auditErr("tick %v: node %d arrives holding blocks", ev.Time, v)
				}
				nextArrive++
				st.alive[v] = true
				st.aliveClients++
			case fault.Depart:
				if !open {
					return auditErr("tick %v: departure event in a closed-system run", ev.Time)
				}
				if !st.alive[v] {
					return auditErr("tick %v: node %d departs while absent", ev.Time, v)
				}
				st.alive[v] = false
				st.aliveClients--
				departed++
				if st.have[v].Full() {
					st.complete--
				} else {
					earlyExits++
				}
			case fault.Crash:
				if open {
					return auditErr("tick %v: crash event in an open-system run", ev.Time)
				}
				if !st.alive[v] {
					return auditErr("tick %v: node %d crashes while already dead", ev.Time, v)
				}
				st.alive[v] = false
				st.aliveClients--
				if st.have[v].Full() {
					st.complete--
				}
				if st.honest != nil && st.honest[v] {
					st.aliveHonest--
					if st.have[v].Full() {
						st.completeHonest--
					}
				}
			case fault.Rejoin:
				if open {
					return auditErr("tick %v: rejoin event in an open-system run", ev.Time)
				}
				if st.alive[v] {
					return auditErr("tick %v: node %d rejoins while alive", ev.Time, v)
				}
				st.alive[v] = true
				st.aliveClients++
				if st.honest != nil && st.honest[v] {
					st.aliveHonest++
				}
				if ev.Wiped {
					st.have[v].Clear()
					completion[v] = 0
				} else if st.have[v].Full() {
					st.complete++
					if st.honest != nil && st.honest[v] {
						st.completeHonest++
					}
				}
			default:
				return auditErr("fault log: unknown event kind %d", uint8(ev.Kind))
			}
		}
		return nil
	}

	// Replay the columnar trace through a streaming cursor: the engine
	// records drop positions strictly ascending, so the cursor hands
	// each transfer its delivered/dropped status in one pass with no
	// per-tick materialization.
	cur := res.Trace.Cursor()
	for cur.NextTick() {
		t := cur.Tick()
		if err := applyEvents(t); err != nil {
			return err
		}
		// Two passes over the tick: capacity/state validation sees every
		// transfer against the start-of-tick state, then the drop-aware
		// pass applies deliveries. TickSpan gives the validation pass a
		// raw index range without allocating a tick slice.
		start, end := res.Trace.TickSpan(t - 1)
		caps.reset(t)
		for i := start; i < end; i++ {
			if err := validate(res.Trace.At(i), st, c, caps); err != nil {
				return auditErr("tick %d: %v", t, err)
			}
		}
		for cur.Next() {
			tr := cur.Transfer()
			if cur.Dropped() {
				if adversarial {
					k := cur.Kind()
					if int(k) >= len(kindCount) {
						return auditErr("tick %d: unknown drop kind %d", t, k)
					}
					kindCount[k]++
					if k != LostKindFault && k != LostKindFaultCorrupt && st.honest[tr.To] {
						honestWasted++
					}
				}
				lost++ // corrupt/lost split is re-checked in aggregate below
				total++
				continue
			}
			if st.have[tr.To].Add(int(tr.Block)) {
				useful++
				if adversarial && st.honest[tr.To] {
					honestUseful++
				}
				if int(tr.To) != 0 && st.have[tr.To].Full() {
					st.complete++
					completion[tr.To] = t
					if st.honest != nil && st.honest[tr.To] {
						st.completeHonest++
					}
				}
			}
			total++
		}
		st.tick = t
	}
	// Events that fired after the last scheduled tick (a crash that
	// finished the run by removing the last incomplete client).
	if err := applyEvents(res.Trace.Ticks() + 1); err != nil {
		return err
	}
	if logCursor != len(res.FaultLog) {
		return auditErr("fault log has %d events beyond the recorded run", len(res.FaultLog)-logCursor)
	}

	// The run must actually have finished under the engine's criterion.
	if open {
		// Open-system verdict and starvation audit: every peer that
		// entered must be accounted for — completed, left early, or
		// still present — including the peers that departed before
		// completing.
		o := res.Open
		arrived := nextArrive - 1
		switch o.Verdict {
		case arrival.VerdictDrained:
			if arrived != c.Nodes-1 {
				return auditErr("drained verdict with %d/%d arrivals replayed", arrived, c.Nodes-1)
			}
			if st.complete != st.aliveClients {
				return auditErr("drained verdict but %d/%d present clients complete", st.complete, st.aliveClients)
			}
		case arrival.VerdictUnstable:
			// Bounded truncation: no completion requirement.
		default:
			return auditErr("open result carries verdict %v", o.Verdict)
		}
		if o.Arrived != arrived || o.Departed != departed || o.EarlyExits != earlyExits {
			return auditErr("replay counts %d arrived / %d departed / %d early exits, result reports %d / %d / %d",
				arrived, departed, earlyExits, o.Arrived, o.Departed, o.EarlyExits)
		}
		comp := 0
		for v := 1; v < c.Nodes; v++ {
			if completion[v] != 0 {
				comp++
			}
		}
		if o.Completed != comp {
			return auditErr("replay counts %d completions, open result reports %d", comp, o.Completed)
		}
		if occ := st.aliveClients - st.complete; o.FinalOccupancy != occ {
			return auditErr("replay leaves %d peers mid-download, open result reports %d", occ, o.FinalOccupancy)
		}
		if o.Arrived != o.Completed+o.EarlyExits+o.FinalOccupancy {
			return auditErr("open run starves silently: %d arrived != %d completed + %d early exits + %d still present",
				o.Arrived, o.Completed, o.EarlyExits, o.FinalOccupancy)
		}
	} else if !st.AllClientsComplete() {
		if adversarial {
			return auditErr("replayed trace does not reach honest completion (%d/%d honest clients complete)",
				st.completeHonest, st.honestClients)
		}
		return auditErr("replayed trace does not reach completion (%d/%d alive clients complete, %d rejoins pending)",
			st.complete, st.AliveClients(), st.pendingRejoin)
	}
	if useful != res.UsefulTransfers {
		return auditErr("replay counts %d useful transfers, result reports %d", useful, res.UsefulTransfers)
	}
	if total != res.TotalTransfers {
		return auditErr("replay counts %d total transfers, result reports %d", total, res.TotalTransfers)
	}
	corrupt = res.CorruptTransfers
	if adversarial {
		if kindCount[LostKindFault] != res.LostTransfers || kindCount[LostKindFaultCorrupt] != corrupt {
			return auditErr("replay counts %d lost + %d corrupt fault drops, result reports %d + %d",
				kindCount[LostKindFault], kindCount[LostKindFaultCorrupt], res.LostTransfers, corrupt)
		}
		if kindCount[LostKindRefused] != res.AdvRefused ||
			kindCount[LostKindStalled] != res.AdvStalled ||
			kindCount[LostKindGarbage] != res.AdvCorrupt {
			return auditErr("replay counts %d refused / %d stalled / %d garbage adversary drops, result reports %d / %d / %d",
				kindCount[LostKindRefused], kindCount[LostKindStalled], kindCount[LostKindGarbage],
				res.AdvRefused, res.AdvStalled, res.AdvCorrupt)
		}
		if honestUseful != res.HonestUseful || honestWasted != res.HonestWasted {
			return auditErr("replay counts %d honest-useful / %d honest-wasted, result reports %d / %d",
				honestUseful, honestWasted, res.HonestUseful, res.HonestWasted)
		}
	} else if lost != res.LostTransfers+corrupt {
		return auditErr("replay counts %d dropped transfers, result reports %d lost + %d corrupt",
			lost, res.LostTransfers, res.CorruptTransfers)
	}
	for v := 0; v < c.Nodes; v++ {
		if !st.have[v].Equal(res.FinalHave[v]) {
			return auditErr("node %d final block set differs from recorded snapshot", v)
		}
		if completion[v] != res.ClientCompletion[v] {
			return auditErr("node %d completion tick: replay %d, result %d",
				v, completion[v], res.ClientCompletion[v])
		}
	}
	if res.FinalAlive != nil {
		if st.alive == nil {
			return auditErr("result records a liveness mask but no fault log")
		}
		for v, a := range res.FinalAlive {
			if st.alive[v] != a {
				return auditErr("node %d final liveness: replay %v, result %v", v, st.alive[v], a)
			}
		}
	}
	return nil
}
