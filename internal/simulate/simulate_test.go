package simulate

import (
	"errors"
	"strings"
	"testing"
)

// naivePipeline sends block by block down the chain 0->1->...->n-1: node v
// forwards the newest block it holds to v+1 whenever v+1 lacks it.
func naivePipeline() Scheduler {
	return SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		for v := 0; v+1 < s.N(); v++ {
			b := s.Blocks(v).FirstDiff(s.Blocks(v + 1))
			if b >= 0 {
				dst = append(dst, Transfer{From: int32(v), To: int32(v + 1), Block: int32(b)})
			}
		}
		return dst, nil
	})
}

func TestPipelineCompletionTime(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{2, 1}, {2, 5}, {5, 1}, {4, 3}, {10, 7}, {33, 20},
	} {
		res, err := Run(Config{Nodes: tc.n, Blocks: tc.k}, naivePipeline())
		if err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.n, tc.k, err)
		}
		// Pipeline: k ticks to drain the server + n-2 more hops for the
		// last block to reach the last client.
		want := tc.k + tc.n - 2
		if res.CompletionTime != want {
			t.Fatalf("n=%d k=%d: T = %d, want %d", tc.n, tc.k, res.CompletionTime, want)
		}
		if res.UsefulTransfers != (tc.n-1)*tc.k {
			t.Fatalf("n=%d k=%d: useful transfers = %d, want %d",
				tc.n, tc.k, res.UsefulTransfers, (tc.n-1)*tc.k)
		}
	}
}

func TestSingleNodeIsVacuouslyComplete(t *testing.T) {
	res, err := Run(Config{Nodes: 1, Blocks: 10}, naivePipeline())
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime != 0 {
		t.Fatalf("T = %d, want 0", res.CompletionTime)
	}
}

func TestConfigValidation(t *testing.T) {
	ok := naivePipeline()
	for name, cfg := range map[string]Config{
		"zero nodes":        {Nodes: 0, Blocks: 1},
		"zero blocks":       {Nodes: 2, Blocks: 0},
		"negative upload":   {Nodes: 2, Blocks: 1, UploadCap: -1},
		"download < upload": {Nodes: 2, Blocks: 1, UploadCap: 2, DownloadCap: 1},
	} {
		if _, err := Run(cfg, ok); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestStoreAndForwardViolationDetected(t *testing.T) {
	// Client 1 tries to send a block it does not have.
	bad := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		return append(dst, Transfer{From: 1, To: 2, Block: 0}), nil
	})
	_, err := Run(Config{Nodes: 3, Blocks: 2}, bad)
	if err == nil || !strings.Contains(err.Error(), "store-and-forward") {
		t.Fatalf("err = %v, want store-and-forward violation", err)
	}
}

func TestSameTickRelayRejected(t *testing.T) {
	// Block arrives at node 1 in tick 1; relaying it in the SAME tick
	// must be rejected (it only becomes usable next tick).
	bad := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		dst = append(dst, Transfer{From: 0, To: 1, Block: 0})
		return append(dst, Transfer{From: 1, To: 2, Block: 0}), nil
	})
	_, err := Run(Config{Nodes: 3, Blocks: 1, DownloadCap: Unlimited}, bad)
	if err == nil || !strings.Contains(err.Error(), "store-and-forward") {
		t.Fatalf("err = %v, want store-and-forward violation", err)
	}
}

func TestUploadCapEnforced(t *testing.T) {
	bad := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		dst = append(dst, Transfer{From: 0, To: 1, Block: 0})
		return append(dst, Transfer{From: 0, To: 2, Block: 0}), nil
	})
	_, err := Run(Config{Nodes: 3, Blocks: 1}, bad)
	if err == nil || !strings.Contains(err.Error(), "upload cap") {
		t.Fatalf("err = %v, want upload cap violation", err)
	}
	// The same schedule is legal with UploadCap 2.
	res, err := Run(Config{Nodes: 3, Blocks: 1, UploadCap: 2, DownloadCap: 2}, bad)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime != 1 {
		t.Fatalf("T = %d, want 1", res.CompletionTime)
	}
}

func TestDownloadCapEnforced(t *testing.T) {
	bad := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		switch t {
		case 1:
			dst = append(dst, Transfer{From: 0, To: 1, Block: 0})
		case 2:
			// Node 2 receives the same block from two senders at once.
			dst = append(dst, Transfer{From: 0, To: 2, Block: 0})
			dst = append(dst, Transfer{From: 1, To: 2, Block: 0})
		case 3:
			dst = append(dst, Transfer{From: 0, To: 1, Block: 1})
		case 4:
			dst = append(dst, Transfer{From: 0, To: 2, Block: 1})
		}
		return dst, nil
	})
	_, err := Run(Config{Nodes: 3, Blocks: 2, DownloadCap: 1}, bad)
	if err == nil || !strings.Contains(err.Error(), "download cap") {
		t.Fatalf("err = %v, want download cap violation", err)
	}
	if _, err := Run(Config{Nodes: 3, Blocks: 2, DownloadCap: 2}, bad); err != nil {
		t.Fatalf("DownloadCap=2 should allow two receives: %v", err)
	}
}

func TestUnlimitedDownloadCap(t *testing.T) {
	fanIn := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		switch t {
		case 1:
			dst = append(dst, Transfer{From: 0, To: 1, Block: 0})
		case 2:
			dst = append(dst, Transfer{From: 0, To: 2, Block: 1})
		default:
			// Both 0 and 2 send distinct blocks to 1 in one tick.
			dst = append(dst, Transfer{From: 0, To: 1, Block: 2})
			dst = append(dst, Transfer{From: 2, To: 1, Block: 1})
			dst = append(dst, Transfer{From: 1, To: 2, Block: 0})
		}
		return dst, nil
	})
	res, err := Run(Config{Nodes: 3, Blocks: 3, DownloadCap: Unlimited, MaxTicks: 10}, fanIn)
	if err == nil {
		_ = res
		return // completed without violation: what we wanted
	}
	if !errors.Is(err, ErrMaxTicks) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestInvalidTransferFields(t *testing.T) {
	cases := map[string]Transfer{
		"self transfer":      {From: 1, To: 1, Block: 0},
		"sender range":       {From: -1, To: 1, Block: 0},
		"receiver range":     {From: 0, To: 99, Block: 0},
		"block range":        {From: 0, To: 1, Block: 99},
		"negative block":     {From: 0, To: 1, Block: -1},
		"sender high range":  {From: 99, To: 1, Block: 0},
		"receiver neg range": {From: 0, To: -2, Block: 0},
	}
	for name, tr := range cases {
		bad := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
			return append(dst, tr), nil
		})
		if _, err := Run(Config{Nodes: 3, Blocks: 2}, bad); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMaxTicksAbortsIdleScheduler(t *testing.T) {
	idle := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		return dst, nil
	})
	_, err := Run(Config{Nodes: 2, Blocks: 1, MaxTicks: 5}, idle)
	if !errors.Is(err, ErrMaxTicks) {
		t.Fatalf("err = %v, want ErrMaxTicks", err)
	}
}

func TestSchedulerErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	failing := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		return nil, boom
	})
	_, err := Run(Config{Nodes: 2, Blocks: 1}, failing)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

func TestTraceRecording(t *testing.T) {
	res, err := Run(Config{Nodes: 3, Blocks: 2, RecordTrace: true}, naivePipeline())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Ticks() != res.CompletionTime {
		t.Fatalf("trace has %d ticks, completion %d", res.Trace.Ticks(), res.CompletionTime)
	}
	total := 0
	for i := 0; i < res.Trace.Ticks(); i++ {
		total += res.Trace.TickLen(i)
		if res.Trace.TickLen(i) != res.UploadsPerTick[i] {
			t.Fatalf("tick %d: trace %d vs uploads %d", i+1, res.Trace.TickLen(i), res.UploadsPerTick[i])
		}
	}
	if total != res.TotalTransfers {
		t.Fatalf("trace total %d vs TotalTransfers %d", total, res.TotalTransfers)
	}
}

func TestClientCompletionTimes(t *testing.T) {
	res, err := Run(Config{Nodes: 4, Blocks: 3}, naivePipeline())
	if err != nil {
		t.Fatal(err)
	}
	// Chain: client v completes when the last block reaches it: k+v-1.
	for v := 1; v < 4; v++ {
		want := 3 + v - 1
		if res.ClientCompletion[v] != want {
			t.Fatalf("client %d completed at %d, want %d", v, res.ClientCompletion[v], want)
		}
	}
	if res.ClientCompletion[0] != 0 {
		t.Fatal("server completion should be 0")
	}
}

func TestStateAccessors(t *testing.T) {
	probe := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		if t == 1 {
			if s.N() != 3 || s.K() != 2 {
				return nil, errors.New("bad dimensions")
			}
			if !s.Has(0, 0) || !s.Has(0, 1) || s.Has(1, 0) {
				return nil, errors.New("bad initial ownership")
			}
			if s.CountOf(0) != 2 || s.CountOf(1) != 0 {
				return nil, errors.New("bad counts")
			}
			if s.ClientsComplete() != 0 || s.AllClientsComplete() {
				return nil, errors.New("bad completion state")
			}
			if s.Tick() != 0 {
				return nil, errors.New("tick should be 0 before first tick")
			}
		}
		return naivePipeline().Tick(t, s, dst)
	})
	if _, err := Run(Config{Nodes: 3, Blocks: 2}, probe); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiency(t *testing.T) {
	res := &Result{CompletionTime: 10, UsefulTransfers: 40}
	if got := res.Efficiency(8); got != 0.5 {
		t.Fatalf("Efficiency = %v, want 0.5", got)
	}
	empty := &Result{}
	if empty.Efficiency(8) != 0 {
		t.Fatal("zero-run efficiency should be 0")
	}
}

func TestRedundantTransferCountedNotUseful(t *testing.T) {
	// Server sends block 0 to client 1 twice in consecutive ticks, then
	// finishes the job.
	sched := SchedulerFunc(func(t int, s *State, dst []Transfer) ([]Transfer, error) {
		switch t {
		case 1, 2:
			dst = append(dst, Transfer{From: 0, To: 1, Block: 0})
		case 3:
			dst = append(dst, Transfer{From: 0, To: 1, Block: 1})
		}
		return dst, nil
	})
	res, err := Run(Config{Nodes: 2, Blocks: 2}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTransfers != 3 || res.UsefulTransfers != 2 {
		t.Fatalf("total=%d useful=%d, want 3/2", res.TotalTransfers, res.UsefulTransfers)
	}
}
