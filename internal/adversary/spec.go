package adversary

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses a command-line adversary specification of the form
//
//	freerider=0.2,corrupter=0.1,seed=7,period=4
//
// into Options. Recognized keys (all optional, comma-separated, order
// irrelevant): freerider, throttler, falseadv, corrupter, defector
// (strategy fractions in [0,1]); seed (uint64); period (throttle
// spacing); claimrate, corruptrate (behavior probabilities). The
// returned options are validated; an empty spec is an error — pass no
// flag at all to disable the layer.
func ParseSpec(spec string) (Options, error) {
	var o Options
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return o, fmt.Errorf("adversary: empty spec")
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return o, fmt.Errorf("adversary: spec entry %q is not key=value", part)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if key == "seed" {
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return o, fmt.Errorf("adversary: bad seed %q: %v", val, err)
			}
			o.Seed = seed
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return o, fmt.Errorf("adversary: bad value %q for %s: %v", val, key, err)
		}
		switch key {
		case "freerider", "free-rider":
			o.FreeRiderFrac = f
		case "throttler":
			o.ThrottlerFrac = f
		case "falseadv", "false-advertiser":
			o.FalseAdvertiserFrac = f
		case "corrupter":
			o.CorrupterFrac = f
		case "defector":
			o.DefectorFrac = f
		case "period":
			o.ThrottlePeriod = f
		case "claimrate":
			o.FalseClaimRate = f
		case "corruptrate":
			o.CorruptRate = f
		default:
			return o, fmt.Errorf("adversary: unknown spec key %q", key)
		}
	}
	if err := o.Validate(); err != nil {
		return o, err
	}
	return o, nil
}
