package adversary

import (
	"math"
	"sort"

	"barterdist/internal/checkpoint"
)

// Snapshot appends the plan's mutable behavior state to enc: the
// behavior RNG, the defector latches, and the throttler windows. The
// strategy assignment is included as a verification digest — it is
// fully determined by (n, Options.Seed), so on restore a mismatch
// means the snapshot was taken under a different adversary config.
func (p *Plan) Snapshot(enc *checkpoint.Encoder) {
	enc.Int(p.n)
	digest := make([]byte, p.n)
	for v, s := range p.strategy {
		digest[v] = byte(s)
	}
	enc.Bytes8(digest)
	p.behaviorRng.Snapshot(enc)
	enc.Bools(p.defected)
	enc.F64s(p.nextOpen)
}

// RestoreState overwrites the plan's mutable state from dec. The plan
// must have been rebuilt from the same (n, Options) — the encoded
// strategy assignment is checked against the fresh one.
func (p *Plan) RestoreState(dec *checkpoint.Decoder) error {
	n := dec.Int()
	digest := dec.Bytes8()
	if err := dec.Err(); err != nil {
		return err
	}
	if n != p.n || len(digest) != len(p.strategy) {
		return checkpoint.Corruptf("adversary: snapshot for %d nodes, plan has %d", n, p.n)
	}
	for v, s := range p.strategy {
		if digest[v] != byte(s) {
			return checkpoint.Corruptf("adversary: node %d strategy mismatch (snapshot %d, plan %d) — different seed or fractions", v, digest[v], s)
		}
	}
	if err := p.behaviorRng.RestoreState(dec); err != nil {
		return err
	}
	defected := dec.Bools()
	nextOpen := dec.F64s()
	if err := dec.Err(); err != nil {
		return err
	}
	if len(defected) != p.n || len(nextOpen) != p.n {
		return checkpoint.Corruptf("adversary: state slices sized %d/%d for %d nodes", len(defected), len(nextOpen), p.n)
	}
	for v, w := range nextOpen {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return checkpoint.Corruptf("adversary: node %d has invalid throttle window %v", v, w)
		}
		if defected[v] && p.strategy[v] != Defector {
			return checkpoint.Corruptf("adversary: node %d defected but is %v", v, p.strategy[v])
		}
	}
	copy(p.defected, defected)
	copy(p.nextOpen, nextOpen)
	return nil
}

// Snapshot appends the guard table to enc in ascending key order, so
// the encoding is deterministic regardless of map layout.
func (g *Guard) Snapshot(enc *checkpoint.Encoder) {
	keys := make([]uint64, 0, len(g.cells))
	for k := range g.cells { //lint:ordered keys are sorted below
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	enc.Int(len(keys))
	for _, k := range keys {
		c := g.cells[k]
		enc.U64(k)
		enc.Int(c.strikes)
		enc.F64(c.blockedUntil)
	}
}

// RestoreState overwrites the guard table from dec. Keys must be
// strictly ascending and every cell well-formed.
func (g *Guard) RestoreState(dec *checkpoint.Decoder) error {
	n := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if n < 0 {
		return checkpoint.Corruptf("adversary: negative guard cell count %d", n)
	}
	cells := make(map[uint64]guardCell, n)
	var prev uint64
	for i := 0; i < n; i++ {
		k := dec.U64()
		strikes := dec.Int()
		blockedUntil := dec.F64()
		if err := dec.Err(); err != nil {
			return err
		}
		if i > 0 && k <= prev {
			return checkpoint.Corruptf("adversary: guard keys not strictly ascending at entry %d", i)
		}
		if strikes <= 0 {
			return checkpoint.Corruptf("adversary: guard entry %d has %d strikes", i, strikes)
		}
		if math.IsNaN(blockedUntil) || math.IsInf(blockedUntil, 0) || blockedUntil < 0 {
			return checkpoint.Corruptf("adversary: guard entry %d blocked until %v", i, blockedUntil)
		}
		prev = k
		cells[k] = guardCell{strikes: strikes, blockedUntil: blockedUntil}
	}
	g.cells = cells
	return nil
}
