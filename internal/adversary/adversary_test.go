package adversary

import (
	"math"
	"testing"
)

func mustPlan(t *testing.T, n int, o Options) *Plan {
	t.Helper()
	p, err := NewPlan(n, o)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	return p
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{FreeRiderFrac: -0.1},
		{CorrupterFrac: 1.5},
		{FreeRiderFrac: 0.6, CorrupterFrac: 0.6},
		{FalseClaimRate: 2},
		{CorruptRate: math.NaN()},
		{ThrottlePeriod: math.Inf(1)},
		{ThrottlePeriod: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, o)
		}
	}
	good := Options{FreeRiderFrac: 0.25, CorrupterFrac: 0.25, Seed: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestNewPlanAssignment(t *testing.T) {
	p := mustPlan(t, 21, Options{Seed: 9, FreeRiderFrac: 0.25, CorrupterFrac: 0.25})
	// 20 clients, round(0.25*20)=5 each.
	if got := len(p.Of(FreeRider)); got != 5 {
		t.Errorf("free-riders = %d, want 5", got)
	}
	if got := len(p.Of(Corrupter)); got != 5 {
		t.Errorf("corrupters = %d, want 5", got)
	}
	if got := len(p.Of(Honest)); got != 10 {
		t.Errorf("honest clients = %d, want 10", got)
	}
	if p.Count() != 10 {
		t.Errorf("Count = %d, want 10", p.Count())
	}
	if !p.Honest(0) {
		t.Error("server must stay honest")
	}
	for _, v := range p.Of(Honest) {
		if v == 0 {
			t.Error("Of(Honest) must exclude the server")
		}
	}
	// Determinism: same seed, same assignment.
	q := mustPlan(t, 21, Options{Seed: 9, FreeRiderFrac: 0.25, CorrupterFrac: 0.25})
	for v := 0; v < 21; v++ {
		if p.Strategy(v) != q.Strategy(v) {
			t.Fatalf("node %d: %v vs %v across identical seeds", v, p.Strategy(v), q.Strategy(v))
		}
	}
	// Different seed must (for this size) move at least one node.
	r := mustPlan(t, 21, Options{Seed: 10, FreeRiderFrac: 0.25, CorrupterFrac: 0.25})
	same := true
	for v := 0; v < 21; v++ {
		if p.Strategy(v) != r.Strategy(v) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 9 and 10 produced identical assignments (suspicious)")
	}
}

func TestNewPlanRejectsAllAdversarial(t *testing.T) {
	if _, err := NewPlan(5, Options{FreeRiderFrac: 1}); err == nil {
		t.Fatal("expected error when every client is adversarial")
	}
	if _, err := NewPlan(1, Options{}); err == nil {
		t.Fatal("expected error for n=1")
	}
}

func TestAcquireSingleUse(t *testing.T) {
	p := mustPlan(t, 4, Options{FreeRiderFrac: 0.3})
	if err := p.Acquire(); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if err := p.Acquire(); err == nil {
		t.Fatal("second Acquire must fail")
	}
}

func TestFreeRiderAndDefector(t *testing.T) {
	p := mustPlan(t, 9, Options{Seed: 1, FreeRiderFrac: 0.25, DefectorFrac: 0.25})
	fr := p.Of(FreeRider)
	df := p.Of(Defector)
	if len(fr) != 2 || len(df) != 2 {
		t.Fatalf("assignment: %d free-riders, %d defectors, want 2+2", len(fr), len(df))
	}
	u := int(fr[0])
	if !p.Refuses(u, 0) || p.TransferFate(u, 0) != Refused {
		t.Error("free-rider must always refuse")
	}
	d := int(df[0])
	if p.Refuses(d, 0) {
		t.Error("defector must behave before completion")
	}
	p.NoteComplete(d)
	if !p.Refuses(d, 5) {
		t.Error("defector must refuse after completion")
	}
	if !math.IsInf(p.RetryAt(d), 1) {
		t.Error("defector refusal never lifts")
	}
	// Wiped rejoin does not reset the latch (NoteComplete has no inverse).
	if !p.Refuses(d, 100) {
		t.Error("defection must persist")
	}
}

func TestThrottlerWindow(t *testing.T) {
	p := mustPlan(t, 5, Options{Seed: 2, ThrottlerFrac: 0.5, ThrottlePeriod: 3})
	th := p.Of(Throttler)
	if len(th) != 2 {
		t.Fatalf("throttlers = %d, want 2", len(th))
	}
	u := int(th[0])
	if f := p.TransferFate(u, 10); f != Deliver {
		t.Fatalf("first upload fate = %v, want deliver", f)
	}
	if !p.Refuses(u, 11) || !p.Refuses(u, 12.9) {
		t.Error("window must stay closed for ThrottlePeriod")
	}
	if got := p.RetryAt(u); got != 13 {
		t.Errorf("RetryAt = %v, want 13", got)
	}
	if p.Refuses(u, 13) {
		t.Error("window must reopen at nextOpen")
	}
}

func TestDeliveryFateRates(t *testing.T) {
	p := mustPlan(t, 4, Options{Seed: 3, CorrupterFrac: 0.34, FalseAdvertiserFrac: 0.34, CorruptRate: 1, FalseClaimRate: 1})
	c := int(p.Of(Corrupter)[0])
	fa := int(p.Of(FalseAdvertiser)[0])
	for i := 0; i < 8; i++ {
		if f := p.DeliveryFate(c); f != Garbage {
			t.Fatalf("corrupter with rate 1 delivered %v", f)
		}
		if f := p.DeliveryFate(fa); f != Stalled {
			t.Fatalf("false-advertiser with rate 1 delivered %v", f)
		}
	}
	// Honest senders never draw: interleaving honest queries must not
	// perturb the adversary stream.
	q := mustPlan(t, 4, Options{Seed: 3, CorrupterFrac: 0.34, FalseAdvertiserFrac: 0.34, CorruptRate: 0.5, FalseClaimRate: 0.5})
	r := mustPlan(t, 4, Options{Seed: 3, CorrupterFrac: 0.34, FalseAdvertiserFrac: 0.34, CorruptRate: 0.5, FalseClaimRate: 0.5})
	hc := int(q.Of(Honest)[0])
	var a, b []Fate
	for i := 0; i < 32; i++ {
		q.DeliveryFate(hc) // interleaved honest no-ops
		a = append(a, q.DeliveryFate(int(q.Of(Corrupter)[0])))
		b = append(b, r.DeliveryFate(int(r.Of(Corrupter)[0])))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d: honest interleaving perturbed the stream (%v vs %v)", i, a[i], b[i])
		}
	}
}

func TestQuarantineBackoffAndBan(t *testing.T) {
	g, err := NewGuard(GuardOptions{BackoffBase: 2, BanThreshold: 3, ParolePeriod: 20})
	if err != nil {
		t.Fatalf("NewGuard: %v", err)
	}
	if g.Blocked(1, 2, 0) {
		t.Error("fresh table must not block")
	}
	g.Strike(1, 2, 0) // strike 1: backoff 2
	if !g.Blocked(1, 2, 1.9) || g.Blocked(1, 2, 2) {
		t.Error("strike 1 backoff window wrong")
	}
	if g.Blocked(3, 2, 1) {
		t.Error("scores are per-victim: node 3 never struck node 2")
	}
	g.Strike(1, 2, 2) // strike 2: backoff 4
	if !g.Blocked(1, 2, 5.9) || g.Blocked(1, 2, 6) {
		t.Error("strike 2 backoff window wrong")
	}
	g.Strike(1, 2, 6) // strike 3 = threshold: full parole period
	if !g.Blocked(1, 2, 25.9) || g.Blocked(1, 2, 26) {
		t.Error("ban must last ParolePeriod")
	}
	g.Strike(1, 2, 26) // post-parole strike: re-ban immediately
	if !g.Blocked(1, 2, 45.9) {
		t.Error("post-parole strike must re-ban for a full period")
	}
	if g.Strikes(1, 2) != 4 {
		t.Errorf("strikes = %d, want 4", g.Strikes(1, 2))
	}
}

func TestQuarantineBackoffCap(t *testing.T) {
	g, err := NewGuard(GuardOptions{BackoffBase: 4, BanThreshold: 100, ParolePeriod: 10})
	if err != nil {
		t.Fatalf("NewGuard: %v", err)
	}
	for i := 0; i < 10; i++ {
		g.Strike(2, 7, 0)
	}
	if !g.Blocked(2, 7, 9.9) || g.Blocked(2, 7, 10) {
		t.Error("backoff must cap at ParolePeriod")
	}
}

func TestParseSpec(t *testing.T) {
	o, err := ParseSpec("freerider=0.2, corrupter=0.1,seed=77,period=6,claimrate=0.4,corruptrate=0.9,falseadv=0.05,throttler=0.1,defector=0.05")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	want := Options{
		Seed: 77, FreeRiderFrac: 0.2, ThrottlerFrac: 0.1,
		FalseAdvertiserFrac: 0.05, CorrupterFrac: 0.1, DefectorFrac: 0.05,
		ThrottlePeriod: 6, FalseClaimRate: 0.4, CorruptRate: 0.9,
	}
	if o != want {
		t.Errorf("ParseSpec = %+v, want %+v", o, want)
	}
	for _, bad := range []string{"", "freerider", "freerider=x", "nope=0.1", "seed=-1", "freerider=0.9,corrupter=0.9"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): expected error", bad)
		}
	}
}
