package adversary

import (
	"fmt"
	"math"
)

// GuardOptions tunes the peer-scoring/quarantine table. The zero value
// selects the documented defaults.
type GuardOptions struct {
	// BackoffBase is the first-strike backoff, in ticks (or time
	// units); each further strike doubles it up to ParolePeriod.
	// 0 selects the default of 4.
	BackoffBase float64
	// BanThreshold is the strike count at which a peer is banned:
	// instead of a doubling backoff it is quarantined for a full
	// ParolePeriod, then paroled (one chance to behave; the next
	// strike re-bans immediately). 0 selects the default of 6.
	BanThreshold int
	// ParolePeriod is both the backoff cap and the ban length.
	// 0 selects the default of 64.
	ParolePeriod float64
}

// Validate checks the options without mutating them.
func (o *GuardOptions) Validate() error {
	if math.IsNaN(o.BackoffBase) || math.IsInf(o.BackoffBase, 0) || o.BackoffBase < 0 {
		return fmt.Errorf("adversary: BackoffBase = %v must be finite and >= 0", o.BackoffBase)
	}
	if o.BanThreshold < 0 {
		return fmt.Errorf("adversary: BanThreshold = %d must be >= 0", o.BanThreshold)
	}
	if math.IsNaN(o.ParolePeriod) || math.IsInf(o.ParolePeriod, 0) || o.ParolePeriod < 0 {
		return fmt.Errorf("adversary: ParolePeriod = %v must be finite and >= 0", o.ParolePeriod)
	}
	return nil
}

func (o GuardOptions) withDefaults() GuardOptions {
	if o.BackoffBase == 0 {
		o.BackoffBase = 4
	}
	if o.BanThreshold == 0 {
		o.BanThreshold = 6
	}
	if o.ParolePeriod == 0 {
		o.ParolePeriod = 64
	}
	return o
}

// guardCell is one (victim, offender) scoring entry.
type guardCell struct {
	strikes      int
	blockedUntil float64
}

// Guard is the defense-side peer-scoring/quarantine table: each node
// keeps an exponential-backoff score for every peer that has stalled
// it or served it garbage, and stops requesting from peers past the
// ban threshold until parole. The table is purely local knowledge —
// node v only ever records what happened to v — so it composes with
// any scheduler without leaking global information.
//
// Access is by key lookup only (never map iteration), so the table
// adds no iteration-order hazard to the determinism contract.
type Guard struct {
	opts  GuardOptions // post-default
	cells map[uint64]guardCell
}

// NewGuard validates opts and returns an empty table.
func NewGuard(opts GuardOptions) (*Guard, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return &Guard{opts: opts.withDefaults(), cells: make(map[uint64]guardCell)}, nil
}

// guardKey packs a (victim, offender) pair into one map key.
func guardKey(victim, offender int) uint64 {
	return uint64(uint32(victim))<<32 | uint64(uint32(offender))
}

// Strike records at time now that offender stalled victim or served
// it garbage. Backoff doubles per strike from BackoffBase, capped at
// ParolePeriod; at or past BanThreshold strikes the offender is
// quarantined for a full ParolePeriod (parole: when it expires the
// peer may be tried again, and the next strike re-bans immediately).
func (g *Guard) Strike(victim, offender int, now float64) {
	k := guardKey(victim, offender)
	c := g.cells[k]
	c.strikes++
	backoff := g.opts.ParolePeriod
	if c.strikes < g.opts.BanThreshold {
		b := g.opts.BackoffBase * math.Pow(2, float64(c.strikes-1))
		if b < backoff {
			backoff = b
		}
	}
	c.blockedUntil = now + backoff
	g.cells[k] = c
}

// Blocked reports whether victim should decline to deal with offender
// at time now. It is a pure lookup.
func (g *Guard) Blocked(victim, offender int, now float64) bool {
	c, ok := g.cells[guardKey(victim, offender)]
	return ok && now < c.blockedUntil
}

// Strikes returns the accumulated strike count victim holds against
// offender (0 if none).
func (g *Guard) Strikes(victim, offender int) int {
	return g.cells[guardKey(victim, offender)].strikes
}
