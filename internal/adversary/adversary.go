// Package adversary is the deterministic misbehavior layer shared by
// both simulators: where package fault models fail-stop adversity
// (crashes, churn, a lossy network), this package models *strategic*
// adversity — peers that participate in the protocol but deviate from
// it for their own benefit. It supplies the missing half of the
// paper's robustness argument: the whole point of barter (Section 3)
// is that an honest swarm should not be exploitable by selfish peers,
// so the repository needs peers that actually try.
//
// A Plan assigns one Strategy to each client (node 0, the server, is
// always honest — a malicious server makes every completion question
// vacuous) and then answers the engines' per-transfer questions:
//
//   - FreeRider downloads but never uploads (every requested upload is
//     silently refused);
//   - Throttler uploads at most one block per ThrottlePeriod ticks and
//     refuses in between;
//   - FalseAdvertiser claims blocks it does not hold: with probability
//     FalseClaimRate an upload it agreed to never materializes and the
//     requester's slot is wasted for the tick;
//   - Corrupter serves garbage: with probability CorruptRate the bytes
//     it uploads fail verification at the receiver and are discarded
//     (the receiver still paid the tick);
//   - Defector behaves honestly until it holds the whole file, then
//     leaves the upload market for good (a wiped rejoin does not bring
//     it back — it already got what it came for).
//
// A Plan is seeded, single-use, and composable with a fault.Plan: the
// strategy assignment and the behavior draws come from independent
// sub-streams of the seed, and engines consult the adversary before
// the fault layer (a block a free-rider never sent cannot also be lost
// in the network), so enabling one layer never perturbs the other's
// decision stream.
//
// The defense side lives next door: Guard is the per-node
// peer-scoring/quarantine table the randomized schedulers use to back
// off from peers that stall or serve garbage, and the barter ledgers
// (package mechanism) are the first-class economic defense — under
// strict or credit-limited barter a pure free-rider provably starves,
// which mechanism.VerifyStarvation checks on recorded traces.
package adversary

import (
	"fmt"
	"math"
	"sort"

	"barterdist/internal/xrand"
)

// Strategy labels a node's behavior.
type Strategy uint8

// The strategies. Honest is the zero value.
const (
	Honest Strategy = iota
	FreeRider
	Throttler
	FalseAdvertiser
	Corrupter
	Defector
)

// strategies lists every adversarial strategy in assignment order; the
// order is part of the determinism contract (a seed always carves the
// shuffled client list into the same segments).
var strategies = []Strategy{FreeRider, Throttler, FalseAdvertiser, Corrupter, Defector}

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Honest:
		return "honest"
	case FreeRider:
		return "free-rider"
	case Throttler:
		return "throttler"
	case FalseAdvertiser:
		return "false-advertiser"
	case Corrupter:
		return "corrupter"
	case Defector:
		return "defector"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// Fate is the adversary layer's verdict on one requested transfer.
type Fate uint8

// The fates. Deliver is the zero value: the transfer proceeds and the
// fault layer (if any) gets its usual say.
const (
	Deliver Fate = iota
	// Refused: the sender silently never sent (free-rider, defector
	// after completion, throttler outside its window). The receiver's
	// download slot was reserved and is wasted for the tick.
	Refused
	// Stalled: a false-advertiser claimed a block it does not hold; the
	// transfer never materializes and the receiver's slot is wasted.
	Stalled
	// Garbage: the bytes arrived but fail verification at the receiver
	// and are discarded — block verification at delivery is the first
	// defense, so a corrupt block never enters a node's cache.
	Garbage
)

// String implements fmt.Stringer.
func (f Fate) String() string {
	switch f {
	case Deliver:
		return "deliver"
	case Refused:
		return "refused"
	case Stalled:
		return "stalled"
	case Garbage:
		return "garbage"
	default:
		return fmt.Sprintf("fate(%d)", uint8(f))
	}
}

// Options configures a Plan. The zero value assigns no adversaries;
// engines treat a nil *Plan and an empty Plan identically.
type Options struct {
	// Seed drives the strategy assignment and every behavior draw.
	Seed uint64
	// FreeRiderFrac is the fraction of clients assigned FreeRider.
	FreeRiderFrac float64
	// ThrottlerFrac is the fraction assigned Throttler.
	ThrottlerFrac float64
	// FalseAdvertiserFrac is the fraction assigned FalseAdvertiser.
	FalseAdvertiserFrac float64
	// CorrupterFrac is the fraction assigned Corrupter.
	CorrupterFrac float64
	// DefectorFrac is the fraction assigned Defector.
	DefectorFrac float64
	// ThrottlePeriod is the minimum spacing, in ticks (or time units),
	// between a throttler's uploads. 0 selects the default of 4.
	ThrottlePeriod float64
	// FalseClaimRate is the probability a false-advertiser's agreed
	// upload stalls. 0 selects the default of 0.5.
	FalseClaimRate float64
	// CorruptRate is the probability a corrupter's upload fails
	// verification. 0 selects the default of 0.5.
	CorruptRate float64
}

// Validate checks the options without mutating them: every fraction
// and probability must lie in [0, 1], their sum must not exceed 1, and
// the throttle period must be finite and non-negative.
func (o *Options) Validate() error {
	frac := func(name string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("adversary: %s = %v must be in [0, 1]", name, v)
		}
		return nil
	}
	if err := frac("FreeRiderFrac", o.FreeRiderFrac); err != nil {
		return err
	}
	if err := frac("ThrottlerFrac", o.ThrottlerFrac); err != nil {
		return err
	}
	if err := frac("FalseAdvertiserFrac", o.FalseAdvertiserFrac); err != nil {
		return err
	}
	if err := frac("CorrupterFrac", o.CorrupterFrac); err != nil {
		return err
	}
	if err := frac("DefectorFrac", o.DefectorFrac); err != nil {
		return err
	}
	if sum := o.FreeRiderFrac + o.ThrottlerFrac + o.FalseAdvertiserFrac + o.CorrupterFrac + o.DefectorFrac; sum > 1 {
		return fmt.Errorf("adversary: strategy fractions sum to %v, must be <= 1", sum)
	}
	if err := frac("FalseClaimRate", o.FalseClaimRate); err != nil {
		return err
	}
	if err := frac("CorruptRate", o.CorruptRate); err != nil {
		return err
	}
	if math.IsNaN(o.ThrottlePeriod) || math.IsInf(o.ThrottlePeriod, 0) || o.ThrottlePeriod < 0 {
		return fmt.Errorf("adversary: ThrottlePeriod = %v must be finite and >= 0", o.ThrottlePeriod)
	}
	return nil
}

// The documented defaults applied by withDefaults when the
// corresponding Options field is zero. Exported so post-hoc auditors
// (mechanism.AuditAdversary) can reconstruct the effective
// configuration from a zero-valued field.
const (
	// DefaultThrottlePeriod is the default minimum spacing between a
	// throttler's uploads, in ticks.
	DefaultThrottlePeriod = 4.0
	// DefaultFalseClaimRate is the default false-advertiser stall
	// probability.
	DefaultFalseClaimRate = 0.5
	// DefaultCorruptRate is the default corrupter garbling probability.
	DefaultCorruptRate = 0.5
)

// withDefaults returns a copy with zero fields replaced by the
// documented defaults. The options must already be valid.
func (o Options) withDefaults() Options {
	if o.ThrottlePeriod == 0 {
		o.ThrottlePeriod = DefaultThrottlePeriod
	}
	if o.FalseClaimRate == 0 {
		o.FalseClaimRate = DefaultFalseClaimRate
	}
	if o.CorruptRate == 0 {
		o.CorruptRate = DefaultCorruptRate
	}
	return o
}

// fracOf returns the configured fraction for one strategy.
func (o *Options) fracOf(s Strategy) float64 {
	switch s {
	case FreeRider:
		return o.FreeRiderFrac
	case Throttler:
		return o.ThrottlerFrac
	case FalseAdvertiser:
		return o.FalseAdvertiserFrac
	case Corrupter:
		return o.CorrupterFrac
	case Defector:
		return o.DefectorFrac
	default:
		return 0
	}
}

// Plan is a seeded, single-use stream of behavior decisions for one
// run. Engines query it in a fixed order (apply order in the
// synchronous engine, event order in the asynchronous one), so a given
// seed always yields the same misbehavior regardless of the scheduler
// under test.
type Plan struct {
	opts     Options // post-default
	n        int
	strategy []Strategy
	count    int // adversarial clients

	behaviorRng *xrand.Rand // false-advertiser / corrupter draws

	defected []bool    // Defector latch: set once complete, never cleared
	nextOpen []float64 // Throttler: earliest time the next upload may start

	acquired bool
}

// NewPlan validates opts, assigns strategies over the n-node
// population (clients 1..n-1; node 0 stays honest), and returns a
// fresh Plan. The assignment shuffles the client list with a dedicated
// sub-stream of the seed and carves it into contiguous segments, one
// per strategy, of round(frac·(n-1)) nodes each. At least one honest
// client must remain — a swarm of nothing but adversaries has no
// completion question left to ask.
func NewPlan(n int, opts Options) (*Plan, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("adversary: n = %d, need >= 2 (a server and at least one client)", n)
	}
	o := opts.withDefaults()
	root := xrand.New(o.Seed)
	assignRng := root.Split()
	behaviorRng := root.Split()

	clients := make([]int, n-1)
	for i := range clients {
		clients[i] = i + 1
	}
	assignRng.Shuffle(clients)

	p := &Plan{
		opts:        o,
		n:           n,
		strategy:    make([]Strategy, n),
		behaviorRng: behaviorRng,
		defected:    make([]bool, n),
		nextOpen:    make([]float64, n),
	}
	next := 0
	for _, s := range strategies {
		cnt := int(math.Round(o.fracOf(s) * float64(n-1)))
		for i := 0; i < cnt && next < len(clients); i++ {
			p.strategy[clients[next]] = s
			next++
		}
	}
	p.count = next
	if p.count >= n-1 && p.count > 0 {
		return nil, fmt.Errorf("adversary: all %d clients assigned adversarial strategies; at least one honest client is required", n-1)
	}
	return p, nil
}

// Options returns the plan's post-default configuration.
func (p *Plan) Options() Options { return p.opts }

// Acquire marks the plan as consumed by an engine run. Reusing a plan
// across runs is a bug (the behavior stream would be a continuation,
// not a reproduction), so the second Acquire fails.
func (p *Plan) Acquire() error {
	if p.acquired {
		return fmt.Errorf("adversary: Plan already consumed by a previous run; build one Plan per run")
	}
	p.acquired = true
	return nil
}

// N returns the node count the plan was built for.
func (p *Plan) N() int { return p.n }

// Count returns the number of adversarial clients.
func (p *Plan) Count() int { return p.count }

// Strategy returns node v's assigned strategy (Honest for the server
// and every unassigned client).
func (p *Plan) Strategy(v int) Strategy { return p.strategy[v] }

// Strategies returns a copy of the full assignment, indexed by node
// id — the snapshot engines record into results so post-hoc audits can
// replay without the (single-use) plan.
func (p *Plan) Strategies() []Strategy {
	return append([]Strategy(nil), p.strategy...)
}

// Honest reports whether node v plays by the protocol.
func (p *Plan) Honest(v int) bool { return p.strategy[v] == Honest }

// Of returns the nodes assigned strategy s, in ascending id order.
func (p *Plan) Of(s Strategy) []int32 {
	var out []int32
	for v, sv := range p.strategy {
		if sv == s && s != Honest || sv == Honest && s == Honest && v > 0 {
			out = append(out, int32(v))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ThrottlePeriod returns the post-default throttle spacing.
func (p *Plan) ThrottlePeriod() float64 { return p.opts.ThrottlePeriod }

// Refuses reports whether node u would refuse to start an upload at
// time now: free-riders always, defectors once complete, throttlers
// while their window is closed. It is a pure query — no RNG is drawn
// and no state changes — so schedulers may call it freely when
// modeling a node's own decision not to offer (a node knows its own
// strategy; what it does not know is anyone else's).
func (p *Plan) Refuses(u int, now float64) bool {
	switch p.strategy[u] {
	case FreeRider:
		return true
	case Defector:
		return p.defected[u]
	case Throttler:
		return now < p.nextOpen[u]
	default:
		return false
	}
}

// RetryAt returns the earliest time a currently refusing node u may
// upload again: the throttler's window opening, or +Inf for refusals
// that never lift (free-riders, completed defectors). It is only
// meaningful while Refuses(u, now) is true.
func (p *Plan) RetryAt(u int) float64 {
	switch p.strategy[u] {
	case Throttler:
		return p.nextOpen[u]
	default:
		return math.Inf(1)
	}
}

// NoteUpload records that node u started an upload at time now; a
// throttler's window closes for ThrottlePeriod. Engines call it once
// per transfer that was not refused.
func (p *Plan) NoteUpload(u int, now float64) {
	if p.strategy[u] == Throttler {
		p.nextOpen[u] = now + p.opts.ThrottlePeriod
	}
}

// NoteComplete records that node v holds the whole file; a defector
// latches and refuses every subsequent upload, even across a wiped
// rejoin (it left — the slot's next occupant just happens to share its
// id).
func (p *Plan) NoteComplete(v int) {
	if p.strategy[v] == Defector {
		p.defected[v] = true
	}
}

// DeliveryFate samples the in-flight fate of a non-refused transfer
// from sender u: a false-advertiser's upload stalls with probability
// FalseClaimRate, a corrupter's fails verification with probability
// CorruptRate, and everyone else's delivers. Engines must call it
// exactly once per non-refused transfer, in a deterministic order
// (apply order / delivery-event order), so the behavior stream is
// reproducible. Honest senders never draw from the stream.
func (p *Plan) DeliveryFate(u int) Fate {
	switch p.strategy[u] {
	case FalseAdvertiser:
		if p.behaviorRng.Float64() < p.opts.FalseClaimRate {
			return Stalled
		}
	case Corrupter:
		if p.behaviorRng.Float64() < p.opts.CorruptRate {
			return Garbage
		}
	}
	return Deliver
}

// TransferFate is the synchronous engine's one-call verdict for a
// scheduled transfer from u at tick now: refusal first (free-rider,
// defector, closed throttle window), then the throttle bookkeeping and
// the in-flight behavior draw.
func (p *Plan) TransferFate(u int, now float64) Fate {
	if p.Refuses(u, now) {
		return Refused
	}
	p.NoteUpload(u, now)
	return p.DeliveryFate(u)
}
