package arrival

import (
	"strings"
	"testing"

	"barterdist/internal/checkpoint"
)

func TestValidateCollectsEveryError(t *testing.T) {
	o := Options{Rate: -1, EarlyExit: 1.5, Linger: -2, GrowthWindows: -1}
	err := o.Validate()
	if err == nil {
		t.Fatal("invalid options accepted")
	}
	for _, want := range []string{"Rate", "EarlyExit", "Linger", "GrowthWindows"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("multi-error does not mention %s: %v", want, err)
		}
	}
}

func TestValidateAccepts(t *testing.T) {
	o := Options{Rate: 2.5, EarlyExit: 0.1, SeedPolicy: SeedDepart, Linger: 3}
	if err := o.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	o = Options{Rate: 1, SeedPolicy: SeedStay}
	if err := o.Validate(); err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	o = Options{Rate: 1, SeedPolicy: SeedStay, Linger: 1}
	if err := o.Validate(); err == nil {
		t.Fatal("linger under SeedStay accepted")
	}
}

func TestPlanSingleUse(t *testing.T) {
	p, err := NewPlan(Options{Rate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := p.Acquire(); err == nil {
		t.Fatal("second Acquire succeeded")
	}
}

func TestArrivalStreamDeterministicAndIncreasing(t *testing.T) {
	draw := func() []float64 {
		p, err := NewPlan(Options{Seed: 7, Rate: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		times := make([]float64, 0, 100)
		for i := 0; i < 100; i++ {
			times = append(times, p.NextArrival())
			p.TakeArrival()
		}
		return times
	}
	a, b := draw(), draw()
	last := 0.0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across identical plans: %v vs %v", i, a[i], b[i])
		}
		if a[i] <= last {
			t.Fatalf("arrival %d = %v not strictly after %v", i, a[i], last)
		}
		last = a[i]
	}
	// Mean inter-arrival should be near 1/rate = 2.
	if mean := last / float64(len(a)); mean < 1 || mean > 4 {
		t.Errorf("mean inter-arrival %v wildly off 1/λ = 2", mean)
	}
}

func TestExitThreshold(t *testing.T) {
	p, _ := NewPlan(Options{Seed: 3, Rate: 1, EarlyExit: 0.5})
	selfish, coop := 0, 0
	const k = 10
	for i := 0; i < 1000; i++ {
		th := p.ExitThreshold(k)
		if th < 0 || th >= k {
			t.Fatalf("exit threshold %d outside [0, k-1]", th)
		}
		if th > 0 {
			selfish++
		} else {
			coop++
		}
	}
	if selfish < 400 || selfish > 600 {
		t.Errorf("selfish fraction %d/1000 far from EarlyExit = 0.5", selfish)
	}
	// EarlyExit 0 never draws; k = 1 has no partial file to defect with.
	p2, _ := NewPlan(Options{Seed: 3, Rate: 1})
	if th := p2.ExitThreshold(k); th != 0 {
		t.Errorf("EarlyExit 0 produced threshold %d", th)
	}
	p3, _ := NewPlan(Options{Seed: 3, Rate: 1, EarlyExit: 0.9})
	if th := p3.ExitThreshold(1); th != 0 {
		t.Errorf("k = 1 produced threshold %d", th)
	}
}

func TestWatchdogDivergence(t *testing.T) {
	opts := Options{Rate: 1, Window: 10, GrowthWindows: 3, GrowthFactor: 0.05, MinOccupancy: 4, AgeLimit: 1e9}
	w := NewWatchdog(opts)
	// Occupancy doubling every window: trips after GrowthWindows
	// consecutive growing windows (plus one baseline window).
	occ := 8
	tripAt := -1
	for tick := 0; tick < 200 && tripAt < 0; tick++ {
		if tick%10 == 9 {
			occ *= 2
		}
		if r := w.Observe(float64(tick), occ, 1); r != ReasonNone {
			if r != ReasonDivergence {
				t.Fatalf("wrong reason %v", r)
			}
			tripAt = tick
		}
	}
	if tripAt < 0 {
		t.Fatal("doubling occupancy never tripped the divergence alarm")
	}
	if again := w.Observe(float64(tripAt+1), 1, 1); again != ReasonDivergence {
		t.Errorf("tripped watchdog untripped: %v", again)
	}
}

func TestWatchdogFlatOccupancyStaysQuiet(t *testing.T) {
	opts := Options{Rate: 1, Window: 10, GrowthWindows: 3, GrowthFactor: 0.05, MinOccupancy: 4, AgeLimit: 1e9}
	w := NewWatchdog(opts)
	for tick := 0; tick < 1000; tick++ {
		occ := 50 + (tick%7 - 3) // bounded fluctuation
		if r := w.Observe(float64(tick), occ, 10); r != ReasonNone {
			t.Fatalf("flat occupancy tripped %v at tick %d", r, tick)
		}
	}
}

func TestWatchdogBelowFloorIgnoresGrowth(t *testing.T) {
	opts := Options{Rate: 1, Window: 5, GrowthWindows: 2, GrowthFactor: 0.05, MinOccupancy: 1000, AgeLimit: 1e9}
	w := NewWatchdog(opts)
	occ := 1
	for tick := 0; tick < 500; tick++ {
		if tick%5 == 4 {
			occ *= 2
			if occ > 900 {
				occ = 900 // stays under the floor
			}
		}
		if r := w.Observe(float64(tick), occ, 1); r != ReasonNone {
			t.Fatalf("sub-floor growth tripped %v", r)
		}
	}
}

func TestWatchdogStarvation(t *testing.T) {
	opts := Options{Rate: 1, Window: 10, GrowthWindows: 3, GrowthFactor: 0.05, MinOccupancy: 4, AgeLimit: 100}
	w := NewWatchdog(opts)
	if r := w.Observe(50, 10, 99); r != ReasonNone {
		t.Fatalf("age under the limit tripped %v", r)
	}
	if r := w.Observe(51, 10, 101); r != ReasonStarvation {
		t.Fatalf("age over the limit gave %v, want starvation", r)
	}
}

func TestPlanSnapshotRoundTrip(t *testing.T) {
	p, _ := NewPlan(Options{Seed: 11, Rate: 2, EarlyExit: 0.3})
	for i := 0; i < 17; i++ {
		p.TakeArrival()
		p.ExitThreshold(20)
	}
	enc := checkpoint.NewEncoder(64)
	p.Snapshot(enc)

	q, _ := NewPlan(Options{Seed: 11, Rate: 2, EarlyExit: 0.3})
	dec := checkpoint.NewDecoder(enc.Bytes())
	if err := q.RestoreState(dec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if p.NextArrival() != q.NextArrival() {
			t.Fatalf("arrival stream diverged after restore at draw %d", i)
		}
		if p.ExitThreshold(20) != q.ExitThreshold(20) {
			t.Fatalf("exit stream diverged after restore at draw %d", i)
		}
		p.TakeArrival()
		q.TakeArrival()
	}
}

func TestWatchdogSnapshotRoundTrip(t *testing.T) {
	opts := Options{Rate: 1, Window: 10, GrowthWindows: 3, GrowthFactor: 0.05, MinOccupancy: 4, AgeLimit: 1e9}
	w := NewWatchdog(opts)
	occ := 8
	for tick := 0; tick < 25; tick++ {
		if tick%10 == 9 {
			occ *= 2
		}
		w.Observe(float64(tick), occ, 1)
	}
	enc := checkpoint.NewEncoder(64)
	w.Snapshot(enc)
	w2 := NewWatchdog(opts)
	if err := w2.RestoreState(checkpoint.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Both copies must trip at the same observation from here on.
	for tick := 25; tick < 200; tick++ {
		if tick%10 == 9 {
			occ *= 2
		}
		a := w.Observe(float64(tick), occ, 1)
		b := w2.Observe(float64(tick), occ, 1)
		if a != b {
			t.Fatalf("restored watchdog diverged at tick %d: %v vs %v", tick, a, b)
		}
		if a == ReasonDivergence {
			return
		}
	}
	t.Fatal("neither watchdog tripped")
}
