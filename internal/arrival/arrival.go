// Package arrival is the deterministic open-system layer shared by
// both simulators: it schedules Poisson peer arrivals, selfish
// early-exit decisions, and seed-persistence policy, all driven by the
// repository's seeded RNG so that every open run is exactly
// reproducible.
//
// The paper (and every experiment before this package) studies a
// closed batch: all n clients present at tick 0, metric = completion
// time. Real swarms are a *process* — peers arrive at rate λ, download
// the file, and leave — and the interesting questions become
// stability ones: does the swarm occupancy stay bounded (ergodic), or
// does one block become rare enough that the population diverges?
// "On the stability of two-chunk file-sharing systems" (Norros–Reittu,
// PAPERS.md) proves both outcomes are reachable depending on the
// chunk-selection policy, which makes an open swarm a machine-checkable
// robustness target: a run now ends in a Verdict, not just a
// completion time.
//
// A Plan is a stream of open-system decisions:
//
//   - peer arrivals follow a Poisson process with rate Options.Rate
//     (arrivals per tick in the synchronous engine, per unit time in
//     the asynchronous one — the two time axes are identical, 1 tick =
//     1 unit);
//   - at each arrival the peer's exit behavior is drawn: with
//     probability Options.EarlyExit it is selfish and will depart
//     after collecting a uniformly chosen partial block count in
//     [1, k-1]; otherwise it downloads the whole file and then follows
//     the seed policy (leave at completion, linger, or stay);
//   - the server (node 0) is persistent: an open swarm with no
//     original seed makes every stability question vacuous.
//
// Engines give arriving peers fresh node ids in arrival order, so the
// cumulative population is capped by the engine's configured capacity
// (Config.Nodes); the plan itself is an unbounded stream.
//
// A Plan is single-use and stateful; engines call Acquire before
// consuming it so that accidentally sharing one Plan across two runs
// fails loudly instead of silently decorrelating the streams. Arrival
// times and exit draws come from two independent sub-streams of the
// seed, so changing EarlyExit does not perturb the arrival schedule of
// the same seed.
package arrival

import (
	"errors"
	"fmt"
	"math"

	"barterdist/internal/xrand"
)

// SeedPolicy selects what a peer does once it holds the whole file.
type SeedPolicy uint8

// The seed policies.
const (
	// SeedDepart makes a completed peer leave at the start of the next
	// tick (plus Options.Linger, if set). This is the Norros–Reittu
	// open-system model and the default.
	SeedDepart SeedPolicy = iota
	// SeedStay makes completed peers stay and seed until the run ends.
	// With SeedStay an open swarm is trivially stable for any λ once a
	// few peers complete, so it is mostly a control configuration.
	SeedStay
)

// String implements fmt.Stringer.
func (s SeedPolicy) String() string {
	switch s {
	case SeedDepart:
		return "depart"
	case SeedStay:
		return "stay"
	default:
		return fmt.Sprintf("seedpolicy(%d)", uint8(s))
	}
}

// Options configures a Plan and its watchdog. The zero value is
// invalid (an open system needs a positive arrival rate); engines
// treat a nil *Plan as "closed batch mode".
type Options struct {
	// Seed drives every arrival and exit decision.
	Seed uint64
	// Rate is the Poisson arrival rate λ in peers per tick (or per unit
	// time). Must be > 0.
	Rate float64
	// EarlyExit is the probability that an arriving peer is selfish and
	// departs after collecting only part of the file. Must be in [0, 1).
	EarlyExit float64
	// SeedPolicy selects what completed peers do (depart or stay).
	SeedPolicy SeedPolicy
	// Linger is how many ticks (time units) a completed peer keeps
	// seeding before departing, under SeedDepart. 0 = leave immediately.
	Linger float64

	// Watchdog thresholds. Zero values select engine defaults via
	// WithWatchdogDefaults; see that method for the concrete numbers.

	// Window is the occupancy-averaging window in ticks (time units).
	Window float64
	// GrowthWindows is how many consecutive windows of mean-occupancy
	// growth (each by at least GrowthFactor) trip the divergence alarm.
	GrowthWindows int
	// GrowthFactor is the per-window relative growth threshold ε: a
	// window counts as "growing" when its mean occupancy exceeds the
	// previous window's by more than a factor of 1+ε.
	GrowthFactor float64
	// MinOccupancy is the floor below which growth is never counted as
	// divergence — small swarms fluctuate wildly in relative terms.
	MinOccupancy int
	// AgeLimit trips the starvation alarm when any present, incomplete
	// peer has been in the swarm longer than this many ticks (units).
	AgeLimit float64
}

// Validate checks the options without mutating them and reports every
// problem at once (errors.Join), so a CLI can surface the full list in
// one round trip.
func (o *Options) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("arrival: "+format, args...))
	}
	if math.IsNaN(o.Rate) || math.IsInf(o.Rate, 0) || o.Rate <= 0 {
		bad("Rate = %v must be finite and > 0", o.Rate)
	}
	if math.IsNaN(o.EarlyExit) || o.EarlyExit < 0 || o.EarlyExit >= 1 {
		bad("EarlyExit = %v must be in [0, 1)", o.EarlyExit)
	}
	switch o.SeedPolicy {
	case SeedDepart, SeedStay:
	default:
		bad("unknown seed policy %d", uint8(o.SeedPolicy))
	}
	if math.IsNaN(o.Linger) || math.IsInf(o.Linger, 0) || o.Linger < 0 {
		bad("Linger = %v must be finite and >= 0", o.Linger)
	}
	if o.SeedPolicy == SeedStay && o.Linger != 0 {
		bad("Linger is meaningless under SeedPolicy stay")
	}
	if math.IsNaN(o.Window) || math.IsInf(o.Window, 0) || o.Window < 0 {
		bad("Window = %v must be finite and >= 0", o.Window)
	}
	if o.GrowthWindows < 0 {
		bad("GrowthWindows = %d must be >= 0", o.GrowthWindows)
	}
	if math.IsNaN(o.GrowthFactor) || math.IsInf(o.GrowthFactor, 0) || o.GrowthFactor < 0 {
		bad("GrowthFactor = %v must be finite and >= 0", o.GrowthFactor)
	}
	if o.MinOccupancy < 0 {
		bad("MinOccupancy = %d must be >= 0", o.MinOccupancy)
	}
	if math.IsNaN(o.AgeLimit) || math.IsInf(o.AgeLimit, 0) || o.AgeLimit < 0 {
		bad("AgeLimit = %v must be finite and >= 0", o.AgeLimit)
	}
	return errors.Join(errs...)
}

// WithWatchdogDefaults returns a copy of o with every zero watchdog
// threshold replaced by its default. blocks is the file size k: the
// starvation age limit scales with it, because even a stable peer's
// sojourn is at least k download slots.
//
// Defaults: Window 64, GrowthWindows 4, GrowthFactor 0.05,
// MinOccupancy 64, AgeLimit 50·k + 1000.
func (o Options) WithWatchdogDefaults(blocks int) Options {
	if o.Window == 0 {
		o.Window = 64
	}
	if o.GrowthWindows == 0 {
		o.GrowthWindows = 4
	}
	if o.GrowthFactor == 0 {
		o.GrowthFactor = 0.05
	}
	if o.MinOccupancy == 0 {
		o.MinOccupancy = 64
	}
	if o.AgeLimit == 0 {
		o.AgeLimit = 50*float64(blocks) + 1000
	}
	return o
}

// Plan is a seeded, single-use stream of open-system decisions.
// Engines query it in a fixed order (one arrival draw per TakeArrival,
// one exit draw per ExitThreshold, in arrival order), so a given seed
// always yields the same traffic regardless of what the scheduler
// under test does with it.
type Plan struct {
	opts Options

	arrivalRng *xrand.Rand // Poisson inter-arrival times
	exitRng    *xrand.Rand // selfish early-exit draws

	nextArrival float64
	acquired    bool
}

// NewPlan validates opts and returns a fresh Plan.
func NewPlan(opts Options) (*Plan, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	root := xrand.New(opts.Seed)
	p := &Plan{
		opts:       opts,
		arrivalRng: root.Split(),
		exitRng:    root.Split(),
	}
	p.nextArrival = p.drawArrival(0)
	return p, nil
}

// Options returns the plan's configuration.
func (p *Plan) Options() Options { return p.opts }

// Acquire marks the plan as consumed by an engine run. Reusing a plan
// across runs is a bug (the decision streams would be continuations,
// not reproductions), so the second Acquire fails.
func (p *Plan) Acquire() error {
	if p.acquired {
		return fmt.Errorf("arrival: Plan already consumed by a previous run; build one Plan per run")
	}
	p.acquired = true
	return nil
}

// drawArrival returns the next Poisson arrival strictly after from.
func (p *Plan) drawArrival(from float64) float64 {
	// Exponential inter-arrival; 1-U keeps the argument in (0, 1].
	u := p.arrivalRng.Float64()
	return from + -math.Log(1-u)/p.opts.Rate
}

// NextArrival returns the next pending arrival time. The stream is
// unbounded; engines stop consuming it when their node-id capacity is
// exhausted.
func (p *Plan) NextArrival() float64 { return p.nextArrival }

// TakeArrival consumes the pending arrival and draws the next one.
func (p *Plan) TakeArrival() {
	p.nextArrival = p.drawArrival(p.nextArrival)
}

// ExitThreshold draws the arriving peer's exit behavior: selfish peers
// return the block count (in [1, k-1]) after which they depart;
// cooperative peers return 0. Engines must call it exactly once per
// arrival, in arrival order, so the stream is reproducible. blocks is
// the file size k; with k == 1 there is no partial file to defect
// with, so every peer is cooperative.
func (p *Plan) ExitThreshold(blocks int) int {
	if p.opts.EarlyExit <= 0 {
		return 0
	}
	// Always burn the selfishness draw so the stream shape does not
	// depend on k.
	selfish := p.exitRng.Float64() < p.opts.EarlyExit
	if !selfish || blocks < 2 {
		return 0
	}
	return 1 + p.exitRng.Intn(blocks-1)
}
