package arrival

import (
	"math"

	"barterdist/internal/checkpoint"
)

// Snapshot appends the plan's mutable position to enc: the two
// sub-stream RNG states and the pending arrival time. The Options are
// NOT serialized — a resumed run rebuilds the plan from its own config
// (NewPlan + Acquire) and then overwrites the position, so a snapshot
// can never smuggle in a different traffic model.
func (p *Plan) Snapshot(enc *checkpoint.Encoder) {
	p.arrivalRng.Snapshot(enc)
	p.exitRng.Snapshot(enc)
	enc.F64(p.nextArrival)
}

// RestoreState overwrites the plan's mutable position from dec. The
// plan must already be acquired by the resuming engine; the fresh
// NewPlan's initial draws are discarded and replaced wholesale.
func (p *Plan) RestoreState(dec *checkpoint.Decoder) error {
	if err := p.arrivalRng.RestoreState(dec); err != nil {
		return err
	}
	if err := p.exitRng.RestoreState(dec); err != nil {
		return err
	}
	nextArrival := dec.F64()
	if err := dec.Err(); err != nil {
		return err
	}
	if math.IsNaN(nextArrival) || nextArrival < 0 {
		return checkpoint.Corruptf("arrival: invalid next arrival %v", nextArrival)
	}
	p.nextArrival = nextArrival
	return nil
}

// Snapshot appends the watchdog's accumulated window state to enc.
func (w *Watchdog) Snapshot(enc *checkpoint.Encoder) {
	enc.F64(w.winStart)
	enc.F64(w.winSum)
	enc.I64(w.winN)
	enc.F64(w.prevMean)
	enc.Bool(w.prevValid)
	enc.Int(w.growing)
	enc.U8(uint8(w.tripped))
}

// RestoreState overwrites the watchdog's window state from dec. The
// thresholds are not serialized: the resuming run rebuilds them from
// its own Options, mirroring Plan.RestoreState.
func (w *Watchdog) RestoreState(dec *checkpoint.Decoder) error {
	winStart := dec.F64()
	winSum := dec.F64()
	winN := dec.I64()
	prevMean := dec.F64()
	prevValid := dec.Bool()
	growing := dec.Int()
	tripped := Reason(dec.U8())
	if err := dec.Err(); err != nil {
		return err
	}
	if math.IsNaN(winStart) || winStart < 0 || math.IsNaN(winSum) || winSum < 0 || winN < 0 {
		return checkpoint.Corruptf("arrival: invalid watchdog window state")
	}
	if math.IsNaN(prevMean) || prevMean < 0 || growing < 0 {
		return checkpoint.Corruptf("arrival: invalid watchdog trend state")
	}
	switch tripped {
	case ReasonNone, ReasonDivergence, ReasonStarvation, ReasonBudget:
	default:
		return checkpoint.Corruptf("arrival: invalid watchdog reason %d", uint8(tripped))
	}
	w.winStart = winStart
	w.winSum = winSum
	w.winN = winN
	w.prevMean = prevMean
	w.prevValid = prevValid
	w.growing = growing
	w.tripped = tripped
	return nil
}
