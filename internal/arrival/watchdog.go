package arrival

import "fmt"

// Verdict is how an open-system run ended. Open runs always end in a
// verdict — the watchdog turns "would OOM or hang" into a truncated
// run with VerdictUnstable, so stability itself becomes a testable
// output.
type Verdict uint8

// The verdicts.
const (
	// VerdictNone is the zero value (run still in progress, or not an
	// open-system run).
	VerdictNone Verdict = iota
	// VerdictDrained means the arrival pool was exhausted and every
	// peer that stayed completed: the swarm emptied itself — the
	// ergodic outcome.
	VerdictDrained
	// VerdictUnstable means the watchdog tripped (occupancy divergence
	// or starvation) or the run hit its budget with work outstanding;
	// the run was truncated at that point.
	VerdictUnstable
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictNone:
		return "none"
	case VerdictDrained:
		return "drained"
	case VerdictUnstable:
		return "unstable"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Reason says why an Unstable verdict was issued.
type Reason uint8

// The reasons.
const (
	// ReasonNone accompanies every verdict except VerdictUnstable.
	ReasonNone Reason = iota
	// ReasonDivergence: mean occupancy grew by more than GrowthFactor
	// for GrowthWindows consecutive windows above the MinOccupancy
	// floor — the swarm is accumulating peers faster than it drains.
	ReasonDivergence
	// ReasonStarvation: some present, incomplete peer has been in the
	// swarm longer than AgeLimit — it is not making progress even if
	// the population looks bounded (e.g. the one-club holds the common
	// chunk and the rare one never propagates).
	ReasonStarvation
	// ReasonBudget: the engine's tick/time budget ran out before the
	// swarm drained; the bounded-run truncation fired.
	ReasonBudget
)

// String implements fmt.Stringer.
func (r Reason) String() string {
	switch r {
	case ReasonNone:
		return "none"
	case ReasonDivergence:
		return "occupancy-divergence"
	case ReasonStarvation:
		return "starvation-age"
	case ReasonBudget:
		return "budget-exhausted"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Watchdog monitors an open run for divergence and starvation. It is
// engine-agnostic: both the tick engine (integral times) and the event
// engine (continuous times) feed it Observe calls with monotonically
// non-decreasing timestamps, and it compares windowed mean occupancy
// across consecutive windows plus the age of the oldest incomplete
// peer against the thresholds in Options.
//
// The watchdog is pure bookkeeping over a deterministic observation
// stream, so its state snapshots into a checkpoint like any other
// engine state.
type Watchdog struct {
	window    float64
	windows   int
	factor    float64
	minOcc    int
	ageLimit  float64
	winStart  float64 // start time of the open window
	winSum    float64 // sum of occupancy samples in the open window
	winN      int64   // sample count in the open window
	prevMean  float64 // previous closed window's mean occupancy
	prevValid bool
	growing   int // consecutive growing windows so far
	tripped   Reason
}

// NewWatchdog builds a watchdog from opts; callers should have applied
// WithWatchdogDefaults first so zero thresholds mean "disabled" only
// when explicitly configured that way.
//
//lint:novalidate audited forwarder — engines build the watchdog from a Plan's Options, which NewPlan validated
func NewWatchdog(opts Options) *Watchdog {
	return &Watchdog{
		window:   opts.Window,
		windows:  opts.GrowthWindows,
		factor:   opts.GrowthFactor,
		minOcc:   opts.MinOccupancy,
		ageLimit: opts.AgeLimit,
	}
}

// Tripped returns the alarm reason, or ReasonNone.
func (w *Watchdog) Tripped() Reason { return w.tripped }

// Observe feeds one sample: the current time, the number of present
// incomplete peers, and the age of the oldest such peer (0 when the
// swarm is empty of incomplete peers). It returns the alarm reason the
// moment a threshold is crossed, and keeps returning it afterwards —
// a tripped watchdog never untrips, so engines can truncate at first
// notice or poll lazily without missing it.
func (w *Watchdog) Observe(now float64, occupancy int, oldestAge float64) Reason {
	if w.tripped != ReasonNone {
		return w.tripped
	}
	if w.ageLimit > 0 && oldestAge > w.ageLimit {
		w.tripped = ReasonStarvation
		return w.tripped
	}
	if w.window <= 0 || w.windows <= 0 {
		return ReasonNone
	}
	for now >= w.winStart+w.window {
		w.closeWindow()
		if w.tripped != ReasonNone {
			return w.tripped
		}
	}
	w.winSum += float64(occupancy)
	w.winN++
	return ReasonNone
}

// closeWindow finalizes the open window, compares it against the
// previous one, and starts the next. Empty windows (no samples — the
// event engine can skip quiet stretches) inherit the previous mean, so
// a quiet swarm never looks like growth.
func (w *Watchdog) closeWindow() {
	mean := w.prevMean
	if w.winN > 0 {
		mean = w.winSum / float64(w.winN)
	}
	if w.prevValid && mean >= float64(w.minOcc) && mean > w.prevMean*(1+w.factor) {
		w.growing++
		if w.growing >= w.windows {
			w.tripped = ReasonDivergence
		}
	} else {
		w.growing = 0
	}
	w.prevMean = mean
	w.prevValid = true
	w.winStart += w.window
	w.winSum = 0
	w.winN = 0
}

// OpenResult aggregates the robustness instrumentation of an open run.
// Both engines populate one when Config.Arrivals is set.
type OpenResult struct {
	// Verdict and Reason say how the run ended; Verdict is never
	// VerdictNone on a finished open run.
	Verdict Verdict
	Reason  Reason
	// Arrived counts peers that entered the swarm; Departed counts
	// peers that left it (for any reason). Completed counts arrivals
	// that finished the whole file; EarlyExits counts selfish
	// departures before completion.
	Arrived    int
	Departed   int
	Completed  int
	EarlyExits int
	// PeakOccupancy and FinalOccupancy are the maximum and last counts
	// of present incomplete peers; Occupancy is the full per-tick
	// trajectory (synchronous engine only, and only with RecordTrace).
	PeakOccupancy  int
	FinalOccupancy int
	Occupancy      []int32
	// SojournMean and SojournMax summarize completed peers' sojourn
	// times (arrival → completion), in ticks/time units.
	SojournMean float64
	SojournMax  float64
	// ArrivalTime[v] is when node v entered the swarm (0 for the server
	// and for node ids never used); indexed by node id.
	ArrivalTime []float64
}
