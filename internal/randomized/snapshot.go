package randomized

import (
	"fmt"

	"barterdist/internal/checkpoint"
	"barterdist/internal/shard"
	"barterdist/internal/simulate"
)

// Both randomized-family schedulers implement
// simulate.CheckpointableScheduler. What gets serialized is exactly the
// state that survives a tick boundary and cannot be rebuilt from the
// engine's restored State:
//
//   - the base RNG and the shard.Slots lane streams (the scheduler's
//     entire decision stream),
//   - the credit ledger and quarantine table (economic history),
//   - freq (rarity counts carry speculative increments for transfers
//     the engine will only report lost at the NEXT beginTick, so a
//     from-scratch recount would disagree),
//   - noPeerAtCount (whether a sender skips its scan decides whether
//     it draws from its lane stream).
//
// A lane-count sentinel (shard.Slots) precedes the lane streams: it
// doubles as a format version, so a checkpoint written under a
// different logical decomposition fails loudly instead of resuming a
// subtly different schedule.
//
// Per-tick member orders are NOT serialized: each tick copies the fixed
// member list and shuffles it fresh from the lane stream, so the order
// is a pure function of serialized state. Everything epoch-stamped
// (downUsed, incoming, reservations) is provably dead at a tick
// boundary — stale stamps read as zero — and the candidate set and
// eligibility index are rebuilt from the restored ground truth in
// setup, which agrees with the incremental maintenance at every
// boundary (TestCandidateSetMatchesScan and TestEligIndexMatchesScan
// pin that invariant). Last tick's committed-transfer buffer and
// touched list are NOT serialized either: the engine applies the
// tick's transfers before checkpointing, so the ground truth the
// restore rebuilds from already reflects them — the rebuild reproduces
// exactly what folding the buffers at the next beginTick would have.
// The one place a rebuilt index could diverge from an incrementally
// maintained one is the internal order of its member lists, which is
// why the exact pass selects by stateless max-priority instead of
// enumeration-order reservoir sampling (see pickReceiverComplete).

var (
	_ simulate.CheckpointableScheduler = (*Scheduler)(nil)
	_ simulate.CheckpointableScheduler = (*TriangularScheduler)(nil)
)

// snapshotLanes writes the lane-count sentinel and the lane streams.
func snapshotLanes(enc *checkpoint.Encoder, lanes *[shard.Slots]*lane) {
	enc.Int(shard.Slots)
	for _, ln := range lanes {
		ln.rng.Snapshot(enc)
	}
}

// restoreLanes validates the sentinel and restores the lane streams.
func restoreLanes(dec *checkpoint.Decoder, lanes *[shard.Slots]*lane) error {
	slots := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if slots != shard.Slots {
		return checkpoint.Corruptf("randomized: checkpoint has %d shard lanes, this build has %d", slots, shard.Slots)
	}
	for _, ln := range lanes {
		if err := ln.rng.RestoreState(dec); err != nil {
			return err
		}
	}
	return nil
}

// SnapshotState implements simulate.CheckpointableScheduler.
func (s *Scheduler) SnapshotState(enc *checkpoint.Encoder) error {
	if s.opts.RewireEvery > 0 {
		// The overlay itself mutates mid-run; serializing graphs is out
		// of scope, so refuse loudly instead of resuming a wrong overlay.
		return fmt.Errorf("randomized: checkpointing is not supported with RewireEvery > 0")
	}
	if !s.init {
		return fmt.Errorf("randomized: cannot snapshot before the first tick")
	}
	s.rng.Snapshot(enc)
	snapshotLanes(enc, &s.lanes)
	enc.Bool(s.ledger != nil)
	if s.ledger != nil {
		s.ledger.Snapshot(enc)
	}
	enc.Bool(s.guard != nil)
	if s.guard != nil {
		s.guard.Snapshot(enc)
	}
	enc.Ints(s.freq)
	enc.Ints(s.noPeerAtCount)
	return nil
}

// RestoreState implements simulate.CheckpointableScheduler. st must be
// the engine's already-restored state; setup rebuilds the candidate set,
// the eligibility index, and the lanes from it before the serialized
// fields overwrite the rest.
func (s *Scheduler) RestoreState(dec *checkpoint.Decoder, st *simulate.State) error {
	if s.opts.RewireEvery > 0 {
		return fmt.Errorf("randomized: checkpointing is not supported with RewireEvery > 0")
	}
	if !s.init {
		if err := s.setup(st); err != nil {
			return err
		}
	}
	if err := s.rng.RestoreState(dec); err != nil {
		return err
	}
	if err := restoreLanes(dec, &s.lanes); err != nil {
		return err
	}
	if dec.Bool() != (s.ledger != nil) {
		if dec.Err() == nil {
			return checkpoint.Corruptf("randomized: ledger presence mismatch (different CreditLimit?)")
		}
	}
	if s.ledger != nil {
		if err := s.ledger.RestoreState(dec); err != nil {
			return err
		}
	}
	if dec.Bool() != (s.guard != nil) {
		if dec.Err() == nil {
			return checkpoint.Corruptf("randomized: guard presence mismatch (different adversary config?)")
		}
	}
	if s.guard != nil {
		if err := s.guard.RestoreState(dec); err != nil {
			return err
		}
	}
	freq := dec.Ints()
	noPeer := dec.Ints()
	if err := dec.Err(); err != nil {
		return err
	}
	if err := restoreFreq(s.freq, freq, s.k); err != nil {
		return err
	}
	if len(noPeer) != s.n {
		return checkpoint.Corruptf("randomized: no-peer cache sized %d for %d nodes", len(noPeer), s.n)
	}
	for v, c := range noPeer {
		if c < -1 || c > s.k {
			return checkpoint.Corruptf("randomized: no-peer cache entry %d = %d out of range", v, c)
		}
	}
	copy(s.noPeerAtCount, noPeer)
	s.touched = s.touched[:0]
	s.committed = s.committed[:0]
	return nil
}

// SnapshotState implements simulate.CheckpointableScheduler.
//
// intent/approved/intenders are NOT serialized: the next Tick resets
// exactly last tick's intenders before reading anything, so an empty
// table reproduces the reset's effect verbatim.
func (ts *TriangularScheduler) SnapshotState(enc *checkpoint.Encoder) error {
	if !ts.init {
		return fmt.Errorf("randomized: cannot snapshot before the first tick")
	}
	ts.rng.Snapshot(enc)
	snapshotLanes(enc, &ts.lanes)
	ts.ledger.Snapshot(enc)
	enc.Bool(ts.guard != nil)
	if ts.guard != nil {
		ts.guard.Snapshot(enc)
	}
	enc.Ints(ts.freq)
	return nil
}

// RestoreState implements simulate.CheckpointableScheduler.
func (ts *TriangularScheduler) RestoreState(dec *checkpoint.Decoder, st *simulate.State) error {
	if !ts.init {
		if err := ts.setup(st); err != nil {
			return err
		}
	}
	if err := ts.rng.RestoreState(dec); err != nil {
		return err
	}
	if err := restoreLanes(dec, &ts.lanes); err != nil {
		return err
	}
	if err := ts.ledger.RestoreState(dec); err != nil {
		return err
	}
	if dec.Bool() != (ts.guard != nil) {
		if dec.Err() == nil {
			return checkpoint.Corruptf("randomized: guard presence mismatch (different adversary config?)")
		}
	}
	if ts.guard != nil {
		if err := ts.guard.RestoreState(dec); err != nil {
			return err
		}
	}
	freq := dec.Ints()
	if err := dec.Err(); err != nil {
		return err
	}
	if err := restoreFreq(ts.freq, freq, ts.k); err != nil {
		return err
	}
	ts.intenders = ts.intenders[:0]
	for i := range ts.intent {
		ts.intent[i] = -1
		ts.approved[i] = false
	}
	return nil
}

// restoreFreq validates and installs serialized rarity counts.
func restoreFreq(dst, src []int, k int) error {
	if len(src) != k {
		return checkpoint.Corruptf("randomized: freq sized %d for %d blocks", len(src), k)
	}
	for b, f := range src {
		if f < 0 {
			return checkpoint.Corruptf("randomized: freq[%d] = %d negative", b, f)
		}
	}
	copy(dst, src)
	return nil
}
