package randomized

import (
	"fmt"
	"slices"
	"sort"

	"barterdist/internal/adversary"
	"barterdist/internal/fault"
	"barterdist/internal/graph"
	"barterdist/internal/mechanism"
	"barterdist/internal/shard"
	"barterdist/internal/simulate"
	"barterdist/internal/xrand"
)

// TriangularOptions configures the triangular-barter randomized
// scheduler.
type TriangularOptions struct {
	// Graph is the overlay network (required; triangular barter is a
	// low-degree-overlay mechanism).
	Graph *graph.Graph
	// Policy is the block-selection policy; zero value means Random.
	Policy Policy
	// CreditLimit is the per-pair credit s for transfers that are not
	// settled by a cycle. Default 1.
	CreditLimit int
	// CycleLimit is the longest settlement cycle accepted: 2 admits only
	// direct exchanges, 3 is the paper's triangular barter, larger
	// values approach the "cyclic barter" generalization the paper notes
	// is nearly a cash economy. Default 3.
	CycleLimit int
	// DownloadCap mirrors the engine configuration (0 = unlimited).
	DownloadCap int
	// Seed makes the run reproducible.
	Seed uint64
	// ShardWorkers mirrors Options.ShardWorkers: how many OS workers
	// resolve the intent lanes concurrently. The schedule is
	// byte-identical for every value.
	ShardWorkers int
}

// TriangularScheduler implements the randomized algorithm under the
// triangular barter mechanism of Section 3.3 — the algorithm the paper
// leaves as future work.
//
// Each tick runs in two phases:
//
//  1. Intent: every node with data picks one random interested neighbor
//     with spare download capacity, ignoring credit (as if a handshake
//     proposed the transfer). The intent phase runs as sharded rounds
//     exactly like Scheduler.Tick: lanes propose concurrently against
//     the committed capacity budget plus their own reservations, the
//     canonical merge re-checks capacity (the only constraint another
//     lane can consume mid-phase — credit, interest, and quarantine are
//     static until transfers are emitted) and defers losers to the next
//     round with fresh draws.
//  2. Settlement: intents a node can afford under its per-pair credit
//     are approved directly and charged to the ledger. The remaining
//     intents form a functional graph (one outgoing intent per node);
//     every directed cycle of length <= CycleLimit in that graph is
//     approved credit-free — all participants upload simultaneously, so
//     the exchange is self-enforcing exactly as in the paper's
//     description ("u uploads to v if v is simultaneously uploading to w
//     and w to u"). Unsettled intents are dropped and the node stays
//     silent for the tick.
//
// The resulting trace always passes mechanism.VerifyTriangular with the
// same credit limit (asserted in tests), and for CycleLimit = 2 it
// degenerates to credit-limited barter.
type TriangularScheduler struct {
	opts TriangularOptions
	// rng is the base stream. No pairing draw comes from it (those all
	// live on the lane streams); it is retained for snapshot-format
	// symmetry with Scheduler and future lane-independent draws.
	rng    *xrand.Rand
	ledger *mechanism.Ledger
	// guard mirrors Scheduler.guard: a per-receiver quarantine table
	// created lazily when the simulation reports an adversary plan.
	// Credit clawback is deliberately NOT applied here — a dropped
	// transfer may have settled as part of a 2- or 3-cycle, in which
	// case it consumed no credit and there is nothing per-transfer to
	// claw back; the quarantine table is the triangular defense.
	guard *adversary.Guard

	n, k    int
	init    bool
	workers int

	freq []int
	// downUsed and incoming are epoch-stamped scratch, mirroring
	// Scheduler: entries are live only when their stamp equals the
	// current tick, so no per-tick O(n) zeroing pass is needed.
	downUsed      []int
	downStamp     []int32
	incoming      [][]int32
	incomingStamp []int32
	curTick       int32
	intent        []int32 // intent[u] = chosen receiver, -1 if none
	approved      []bool  // per-tick settlement scratch, reused across ticks
	// intenders lists the nodes that filed an intent this tick; the
	// settlement phases iterate it (sorted ascending, the canonical
	// settlement order) and the next tick resets exactly these
	// intent/approved entries.
	intenders []int32

	lanes      [shard.Slots]*lane
	laneTask   func(sg int) error
	curState   *simulate.State
	curRound   int32
	roundStamp int32
}

// downUsedOf returns v's download budget consumed this tick.
func (ts *TriangularScheduler) downUsedOf(v int) int {
	if ts.downStamp[v] != ts.curTick {
		return 0
	}
	return ts.downUsed[v]
}

// bumpDownUsed increments v's consumed download budget for this tick.
func (ts *TriangularScheduler) bumpDownUsed(v int) {
	if ts.downStamp[v] != ts.curTick {
		ts.downStamp[v] = ts.curTick
		ts.downUsed[v] = 0
	}
	ts.downUsed[v]++
}

// laneRes returns this lane's in-round intent reservations for v on top
// of the committed budget.
func (ts *TriangularScheduler) laneRes(ln *lane, v int) int {
	if ln.resStamp[v] != ts.roundStamp {
		return 0
	}
	return int(ln.resDown[v])
}

// incomingOf returns the blocks already scheduled toward v this tick.
func (ts *TriangularScheduler) incomingOf(v int) []int32 {
	if ts.incomingStamp[v] != ts.curTick {
		return nil
	}
	return ts.incoming[v]
}

// addIncoming records one more block in flight to v this tick.
func (ts *TriangularScheduler) addIncoming(v int, b int32) {
	if ts.incomingStamp[v] != ts.curTick {
		ts.incomingStamp[v] = ts.curTick
		ts.incoming[v] = ts.incoming[v][:0]
	}
	ts.incoming[v] = append(ts.incoming[v], b)
}

var _ simulate.Scheduler = (*TriangularScheduler)(nil)

// Validate checks the options without mutating them. Zero values with
// documented defaults (Policy, CreditLimit, CycleLimit) are accepted.
func (o *TriangularOptions) Validate() error {
	if o.Graph == nil {
		return fmt.Errorf("randomized: triangular barter requires an overlay graph")
	}
	switch o.Policy {
	case 0, Random, RarestFirst, LocalRare:
	default:
		return fmt.Errorf("randomized: unknown policy %d", int(o.Policy))
	}
	if o.CycleLimit != 0 && o.CycleLimit < 2 {
		return fmt.Errorf("randomized: cycle limit %d must be >= 2", o.CycleLimit)
	}
	if o.ShardWorkers < 0 {
		return fmt.Errorf("randomized: negative shard workers %d", o.ShardWorkers)
	}
	return nil
}

// NewTriangular returns a triangular-barter scheduler.
func NewTriangular(opts TriangularOptions) (*TriangularScheduler, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Policy == 0 {
		opts.Policy = Random
	}
	if opts.CreditLimit == 0 {
		opts.CreditLimit = 1
	}
	if opts.CycleLimit == 0 {
		opts.CycleLimit = 3
	}
	ledger, err := mechanism.NewLedger(opts.CreditLimit)
	if err != nil {
		return nil, err
	}
	return &TriangularScheduler{
		opts:    opts,
		rng:     xrand.New(opts.Seed),
		ledger:  ledger,
		workers: shard.Workers(opts.ShardWorkers),
	}, nil
}

// Ledger exposes the credit ledger for inspection.
func (ts *TriangularScheduler) Ledger() *mechanism.Ledger { return ts.ledger }

func (ts *TriangularScheduler) setup(st *simulate.State) error {
	ts.n, ts.k = st.N(), st.K()
	if ts.opts.Graph.N() != ts.n {
		return fmt.Errorf("randomized: overlay has %d vertices but simulation has %d nodes",
			ts.opts.Graph.N(), ts.n)
	}
	ts.freq = make([]int, ts.k)
	for b := range ts.freq {
		ts.freq[b] = 1
	}
	ts.downUsed = make([]int, ts.n)
	ts.downStamp = make([]int32, ts.n)
	ts.incoming = make([][]int32, ts.n)
	ts.incomingStamp = make([]int32, ts.n)
	ts.intent = make([]int32, ts.n)
	for i := range ts.intent {
		ts.intent[i] = -1
	}
	ts.approved = make([]bool, ts.n)
	streams := shard.Streams(ts.opts.Seed)
	for sg := 0; sg < shard.Slots; sg++ {
		members := shard.Members(ts.n, sg)
		ln := &lane{
			rng:      streams[sg],
			members:  members,
			order:    make([]int32, len(members)),
			resStamp: make([]int32, ts.n),
			resDown:  make([]int32, ts.n),
		}
		for i := range ln.resStamp {
			ln.resStamp[i] = -1 // live round stamps are always positive
		}
		ts.lanes[sg] = ln
	}
	ts.laneTask = func(sg int) error {
		ts.runIntentLane(ts.lanes[sg])
		return nil
	}
	if st.Adversarial() {
		guard, err := adversary.NewGuard(adversary.GuardOptions{})
		if err != nil {
			return err
		}
		ts.guard = guard
	}
	ts.init = true
	return nil
}

// runIntentLane resolves one lane's intent proposals for the current
// round: round 0 visits the lane's members in this tick's shuffled
// order, later rounds revisit exactly the members whose proposal the
// merge deferred on capacity.
func (ts *TriangularScheduler) runIntentLane(ln *lane) {
	st := ts.curState
	ln.intents = ln.intents[:0]
	if ts.curRound == 0 {
		copy(ln.order, ln.members)
		shard.Shuffle32(ln.rng, ln.order)
		for _, uu := range ln.order {
			u := int(uu)
			if !st.Alive(u) || st.CountOf(u) == 0 {
				continue
			}
			if st.Refuses(u) {
				continue
			}
			ts.proposeIntent(ln, st, u)
		}
		return
	}
	for _, uu := range ln.pend {
		ts.proposeIntent(ln, st, int(uu))
	}
}

// proposeIntent makes one intent decision for u and stages it with a
// lane-local capacity reservation.
func (ts *TriangularScheduler) proposeIntent(ln *lane, st *simulate.State, u int) {
	v := ts.pickIntent(ln, st, u)
	if v < 0 {
		return
	}
	if ln.resStamp[v] == ts.roundStamp {
		ln.resDown[v]++
	} else {
		ln.resStamp[v] = ts.roundStamp
		ln.resDown[v] = 1
	}
	ln.intents = append(ln.intents, intent{u: int32(u), v: int32(v), b: -1, prev: -1})
}

// Tick implements simulate.Scheduler.
func (ts *TriangularScheduler) Tick(_ int, st *simulate.State, dst []simulate.Transfer) ([]simulate.Transfer, error) {
	if !ts.init {
		if err := ts.setup(st); err != nil {
			return nil, err
		}
	}
	// Fault awareness mirrors Scheduler.beginTick: rarity statistics
	// are maintained incrementally — engine-reported losses undo the
	// speculative increments for transfers that never landed, a crash
	// subtracts the victim's holdings word-parallel, and a rejoin adds
	// them back (zero for wiped rejoiners, whose pre-wipe holdings were
	// subtracted at crash time). Fault-free runs take no branch and
	// never consume RNG.
	for _, lt := range st.LostLastTick() {
		ts.freq[lt.Block]--
		if ts.guard != nil && (lt.Adversary || lt.Corrupt) {
			ts.guard.Strike(int(lt.To), int(lt.From), float64(st.Tick()+1))
		}
	}
	for _, ev := range st.FaultEvents() {
		switch ev.Kind {
		case fault.Crash, fault.Depart:
			// An open-system departure withdraws the leaver's holdings
			// exactly like a permanent crash.
			st.Blocks(int(ev.Node)).AccumulateCounts(ts.freq, -1)
		case fault.Rejoin, fault.Arrive:
			// An arrival's set is empty, so this is a no-op that keeps
			// the two kinds on one code path.
			st.Blocks(int(ev.Node)).AccumulateCounts(ts.freq, 1)
		}
	}
	ts.curTick = int32(st.Tick() + 1)
	// Reset only last tick's intenders: everyone else's intent/approved
	// entries are already clear, and downUsed/incoming invalidate
	// themselves through their epoch stamps.
	for _, u := range ts.intenders {
		ts.intent[u] = -1
		ts.approved[u] = false
	}
	ts.intenders = ts.intenders[:0]

	// Phase 1: intents, as sharded rounds. The merge re-validates only
	// download capacity — the one shared budget lanes consume from each
	// other — and defers losers; the first proposal of every round was
	// validated against exactly the state the merge starts from, so each
	// round with proposals commits at least one and the loop terminates.
	ts.curState = st
	for round := int32(0); ; round++ {
		ts.curRound = round
		ts.roundStamp++
		if err := shard.Run(ts.workers, ts.laneTask); err != nil {
			ts.curState = nil
			return nil, err
		}
		proposals := 0
		for _, ln := range ts.lanes {
			proposals += len(ln.intents)
		}
		if proposals == 0 {
			break
		}
		// Lane order rotates by (tick + round) mod Slots, mirroring
		// Scheduler.merge: a fixed order would give one lane permanent
		// first claim on contended receiver slots, which can starve a
		// receiver whose low-lane suitors are credit-blocked.
		startLane := (int(ts.curTick) + int(round)) % shard.Slots
		for i := 0; i < shard.Slots; i++ {
			ln := ts.lanes[(startLane+i)%shard.Slots]
			ln.pend = ln.pend[:0]
			for i := range ln.intents {
				it := &ln.intents[i]
				v := int(it.v)
				if ts.opts.DownloadCap != simulate.Unlimited && ts.downUsedOf(v) >= ts.opts.DownloadCap {
					ln.pend = append(ln.pend, it.u)
					continue
				}
				ts.intent[it.u] = it.v
				ts.intenders = append(ts.intenders, it.u)
				ts.bumpDownUsed(v)
			}
		}
	}
	ts.curState = nil

	// Phase 2a: approve what credit allows (server intents are exempt
	// and always approved). The intenders are visited in ascending node
	// order — the canonical settlement order.
	slices.Sort(ts.intenders)
	approved := ts.approved
	held := 0
	for _, ui := range ts.intenders {
		u := int(ui)
		v := ts.intent[u]
		if ts.ledger.CanSend(int32(u), v) {
			approved[u] = true
		} else {
			held++
		}
	}

	// Phase 2b: settle held intents around short cycles. Each node has
	// at most one outgoing intent, so held intents form a functional
	// graph; walk it from each held node looking for a cycle of length
	// <= CycleLimit consisting solely of held nodes.
	if held > 0 {
		for _, ui := range ts.intenders {
			u := int(ui)
			if approved[u] {
				continue
			}
			cycle := ts.findCycle(u, approved)
			for _, w := range cycle {
				approved[w] = true
			}
		}
	}

	// Emit transfers for approved intents, ascending uploader order
	// (intenders are already sorted). Block draws come from the
	// uploader's lane stream so every draw for u stays on one stream.
	start := len(dst)
	for _, ui := range ts.intenders {
		u := int(ui)
		if !approved[u] {
			continue
		}
		v := int(ts.intent[u])
		b := ts.pickBlockFor(ts.lanes[shard.Of(u)], st, u, v)
		if b < 0 {
			continue // everything useful is already in flight
		}
		dst = append(dst, simulate.Transfer{From: int32(u), To: int32(v), Block: int32(b)})
		ts.addIncoming(v, int32(b))
		ts.freq[b]++
	}
	// Charge the ledger with per-tick cycle cancellation, mirroring the
	// verifier's semantics: transfers settled by a simultaneous 2- or
	// 3-cycle are credit-free; everything else consumes credit.
	ts.settleLedger(dst[start:])
	return dst, nil
}

// settleLedger records this tick's emitted transfers into the credit
// ledger with per-tick cycle cancellation (2-cycles and 3-cycles are
// credit-free, matching mechanism.VerifyTriangular).
func (ts *TriangularScheduler) settleLedger(tick []simulate.Transfer) {
	remaining := make(map[[2]int32]int, len(tick))
	next := make(map[int32][]int32, len(tick))
	for _, tr := range tick {
		if tr.From == 0 || tr.To == 0 {
			continue
		}
		remaining[[2]int32{tr.From, tr.To}]++
		next[tr.From] = append(next[tr.From], tr.To)
	}
	use := func(u, v int32) bool {
		key := [2]int32{u, v}
		if remaining[key] > 0 {
			remaining[key]--
			return true
		}
		return false
	}
	// Cancellation must not depend on Go's randomized map order: when
	// cycles share edges, the visit order decides which ones settle and
	// the leftover debt reaches the ledger — and through the credit
	// limit, future transfer selection. Iterate keys in sorted order.
	keys := sortedPairKeys(remaining)
	// Cancel 2-cycles.
	for _, key := range keys {
		u, v := key[0], key[1]
		c := remaining[key]
		for c > 0 && remaining[[2]int32{v, u}] > 0 {
			remaining[key]--
			remaining[[2]int32{v, u}]--
			c = remaining[key]
		}
	}
	// Cancel 3-cycles (only when allowed).
	if ts.opts.CycleLimit >= 3 {
		for _, key := range keys {
			u, v := key[0], key[1]
			if remaining[key] == 0 {
				continue
			}
			for _, w := range next[v] {
				if w == u || remaining[key] == 0 {
					continue
				}
				for remaining[key] > 0 && remaining[[2]int32{v, w}] > 0 && remaining[[2]int32{w, u}] > 0 {
					if !use(u, v) || !use(v, w) || !use(w, u) {
						break
					}
				}
			}
		}
	}
	for _, key := range keys {
		for i := 0; i < remaining[key]; i++ {
			ts.ledger.Record(key[0], key[1])
		}
	}
}

// sortedPairKeys returns m's keys in lexicographic order so that
// settlement iteration is independent of map order.
func sortedPairKeys(m map[[2]int32]int) [][2]int32 {
	keys := make([][2]int32, 0, len(m))
	for key := range m { //lint:ordered keys are sorted below
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

// findCycle follows held intents from u; if it returns to u within
// CycleLimit steps through exclusively held (unapproved) nodes, the
// cycle's members are returned, else nil.
func (ts *TriangularScheduler) findCycle(u int, approved []bool) []int {
	path := make([]int, 0, ts.opts.CycleLimit)
	cur := u
	for steps := 0; steps < ts.opts.CycleLimit; steps++ {
		path = append(path, cur)
		nxt := ts.intent[cur]
		if nxt < 0 || approved[cur] {
			return nil
		}
		if int(nxt) == u {
			return path
		}
		cur = int(nxt)
		// Stop if we already visited cur (a cycle not through u).
		for _, p := range path {
			if p == cur {
				return nil
			}
		}
	}
	return nil
}

// pickIntent returns a random interested neighbor with download
// capacity left (committed budget plus this lane's reservations), or
// -1. Credit-affordable receivers are preferred (they settle
// unconditionally); when every interested neighbor is credit-blocked, a
// random blocked one is proposed anyway in the hope that settlement
// finds a cycle through it — the extra liquidity triangular barter
// exists to provide.
func (ts *TriangularScheduler) pickIntent(ln *lane, st *simulate.State, u int) int {
	nbrs := ts.opts.Graph.Neighbors(u)
	if len(nbrs) == 0 {
		return -1
	}
	ln.scratch = append(ln.scratch[:0], nbrs...)
	blocked := -1
	for i := range ln.scratch {
		j := i + ln.rng.Intn(len(ln.scratch)-i)
		ln.scratch[i], ln.scratch[j] = ln.scratch[j], ln.scratch[i]
		v := int(ln.scratch[i])
		if v == 0 || !st.Alive(v) {
			continue
		}
		if ts.opts.DownloadCap != simulate.Unlimited && ts.downUsedOf(v)+ts.laneRes(ln, v) >= ts.opts.DownloadCap {
			continue
		}
		if !ts.needs(st, u, v) {
			continue
		}
		if ts.guard != nil && ts.guard.Blocked(v, u, float64(st.Tick()+1)) {
			continue
		}
		if ts.ledger.CanSend(int32(u), int32(v)) {
			return v
		}
		if blocked < 0 {
			blocked = v
		}
	}
	return blocked
}

func (ts *TriangularScheduler) needs(st *simulate.State, u, v int) bool {
	bu, bv := st.Blocks(u), st.Blocks(v)
	inflight := ts.incomingOf(v)
	if len(inflight) == 0 {
		return bu.AnyMissingFrom(bv)
	}
	need := false
	bu.IterDiff(bv, func(b int) bool {
		for _, fb := range inflight {
			if int(fb) == b {
				return true
			}
		}
		need = true
		return false
	})
	return need
}

// pickBlockFor mirrors Scheduler.pickBlock for the triangular variant;
// random draws come from the uploader's lane stream.
func (ts *TriangularScheduler) pickBlockFor(ln *lane, st *simulate.State, u, v int) int {
	bu, bv := st.Blocks(u), st.Blocks(v)
	inflight := ts.incomingOf(v)
	useful := func(b int) bool {
		for _, fb := range inflight {
			if int(fb) == b {
				return false
			}
		}
		return true
	}
	// offered mirrors Scheduler.pickBlock: a complete sender offers
	// exactly v's complement, scanned word-at-a-time.
	offered := func(fn func(b int) bool) {
		if bu.Full() {
			bv.IterateMissing(fn)
		} else {
			bu.IterDiff(bv, fn)
		}
	}
	if ts.opts.Policy == RarestFirst || ts.opts.Policy == LocalRare {
		best, bestFreq, ties := -1, int(^uint(0)>>1), 0
		offered(func(b int) bool {
			if !useful(b) {
				return true
			}
			f := ts.freq[b]
			if ts.opts.Policy == LocalRare {
				f = 0
				for _, w := range ts.opts.Graph.Neighbors(v) {
					if st.Alive(int(w)) && st.Has(int(w), b) {
						f++
					}
				}
			}
			switch {
			case f < bestFreq:
				best, bestFreq, ties = b, f, 1
			case f == bestFreq:
				ties++
				if ln.rng.Intn(ties) == 0 {
					best = b
				}
			}
			return true
		})
		return best
	}
	count := 0
	offered(func(b int) bool {
		if useful(b) {
			count++
		}
		return true
	})
	if count == 0 {
		return -1
	}
	target := ln.rng.Intn(count)
	chosen := -1
	offered(func(b int) bool {
		if !useful(b) {
			return true
		}
		if target == 0 {
			chosen = b
			return false
		}
		target--
		return true
	})
	return chosen
}
