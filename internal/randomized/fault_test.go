package randomized

import (
	"testing"

	"barterdist/internal/fault"
	"barterdist/internal/graph"
	"barterdist/internal/simulate"
)

func churnPlan(t *testing.T, o fault.Options) *fault.Plan {
	t.Helper()
	p, err := fault.NewPlan(o)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRandomizedCompletesUnderChurn drives the randomized schedulers
// through crash/wiped-rejoin/loss churn on the complete graph. The
// scheduler's block-frequency bookkeeping is rebuilt on fault events
// and decremented on lost transfers, so a bookkeeping bug shows up
// either as a stall (rarest-first chasing phantom frequencies) or as an
// audit failure on replay.
func TestRandomizedCompletesUnderChurn(t *testing.T) {
	const n, k = 24, 16
	cases := []struct {
		name string
		opts Options
	}{
		{"random", Options{Seed: 8}},
		{"rarest-first", Options{Policy: RarestFirst, Seed: 8}},
		{"credit s=2", Options{CreditLimit: 2, Seed: 8}},
	}
	for i, tc := range cases {
		sched, err := New(tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := simulate.Config{
			Nodes: n, Blocks: k, RecordTrace: true,
			MaxTicks: 60 * (n + k),
			Fault: churnPlan(t, fault.Options{
				Seed:              uint64(40 + i),
				CrashRate:         0.12,
				MaxCrashes:        4,
				RejoinDelay:       5,
				RejoinLosesBlocks: true,
				LossRate:          0.05,
			}),
		}
		res, err := simulate.Run(cfg, sched)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(res.FaultLog) == 0 || res.LostTransfers == 0 {
			t.Fatalf("%s: seed produced no churn (%d events, %d lost); pick a livelier seed",
				tc.name, len(res.FaultLog), res.LostTransfers)
		}
		for v := 1; v < n; v++ {
			if res.FinalAlive[v] && res.FinalHave[v].Count() != k {
				t.Fatalf("%s: alive client %d finished with %d/%d blocks",
					tc.name, v, res.FinalHave[v].Count(), k)
			}
		}
		cfg.Fault = nil
		if err := simulate.RunAudit(cfg, res); err != nil {
			t.Fatalf("%s: audit: %v", tc.name, err)
		}
	}
}

// TestTriangularCompletesUnderChurn repeats the churn run for the
// triangular-barter scheduler: settlement cycles must keep working as
// peers vanish and return wiped.
func TestTriangularCompletesUnderChurn(t *testing.T) {
	const n, k = 24, 16
	sched, err := NewTriangular(TriangularOptions{Graph: graph.Complete(n), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	cfg := simulate.Config{
		Nodes: n, Blocks: k, RecordTrace: true,
		MaxTicks: 120 * (n + k),
		Fault: churnPlan(t, fault.Options{
			Seed:              44,
			CrashRate:         0.12,
			MaxCrashes:        3,
			RejoinDelay:       5,
			RejoinLosesBlocks: true,
			LossRate:          0.03,
		}),
	}
	res, err := simulate.Run(cfg, sched)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultLog) == 0 {
		t.Fatal("seed produced no fault events; pick a livelier seed")
	}
	for v := 1; v < n; v++ {
		if res.FinalAlive[v] && res.FinalHave[v].Count() != k {
			t.Fatalf("alive client %d finished with %d/%d blocks", v, res.FinalHave[v].Count(), k)
		}
	}
	cfg.Fault = nil
	if err := simulate.RunAudit(cfg, res); err != nil {
		t.Fatalf("audit: %v", err)
	}
}
