package randomized

import (
	"errors"
	"testing"

	"barterdist/internal/analysis"
	"barterdist/internal/graph"
	"barterdist/internal/mechanism"
	"barterdist/internal/simulate"
	"barterdist/internal/xrand"
)

func TestNewTriangularValidation(t *testing.T) {
	g := graph.Complete(8)
	if _, err := NewTriangular(TriangularOptions{}); err == nil {
		t.Error("missing graph should error")
	}
	if _, err := NewTriangular(TriangularOptions{Graph: g, Policy: Policy(42)}); err == nil {
		t.Error("bad policy should error")
	}
	if _, err := NewTriangular(TriangularOptions{Graph: g, CycleLimit: 1}); err == nil {
		t.Error("cycle limit < 2 should error")
	}
	ts, err := NewTriangular(TriangularOptions{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Ledger() == nil || ts.Ledger().Limit() != 1 {
		t.Error("default credit limit should be 1")
	}
	if ts.opts.CycleLimit != 3 {
		t.Errorf("default cycle limit = %d, want 3", ts.opts.CycleLimit)
	}
}

func TestTriangularSizeMismatch(t *testing.T) {
	ts, err := NewTriangular(TriangularOptions{Graph: graph.Complete(4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulate.Run(simulate.Config{Nodes: 8, Blocks: 2}, ts); err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func TestTriangularCompletesAndVerifies(t *testing.T) {
	rng := xrand.New(8)
	for _, tc := range []struct {
		name   string
		degree int
		policy Policy
		credit int
	}{
		// Degrees sit above the Figure 6/7 stall thresholds for each
		// policy at this size; the Random policy additionally gets
		// s*d >= k so a late straggler can always borrow its way to
		// completion (the endgame deadlock is a real property of credit
		// barter at marginal parameters, exercised separately).
		{"d32-random", 32, Random, 2},
		{"d16-rarest", 16, RarestFirst, 1},
		{"d16-local", 16, LocalRare, 1},
	} {
		g, err := graph.RandomRegular(64, tc.degree, rng)
		if err != nil {
			t.Fatal(err)
		}
		ts, err := NewTriangular(TriangularOptions{
			Graph: g, Policy: tc.policy, CreditLimit: tc.credit, DownloadCap: 1, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := simulate.Run(simulate.Config{
			Nodes: 64, Blocks: 64, DownloadCap: 1, MaxTicks: 30000, RecordTrace: true,
		}, ts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.CompletionTime < analysis.CooperativeLowerBound(64, 64) {
			t.Fatalf("%s: impossible T=%d", tc.name, res.CompletionTime)
		}
		if err := mechanism.VerifyTriangular(res.Trace.Cursor(), tc.credit); err != nil {
			t.Errorf("%s: trace violates triangular barter: %v", tc.name, err)
		}
	}
}

func TestTriangularCycleLimit2IsCreditLimited(t *testing.T) {
	// With CycleLimit 2 only direct exchanges settle credit-free, so the
	// trace must pass the PLAIN credit-limited verifier.
	rng := xrand.New(9)
	g, err := graph.RandomRegular(32, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := NewTriangular(TriangularOptions{
		Graph: g, CreditLimit: 2, CycleLimit: 2, DownloadCap: 1, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(simulate.Config{
		Nodes: 32, Blocks: 32, DownloadCap: 1, MaxTicks: 30000, RecordTrace: true,
	}, ts)
	if err != nil {
		t.Fatal(err)
	}
	if err := mechanism.VerifyCreditLimited(res.Trace.Cursor(), 2); err != nil {
		t.Errorf("cycle-limit-2 trace violates credit barter: %v", err)
	}
}

func TestTriangularNotWorseThanPlainCreditOnSparseOverlay(t *testing.T) {
	// The paper's Section 3.3 motivation: triangular settlement adds
	// exchange opportunities on low-degree overlays. Compare against
	// plain credit-limited at the same degree, seed-for-seed.
	rng := xrand.New(10)
	const n, k, d = 64, 64, 10
	g, err := graph.RandomRegular(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	budget := 20000
	runPlain := func() int {
		s, err := New(Options{Graph: g, CreditLimit: 1, DownloadCap: 1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := simulate.Run(simulate.Config{Nodes: n, Blocks: k, DownloadCap: 1, MaxTicks: budget}, s)
		if err != nil {
			return budget
		}
		return res.CompletionTime
	}
	runTri := func() int {
		s, err := NewTriangular(TriangularOptions{Graph: g, CreditLimit: 1, DownloadCap: 1, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := simulate.Run(simulate.Config{Nodes: n, Blocks: k, DownloadCap: 1, MaxTicks: budget}, s)
		if err != nil {
			return budget
		}
		return res.CompletionTime
	}
	plain, tri := runPlain(), runTri()
	if tri > plain*2 {
		t.Errorf("triangular (T=%d) much worse than plain credit (T=%d) on degree-%d overlay", tri, plain, d)
	}
	t.Logf("degree %d: plain credit T=%d, triangular T=%d", d, plain, tri)
}

func TestRewireCompletesAndInvalidatesCache(t *testing.T) {
	rng := xrand.New(11)
	g, err := graph.RandomRegular(32, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Graph: g, DownloadCap: 1, Seed: 12, RewireEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(simulate.Config{Nodes: 32, Blocks: 32, DownloadCap: 1}, s)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime < analysis.CooperativeLowerBound(32, 32) {
		t.Fatal("impossible completion time")
	}
	// The overlay must actually have been replaced.
	if s.opts.Graph == g {
		t.Error("graph was never rewired")
	}
}

func TestRewireValidation(t *testing.T) {
	if _, err := New(Options{RewireEvery: 3}); err == nil {
		t.Error("rewire without a graph should error")
	}
	if _, err := New(Options{RewireEvery: -1}); err == nil {
		t.Error("negative rewire interval should error")
	}
	// Irregular graph: chain has degree-1 endpoints.
	if _, err := New(Options{Graph: graph.Chain(8), RewireEvery: 3}); err == nil {
		t.Error("rewiring an irregular graph should error")
	}
}

func TestRewireHelpsCreditBarterOnSparseOverlay(t *testing.T) {
	// The paper's closing experiment idea: a low-degree overlay with
	// periodic neighbor changes. Under credit barter at a degree where
	// the static overlay stalls, rewiring should make progress.
	rng := xrand.New(13)
	const n, k, d = 64, 64, 6
	budget := 30000
	g1, err := graph.RandomRegular(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	static, err := New(Options{Graph: g1, CreditLimit: 1, DownloadCap: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, errStatic := simulate.Run(simulate.Config{Nodes: n, Blocks: k, DownloadCap: 1, MaxTicks: budget}, static)

	g2, err := graph.RandomRegular(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	rewired, err := New(Options{Graph: g2, CreditLimit: 1, DownloadCap: 1, Seed: 4, RewireEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	resRewired, errRewired := simulate.Run(simulate.Config{Nodes: n, Blocks: k, DownloadCap: 1, MaxTicks: budget}, rewired)

	if errRewired != nil {
		if errors.Is(errRewired, simulate.ErrMaxTicks) && errStatic == nil {
			t.Errorf("rewired overlay stalled while static completed")
		}
		t.Skipf("both configurations stalled at degree %d (budget %d)", d, budget)
	}
	if errStatic == nil {
		t.Logf("both completed; rewired T=%d", resRewired.CompletionTime)
	} else {
		t.Logf("static stalled, rewired completed in T=%d — the paper's conjecture holds", resRewired.CompletionTime)
	}
}
