package randomized

import (
	"barterdist/internal/simulate"
)

// eligIndex is the incremental missing-block / eligibility index behind
// the complete-graph fast path: for every block b it keeps the exact
// set of candidate receivers (alive, incomplete clients) that still
// lack b, as a swap-remove member list plus a position slab.
//
// The representation is chosen for the two operations the sharded tick
// needs to be O(1):
//
//   - update: a delivery, crash, or rejoin moves one (block, node) pair
//     in or out in constant time (swap-remove through pos);
//   - interest: an uploader's tick-start audience size is the sum of
//     |missing(b)| over its holdings — k cached counts — and the exact
//     fallback pass enumerates exactly those members instead of
//     subset-testing every incomplete client (the O(n)
//     bitset.AnyMissingFrom scan that DESIGN.md §11.3 measured at ~40%
//     of CPU on the credit-limited path).
//
// The index is maintained only between rounds (beginTick and the merge
// run on the coordinating goroutine); during a pairing round every lane
// reads it concurrently, which is safe because nothing mutates it
// mid-tick — ground-truth block sets only change when the engine
// applies the tick's transfers, and the next beginTick folds exactly
// those committed transfers back in. TestEligIndexMatchesScan pins the
// incremental maintenance against the from-scratch predicate scan after
// every tick of churny, credit-limited, adversarial runs.
type eligIndex struct {
	n, k    int
	count   []int32 // count[b] = number of candidates missing block b
	members []int32 // k·n slab; list b is members[b·n : b·n+count[b]]
	pos     []int32 // k·n slab; pos[b·n+v] = index of v in list b, -1 if absent
}

// newEligIndex returns an empty index for n nodes and k blocks.
func newEligIndex(n, k int) *eligIndex {
	ix := &eligIndex{
		n:       n,
		k:       k,
		count:   make([]int32, k),
		members: make([]int32, k*n),
		pos:     make([]int32, k*n),
	}
	for i := range ix.pos {
		ix.pos[i] = -1
	}
	return ix
}

// add records that candidate v is missing block b (idempotent).
func (ix *eligIndex) add(b, v int) {
	base := b * ix.n
	if ix.pos[base+v] >= 0 {
		return
	}
	ix.pos[base+v] = ix.count[b]
	ix.members[base+int(ix.count[b])] = int32(v)
	ix.count[b]++
}

// remove records that v is no longer a candidate missing b (idempotent):
// it received the block, completed, or crashed.
func (ix *eligIndex) remove(b, v int) {
	base := b * ix.n
	p := ix.pos[base+v]
	if p < 0 {
		return
	}
	last := ix.count[b] - 1
	moved := ix.members[base+int(last)]
	ix.members[base+int(p)] = moved
	ix.pos[base+int(moved)] = p
	ix.count[b] = last
	ix.pos[base+v] = -1
}

// has reports whether v is currently indexed as missing b.
func (ix *eligIndex) has(b, v int) bool { return ix.pos[b*ix.n+v] >= 0 }

// addNode indexes every block v is missing (a fresh candidate or a
// rejoiner), straight off the ground-truth block set.
func (ix *eligIndex) addNode(st *simulate.State, v int) {
	st.Blocks(v).IterateMissing(func(b int) bool {
		ix.add(b, v)
		return true
	})
}

// removeNode drops v from every block list it appears in (a crash; a
// completed node has already been removed block by block as deliveries
// landed).
func (ix *eligIndex) removeNode(st *simulate.State, v int) {
	st.Blocks(v).IterateMissing(func(b int) bool {
		ix.remove(b, v)
		return true
	})
}
