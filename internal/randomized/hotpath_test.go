package randomized

import (
	"errors"
	"testing"

	"barterdist/internal/fault"
	"barterdist/internal/graph"
	"barterdist/internal/simulate"
)

// errProbeDone lets scripted probe schedulers stop a run early once
// their assertions have executed.
var errProbeDone = errors.New("probe done")

// TestLocalRareCountsSaturatedPeers is the regression test for the
// LocalRare complete-graph rarity estimate. The buggy version counted
// block holders over the live avail list, which shrinks as receivers
// saturate their download capacity mid-tick — so whether a block looked
// rare depended on which uploads happened to be processed first. The
// fix snapshots the tick-start peer population (localPeers); this test
// drives the scheduler internals directly, saturates two peers, and
// pins both the raw count and the chosen block.
//
// Scripted state (n=7, k=2) built over three ticks:
//
//	node:    1    2    3    4    5    6
//	holds:  B0   B1   B0   B1   B1   (none)
//
// At tick 4 the tick-start population is clients 1..6, so from node 6's
// view B0 has 2 holders and B1 has 3 — rarest is B0. The buggy count
// after nodes 2 and 4 saturate sees B1 with a single holder (node 5)
// and flips the choice to B1.
func TestLocalRareCountsSaturatedPeers(t *testing.T) {
	sched, err := New(Options{Policy: LocalRare, DownloadCap: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checked := false
	probe := simulate.SchedulerFunc(func(tick int, st *simulate.State, dst []simulate.Transfer) ([]simulate.Transfer, error) {
		tr := func(from, to, block int) simulate.Transfer {
			return simulate.Transfer{From: int32(from), To: int32(to), Block: int32(block)}
		}
		switch tick {
		case 1:
			return append(dst, tr(0, 1, 0)), nil
		case 2:
			return append(dst, tr(0, 2, 1), tr(1, 3, 0)), nil
		case 3:
			return append(dst, tr(0, 4, 1), tr(2, 5, 1)), nil
		}
		// Tick 4: drive the scheduler's own bookkeeping against the
		// scripted state, saturate two peers, and check the estimate.
		if err := sched.setup(st); err != nil {
			return nil, err
		}
		sched.beginTick(st)
		sched.removeAvail(2)
		sched.removeAvail(4)
		ln := sched.lanes[0] // uploader 0's lane
		if got := sched.blockFreq(ln, st, 6, 0); got != 2 {
			return nil, errors.New("blockFreq(6, B0) changed")
		}
		if got := sched.blockFreq(ln, st, 6, 1); got != 3 {
			// The buggy avail-based count reports 1 here.
			return nil, errors.New("blockFreq(6, B1) ignores saturated holders")
		}
		if got := sched.pickBlock(ln, st, 0, 6); got != 0 {
			return nil, errors.New("LocalRare picked the wrong rarest block")
		}
		checked = true
		return nil, errProbeDone
	})
	_, err = simulate.Run(simulate.Config{Nodes: 7, Blocks: 2, DownloadCap: 1, MaxTicks: 10}, probe)
	if !errors.Is(err, errProbeDone) {
		t.Fatalf("probe did not complete: %v", err)
	}
	if !checked {
		t.Fatal("assertions never ran")
	}
}

// freqOracle recomputes the replication counts the incremental
// bookkeeping must agree with at the end of a tick: holdings of alive
// nodes plus this tick's still-in-flight transfers (the scheduler
// increments freq speculatively when it emits a transfer).
func freqOracle(st *simulate.State, emitted []simulate.Transfer) []int {
	want := make([]int, st.K())
	for v := 0; v < st.N(); v++ {
		if st.Alive(v) {
			st.Blocks(v).AccumulateCounts(want, 1)
		}
	}
	for _, tr := range emitted {
		want[tr.Block]++
	}
	return want
}

func checkFreq(t *testing.T, tick int, got, want []int) {
	t.Helper()
	for b := range want {
		if got[b] != want[b] {
			t.Fatalf("tick %d: freq[%d] = %d, oracle says %d", tick, b, got[b], want[b])
		}
	}
}

// TestIncrementalFreqMatchesRecompute cross-checks the incremental
// rarity maintenance (loss decrements plus word-parallel crash/rejoin
// deltas in beginTick) against a from-scratch recount after every tick
// of a churny rarest-first run, in both the keep-blocks and
// wiped-rejoin regimes.
func TestIncrementalFreqMatchesRecompute(t *testing.T) {
	const n, k = 24, 16
	for _, wipe := range []bool{false, true} {
		inner, err := New(Options{Policy: RarestFirst, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		wrapped := simulate.SchedulerFunc(func(tick int, st *simulate.State, dst []simulate.Transfer) ([]simulate.Transfer, error) {
			start := len(dst)
			ret, err := inner.Tick(tick, st, dst)
			if err != nil {
				return ret, err
			}
			checkFreq(t, tick, inner.freq, freqOracle(st, ret[start:]))
			return ret, nil
		})
		cfg := simulate.Config{
			Nodes: n, Blocks: k, MaxTicks: 60 * (n + k),
			Fault: churnPlan(t, fault.Options{
				Seed:              41,
				CrashRate:         0.12,
				MaxCrashes:        4,
				RejoinDelay:       5,
				RejoinLosesBlocks: wipe,
				LossRate:          0.05,
			}),
		}
		res, err := simulate.Run(cfg, wrapped)
		if err != nil {
			t.Fatalf("wipe=%v: %v", wipe, err)
		}
		if len(res.FaultLog) == 0 || res.LostTransfers == 0 {
			t.Fatalf("wipe=%v: seed produced no churn; pick a livelier seed", wipe)
		}
	}
}

// TestTriangularIncrementalFreqMatchesRecompute repeats the oracle
// check for the triangular-barter scheduler, whose Tick maintains the
// same statistics with the same incremental scheme.
func TestTriangularIncrementalFreqMatchesRecompute(t *testing.T) {
	const n, k = 24, 16
	inner, err := NewTriangular(TriangularOptions{
		Graph: graph.Complete(n), Policy: RarestFirst, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := simulate.SchedulerFunc(func(tick int, st *simulate.State, dst []simulate.Transfer) ([]simulate.Transfer, error) {
		start := len(dst)
		ret, err := inner.Tick(tick, st, dst)
		if err != nil {
			return ret, err
		}
		checkFreq(t, tick, inner.freq, freqOracle(st, ret[start:]))
		return ret, nil
	})
	cfg := simulate.Config{
		Nodes: n, Blocks: k, MaxTicks: 120 * (n + k),
		Fault: churnPlan(t, fault.Options{
			Seed:              44,
			CrashRate:         0.12,
			MaxCrashes:        3,
			RejoinDelay:       5,
			RejoinLosesBlocks: true,
			LossRate:          0.03,
		}),
	}
	res, err := simulate.Run(cfg, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FaultLog) == 0 {
		t.Fatal("seed produced no fault events; pick a livelier seed")
	}
}

// TestCandidateSetMatchesScan pins the incrementally maintained
// candidate membership (alive, incomplete clients) against the
// from-scratch predicate scan it replaced, across a run with crashes,
// wiped rejoins, losses, and free-riders — every channel that can move
// a node in or out of the set.
func TestCandidateSetMatchesScan(t *testing.T) {
	plan, err := fault.NewPlan(fault.Options{
		Seed:              21,
		CrashRate:         0.08,
		MaxCrashes:        4,
		RejoinDelay:       3,
		RejoinLosesBlocks: true,
		LossRate:          0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := New(Options{Seed: 5, DownloadCap: 1, CreditLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	ticksChecked := 0
	probe := simulate.SchedulerFunc(func(tick int, st *simulate.State, dst []simulate.Transfer) ([]simulate.Transfer, error) {
		out, err := sched.Tick(tick, st, dst)
		if err != nil {
			return nil, err
		}
		// beginTick ran at the top of Tick and nothing mutates the
		// engine state until the transfers land, so the candidate set
		// must equal the tick-start predicate right now.
		for v := 1; v < st.N(); v++ {
			want := st.Alive(v) && !st.Blocks(v).Full()
			if got := sched.candidates.Has(v); got != want {
				t.Fatalf("tick %d node %d: candidates.Has=%v, predicate=%v", tick, v, got, want)
			}
		}
		ticksChecked++
		return out, nil
	})
	if _, err := simulate.Run(simulate.Config{
		Nodes: 24, Blocks: 12, DownloadCap: 1, Fault: plan, RecordTrace: true,
	}, probe); err != nil {
		t.Fatal(err)
	}
	if ticksChecked == 0 {
		t.Fatal("probe never ran")
	}
}
