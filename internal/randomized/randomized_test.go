package randomized

import (
	"testing"

	"barterdist/internal/analysis"
	"barterdist/internal/graph"
	"barterdist/internal/mechanism"
	"barterdist/internal/simulate"
	"barterdist/internal/xrand"
)

func runRandomized(t *testing.T, cfg simulate.Config, opts Options) *simulate.Result {
	t.Helper()
	opts.DownloadCap = cfg.DownloadCap
	sched, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(cfg, sched)
	if err != nil {
		t.Fatalf("n=%d k=%d: %v", cfg.Nodes, cfg.Blocks, err)
	}
	return res
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{Policy: Policy(99)}); err == nil {
		t.Error("unknown policy should error")
	}
	if _, err := New(Options{CreditLimit: -1}); err == nil {
		t.Error("negative credit should error")
	}
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Ledger() != nil {
		t.Error("cooperative scheduler should have no ledger")
	}
	s2, err := New(Options{CreditLimit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Ledger() == nil || s2.Ledger().Limit() != 2 {
		t.Error("credit scheduler should carry a ledger with the limit")
	}
}

func TestGraphSizeMismatchDetected(t *testing.T) {
	sched, err := New(Options{Graph: graph.Complete(5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := simulate.Run(simulate.Config{Nodes: 7, Blocks: 2}, sched); err == nil {
		t.Fatal("overlay/simulation size mismatch not detected")
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{Random: "random", RarestFirst: "rarest-first", LocalRare: "local-rare", Policy(9): "policy(9)"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestCompletesOnCompleteGraph(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{2, 1}, {4, 4}, {16, 8}, {64, 32}, {100, 50}, {31, 17},
	} {
		res := runRandomized(t, simulate.Config{Nodes: tc.n, Blocks: tc.k, DownloadCap: 1},
			Options{Seed: 7})
		lower := analysis.CooperativeLowerBound(tc.n, tc.k)
		if res.CompletionTime < lower {
			t.Errorf("n=%d k=%d: T=%d below lower bound %d", tc.n, tc.k, res.CompletionTime, lower)
		}
	}
}

func TestNearOptimalOnCompleteGraph(t *testing.T) {
	// The paper's headline empirical claim (Section 2.4.4): the
	// randomized algorithm is within a few percent of optimal for large
	// k. Allow 15% headroom over k - 1 + log2 n at this scale.
	const n, k = 128, 256
	sum := 0
	const reps = 3
	for rep := 0; rep < reps; rep++ {
		res := runRandomized(t, simulate.Config{Nodes: n, Blocks: k, DownloadCap: 1},
			Options{Seed: uint64(rep + 1)})
		sum += res.CompletionTime
	}
	mean := float64(sum) / reps
	opt := float64(analysis.CooperativeLowerBound(n, k))
	if mean > 1.15*opt {
		t.Errorf("mean T=%.1f more than 15%% above optimal %.0f", mean, opt)
	}
}

func TestRarestFirstAlsoNearOptimal(t *testing.T) {
	const n, k = 64, 64
	res := runRandomized(t, simulate.Config{Nodes: n, Blocks: k, DownloadCap: 1},
		Options{Policy: RarestFirst, Seed: 3})
	opt := analysis.CooperativeLowerBound(n, k)
	if res.CompletionTime > opt+opt/4 {
		t.Errorf("rarest-first T=%d far above optimal %d", res.CompletionTime, opt)
	}
}

func TestLocalRarePolicyCompletes(t *testing.T) {
	rng := xrand.New(5)
	g, err := graph.RandomRegular(32, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	res := runRandomized(t, simulate.Config{Nodes: 32, Blocks: 16, DownloadCap: 1},
		Options{Graph: g, Policy: LocalRare, Seed: 11})
	if res.CompletionTime < analysis.CooperativeLowerBound(32, 16) {
		t.Error("below lower bound: simulation accounting broken")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	cfg := simulate.Config{Nodes: 32, Blocks: 16, DownloadCap: 1, RecordTrace: true}
	a := runRandomized(t, cfg, Options{Seed: 42})
	b := runRandomized(t, cfg, Options{Seed: 42})
	if a.CompletionTime != b.CompletionTime || a.TotalTransfers != b.TotalTransfers {
		t.Fatal("same seed produced different runs")
	}
	if a.Trace.Len() != b.Trace.Len() || a.Trace.Ticks() != b.Trace.Ticks() {
		t.Fatalf("trace shape differs between identical seeds")
	}
	for i := 0; i < a.Trace.Len(); i++ {
		if a.Trace.At(i) != b.Trace.At(i) {
			t.Fatalf("transfer %d differs between identical seeds", i)
		}
	}
	c := runRandomized(t, cfg, Options{Seed: 43})
	if c.CompletionTime == a.CompletionTime && c.TotalTransfers == a.TotalTransfers {
		t.Log("different seeds coincidentally matched (possible but unlikely)")
	}
}

func TestRunsOnHypercubeOverlay(t *testing.T) {
	g := graph.Hypercube(5) // 32 nodes, degree 5
	res := runRandomized(t, simulate.Config{Nodes: 32, Blocks: 32, DownloadCap: 1},
		Options{Graph: g, Seed: 9})
	opt := analysis.CooperativeLowerBound(32, 32)
	// Section 2.4.4: the hypercube overlay matches the complete graph.
	if res.CompletionTime > 2*opt {
		t.Errorf("hypercube overlay T=%d far above optimal %d", res.CompletionTime, opt)
	}
}

func TestRunsOnRandomRegularOverlay(t *testing.T) {
	rng := xrand.New(17)
	g, err := graph.RandomRegular(64, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	res := runRandomized(t, simulate.Config{Nodes: 64, Blocks: 32, DownloadCap: 1},
		Options{Graph: g, Seed: 1})
	if res.CompletionTime < analysis.CooperativeLowerBound(64, 32) {
		t.Error("impossible completion time")
	}
}

func TestChainOverlayDegradesToPipelineSpeed(t *testing.T) {
	// On a chain overlay the algorithm cannot beat (or even reach) the
	// deterministic pipeline, but it must still complete.
	g := graph.Chain(16)
	res := runRandomized(t, simulate.Config{Nodes: 16, Blocks: 8, DownloadCap: 1},
		Options{Graph: g, Seed: 2})
	if res.CompletionTime < analysis.PipelineTime(16, 8) {
		t.Errorf("chain overlay T=%d beats the pipeline optimum %d",
			res.CompletionTime, analysis.PipelineTime(16, 8))
	}
}

func TestUnlimitedDownloadCap(t *testing.T) {
	res := runRandomized(t, simulate.Config{Nodes: 32, Blocks: 16, DownloadCap: simulate.Unlimited},
		Options{Seed: 21})
	if res.CompletionTime < analysis.CooperativeLowerBound(32, 16) {
		t.Error("impossible completion time")
	}
}

func TestCreditLimitedRespectsLedger(t *testing.T) {
	// Trace-audit a credit-limited run: per-pair net must never exceed s.
	for _, s := range []int{1, 2, 5} {
		sched, err := New(Options{CreditLimit: s, Seed: uint64(s), DownloadCap: 1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := simulate.Run(simulate.Config{
			Nodes: 32, Blocks: 16, DownloadCap: 1, RecordTrace: true,
		}, sched)
		if err != nil {
			t.Fatalf("s=%d: %v", s, err)
		}
		if err := mechanism.VerifyCreditLimited(res.Trace.Cursor(), s); err != nil {
			t.Errorf("s=%d: trace violates credit limit: %v", s, err)
		}
	}
}

func TestCreditLimitedOnSparseGraphStallsOrSlows(t *testing.T) {
	// Figure 6's qualitative claim: under credit s=1 a low-degree overlay
	// is dramatically slower than a high-degree one.
	rng := xrand.New(33)
	lowG, err := graph.RandomRegular(64, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	highG, err := graph.RandomRegular(64, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(g *graph.Graph) int {
		sched, err := New(Options{Graph: g, CreditLimit: 1, Seed: 5, DownloadCap: 2})
		if err != nil {
			t.Fatal(err)
		}
		res, err := simulate.Run(simulate.Config{
			Nodes: 64, Blocks: 64, DownloadCap: 2, MaxTicks: 40000,
		}, sched)
		if err != nil {
			return 40000 // treat a stall as the tick budget
		}
		return res.CompletionTime
	}
	low, high := run(lowG), run(highG)
	if low <= high {
		t.Errorf("low-degree T=%d not worse than high-degree T=%d under credit barter", low, high)
	}
}

func TestServerNeverReceives(t *testing.T) {
	sched, err := New(Options{Seed: 3, DownloadCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(simulate.Config{
		Nodes: 16, Blocks: 8, DownloadCap: 1, RecordTrace: true,
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	cur := res.Trace.Cursor()
	for cur.NextTick() {
		for cur.Next() {
			if cur.Transfer().To == 0 {
				t.Fatalf("tick %d: transfer to the server", cur.Tick())
			}
		}
	}
}

func TestNoDuplicateDeliveriesWithinTick(t *testing.T) {
	sched, err := New(Options{Seed: 4, DownloadCap: simulate.Unlimited})
	if err != nil {
		t.Fatal(err)
	}
	res, err := simulate.Run(simulate.Config{
		Nodes: 32, Blocks: 16, DownloadCap: simulate.Unlimited, RecordTrace: true,
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTransfers != res.UsefulTransfers {
		t.Fatalf("redundant transfers occurred: total=%d useful=%d",
			res.TotalTransfers, res.UsefulTransfers)
	}
	cur := res.Trace.Cursor()
	for cur.NextTick() {
		seen := map[[2]int32]bool{}
		for cur.Next() {
			tr := cur.Transfer()
			key := [2]int32{tr.To, tr.Block}
			if seen[key] {
				t.Fatalf("tick %d: block %d delivered twice to node %d", cur.Tick(), tr.Block, tr.To)
			}
			seen[key] = true
		}
	}
	// Exactly (n-1)*k useful transfers must have happened.
	if res.UsefulTransfers != 31*16 {
		t.Fatalf("useful transfers = %d, want %d", res.UsefulTransfers, 31*16)
	}
}

func TestSingleClient(t *testing.T) {
	res := runRandomized(t, simulate.Config{Nodes: 2, Blocks: 5, DownloadCap: 1}, Options{Seed: 1})
	if res.CompletionTime != 5 {
		t.Errorf("single client T=%d, want 5", res.CompletionTime)
	}
}

func TestLargeRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large smoke test")
	}
	res := runRandomized(t, simulate.Config{Nodes: 1000, Blocks: 200, DownloadCap: 1},
		Options{Seed: 99})
	opt := analysis.CooperativeLowerBound(1000, 200)
	// The relative gap shrinks with k (Section 2.4.4); at k = 200 it is
	// still a few tens of ticks, so allow 35%.
	if res.CompletionTime > opt+opt*35/100 {
		t.Errorf("n=1000 k=200: T=%d vs optimal %d (more than 35%% off)", res.CompletionTime, opt)
	}
}
