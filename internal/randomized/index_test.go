package randomized

import (
	"testing"

	"barterdist/internal/adversary"
	"barterdist/internal/fault"
	"barterdist/internal/simulate"
)

// TestEligIndexMatchesScan pins the incremental eligibility index to
// the naive predicate it replaced: after every tick of a churny,
// credit-limited, adversarial run, (b, v) must be indexed exactly when
// v is an alive, incomplete client missing block b — the condition the
// old O(n) bitset.AnyMissingFrom scan tested candidate by candidate.
// The member lists and position slab are also cross-checked against
// each other, so a swap-remove bookkeeping bug cannot hide behind a
// correct membership answer.
func TestEligIndexMatchesScan(t *testing.T) {
	faultPlan, err := fault.NewPlan(fault.Options{
		Seed:              21,
		CrashRate:         0.08,
		MaxCrashes:        4,
		RejoinDelay:       3,
		RejoinLosesBlocks: true,
		LossRate:          0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const nodes = 24
	advPlan, err := adversary.NewPlan(nodes, adversary.Options{
		Seed:          99,
		FreeRiderFrac: 0.15,
		CorrupterFrac: 0.1,
		DefectorFrac:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := New(Options{Seed: 5, DownloadCap: 1, CreditLimit: 1, ShardWorkers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ticksChecked := 0
	probe := simulate.SchedulerFunc(func(tick int, st *simulate.State, dst []simulate.Transfer) ([]simulate.Transfer, error) {
		out, err := sched.Tick(tick, st, dst)
		if err != nil {
			return nil, err
		}
		// beginTick folded last tick's deliveries, losses, and fault
		// events at the top of Tick, and the engine has not yet applied
		// this tick's transfers — so the index must equal the tick-start
		// ground truth right now.
		ix := sched.index
		for b := 0; b < st.K(); b++ {
			members := 0
			for v := 1; v < st.N(); v++ {
				want := st.Alive(v) && !st.Blocks(v).Full() && !st.Blocks(v).Has(b)
				if got := ix.has(b, v); got != want {
					t.Fatalf("tick %d block %d node %d: index.has=%v, predicate=%v", tick, b, v, got, want)
				}
				if want {
					members++
				}
			}
			if int(ix.count[b]) != members {
				t.Fatalf("tick %d block %d: count=%d, scan found %d members", tick, b, ix.count[b], members)
			}
			base := b * st.N()
			for i := 0; i < int(ix.count[b]); i++ {
				v := ix.members[base+i]
				if p := ix.pos[base+int(v)]; int(p) != i {
					t.Fatalf("tick %d block %d: members[%d]=%d but pos=%d", tick, b, i, v, p)
				}
			}
		}
		if ix.has(0, 0) {
			t.Fatalf("tick %d: server indexed as a receiver", tick)
		}
		ticksChecked++
		return out, nil
	})
	if _, err := simulate.Run(simulate.Config{
		Nodes: nodes, Blocks: 12, DownloadCap: 1,
		Fault: faultPlan, Adversary: advPlan, RecordTrace: true,
	}, probe); err != nil {
		t.Fatal(err)
	}
	if ticksChecked == 0 {
		t.Fatal("probe never ran")
	}
}
