// Package randomized implements the paper's randomized content
// distribution algorithm (Sections 2.4 and 3.2.3) as a
// simulate.Scheduler.
//
// Per tick, every node u that holds data attempts one upload:
//
//  1. Among u's overlay neighbors, find those that (a) still need a
//     block u holds, (b) have download capacity left this tick, and
//     (c) — under credit-limited barter — are within u's credit limit.
//     Pick one uniformly at random (the paper's "handshake protocol"
//     resolving collisions is modeled by processing uploaders in a
//     random order against shared per-tick capacity counters).
//  2. Upload one block v needs, chosen by the block-selection policy:
//     Random (uniform over the useful blocks) or Rarest-First (the
//     globally least-replicated useful block, the paper's
//     perfect-statistics variant; LocalRare estimates rarity from the
//     receiver's neighborhood instead).
//
// The scheduler supports arbitrary overlay graphs and special-cases the
// complete graph so that Figure 3's n = 10000 runs stay fast: instead of
// materializing 50M edges, candidate receivers are rejection-sampled
// from the incomplete-node list with an exact full-scan fallback.
package randomized

import (
	"fmt"

	"barterdist/internal/adversary"
	"barterdist/internal/bitset"
	"barterdist/internal/fault"
	"barterdist/internal/graph"
	"barterdist/internal/mechanism"
	"barterdist/internal/simulate"
	"barterdist/internal/xrand"
)

// Policy selects which block to upload once a receiver is chosen.
type Policy int

const (
	// Random uploads a uniformly random useful block (paper default).
	Random Policy = iota + 1
	// RarestFirst uploads the useful block with the fewest holders
	// system-wide (the paper's perfect-statistics Rarest-First).
	RarestFirst
	// LocalRare estimates rarity over the receiver's neighborhood
	// instead of global statistics (the paper notes results are almost
	// identical; this variant lets us check that claim).
	LocalRare
)

// String implements fmt.Stringer for experiment output.
func (p Policy) String() string {
	switch p {
	case Random:
		return "random"
	case RarestFirst:
		return "rarest-first"
	case LocalRare:
		return "local-rare"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configures the randomized scheduler.
type Options struct {
	// Graph is the overlay network. nil means the complete graph.
	Graph *graph.Graph
	// Policy is the block-selection policy; zero value means Random.
	Policy Policy
	// CreditLimit, when > 0, enforces credit-limited barter with the
	// given per-pair limit s (Section 3.2.3). Zero means cooperative.
	CreditLimit int
	// DownloadCap mirrors simulate.Config.DownloadCap and must match the
	// engine configuration: the scheduler uses it to model the handshake
	// that steers uploads away from saturated receivers.
	DownloadCap int
	// Seed makes the run reproducible.
	Seed uint64
	// RewireEvery, when > 0, rebuilds the overlay as a fresh random
	// regular graph of the same degree every RewireEvery ticks — the
	// "change neighbors periodically" variant the paper flags as
	// promising future work at the end of Section 3.2.4. Requires a
	// regular Graph (all degrees equal).
	RewireEvery int
}

// Scheduler is the randomized algorithm. Create one per simulation run;
// it carries per-run state (RNG, credit ledger, rarity statistics).
type Scheduler struct {
	opts   Options
	rng    *xrand.Rand
	ledger *mechanism.Ledger // nil in cooperative mode
	// guard is the peer-scoring/quarantine table, created lazily when
	// the simulation reports an active adversary plan: each receiver
	// backs off exponentially from senders that stalled it or served it
	// garbage, bans them past a strike threshold, and paroles them
	// periodically. nil in adversary-free runs — zero overhead.
	guard *adversary.Guard

	n, k int
	init bool

	freq  []int // freq[b] = number of nodes holding block b
	order []int // uploader processing order, reshuffled per tick
	// downUsed and incoming are epoch-stamped per-tick scratch: an entry
	// is live only when its stamp equals the current tick, so beginTick
	// never pays an O(n) zeroing pass — per-tick cost is proportional to
	// the receivers actually touched, not to the node count.
	downUsed      []int
	downStamp     []int32
	incoming      [][]int32
	incomingStamp []int32
	curTick       int32
	// touched lists the receivers scheduled at least one transfer this
	// tick; the next beginTick checks exactly these for completion when
	// maintaining the candidate set.
	touched []int32
	// candidates is the persistent membership set behind avail: alive,
	// incomplete clients, maintained incrementally (completions come
	// from touched, liveness from the fault-event stream) instead of an
	// O(n) per-tick predicate scan. TestCandidateSetMatchesScan pins it
	// against the from-scratch rebuild.
	candidates *bitset.Set
	// avail holds the complete-graph candidate receivers for the current
	// tick: incomplete clients with download capacity left. Saturated
	// nodes are swap-removed as the tick progresses so both sampling and
	// the exact fallback stay proportional to the remaining candidates.
	avail         []int32
	availPos      []int32 // availPos[v] = index of v in avail, -1 if absent
	removedInTick int     // saturated receivers dropped this tick
	scratch       []int32 // candidate shuffling buffer (general graphs)
	// localPeers is the tick-start snapshot of avail used by the
	// LocalRare policy on the complete graph: rarity must be estimated
	// over every alive incomplete client, not over the shrinking avail
	// list, or the estimate would depend on which receivers happened to
	// saturate earlier in the same tick.
	localPeers []int32
	// commonBlocks is the intersection of every incomplete client's
	// block set at the start of the tick (complete-graph mode). An
	// uploader whose holdings are a subset of commonBlocks has nothing
	// anyone needs and skips without scanning.
	commonBlocks *bitset.Set
	// noPeerAtCount[u] caches that u found no interested peer while
	// holding noPeerAtCount[u] blocks; valid until u's holdings grow
	// (interest is monotone in the sender's block set). It is only set
	// when the failed scan saw no interested peer at all — capacity- or
	// credit-blocked peers do not populate the cache.
	noPeerAtCount []int
}

var _ simulate.Scheduler = (*Scheduler)(nil)

// Validate checks the options without mutating them. A zero Policy is
// accepted (it defaults to Random).
func (o *Options) Validate() error {
	switch o.Policy {
	case 0, Random, RarestFirst, LocalRare:
	default:
		return fmt.Errorf("randomized: unknown policy %d", int(o.Policy))
	}
	if o.CreditLimit < 0 {
		return fmt.Errorf("randomized: negative credit limit %d", o.CreditLimit)
	}
	if o.RewireEvery < 0 {
		return fmt.Errorf("randomized: negative rewire interval %d", o.RewireEvery)
	}
	if o.RewireEvery > 0 {
		if o.Graph == nil {
			return fmt.Errorf("randomized: rewiring requires an explicit overlay graph")
		}
		d := o.Graph.Degree(0)
		for v := 1; v < o.Graph.N(); v++ {
			if o.Graph.Degree(v) != d {
				return fmt.Errorf("randomized: rewiring requires a regular graph (degree mismatch at node %d)", v)
			}
		}
	}
	return nil
}

// New returns a randomized scheduler. The overlay graph, if given, must
// have as many vertices as the simulation has nodes — this is checked on
// the first tick.
func New(opts Options) (*Scheduler, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Policy == 0 {
		opts.Policy = Random
	}
	s := &Scheduler{opts: opts, rng: xrand.New(opts.Seed)}
	if opts.CreditLimit > 0 {
		ledger, err := mechanism.NewLedger(opts.CreditLimit)
		if err != nil {
			return nil, err
		}
		s.ledger = ledger
	}
	return s, nil
}

// Ledger exposes the credit ledger (nil in cooperative mode) so tests
// and experiments can inspect peak balances.
func (s *Scheduler) Ledger() *mechanism.Ledger { return s.ledger }

func (s *Scheduler) setup(st *simulate.State) error {
	s.n, s.k = st.N(), st.K()
	if g := s.opts.Graph; g != nil && g.N() != s.n {
		return fmt.Errorf("randomized: overlay has %d vertices but simulation has %d nodes", g.N(), s.n)
	}
	s.freq = make([]int, s.k)
	for b := 0; b < s.k; b++ {
		s.freq[b] = 1 // the server
	}
	s.order = make([]int, s.n)
	for i := range s.order {
		s.order[i] = i
	}
	s.downUsed = make([]int, s.n)
	s.downStamp = make([]int32, s.n)
	s.incoming = make([][]int32, s.n)
	s.incomingStamp = make([]int32, s.n)
	s.avail = make([]int32, 0, s.n)
	s.availPos = make([]int32, s.n)
	s.candidates = bitset.New(s.n)
	for v := 1; v < s.n; v++ {
		if st.Alive(v) && !st.Blocks(v).Full() {
			s.candidates.Add(v)
		}
	}
	if s.opts.Policy == LocalRare && s.opts.Graph == nil {
		s.localPeers = make([]int32, 0, s.n)
	}
	s.noPeerAtCount = make([]int, s.n)
	for i := range s.noPeerAtCount {
		s.noPeerAtCount[i] = -1
	}
	if st.Adversarial() {
		guard, err := adversary.NewGuard(adversary.GuardOptions{})
		if err != nil {
			return err
		}
		s.guard = guard
	}
	s.init = true
	return nil
}

// Tick implements simulate.Scheduler.
func (s *Scheduler) Tick(t int, st *simulate.State, dst []simulate.Transfer) ([]simulate.Transfer, error) {
	if !s.init {
		if err := s.setup(st); err != nil {
			return nil, err
		}
	}
	if s.opts.RewireEvery > 0 && t > 1 && (t-1)%s.opts.RewireEvery == 0 {
		if err := s.rewire(); err != nil {
			return nil, err
		}
	}
	s.beginTick(st)

	s.rng.Shuffle(s.order)
	for _, u := range s.order {
		if !st.Alive(u) {
			continue // crashed nodes neither offer nor receive
		}
		if st.Refuses(u) {
			continue // u's own strategy declines to upload this tick
		}
		if st.CountOf(u) == 0 {
			continue // nothing to offer yet
		}
		if s.noPeerAtCount[u] == st.CountOf(u) {
			continue // no peer wanted anything at this holding level
		}
		v, sawInterest := s.pickReceiver(st, u)
		if v < 0 {
			if !sawInterest {
				s.noPeerAtCount[u] = st.CountOf(u)
			}
			continue
		}
		b := s.pickBlock(st, u, v)
		if b < 0 {
			continue // cannot happen if pickReceiver qualified v; defensive
		}
		dst = append(dst, simulate.Transfer{From: int32(u), To: int32(v), Block: int32(b)})
		used := s.bumpDownUsed(v)
		s.addIncoming(v, int32(b))
		s.freq[b]++
		if s.ledger != nil {
			s.ledger.Record(int32(u), int32(v))
		}
		if s.opts.DownloadCap != simulate.Unlimited && used >= s.opts.DownloadCap {
			s.removeAvail(v)
		}
	}
	return dst, nil
}

// beginTick folds the previous tick's outcomes into the incremental
// statistics and rebuilds the per-tick candidate structures.
//
// Fault awareness is fully incremental: losses reported by the engine
// undo the speculative freq increments made when the doomed transfers
// were scheduled, a crash subtracts exactly the victim's holdings from
// the rarity counts, and a rejoin adds them back (a wiped rejoiner
// contributes nothing — the engine already cleared its set, and its
// pre-wipe holdings were subtracted at crash time, which is why the
// delta form agrees with a from-scratch recount; TestIncrementalFreq*
// pins the equivalence against recomputeFreq). Fault events still
// flush the no-peer cache, which is keyed to the old population.
// Fault-free runs see empty event and loss lists, take no branch, and
// consume exactly the pre-fault RNG stream.
func (s *Scheduler) beginTick(st *simulate.State) {
	now := float64(st.Tick() + 1) // the tick about to be scheduled
	s.curTick = int32(st.Tick() + 1)
	// Fold last tick's deliveries into the candidate set: only receivers
	// that were actually scheduled a transfer can have completed, so the
	// membership update costs O(active transfers), not O(n). Ground
	// truth (st.Blocks(v).Full()) already reflects the engine's applied
	// deliveries and drops.
	for _, v := range s.touched {
		if st.Blocks(int(v)).Full() {
			s.candidates.Remove(int(v))
		}
	}
	s.touched = s.touched[:0]
	for _, lt := range st.LostLastTick() {
		s.freq[lt.Block]--
		if s.guard != nil && (lt.Adversary || lt.Corrupt) {
			// The receiver scores the sender that stalled it or served
			// it garbage; network losses without verification failure
			// are not attributable to the sender and draw no strike.
			s.guard.Strike(int(lt.To), int(lt.From), now)
		}
		if s.ledger != nil && lt.Adversary {
			// Claw back the credit speculatively recorded at schedule
			// time: a block the sender's strategy withheld or garbled
			// earns nothing — otherwise a corrupter could farm barter
			// credit with garbage.
			s.ledger.Unrecord(lt.From, lt.To)
		}
	}
	if evs := st.FaultEvents(); len(evs) > 0 {
		for _, ev := range evs {
			switch ev.Kind {
			case fault.Crash:
				st.Blocks(int(ev.Node)).AccumulateCounts(s.freq, -1)
				s.candidates.Remove(int(ev.Node))
			case fault.Rejoin:
				st.Blocks(int(ev.Node)).AccumulateCounts(s.freq, 1)
				// A wiped rejoiner is always incomplete; an intact one
				// may have completed before its crash.
				if !st.Blocks(int(ev.Node)).Full() {
					s.candidates.Add(int(ev.Node))
				}
			}
		}
		for i := range s.noPeerAtCount {
			s.noPeerAtCount[i] = -1
		}
	}
	// Rebuild avail from the candidate set by word-level scan: ascending
	// node order (the determinism contract for the rejection sampler)
	// at O(n/64 + |avail|) instead of an O(n) predicate scan. availPos
	// entries of non-candidates are stale but unreachable — removeAvail
	// is only ever called for a node that was just handed a transfer,
	// which means it came out of avail this tick.
	s.avail = s.avail[:0]
	s.removedInTick = 0
	s.candidates.Iter(func(v int) bool {
		s.availPos[v] = int32(len(s.avail))
		s.avail = append(s.avail, int32(v))
		return true
	})
	if s.opts.Graph == nil {
		if s.commonBlocks == nil {
			s.commonBlocks = bitset.New(s.k)
		}
		s.commonBlocks.Fill()
		for _, v := range s.avail {
			s.commonBlocks.AndWith(st.Blocks(int(v)))
		}
		if s.opts.Policy == LocalRare {
			// Snapshot before any mid-tick saturation removals.
			s.localPeers = append(s.localPeers[:0], s.avail...)
		}
	}
}

// recomputeFreq rebuilds the global replication counts from the block
// sets of the currently alive nodes, one word-parallel
// AccumulateCounts per node. The hot path no longer calls it —
// beginTick maintains freq incrementally across crashes, rejoins, and
// in-flight losses — but it remains the oracle the incremental
// accounting is verified against in tests.
func (s *Scheduler) recomputeFreq(st *simulate.State) {
	for b := range s.freq {
		s.freq[b] = 0
	}
	for v := 0; v < s.n; v++ {
		if !st.Alive(v) {
			continue
		}
		st.Blocks(v).AccumulateCounts(s.freq, 1)
	}
}

// rewire replaces the overlay with a fresh random regular graph of the
// same degree and invalidates the no-peer cache (it is keyed to the old
// neighborhoods).
func (s *Scheduler) rewire() error {
	g, err := graph.RandomRegular(s.opts.Graph.N(), s.opts.Graph.Degree(0), s.rng)
	if err != nil {
		return fmt.Errorf("randomized: rewire failed: %w", err)
	}
	s.opts.Graph = g
	for i := range s.noPeerAtCount {
		s.noPeerAtCount[i] = -1
	}
	return nil
}

// pickReceiver returns a uniformly random qualified receiver for u, or
// -1. sawInterest reports whether any peer was interested in u's content
// regardless of capacity or credit (used for the no-peer cache).
func (s *Scheduler) pickReceiver(st *simulate.State, u int) (int, bool) {
	if s.opts.Graph == nil {
		return s.pickReceiverComplete(st, u)
	}
	nbrs := s.opts.Graph.Neighbors(u)
	if len(nbrs) == 0 {
		return -1, false
	}
	// Lazily shuffle the neighbor list and take the first qualified
	// entry: the first qualified element of a uniform permutation is
	// uniform over the qualified set.
	s.scratch = append(s.scratch[:0], nbrs...)
	sawInterest := false
	for i := range s.scratch {
		j := i + s.rng.Intn(len(s.scratch)-i)
		s.scratch[i], s.scratch[j] = s.scratch[j], s.scratch[i]
		v := int(s.scratch[i])
		interested, qualified := s.qualify(st, u, v)
		sawInterest = sawInterest || interested
		if qualified {
			return v, true
		}
	}
	return -1, sawInterest
}

// removeAvail drops a saturated receiver from the complete-graph
// candidate list (swap-remove, O(1)).
func (s *Scheduler) removeAvail(v int) {
	pos := s.availPos[v]
	if pos < 0 {
		return
	}
	last := int32(len(s.avail) - 1)
	moved := s.avail[last]
	s.avail[pos] = moved
	s.availPos[moved] = pos
	s.avail = s.avail[:last]
	s.availPos[v] = -1
	s.removedInTick++
}

// downUsedOf returns v's download budget consumed this tick; entries
// from earlier ticks read as zero via the epoch stamp.
func (s *Scheduler) downUsedOf(v int) int {
	if s.downStamp[v] != s.curTick {
		return 0
	}
	return s.downUsed[v]
}

// bumpDownUsed increments v's consumed download budget for this tick
// and returns the new value.
func (s *Scheduler) bumpDownUsed(v int) int {
	if s.downStamp[v] != s.curTick {
		s.downStamp[v] = s.curTick
		s.downUsed[v] = 0
	}
	s.downUsed[v]++
	return s.downUsed[v]
}

// incomingOf returns the blocks already scheduled toward v this tick
// (nil when none).
func (s *Scheduler) incomingOf(v int) []int32 {
	if s.incomingStamp[v] != s.curTick {
		return nil
	}
	return s.incoming[v]
}

// addIncoming records one more block in flight to v this tick; the
// first touch per tick resets v's stale list and registers v for the
// next tick's completion check.
func (s *Scheduler) addIncoming(v int, b int32) {
	if s.incomingStamp[v] != s.curTick {
		s.incomingStamp[v] = s.curTick
		s.incoming[v] = s.incoming[v][:0]
		s.touched = append(s.touched, int32(v))
	}
	s.incoming[v] = append(s.incoming[v], b)
}

// pickReceiverComplete is the complete-graph fast path: candidates are
// drawn from the per-tick available list (incomplete clients with
// download capacity left), since complete nodes and the server want no
// blocks.
func (s *Scheduler) pickReceiverComplete(st *simulate.State, u int) (int, bool) {
	m := len(s.avail)
	if m == 0 {
		// An empty candidate list mid-tick only means every incomplete
		// client is saturated right now — that must not prime the
		// no-peer cache, so report interest whenever receivers were
		// removed this tick.
		return -1, s.removedInTick > 0
	}
	// Subset test against the tick-start intersection of incomplete
	// clients: if u offers nothing outside it, no incomplete client
	// needs anything from u — now or later this tick (sets only grow),
	// so the result may safely prime the no-peer cache.
	if !st.Blocks(u).AnyMissingFrom(s.commonBlocks) {
		return -1, false
	}
	// Rejection-sample while the population is large; a miss streak
	// falls through to the exact scan. Capacity is guaranteed by the
	// avail list, so misses only come from disinterest or credit.
	const maxTries = 40
	if m > 64 {
		for try := 0; try < maxTries; try++ {
			v := int(s.avail[s.rng.Intn(m)])
			if v == u {
				continue
			}
			if _, qualified := s.qualify(st, u, v); qualified {
				return v, true
			}
		}
	}
	// Exact pass: uniform choice over all qualified receivers via
	// reservoir sampling.
	chosen := -1
	count := 0
	sawInterest := false
	for _, vv := range s.avail {
		v := int(vv)
		if v == u {
			continue
		}
		interested, qualified := s.qualify(st, u, v)
		sawInterest = sawInterest || interested
		if !qualified {
			continue
		}
		count++
		if s.rng.Intn(count) == 0 {
			chosen = v
		}
	}
	// The scan only covered unsaturated receivers; if any were removed
	// this tick, an interested-but-saturated peer may exist, so the
	// no-peer cache must not be primed from this result.
	if s.removedInTick > 0 {
		sawInterest = true
	}
	return chosen, sawInterest || chosen >= 0
}

// qualify reports whether v is interested in u's content (needs a block
// u holds beyond what is already in flight to v) and whether v is fully
// qualified (interested, has download capacity, and is within credit).
func (s *Scheduler) qualify(st *simulate.State, u, v int) (interested, qualified bool) {
	if v == 0 {
		return false, false // the server needs nothing
	}
	if !st.Alive(v) {
		return false, false // dead receivers are re-sampled around
	}
	if !s.needsSomething(st, u, v) {
		return false, false
	}
	if s.opts.DownloadCap != simulate.Unlimited && s.downUsedOf(v) >= s.opts.DownloadCap {
		return true, false
	}
	if s.ledger != nil && !s.ledger.CanSend(int32(u), int32(v)) {
		return true, false
	}
	if s.guard != nil && s.guard.Blocked(v, u, float64(st.Tick()+1)) {
		// v has quarantined u after stalls or garbage: still interested
		// in the content, but not from this sender right now.
		return true, false
	}
	return true, true
}

// needsSomething reports whether u holds a block v lacks, discounting
// blocks already being delivered to v this tick.
func (s *Scheduler) needsSomething(st *simulate.State, u, v int) bool {
	bu, bv := st.Blocks(u), st.Blocks(v)
	inflight := s.incomingOf(v)
	if len(inflight) == 0 {
		return bu.AnyMissingFrom(bv)
	}
	need := false
	bu.IterDiff(bv, func(b int) bool {
		for _, fb := range inflight {
			if int(fb) == b {
				return true // already in flight; keep looking
			}
		}
		need = true
		return false
	})
	return need
}

// pickBlock selects the block u uploads to v under the configured
// policy. Returns -1 if no useful block remains (in-flight blocks are
// excluded).
func (s *Scheduler) pickBlock(st *simulate.State, u, v int) int {
	bu, bv := st.Blocks(u), st.Blocks(v)
	inflight := s.incomingOf(v)
	useful := func(b int) bool {
		for _, fb := range inflight {
			if int(fb) == b {
				return false
			}
		}
		return true
	}
	// offered enumerates the blocks u can give v, ascending. A complete
	// sender (the server, or any finished peer that keeps seeding)
	// offers exactly v's complement, which IterateMissing scans without
	// touching the sender's words at all.
	offered := func(fn func(b int) bool) {
		if bu.Full() {
			bv.IterateMissing(fn)
		} else {
			bu.IterDiff(bv, fn)
		}
	}
	switch s.opts.Policy {
	case RarestFirst, LocalRare:
		best, bestFreq, ties := -1, int(^uint(0)>>1), 0
		offered(func(b int) bool {
			if !useful(b) {
				return true
			}
			f := s.blockFreq(st, v, b)
			switch {
			case f < bestFreq:
				best, bestFreq, ties = b, f, 1
			case f == bestFreq:
				// Reservoir over ties keeps the choice unbiased.
				ties++
				if s.rng.Intn(ties) == 0 {
					best = b
				}
			}
			return true
		})
		return best
	default: // Random
		// Count the useful blocks first, then index into them — one RNG
		// draw per transfer instead of one per candidate block.
		count := 0
		switch {
		case len(inflight) == 0 && bu.Full():
			count = s.k - bv.Count() // |complement| without a scan
		case len(inflight) == 0:
			count = bu.DiffCount(bv)
		default:
			offered(func(b int) bool {
				if useful(b) {
					count++
				}
				return true
			})
		}
		if count == 0 {
			return -1
		}
		target := s.rng.Intn(count)
		chosen := -1
		offered(func(b int) bool {
			if !useful(b) {
				return true
			}
			if target == 0 {
				chosen = b
				return false
			}
			target--
			return true
		})
		return chosen
	}
}

// blockFreq returns the replication count used for rarity comparisons.
func (s *Scheduler) blockFreq(st *simulate.State, v, b int) int {
	if s.opts.Policy == RarestFirst {
		return s.freq[b]
	}
	// LocalRare: count holders among v's alive neighbors. On the
	// complete graph the neighborhood estimate is taken over the
	// tick-start snapshot of alive incomplete clients (localPeers) —
	// counting over the live avail list would silently drop peers that
	// saturated their download capacity earlier in the same tick,
	// making the rarity estimate depend on intra-tick upload order.
	// Complete nodes and the server hold every block, so leaving them
	// out only shifts every count by the same constant and never
	// changes which block is rarest.
	count := 0
	if g := s.opts.Graph; g != nil {
		for _, w := range g.Neighbors(v) {
			if st.Alive(int(w)) && st.Has(int(w), b) {
				count++
			}
		}
		return count
	}
	for _, w := range s.localPeers {
		if st.Has(int(w), b) {
			count++
		}
	}
	return count
}

var _ fmt.Stringer = Policy(0)
