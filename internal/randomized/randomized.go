// Package randomized implements the paper's randomized content
// distribution algorithm (Sections 2.4 and 3.2.3) as a
// simulate.Scheduler.
//
// Per tick, every node u that holds data attempts one upload:
//
//  1. Among u's overlay neighbors, find those that (a) still need a
//     block u holds, (b) have download capacity left this tick, and
//     (c) — under credit-limited barter — are within u's credit limit.
//     Pick one uniformly at random.
//  2. Upload one block v needs, chosen by the block-selection policy:
//     Random (uniform over the useful blocks) or Rarest-First (the
//     globally least-replicated useful block, the paper's
//     perfect-statistics variant; LocalRare estimates rarity from the
//     receiver's neighborhood instead).
//
// The paper's "handshake protocol" that resolves collisions between
// simultaneous proposals is modeled by the sharded intent/merge tick
// (DESIGN.md §14): peers are partitioned into shard.Slots fixed logical
// lanes, each round every lane resolves its members' pairing decisions
// concurrently against the tick-start view plus its own reservations,
// and a sequential merge commits the proposals in canonical lane order
// against the shared capacity, duplicate-block, and credit constraints.
// Conflicting proposals retry in the next round until a round produces
// no proposals, which converges to the same greedy maximal matching the
// historical sequential handshake produced. Because every random draw
// comes from a lane stream derived from the peer id alone, the schedule
// is byte-identical for any worker count (Options.ShardWorkers).
//
// The scheduler supports arbitrary overlay graphs and special-cases the
// complete graph so large swarms stay fast: candidate receivers are
// rejection-sampled from the incomplete-node list, and the exact
// fallback enumerates the uploader's tick-start audience through the
// incremental eligibility index (index.go) instead of subset-testing
// every incomplete client.
package randomized

import (
	"fmt"

	"barterdist/internal/adversary"
	"barterdist/internal/bitset"
	"barterdist/internal/fault"
	"barterdist/internal/graph"
	"barterdist/internal/mechanism"
	"barterdist/internal/shard"
	"barterdist/internal/simulate"
	"barterdist/internal/xrand"
)

// Policy selects which block to upload once a receiver is chosen.
type Policy int

const (
	// Random uploads a uniformly random useful block (paper default).
	Random Policy = iota + 1
	// RarestFirst uploads the useful block with the fewest holders
	// system-wide (the paper's perfect-statistics Rarest-First).
	RarestFirst
	// LocalRare estimates rarity over the receiver's neighborhood
	// instead of global statistics (the paper notes results are almost
	// identical; this variant lets us check that claim).
	LocalRare
)

// String implements fmt.Stringer for experiment output.
func (p Policy) String() string {
	switch p {
	case Random:
		return "random"
	case RarestFirst:
		return "rarest-first"
	case LocalRare:
		return "local-rare"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configures the randomized scheduler.
type Options struct {
	// Graph is the overlay network. nil means the complete graph.
	Graph *graph.Graph
	// Policy is the block-selection policy; zero value means Random.
	Policy Policy
	// CreditLimit, when > 0, enforces credit-limited barter with the
	// given per-pair limit s (Section 3.2.3). Zero means cooperative.
	CreditLimit int
	// DownloadCap mirrors simulate.Config.DownloadCap and must match the
	// engine configuration: the scheduler uses it to model the handshake
	// that steers uploads away from saturated receivers.
	DownloadCap int
	// Seed makes the run reproducible.
	Seed uint64
	// RewireEvery, when > 0, rebuilds the overlay as a fresh random
	// regular graph of the same degree every RewireEvery ticks — the
	// "change neighbors periodically" variant the paper flags as
	// promising future work at the end of Section 3.2.4. Requires a
	// regular Graph (all degrees equal).
	RewireEvery int
	// ShardWorkers is how many OS workers resolve the shard.Slots
	// logical pairing lanes concurrently inside each tick. 0 and 1 both
	// mean inline sequential resolution. The schedule is byte-identical
	// for every value — the logical decomposition and the per-lane
	// draw streams are fixed; workers only decide physical concurrency.
	ShardWorkers int
}

// lane is the per-shard slice of the scheduler: the members owned by
// one logical shard, their dedicated xrand stream, and the
// receiver-indexed reservation scratch the lane writes during a
// concurrent pairing round. Two invariants make the concurrent phase
// race-free: a lane only draws randomness from its own stream and only
// writes lane-owned state (reservations, intents, its members' no-peer
// cache entries), and everything global it reads (ground-truth block
// sets, avail, the eligibility index, freq, the ledger, the guard) is
// mutated exclusively between rounds by beginTick and the merge.
type lane struct {
	rng     *xrand.Rand
	members []int32 // fixed ascending member ids (σ(v) = v mod shard.Slots)
	order   []int32 // per-tick Fisher–Yates shuffle of members
	pend    []int32 // uploaders to retry this round (staged by the merge)
	intents []intent
	// resStamp/resDown/resHead are receiver-indexed reservations, live
	// only when the stamp equals the scheduler's current round stamp:
	// resDown counts this lane's in-round download reservations for a
	// receiver, resHead heads the linked list (through intent.prev) of
	// this lane's in-round proposals to it.
	resStamp []int32
	resDown  []int32
	resHead  []int32
	// freqAdd/freqTouched carry the lane's in-round rarity deltas for
	// RarestFirst: committed transfers live in Scheduler.freq, proposals
	// made earlier in the same round by this lane add on top.
	freqAdd     []int32
	freqTouched []int32
	scratch     []int32 // neighbor shuffle buffer (general graphs)
}

// intent is one lane-local upload proposal awaiting the merge.
type intent struct {
	u, v, b int32
	prev    int32 // previous intent index targeting the same v this round, -1
}

// Scheduler is the randomized algorithm. Create one per simulation run;
// it carries per-run state (RNG streams, credit ledger, rarity
// statistics, the eligibility index).
type Scheduler struct {
	opts Options
	// rng is the base stream: it only drives lane-independent draws
	// (overlay rewiring). All pairing draws come from the lane streams.
	rng    *xrand.Rand
	ledger *mechanism.Ledger // nil in cooperative mode
	// guard is the peer-scoring/quarantine table, created lazily when
	// the simulation reports an active adversary plan: each receiver
	// backs off exponentially from senders that stalled it or served it
	// garbage, bans them past a strike threshold, and paroles them
	// periodically. nil in adversary-free runs — zero overhead.
	guard *adversary.Guard

	n, k    int
	init    bool
	workers int

	freq []int // freq[b] = number of nodes holding block b (committed)
	// downUsed and incoming are epoch-stamped per-tick scratch: an entry
	// is live only when its stamp equals the current tick, so beginTick
	// never pays an O(n) zeroing pass — per-tick cost is proportional to
	// the receivers actually touched, not to the node count. Both are
	// written only by the sequential merge.
	downUsed      []int
	downStamp     []int32
	incoming      [][]int32
	incomingStamp []int32
	curTick       int32
	// touched lists the receivers committed at least one transfer this
	// tick; the next beginTick checks exactly these for completion when
	// maintaining the candidate set.
	touched []int32
	// committed buffers this tick's merged transfers so the next
	// beginTick can fold the actually-applied deliveries into the
	// eligibility index (the engine owns dst, so the scheduler keeps its
	// own copy; nil-length in graph mode, which has no index).
	committed []simulate.Transfer
	// candidates is the persistent membership set behind avail: alive,
	// incomplete clients, maintained incrementally (completions come
	// from touched, liveness from the fault-event stream) instead of an
	// O(n) per-tick predicate scan. TestCandidateSetMatchesScan pins it
	// against the from-scratch rebuild.
	candidates *bitset.Set
	// avail holds the complete-graph candidate receivers for the current
	// tick: incomplete clients with download capacity left. Saturated
	// nodes are swap-removed by the merge as the tick progresses so both
	// sampling and the exact fallback stay proportional to the remaining
	// candidates.
	avail         []int32
	availPos      []int32 // availPos[v] = index of v in avail, -1 if absent
	removedInTick int     // saturated receivers dropped this tick
	// localPeers is the tick-start snapshot of avail used by the
	// LocalRare policy on the complete graph: rarity must be estimated
	// over every alive incomplete client, not over the shrinking avail
	// list, or the estimate would depend on which receivers happened to
	// saturate earlier in the same tick.
	localPeers []int32
	// index is the incremental missing-block/eligibility index
	// (complete-graph mode only; nil with an explicit overlay).
	index *eligIndex
	// noPeerAtCount[u] caches that u found no interested peer while
	// holding noPeerAtCount[u] blocks; valid until u's holdings grow
	// (interest is monotone in the sender's block set). It is only set
	// when the failed scan saw no interested peer at all — capacity- or
	// credit-blocked peers do not populate the cache. Lanes write only
	// their own members' entries, so concurrent rounds stay race-free.
	noPeerAtCount []int

	lanes [shard.Slots]*lane
	// laneTask is the pre-bound round closure handed to shard.Run so the
	// steady-state tick allocates nothing; it reads curState/curRound.
	laneTask   func(sg int) error
	curState   *simulate.State
	curRound   int32
	roundStamp int32
}

var _ simulate.Scheduler = (*Scheduler)(nil)

// Validate checks the options without mutating them. A zero Policy is
// accepted (it defaults to Random).
func (o *Options) Validate() error {
	switch o.Policy {
	case 0, Random, RarestFirst, LocalRare:
	default:
		return fmt.Errorf("randomized: unknown policy %d", int(o.Policy))
	}
	if o.CreditLimit < 0 {
		return fmt.Errorf("randomized: negative credit limit %d", o.CreditLimit)
	}
	if o.ShardWorkers < 0 {
		return fmt.Errorf("randomized: negative shard workers %d", o.ShardWorkers)
	}
	if o.RewireEvery < 0 {
		return fmt.Errorf("randomized: negative rewire interval %d", o.RewireEvery)
	}
	if o.RewireEvery > 0 {
		if o.Graph == nil {
			return fmt.Errorf("randomized: rewiring requires an explicit overlay graph")
		}
		d := o.Graph.Degree(0)
		for v := 1; v < o.Graph.N(); v++ {
			if o.Graph.Degree(v) != d {
				return fmt.Errorf("randomized: rewiring requires a regular graph (degree mismatch at node %d)", v)
			}
		}
	}
	return nil
}

// New returns a randomized scheduler. The overlay graph, if given, must
// have as many vertices as the simulation has nodes — this is checked on
// the first tick.
func New(opts Options) (*Scheduler, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Policy == 0 {
		opts.Policy = Random
	}
	s := &Scheduler{
		opts:    opts,
		rng:     xrand.New(opts.Seed),
		workers: shard.Workers(opts.ShardWorkers),
	}
	if opts.CreditLimit > 0 {
		ledger, err := mechanism.NewLedger(opts.CreditLimit)
		if err != nil {
			return nil, err
		}
		s.ledger = ledger
	}
	return s, nil
}

// Ledger exposes the credit ledger (nil in cooperative mode) so tests
// and experiments can inspect peak balances.
func (s *Scheduler) Ledger() *mechanism.Ledger { return s.ledger }

func (s *Scheduler) setup(st *simulate.State) error {
	s.n, s.k = st.N(), st.K()
	if g := s.opts.Graph; g != nil && g.N() != s.n {
		return fmt.Errorf("randomized: overlay has %d vertices but simulation has %d nodes", g.N(), s.n)
	}
	s.freq = make([]int, s.k)
	for b := 0; b < s.k; b++ {
		s.freq[b] = 1 // the server
	}
	s.downUsed = make([]int, s.n)
	s.downStamp = make([]int32, s.n)
	s.incoming = make([][]int32, s.n)
	s.incomingStamp = make([]int32, s.n)
	s.avail = make([]int32, 0, s.n)
	s.availPos = make([]int32, s.n)
	s.candidates = bitset.New(s.n)
	for v := 1; v < s.n; v++ {
		if st.Alive(v) && !st.Blocks(v).Full() {
			s.candidates.Add(v)
		}
	}
	if s.opts.Graph == nil {
		s.index = newEligIndex(s.n, s.k)
		s.candidates.Iter(func(v int) bool {
			s.index.addNode(st, v)
			return true
		})
		s.committed = s.committed[:0]
	}
	if s.opts.Policy == LocalRare && s.opts.Graph == nil {
		s.localPeers = make([]int32, 0, s.n)
	}
	s.noPeerAtCount = make([]int, s.n)
	for i := range s.noPeerAtCount {
		s.noPeerAtCount[i] = -1
	}
	streams := shard.Streams(s.opts.Seed)
	for sg := 0; sg < shard.Slots; sg++ {
		members := shard.Members(s.n, sg)
		ln := &lane{
			rng:      streams[sg],
			members:  members,
			order:    make([]int32, len(members)),
			resStamp: make([]int32, s.n),
			resDown:  make([]int32, s.n),
			resHead:  make([]int32, s.n),
			freqAdd:  make([]int32, s.k),
		}
		// Reservation stamps start at -1: the live round stamps are
		// always positive, so a fresh lane never reads a zero-value
		// entry as a live reservation.
		for i := range ln.resStamp {
			ln.resStamp[i] = -1
		}
		s.lanes[sg] = ln
	}
	s.laneTask = func(sg int) error {
		s.runLane(s.lanes[sg])
		return nil
	}
	if st.Adversarial() {
		guard, err := adversary.NewGuard(adversary.GuardOptions{})
		if err != nil {
			return err
		}
		s.guard = guard
	}
	s.init = true
	return nil
}

// Tick implements simulate.Scheduler: the sharded intent/merge tick.
// Rounds alternate a concurrent phase (every lane proposes transfers
// for its unmatched members) with a sequential canonical-order merge
// (lane 0's proposals in proposal order, then lane 1's, …) that commits
// or defers each proposal against the shared constraints. The first
// proposal of every round always commits — the phase validated it
// against exactly the state the merge starts from — so the loop
// terminates, and it stops as soon as a round proposes nothing.
func (s *Scheduler) Tick(t int, st *simulate.State, dst []simulate.Transfer) ([]simulate.Transfer, error) {
	if !s.init {
		if err := s.setup(st); err != nil {
			return nil, err
		}
	}
	if s.opts.RewireEvery > 0 && t > 1 && (t-1)%s.opts.RewireEvery == 0 {
		if err := s.rewire(); err != nil {
			return nil, err
		}
	}
	s.beginTick(st)

	s.curState = st
	for round := int32(0); ; round++ {
		s.curRound = round
		s.roundStamp++
		if err := shard.Run(s.workers, s.laneTask); err != nil {
			s.curState = nil
			return nil, err
		}
		proposals := 0
		for _, ln := range s.lanes {
			proposals += len(ln.intents)
		}
		if proposals == 0 {
			break
		}
		dst = s.merge(dst)
	}
	s.curState = nil
	return dst, nil
}

// runLane resolves one lane's pairing decisions for the current round:
// round 0 visits the lane's members in this tick's shuffled order
// (screening out nodes that cannot upload), later rounds revisit
// exactly the members whose previous proposal the merge deferred.
func (s *Scheduler) runLane(ln *lane) {
	st := s.curState
	ln.intents = ln.intents[:0]
	for _, b := range ln.freqTouched {
		ln.freqAdd[b] = 0
	}
	ln.freqTouched = ln.freqTouched[:0]
	if s.curRound == 0 {
		copy(ln.order, ln.members)
		shard.Shuffle32(ln.rng, ln.order)
		for _, uu := range ln.order {
			u := int(uu)
			if !st.Alive(u) {
				continue // crashed nodes neither offer nor receive
			}
			if st.Refuses(u) {
				continue // u's own strategy declines to upload this tick
			}
			c := st.CountOf(u)
			if c == 0 {
				continue // nothing to offer yet
			}
			if s.noPeerAtCount[u] == c {
				continue // no peer wanted anything at this holding level
			}
			s.attempt(ln, st, u)
		}
		return
	}
	for _, uu := range ln.pend {
		s.attempt(ln, st, int(uu))
	}
}

// attempt makes one pairing decision for uploader u and stages the
// resulting proposal (if any) for the merge.
func (s *Scheduler) attempt(ln *lane, st *simulate.State, u int) {
	v, sawInterest := s.pickReceiver(ln, st, u)
	if v < 0 {
		if !sawInterest {
			s.noPeerAtCount[u] = st.CountOf(u)
		}
		return
	}
	b := s.pickBlock(ln, st, u, v)
	if b < 0 {
		return // cannot happen if pickReceiver qualified v; defensive
	}
	idx := int32(len(ln.intents))
	prev := int32(-1)
	if ln.resStamp[v] == s.roundStamp {
		prev = ln.resHead[v]
		ln.resDown[v]++
	} else {
		ln.resStamp[v] = s.roundStamp
		ln.resDown[v] = 1
	}
	ln.resHead[v] = idx
	ln.intents = append(ln.intents, intent{u: int32(u), v: int32(v), b: int32(b), prev: prev})
	if s.opts.Policy == RarestFirst {
		if ln.freqAdd[b] == 0 {
			ln.freqTouched = append(ln.freqTouched, int32(b))
		}
		ln.freqAdd[b]++
	}
}

// merge commits this round's proposals in canonical lane order,
// re-validating each against the shared per-tick constraints (download
// capacity, duplicate blocks in flight, credit). A proposal that lost
// its slot to an earlier-merged one is deferred: its uploader retries
// with fresh draws next round.
//
// The lane order rotates by (tick + round) mod Slots. A fixed order
// would hand the same lane first claim on every contended receiver slot
// forever — in a credit-limited endgame that can permanently starve a
// receiver whose low-lane suitors are credit-blocked while its
// credit-worthy neighbors sit in higher lanes. The rotation is a pure
// function of run history, so it costs nothing in determinism or
// worker-invariance, and every lane gets first claim infinitely often.
func (s *Scheduler) merge(dst []simulate.Transfer) []simulate.Transfer {
	start := (int(s.curTick) + int(s.curRound)) % shard.Slots
	for i := 0; i < shard.Slots; i++ {
		ln := s.lanes[(start+i)%shard.Slots]
		ln.pend = ln.pend[:0]
		for i := range ln.intents {
			it := &ln.intents[i]
			v := int(it.v)
			if s.opts.DownloadCap != simulate.Unlimited && s.downUsedOf(v) >= s.opts.DownloadCap {
				ln.pend = append(ln.pend, it.u)
				continue
			}
			if s.blockInFlightGlobal(v, it.b) {
				ln.pend = append(ln.pend, it.u)
				continue
			}
			if s.ledger != nil && !s.ledger.CanSend(it.u, it.v) {
				ln.pend = append(ln.pend, it.u)
				continue
			}
			tr := simulate.Transfer{From: it.u, To: it.v, Block: it.b}
			dst = append(dst, tr)
			if s.index != nil {
				s.committed = append(s.committed, tr)
			}
			used := s.bumpDownUsed(v)
			s.addIncoming(v, it.b)
			s.freq[it.b]++
			if s.ledger != nil {
				s.ledger.Record(it.u, it.v)
			}
			if s.opts.DownloadCap != simulate.Unlimited && used >= s.opts.DownloadCap {
				s.removeAvail(v)
			}
		}
	}
	return dst
}

// beginTick folds the previous tick's outcomes into the incremental
// statistics and rebuilds the per-tick candidate structures.
//
// Fault awareness is fully incremental: losses reported by the engine
// undo the speculative freq increments made when the doomed transfers
// were scheduled, a crash subtracts exactly the victim's holdings from
// the rarity counts, and a rejoin adds them back (a wiped rejoiner
// contributes nothing — the engine already cleared its set, and its
// pre-wipe holdings were subtracted at crash time, which is why the
// delta form agrees with a from-scratch recount; TestIncrementalFreq*
// pins the equivalence against recomputeFreq). Fault events still
// flush the no-peer cache, which is keyed to the old population.
// Fault-free runs see empty event and loss lists, take no branch, and
// consume exactly the pre-fault RNG stream.
//
// The eligibility index gets the same treatment: last tick's committed
// transfers are folded in against ground truth (a delivery the engine
// dropped leaves the receiver still missing the block, so the
// conditional remove is a no-op), a crash withdraws the victim's
// missing-block entries, and a rejoin files the survivor's — or, when
// wiped, all k of them.
func (s *Scheduler) beginTick(st *simulate.State) {
	now := float64(st.Tick() + 1) // the tick about to be scheduled
	s.curTick = int32(st.Tick() + 1)
	if s.index != nil {
		for i := range s.committed {
			tr := &s.committed[i]
			if st.Has(int(tr.To), int(tr.Block)) {
				s.index.remove(int(tr.Block), int(tr.To))
			}
		}
		s.committed = s.committed[:0]
	}
	// Fold last tick's deliveries into the candidate set: only receivers
	// that were actually scheduled a transfer can have completed, so the
	// membership update costs O(active transfers), not O(n). Ground
	// truth (st.Blocks(v).Full()) already reflects the engine's applied
	// deliveries and drops.
	for _, v := range s.touched {
		if st.Blocks(int(v)).Full() {
			s.candidates.Remove(int(v))
		}
	}
	s.touched = s.touched[:0]
	for _, lt := range st.LostLastTick() {
		s.freq[lt.Block]--
		if s.guard != nil && (lt.Adversary || lt.Corrupt) {
			// The receiver scores the sender that stalled it or served
			// it garbage; network losses without verification failure
			// are not attributable to the sender and draw no strike.
			s.guard.Strike(int(lt.To), int(lt.From), now)
		}
		if s.ledger != nil && lt.Adversary {
			// Claw back the credit speculatively recorded at schedule
			// time: a block the sender's strategy withheld or garbled
			// earns nothing — otherwise a corrupter could farm barter
			// credit with garbage.
			s.ledger.Unrecord(lt.From, lt.To)
		}
	}
	if evs := st.FaultEvents(); len(evs) > 0 {
		for _, ev := range evs {
			switch ev.Kind {
			case fault.Crash, fault.Depart:
				// An open-system departure is a permanent crash as far as
				// rarity accounting goes: the leaver's holdings stop
				// counting toward replication.
				st.Blocks(int(ev.Node)).AccumulateCounts(s.freq, -1)
				s.candidates.Remove(int(ev.Node))
				if s.index != nil {
					s.index.removeNode(st, int(ev.Node))
				}
			case fault.Rejoin, fault.Arrive:
				// An open-system arrival is a wiped rejoin of a fresh id:
				// its block set is empty, so AccumulateCounts adds nothing
				// and the node files as an incomplete candidate.
				st.Blocks(int(ev.Node)).AccumulateCounts(s.freq, 1)
				// A wiped rejoiner is always incomplete; an intact one
				// may have completed before its crash.
				if !st.Blocks(int(ev.Node)).Full() {
					s.candidates.Add(int(ev.Node))
					if s.index != nil {
						s.index.addNode(st, int(ev.Node))
					}
				}
			}
		}
		for i := range s.noPeerAtCount {
			s.noPeerAtCount[i] = -1
		}
	}
	// Rebuild avail from the candidate set by word-level scan: ascending
	// node order (the determinism contract for the rejection sampler)
	// at O(n/64 + |avail|) instead of an O(n) predicate scan. availPos
	// entries of non-candidates are stale but unreachable — removeAvail
	// is only ever called for a node that was just handed a transfer,
	// which means it came out of avail this tick.
	s.avail = s.avail[:0]
	s.removedInTick = 0
	s.candidates.Iter(func(v int) bool {
		s.availPos[v] = int32(len(s.avail))
		s.avail = append(s.avail, int32(v))
		return true
	})
	if s.opts.Graph == nil && s.opts.Policy == LocalRare {
		// Snapshot before any mid-tick saturation removals.
		s.localPeers = append(s.localPeers[:0], s.avail...)
	}
}

// recomputeFreq rebuilds the global replication counts from the block
// sets of the currently alive nodes, one word-parallel
// AccumulateCounts per node. The hot path no longer calls it —
// beginTick maintains freq incrementally across crashes, rejoins, and
// in-flight losses — but it remains the oracle the incremental
// accounting is verified against in tests.
func (s *Scheduler) recomputeFreq(st *simulate.State) {
	for b := range s.freq {
		s.freq[b] = 0
	}
	for v := 0; v < s.n; v++ {
		if !st.Alive(v) {
			continue
		}
		st.Blocks(v).AccumulateCounts(s.freq, 1)
	}
}

// rewire replaces the overlay with a fresh random regular graph of the
// same degree and invalidates the no-peer cache (it is keyed to the old
// neighborhoods). Rewiring draws from the base stream, never the lane
// streams, so lane draw sequences stay independent of it.
func (s *Scheduler) rewire() error {
	g, err := graph.RandomRegular(s.opts.Graph.N(), s.opts.Graph.Degree(0), s.rng)
	if err != nil {
		return fmt.Errorf("randomized: rewire failed: %w", err)
	}
	s.opts.Graph = g
	for i := range s.noPeerAtCount {
		s.noPeerAtCount[i] = -1
	}
	return nil
}

// pickReceiver returns a uniformly random qualified receiver for u, or
// -1. sawInterest reports whether any peer was interested in u's content
// regardless of capacity or credit (used for the no-peer cache).
func (s *Scheduler) pickReceiver(ln *lane, st *simulate.State, u int) (int, bool) {
	if s.opts.Graph == nil {
		return s.pickReceiverComplete(ln, st, u)
	}
	nbrs := s.opts.Graph.Neighbors(u)
	if len(nbrs) == 0 {
		return -1, false
	}
	// Lazily shuffle the neighbor list and take the first qualified
	// entry: the first qualified element of a uniform permutation is
	// uniform over the qualified set.
	ln.scratch = append(ln.scratch[:0], nbrs...)
	sawInterest := false
	for i := range ln.scratch {
		j := i + ln.rng.Intn(len(ln.scratch)-i)
		ln.scratch[i], ln.scratch[j] = ln.scratch[j], ln.scratch[i]
		v := int(ln.scratch[i])
		interested, qualified := s.qualify(ln, st, u, v)
		sawInterest = sawInterest || interested
		if qualified {
			return v, true
		}
	}
	return -1, sawInterest
}

// removeAvail drops a saturated receiver from the complete-graph
// candidate list (swap-remove, O(1)).
func (s *Scheduler) removeAvail(v int) {
	pos := s.availPos[v]
	if pos < 0 {
		return
	}
	last := int32(len(s.avail) - 1)
	moved := s.avail[last]
	s.avail[pos] = moved
	s.availPos[moved] = pos
	s.avail = s.avail[:last]
	s.availPos[v] = -1
	s.removedInTick++
}

// downUsedOf returns v's download budget committed this tick; entries
// from earlier ticks read as zero via the epoch stamp.
func (s *Scheduler) downUsedOf(v int) int {
	if s.downStamp[v] != s.curTick {
		return 0
	}
	return s.downUsed[v]
}

// bumpDownUsed increments v's committed download budget for this tick
// and returns the new value.
func (s *Scheduler) bumpDownUsed(v int) int {
	if s.downStamp[v] != s.curTick {
		s.downStamp[v] = s.curTick
		s.downUsed[v] = 0
	}
	s.downUsed[v]++
	return s.downUsed[v]
}

// laneRes returns this lane's in-round download reservations for v on
// top of the committed budget.
func (s *Scheduler) laneRes(ln *lane, v int) int {
	if ln.resStamp[v] != s.roundStamp {
		return 0
	}
	return int(ln.resDown[v])
}

// incomingOf returns the blocks already committed toward v this tick
// (nil when none).
func (s *Scheduler) incomingOf(v int) []int32 {
	if s.incomingStamp[v] != s.curTick {
		return nil
	}
	return s.incoming[v]
}

// addIncoming records one more block committed to v this tick; the
// first touch per tick resets v's stale list and registers v for the
// next tick's completion check.
func (s *Scheduler) addIncoming(v int, b int32) {
	if s.incomingStamp[v] != s.curTick {
		s.incomingStamp[v] = s.curTick
		s.incoming[v] = s.incoming[v][:0]
		s.touched = append(s.touched, int32(v))
	}
	s.incoming[v] = append(s.incoming[v], b)
}

// blockInFlightGlobal reports whether b is already committed toward v
// this tick.
func (s *Scheduler) blockInFlightGlobal(v int, b int32) bool {
	for _, fb := range s.incomingOf(v) {
		if fb == b {
			return true
		}
	}
	return false
}

// blockInFlight additionally checks this lane's in-round proposals.
func (s *Scheduler) blockInFlight(ln *lane, v int, b int32) bool {
	if s.blockInFlightGlobal(v, b) {
		return true
	}
	if ln.resStamp[v] == s.roundStamp {
		for i := ln.resHead[v]; i >= 0; i = ln.intents[i].prev {
			if ln.intents[i].b == b {
				return true
			}
		}
	}
	return false
}

// interestSize is the uploader's tick-start audience size Σ_{b∈Bu}
// |missing(b)| — zero iff no alive incomplete client misses anything u
// holds, in which case (and only then) the no-peer cache may be primed.
func (s *Scheduler) interestSize(bu *bitset.Set) int {
	total := 0
	bu.Iter(func(b int) bool {
		total += int(s.index.count[b])
		return true
	})
	return total
}

// pickReceiverComplete is the complete-graph fast path: candidates are
// drawn from the per-tick available list (incomplete clients with
// download capacity left), since complete nodes and the server want no
// blocks. A miss streak in the rejection sampler falls through to the
// exact pass, which enumerates the uploader's audience through the
// eligibility index instead of subset-testing every candidate.
func (s *Scheduler) pickReceiverComplete(ln *lane, st *simulate.State, u int) (int, bool) {
	m := len(s.avail)
	if m == 0 {
		// An empty candidate list mid-tick only means every incomplete
		// client is saturated right now — that must not prime the
		// no-peer cache, so report interest whenever receivers were
		// removed this tick.
		return -1, s.removedInTick > 0
	}
	bu := st.Blocks(u)
	full := bu.Full()
	if !full && s.interestSize(bu) == 0 {
		// Nobody misses anything u holds — now or later this tick
		// (block sets only change at the tick boundary), so the result
		// may safely prime the no-peer cache.
		return -1, false
	}
	// Rejection-sample while the population is large. Capacity against
	// the committed budget is guaranteed by the avail list; the lane's
	// own reservations and credit are re-checked per draw.
	const maxTries = 40
	if m > 64 {
		for try := 0; try < maxTries; try++ {
			v := int(s.avail[ln.rng.Intn(m)])
			if v == u {
				continue
			}
			if _, qualified := s.qualify(ln, st, u, v); qualified {
				return v, true
			}
		}
	}
	if full {
		// A complete sender's audience is every candidate, so the index
		// offers no shortcut; scan the availability list with the cheap
		// interest test (an incomplete client always needs something
		// from a full sender unless in-flight transfers cover it).
		chosen := -1
		count := 0
		sawInterest := false
		for _, vv := range s.avail {
			v := int(vv)
			if v == u {
				continue
			}
			interested, qualified := s.qualify(ln, st, u, v)
			sawInterest = sawInterest || interested
			if !qualified {
				continue
			}
			count++
			if ln.rng.Intn(count) == 0 {
				chosen = v
			}
		}
		if s.removedInTick > 0 {
			sawInterest = true
		}
		return chosen, sawInterest || chosen >= 0
	}
	// Exact pass: choose the qualified audience member with the maximum
	// stateless priority, enumerated block by block through the index —
	// O(audience), not O(candidates). The priority hash is a bijection
	// of the node id for fixed (seed, uploader, tick, round), so the
	// winner is unique, uniform-ish over the qualified set, and —
	// crucially — independent of the member lists' internal order:
	// an index rebuilt from ground truth on resume enumerates the same
	// audience in a different order and still elects the same receiver
	// (duplicate appearances across block lists don't even need
	// deduplication, since max is idempotent). Interest is already
	// established (interestSize > 0), so the no-peer cache is never
	// primed from here.
	base := prioBase(s.opts.Seed, u, s.curTick, s.curRound)
	chosen := -1
	var best uint64
	bu.Iter(func(b int) bool {
		off := b * s.n
		cnt := int(s.index.count[b])
		for i := 0; i < cnt; i++ {
			v := int(s.index.members[off+i])
			p := mix64(base ^ uint64(uint32(v)))
			if chosen >= 0 && p <= best {
				continue // cheap reject before the qualification checks
			}
			if v == chosen || !s.qualifiedIndexed(ln, st, u, v) {
				continue
			}
			chosen, best = v, p
		}
		return true
	})
	return chosen, true
}

// mix64 is the 64-bit avalanche finalizer (Murmur3/SplitMix style): a
// bijection on uint64 with full-width diffusion.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// prioBase derives the per-pass hash base for the exact pass's
// stateless priorities. It depends only on (seed, uploader, tick,
// round) — all pure functions of run history that survive a
// checkpoint/resume cycle — and never on RNG stream state, so the
// exact pass consumes no lane draws.
func prioBase(seed uint64, u int, tick, round int32) uint64 {
	h := mix64(seed ^ uint64(uint32(u))<<32 ^ uint64(uint32(tick)))
	return mix64(h ^ uint64(uint32(round)))
}

// qualifiedIndexed is the qualification check for audience members
// enumerated from the eligibility index: membership already proves the
// receiver is an alive incomplete client that misses one of the
// uploader's blocks, so only capacity, credit, quarantine, and the
// in-flight discount remain.
func (s *Scheduler) qualifiedIndexed(ln *lane, st *simulate.State, u, v int) bool {
	if s.opts.DownloadCap != simulate.Unlimited && s.downUsedOf(v)+s.laneRes(ln, v) >= s.opts.DownloadCap {
		return false
	}
	if s.ledger != nil && !s.ledger.CanSend(int32(u), int32(v)) {
		return false
	}
	if s.guard != nil && s.guard.Blocked(v, u, float64(st.Tick()+1)) {
		return false
	}
	if s.incomingStamp[v] == s.curTick || ln.resStamp[v] == s.roundStamp {
		// Something is in flight or proposed to v: make sure u still
		// offers a block beyond it.
		if !s.needsSomething(ln, st, u, v) {
			return false
		}
	}
	return true
}

// qualify reports whether v is interested in u's content (needs a block
// u holds beyond what is already in flight or proposed to v) and
// whether v is fully qualified (interested, has download capacity
// beyond the committed budget and this lane's reservations, and is
// within credit).
func (s *Scheduler) qualify(ln *lane, st *simulate.State, u, v int) (interested, qualified bool) {
	if v == 0 {
		return false, false // the server needs nothing
	}
	if !st.Alive(v) {
		return false, false // dead receivers are re-sampled around
	}
	if !s.needsSomething(ln, st, u, v) {
		return false, false
	}
	if s.opts.DownloadCap != simulate.Unlimited && s.downUsedOf(v)+s.laneRes(ln, v) >= s.opts.DownloadCap {
		return true, false
	}
	if s.ledger != nil && !s.ledger.CanSend(int32(u), int32(v)) {
		return true, false
	}
	if s.guard != nil && s.guard.Blocked(v, u, float64(st.Tick()+1)) {
		// v has quarantined u after stalls or garbage: still interested
		// in the content, but not from this sender right now.
		return true, false
	}
	return true, true
}

// needsSomething reports whether u holds a block v lacks, discounting
// blocks already committed toward v this tick and this lane's in-round
// proposals.
func (s *Scheduler) needsSomething(ln *lane, st *simulate.State, u, v int) bool {
	bu, bv := st.Blocks(u), st.Blocks(v)
	if s.incomingStamp[v] != s.curTick && ln.resStamp[v] != s.roundStamp {
		return bu.AnyMissingFrom(bv)
	}
	need := false
	bu.IterDiff(bv, func(b int) bool {
		if s.blockInFlight(ln, v, int32(b)) {
			return true // already in flight or proposed; keep looking
		}
		need = true
		return false
	})
	return need
}

// pickBlock selects the block u uploads to v under the configured
// policy. Returns -1 if no useful block remains (in-flight and
// lane-proposed blocks are excluded).
func (s *Scheduler) pickBlock(ln *lane, st *simulate.State, u, v int) int {
	bu, bv := st.Blocks(u), st.Blocks(v)
	inflight := s.incomingStamp[v] == s.curTick || ln.resStamp[v] == s.roundStamp
	useful := func(b int) bool {
		return !inflight || !s.blockInFlight(ln, v, int32(b))
	}
	// offered enumerates the blocks u can give v, ascending. A complete
	// sender (the server, or any finished peer that keeps seeding)
	// offers exactly v's complement, which IterateMissing scans without
	// touching the sender's words at all.
	offered := func(fn func(b int) bool) {
		if bu.Full() {
			bv.IterateMissing(fn)
		} else {
			bu.IterDiff(bv, fn)
		}
	}
	switch s.opts.Policy {
	case RarestFirst, LocalRare:
		best, bestFreq, ties := -1, int(^uint(0)>>1), 0
		offered(func(b int) bool {
			if !useful(b) {
				return true
			}
			f := s.blockFreq(ln, st, v, b)
			switch {
			case f < bestFreq:
				best, bestFreq, ties = b, f, 1
			case f == bestFreq:
				// Reservoir over ties keeps the choice unbiased.
				ties++
				if ln.rng.Intn(ties) == 0 {
					best = b
				}
			}
			return true
		})
		return best
	default: // Random
		// Count the useful blocks first, then index into them — one RNG
		// draw per transfer instead of one per candidate block.
		count := 0
		switch {
		case !inflight && bu.Full():
			count = s.k - bv.Count() // |complement| without a scan
		case !inflight:
			count = bu.DiffCount(bv)
		default:
			offered(func(b int) bool {
				if useful(b) {
					count++
				}
				return true
			})
		}
		if count == 0 {
			return -1
		}
		target := ln.rng.Intn(count)
		chosen := -1
		offered(func(b int) bool {
			if !useful(b) {
				return true
			}
			if target == 0 {
				chosen = b
				return false
			}
			target--
			return true
		})
		return chosen
	}
}

// blockFreq returns the replication count used for rarity comparisons:
// the committed count plus this lane's in-round proposals.
func (s *Scheduler) blockFreq(ln *lane, st *simulate.State, v, b int) int {
	if s.opts.Policy == RarestFirst {
		return s.freq[b] + int(ln.freqAdd[b])
	}
	// LocalRare: count holders among v's alive neighbors. On the
	// complete graph the neighborhood estimate is taken over the
	// tick-start snapshot of alive incomplete clients (localPeers) —
	// counting over the live avail list would silently drop peers that
	// saturated their download capacity earlier in the same tick,
	// making the rarity estimate depend on intra-tick upload order.
	// Complete nodes and the server hold every block, so leaving them
	// out only shifts every count by the same constant and never
	// changes which block is rarest.
	count := 0
	if g := s.opts.Graph; g != nil {
		for _, w := range g.Neighbors(v) {
			if st.Alive(int(w)) && st.Has(int(w), b) {
				count++
			}
		}
		return count
	}
	for _, w := range s.localPeers {
		if st.Has(int(w), b) {
			count++
		}
	}
	return count
}

var _ fmt.Stringer = Policy(0)
