package core

import (
	"testing"

	"barterdist/internal/mechanism"
	"barterdist/internal/simulate"
)

// TestLargeSwarmSmoke is the in-tree half of the scale-out acceptance:
// a 20k-peer randomized run under credit-limited barter (s = 1) with
// the columnar trace recording every transfer must complete, replay
// clean through RunAudit, and satisfy the credit mechanism on the
// recorded trace. It exists to catch memory or complexity regressions
// (per-tick O(n) scans, trace re-allocation) that the small unit tests
// cannot see; the full n = 100k point runs via `make scale` and is
// recorded in EXPERIMENTS.md. Skipped under -short: it moves ~1.3M
// transfers.
func TestLargeSwarmSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-swarm smoke run skipped in -short mode")
	}
	cfg := Config{
		Nodes: 20000, Blocks: 64,
		Algorithm:   AlgoRandomized,
		CreditLimit: 1,
		DownloadCap: 1,
		RecordTrace: true,
		Seed:        46000,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CompletionTime <= 0 {
		t.Fatalf("no completion time recorded")
	}
	// Sanity-bound T: at least the cooperative optimum, and within a
	// small constant factor of it (the paper's price-of-barter regime).
	if res.CompletionTime < res.OptimalTime {
		t.Fatalf("T = %d beats the cooperative bound %d", res.CompletionTime, res.OptimalTime)
	}
	if res.CompletionTime > 6*res.OptimalTime {
		t.Fatalf("T = %d is > 6x the cooperative bound %d; scheduler has regressed", res.CompletionTime, res.OptimalTime)
	}
	if err := simulate.RunAudit(res.SimConfig, res.Sim); err != nil {
		t.Fatalf("RunAudit: %v", err)
	}
	if err := mechanism.VerifyCreditLimited(res.Sim.Trace.Cursor(), cfg.CreditLimit); err != nil {
		t.Fatalf("VerifyCreditLimited: %v", err)
	}
	// The same audit through the parallel pipeline at width 8 must agree.
	sc := res.SimConfig
	sc.AuditWorkers = 8
	if err := simulate.RunAudit(sc, res.Sim); err != nil {
		t.Fatalf("RunAudit(AuditWorkers=8): %v", err)
	}
	if err := mechanism.VerifyCreditLimitedLog(res.Sim.Trace, false, cfg.CreditLimit, 8); err != nil {
		t.Fatalf("VerifyCreditLimitedLog(workers=8): %v", err)
	}
	// Compression regression pin: the sealed frame-compressed log must
	// hold this ~1.3M-transfer trace at no more than 5 bytes per
	// transfer (raw columns are 12 B + drop bookkeeping). A codec
	// regression — a column falling off encDelta/encSplit onto encRaw,
	// or frames failing to seal — shows up here long before the 10^5
	// and 10^6 capstone runs would catch it.
	n := res.Sim.Trace.Len()
	if bpt := float64(res.Sim.Trace.MemSize()) / float64(n); bpt > 5 {
		t.Errorf("trace footprint %.2f B/transfer over %d transfers; want <= 5", bpt, n)
	}
}
