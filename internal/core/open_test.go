package core

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"barterdist/internal/arrival"
	"barterdist/internal/checkpoint"
	"barterdist/internal/fault"
	"barterdist/internal/randomized"
	"barterdist/internal/simulate"
)

// fingerprintOpen extends fingerprint with the open-system result so
// shard-invariance and kill-and-resume comparisons also cover the
// verdict, occupancy trajectory, and sojourn statistics.
func fingerprintOpen(res *Result) string {
	var b strings.Builder
	b.WriteString(fingerprint(res))
	o := res.Open
	if o == nil {
		b.WriteString("open=nil\n")
		return b.String()
	}
	fmt.Fprintf(&b, "open verdict=%v reason=%v arrived=%d departed=%d completed=%d early=%d peak=%d final=%d\n",
		o.Verdict, o.Reason, o.Arrived, o.Departed, o.Completed,
		o.EarlyExits, o.PeakOccupancy, o.FinalOccupancy)
	fmt.Fprintf(&b, "sojourn mean=%.17g max=%.17g\n", o.SojournMean, o.SojournMax)
	fmt.Fprintf(&b, "occupancy=%v\n", o.Occupancy)
	fmt.Fprintf(&b, "arrivals=%v\n", o.ArrivalTime)
	return b.String()
}

func TestOpenValidation(t *testing.T) {
	arr := &arrival.Options{Seed: 1, Rate: 0.5}
	for name, cfg := range map[string]Config{
		"default algorithm": {Nodes: 8, Blocks: 4, Arrivals: arr},
		"pipeline":          {Nodes: 8, Blocks: 4, Algorithm: AlgoPipeline, Arrivals: arr},
		"fixed overlay": {Nodes: 8, Blocks: 4, Algorithm: AlgoRandomized,
			Overlay: OverlayRandomRegular, Degree: 3, Arrivals: arr},
		"with fault": {Nodes: 8, Blocks: 4, Algorithm: AlgoRandomized,
			Arrivals: arr, Fault: &fault.Options{Seed: 1, CrashRate: 0.1}},
		"bad rate": {Nodes: 8, Blocks: 4, Algorithm: AlgoRandomized,
			Arrivals: &arrival.Options{Seed: 1, Rate: -1}},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestOpenDrains is the basic ergodic case: a modest Poisson stream
// into a rarest-first swarm empties the pool and drains.
func TestOpenDrains(t *testing.T) {
	res, err := Run(Config{
		Nodes:     129,
		Blocks:    8,
		Algorithm: AlgoRandomized,
		Policy:    randomized.RarestFirst,
		Seed:      42,
		Arrivals:  &arrival.Options{Seed: 7, Rate: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Open
	if o == nil {
		t.Fatal("open run returned nil Open result")
	}
	if o.Verdict != arrival.VerdictDrained {
		t.Fatalf("verdict = %v (reason %v), want Drained", o.Verdict, o.Reason)
	}
	if o.Arrived != 128 {
		t.Errorf("Arrived = %d, want 128", o.Arrived)
	}
	if o.Completed != 128 {
		t.Errorf("Completed = %d, want 128", o.Completed)
	}
	// The final completer's departure is scheduled for the tick after
	// the drain fires, so exactly one seed lingers at the end.
	if o.Departed != 127 {
		t.Errorf("Departed = %d, want 127 (SeedDepart default, last seed lingers)", o.Departed)
	}
	if o.FinalOccupancy != 0 {
		t.Errorf("FinalOccupancy = %d, want 0", o.FinalOccupancy)
	}
	if o.SojournMean <= 0 || o.SojournMax < o.SojournMean {
		t.Errorf("sojourn stats inconsistent: mean=%g max=%g", o.SojournMean, o.SojournMax)
	}
}

// TestOpenTriangularDrains runs the open system under triangular
// barter with selfish early exits and lingering seeds.
func TestOpenTriangularDrains(t *testing.T) {
	res, err := Run(Config{
		Nodes:       65,
		Blocks:      8,
		Algorithm:   AlgoTriangular,
		Policy:      randomized.RarestFirst,
		CycleLimit:  3,
		CreditLimit: 1,
		Seed:        11,
		Arrivals: &arrival.Options{
			Seed: 3, Rate: 0.4, EarlyExit: 0.25, Linger: 5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := res.Open
	if o == nil || o.Verdict != arrival.VerdictDrained {
		t.Fatalf("open = %+v, want Drained verdict", o)
	}
	if o.Arrived != 64 {
		t.Errorf("Arrived = %d, want 64", o.Arrived)
	}
	if o.EarlyExits == 0 {
		t.Error("EarlyExits = 0, want some selfish departures at EarlyExit=0.25")
	}
	if o.Completed+o.EarlyExits != o.Arrived {
		t.Errorf("Completed(%d) + EarlyExits(%d) != Arrived(%d)",
			o.Completed, o.EarlyExits, o.Arrived)
	}
}

// TestOpenShardInvariance: an open flash crowd must be byte-identical
// for ShardWorkers 1 and 8 — the acceptance bar for letting the
// sharded lanes loose on an open swarm.
func TestOpenShardInvariance(t *testing.T) {
	run := func(workers int, algo Algorithm) string {
		cfg := Config{
			Nodes:        257,
			Blocks:       16,
			Algorithm:    algo,
			Policy:       randomized.RarestFirst,
			Seed:         21,
			ShardWorkers: workers,
			RecordTrace:  true,
			Arrivals: &arrival.Options{
				Seed: 9, Rate: 2.0, EarlyExit: 0.1,
			},
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fingerprintOpen(res)
	}
	for _, algo := range []Algorithm{AlgoRandomized, AlgoTriangular} {
		if a, b := run(1, algo), run(8, algo); a != b {
			t.Errorf("%s: ShardWorkers=1 and 8 diverge", algo)
		}
	}
}

// TestOpenAudit replays recorded open runs — drained, selfish, and
// unstable-truncated — through simulate.RunAudit: the replay rebuilds
// the population from the Arrive/Depart log and the starvation audit
// must account for every peer, including the ones that left early.
func TestOpenAudit(t *testing.T) {
	for name, cfg := range map[string]Config{
		"drained": {
			Nodes: 129, Blocks: 8, Algorithm: AlgoRandomized,
			Policy: randomized.RarestFirst, Seed: 42,
			Arrivals: &arrival.Options{Seed: 7, Rate: 0.5},
		},
		"selfish": {
			Nodes: 65, Blocks: 8, Algorithm: AlgoTriangular,
			CycleLimit: 3, CreditLimit: 1, Seed: 11,
			Arrivals: &arrival.Options{Seed: 3, Rate: 0.4, EarlyExit: 0.3, Linger: 2},
		},
		"unstable": {
			Nodes: 513, Blocks: 2, Algorithm: AlgoRandomized, Seed: 5,
			Arrivals: &arrival.Options{Seed: 13, Rate: 1.5},
		},
	} {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cfg.RecordTrace = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := simulate.RunAudit(res.SimConfig, res.Sim); err != nil {
				t.Fatalf("RunAudit: %v", err)
			}
		})
	}
}

// TestOpenResumeMatchesUninterruptedRun extends the checkpoint
// acceptance bar to open swarms: checkpointing must not perturb the
// run, and resuming mid-flash-crowd must reproduce the uninterrupted
// fingerprint — arrival stream position, departure queue, watchdog
// windows, occupancy trajectory, all of it.
func TestOpenResumeMatchesUninterruptedRun(t *testing.T) {
	for _, sc := range []struct {
		name string
		cfg  Config
	}{
		{"randomized-open", Config{
			Nodes: 129, Blocks: 8, Algorithm: AlgoRandomized,
			Policy: randomized.RarestFirst, Seed: 42,
			Arrivals: &arrival.Options{Seed: 7, Rate: 1.0, EarlyExit: 0.2, Linger: 3},
		}},
		{"triangular-open", Config{
			Nodes: 65, Blocks: 8, Algorithm: AlgoTriangular,
			CycleLimit: 3, CreditLimit: 1, Seed: 11,
			Arrivals: &arrival.Options{Seed: 3, Rate: 0.6, SeedPolicy: arrival.SeedStay},
		}},
		{"randomized-open-unstable", Config{
			Nodes: 513, Blocks: 2, Algorithm: AlgoRandomized, Seed: 5,
			Arrivals: &arrival.Options{Seed: 13, Rate: 1.5},
		}},
	} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			cfg := sc.cfg
			cfg.RecordTrace = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("uninterrupted Run: %v", err)
			}
			want := fingerprintOpen(res)
			for _, every := range []int{1, 7} {
				path := filepath.Join(t.TempDir(), "run.ckpt")
				ck := cfg
				ck.Checkpoint = &checkpoint.Policy{Path: path, Every: every}
				ckRes, err := Run(ck)
				if err != nil {
					t.Fatalf("every=%d: checkpointed Run: %v", every, err)
				}
				if got := fingerprintOpen(ckRes); got != want {
					t.Fatalf("every=%d: checkpointing perturbed the open run", every)
				}
				snap, err := checkpoint.ReadFile(path)
				if err != nil {
					t.Fatalf("every=%d: ReadFile: %v", every, err)
				}
				resumed, err := Resume(cfg, snap)
				if err != nil {
					t.Fatalf("every=%d: Resume: %v", every, err)
				}
				if got := fingerprintOpen(resumed); got != want {
					t.Errorf("every=%d: resumed open run diverged", every)
				}
			}
		})
	}
}

// TestOpenTwoChunkInstability reproduces the Norros–Reittu two-chunk
// phenomenon in the synchronous engine: with k=2, departure at
// completion, and arrivals faster than the server's upload rate, the
// swarm collects in the "one club" — nearly everyone holds the same
// chunk, the scarce chunk exists only at the server and at peers that
// complete and immediately leave — and occupancy diverges. The
// watchdog must grade the run Unstable instead of hanging. The
// syndrome is selection-policy-independent (rarest-first cannot break
// the club, matching Hajek–Zhu's "missing piece" analysis), so both
// policies are pinned Unstable; what restores ergodicity is seed
// persistence (SeedStay, or a Linger window) or an arrival rate below
// the server's service rate.
func TestOpenTwoChunkInstability(t *testing.T) {
	base := Config{
		Nodes:     1025,
		Blocks:    2,
		Algorithm: AlgoRandomized,
		Seed:      5,
	}
	run := func(pol randomized.Policy, arr arrival.Options) *arrival.OpenResult {
		t.Helper()
		cfg := base
		cfg.Policy = pol
		cfg.Arrivals = &arr
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Open
	}

	fast := arrival.Options{Seed: 13, Rate: 1.5}
	for _, pol := range []randomized.Policy{randomized.Random, randomized.RarestFirst} {
		if o := run(pol, fast); o.Verdict != arrival.VerdictUnstable || o.Reason != arrival.ReasonDivergence {
			t.Errorf("policy %v, depart-at-completion: verdict = %v/%v (peak %d), want Unstable/divergence",
				pol, o.Verdict, o.Reason, o.PeakOccupancy)
		}
	}

	stay := fast
	stay.SeedPolicy = arrival.SeedStay
	if o := run(randomized.Random, stay); o.Verdict != arrival.VerdictDrained {
		t.Errorf("SeedStay: verdict = %v/%v, want Drained", o.Verdict, o.Reason)
	}

	linger := fast
	linger.Linger = 8
	if o := run(randomized.Random, linger); o.Verdict != arrival.VerdictDrained {
		t.Errorf("Linger=8: verdict = %v/%v, want Drained", o.Verdict, o.Reason)
	}

	slow := arrival.Options{Seed: 13, Rate: 0.25}
	if o := run(randomized.Random, slow); o.Verdict != arrival.VerdictDrained {
		t.Errorf("slow arrivals: verdict = %v/%v, want Drained", o.Verdict, o.Reason)
	}
}
