package core

import (
	"path/filepath"
	"testing"

	"barterdist/internal/adversary"
	"barterdist/internal/checkpoint"
	"barterdist/internal/fault"
)

// shardMatrixScenarios is the fingerprint matrix of the sharded tick
// core: every scenario class the paper's experiments exercise (clean,
// faulty, adversarial, credit-limited s=1) on both synchronous engines.
// The worker count ShardWorkers must never show through a trace — the
// tick partitions work over shard.Slots fixed logical lanes and merges
// at a deterministic barrier, so any P maps the same lane jobs onto a
// differently sized pool.
func shardMatrixScenarios() []struct {
	name string
	cfg  Config
} {
	faultOpts := &fault.Options{
		Seed:              77,
		CrashRate:         0.08,
		MaxCrashes:        3,
		RejoinDelay:       4,
		RejoinLosesBlocks: true,
		LossRate:          0.05,
		Victim:            fault.VictimUniform,
	}
	advOpts := &adversary.Options{
		Seed:                99,
		FreeRiderFrac:       0.15,
		ThrottlerFrac:       0.1,
		FalseAdvertiserFrac: 0.1,
		CorrupterFrac:       0.1,
		DefectorFrac:        0.05,
	}
	return []struct {
		name string
		cfg  Config
	}{
		{"randomized+clean", Config{
			Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized, Seed: 42,
		}},
		{"randomized+fault", Config{
			Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized, Seed: 42,
			Fault: faultOpts,
		}},
		{"randomized+adversary", Config{
			Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized, Seed: 13,
			CreditLimit: 1, Adversary: advOpts,
		}},
		{"randomized+credit1", Config{
			Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized, Seed: 13,
			CreditLimit: 1, DownloadCap: 1,
		}},
		{"randomized+overlay+fault", Config{
			Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized, Seed: 42,
			Overlay: OverlayRandomRegular, Degree: 6, Fault: faultOpts,
		}},
		{"triangular+clean", Config{
			Nodes: 20, Blocks: 10, Algorithm: AlgoTriangular,
			CycleLimit: 3, CreditLimit: 2, Seed: 7,
		}},
		{"triangular+fault", Config{
			Nodes: 20, Blocks: 10, Algorithm: AlgoTriangular,
			Overlay: OverlayRandomRegular, Degree: 6,
			CycleLimit: 3, CreditLimit: 2, Seed: 7, Fault: faultOpts,
		}},
		{"triangular+adversary", Config{
			Nodes: 20, Blocks: 10, Algorithm: AlgoTriangular,
			CycleLimit: 3, CreditLimit: 1, Seed: 17, Adversary: advOpts,
		}},
		{"triangular+credit1", Config{
			Nodes: 20, Blocks: 10, Algorithm: AlgoTriangular,
			CycleLimit: 3, CreditLimit: 1, Seed: 17,
		}},
	}
}

// TestShardWorkerFingerprintMatrix is the tentpole's acceptance test:
// for every scenario, the full run fingerprint (trace, fault log,
// adversary counters, credit metrics) at ShardWorkers ∈ {2, 3, 8} must
// be byte-identical to the single-worker reference. Run it under -race
// to also certify the lanes share nothing writable mid-round.
func TestShardWorkerFingerprintMatrix(t *testing.T) {
	for _, sc := range shardMatrixScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			run := func(workers int) string {
				cfg := sc.cfg
				cfg.RecordTrace = true
				cfg.ShardWorkers = workers
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("ShardWorkers=%d: Run: %v", workers, err)
				}
				return fingerprint(res)
			}
			want := run(1)
			for _, p := range []int{2, 3, 8} {
				if got := run(p); got != want {
					t.Fatalf("ShardWorkers=%d diverged from the single-worker reference:\n--- P=1 ---\n%s\n--- P=%d ---\n%s",
						p, head(want, 30), p, head(got, 30))
				}
			}
		})
	}
}

// TestResumeShardWorkerMatrix extends the checkpoint/resume guarantee
// across the worker knob: a snapshot carries the shard.Slots lane
// streams but no worker count, so a run checkpointed at one P must
// resume byte-identically at another. Exercised on the two heaviest
// scenarios (full fault + adversary stack on each engine) over every
// ordered pair from P ∈ {1, 8}.
func TestResumeShardWorkerMatrix(t *testing.T) {
	faultOpts := &fault.Options{
		Seed: 77, CrashRate: 0.08, MaxCrashes: 3, RejoinDelay: 4,
		RejoinLosesBlocks: true, LossRate: 0.05, Victim: fault.VictimUniform,
	}
	advOpts := &adversary.Options{
		Seed: 99, FreeRiderFrac: 0.15, ThrottlerFrac: 0.1,
		FalseAdvertiserFrac: 0.1, CorrupterFrac: 0.1, DefectorFrac: 0.05,
	}
	scenarios := []struct {
		name string
		cfg  Config
	}{
		{"randomized+credit+adversary+fault", Config{
			Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized,
			CreditLimit: 1, Seed: 13, Fault: faultOpts, Adversary: advOpts,
		}},
		{"triangular+adversary+fault", Config{
			Nodes: 20, Blocks: 10, Algorithm: AlgoTriangular,
			CycleLimit: 3, CreditLimit: 1, Seed: 17,
			Fault: faultOpts, Adversary: advOpts,
		}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			cfg := sc.cfg
			cfg.RecordTrace = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("reference Run: %v", err)
			}
			want := fingerprint(res)
			for _, writeP := range []int{1, 8} {
				path := filepath.Join(t.TempDir(), "run.ckpt")
				ck := cfg
				ck.ShardWorkers = writeP
				ck.Checkpoint = &checkpoint.Policy{Path: path, Every: 5}
				if _, err := Run(ck); err != nil {
					t.Fatalf("writeP=%d: checkpointed Run: %v", writeP, err)
				}
				snap, err := checkpoint.ReadFile(path)
				if err != nil {
					t.Fatalf("writeP=%d: ReadFile: %v", writeP, err)
				}
				for _, readP := range []int{1, 8} {
					rc := cfg
					rc.ShardWorkers = readP
					resumed, err := Resume(rc, snap)
					if err != nil {
						t.Fatalf("writeP=%d readP=%d: Resume: %v", writeP, readP, err)
					}
					if got := fingerprint(resumed); got != want {
						t.Errorf("snapshot written at P=%d resumed at P=%d diverged:\n--- reference ---\n%s\n--- resumed ---\n%s",
							writeP, readP, head(want, 30), head(got, 30))
					}
				}
			}
		})
	}
}
