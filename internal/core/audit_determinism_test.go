package core

import (
	"testing"

	"barterdist/internal/adversary"
	"barterdist/internal/arrival"
	"barterdist/internal/fault"
	"barterdist/internal/mechanism"
	"barterdist/internal/simulate"
)

// auditWorkerWidths is the worker matrix every audit verdict must be
// byte-identical across — the parallel auditor's determinism contract.
// Width 1 is the inline sequential path, so agreement across the matrix
// also proves agreement with sequential replay.
var auditWorkerWidths = []int{1, 2, 8}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// auditVerdicts is everything the audit surface reports for one
// recorded run at one worker width.
type auditVerdicts struct {
	replay  string // simulate.RunAudit
	strict  string // mechanism.VerifyStrictBarterLog (released view)
	credit  string // mechanism.VerifyCreditLimitedLog s=1 (released view)
	minimal int    // mechanism.MinimalCreditLimitLog (full view)
	starve  string // mechanism.VerifyStarvationLog s=1 (adversarial runs)
}

func collectVerdicts(res *Result, w int) auditVerdicts {
	sc := res.SimConfig
	sc.AuditWorkers = w
	v := auditVerdicts{
		replay:  errString(simulate.RunAudit(sc, res.Sim)),
		strict:  errString(mechanism.VerifyStrictBarterLog(res.Sim.Trace, true, w)),
		credit:  errString(mechanism.VerifyCreditLimitedLog(res.Sim.Trace, true, 1, w)),
		minimal: mechanism.MinimalCreditLimitLog(res.Sim.Trace, false, w),
	}
	if res.Sim.Strategies != nil {
		v.starve = errString(mechanism.VerifyStarvationLog(res.Sim, 1, w))
	}
	return v
}

// TestAuditWorkerInvarianceMatrix runs the full audit surface — trace
// replay plus every mechanism verifier — at AuditWorkers 1, 2, and 8
// over churny, adversarial, credit-limited, and open-system traces and
// requires byte-identical verdicts and error text everywhere. The
// cursor-based sequential verifiers are held to the same string, so
// the parallel Log forms can never drift from the reference.
func TestAuditWorkerInvarianceMatrix(t *testing.T) {
	scenarios := map[string]Config{
		"churn": {
			Nodes: 24, Blocks: 16, Algorithm: AlgoRandomized, Seed: 7, RecordTrace: true,
			Fault: &fault.Options{
				Seed: 1001, CrashRate: 0.02, MaxCrashes: 4,
				RejoinDelay: 8, RejoinLosesBlocks: true, LossRate: 0.05,
			},
		},
		// Plain randomized violates strict barter and credit s=1, so
		// this scenario pins the verifiers' violation text, not just
		// their nil verdicts.
		"plain-randomized": {
			Nodes: 20, Blocks: 12, Algorithm: AlgoRandomized, Seed: 3, RecordTrace: true,
		},
		"credit-s1": {
			Nodes: 24, Blocks: 16, Algorithm: AlgoRandomized, CreditLimit: 1,
			Seed: 5, RecordTrace: true,
		},
		// Without barter the free-riders leech: the starvation verifier
		// must report the same violating pair at every width.
		"adversary-no-barter": {
			Nodes: 32, Blocks: 16, Algorithm: AlgoRandomized, Seed: 11, RecordTrace: true,
			Adversary: &adversary.Options{
				Seed: 2001, FreeRiderFrac: 0.2, FalseAdvertiserFrac: 0.1, CorrupterFrac: 0.1,
			},
		},
		"adversary-credit-s1": {
			Nodes: 32, Blocks: 16, Algorithm: AlgoRandomized, CreditLimit: 1,
			Seed: 11, RecordTrace: true,
			Adversary: &adversary.Options{
				Seed: 2002, FreeRiderFrac: 0.2, FalseAdvertiserFrac: 0.1, CorrupterFrac: 0.1,
			},
		},
		"open-system": {
			Nodes: 24, Blocks: 8, Algorithm: AlgoRandomized, Seed: 9, RecordTrace: true,
			Arrivals: &arrival.Options{Seed: 7, Rate: 0.5},
		},
	}
	for name, cfg := range scenarios {
		t.Run(name, func(t *testing.T) {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			base := collectVerdicts(res, 1)
			for _, w := range auditWorkerWidths[1:] {
				if got := collectVerdicts(res, w); got != base {
					t.Errorf("AuditWorkers=%d verdicts diverge from sequential:\n got %+v\nwant %+v", w, got, base)
				}
			}
			// The cursor-based sequential verifiers are the reference
			// the Log forms must reproduce byte for byte.
			if ref := errString(mechanism.VerifyStrictBarter(res.Sim.Trace.ReleasedCursor())); ref != base.strict {
				t.Errorf("strict barter: Log form %q, cursor reference %q", base.strict, ref)
			}
			if ref := errString(mechanism.VerifyCreditLimited(res.Sim.Trace.ReleasedCursor(), 1)); ref != base.credit {
				t.Errorf("credit s=1: Log form %q, cursor reference %q", base.credit, ref)
			}
			if ref := mechanism.MinimalCreditLimit(res.Sim.Trace.Cursor()); ref != base.minimal {
				t.Errorf("minimal credit: Log form %d, cursor reference %d", base.minimal, ref)
			}
			if res.Sim.Strategies != nil {
				if ref := errString(mechanism.VerifyStarvation(res.Sim, 1)); ref != base.starve {
					t.Errorf("starvation: Log form %q, cursor reference %q", base.starve, ref)
				}
			}
		})
	}
}

// TestAuditWorkerInvarianceDoctored doctors a churny recorded run six
// ways and requires the audit to fail with the exact same error text
// at every worker width — the lowest-key merge must reproduce the
// sequential first error even on broken traces, where spurious
// downstream findings abound.
func TestAuditWorkerInvarianceDoctored(t *testing.T) {
	cfg := Config{
		Nodes: 24, Blocks: 16, Algorithm: AlgoRandomized, Seed: 7, RecordTrace: true,
		Fault: &fault.Options{
			Seed: 1001, CrashRate: 0.02, MaxCrashes: 4,
			RejoinDelay: 8, RejoinLosesBlocks: true, LossRate: 0.05,
		},
	}
	tamper := map[string]func(r *simulate.Result){
		"inflated useful count":      func(r *simulate.Result) { r.UsefulTransfers++ },
		"understated total count":    func(r *simulate.Result) { r.TotalTransfers-- },
		"claimed earlier completion": func(r *simulate.Result) { r.Trace.TruncateTicks(r.Trace.Ticks() - 1) },
		"swapped block id": func(r *simulate.Result) {
			start, _ := r.Trace.TickSpan(1)
			tr := r.Trace.At(start)
			tr.Block = int32(cfg.Blocks - 1)
			r.Trace.Set(start, tr)
		},
		"forged transfer target": func(r *simulate.Result) {
			start, _ := r.Trace.TickSpan(2)
			tr := r.Trace.At(start)
			tr.To = tr.From
			r.Trace.Set(start, tr)
		},
		"shifted client completion": func(r *simulate.Result) { r.ClientCompletion[3]++ },
	}
	for name, mut := range tamper {
		t.Run(name, func(t *testing.T) {
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mut(res.Sim)
			sc := res.SimConfig
			sc.AuditWorkers = 1
			base := errString(simulate.RunAudit(sc, res.Sim))
			if base == "<nil>" {
				t.Fatalf("doctored run passed the audit")
			}
			for _, w := range auditWorkerWidths[1:] {
				sc.AuditWorkers = w
				if got := errString(simulate.RunAudit(sc, res.Sim)); got != base {
					t.Errorf("AuditWorkers=%d error %q, sequential %q", w, got, base)
				}
			}
		})
	}
}
