package core

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"barterdist/internal/adversary"
	"barterdist/internal/checkpoint"
	"barterdist/internal/fault"
	"barterdist/internal/randomized"
)

// resumeScenarios is the determinism matrix for checkpoint/resume:
// every mechanism the paper analyzes (randomized barter-free, credit
// s=1, triangular), a stateless precomputed schedule, and the full
// fault + adversary stack.
func resumeScenarios() []struct {
	name string
	cfg  Config
} {
	faultOpts := &fault.Options{
		Seed:              77,
		CrashRate:         0.08,
		MaxCrashes:        3,
		RejoinDelay:       4,
		RejoinLosesBlocks: true,
		LossRate:          0.05,
		Victim:            fault.VictimUniform,
	}
	advOpts := &adversary.Options{
		Seed:                99,
		FreeRiderFrac:       0.15,
		ThrottlerFrac:       0.1,
		FalseAdvertiserFrac: 0.1,
		CorrupterFrac:       0.1,
		DefectorFrac:        0.05,
	}
	return []struct {
		name string
		cfg  Config
	}{
		{"randomized", Config{
			Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized, Seed: 42,
		}},
		{"randomized+rarest+credit1", Config{
			Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized,
			Policy: randomized.RarestFirst, CreditLimit: 1, Seed: 13,
		}},
		{"triangular", Config{
			Nodes: 20, Blocks: 10, Algorithm: AlgoTriangular,
			Overlay: OverlayRandomRegular, Degree: 6,
			CycleLimit: 3, CreditLimit: 2, Seed: 7,
		}},
		{"randomized+overlay+fault", Config{
			Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized,
			Overlay: OverlayRandomRegular, Degree: 6, Seed: 42,
			Fault: faultOpts,
		}},
		{"randomized+credit+adversary+fault", Config{
			Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized,
			CreditLimit: 1, Seed: 13,
			Fault: faultOpts, Adversary: advOpts,
		}},
		{"triangular+adversary+fault", Config{
			Nodes: 20, Blocks: 10, Algorithm: AlgoTriangular,
			CycleLimit: 3, CreditLimit: 1, Seed: 17,
			Fault: faultOpts, Adversary: advOpts,
		}},
		{"binomial-pipeline", Config{
			Nodes: 18, Blocks: 9, Algorithm: AlgoBinomialPipeline, Seed: 5,
		}},
	}
}

// TestResumeMatchesUninterruptedRun is the central acceptance test of
// the checkpoint layer: for every scenario, (a) checkpointing must not
// perturb the run, and (b) resuming from the last on-disk snapshot
// must finish with a fingerprint byte-identical to the uninterrupted
// run's — trace, fault log, adversary counters, credit metrics, all of
// it. Exercised at two checkpoint intervals so both an early and a
// near-final snapshot are resumed from.
func TestResumeMatchesUninterruptedRun(t *testing.T) {
	for _, sc := range resumeScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			cfg := sc.cfg
			cfg.RecordTrace = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("uninterrupted Run: %v", err)
			}
			want := fingerprint(res)
			for _, every := range []int{1, 5} {
				path := filepath.Join(t.TempDir(), "run.ckpt")
				ck := cfg
				ck.Checkpoint = &checkpoint.Policy{Path: path, Every: every}
				ckRes, err := Run(ck)
				if err != nil {
					t.Fatalf("every=%d: checkpointed Run: %v", every, err)
				}
				if got := fingerprint(ckRes); got != want {
					t.Fatalf("every=%d: checkpointing perturbed the run:\n--- plain ---\n%s\n--- checkpointed ---\n%s",
						every, head(want, 30), head(got, 30))
				}
				snap, err := checkpoint.ReadFile(path)
				if err != nil {
					t.Fatalf("every=%d: ReadFile: %v", every, err)
				}
				resumed, err := Resume(cfg, snap)
				if err != nil {
					t.Fatalf("every=%d: Resume: %v", every, err)
				}
				if got := fingerprint(resumed); got != want {
					t.Errorf("every=%d: resumed run diverged:\n--- uninterrupted ---\n%s\n--- resumed ---\n%s",
						every, head(want, 30), head(got, 30))
				}
			}
		})
	}
}

// TestResumeRejectsConfigDrift pins that a snapshot only resumes under
// the configuration that produced it: change the file size and the
// restore must fail loudly (a usage error, distinct from ErrCorrupt:
// the file is intact, the pairing is wrong) rather than continue a
// different run.
func TestResumeRejectsConfigDrift(t *testing.T) {
	cfg := Config{Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized, Seed: 42, RecordTrace: true}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck := cfg
	ck.Checkpoint = &checkpoint.Policy{Path: path, Every: 3}
	if _, err := Run(ck); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	drifted := cfg
	drifted.Blocks = 13
	_, err = Resume(drifted, snap)
	if err == nil {
		t.Fatal("Resume accepted a snapshot from a different configuration")
	}
	if !strings.Contains(err.Error(), "different config") {
		t.Fatalf("Resume under drifted config: err = %v, want a config-mismatch error", err)
	}
}

// TestResumeRejectsBitFlips flips every 97th byte of a real snapshot in
// turn and requires ReadFile/Resume to fail with ErrCorrupt each time —
// the per-section checksums leave no silently decodable corruption.
func TestResumeRejectsBitFlips(t *testing.T) {
	cfg := Config{Nodes: 20, Blocks: 10, Algorithm: AlgoTriangular,
		CycleLimit: 3, CreditLimit: 1, Seed: 17, RecordTrace: true}
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck := cfg
	ck.Checkpoint = &checkpoint.Policy{Path: path, Every: 2}
	if _, err := Run(ck); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(orig); off += 97 {
		data := append([]byte(nil), orig...)
		data[off] ^= 0x01
		mut := filepath.Join(t.TempDir(), "mut.ckpt")
		if err := os.WriteFile(mut, data, 0o600); err != nil {
			t.Fatal(err)
		}
		snap, err := checkpoint.ReadFile(mut)
		if err == nil {
			_, err = Resume(cfg, snap)
		}
		if !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("bit flip at offset %d: err = %v, want ErrCorrupt", off, err)
		}
	}
}

// TestCheckpointRefusedUnderSelfHeal pins the documented limitation: a
// precomputed schedule wrapped in the self-healing rebuild layer has
// real mid-run state that is not snapshotted, so asking for checkpoints
// must fail loudly instead of writing a snapshot that cannot replay.
func TestCheckpointRefusedUnderSelfHeal(t *testing.T) {
	cfg := Config{
		Nodes: 18, Blocks: 9, Algorithm: AlgoBinomialPipeline, Seed: 5,
		Fault: &fault.Options{Seed: 77, CrashRate: 0.08, MaxCrashes: 2, RejoinDelay: 4},
		Checkpoint: &checkpoint.Policy{
			Path:  filepath.Join(t.TempDir(), "run.ckpt"),
			Every: 1,
		},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("checkpointing a SelfHeal-wrapped run succeeded; it must be refused")
	}
}
