// Package core ties the substrates together behind a single entry point:
// describe a content-distribution scenario as a Config, call Run, and get
// back completion-time metrics, optimality gaps, and optional mechanism
// audits.
//
// It is the implementation behind the repository's public barterdist
// facade and is what the example programs, CLIs, and benchmark harness
// drive.
package core

import (
	"errors"
	"fmt"

	"barterdist/internal/adversary"
	"barterdist/internal/analysis"
	"barterdist/internal/arrival"
	"barterdist/internal/checkpoint"
	"barterdist/internal/fault"
	"barterdist/internal/graph"
	"barterdist/internal/mechanism"
	"barterdist/internal/randomized"
	"barterdist/internal/schedule"
	"barterdist/internal/simulate"
	"barterdist/internal/trace"
	"barterdist/internal/xrand"
)

// Algorithm names a content-distribution algorithm from the paper.
type Algorithm string

// The supported algorithms.
const (
	// AlgoPipeline is the chain of Section 2.2.1.
	AlgoPipeline Algorithm = "pipeline"
	// AlgoMulticastTree is the m-ary tree of Section 2.2.2 (set TreeArity).
	AlgoMulticastTree Algorithm = "multicast-tree"
	// AlgoBinomialTree is the blockwise broadcast of Section 2.2.3.
	AlgoBinomialTree Algorithm = "binomial-tree"
	// AlgoBinomialPipeline is the paper's optimal algorithm (Section 2.3).
	AlgoBinomialPipeline Algorithm = "binomial-pipeline"
	// AlgoMultiServer is the m-virtual-server variant of Section 2.3.4
	// (set VirtualServers).
	AlgoMultiServer Algorithm = "multi-server"
	// AlgoRiffle is the strict-barter Riffle Pipeline of Section 3.1.3.
	AlgoRiffle Algorithm = "riffle"
	// AlgoRandomized is the randomized algorithm of Sections 2.4/3.2.3
	// (configure Overlay, Policy, CreditLimit).
	AlgoRandomized Algorithm = "randomized"
	// AlgoTriangular is the randomized algorithm under triangular barter
	// (Section 3.3, the paper's future work): blocked transfers settle
	// around simultaneous cycles of length <= CycleLimit.
	AlgoTriangular Algorithm = "randomized-triangular"
)

// Overlay names an overlay topology for the randomized algorithm.
type Overlay string

// The supported overlays.
const (
	// OverlayComplete is the complete graph (Figures 3 and 4).
	OverlayComplete Overlay = "complete"
	// OverlayRandomRegular is a random Degree-regular graph (Figures 5-7).
	OverlayRandomRegular Overlay = "random-regular"
	// OverlayHypercube is the paired hypercube of Section 2.3.3.
	OverlayHypercube Overlay = "hypercube"
	// OverlayChain is the path graph.
	OverlayChain Overlay = "chain"
)

// Mechanism names a barter mechanism for trace verification.
type Mechanism string

// The verifiable mechanisms.
const (
	// MechanismNone skips verification.
	MechanismNone Mechanism = ""
	// MechanismStrict verifies Section 3.1 strict barter.
	MechanismStrict Mechanism = "strict"
	// MechanismCredit verifies Section 3.2 credit-limited barter with
	// limit CreditLimit (default 1).
	MechanismCredit Mechanism = "credit"
	// MechanismTriangular verifies Section 3.3 triangular barter with
	// limit CreditLimit (default 1).
	MechanismTriangular Mechanism = "triangular"
)

// Config describes one dissemination run.
type Config struct {
	// Nodes is the total node count (server + clients), >= 2.
	Nodes int
	// Blocks is the file size in blocks, >= 1.
	Blocks int
	// Algorithm selects the schedule; default AlgoBinomialPipeline.
	Algorithm Algorithm

	// TreeArity is the multicast tree fan-out (default 2).
	TreeArity int
	// VirtualServers is the multi-server split m (default 2); the engine
	// gives the server m upload slots per tick.
	VirtualServers int
	// RiffleOverlap selects the D >= 2U overlapped riffle (default true;
	// set DownloadCap >= 2 or leave it 0 to have Run pick it).
	RiffleNoOverlap bool

	// Overlay selects the randomized algorithm's overlay; default
	// OverlayComplete.
	Overlay Overlay
	// Degree is the random-regular overlay degree (required for
	// OverlayRandomRegular).
	Degree int
	// Policy is the block-selection policy (default randomized.Random).
	Policy randomized.Policy
	// CreditLimit > 0 runs the randomized algorithm under credit-limited
	// barter; it is also the limit used by MechanismCredit verification.
	CreditLimit int
	// CycleLimit is the longest settlement cycle for AlgoTriangular
	// (default 3; 2 degenerates to credit-limited barter).
	CycleLimit int
	// RewireEvery > 0 rebuilds the randomized algorithm's random regular
	// overlay every RewireEvery ticks (the paper's "change neighbors
	// periodically" variant).
	RewireEvery int

	// ShardWorkers is how many OS workers resolve the randomized-family
	// schedulers' intra-tick pairing lanes concurrently (see
	// internal/shard). 0 and 1 both mean inline sequential resolution.
	// Results are byte-identical for every value; this knob only trades
	// wall-clock for cores.
	ShardWorkers int

	// AuditWorkers is how many OS workers the post-run audits use:
	// simulate.RunAudit's fixed tick-chunk/node-lane partition and the
	// mechanism verifiers' pair lanes. 0 and 1 both mean inline
	// sequential replay. Verdicts and error text are byte-identical for
	// every value; the knob only trades wall-clock for cores.
	AuditWorkers int

	// DownloadCap is the per-node download capacity D. 0 lets Run choose
	// the algorithm's natural requirement (2 for the overlapped riffle,
	// 1 for the randomized algorithm, unbounded for deterministic
	// schedules); DownloadUnlimited removes the bound.
	DownloadCap int
	// Seed drives every random choice (overlay construction and the
	// randomized algorithm).
	Seed uint64
	// RecordTrace retains the full transfer trace (needed for Verify).
	RecordTrace bool
	// Verify audits the recorded trace against a mechanism after the run.
	Verify Mechanism
	// MaxTicks bounds the simulation (0 = generous default). Runs that
	// exceed it — e.g. credit-limited runs on under-provisioned overlays
	// (Figure 6's "off the charts" region) — return ErrStalled.
	MaxTicks int

	// Fault, when non-nil, injects deterministic adversity (crashes,
	// rejoins, transfer loss) into the run; see fault.Options. The
	// deterministic pipeline schedules are automatically wrapped in
	// schedule.SelfHeal so they survive churn; the randomized schedulers
	// are natively fault-aware. A nil Fault reproduces the fault-free
	// engine byte for byte.
	Fault *fault.Options

	// Arrivals, when non-nil, runs an open-system swarm instead of the
	// paper's closed one: clients enter by a seeded Poisson process (rate
	// Arrivals.Rate per tick) until the Nodes-1 client pool is exhausted,
	// depart per Arrivals' policies (at completion, early selfish exit,
	// lingering seeds), and a stability watchdog grades the run Drained
	// or Unstable instead of erroring on divergence; see arrival.Options.
	// Only the swarm algorithms (AlgoRandomized, AlgoTriangular) on the
	// complete overlay support open mode, and it composes with
	// Checkpoint but not with Fault or Adversary.
	Arrivals *arrival.Options

	// Adversary, when non-nil, assigns misbehaving strategies to a
	// deterministic subset of clients — free-riders, throttlers,
	// false-advertisers, corrupters, and defectors; see
	// adversary.Options. Completion then means every HONEST client
	// completed, the randomized schedulers quarantine detected
	// misbehavers, and Verify audits only the transfers the adversary
	// actually released. Composes with Fault. A nil Adversary
	// reproduces the compliant engine byte for byte.
	Adversary *adversary.Options

	// Checkpoint enables periodic crash-safe snapshots: every
	// Checkpoint.Every ticks the engine state is written atomically to
	// Checkpoint.Path. An interrupted run continues via Resume with a
	// byte-identical remainder. Supported by the randomized schedulers
	// and the pure precomputed schedules; SelfHeal-wrapped runs (Fault
	// with a deterministic algorithm) refuse to checkpoint.
	Checkpoint *checkpoint.Policy
}

// Result reports a completed run.
type Result struct {
	// CompletionTime is the tick at which the last client finished.
	CompletionTime int
	// OptimalTime is Theorem 1's cooperative lower bound for (n, k).
	OptimalTime int
	// StrictBarterBound is Theorem 2's strict-barter lower bound.
	StrictBarterBound int
	// Efficiency is useful transfers over total upload slots used.
	Efficiency float64
	// MinimalCreditLimit is the smallest s the recorded trace would have
	// satisfied (0 unless RecordTrace).
	MinimalCreditLimit int
	// Overlay describes the overlay used, if any.
	Overlay string
	// Sim carries the raw engine result (per-client completion times,
	// per-tick upload counts, trace when recorded).
	Sim *simulate.Result
	// SimConfig is the exact engine configuration the run used (after
	// Run's defaulting), so callers can replay it — e.g. through
	// simulate.RunAudit. Its Fault field is nil: the consumed plan is
	// not reusable, and auditing replays from Sim.FaultLog instead.
	SimConfig simulate.Config
	// Open carries the open-system verdict and robustness
	// instrumentation when Config.Arrivals was set (nil otherwise).
	Open *arrival.OpenResult
}

// DownloadUnlimited as Config.DownloadCap removes the download bound.
const DownloadUnlimited = -1

// ErrStalled wraps simulate.ErrMaxTicks for callers that treat
// non-completion as data (Figure 6 treats stalls as off-the-chart
// points).
var ErrStalled = errors.New("core: run did not complete within MaxTicks")

// Validate checks the raw configuration without mutating it. Zero
// fields with documented defaults (Algorithm, DownloadCap, …) are
// accepted; Run applies the defaults after validation.
func (c *Config) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("core: Nodes = %d, need >= 2", c.Nodes)
	}
	if c.Blocks < 1 {
		return fmt.Errorf("core: Blocks = %d, need >= 1", c.Blocks)
	}
	if c.DownloadCap < 0 && c.DownloadCap != DownloadUnlimited {
		return fmt.Errorf("core: DownloadCap = %d is invalid", c.DownloadCap)
	}
	if c.ShardWorkers < 0 {
		return fmt.Errorf("core: ShardWorkers = %d is invalid", c.ShardWorkers)
	}
	if c.AuditWorkers < 0 {
		return fmt.Errorf("core: AuditWorkers = %d is invalid", c.AuditWorkers)
	}
	if c.Arrivals != nil {
		if err := c.Arrivals.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		switch c.Algorithm {
		case AlgoRandomized, AlgoTriangular:
		default:
			return fmt.Errorf("core: open-system Arrivals requires AlgoRandomized or AlgoTriangular (got %q)", c.Algorithm)
		}
		if c.Overlay != OverlayComplete && c.Overlay != "" {
			return fmt.Errorf("core: open-system Arrivals requires the complete overlay (got %q): fixed overlays have no edges for peers that did not exist at build time", c.Overlay)
		}
		if c.Fault != nil {
			return errors.New("core: Arrivals and Fault are mutually exclusive — open-system churn is the arrival plan's job")
		}
		if c.Adversary != nil {
			return errors.New("core: Arrivals does not compose with Adversary yet")
		}
	}
	return nil
}

// Run executes one configured dissemination and returns its metrics.
//
//lint:novalidate audited forwarder — prepare calls cfg.Validate
func Run(cfg Config) (*Result, error) {
	simCfg, sched, overlayName, err := prepare(&cfg)
	if err != nil {
		return nil, err
	}
	simRes, err := simulate.Run(simCfg, sched)
	if err != nil {
		if errors.Is(err, simulate.ErrMaxTicks) {
			return nil, fmt.Errorf("%w: %v", ErrStalled, err)
		}
		return nil, err
	}
	return buildResult(cfg, simCfg, overlayName, simRes)
}

// Resume continues a checkpointed run from its snapshot file. cfg must
// be the exact configuration of the interrupted Run call — the scenario
// (scheduler, overlay, fault and adversary plans) is rebuilt from it,
// then rewound to the snapshot's tick boundary. By the determinism
// contract the combined result is byte-identical to an uninterrupted
// run's.
//
//lint:novalidate audited forwarder — prepare calls cfg.Validate
func Resume(cfg Config, snap *checkpoint.Snapshot) (*Result, error) {
	simCfg, sched, overlayName, err := prepare(&cfg)
	if err != nil {
		return nil, err
	}
	simRes, err := simulate.Resume(simCfg, sched, snap)
	if err != nil {
		if errors.Is(err, simulate.ErrMaxTicks) {
			return nil, fmt.Errorf("%w: %v", ErrStalled, err)
		}
		return nil, err
	}
	return buildResult(cfg, simCfg, overlayName, simRes)
}

// prepare validates cfg, applies defaults, and builds the engine
// configuration, scheduler, and single-use fault/adversary plans for
// one run. Run and Resume share it so a resumed scenario is constructed
// exactly like the original.
func prepare(cfg *Config) (simulate.Config, simulate.Scheduler, string, error) {
	if err := cfg.Validate(); err != nil {
		return simulate.Config{}, nil, "", err
	}
	if cfg.Algorithm == "" {
		cfg.Algorithm = AlgoBinomialPipeline
	}
	simCfg := simulate.Config{
		Nodes:        cfg.Nodes,
		Blocks:       cfg.Blocks,
		DownloadCap:  cfg.DownloadCap,
		MaxTicks:     cfg.MaxTicks,
		RecordTrace:  cfg.RecordTrace || cfg.Verify != MechanismNone,
		AuditWorkers: cfg.AuditWorkers,
		Checkpoint:   cfg.Checkpoint,
	}
	if cfg.DownloadCap == DownloadUnlimited {
		simCfg.DownloadCap = simulate.Unlimited
	}

	sched, overlayName, err := buildScheduler(cfg, &simCfg)
	if err != nil {
		return simulate.Config{}, nil, "", err
	}
	if cfg.Fault != nil {
		plan, err := fault.NewPlan(*cfg.Fault)
		if err != nil {
			return simulate.Config{}, nil, "", err
		}
		simCfg.Fault = plan
		switch cfg.Algorithm {
		case AlgoRandomized, AlgoTriangular:
			// Natively fault-aware: they re-sample around dead peers.
		default:
			// Precomputed pipeline schedules desynchronize under churn;
			// SelfHeal re-embeds the survivors (and stays out of the way
			// on fault-free ticks).
			sched = schedule.NewSelfHeal(sched)
		}
	}

	if cfg.Adversary != nil {
		plan, err := adversary.NewPlan(cfg.Nodes, *cfg.Adversary)
		if err != nil {
			return simulate.Config{}, nil, "", err
		}
		simCfg.Adversary = plan
	}
	if cfg.Arrivals != nil {
		plan, err := arrival.NewPlan(*cfg.Arrivals)
		if err != nil {
			return simulate.Config{}, nil, "", fmt.Errorf("core: %w", err)
		}
		simCfg.Arrivals = plan
	}
	return simCfg, sched, overlayName, nil
}

// buildResult assembles the public result from a finished engine run.
func buildResult(cfg Config, simCfg simulate.Config, overlayName string, simRes *simulate.Result) (*Result, error) {
	res := &Result{
		CompletionTime:    simRes.CompletionTime,
		OptimalTime:       analysis.CooperativeLowerBound(cfg.Nodes, cfg.Blocks),
		StrictBarterBound: analysis.StrictBarterLowerBound(cfg.Nodes, cfg.Blocks),
		Efficiency:        simRes.Efficiency(cfg.Nodes),
		Overlay:           overlayName,
		Sim:               simRes,
		SimConfig:         simCfg,
		Open:              simRes.Open,
	}
	res.SimConfig.Fault = nil      // the consumed plan must not leak into replays
	res.SimConfig.Adversary = nil  // ditto: audits replay from Sim.Strategies
	res.SimConfig.Checkpoint = nil // replays should not overwrite the live checkpoint
	res.SimConfig.Arrivals = nil   // ditto: the consumed arrival plan is single-use
	if simRes.Trace != nil && simRes.Trace.Len() > 0 {
		res.MinimalCreditLimit = mechanism.MinimalCreditLimitLog(simRes.Trace, false, cfg.AuditWorkers)
	}
	if err := verify(cfg, simRes); err != nil {
		return res, err
	}
	return res, nil
}

func buildScheduler(cfg *Config, simCfg *simulate.Config) (simulate.Scheduler, string, error) {
	switch cfg.Algorithm {
	case AlgoPipeline:
		return schedule.Pipeline(), "chain", nil
	case AlgoMulticastTree:
		arity := cfg.TreeArity
		if arity == 0 {
			arity = 2
		}
		s, err := schedule.MulticastTree(cfg.Nodes, cfg.Blocks, arity)
		return s, fmt.Sprintf("kary(m=%d)", arity), err
	case AlgoBinomialTree:
		s, err := schedule.BinomialTree(cfg.Nodes, cfg.Blocks)
		return s, "binomial-tree", err
	case AlgoBinomialPipeline:
		s, err := schedule.NewBinomialPipeline(cfg.Nodes, cfg.Blocks)
		return s, "hypercube", err
	case AlgoMultiServer:
		m := cfg.VirtualServers
		if m == 0 {
			m = 2
		}
		simCfg.ServerUploadCap = m
		s, err := schedule.MultiServer(cfg.Nodes, cfg.Blocks, m)
		return s, fmt.Sprintf("multi-hypercube(m=%d)", m), err
	case AlgoRiffle:
		overlap := !cfg.RiffleNoOverlap
		if cfg.DownloadCap == 0 {
			if overlap {
				simCfg.DownloadCap = 2
			} else {
				simCfg.DownloadCap = 1
			}
		}
		s, err := schedule.NewRifflePipeline(cfg.Nodes, cfg.Blocks, overlap)
		return s, "riffle", err
	case AlgoRandomized:
		if cfg.DownloadCap == 0 {
			simCfg.DownloadCap = 1
		}
		g, name, err := buildOverlay(cfg)
		if err != nil {
			return nil, "", err
		}
		s, err := randomized.New(randomized.Options{
			Graph:        g,
			Policy:       cfg.Policy,
			CreditLimit:  cfg.CreditLimit,
			DownloadCap:  simCfg.DownloadCap,
			Seed:         cfg.Seed,
			RewireEvery:  cfg.RewireEvery,
			ShardWorkers: cfg.ShardWorkers,
		})
		return s, name, err
	case AlgoTriangular:
		if cfg.DownloadCap == 0 {
			simCfg.DownloadCap = 1
		}
		g, name, err := buildOverlay(cfg)
		if err != nil {
			return nil, "", err
		}
		if g == nil {
			// The triangular scheduler needs explicit adjacency.
			g = graph.Complete(cfg.Nodes)
		}
		s, err := randomized.NewTriangular(randomized.TriangularOptions{
			Graph:        g,
			Policy:       cfg.Policy,
			CreditLimit:  cfg.CreditLimit,
			CycleLimit:   cfg.CycleLimit,
			DownloadCap:  simCfg.DownloadCap,
			Seed:         cfg.Seed,
			ShardWorkers: cfg.ShardWorkers,
		})
		return s, name, err
	default:
		return nil, "", fmt.Errorf("core: unknown algorithm %q", cfg.Algorithm)
	}
}

func buildOverlay(cfg *Config) (*graph.Graph, string, error) {
	switch cfg.Overlay {
	case OverlayComplete, "":
		// nil selects the scheduler's complete-graph fast path.
		return nil, "complete", nil
	case OverlayRandomRegular:
		if cfg.Degree < 1 {
			return nil, "", fmt.Errorf("core: random-regular overlay requires Degree >= 1 (got %d)", cfg.Degree)
		}
		rng := xrand.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
		g, err := graph.RandomRegular(cfg.Nodes, cfg.Degree, rng)
		if err != nil {
			return nil, "", fmt.Errorf("core: %w", err)
		}
		if !g.Connected() {
			// A disconnected overlay can never complete; retry a few
			// seeds before giving up.
			for attempt := 0; attempt < 20 && !g.Connected(); attempt++ {
				if g, err = graph.RandomRegular(cfg.Nodes, cfg.Degree, rng); err != nil {
					return nil, "", fmt.Errorf("core: %w", err)
				}
			}
			if !g.Connected() {
				return nil, "", fmt.Errorf("core: could not build a connected %d-regular overlay on %d nodes", cfg.Degree, cfg.Nodes)
			}
		}
		return g, g.Name(), nil
	case OverlayHypercube:
		g, _, err := graph.PairedHypercube(cfg.Nodes)
		if err != nil {
			return nil, "", fmt.Errorf("core: %w", err)
		}
		return g, g.Name(), nil
	case OverlayChain:
		return graph.Chain(cfg.Nodes), "chain", nil
	default:
		return nil, "", fmt.Errorf("core: unknown overlay %q", cfg.Overlay)
	}
}

// verify audits the recorded trace against the configured mechanism.
// The verifiers see the *released* view of the columnar trace: for
// compliant runs that is the scheduled trace unchanged — fault drops
// stay in (a block lost in the network still consumed the sender's
// credit, matching the live ledger) — while for adversarial runs,
// transfers the sender's own strategy refused, stalled, or garbled
// are skipped by the cursor: they were never released (or were clawed
// back by the schedulers' ledgers), so charging them would read the
// adversary's sabotage as the mechanism's failure.
func verify(cfg Config, simRes *simulate.Result) error {
	limit := cfg.CreditLimit
	if limit == 0 {
		limit = 1
	}
	if cfg.Verify == MechanismNone {
		return nil
	}
	if simRes.Trace == nil {
		simRes.Trace = trace.New(false) // nothing recorded: vacuously compliant
	}
	switch cfg.Verify {
	case MechanismStrict:
		return mechanism.VerifyStrictBarterLog(simRes.Trace, true, cfg.AuditWorkers)
	case MechanismCredit:
		return mechanism.VerifyCreditLimitedLog(simRes.Trace, true, limit, cfg.AuditWorkers)
	case MechanismTriangular:
		return mechanism.VerifyTriangular(simRes.Trace.ReleasedCursor(), limit)
	default:
		return fmt.Errorf("core: unknown mechanism %q", cfg.Verify)
	}
}
