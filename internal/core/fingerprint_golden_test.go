package core

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"testing"

	"barterdist/internal/adversary"
	"barterdist/internal/arrival"
	"barterdist/internal/fault"
)

// goldenFingerprints pins the sha256 of the schedule fingerprint for a
// spread of seeded scenarios. Unlike TestCrossEngineDeterminism (which
// proves run-to-run stability within one build), these hashes prove
// stability *across* builds: a representation change — e.g. the
// frame-compressed trace columns — must reproduce the exact draw
// sequence and trace bytes of the revision that recorded them.
// Regenerate only for a sanctioned re-baseline:
//
//	CDGOLD_UPDATE=1 go test ./internal/core -run TestScheduleFingerprintGolden -v
var goldenFingerprints = map[string]string{
	"randomized+fault":           "34fa4088d016badf1fa155485bc3d0f37b3dce1e92b37817093c89354fdcbbcc",
	"triangular+adversary":       "191e045fd5ca22360948eea8f3d75480f86cd00daeba0db31ec0a59cc5128010",
	"randomized+credit+shard":    "e99ad9731923696b7d0ee1407c39fda3cf4592ee709276fab9f54ddcfd233dd4",
	"open-system+churn":          "4f5e7a540654ff734aaf086523685a28277954b3e62f675a50556720ed7cc42b",
	"binomial-pipeline+selfheal": "7d5f593de0fd4a8a0f5479a597d299b5ef3d59ce5c948ac5b8e64696a1d1b2b2",
}

func goldenScenario(name string) Config {
	faultOpts := &fault.Options{
		Seed: 77, CrashRate: 0.08, MaxCrashes: 3, RejoinDelay: 4,
		RejoinLosesBlocks: true, LossRate: 0.05, Victim: fault.VictimUniform,
	}
	advOpts := &adversary.Options{
		Seed: 99, FreeRiderFrac: 0.15, ThrottlerFrac: 0.1,
		FalseAdvertiserFrac: 0.1, CorrupterFrac: 0.1, DefectorFrac: 0.05,
	}
	switch name {
	case "randomized+fault":
		return Config{Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized,
			Overlay: OverlayRandomRegular, Degree: 6, Seed: 42, Fault: faultOpts}
	case "triangular+adversary":
		return Config{Nodes: 20, Blocks: 10, Algorithm: AlgoTriangular,
			CycleLimit: 3, CreditLimit: 1, Seed: 17, Fault: faultOpts, Adversary: advOpts}
	case "randomized+credit+shard":
		return Config{Nodes: 48, Blocks: 16, Algorithm: AlgoRandomized,
			CreditLimit: 1, Seed: 13, ShardWorkers: 4, Fault: faultOpts, Adversary: advOpts}
	case "open-system+churn":
		return Config{Nodes: 41, Blocks: 8, Algorithm: AlgoRandomized,
			Seed: 29,
			Arrivals: &arrival.Options{
				Seed: 5, Rate: 1.5, EarlyExit: 0.2, Linger: 3,
			}}
	case "binomial-pipeline+selfheal":
		return Config{Nodes: 18, Blocks: 9, Algorithm: AlgoBinomialPipeline,
			Seed: 5, Fault: faultOpts}
	}
	panic("unknown golden scenario " + name)
}

func TestScheduleFingerprintGolden(t *testing.T) {
	update := os.Getenv("CDGOLD_UPDATE") != ""
	for name, want := range goldenFingerprints {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			cfg := goldenScenario(name)
			cfg.RecordTrace = true
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			sum := sha256.Sum256([]byte(fingerprint(res)))
			got := hex.EncodeToString(sum[:])
			if update || want == "" {
				t.Logf("goldenFingerprints[%q] = %q", name, got)
				if want == "" {
					t.Skip("golden hash not recorded yet")
				}
			}
			if got != want {
				t.Fatalf("schedule fingerprint drifted:\n got %s\nwant %s\n"+
					"(representation changes must not move the draw sequence; "+
					"re-baseline only with CDGOLD_UPDATE=1 and a sanctioned reason)", got, want)
			}
		})
	}
}
