package core

import (
	"fmt"
	"strings"
	"testing"

	"barterdist/internal/adversary"
	"barterdist/internal/fault"
	"barterdist/internal/parallel"
)

// fingerprint serializes everything observable about a run — the full
// transfer trace, the fault log, completion data, and the credit
// metrics — into one string, so two runs can be compared byte for
// byte.
func fingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "completion=%d optimal=%d strict=%d eff=%.17g mincredit=%d overlay=%q\n",
		res.CompletionTime, res.OptimalTime, res.StrictBarterBound,
		res.Efficiency, res.MinimalCreditLimit, res.Overlay)
	sim := res.Sim
	fmt.Fprintf(&b, "clients=%v lost=%d corrupt=%d useful=%d total=%d\n",
		sim.ClientCompletion, sim.LostTransfers, sim.CorruptTransfers,
		sim.UsefulTransfers, sim.TotalTransfers)
	cur := sim.Trace.Cursor()
	for cur.NextTick() {
		fmt.Fprintf(&b, "t%d:", cur.Tick()-1)
		for cur.Next() {
			tr := cur.Transfer()
			fmt.Fprintf(&b, " %d->%d#%d", tr.From, tr.To, tr.Block)
		}
		b.WriteByte('\n')
	}
	for _, ev := range sim.FaultLog {
		fmt.Fprintf(&b, "fault t=%.17g node=%d kind=%d\n", ev.Time, ev.Node, ev.Kind)
	}
	var lostIdx []int32
	var lostKinds []uint8
	for t := 0; t < sim.Trace.Ticks(); t++ {
		lostIdx, lostKinds = sim.Trace.AppendTickDrops(t, lostIdx[:0], lostKinds[:0])
		if len(lostIdx) == 0 {
			continue
		}
		fmt.Fprintf(&b, "lost t%d:%v", t, lostIdx)
		if sim.Trace.Kinded() {
			fmt.Fprintf(&b, " kinds=%v", lostKinds)
		}
		b.WriteByte('\n')
	}
	if sim.Strategies != nil {
		fmt.Fprintf(&b, "strategies=%v refused=%d stalled=%d advcorrupt=%d huseful=%d hwasted=%d\n",
			sim.Strategies, sim.AdvRefused, sim.AdvStalled, sim.AdvCorrupt,
			sim.HonestUseful, sim.HonestWasted)
	}
	return b.String()
}

// TestCrossEngineDeterminism is the dynamic twin of cmd/cdlint's
// static rules: a seeded randomized, triangular, and fault-injected
// deterministic scenario each run twice must produce byte-identical
// traces. If a map-order or wall-clock dependency sneaks past the
// linter (e.g. through a //lint:ordered annotation that was wrong),
// this test catches it at runtime.
func TestCrossEngineDeterminism(t *testing.T) {
	faultOpts := &fault.Options{
		Seed:              77,
		CrashRate:         0.08,
		MaxCrashes:        3,
		RejoinDelay:       4,
		RejoinLosesBlocks: true,
		LossRate:          0.05,
		Victim:            fault.VictimUniform,
	}
	advOpts := &adversary.Options{
		Seed:                99,
		FreeRiderFrac:       0.15,
		ThrottlerFrac:       0.1,
		FalseAdvertiserFrac: 0.1,
		CorrupterFrac:       0.1,
		DefectorFrac:        0.05,
	}
	scenarios := map[string]Config{
		"randomized+overlay+fault": {
			Nodes: 24, Blocks: 12,
			Algorithm: AlgoRandomized,
			Overlay:   OverlayRandomRegular,
			Degree:    6,
			Seed:      42,
			Fault:     faultOpts,
		},
		"triangular+fault": {
			Nodes: 20, Blocks: 10,
			Algorithm:   AlgoTriangular,
			Overlay:     OverlayRandomRegular,
			Degree:      6,
			CycleLimit:  3,
			CreditLimit: 2,
			Seed:        7,
			Fault:       faultOpts,
		},
		"binomial-pipeline+selfheal": {
			Nodes: 18, Blocks: 9,
			Algorithm: AlgoBinomialPipeline,
			Seed:      5,
			Fault:     faultOpts,
		},
		// Mixed fault + adversary: the quarantine tables, strike
		// backoffs, and credit clawbacks must all be replayable — a
		// wall-clock or map-order dependency in any of them would
		// diverge here.
		"randomized+credit+adversary+fault": {
			Nodes: 24, Blocks: 12,
			Algorithm:   AlgoRandomized,
			CreditLimit: 1,
			Seed:        13,
			Fault:       faultOpts,
			Adversary:   advOpts,
		},
		"triangular+adversary+fault": {
			Nodes: 20, Blocks: 10,
			Algorithm:   AlgoTriangular,
			CycleLimit:  3,
			CreditLimit: 1,
			Seed:        17,
			Fault:       faultOpts,
			Adversary:   advOpts,
		},
	}
	for name, cfg := range scenarios {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			cfg.RecordTrace = true
			run := func() string {
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				return fingerprint(res)
			}
			first, second := run(), run()
			if first != second {
				t.Fatalf("two seeded runs diverged:\n--- first ---\n%s\n--- second ---\n%s",
					head(first, 30), head(second, 30))
			}
		})
	}
}

// TestParallelRunnerDeterminism extends the cross-engine determinism
// guarantee to the worker pool: a batch of seeded runs fanned out over
// parallel.Map at several pool widths must collect fingerprints that
// are byte-identical to the sequential (workers=1) pass. This is the
// dynamic contract behind the experiment package's Workers knob — each
// replicate's seed is pre-derived with parallel.SeedStride, so worker
// scheduling can never leak into a trace.
func TestParallelRunnerDeterminism(t *testing.T) {
	const batch = 12
	cfgFor := func(i int) Config {
		cfg := Config{
			Nodes: 16 + i, Blocks: 8,
			Algorithm: AlgoRandomized, DownloadCap: 1,
			RecordTrace: true,
			Seed:        1000 + uint64(i)*parallel.SeedStride,
		}
		if i%3 == 1 {
			cfg.Fault = &fault.Options{
				Seed: 77 + uint64(i), CrashRate: 0.08, MaxCrashes: 2,
				RejoinDelay: 4, LossRate: 0.05,
			}
		}
		if i%3 == 2 {
			// Adversarial replicates: quarantine bookkeeping must be as
			// schedulable-anywhere as the clean runs.
			cfg.CreditLimit = 1
			cfg.Adversary = &adversary.Options{
				Seed:          99 + uint64(i),
				FreeRiderFrac: 0.2,
				CorrupterFrac: 0.1,
			}
		}
		return cfg
	}
	run := func(workers int) []string {
		prints, err := parallel.Map(workers, batch, func(i int) (string, error) {
			res, err := Run(cfgFor(i))
			if err != nil {
				return "", err
			}
			return fingerprint(res), nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return prints
	}
	want := run(1)
	for _, w := range []int{2, 4, 8} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d run %d diverged from sequential:\n--- sequential ---\n%s\n--- workers=%d ---\n%s",
					w, i, head(want[i], 20), w, head(got[i], 20))
			}
		}
	}
}

// TestColumnarMatchesNestedRepresentation pins the columnar trace to
// the historical nested [][]Transfer shape: the streaming-cursor
// fingerprint must equal one computed from Materialize/MaterializeDrops
// (byte for byte), so the storage change can never leak into any
// consumer that fingerprints, audits, or verifies a trace.
func TestColumnarMatchesNestedRepresentation(t *testing.T) {
	cfgs := []Config{
		{Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized, Seed: 42,
			Fault: &fault.Options{Seed: 77, CrashRate: 0.08, MaxCrashes: 3, RejoinDelay: 4, LossRate: 0.05}},
		{Nodes: 24, Blocks: 12, Algorithm: AlgoRandomized, CreditLimit: 1, Seed: 13,
			Adversary: &adversary.Options{Seed: 99, FreeRiderFrac: 0.2, CorrupterFrac: 0.1}},
		{Nodes: 16, Blocks: 8, Algorithm: AlgoBinomialPipeline, Seed: 2},
	}
	for i, cfg := range cfgs {
		cfg.RecordTrace = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		sim := res.Sim
		var b strings.Builder
		for ti, tick := range sim.Trace.Materialize() {
			fmt.Fprintf(&b, "t%d:", ti)
			for _, tr := range tick {
				fmt.Fprintf(&b, " %d->%d#%d", tr.From, tr.To, tr.Block)
			}
			b.WriteByte('\n')
		}
		drops, kinds := sim.Trace.MaterializeDrops()
		for ti, lost := range drops {
			if len(lost) == 0 {
				continue
			}
			fmt.Fprintf(&b, "lost t%d:%v", ti, lost)
			if kinds != nil {
				fmt.Fprintf(&b, " kinds=%v", kinds[ti])
			}
			b.WriteByte('\n')
		}
		nested := b.String()

		b.Reset()
		cur := sim.Trace.Cursor()
		for cur.NextTick() {
			fmt.Fprintf(&b, "t%d:", cur.Tick()-1)
			for cur.Next() {
				tr := cur.Transfer()
				fmt.Fprintf(&b, " %d->%d#%d", tr.From, tr.To, tr.Block)
			}
			b.WriteByte('\n')
		}
		var li []int32
		var lk []uint8
		for ti := 0; ti < sim.Trace.Ticks(); ti++ {
			li, lk = sim.Trace.AppendTickDrops(ti, li[:0], lk[:0])
			if len(li) == 0 {
				continue
			}
			fmt.Fprintf(&b, "lost t%d:%v", ti, li)
			if sim.Trace.Kinded() {
				fmt.Fprintf(&b, " kinds=%v", lk)
			}
			b.WriteByte('\n')
		}
		if got := b.String(); got != nested {
			t.Fatalf("cfg %d: cursor view diverges from materialized view:\n--- nested ---\n%s\n--- cursor ---\n%s",
				i, head(nested, 20), head(got, 20))
		}
	}
}

// head returns at most n lines of s, for readable failure output.
func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
		lines = append(lines, "…")
	}
	return strings.Join(lines, "\n")
}
