package core

import (
	"reflect"
	"testing"

	"barterdist/internal/fault"
	"barterdist/internal/simulate"
)

// TestZeroFaultOptionsAreByteIdentical pins the fault layer's
// pay-for-what-you-use contract at the façade: attaching an all-zero
// fault.Options (which also routes deterministic schedules through the
// SelfHeal wrapper) must reproduce the fault-free run exactly, trace
// and all, for every algorithm family.
func TestZeroFaultOptionsAreByteIdentical(t *testing.T) {
	algos := []Config{
		{Algorithm: AlgoPipeline},
		{Algorithm: AlgoBinomialPipeline},
		{Algorithm: AlgoRiffle},
		{Algorithm: AlgoRandomized, Seed: 3},
		{Algorithm: AlgoTriangular, Seed: 3},
	}
	for _, base := range algos {
		base.Nodes, base.Blocks = 16, 8
		base.RecordTrace = true
		plain, err := Run(base)
		if err != nil {
			t.Fatalf("%s: %v", base.Algorithm, err)
		}
		withPlan := base
		withPlan.Fault = &fault.Options{Seed: 1} // all rates zero
		planned, err := Run(withPlan)
		if err != nil {
			t.Fatalf("%s with zero-rate plan: %v", base.Algorithm, err)
		}
		if plain.CompletionTime != planned.CompletionTime {
			t.Errorf("%s: completion %d fault-free vs %d with zero-rate plan",
				base.Algorithm, plain.CompletionTime, planned.CompletionTime)
		}
		if !reflect.DeepEqual(plain.Sim.Trace, planned.Sim.Trace) {
			t.Errorf("%s: zero-rate plan perturbed the trace", base.Algorithm)
		}
		if len(planned.Sim.FaultLog) != 0 || planned.Sim.LostTransfers != 0 {
			t.Errorf("%s: zero-rate plan produced fault activity", base.Algorithm)
		}
	}
}

// TestChurnRunsCompleteAndAudit exercises the façade's fault wiring
// end to end for both scheduler families: the randomized algorithms
// re-sample around dead peers, the deterministic pipelines heal via
// schedule.SelfHeal; each surviving client must finish and the
// recorded trace must replay through simulate.RunAudit.
func TestChurnRunsCompleteAndAudit(t *testing.T) {
	cases := []Config{
		{Algorithm: AlgoRandomized, Seed: 5},
		{Algorithm: AlgoTriangular, Seed: 5},
		{Algorithm: AlgoBinomialPipeline},
		{Algorithm: AlgoRiffle},
	}
	for i, cfg := range cases {
		cfg.Nodes, cfg.Blocks = 20, 12
		cfg.RecordTrace = true
		cfg.MaxTicks = 60 * (cfg.Nodes + cfg.Blocks)
		cfg.Fault = &fault.Options{
			Seed:              uint64(300 + i),
			CrashRate:         0.05,
			MaxCrashes:        3,
			RejoinDelay:       6,
			RejoinLosesBlocks: true,
			LossRate:          0.03,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Algorithm, err)
		}
		if len(res.Sim.FaultLog) == 0 {
			t.Fatalf("%s: seed produced no fault events; pick a livelier seed", cfg.Algorithm)
		}
		for v := 1; v < cfg.Nodes; v++ {
			if res.Sim.FinalAlive[v] && res.Sim.FinalHave[v].Count() != cfg.Blocks {
				t.Fatalf("%s: alive client %d finished with %d/%d blocks",
					cfg.Algorithm, v, res.Sim.FinalHave[v].Count(), cfg.Blocks)
			}
		}
		if err := simulate.RunAudit(res.SimConfig, res.Sim); err != nil {
			t.Fatalf("%s: audit: %v", cfg.Algorithm, err)
		}
	}
}
