package core

import (
	"os"
	"path/filepath"
	"testing"

	"barterdist/internal/arrival"
	"barterdist/internal/checkpoint"
	"barterdist/internal/randomized"
	"barterdist/internal/simulate"
)

// TestFlashCrowdTruncated is the tier-1-resident open-system smoke at
// scale (CI's open-system job runs it under -race): a 20k flash crowd
// with a deliberately tight tick budget must end in a graceful
// Unstable/budget verdict — never an error, OOM, or hang — and the
// bounded replay must still account for every peer that arrived.
func TestFlashCrowdTruncated(t *testing.T) {
	cfg := Config{
		Nodes:       20_001,
		Blocks:      32,
		Algorithm:   AlgoRandomized,
		Policy:      randomized.RarestFirst,
		Seed:        46001,
		MaxTicks:    200,
		RecordTrace: true,
		Arrivals:    &arrival.Options{Seed: 17, Rate: 64},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	o := res.Open
	if o == nil {
		t.Fatal("open run returned nil Open result")
	}
	if o.Verdict != arrival.VerdictUnstable || o.Reason != arrival.ReasonBudget {
		t.Fatalf("verdict = %v/%v, want Unstable/budget (tick budget 200)", o.Verdict, o.Reason)
	}
	if o.Arrived == 0 || o.Completed == 0 {
		t.Fatalf("truncated crowd saw arrived=%d completed=%d, want both > 0", o.Arrived, o.Completed)
	}
	if o.Arrived != o.Completed+o.EarlyExits+o.FinalOccupancy {
		t.Fatalf("books do not balance: %d arrived != %d completed + %d early + %d present",
			o.Arrived, o.Completed, o.EarlyExits, o.FinalOccupancy)
	}
	if err := simulate.RunAudit(res.SimConfig, res.Sim); err != nil {
		t.Fatalf("RunAudit: %v", err)
	}
}

// TestFlashCrowdScale is the open-system half of the scale-out
// acceptance: a flash crowd of 10^5 arriving peers (λ = 64 peers/tick,
// rarest-first, departure at completion) must run to a verdict in one
// process, produce byte-identical fingerprints for ShardWorkers 1 and
// 8, reproduce after checkpoint/resume, and replay clean through the
// open-system starvation audit. Like the n = 100k closed-batch point,
// the full matrix is minutes-long, so it runs via `make flashcrowd`
// (BARTERDIST_FLASHCROWD=1) and its measurements are recorded in
// EXPERIMENTS.md; the tier-1 sweep runs TestFlashCrowdTruncated
// instead.
func TestFlashCrowdScale(t *testing.T) {
	if os.Getenv("BARTERDIST_FLASHCROWD") == "" {
		t.Skip("set BARTERDIST_FLASHCROWD=1 (or run `make flashcrowd`) for the full 10^5 matrix")
	}
	const capacity = 100_001
	mk := func(workers int) Config {
		return Config{
			Nodes:        capacity,
			Blocks:       32,
			Algorithm:    AlgoRandomized,
			Policy:       randomized.RarestFirst,
			Seed:         46001,
			ShardWorkers: workers,
			RecordTrace:  true,
			Arrivals:     &arrival.Options{Seed: 17, Rate: 64},
		}
	}

	res, err := Run(mk(1))
	if err != nil {
		t.Fatalf("Run(workers=1): %v", err)
	}
	o := res.Open
	if o == nil {
		t.Fatal("open run returned nil Open result")
	}
	t.Logf("verdict=%v/%v arrived=%d completed=%d early=%d peak=%d sojourn mean=%.1f max=%.0f T=%d",
		o.Verdict, o.Reason, o.Arrived, o.Completed, o.EarlyExits,
		o.PeakOccupancy, o.SojournMean, o.SojournMax, res.CompletionTime)
	if o.Verdict != arrival.VerdictDrained {
		t.Fatalf("verdict = %v (reason %v), want Drained", o.Verdict, o.Reason)
	}
	if o.Arrived != capacity-1 || o.Completed != capacity-1 {
		t.Fatalf("arrived=%d completed=%d, want %d/%d", o.Arrived, o.Completed, capacity-1, capacity-1)
	}
	want := fingerprintOpen(res)

	// Sharded lanes must not perturb a dynamic population.
	res8, err := Run(mk(8))
	if err != nil {
		t.Fatalf("Run(workers=8): %v", err)
	}
	if fingerprintOpen(res8) != want {
		t.Fatal("ShardWorkers=1 and 8 diverge on the flash crowd")
	}
	if err := simulate.RunAudit(res8.SimConfig, res8.Sim); err != nil {
		t.Fatalf("RunAudit: %v", err)
	}

	// Checkpoint mid-crowd, resume in a fresh engine, and demand the
	// uninterrupted fingerprint.
	path := filepath.Join(t.TempDir(), "flash.ckpt")
	ck := mk(8)
	ck.Checkpoint = &checkpoint.Policy{Path: path, Every: 500}
	ckRes, err := Run(ck)
	if err != nil {
		t.Fatalf("checkpointed Run: %v", err)
	}
	if fingerprintOpen(ckRes) != want {
		t.Fatal("checkpointing perturbed the flash crowd")
	}
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	resumed, err := Resume(mk(8), snap)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if fingerprintOpen(resumed) != want {
		t.Fatal("resumed flash crowd diverged from the uninterrupted run")
	}
}
