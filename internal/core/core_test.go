package core

import (
	"errors"
	"strings"
	"testing"

	"barterdist/internal/randomized"
)

func TestRunValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"too few nodes":  {Nodes: 1, Blocks: 4},
		"no blocks":      {Nodes: 4, Blocks: 0},
		"bad algorithm":  {Nodes: 4, Blocks: 2, Algorithm: "nope"},
		"bad overlay":    {Nodes: 4, Blocks: 2, Algorithm: AlgoRandomized, Overlay: "nope"},
		"bad verify":     {Nodes: 4, Blocks: 2, RecordTrace: true, Verify: "nope"},
		"degree missing": {Nodes: 4, Blocks: 2, Algorithm: AlgoRandomized, Overlay: OverlayRandomRegular},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestRunDefaultsToBinomialPipeline(t *testing.T) {
	res, err := Run(Config{Nodes: 16, Blocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime != res.OptimalTime {
		t.Errorf("binomial pipeline T=%d, optimal %d", res.CompletionTime, res.OptimalTime)
	}
	if res.Overlay != "hypercube" {
		t.Errorf("Overlay = %q", res.Overlay)
	}
}

func TestRunEveryAlgorithmCompletes(t *testing.T) {
	cases := []Config{
		{Nodes: 10, Blocks: 6, Algorithm: AlgoPipeline},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoMulticastTree, TreeArity: 3},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoBinomialTree},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoBinomialPipeline},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoMultiServer, VirtualServers: 3},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoRiffle},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoRiffle, RiffleNoOverlap: true},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoRandomized, Seed: 1},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoRandomized, Overlay: OverlayHypercube, Seed: 1},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoRandomized, Overlay: OverlayChain, Seed: 1},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoRandomized, Overlay: OverlayRandomRegular, Degree: 4, Seed: 1},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoRandomized, Policy: randomized.RarestFirst, Seed: 1},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoRandomized, CreditLimit: 2, DownloadCap: 2, Seed: 1},
		{Nodes: 10, Blocks: 6, Algorithm: AlgoTriangular, Seed: 1},
		// Tiny sparse overlays sit below the credit cliff at s=1, so give
		// the hypercube case some slack.
		{Nodes: 10, Blocks: 6, Algorithm: AlgoTriangular, Overlay: OverlayHypercube, CycleLimit: 4, CreditLimit: 3, Seed: 1},
		{Nodes: 16, Blocks: 8, Algorithm: AlgoRandomized, Overlay: OverlayRandomRegular, Degree: 4, RewireEvery: 3, Seed: 1},
	}
	for _, cfg := range cases {
		res, err := Run(cfg)
		if err != nil {
			t.Errorf("%s/%s: %v", cfg.Algorithm, cfg.Overlay, err)
			continue
		}
		// Theorem 1 assumes unit server bandwidth; the multi-server
		// variant is allowed to beat it.
		if cfg.Algorithm != AlgoMultiServer && res.CompletionTime < res.OptimalTime {
			t.Errorf("%s: T=%d below optimal %d", cfg.Algorithm, res.CompletionTime, res.OptimalTime)
		}
		if res.Sim == nil || res.Sim.CompletionTime != res.CompletionTime {
			t.Errorf("%s: raw result missing or inconsistent", cfg.Algorithm)
		}
	}
}

func TestRunRiffleMatchesTheorem3(t *testing.T) {
	res, err := Run(Config{Nodes: 9, Blocks: 16, Algorithm: AlgoRiffle})
	if err != nil {
		t.Fatal(err)
	}
	if want := 16 + 8 - 1; res.CompletionTime != want {
		t.Errorf("riffle T=%d, want %d", res.CompletionTime, want)
	}
}

func TestRunVerifyStrictOnRiffle(t *testing.T) {
	res, err := Run(Config{Nodes: 9, Blocks: 16, Algorithm: AlgoRiffle, Verify: MechanismStrict})
	if err != nil {
		t.Fatalf("riffle failed strict verification: %v", err)
	}
	// Strict barter means every client pair's balance nets to zero at
	// every tick boundary, so the minimal credit limit is 0.
	if res.MinimalCreditLimit != 0 {
		t.Errorf("riffle minimal credit = %d, want 0", res.MinimalCreditLimit)
	}
}

func TestRunVerifyRejectsNonBarterAlgorithm(t *testing.T) {
	_, err := Run(Config{Nodes: 8, Blocks: 4, Algorithm: AlgoPipeline, Verify: MechanismStrict})
	if err == nil {
		t.Fatal("pipeline should fail strict-barter verification")
	}
	if !strings.Contains(err.Error(), "simultaneous exchange") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRunVerifyCreditOnHypercube(t *testing.T) {
	// n and k powers of two: credit limit 1 must verify (Section 3.2.2).
	if _, err := Run(Config{Nodes: 16, Blocks: 8, Verify: MechanismCredit, CreditLimit: 1}); err != nil {
		t.Fatalf("hypercube failed s=1 credit verification: %v", err)
	}
}

func TestRunVerifyTriangularOnPairedHypercube(t *testing.T) {
	if _, err := Run(Config{Nodes: 12, Blocks: 8, Verify: MechanismTriangular, CreditLimit: 3}); err != nil {
		t.Fatalf("paired hypercube failed triangular verification: %v", err)
	}
}

func TestRunStalledReturnsErrStalled(t *testing.T) {
	// Credit-limited randomized on a too-sparse overlay with a tiny tick
	// budget: must stall and report ErrStalled.
	_, err := Run(Config{
		Nodes: 64, Blocks: 64, Algorithm: AlgoRandomized,
		Overlay: OverlayRandomRegular, Degree: 3, CreditLimit: 1,
		Seed: 5, MaxTicks: 200,
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestRunRandomizedDeterministicBySeed(t *testing.T) {
	cfg := Config{Nodes: 32, Blocks: 16, Algorithm: AlgoRandomized, Seed: 77}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.CompletionTime != b.CompletionTime {
		t.Errorf("same seed, different T: %d vs %d", a.CompletionTime, b.CompletionTime)
	}
}

func TestRunEfficiencyBounds(t *testing.T) {
	res, err := Run(Config{Nodes: 16, Blocks: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Efficiency <= 0 || res.Efficiency > 1 {
		t.Errorf("Efficiency = %v out of (0,1]", res.Efficiency)
	}
}

func TestRunDownloadCapDefaults(t *testing.T) {
	// The overlapped riffle needs D = 2; Run must select it when the
	// caller leaves DownloadCap zero, and respect an explicit value.
	if _, err := Run(Config{Nodes: 5, Blocks: 8, Algorithm: AlgoRiffle}); err != nil {
		t.Fatalf("default download cap: %v", err)
	}
	// k = 2N makes consecutive rounds overlap, so D = 1 must fail.
	if _, err := Run(Config{Nodes: 5, Blocks: 8, Algorithm: AlgoRiffle, DownloadCap: 1}); err == nil {
		t.Fatal("explicit D=1 with overlapped riffle must fail (needs D>=2)")
	}
	if _, err := Run(Config{
		Nodes: 5, Blocks: 8, Algorithm: AlgoRiffle, RiffleNoOverlap: true, DownloadCap: 1,
	}); err != nil {
		t.Fatalf("non-overlapped riffle at D=1: %v", err)
	}
}

func TestRunUnlimitedDownload(t *testing.T) {
	res, err := Run(Config{
		Nodes: 16, Blocks: 8, Algorithm: AlgoRandomized,
		DownloadCap: DownloadUnlimited, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionTime < res.OptimalTime {
		t.Error("impossible completion")
	}
}

func TestMinimalCreditOnlyWithTrace(t *testing.T) {
	res, err := Run(Config{Nodes: 8, Blocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinimalCreditLimit != 0 {
		t.Errorf("MinimalCreditLimit without trace = %d, want 0", res.MinimalCreditLimit)
	}
	res2, err := Run(Config{Nodes: 8, Blocks: 4, RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MinimalCreditLimit < 1 {
		t.Errorf("MinimalCreditLimit with trace = %d, want >= 1", res2.MinimalCreditLimit)
	}
}

func TestStrictBoundReported(t *testing.T) {
	res, err := Run(Config{Nodes: 16, Blocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.StrictBarterBound <= res.OptimalTime {
		t.Errorf("strict bound %d should exceed cooperative bound %d",
			res.StrictBarterBound, res.OptimalTime)
	}
}
