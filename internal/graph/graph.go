// Package graph builds the overlay networks the paper's algorithms run on.
//
// Nodes are integers 0..n-1; by convention node 0 is the server. A Graph
// is a static undirected adjacency structure. Constructors cover every
// topology used in the paper's evaluation: the complete graph (Figures 3
// and 4), random regular graphs of a chosen degree (Figures 5–7), the
// hypercube and its paired generalization for arbitrary n (Section 2.3),
// plus trees and chains for the baseline schedules of Section 2.2.
package graph

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"barterdist/internal/xrand"
)

// Graph is an undirected overlay network over nodes 0..N()-1.
// Neighbor lists are sorted, duplicate-free, and never contain the node
// itself; sorted order keeps seeded simulations reproducible across
// processes.
type Graph struct {
	adj  [][]int32
	name string
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// Name returns a human-readable description of the topology, used in
// experiment CSV output.
func (g *Graph) Name() string { return g.name }

// Degree returns the number of neighbors of node v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns node v's neighbor list. The caller must not modify it.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// MaxDegree returns the largest degree in the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, a := range g.adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}

// AvgDegree returns the mean degree.
func (g *Graph) AvgDegree() float64 {
	if g.N() == 0 {
		return 0
	}
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return float64(total) / float64(g.N())
}

// HasEdge reports whether u and v are adjacent. O(degree).
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if int(w) == v {
			return true
		}
	}
	return false
}

// builder accumulates edges with deduplication.
type builder struct {
	n     int
	edges map[[2]int32]struct{}
}

func newBuilder(n int) *builder {
	return &builder{n: n, edges: make(map[[2]int32]struct{})}
}

func (b *builder) addEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	a, c := int32(u), int32(v)
	if a > c {
		a, c = c, a
	}
	b.edges[[2]int32{a, c}] = struct{}{}
}

func (b *builder) build(name string) *Graph {
	adj := make([][]int32, b.n)
	for e := range b.edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	sortAdj(adj)
	return &Graph{adj: adj, name: name}
}

// sortAdj orders every neighbor list. Edge sets are accumulated in maps,
// whose iteration order varies between processes; sorting makes a graph
// built from a given seed bit-identical everywhere, which in turn keeps
// seeded simulation runs reproducible.
func sortAdj(adj [][]int32) {
	for _, nbrs := range adj {
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
	}
}

// Complete returns the complete graph on n nodes. For n in the thousands
// this materializes n(n-1)/2 edges; the randomized simulator special-cases
// complete graphs to avoid touching adjacency lists, but the explicit
// representation is still useful for small-n tests and verifiers.
func Complete(n int) *Graph {
	if n < 1 {
		panic("graph: Complete requires n >= 1")
	}
	adj := make([][]int32, n)
	for v := range adj {
		nbrs := make([]int32, 0, n-1)
		for u := 0; u < n; u++ {
			if u != v {
				nbrs = append(nbrs, int32(u))
			}
		}
		adj[v] = nbrs
	}
	return &Graph{adj: adj, name: fmt.Sprintf("complete(n=%d)", n)}
}

// Chain returns the path 0-1-2-...-n-1 used by the Pipeline baseline.
func Chain(n int) *Graph {
	if n < 1 {
		panic("graph: Chain requires n >= 1")
	}
	b := newBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.addEdge(v, v+1)
	}
	return b.build(fmt.Sprintf("chain(n=%d)", n))
}

// KaryTree returns a complete m-ary tree rooted at node 0, nodes numbered
// in breadth-first order, as used by the multicast-tree baseline.
func KaryTree(n, m int) *Graph {
	if n < 1 {
		panic("graph: KaryTree requires n >= 1")
	}
	if m < 1 {
		panic("graph: KaryTree requires m >= 1")
	}
	b := newBuilder(n)
	for v := 1; v < n; v++ {
		b.addEdge(v, (v-1)/m)
	}
	return b.build(fmt.Sprintf("kary(n=%d,m=%d)", n, m))
}

// Hypercube returns the r-dimensional hypercube on 2^r nodes: nodes are
// adjacent iff their IDs differ in exactly one bit. This is the overlay
// of the Binomial Pipeline (Section 2.3.2).
func Hypercube(r int) *Graph {
	if r < 0 || r > 30 {
		panic("graph: Hypercube dimension out of range [0,30]")
	}
	n := 1 << uint(r)
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		nbrs := make([]int32, r)
		for d := 0; d < r; d++ {
			nbrs[d] = int32(v ^ (1 << uint(r-1-d)))
		}
		adj[v] = nbrs
	}
	return &Graph{adj: adj, name: fmt.Sprintf("hypercube(r=%d)", r)}
}

// PairedHypercubeAssignment maps an arbitrary node population onto
// hypercube vertices per Section 2.3.3: choose the largest r with
// 2^r <= n (n = clients + server), give the server vertex 0 alone, and
// pack the N clients onto the 2^r - 1 non-zero vertices with one or two
// clients each.
type PairedHypercubeAssignment struct {
	// R is the hypercube dimension.
	R int
	// VertexOf[node] is the hypercube vertex hosting that node; node 0
	// (the server) is always vertex 0.
	VertexOf []int
	// NodesAt[vertex] lists the one or two nodes at each vertex.
	NodesAt [][]int
}

// NewPairedHypercubeAssignment packs n nodes (node 0 = server) onto the
// largest hypercube with 2^r <= n. It returns an error if n < 2 (there
// must be at least one client).
func NewPairedHypercubeAssignment(n int) (*PairedHypercubeAssignment, error) {
	if n < 2 {
		return nil, errors.New("graph: paired hypercube needs at least 2 nodes")
	}
	r := bits.Len(uint(n)) - 1 // largest r with 2^r <= n
	verts := 1 << uint(r)
	a := &PairedHypercubeAssignment{
		R:        r,
		VertexOf: make([]int, n),
		NodesAt:  make([][]int, verts),
	}
	a.NodesAt[0] = []int{0}
	// Clients 1..n-1 fill vertices 1..verts-1 round-robin: first one
	// client per vertex, then a second client per vertex. n <= 2^(r+1)-1
	// guarantees at most two per vertex... n < 2^(r+1) so the client
	// count N = n-1 <= 2^(r+1)-2 = 2*(verts-1), exactly the capacity.
	for c := 1; c < n; c++ {
		v := (c-1)%(verts-1) + 1
		a.VertexOf[c] = v
		a.NodesAt[v] = append(a.NodesAt[v], c)
	}
	return a, nil
}

// PairedHypercube returns the physical overlay induced by a paired
// hypercube assignment: nodes at adjacent vertices are connected, and the
// two nodes sharing a vertex are connected to each other. Per Section
// 2.3.3 each node's out-degree is at most r+1 while in-degree may reach
// 2r.
func PairedHypercube(n int) (*Graph, *PairedHypercubeAssignment, error) {
	a, err := NewPairedHypercubeAssignment(n)
	if err != nil {
		return nil, nil, err
	}
	b := newBuilder(n)
	verts := 1 << uint(a.R)
	for v := 0; v < verts; v++ {
		if nodes := a.NodesAt[v]; len(nodes) == 2 {
			b.addEdge(nodes[0], nodes[1])
		}
		for d := 0; d < a.R; d++ {
			u := v ^ (1 << uint(d))
			if u < v {
				continue // add each vertex pair once
			}
			for _, x := range a.NodesAt[v] {
				for _, y := range a.NodesAt[u] {
					b.addEdge(x, y)
				}
			}
		}
	}
	return b.build(fmt.Sprintf("paired-hypercube(n=%d,r=%d)", n, a.R)), a, nil
}

// RandomRegular returns a random d-regular simple graph on n nodes. For
// small degrees it uses the pairing (configuration) model with restarts:
// d*n half-edges ("stubs") are matched uniformly and a matching with a
// self-loop or duplicate edge is discarded. The probability that a
// matching is simple decays like exp(-(d²-1)/4), so for the moderate and
// large degrees of Figures 5-7 the constructor switches to a circulant
// d-regular graph randomized by 10·|E| degree-preserving double-edge
// swaps — a standard Markov-chain sampler whose mixing is more than
// sufficient for these experiments.
//
// n*d must be even and d < n.
func RandomRegular(n, d int, rng *xrand.Rand) (*Graph, error) {
	switch {
	case n < 1:
		return nil, errors.New("graph: RandomRegular requires n >= 1")
	case d < 0 || d >= n:
		return nil, fmt.Errorf("graph: degree %d must be in [0, n) with n=%d", d, n)
	case n*d%2 != 0:
		return nil, fmt.Errorf("graph: n*d = %d*%d must be even", n, d)
	}
	name := fmt.Sprintf("random-regular(n=%d,d=%d)", n, d)
	if d == 0 {
		return &Graph{adj: make([][]int32, n), name: name}, nil
	}
	const maxAttempts = 200
	stubs := make([]int, n*d)
	// Arena shared by every attempt: deg[v] neighbors of v live at
	// nbr[v*d : v*d+deg[v]]. Rejection sampling discards the vast
	// majority of matchings, so per-attempt map allocation used to
	// dominate the constructor's allocations; the flat arena costs one
	// memclr per attempt instead.
	deg := make([]int32, n)
	nbr := make([]int32, n*d)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		for i := range stubs {
			stubs[i] = i / d
		}
		rng.Shuffle(stubs)
		if g, ok := tryPairing(n, d, stubs, deg, nbr, name); ok {
			return g, nil
		}
	}
	// Deterministic fallback: start from a circulant d-regular graph and
	// randomize it with double-edge swaps, which preserve regularity.
	return circulantWithSwaps(n, d, rng, name)
}

// tryPairing matches consecutive stubs; fails on self-loops/multi-edges.
// deg and nbr are the caller's reusable adjacency arena (len n and n*d);
// duplicate detection is a linear scan over one endpoint's current
// neighbors, which for the degrees where the pairing model is viable is
// faster than any hashing and allocates nothing on the (overwhelmingly
// common) failure path.
func tryPairing(n, d int, stubs []int, deg, nbr []int32, name string) (*Graph, bool) {
	for i := range deg {
		deg[i] = 0
	}
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			return nil, false
		}
		// Adjacency is symmetric, so scanning the sparser endpoint's
		// list decides duplicates just as well.
		su, sv := u, v
		if deg[sv] < deg[su] {
			su, sv = sv, su
		}
		row := nbr[su*d : su*d+int(deg[su])]
		for _, w := range row {
			if w == int32(sv) {
				return nil, false
			}
		}
		nbr[u*d+int(deg[u])] = int32(v)
		deg[u]++
		nbr[v*d+int(deg[v])] = int32(u)
		deg[v]++
	}
	// Success: snapshot the arena into the graph's own backing array.
	backing := make([]int32, n*d)
	copy(backing, nbr)
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		adj[v] = backing[v*d : v*d+int(deg[v])]
	}
	sortAdj(adj)
	return &Graph{adj: adj, name: name}, true
}

// circulantWithSwaps builds the circulant graph where node v connects to
// v±1, v±2, ..., v±d/2 (plus the antipode if d is odd, requiring n even),
// then applies random degree-preserving double-edge swaps.
func circulantWithSwaps(n, d int, rng *xrand.Rand, name string) (*Graph, error) {
	edges := make(map[[2]int32]struct{})
	add := func(u, v int) {
		a, b := int32(u), int32(v)
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		edges[[2]int32{a, b}] = struct{}{}
	}
	for v := 0; v < n; v++ {
		for off := 1; off <= d/2; off++ {
			add(v, (v+off)%n)
		}
	}
	if d%2 == 1 {
		if n%2 != 0 {
			return nil, fmt.Errorf("graph: cannot build %d-regular graph on odd n=%d", d, n)
		}
		for v := 0; v < n/2; v++ {
			add(v, v+n/2)
		}
	}
	list := make([][2]int32, 0, len(edges))
	for e := range edges {
		list = append(list, e)
	}
	// Canonical order before the swap walk: the list was collected from a
	// map, and the swaps index into it, so an unsorted list would make
	// the output depend on map iteration order.
	sort.Slice(list, func(i, j int) bool {
		if list[i][0] != list[j][0] {
			return list[i][0] < list[j][0]
		}
		return list[i][1] < list[j][1]
	})
	// 10*|E| random double-edge swaps for mixing.
	for iter := 0; iter < 10*len(list); iter++ {
		i, j := rng.Intn(len(list)), rng.Intn(len(list))
		if i == j {
			continue
		}
		e1, e2 := list[i], list[j]
		// Swap to (e1[0], e2[1]) and (e2[0], e1[1]).
		a, b := e1[0], e2[1]
		c, dd := e2[0], e1[1]
		if a == b || c == dd {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if c > dd {
			c, dd = dd, c
		}
		n1, n2 := [2]int32{a, b}, [2]int32{c, dd}
		if n1 == n2 {
			continue
		}
		if _, dup := edges[n1]; dup {
			continue
		}
		if _, dup := edges[n2]; dup {
			continue
		}
		delete(edges, e1)
		delete(edges, e2)
		edges[n1] = struct{}{}
		edges[n2] = struct{}{}
		list[i], list[j] = n1, n2
	}
	adj := make([][]int32, n)
	for e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	sortAdj(adj)
	return &Graph{adj: adj, name: name}, nil
}

// GNP returns an Erdős–Rényi G(n, p) graph, used in tests exploring the
// randomized algorithm's sensitivity to irregular degree distributions.
func GNP(n int, p float64, rng *xrand.Rand) *Graph {
	if n < 1 {
		panic("graph: GNP requires n >= 1")
	}
	if p < 0 || p > 1 {
		panic("graph: GNP probability out of [0,1]")
	}
	b := newBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.addEdge(u, v)
			}
		}
	}
	return b.build(fmt.Sprintf("gnp(n=%d,p=%g)", n, p))
}

// Connected reports whether the graph is connected (vacuously true for
// n <= 1). Experiments reject disconnected overlays: a client with no
// path to the server can never complete.
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	queue = append(queue, 0)
	seen[0] = true
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if !seen[u] {
				seen[u] = true
				visited++
				queue = append(queue, u)
			}
		}
	}
	return visited == n
}

// Diameter returns the exact diameter via all-pairs BFS, or -1 if the
// graph is disconnected. O(n·m); intended for analysis of small graphs.
func (g *Graph) Diameter() int {
	n := g.N()
	if n == 0 {
		return -1
	}
	dist := make([]int, n)
	queue := make([]int32, 0, n)
	diameter := 0
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = queue[:0]
		queue = append(queue, int32(s))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter
}

// EccentricityFrom returns BFS distances from node s; unreachable nodes
// get -1.
func (g *Graph) EccentricityFrom(s int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int32{int32(s)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.adj[v] {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}
