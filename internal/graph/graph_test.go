package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"barterdist/internal/xrand"
)

func degreesOK(t *testing.T, g *Graph) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		seen := map[int32]struct{}{}
		for _, u := range g.Neighbors(v) {
			if int(u) == v {
				t.Fatalf("self-loop at node %d in %s", v, g.Name())
			}
			if _, dup := seen[u]; dup {
				t.Fatalf("duplicate edge %d-%d in %s", v, u, g.Name())
			}
			seen[u] = struct{}{}
			if !g.HasEdge(int(u), v) {
				t.Fatalf("edge %d-%d not symmetric in %s", v, u, g.Name())
			}
		}
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	degreesOK(t, g)
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if !g.Connected() {
		t.Fatal("complete graph reported disconnected")
	}
	if d := g.Diameter(); d != 1 {
		t.Fatalf("diameter = %d, want 1", d)
	}
}

func TestCompleteSingleNode(t *testing.T) {
	g := Complete(1)
	if g.Degree(0) != 0 || !g.Connected() {
		t.Fatal("K1 should be a connected single node")
	}
}

func TestChain(t *testing.T) {
	g := Chain(6)
	degreesOK(t, g)
	if g.Degree(0) != 1 || g.Degree(5) != 1 {
		t.Fatal("chain endpoints should have degree 1")
	}
	for v := 1; v < 5; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("interior degree(%d) = %d", v, g.Degree(v))
		}
	}
	if d := g.Diameter(); d != 5 {
		t.Fatalf("diameter = %d, want 5", d)
	}
}

func TestKaryTree(t *testing.T) {
	g := KaryTree(13, 3) // perfect 3-ary tree of depth 2
	degreesOK(t, g)
	if g.Degree(0) != 3 {
		t.Fatalf("root degree = %d, want 3", g.Degree(0))
	}
	// Nodes 1..3 are internal (1 parent + 3 children); 4..12 leaves.
	for v := 1; v <= 3; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("internal degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	for v := 4; v < 13; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("leaf degree(%d) = %d, want 1", v, g.Degree(v))
		}
	}
	if !g.Connected() {
		t.Fatal("tree reported disconnected")
	}
}

func TestHypercube(t *testing.T) {
	for r := 0; r <= 6; r++ {
		g := Hypercube(r)
		degreesOK(t, g)
		if g.N() != 1<<uint(r) {
			t.Fatalf("r=%d: N = %d", r, g.N())
		}
		for v := 0; v < g.N(); v++ {
			if g.Degree(v) != r {
				t.Fatalf("r=%d: degree(%d) = %d", r, v, g.Degree(v))
			}
		}
		if r >= 1 && !g.Connected() {
			t.Fatalf("r=%d hypercube disconnected", r)
		}
		if r >= 1 {
			if d := g.Diameter(); d != r {
				t.Fatalf("r=%d: diameter = %d", r, d)
			}
		}
	}
}

func TestHypercubeDimensionOrder(t *testing.T) {
	// Dimension 0 must flip the MOST significant bit (paper's convention).
	g := Hypercube(3)
	nbrs := g.Neighbors(0)
	if nbrs[0] != 4 || nbrs[1] != 2 || nbrs[2] != 1 {
		t.Fatalf("neighbors of 0 = %v, want [4 2 1]", nbrs)
	}
}

func TestPairedHypercubeAssignment(t *testing.T) {
	for n := 2; n <= 70; n++ {
		a, err := NewPairedHypercubeAssignment(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		verts := 1 << uint(a.R)
		if verts > n {
			t.Fatalf("n=%d: 2^r=%d exceeds n", n, verts)
		}
		if 2*verts <= n {
			t.Fatalf("n=%d: r=%d too small", n, a.R)
		}
		if got := a.NodesAt[0]; len(got) != 1 || got[0] != 0 {
			t.Fatalf("n=%d: server vertex hosts %v", n, got)
		}
		total := 0
		for v, nodes := range a.NodesAt {
			if v != 0 && (len(nodes) < 1 || len(nodes) > 2) {
				t.Fatalf("n=%d: vertex %d hosts %d nodes", n, v, len(nodes))
			}
			for _, node := range nodes {
				if a.VertexOf[node] != v {
					t.Fatalf("n=%d: VertexOf[%d] = %d, want %d", n, node, a.VertexOf[node], v)
				}
			}
			total += len(nodes)
		}
		if total != n {
			t.Fatalf("n=%d: assignment covers %d nodes", n, total)
		}
	}
}

func TestPairedHypercubeAssignmentErrors(t *testing.T) {
	if _, err := NewPairedHypercubeAssignment(1); err == nil {
		t.Fatal("n=1 should error")
	}
}

func TestPairedHypercubeGraph(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 13, 16, 31, 32, 33, 50} {
		g, a, err := PairedHypercube(n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		degreesOK(t, g)
		if !g.Connected() {
			t.Fatalf("n=%d paired hypercube disconnected", n)
		}
		// Degree bound from the paper: each node talks to at most the
		// nodes on its r incident vertex links (<= 2 each) plus its
		// vertex partner => degree <= 2r+1.
		for v := 0; v < n; v++ {
			if g.Degree(v) > 2*a.R+1 {
				t.Fatalf("n=%d: degree(%d) = %d > 2r+1 = %d", n, v, g.Degree(v), 2*a.R+1)
			}
		}
	}
}

func TestRandomRegular(t *testing.T) {
	rng := xrand.New(42)
	for _, tc := range []struct{ n, d int }{
		{10, 3}, {100, 4}, {100, 20}, {51, 4}, {1000, 10},
	} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("n=%d d=%d: %v", tc.n, tc.d, err)
		}
		degreesOK(t, g)
		for v := 0; v < tc.n; v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("n=%d d=%d: degree(%d) = %d", tc.n, tc.d, v, g.Degree(v))
			}
		}
		if tc.d >= 3 && !g.Connected() {
			// d>=3 random regular graphs are connected w.h.p.; with our
			// fixed seed this is deterministic.
			t.Fatalf("n=%d d=%d: disconnected", tc.n, tc.d)
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	rng := xrand.New(1)
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Fatal("odd n*d should error")
	}
	if _, err := RandomRegular(5, 5, rng); err == nil {
		t.Fatal("d >= n should error")
	}
	if _, err := RandomRegular(0, 0, rng); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestRandomRegularZeroDegree(t *testing.T) {
	g, err := RandomRegular(4, 0, xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if g.Degree(v) != 0 {
			t.Fatal("0-regular graph has edges")
		}
	}
}

func TestCirculantFallback(t *testing.T) {
	// Dense case (d close to n) where pairing rejection is likely; the
	// fallback must still produce an exact d-regular simple graph.
	rng := xrand.New(7)
	g, err := circulantWithSwaps(20, 13, rng, "test")
	if err != nil {
		t.Fatal(err)
	}
	degreesOK(t, g)
	hist := map[int]int{}
	for v := 0; v < 20; v++ {
		hist[g.Degree(v)]++
	}
	if hist[13] != 20 {
		t.Fatalf("degree histogram %v, want all 13", hist)
	}
}

func TestCirculantOddDegreeOddN(t *testing.T) {
	if _, err := circulantWithSwaps(7, 3, xrand.New(1), "t"); err == nil {
		t.Fatal("odd-degree on odd n should error")
	}
}

func TestGNP(t *testing.T) {
	rng := xrand.New(3)
	g := GNP(50, 0.5, rng)
	degreesOK(t, g)
	// Mean degree should be near p*(n-1) = 24.5.
	if avg := g.AvgDegree(); avg < 18 || avg > 31 {
		t.Fatalf("GNP avg degree %.1f far from 24.5", avg)
	}
	empty := GNP(10, 0, rng)
	if empty.AvgDegree() != 0 {
		t.Fatal("p=0 graph has edges")
	}
	full := GNP(10, 1, rng)
	for v := 0; v < 10; v++ {
		if full.Degree(v) != 9 {
			t.Fatal("p=1 graph is not complete")
		}
	}
}

func TestConnectedDetectsDisconnection(t *testing.T) {
	b := newBuilder(4)
	b.addEdge(0, 1)
	b.addEdge(2, 3)
	g := b.build("two-components")
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
	if g.Diameter() != -1 {
		t.Fatal("diameter of disconnected graph should be -1")
	}
}

func TestEccentricityFrom(t *testing.T) {
	g := Chain(5)
	got := g.EccentricityFrom(0)
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("distances = %v", got)
	}
}

func TestMaxDegree(t *testing.T) {
	g := KaryTree(10, 9)
	if g.MaxDegree() != 9 {
		t.Fatalf("MaxDegree = %d, want 9", g.MaxDegree())
	}
}

// TestQuickRandomRegularIsRegular: any valid (n, d) pair yields an exact
// d-regular simple graph.
func TestQuickRandomRegularIsRegular(t *testing.T) {
	rng := xrand.New(99)
	f := func(nRaw, dRaw uint8) bool {
		n := int(nRaw)%60 + 4
		d := int(dRaw) % n
		if n*d%2 != 0 {
			d-- // make parity valid
		}
		if d < 0 {
			d = 0
		}
		g, err := RandomRegular(n, d, rng)
		if err != nil {
			// Only the odd-circulant corner may error; pairing handles
			// everything else. Accept errors only when both parity
			// repair fails, which cannot happen here.
			return false
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != d {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(args []reflect.Value, _ *rand.Rand) {
			args[0] = reflect.ValueOf(uint8(rng.Intn(256)))
			args[1] = reflect.ValueOf(uint8(rng.Intn(256)))
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRandomRegular1000x20(b *testing.B) {
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := RandomRegular(1000, 20, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNeighborListsSortedAndSeedDeterministic locks in the reproducibility
// fix: adjacency built from edge maps must come out sorted, so that a
// graph built from a given seed is bit-identical in every process and
// seeded simulations on it replay exactly.
func TestNeighborListsSortedAndSeedDeterministic(t *testing.T) {
	build := func() *Graph {
		g, err := RandomRegular(64, 8, xrand.New(123))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1, g2 := build(), build()
	for v := 0; v < g1.N(); v++ {
		n1, n2 := g1.Neighbors(v), g2.Neighbors(v)
		if !reflect.DeepEqual(n1, n2) {
			t.Fatalf("node %d: neighbor lists differ between identically seeded builds", v)
		}
		for i := 1; i < len(n1); i++ {
			if n1[i-1] >= n1[i] {
				t.Fatalf("node %d: neighbor list not strictly sorted: %v", v, n1)
			}
		}
	}
	// The map-accumulated constructors must be sorted too.
	for _, g := range []*Graph{Chain(10), KaryTree(13, 3), GNP(30, 0.4, xrand.New(7))} {
		for v := 0; v < g.N(); v++ {
			nbrs := g.Neighbors(v)
			for i := 1; i < len(nbrs); i++ {
				if nbrs[i-1] >= nbrs[i] {
					t.Fatalf("%s node %d: unsorted neighbors %v", g.Name(), v, nbrs)
				}
			}
		}
	}
}
