package parallel

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"barterdist/internal/xrand"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", Workers(0))
	}
	if Workers(-3) != Workers(0) {
		t.Fatalf("negative request should match the default")
	}
	if Workers(7) != 7 {
		t.Fatalf("Workers(7) = %d", Workers(7))
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8, 100} {
		n := 137
		counts := make([]int32, n)
		if err := ForEach(w, n, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("task ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachErrorIsLowestIndex pins the deterministic error contract:
// the same error surfaces no matter how many workers raced.
func TestForEachErrorIsLowestIndex(t *testing.T) {
	boom := func(i int) error {
		if i%10 == 3 { // fails at 3, 13, 23, ...
			return fmt.Errorf("task %d failed", i)
		}
		return nil
	}
	want := "task 3 failed"
	for _, w := range []int{1, 2, 8, 64} {
		err := ForEach(w, 100, boom)
		if err == nil || err.Error() != want {
			t.Fatalf("workers=%d: err = %v, want %q", w, err, want)
		}
	}
}

// TestForEachRunsAllDespiteError: a failure must not skip later tasks,
// otherwise partial results would depend on scheduling.
func TestForEachRunsAllDespiteError(t *testing.T) {
	for _, w := range []int{1, 4} {
		var ran atomic.Int32
		sentinel := errors.New("x")
		_ = ForEach(w, 50, func(i int) error {
			ran.Add(1)
			if i == 0 {
				return sentinel
			}
			return nil
		})
		if got := ran.Load(); got != 50 {
			t.Fatalf("workers=%d: ran %d of 50 tasks after error", w, got)
		}
	}
}

// TestMapDeterministicAcrossWorkerCounts is the heart of the package's
// contract: per-index seed derivation plus index-slot collection must
// produce byte-identical results for any worker count.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 64
	run := func(workers int) []uint64 {
		out, err := Map(workers, n, func(i int) (uint64, error) {
			// Each task owns a private stream derived from its index.
			rng := xrand.New(42 + uint64(i)*SeedStride)
			var acc uint64
			for j := 0; j < 100; j++ {
				acc ^= rng.Uint64()
			}
			return acc, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 3, 8, 32} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d diverged: %x != %x", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapPartialResultsOnError(t *testing.T) {
	out, err := Map(4, 10, func(i int) (int, error) {
		if i == 5 {
			return 0, errors.New("five")
		}
		return i * i, nil
	})
	if err == nil || err.Error() != "five" {
		t.Fatalf("err = %v", err)
	}
	if len(out) != 10 || out[9] != 81 || out[5] != 0 {
		t.Fatalf("partial results wrong: %v", out)
	}
}

func TestForEachRecoversPanics(t *testing.T) {
	for _, w := range []int{1, 4} {
		var ran [8]bool
		err := ForEach(w, 8, func(i int) error {
			ran[i] = true
			if i == 3 || i == 6 {
				panic(fmt.Sprintf("boom %d", i))
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", w, err)
		}
		if pe.Index != 3 {
			t.Fatalf("workers=%d: lowest panicking index = %d, want 3", w, pe.Index)
		}
		if pe.Value != "boom 3" {
			t.Fatalf("workers=%d: recovered value = %v", w, pe.Value)
		}
		if !bytes.Contains(pe.Stack, []byte("parallel_test.go")) {
			t.Fatalf("workers=%d: stack does not point at the panic site:\n%s", w, pe.Stack)
		}
		for i, r := range ran {
			if !r {
				t.Fatalf("workers=%d: task %d skipped after sibling panic", w, i)
			}
		}
	}
}

func TestForEachPanicLosesToEarlierError(t *testing.T) {
	err := ForEach(4, 8, func(i int) error {
		if i == 2 {
			return errors.New("plain failure")
		}
		if i == 5 {
			panic("later panic")
		}
		return nil
	})
	if err == nil || err.Error() != "plain failure" {
		t.Fatalf("err = %v, want the lowest-index plain failure", err)
	}
}
