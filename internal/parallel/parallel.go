// Package parallel implements the deterministic bounded worker pool
// behind every parallel experiment in this repository.
//
// The determinism contract (DESIGN.md §8–§9) demands that every figure
// and table be byte-identical regardless of how many workers produced
// it. The pool guarantees that by construction rather than by
// synchronization discipline:
//
//   - Work is indexed. A batch of n independent tasks is identified by
//     the integers [0, n); every task writes its result into its own
//     index of a caller-owned slice, so "collection in submission
//     order" is automatic and free of cross-worker communication.
//   - Seeds are pre-derived. A task must derive all of its randomness
//     from its index (e.g. baseSeed + i*SeedStride) and construct its
//     own xrand stream; goroutines never share a generator. The
//     cdlint rng-discipline rule and the rngworkers fixture pin this.
//   - Errors are ordered. Every task runs to completion regardless of
//     other tasks' failures, and the error returned is the one at the
//     lowest index — the same error a sequential loop would surface,
//     for any worker count.
//
// A single-worker request runs inline on the calling goroutine: the
// workers=1 configuration is the sequential reference implementation
// the parallel paths are tested against.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is the error a task that panicked resolves to: execution
// is supervised, so one panicking task cannot take down the whole
// process (and with it every sibling's completed work). It records the
// task index, the recovered value, and the goroutine stack at the
// panic site for debugging.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (p *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// runTask invokes task(i), converting a panic into a *PanicError so
// the pool's ordered-error contract holds even for crashing tasks.
func runTask(task func(i int) error, i int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return task(i)
}

// SeedStride is the canonical per-index seed increment (the golden
// ratio in fixed point, the same constant splitmix64 uses). Tasks that
// need one derived seed per index should use baseSeed + i*SeedStride:
// consecutive seeds land in decorrelated xrand streams.
const SeedStride = 0x9e3779b97f4a7c15

// Workers resolves a worker-count request: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs task(i) for every i in [0, n) on at most workers
// concurrent goroutines (workers <= 0 selects GOMAXPROCS) and blocks
// until all tasks have finished. Tasks communicate results exclusively
// by writing to their own index of caller-owned slices; ForEach
// provides the completion barrier that makes those writes visible to
// the caller.
//
// Every task runs even if an earlier one failed, and the returned
// error is the lowest-index one — both choices keep the observable
// outcome independent of scheduling, so output is byte-identical for
// any worker count >= 1. A panicking task is recovered into a
// *PanicError at its index (carrying the stack) instead of crashing
// the process, on both the sequential and pooled paths.
func ForEach(workers, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		// Sequential reference path: no goroutines, same semantics.
		var first error
		for i := 0; i < n; i++ {
			if err := runTask(task, i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = runTask(task, i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Map runs task(i) for every i in [0, n) on the pool and returns the
// results in index order. The error, if any, is the lowest-index one;
// the partial results are still returned so callers that treat some
// errors as data (e.g. stalls pinned at the tick budget) can decide
// per index.
func Map[T any](workers, n int, task func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(workers, n, func(i int) error {
		v, err := task(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}
