package checkpoint

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func buildSample() *Snapshot {
	var snap Snapshot
	e := NewEncoder(64)
	e.U8(7)
	e.Bool(true)
	e.Bool(false)
	e.U16(0xbeef)
	e.U32(0xdeadbeef)
	e.U64(1<<63 | 12345)
	e.I64(-42)
	e.Int(-7)
	e.F64(math.Pi)
	e.F64(math.Copysign(0, -1))
	e.String("hello, checkpoint")
	e.Bytes8([]byte{0, 1, 2, 255})
	e.Uint64s([]uint64{1, 2, 3})
	e.Uint32s([]uint32{9, 8})
	e.Int32s([]int32{-1, 0, 1})
	e.Ints([]int{-100, 100})
	e.F64s([]float64{1.5, -2.5})
	e.Bools([]bool{true, false, true})
	snap.Add("alpha", e.Bytes())
	snap.Add("beta", nil)
	snap.Add("gamma", []byte("raw payload"))
	return &snap
}

func TestRoundTrip(t *testing.T) {
	snap := buildSample()
	data := snap.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got.Sections()) != 3 {
		t.Fatalf("got %d sections, want 3", len(got.Sections()))
	}
	payload, err := got.Section("alpha")
	if err != nil {
		t.Fatalf("Section(alpha): %v", err)
	}
	d := NewDecoder(payload)
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d, want 7", v)
	}
	if !d.Bool() || d.Bool() {
		t.Errorf("Bool round-trip failed")
	}
	if v := d.U16(); v != 0xbeef {
		t.Errorf("U16 = %#x", v)
	}
	if v := d.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != 1<<63|12345 {
		t.Errorf("U64 = %#x", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.Int(); v != -7 {
		t.Errorf("Int = %d", v)
	}
	if v := d.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if v := d.F64(); math.Float64bits(v) != math.Float64bits(math.Copysign(0, -1)) {
		t.Errorf("F64 signed zero lost: %v", v)
	}
	if v := d.String(); v != "hello, checkpoint" {
		t.Errorf("String = %q", v)
	}
	b := d.Bytes8()
	if len(b) != 4 || b[3] != 255 {
		t.Errorf("Bytes8 = %v", b)
	}
	if vs := d.Uint64s(); len(vs) != 3 || vs[2] != 3 {
		t.Errorf("Uint64s = %v", vs)
	}
	if vs := d.Uint32s(); len(vs) != 2 || vs[0] != 9 {
		t.Errorf("Uint32s = %v", vs)
	}
	if vs := d.Int32s(); len(vs) != 3 || vs[0] != -1 {
		t.Errorf("Int32s = %v", vs)
	}
	if vs := d.Ints(); len(vs) != 2 || vs[0] != -100 {
		t.Errorf("Ints = %v", vs)
	}
	if vs := d.F64s(); len(vs) != 2 || vs[1] != -2.5 {
		t.Errorf("F64s = %v", vs)
	}
	if vs := d.Bools(); len(vs) != 3 || !vs[2] {
		t.Errorf("Bools = %v", vs)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}

	if _, err := got.Section("delta"); err == nil {
		t.Errorf("Section(delta) should fail")
	}
	if got.Has("beta") != true || got.Has("delta") != false {
		t.Errorf("Has() wrong")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a := buildSample().Encode()
	b := buildSample().Encode()
	if string(a) != string(b) {
		t.Fatalf("Encode is not byte-reproducible")
	}
}

// Every single-byte corruption of an encoded snapshot must be caught
// by the framing or a section checksum.
func TestBitFlipDetected(t *testing.T) {
	data := buildSample().Encode()
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at byte %d not detected", i)
		}
	}
}

// Every truncation must be caught.
func TestTruncationDetected(t *testing.T) {
	data := buildSample().Encode()
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes not detected", n)
		}
	}
}

func TestTrailingGarbageDetected(t *testing.T) {
	data := append(buildSample().Encode(), 0xff)
	if _, err := Decode(data); err == nil {
		t.Fatal("trailing garbage not detected")
	}
}

func TestErrorsWrapErrCorrupt(t *testing.T) {
	_, err := Decode([]byte("not a checkpoint at all"))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v does not wrap ErrCorrupt", err)
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	d.U64() // fails: only two bytes
	if d.Err() == nil {
		t.Fatal("expected error after short read")
	}
	// Subsequent reads stay zero-valued and keep the first error.
	if v := d.U32(); v != 0 {
		t.Errorf("read after error = %d, want 0", v)
	}
	if d.Finish() == nil {
		t.Error("Finish should report the error")
	}
}

func TestDecoderUnreadBytes(t *testing.T) {
	e := NewEncoder(16)
	e.U64(1)
	e.U64(2)
	d := NewDecoder(e.Bytes())
	d.U64()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish should reject unread bytes")
	}
}

// A hostile count field must not cause a huge allocation: the count is
// validated against the bytes actually remaining before allocating.
func TestHostileCountRejected(t *testing.T) {
	e := NewEncoder(16)
	e.U64(1 << 60) // claims 2^60 elements with no data behind it
	d := NewDecoder(e.Bytes())
	if vs := d.Uint64s(); vs != nil {
		t.Fatalf("Uint64s returned %d elems on hostile count", len(vs))
	}
	if d.Err() == nil {
		t.Fatal("hostile count not rejected")
	}
}

func TestBoolByteValidated(t *testing.T) {
	d := NewDecoder([]byte{2})
	d.Bool()
	if d.Err() == nil {
		t.Fatal("bool byte 2 not rejected")
	}
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	snap := buildSample()
	if err := snap.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// Overwrite with a second snapshot; the rename must replace it.
	var second Snapshot
	second.Add("only", []byte("v2"))
	if err := second.WriteFile(path); err != nil {
		t.Fatalf("WriteFile overwrite: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got.Sections()) != 1 || got.Sections()[0].Name != "only" {
		t.Fatalf("unexpected snapshot after overwrite: %+v", got.Sections())
	}
	// No temp files may linger.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestReadFileCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ReadFile on garbage: %v", err)
	}
}

func TestPolicyEnabled(t *testing.T) {
	if (&Policy{}).Enabled() {
		t.Error("empty policy enabled")
	}
	if (&Policy{Path: "x"}).Enabled() {
		t.Error("policy without Every enabled")
	}
	if (&Policy{Path: "x", Every: -1}).Enabled() {
		t.Error("negative Every enabled")
	}
	if !(&Policy{Path: "x", Every: 10}).Enabled() {
		t.Error("valid policy not enabled")
	}
	var nilPolicy *Policy
	if nilPolicy.Enabled() {
		t.Error("nil policy enabled")
	}
}
