package checkpoint

import "testing"

// FuzzCheckpointDecode feeds arbitrary bytes to the container decoder
// and the primitive decoder. The contract under fuzzing: never panic,
// never allocate unboundedly, and — when Decode succeeds — re-encoding
// the result must reproduce the input exactly (no silently-dropped or
// invented state).
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(buildSample().Encode())
	data := buildSample().Encode()
	trunc := data[:len(data)/2]
	f.Add(append([]byte(nil), trunc...))
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped)
	// A section carrying a frame-compressed trace payload (snapshot
	// layout v2): version byte, kinded flag, one sealed frame of three
	// const-encoded columns, empty open tail, and the tick/drop offset
	// columns. Keeps the container fuzzer reaching into the framed
	// decode surface the engines embed in their run snapshots.
	framed := NewEncoder(128)
	framed.U8(2)
	framed.Bool(false)
	framed.Int(1)
	framed.U32(0)
	framed.U32(0)
	framed.Bytes8([]byte{0, 1, 0, 2, 0, 3}) // 3 × (const mode, uvarint value)
	framed.Uint32s(nil)
	framed.Uint32s(nil)
	framed.Uint32s(nil)
	framed.Uint32s([]uint32{65536})
	framed.Uint32s(nil)
	framed.Bytes8(nil)
	framed.Int(0)
	framed.Uint32s([]uint32{0})
	withTrace := buildSample()
	withTrace.Add("trace", framed.Bytes())
	f.Add(withTrace.Encode())

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must round-trip byte-identically.
		if got := snap.Encode(); string(got) != string(data) {
			t.Fatalf("re-encode mismatch: %d bytes in, %d bytes out", len(data), len(got))
		}
		// Exercise the primitive decoder over every payload; it
		// must never panic regardless of content.
		for _, sec := range snap.Sections() {
			d := NewDecoder(sec.Payload)
			for d.Err() == nil && d.Remaining() > 0 {
				d.Uint64s()
				_ = d.String()
				d.U8()
			}
		}
	})
}
