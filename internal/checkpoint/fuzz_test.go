package checkpoint

import "testing"

// FuzzCheckpointDecode feeds arbitrary bytes to the container decoder
// and the primitive decoder. The contract under fuzzing: never panic,
// never allocate unboundedly, and — when Decode succeeds — re-encoding
// the result must reproduce the input exactly (no silently-dropped or
// invented state).
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(buildSample().Encode())
	data := buildSample().Encode()
	trunc := data[:len(data)/2]
	f.Add(append([]byte(nil), trunc...))
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-1] ^= 0x80
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			return
		}
		// A successful decode must round-trip byte-identically.
		if got := snap.Encode(); string(got) != string(data) {
			t.Fatalf("re-encode mismatch: %d bytes in, %d bytes out", len(data), len(got))
		}
		// Exercise the primitive decoder over every payload; it
		// must never panic regardless of content.
		for _, sec := range snap.Sections() {
			d := NewDecoder(sec.Payload)
			for d.Err() == nil && d.Remaining() > 0 {
				d.Uint64s()
				_ = d.String()
				d.U8()
			}
		}
	})
}
