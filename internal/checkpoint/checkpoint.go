// Package checkpoint implements the versioned binary snapshot format
// used to persist full engine state mid-run, so that a crashed or
// killed simulation can be resumed and — by the determinism contract
// of DESIGN.md §8 — produce a byte-identical result to an
// uninterrupted run.
//
// A snapshot is an ordered list of named sections. Each section's
// payload is an opaque byte string produced by an Encoder and consumed
// by a Decoder; the container frames every section with its length and
// a CRC32 checksum over (name, payload), so a torn write, bit flip, or
// truncated file is always detected and reported as an error. Nothing
// in this package ever decodes a corrupted snapshot into a plausible
// but wrong state: every read is bounds-checked, every allocation is
// capped by the number of bytes actually remaining, and the decoder
// never panics on arbitrary input (enforced by FuzzCheckpointDecode).
//
// The package deliberately imports only the standard library. Engine
// packages (simulate, asim, trace, fault, adversary, ...) depend on
// checkpoint and provide their own Snapshot/Restore methods; the
// reverse dependency would be a cycle.
package checkpoint

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// Magic identifies a checkpoint file. The trailing digits are the
// container format version: bump them on any incompatible change so
// old binaries reject new snapshots with a clear error instead of
// misdecoding them.
const Magic = "CDCKPT01"

// Limits that keep the decoder's allocations proportional to the
// input. A hostile length field can never make us allocate more than
// the bytes that are actually present.
const (
	maxSectionName = 256
	maxSections    = 1 << 16
)

// ErrCorrupt is wrapped by every decode failure, so callers can test
// errors.Is(err, checkpoint.ErrCorrupt) regardless of the detail.
var ErrCorrupt = errors.New("checkpoint: corrupt or truncated snapshot")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Corruptf builds an error wrapping ErrCorrupt. Engine packages use it
// for their own section-level validation failures, so every decode
// defect — container or payload — answers errors.Is(err, ErrCorrupt).
func Corruptf(format string, args ...any) error {
	return corruptf(format, args...)
}

// Policy configures periodic checkpointing for an engine run. Every is
// interpreted by the engine: ticks for the synchronous engine, handled
// events for the asynchronous one.
type Policy struct {
	// Path is the file the snapshot is (re)written to. Writes are
	// atomic: a crash mid-write leaves either the previous complete
	// snapshot or none, never a torn file.
	Path string
	// Every is the checkpoint interval in engine-defined units
	// (ticks or handled events). Zero or negative disables
	// checkpointing.
	Every int
}

// Enabled reports whether the policy asks for periodic snapshots.
func (p *Policy) Enabled() bool {
	return p != nil && p.Path != "" && p.Every > 0
}

// Section is one named, checksummed unit of a snapshot.
type Section struct {
	Name    string
	Payload []byte
}

// Snapshot is an ordered collection of sections. Order is part of the
// format: encoding the same sections in the same order is
// byte-reproducible.
type Snapshot struct {
	sections []Section
}

// Add appends a section. Names need not be unique, but the engines
// only use unique names; Section() returns the first match.
func (s *Snapshot) Add(name string, payload []byte) {
	s.sections = append(s.sections, Section{Name: name, Payload: payload})
}

// Section returns the payload of the first section with the given
// name, or an error naming the missing section.
func (s *Snapshot) Section(name string) ([]byte, error) {
	for _, sec := range s.sections {
		if sec.Name == name {
			return sec.Payload, nil
		}
	}
	return nil, fmt.Errorf("checkpoint: snapshot has no %q section", name)
}

// Has reports whether a section with the given name exists.
func (s *Snapshot) Has(name string) bool {
	_, err := s.Section(name)
	return err == nil
}

// Sections returns the section list in encoding order.
func (s *Snapshot) Sections() []Section { return s.sections }

// Encode serializes the snapshot:
//
//	magic[8] | sectionCount u32 | sections...
//
// and each section as
//
//	nameLen u16 | name | payloadLen u64 | payload | crc32(name+payload) u32
func (s *Snapshot) Encode() []byte {
	size := len(Magic) + 4
	for _, sec := range s.sections {
		size += 2 + len(sec.Name) + 8 + len(sec.Payload) + 4
	}
	out := make([]byte, 0, size)
	out = append(out, Magic...)
	out = appendU32(out, uint32(len(s.sections)))
	for _, sec := range s.sections {
		if len(sec.Name) > maxSectionName {
			// Engines never build such names; guard the format
			// invariant anyway so Decode's cap is sound.
			panic("checkpoint: section name too long")
		}
		out = appendU16(out, uint16(len(sec.Name)))
		out = append(out, sec.Name...)
		out = appendU64(out, uint64(len(sec.Payload)))
		out = append(out, sec.Payload...)
		crc := crc32.ChecksumIEEE([]byte(sec.Name))
		crc = crc32.Update(crc, crc32.IEEETable, sec.Payload)
		out = appendU32(out, crc)
	}
	return out
}

// Decode parses an encoded snapshot, verifying framing and every
// section checksum. Any defect — wrong magic, truncation, trailing
// garbage, checksum mismatch — yields an error wrapping ErrCorrupt.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(Magic)+4 {
		return nil, corruptf("short header: %d bytes", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, corruptf("bad magic %q (want %q)", data[:len(Magic)], Magic)
	}
	pos := len(Magic)
	count := readU32(data[pos:])
	pos += 4
	if count > maxSections {
		return nil, corruptf("section count %d exceeds limit %d", count, maxSections)
	}
	snap := &Snapshot{}
	for i := uint32(0); i < count; i++ {
		if len(data)-pos < 2 {
			return nil, corruptf("section %d: truncated name length", i)
		}
		nameLen := int(readU16(data[pos:]))
		pos += 2
		if nameLen > maxSectionName {
			return nil, corruptf("section %d: name length %d exceeds limit", i, nameLen)
		}
		if len(data)-pos < nameLen {
			return nil, corruptf("section %d: truncated name", i)
		}
		name := string(data[pos : pos+nameLen])
		pos += nameLen
		if len(data)-pos < 8 {
			return nil, corruptf("section %d (%q): truncated payload length", i, name)
		}
		payloadLen64 := readU64(data[pos:])
		pos += 8
		if payloadLen64 > uint64(len(data)-pos) {
			return nil, corruptf("section %d (%q): payload length %d exceeds remaining %d bytes",
				i, name, payloadLen64, len(data)-pos)
		}
		payloadLen := int(payloadLen64)
		payload := data[pos : pos+payloadLen]
		pos += payloadLen
		if len(data)-pos < 4 {
			return nil, corruptf("section %d (%q): truncated checksum", i, name)
		}
		want := readU32(data[pos:])
		pos += 4
		crc := crc32.ChecksumIEEE([]byte(name))
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != want {
			return nil, corruptf("section %d (%q): checksum mismatch (have %08x, want %08x)",
				i, name, crc, want)
		}
		// Copy the payload so the snapshot does not alias the
		// caller's buffer (which may be reused or mmapped).
		snap.Add(name, append([]byte(nil), payload...))
	}
	if pos != len(data) {
		return nil, corruptf("%d trailing bytes after last section", len(data)-pos)
	}
	return snap, nil
}

// WriteFile atomically persists the snapshot: it writes to a temporary
// file in the destination directory, fsyncs, and renames over path. A
// crash at any point leaves either the previous snapshot or the new
// one, never a torn mixture.
func (s *Snapshot) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(s.Encode()); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: write %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: sync %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: close %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: rename into place: %w", err)
	}
	return nil
}

// ReadFile loads and decodes a snapshot from disk.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read %s: %w", path, err)
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// ---------------------------------------------------------------------
// Encoder: builds a section payload from typed primitives. All
// multi-byte values are little-endian and fixed-width; counts are
// u64. Fixed-width costs a few bytes over varints but keeps encode
// and decode trivially symmetric and branch-free.

// Encoder accumulates a section payload.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder with the given capacity hint.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 appends a little-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = appendU16(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = appendU32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = appendU64(e.buf, v) }

// I64 appends a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 via its IEEE-754 bit pattern, preserving the
// value exactly (including NaN payloads and signed zero).
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes8 appends a u64 length prefix followed by the raw bytes.
func (e *Encoder) Bytes8(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a u64 length prefix followed by the string bytes.
func (e *Encoder) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Uint64s appends a u64 count followed by the values.
func (e *Encoder) Uint64s(vs []uint64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.U64(v)
	}
}

// Uint32s appends a u64 count followed by the values.
func (e *Encoder) Uint32s(vs []uint32) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.U32(v)
	}
}

// Int32s appends a u64 count followed by the values.
func (e *Encoder) Int32s(vs []int32) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.U32(uint32(v))
	}
}

// Ints appends a u64 count followed by the values as int64s.
func (e *Encoder) Ints(vs []int) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.I64(int64(v))
	}
}

// F64s appends a u64 count followed by the values' bit patterns.
func (e *Encoder) F64s(vs []float64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// Bools appends a u64 count followed by one byte per value.
func (e *Encoder) Bools(vs []bool) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.Bool(v)
	}
}

// ---------------------------------------------------------------------
// Decoder: mirrors Encoder with a sticky error. Every read is bounds
// checked; once a read fails, all subsequent reads return zero values
// and Err() reports the first failure. Slice allocations are capped by
// the bytes remaining, so hostile counts cannot cause huge allocations.

// Decoder consumes a section payload.
type Decoder struct {
	buf []byte
	pos int
	err error
}

// NewDecoder returns a decoder over the payload.
func NewDecoder(payload []byte) *Decoder {
	return &Decoder{buf: payload}
}

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

// Finish reports an error if decoding failed or bytes remain unread —
// leftover bytes mean the payload and the decode logic disagree about
// the format, which must never be silently ignored.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.buf) {
		return corruptf("%d unread bytes at end of section", len(d.buf)-d.pos)
	}
	return nil
}

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = corruptf("truncated %s at offset %d", what, d.pos)
	}
}

func (d *Decoder) take(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.pos < n {
		d.fail(what)
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1, "u8")
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads one byte and rejects values other than 0 or 1: a
// corrupted flag must surface as an error, not be truncated to a
// plausible boolean.
func (d *Decoder) Bool() bool {
	v := d.U8()
	if d.err == nil && v > 1 {
		d.err = corruptf("invalid bool byte %d at offset %d", v, d.pos-1)
	}
	return v == 1
}

// U16 reads a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2, "u16")
	if b == nil {
		return 0
	}
	return readU16(b)
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4, "u32")
	if b == nil {
		return 0
	}
	return readU32(b)
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8, "u64")
	if b == nil {
		return 0
	}
	return readU64(b)
}

// I64 reads a little-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int64 and reports an error if it does not fit in int.
func (d *Decoder) Int() int {
	v := d.I64()
	if d.err == nil && int64(int(v)) != v {
		d.err = corruptf("int64 %d overflows int", v)
	}
	return int(v)
}

// F64 reads a float64 bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// count reads a u64 element count and validates it against the bytes
// remaining, given the minimum encoded size of one element.
func (d *Decoder) count(elemSize int, what string) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()/elemSize) {
		d.err = corruptf("%s count %d exceeds remaining %d bytes", what, n, d.Remaining())
		return 0
	}
	return int(n)
}

// Bytes8 reads a u64 length prefix and that many raw bytes, returning
// a copy.
func (d *Decoder) Bytes8() []byte {
	n := d.count(1, "bytes")
	if d.err != nil {
		return nil
	}
	b := d.take(n, "bytes body")
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a u64 length prefix and that many bytes as a string.
func (d *Decoder) String() string {
	n := d.count(1, "string")
	if d.err != nil {
		return ""
	}
	b := d.take(n, "string body")
	return string(b)
}

// Uint64s reads a u64 count and that many uint64 values.
func (d *Decoder) Uint64s() []uint64 {
	n := d.count(8, "uint64 slice")
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = d.U64()
	}
	if d.err != nil {
		return nil
	}
	return vs
}

// Uint32s reads a u64 count and that many uint32 values.
func (d *Decoder) Uint32s() []uint32 {
	n := d.count(4, "uint32 slice")
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]uint32, n)
	for i := range vs {
		vs[i] = d.U32()
	}
	if d.err != nil {
		return nil
	}
	return vs
}

// Int32s reads a u64 count and that many int32 values.
func (d *Decoder) Int32s() []int32 {
	n := d.count(4, "int32 slice")
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(d.U32())
	}
	if d.err != nil {
		return nil
	}
	return vs
}

// Ints reads a u64 count and that many int values.
func (d *Decoder) Ints() []int {
	n := d.count(8, "int slice")
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]int, n)
	for i := range vs {
		vs[i] = d.Int()
	}
	if d.err != nil {
		return nil
	}
	return vs
}

// F64s reads a u64 count and that many float64 values.
func (d *Decoder) F64s() []float64 {
	n := d.count(8, "float64 slice")
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = d.F64()
	}
	if d.err != nil {
		return nil
	}
	return vs
}

// Bools reads a u64 count and that many boolean bytes.
func (d *Decoder) Bools() []bool {
	n := d.count(1, "bool slice")
	if d.err != nil || n == 0 {
		return nil
	}
	vs := make([]bool, n)
	for i := range vs {
		vs[i] = d.Bool()
	}
	if d.err != nil {
		return nil
	}
	return vs
}

// ---------------------------------------------------------------------
// Little-endian helpers (manual, to avoid importing encoding/binary's
// interface machinery on the hot path).

func appendU16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func readU16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
