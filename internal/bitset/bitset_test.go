package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"barterdist/internal/xrand"
)

func TestAddHasRemove(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Has(i) {
			t.Fatalf("new set has bit %d", i)
		}
		if !s.Add(i) {
			t.Fatalf("Add(%d) reported already set", i)
		}
		if s.Add(i) {
			t.Fatalf("second Add(%d) reported newly set", i)
		}
		if !s.Has(i) {
			t.Fatalf("bit %d missing after Add", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	if !s.Remove(64) {
		t.Fatal("Remove(64) reported not set")
	}
	if s.Remove(64) {
		t.Fatal("second Remove(64) reported set")
	}
	if s.Count() != 7 {
		t.Fatalf("Count after Remove = %d, want 7", s.Count())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Has(-1)": func() { s.Has(-1) },
		"Has(10)": func() { s.Has(10) },
		"Add(10)": func() { s.Add(10) },
		"Remove(": func() { s.Remove(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Fatal("ContainsAll across capacities did not panic")
		}
	}()
	a.ContainsAll(b)
}

func TestFullEmpty(t *testing.T) {
	s := New(70)
	if !s.Empty() || s.Full() {
		t.Fatal("new set should be empty and not full")
	}
	for i := 0; i < 70; i++ {
		s.Add(i)
	}
	if s.Empty() || !s.Full() {
		t.Fatal("saturated set should be full")
	}
	// Zero-capacity set is vacuously full.
	z := New(0)
	if !z.Full() || !z.Empty() {
		t.Fatal("zero-capacity set should be both full and empty")
	}
}

func TestContainsAllAndDiff(t *testing.T) {
	a, b := New(200), New(200)
	for _, i := range []int{3, 64, 100, 199} {
		a.Add(i)
	}
	for _, i := range []int{3, 100} {
		b.Add(i)
	}
	if !a.ContainsAll(b) {
		t.Fatal("a should contain b")
	}
	if b.ContainsAll(a) {
		t.Fatal("b should not contain a")
	}
	if got := a.DiffCount(b); got != 2 {
		t.Fatalf("DiffCount = %d, want 2", got)
	}
	if got := b.DiffCount(a); got != 0 {
		t.Fatalf("reverse DiffCount = %d, want 0", got)
	}
	if !a.AnyMissingFrom(b) {
		t.Fatal("a has blocks b lacks")
	}
	if b.AnyMissingFrom(a) {
		t.Fatal("b has nothing a lacks")
	}
	d := a.Diff(b, New(200))
	if got := d.Slice(); !reflect.DeepEqual(got, []int{64, 199}) {
		t.Fatalf("Diff = %v, want [64 199]", got)
	}
}

func TestAnyMissingFromEqualCounts(t *testing.T) {
	// Regression guard: the count pre-filter must not claim subset-ness
	// when counts are equal but contents differ.
	a, b := New(64), New(64)
	a.Add(1)
	b.Add(2)
	if !a.AnyMissingFrom(b) || !b.AnyMissingFrom(a) {
		t.Fatal("disjoint equal-size sets must be mutually interesting")
	}
}

func TestMaxMinFirstDiff(t *testing.T) {
	s := New(300)
	if s.Max() != -1 || s.Min() != -1 {
		t.Fatal("empty set Max/Min should be -1")
	}
	s.Add(77)
	s.Add(250)
	s.Add(5)
	if got := s.Max(); got != 250 {
		t.Fatalf("Max = %d, want 250", got)
	}
	if got := s.Min(); got != 5 {
		t.Fatalf("Min = %d, want 5", got)
	}
	o := New(300)
	o.Add(5)
	if got := s.FirstDiff(o); got != 77 {
		t.Fatalf("FirstDiff = %d, want 77", got)
	}
	o.Add(77)
	o.Add(250)
	if got := s.FirstDiff(o); got != -1 {
		t.Fatalf("FirstDiff of subset = %d, want -1", got)
	}
}

func TestMaxDiff(t *testing.T) {
	a, b := New(200), New(200)
	if a.MaxDiff(b) != -1 {
		t.Fatal("empty diff should be -1")
	}
	a.Add(5)
	a.Add(130)
	a.Add(199)
	if got := a.MaxDiff(b); got != 199 {
		t.Fatalf("MaxDiff = %d, want 199", got)
	}
	b.Add(199)
	if got := a.MaxDiff(b); got != 130 {
		t.Fatalf("MaxDiff = %d, want 130", got)
	}
	b.Add(130)
	b.Add(5)
	if got := a.MaxDiff(b); got != -1 {
		t.Fatalf("MaxDiff of subset = %d, want -1", got)
	}
}

func TestFillAndAndWith(t *testing.T) {
	s := New(70)
	s.Fill()
	if !s.Full() || s.Count() != 70 {
		t.Fatalf("Fill: count = %d", s.Count())
	}
	if s.Max() != 69 {
		t.Fatalf("Fill set stray bits: Max = %d", s.Max())
	}
	o := New(70)
	o.Add(3)
	o.Add(69)
	s.AndWith(o)
	if !s.Equal(o) {
		t.Fatalf("AndWith: got %v", s.Slice())
	}
	// Intersection with empty clears everything.
	s.AndWith(New(70))
	if !s.Empty() {
		t.Fatal("AndWith empty should clear")
	}
	// Zero-capacity set: Fill is a no-op that stays consistent.
	z := New(0)
	z.Fill()
	if !z.Full() || z.Count() != 0 {
		t.Fatal("zero-capacity Fill inconsistent")
	}
}

func TestIterOrderAndEarlyStop(t *testing.T) {
	s := New(150)
	want := []int{0, 63, 64, 65, 149}
	for _, i := range want {
		s.Add(i)
	}
	if got := s.Slice(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Slice = %v, want %v", got, want)
	}
	var visited []int
	s.Iter(func(i int) bool {
		visited = append(visited, i)
		return len(visited) < 2
	})
	if !reflect.DeepEqual(visited, []int{0, 63}) {
		t.Fatalf("early-stop Iter visited %v", visited)
	}
}

func TestIterDiff(t *testing.T) {
	a, b := New(128), New(128)
	for _, i := range []int{1, 2, 70, 127} {
		a.Add(i)
	}
	b.Add(2)
	b.Add(70)
	var got []int
	a.IterDiff(b, func(i int) bool {
		got = append(got, i)
		return true
	})
	if !reflect.DeepEqual(got, []int{1, 127}) {
		t.Fatalf("IterDiff = %v, want [1 127]", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Add(10)
	c := a.Clone()
	c.Add(20)
	if a.Has(20) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Has(10) {
		t.Fatal("clone lost original bit")
	}
	if !a.Equal(a.Clone()) {
		t.Fatal("clone not Equal to original")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(65), New(65)
	if !a.Equal(b) {
		t.Fatal("two empty sets should be equal")
	}
	a.Add(64)
	if a.Equal(b) {
		t.Fatal("sets with different bits reported equal")
	}
	b.Add(64)
	if !a.Equal(b) {
		t.Fatal("identical sets reported unequal")
	}
	if a.Equal(New(64)) {
		t.Fatal("sets of different capacity reported equal")
	}
}

func TestClear(t *testing.T) {
	s := New(100)
	for i := 0; i < 100; i += 3 {
		s.Add(i)
	}
	s.Clear()
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("Clear left residue")
	}
	if s.Max() != -1 {
		t.Fatal("Clear left set bits")
	}
}

func TestString(t *testing.T) {
	s := New(4)
	s.Add(1)
	s.Add(3)
	if got := s.String(); got != "[0101]" {
		t.Fatalf("String = %q, want [0101]", got)
	}
}

// TestQuickCountMatchesSlice is a property test: Count always equals the
// number of distinct indices added.
func TestQuickCountMatchesSlice(t *testing.T) {
	r := xrand.New(1)
	f := func(raw []uint16) bool {
		s := New(1000)
		distinct := map[int]struct{}{}
		for _, v := range raw {
			i := int(v) % 1000
			s.Add(i)
			distinct[i] = struct{}{}
		}
		return s.Count() == len(distinct) && len(s.Slice()) == len(distinct)
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, _ *rand.Rand) {
			n := r.Intn(200)
			raw := make([]uint16, n)
			for i := range raw {
				raw[i] = uint16(r.Intn(1 << 16))
			}
			args[0] = reflect.ValueOf(raw)
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDiffAlgebra checks |a \ b| + |a ∩ b| == |a| on random sets.
func TestQuickDiffAlgebra(t *testing.T) {
	r := xrand.New(2)
	f := func(aBits, bBits []uint16) bool {
		const n = 700
		a, b := New(n), New(n)
		for _, v := range aBits {
			a.Add(int(v) % n)
		}
		for _, v := range bBits {
			b.Add(int(v) % n)
		}
		inter := 0
		a.Iter(func(i int) bool {
			if b.Has(i) {
				inter++
			}
			return true
		})
		if a.DiffCount(b)+inter != a.Count() {
			return false
		}
		// AnyMissingFrom must agree with DiffCount > 0.
		return a.AnyMissingFrom(b) == (a.DiffCount(b) > 0)
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, _ *rand.Rand) {
			for k := range args {
				raw := make([]uint16, r.Intn(300))
				for i := range raw {
					raw[i] = uint16(r.Intn(1 << 16))
				}
				args[k] = reflect.ValueOf(raw)
			}
		},
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWords(t *testing.T) {
	s := New(130)
	s.Add(0)
	s.Add(64)
	s.Add(129)
	w := s.Words()
	if len(w) != 3 {
		t.Fatalf("Words len = %d, want 3", len(w))
	}
	if w[0] != 1 || w[1] != 1 || w[2] != 2 {
		t.Fatalf("Words = %x", w)
	}
}

func TestAccumulateCounts(t *testing.T) {
	s := New(200) // spans four words, last partial
	for _, i := range []int{0, 63, 64, 100, 199} {
		s.Add(i)
	}
	counts := make([]int, 200)
	s.AccumulateCounts(counts, 1)
	s.AccumulateCounts(counts, 2)
	for i := range counts {
		want := 0
		if s.Has(i) {
			want = 3
		}
		if counts[i] != want {
			t.Fatalf("counts[%d] = %d, want %d", i, counts[i], want)
		}
	}
	// Subtracting the same set restores zero everywhere — the crash/
	// rejoin inverse the rarest-first scheduler relies on.
	s.AccumulateCounts(counts, -3)
	for i, c := range counts {
		if c != 0 {
			t.Fatalf("counts[%d] = %d after inverse, want 0", i, c)
		}
	}
}

func TestAccumulateCountsMatchesHas(t *testing.T) {
	r := xrand.New(99)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(300)
		s := New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				s.Add(i)
			}
		}
		counts := make([]int, n)
		s.AccumulateCounts(counts, 1)
		for i := 0; i < n; i++ {
			want := 0
			if s.Has(i) {
				want = 1
			}
			if counts[i] != want {
				t.Fatalf("n=%d: counts[%d] = %d, want %d", n, i, counts[i], want)
			}
		}
	}
}

func TestAccumulateCountsShortSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on short counts slice")
		}
	}()
	New(100).AccumulateCounts(make([]int, 50), 1)
}

func BenchmarkAccumulateCounts(b *testing.B) {
	s := New(2048)
	for i := 0; i < 2048; i += 2 {
		s.Add(i)
	}
	counts := make([]int, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.AccumulateCounts(counts, 1)
	}
}

func BenchmarkAnyMissingFrom(b *testing.B) {
	a, o := New(1024), New(1024)
	for i := 0; i < 1024; i += 2 {
		a.Add(i)
		o.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.AnyMissingFrom(o)
	}
}

func BenchmarkIterDiff(b *testing.B) {
	a, o := New(1024), New(1024)
	for i := 0; i < 1024; i++ {
		a.Add(i)
		if i%3 == 0 {
			o.Add(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		a.IterDiff(o, func(int) bool { n++; return true })
	}
}

// TestIterateMissingOracle checks the word-level complement scan
// against a naive per-bit loop on random sets across capacities that
// exercise word boundaries and the final-word tail mask.
func TestIterateMissingOracle(t *testing.T) {
	r := xrand.New(7)
	for _, n := range []int{0, 1, 2, 63, 64, 65, 127, 128, 129, 200} {
		for trial := 0; trial < 20; trial++ {
			s := New(n)
			for i := 0; i < n; i++ {
				if r.Intn(3) != 0 {
					s.Add(i)
				}
			}
			var got, want []int
			s.IterateMissing(func(i int) bool {
				got = append(got, i)
				return true
			})
			for i := 0; i < n; i++ {
				if !s.Has(i) {
					want = append(want, i)
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d trial=%d: IterateMissing=%v, oracle=%v", n, trial, got, want)
			}
			// Early-stop contract: returning false after the first hit
			// must visit exactly one bit.
			if len(want) > 0 {
				visits := 0
				s.IterateMissing(func(i int) bool {
					visits++
					if i != want[0] {
						t.Fatalf("n=%d: first missing bit %d, want %d", n, i, want[0])
					}
					return false
				})
				if visits != 1 {
					t.Fatalf("n=%d: early stop visited %d bits", n, visits)
				}
			}
			// A full set is missing nothing — the tail mask must keep the
			// phantom bits beyond Cap() invisible.
			s.Fill()
			s.IterateMissing(func(i int) bool {
				t.Fatalf("n=%d: full set reports missing bit %d", n, i)
				return false
			})
		}
	}
}

// TestFirstMissingInOracle checks the word-level witness search against
// a naive scan, plus its agreement with AnyMissingFrom.
func TestFirstMissingInOracle(t *testing.T) {
	r := xrand.New(8)
	for _, n := range []int{0, 1, 2, 63, 64, 65, 127, 128, 129, 200} {
		for trial := 0; trial < 20; trial++ {
			s, o := New(n), New(n)
			for i := 0; i < n; i++ {
				if r.Intn(2) == 0 {
					s.Add(i)
				}
				if r.Intn(2) == 0 {
					o.Add(i)
				}
			}
			want := -1
			for i := 0; i < n; i++ {
				if o.Has(i) && !s.Has(i) {
					want = i
					break
				}
			}
			if got := s.FirstMissingIn(o); got != want {
				t.Fatalf("n=%d trial=%d: FirstMissingIn=%d, oracle=%d", n, trial, got, want)
			}
			if (s.FirstMissingIn(o) >= 0) != o.AnyMissingFrom(s) {
				t.Fatalf("n=%d trial=%d: FirstMissingIn disagrees with AnyMissingFrom", n, trial)
			}
		}
	}
}

func TestSetWordsRoundTrip(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 63, 64, 65, 127, 128, 129} {
		s.Add(i)
	}
	restored := New(130)
	words := append([]uint64(nil), s.Words()...)
	if err := restored.SetWords(words); err != nil {
		t.Fatalf("SetWords: %v", err)
	}
	if !restored.Equal(s) {
		t.Fatal("restored set differs")
	}
	if restored.Count() != s.Count() {
		t.Fatalf("count %d, want %d", restored.Count(), s.Count())
	}
}

func TestSetWordsRejectsBadShape(t *testing.T) {
	s := New(130)
	if err := s.SetWords(make([]uint64, 2)); err == nil {
		t.Fatal("wrong word count accepted")
	}
	// Bit 130 and up live beyond capacity in the last word.
	bad := make([]uint64, 3)
	bad[2] = 1 << 2
	if err := s.SetWords(bad); err == nil {
		t.Fatal("out-of-capacity bit accepted")
	}
	// The failed calls must not have corrupted the set.
	if s.Count() != 0 {
		t.Fatalf("failed SetWords mutated count to %d", s.Count())
	}
}
